// Package mutps is a Go implementation of μTPS (SOSP 2025), a thread
// architecture for in-memory key-value stores that splits request
// processing into a cache-resident layer (request polling, hot-item
// serving) and a memory-resident layer (full index and data), connected by
// lock-free all-to-all rings, with reconfigurable RPC, a resizable hot-set
// cache, and an auto-tuner.
//
// The package exposes two artifacts:
//
//   - a real, runnable key-value store (Open) built on goroutine worker
//     pools arranged exactly as the paper describes — μTPS-H over a
//     concurrent cuckoo hash table, μTPS-T over a concurrent B+-tree;
//   - a deterministic evaluation substrate (internal/simkv, internal/bench,
//     cmd/mutps-bench) that regenerates every table and figure of the
//     paper's evaluation on a simulated cache hierarchy.
package mutps

import (
	"io"
	"net/http"
	"time"

	"mutps/internal/kvcore"
	"mutps/internal/obs"
	"mutps/internal/rpc"
	"mutps/internal/tuner"
	"mutps/internal/workload"
)

// Engine selects the index structure.
type Engine int

// Available engines, matching the paper's two stores.
const (
	// Hash is μTPS-H: a libcuckoo-style concurrent cuckoo hash table.
	// Point queries only.
	Hash Engine = iota
	// Tree is μTPS-T: a concurrent B+-tree (the MassTree role). Point and
	// range queries.
	Tree
)

// Options configures a Store. The zero value of every optional field takes
// a sensible default.
type Options struct {
	// Engine selects μTPS-H (Hash, default) or μTPS-T (Tree).
	Engine Engine
	// Workers is the total worker-goroutine count (default 4, minimum 2:
	// at least one per layer).
	Workers int
	// CRWorkers is the initial cache-resident layer size (default
	// Workers/4, at least 1). Adjust at runtime with SetSplit.
	CRWorkers int
	// HotItems is the hot-set cache target (default 4096; 0 disables the
	// cache-resident hot path).
	HotItems int
	// BatchSize is the CR-MR queue batch (default 8, max 32).
	BatchSize int
	// RefreshInterval is the hot-set refresh period (default 100ms; set
	// negative to disable the background refresher and drive
	// RefreshHotSet manually).
	RefreshInterval time.Duration
	// CapacityHint pre-sizes the hash index.
	CapacityHint int
	// ArenaOff disables the size-classed slab arena: item records and
	// their value words come from the Go allocator instead, as they did
	// before the arena existed. Escape hatch for debugging (heap profiles
	// attribute values to call sites again) and for A/B measurement.
	ArenaOff bool
	// ArenaChunk is the backing-slab chunk size in bytes per size class
	// (default 256 KiB). Larger chunks amortize carving further at the
	// cost of coarser reservation granularity.
	ArenaChunk int

	// MemoryBudget caps arena live bytes: when crossed, a background
	// evictor unlinks the coldest items (by hot-set sketch estimate) until
	// occupancy falls to EvictLowWater of the budget. 0 disables eviction.
	// Requires the arena (incompatible with ArenaOff).
	MemoryBudget int64
	// EvictLowWater is the fraction of MemoryBudget an eviction pass
	// drains to (default 0.9).
	EvictLowWater float64
	// EvictInterval is the evictor's polling period (default 5ms);
	// allocation pressure wakes it early.
	EvictInterval time.Duration
	// ColdDir, when set, attaches an SSD-backed cold tier at that
	// directory: evicted values spill to an append-only log and gets
	// missing RAM are served from it (and promoted back).
	ColdDir string
	// ColdSegmentBytes is the cold log's segment size (default 64 MiB).
	ColdSegmentBytes int64
	// DefaultTTL, when positive, applies to every put that does not carry
	// its own TTL. 0 means items never expire by default.
	DefaultTTL time.Duration
}

// KV is one scan result entry.
type KV struct {
	Key   uint64
	Value []byte
}

// MaxScanCount is the largest count accepted by Scan; larger requests are
// rejected with an error (the inter-layer request encoding carries scan
// counts in 16 bits).
const MaxScanCount = kvcore.MaxScanCount

// Stats is a snapshot of store counters.
type Stats struct {
	Ops       uint64 // completed operations
	CRHits    uint64 // served entirely at the cache-resident layer
	Forwarded uint64 // forwarded over the CR-MR queue
	Items     int    // indexed items
	HotSize   int    // current hot-set view size
}

// Store is a running μTPS key-value store.
type Store struct {
	s *kvcore.Store
}

// Open starts a store with the given options.
func Open(o Options) (*Store, error) {
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.CRWorkers == 0 {
		o.CRWorkers = o.Workers / 4
		if o.CRWorkers < 1 {
			o.CRWorkers = 1
		}
	}
	if o.HotItems == 0 {
		o.HotItems = 4096
	}
	engine := kvcore.Hash
	if o.Engine == Tree {
		engine = kvcore.Tree
	}
	s, err := kvcore.Open(kvcore.Config{
		Engine:       engine,
		Workers:      o.Workers,
		CRWorkers:    o.CRWorkers,
		BatchSize:    o.BatchSize,
		HotItems:     o.HotItems,
		CapacityHint: o.CapacityHint,
		ArenaOff:     o.ArenaOff,
		ArenaChunk:   o.ArenaChunk,

		MemoryBudget:     o.MemoryBudget,
		EvictLowWater:    o.EvictLowWater,
		EvictInterval:    o.EvictInterval,
		ColdDir:          o.ColdDir,
		ColdSegmentBytes: o.ColdSegmentBytes,
		DefaultTTL:       o.DefaultTTL,
	})
	if err != nil {
		return nil, err
	}
	st := &Store{s: s}
	if o.RefreshInterval >= 0 && o.HotItems > 0 {
		iv := o.RefreshInterval
		if iv == 0 {
			iv = 100 * time.Millisecond
		}
		s.StartRefresher(iv)
	}
	return st, nil
}

// ErrClosed is returned by operations issued after (or racing with) Close:
// the request did not execute.
var ErrClosed = rpc.ErrClosed

// ErrBacklogged is returned when the store sheds a request because its
// receive ring stayed full for the whole backpressure budget. The request
// did not execute and may be retried after backing off.
var ErrBacklogged = rpc.ErrBacklogged

// Close drains and stops the store; it is idempotent and safe to call
// under concurrent load. Requests accepted before Close complete normally;
// concurrent and later requests fail with ErrClosed — no caller is ever
// left hanging.
func (st *Store) Close() { st.s.Close() }

// Get fetches the value stored under key. The returned slice is freshly
// allocated; use GetInto on hot paths to reuse a caller-owned buffer.
func (st *Store) Get(key uint64) ([]byte, bool, error) { return st.s.Get(key) }

// GetInto fetches the value stored under key, appending it into buf[:0].
// When buf has enough capacity the returned value aliases it and the
// request completes without allocating; otherwise a fresh slice is
// returned. On a miss (and on error) it returns buf[:0] and false. buf
// must not be touched while the request is in flight, and the typical
// calling pattern reuses the returned slice:
//
//	buf, _, _ = st.GetInto(key, buf)
func (st *Store) GetInto(key uint64, buf []byte) ([]byte, bool, error) {
	return st.s.GetInto(key, buf)
}

// Put stores val under key. The value bytes are copied into the store
// before Put returns, so the caller may immediately reuse val. A non-nil
// error (ErrClosed, ErrBacklogged) means the put did not execute.
func (st *Store) Put(key uint64, val []byte) error { return st.s.Put(key, val) }

// PutTTL stores val under key with a per-item TTL; ttl <= 0 selects
// Options.DefaultTTL (and "never" when that is unset too). After the
// deadline the key reads as missing on every path and its memory is
// reclaimed lazily.
func (st *Store) PutTTL(key uint64, val []byte, ttl time.Duration) error {
	return st.s.PutTTL(key, val, ttl)
}

// GetTTL fetches the value for key together with its remaining TTL
// (0 = no expiry set). Expired keys report found=false.
func (st *Store) GetTTL(key uint64) (val []byte, ttl time.Duration, found bool, err error) {
	return st.s.GetTTL(key)
}

// Delete removes key, reporting whether it existed.
func (st *Store) Delete(key uint64) (bool, error) { return st.s.Delete(key) }

// GetBatch fetches several keys with one pipelined round trip: all
// requests are in flight together, so the memory-resident layer can serve
// them with a shared batched index traversal (the paper's batched
// indexing). Results are positional; a key whose send failed (store
// closed or backlogged) reports not-found.
func (st *Store) GetBatch(keys []uint64) (vals [][]byte, found []bool) {
	calls := make([]*rpc.Call, len(keys))
	for i, k := range keys {
		calls[i], _ = st.s.SendAsync(rpc.Message{Op: workload.OpGet, Key: k})
	}
	vals = make([][]byte, len(keys))
	found = make([]bool, len(keys))
	for i, c := range calls {
		if c == nil {
			continue
		}
		c.Wait()
		if c.Err == nil {
			vals[i], found[i] = c.Value, c.Found
		}
		c.Release() // values are freshly allocated, safe to keep past release
	}
	return vals, found
}

// Scan returns up to count entries with keys >= start in ascending order.
// Requires the Tree engine and count ≤ MaxScanCount.
func (st *Store) Scan(start uint64, count int) ([]KV, error) {
	kvs, err := st.s.Scan(start, count)
	if err != nil {
		return nil, err
	}
	out := make([]KV, len(kvs))
	for i, kv := range kvs {
		out[i] = KV{Key: kv.Key, Value: kv.Value}
	}
	return out, nil
}

// Preload inserts directly into the index, bypassing the RPC path; use it
// for bulk population before serving.
func (st *Store) Preload(key uint64, val []byte) {
	v := make([]byte, len(val))
	copy(v, val)
	st.s.Preload(key, v)
}

// Split returns the current (cache-resident, memory-resident) worker
// allocation.
func (st *Store) Split() (nCR, nMR int) { return st.s.Split() }

// SetSplit reassigns workers between the layers without blocking request
// processing (§3.5's thread-reassignment protocol).
func (st *Store) SetSplit(nCR int) error { return st.s.SetSplit(nCR) }

// SetHotItems adjusts the hot-set cache target; it takes effect at the
// next refresh.
func (st *Store) SetHotItems(k int) { st.s.SetHotItems(k) }

// RefreshHotSet rebuilds the hot-set view immediately and returns the
// number of cached entries.
func (st *Store) RefreshHotSet() int { return st.s.RefreshHotSet() }

// TuneResult reports an Autotune run.
type TuneResult struct {
	CRWorkers int     // chosen cache-resident worker count
	MRWorkers int     // chosen memory-resident worker count
	HotItems  int     // chosen hot-set target
	OpsPerSec float64 // throughput at the chosen configuration
	Probes    int     // measurement windows spent searching
}

// Autotune runs the paper's hierarchical auto-tuner against the live store:
// it explores worker splits (trisection) and hot-set sizes (linear probe),
// measuring each candidate for the given window while the store keeps
// serving, and leaves the best configuration applied. Call it under
// representative load; with no traffic every configuration measures zero
// and the result is arbitrary.
func (st *Store) Autotune(window time.Duration, maxHotItems int) TuneResult {
	oldCR, _ := st.s.Split()
	oldHot := st.s.HotItems()
	tn := &kvcore.Tunable{S: st.s, Window: window, MaxCache: maxHotItems}
	res := tuner.Optimize(tn)
	nCR, nMR := st.s.Split()
	st.s.Trace().Record(obs.Decision{
		Event:    "retune",
		Rate:     res.Score,
		OldSplit: oldCR, NewSplit: nCR,
		OldCache: oldHot, NewCache: st.s.HotItems(),
		Score:  res.Score,
		Probes: res.Probes,
	})
	return TuneResult{
		CRWorkers: nCR,
		MRWorkers: nMR,
		HotItems:  st.s.HotItems(),
		OpsPerSec: res.Score,
		Probes:    res.Probes,
	}
}

// Stats returns a snapshot of the store's counters.
func (st *Store) Stats() Stats {
	s := st.s.Stats()
	return Stats{
		Ops:       s.Ops,
		CRHits:    s.CRHits,
		Forwarded: s.Forwarded,
		Items:     s.Items,
		HotSize:   s.HotSize,
	}
}

// WriteMetrics writes every registered metric — per-op throughput and
// latency histograms, CR hit/miss counters, ring and queue health, hot-set
// state — in Prometheus text exposition format.
func (st *Store) WriteMetrics(w io.Writer) error {
	return st.s.Metrics().WritePrometheus(w)
}

// MetricsHandler returns an http.Handler serving WriteMetrics — mount it
// at /metrics to scrape an embedded store.
func (st *Store) MetricsHandler() http.Handler { return obs.Handler(st.s.Metrics()) }

// Decision is one reconfiguration event: a manual SetSplit/SetHotItems, a
// tuner trigger, or a completed Autotune, oldest first in Decisions.
// Negative ints mean "not applicable to this event".
type Decision = obs.Decision

// Decisions returns the retained reconfiguration history (a bounded ring;
// older entries are evicted).
func (st *Store) Decisions() []Decision { return st.s.Trace().Snapshot() }
