package mutps

import (
	"fmt"
	"testing"
	"time"
)

func openStore(t *testing.T, o Options) *Store {
	t.Helper()
	if o.RefreshInterval == 0 {
		o.RefreshInterval = -1 // manual refresh in tests
	}
	s, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestDefaults(t *testing.T) {
	s := openStore(t, Options{})
	nCR, nMR := s.Split()
	if nCR != 1 || nMR != 3 {
		t.Fatalf("default split %d/%d, want 1/3", nCR, nMR)
	}
	s.Put(1, []byte("v"))
	if v, ok, _ := s.Get(1); !ok || string(v) != "v" {
		t.Fatal("basic put/get through the facade failed")
	}
}

func TestTreeEngineScan(t *testing.T) {
	s := openStore(t, Options{Engine: Tree})
	for i := uint64(0); i < 10; i++ {
		s.Put(i, []byte{byte(i)})
	}
	kvs, err := s.Scan(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 4 || kvs[0].Key != 3 || kvs[3].Key != 6 {
		t.Fatalf("scan = %+v", kvs)
	}
}

func TestHashEngineRejectsScan(t *testing.T) {
	s := openStore(t, Options{Engine: Hash})
	if _, err := s.Scan(0, 1); err == nil {
		t.Fatal("hash engine must reject Scan")
	}
}

func TestPreloadCopiesValue(t *testing.T) {
	s := openStore(t, Options{})
	buf := []byte("mutable")
	s.Preload(9, buf)
	buf[0] = 'X'
	if v, _, _ := s.Get(9); string(v) != "mutable" {
		t.Fatal("Preload must copy the value")
	}
}

func TestSplitAndHotControls(t *testing.T) {
	s := openStore(t, Options{Workers: 5, CRWorkers: 2, HotItems: 64})
	if err := s.SetSplit(3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s.Get(uint64(i % 4))
	}
	nCR, _ := s.Split()
	if nCR != 3 {
		t.Fatalf("split = %d", nCR)
	}
	if err := s.SetSplit(0); err == nil {
		t.Fatal("invalid split must error")
	}
	s.SetHotItems(16)
	s.Put(7, []byte("hothotho"))
	for i := 0; i < 64; i++ {
		s.Get(7)
	}
	if n := s.RefreshHotSet(); n == 0 {
		t.Fatal("refresh should cache the hammered key")
	}
	st := s.Stats()
	if st.HotSize == 0 || st.Items == 0 || st.Ops == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestBackgroundRefresher(t *testing.T) {
	s, err := Open(Options{HotItems: 32, RefreshInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put(3, []byte("vvvvvvvv"))
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		for i := 0; i < 32; i++ {
			s.Get(3)
		}
		if s.Stats().HotSize > 0 {
			return
		}
	}
	t.Fatal("background refresher never installed a hot view")
}

func TestInvalidOptions(t *testing.T) {
	if _, err := Open(Options{Workers: 1}); err == nil {
		t.Fatal("1 worker must be rejected (need one per layer)")
	}
	if _, err := Open(Options{Workers: 4, CRWorkers: 4}); err == nil {
		t.Fatal("CRWorkers == Workers must be rejected")
	}
}

func ExampleOpen() {
	store, err := Open(Options{Engine: Tree, Workers: 4, RefreshInterval: -1})
	if err != nil {
		panic(err)
	}
	defer store.Close()
	store.Put(42, []byte("answer"))
	v, _, _ := store.Get(42)
	fmt.Println(string(v))
	// Output: answer
}

func TestGetBatchFacade(t *testing.T) {
	s := openStore(t, Options{Engine: Tree})
	for i := uint64(0); i < 100; i += 2 {
		s.Put(i, []byte{byte(i)})
	}
	keys := []uint64{0, 1, 2, 98, 99, 50}
	vals, found := s.GetBatch(keys)
	wantFound := []bool{true, false, true, true, false, true}
	for i := range keys {
		if found[i] != wantFound[i] {
			t.Fatalf("key %d: found=%v want %v", keys[i], found[i], wantFound[i])
		}
		if found[i] && vals[i][0] != byte(keys[i]) {
			t.Fatalf("key %d: wrong value", keys[i])
		}
	}
	if vals, found := s.GetBatch(nil); len(vals) != 0 || len(found) != 0 {
		t.Fatal("empty batch must return empty slices")
	}
}

func TestAutotuneAppliesBestConfig(t *testing.T) {
	s := openStore(t, Options{Workers: 4, CRWorkers: 1, HotItems: 128})
	for i := uint64(0); i < 512; i++ {
		s.Preload(i, []byte{byte(i)})
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				s.Get(uint64(i % 512))
			}
		}
	}()
	res := s.Autotune(5*time.Millisecond, 256)
	close(stop)
	<-done
	if res.CRWorkers+res.MRWorkers != 4 {
		t.Fatalf("split does not cover all workers: %+v", res)
	}
	if res.Probes == 0 || res.OpsPerSec <= 0 {
		t.Fatalf("tuner did not measure: %+v", res)
	}
	nCR, _ := s.Split()
	if nCR != res.CRWorkers {
		t.Fatal("Autotune must leave the chosen split applied")
	}
}
