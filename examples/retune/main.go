// Retune: run the auto-tuner against the real (non-simulated) store while
// it serves live traffic. The tuner reassigns workers between the layers
// and resizes the hot set using the paper's trisection search; request
// processing never stops.
//
// Note: on machines with few cores the Go scheduler (not the tuner)
// dominates absolute throughput — this example demonstrates the live
// reconfiguration machinery, not paper numbers (those come from
// cmd/mutps-bench).
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"mutps/internal/kvcore"
	"mutps/internal/tuner"
	"mutps/internal/workload"
)

func main() {
	store, err := kvcore.Open(kvcore.Config{
		Engine:    kvcore.Tree,
		Workers:   4,
		CRWorkers: 2,
		HotItems:  2048,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	const keys = 50_000
	for i := uint64(0); i < keys; i++ {
		store.Preload(i, []byte("initial0"))
	}
	store.StartRefresher(20 * time.Millisecond)

	// Background load: skewed YCSB-B.
	var stop atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen := workload.NewGenerator(workload.Config{
				Keys: keys, Theta: 0.99, Mix: workload.MixYCSBB,
				ValueSize: workload.FixedSize(8), Seed: uint64(c + 1),
			})
			val := []byte("updated!")
			for !stop.Load() {
				req := gen.Next()
				if req.Op == workload.OpGet {
					store.Get(req.Key)
				} else {
					store.Put(req.Key, val)
				}
			}
		}(c)
	}

	before := measure(store, 200*time.Millisecond)
	nCR, nMR := store.Split()
	fmt.Printf("before tuning: %d/%d split, %.0f ops/s\n", nCR, nMR, before)

	tn := &kvcore.Tunable{S: store, Window: 50 * time.Millisecond, MaxCache: 4096, CacheStep: 1024}
	res := tuner.Optimize(tn)
	nCR, nMR = store.Split()
	fmt.Printf("tuned: %d/%d split, hot target %d (%d probes, score %.0f ops/s)\n",
		nCR, nMR, store.HotItems(), res.Probes, res.Score)

	after := measure(store, 200*time.Millisecond)
	st := store.Stats()
	fmt.Printf("after tuning: %.0f ops/s; CR layer has served %d of %d ops (%.0f%%)\n",
		after, st.CRHits, st.Ops, 100*float64(st.CRHits)/float64(st.Ops))

	stop.Store(true)
	wg.Wait()
}

func measure(store *kvcore.Store, window time.Duration) float64 {
	before := store.Ops()
	start := time.Now()
	time.Sleep(window)
	return float64(store.Ops()-before) / time.Since(start).Seconds()
}
