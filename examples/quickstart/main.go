// Quickstart: open an embedded μTPS store, write and read a few values,
// and run a range scan on the tree engine.
package main

import (
	"fmt"
	"log"

	"mutps"
)

func main() {
	store, err := mutps.Open(mutps.Options{
		Engine:  mutps.Tree, // μTPS-T: supports Scan
		Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Point operations.
	store.Put(1, []byte("alpha"))
	store.Put(2, []byte("beta"))
	store.Put(3, []byte("gamma"))
	if v, ok, _ := store.Get(2); ok {
		fmt.Printf("get(2) = %s\n", v)
	}
	store.Delete(2)
	if _, ok, _ := store.Get(2); !ok {
		fmt.Println("get(2) after delete = not found")
	}

	// Range scan (ascending from the start key).
	for i := uint64(10); i < 20; i++ {
		store.Put(i, []byte(fmt.Sprintf("value-%d", i)))
	}
	kvs, err := store.Scan(12, 4)
	if err != nil {
		log.Fatal(err)
	}
	for _, kv := range kvs {
		fmt.Printf("scan: %d → %s\n", kv.Key, kv.Value)
	}

	// The two-layer thread architecture is observable and adjustable.
	nCR, nMR := store.Split()
	fmt.Printf("workers: %d cache-resident, %d memory-resident\n", nCR, nMR)
	if err := store.SetSplit(2); err != nil {
		log.Fatal(err)
	}
	st := store.Stats()
	fmt.Printf("stats: %d ops, %d forwarded to MR, %d items\n",
		st.Ops, st.Forwarded, st.Items)
}
