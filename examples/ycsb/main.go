// YCSB: drive the real μTPS store with the standard YCSB operation mixes
// and a Zipfian key distribution, printing throughput and how much traffic
// the cache-resident layer absorbed.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"mutps"
	"mutps/internal/workload"
)

func main() {
	keys := flag.Uint64("keys", 100_000, "pre-populated keys")
	ops := flag.Int("ops", 40_000, "operations per mix")
	clients := flag.Int("clients", 4, "client goroutines")
	valueSize := flag.Int("value", 64, "value size in bytes")
	flag.Parse()

	store, err := mutps.Open(mutps.Options{
		Engine:          mutps.Hash,
		Workers:         4,
		HotItems:        4096,
		RefreshInterval: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	val := make([]byte, *valueSize)
	for i := uint64(0); i < *keys; i++ {
		store.Preload(i, val)
	}
	fmt.Printf("populated %d keys × %dB\n", *keys, *valueSize)

	for _, mix := range []struct {
		name string
		m    workload.Mix
	}{
		{"YCSB-A (50/50)", workload.MixYCSBA},
		{"YCSB-B (95/5)", workload.MixYCSBB},
		{"YCSB-C (100 get)", workload.MixYCSBC},
	} {
		before := store.Stats()
		start := time.Now()
		var wg sync.WaitGroup
		perClient := *ops / *clients
		for c := 0; c < *clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				gen := workload.NewGenerator(workload.Config{
					Keys:      *keys,
					Theta:     0.99,
					Mix:       mix.m,
					ValueSize: workload.FixedSize(*valueSize),
					Seed:      uint64(c + 1),
				})
				buf := make([]byte, *valueSize)
				// One value buffer per client, threaded through every get:
				// the store's zero-allocation read path (GetInto).
				getBuf := make([]byte, 0, *valueSize)
				for i := 0; i < perClient; i++ {
					req := gen.Next()
					switch req.Op {
					case workload.OpGet:
						v, _, _ := store.GetInto(req.Key, getBuf)
						getBuf = v[:0]
					case workload.OpPut:
						store.Put(req.Key, buf)
					}
				}
			}(c)
		}
		wg.Wait()
		el := time.Since(start)
		after := store.Stats()
		done := after.Ops - before.Ops
		hits := after.CRHits - before.CRHits
		fmt.Printf("%-17s %8.0f ops/s  (CR layer served %.1f%%, hot view %d items)\n",
			mix.name,
			float64(done)/el.Seconds(),
			100*float64(hits)/float64(done),
			after.HotSize)
	}
}
