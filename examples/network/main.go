// Network: start a μTPS TCP server in-process and hammer it with several
// concurrent clients — the deployment shape of the paper's system, with
// the RDMA dataplane replaced by TCP.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"mutps/internal/kvcore"
	"mutps/internal/netserver"
)

func main() {
	store, err := kvcore.Open(kvcore.Config{
		Engine:    kvcore.Tree,
		Workers:   4,
		CRWorkers: 1,
		HotItems:  1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := netserver.Serve(store, ln)
	defer srv.Close()
	fmt.Printf("μTPS-T server on %s\n", srv.Addr())

	const clients, perClient = 4, 250
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli, err := netserver.Dial(srv.Addr().String())
			if err != nil {
				log.Fatal(err)
			}
			defer cli.Close()
			for i := 0; i < perClient; i++ {
				k := uint64(c*perClient + i)
				v := make([]byte, 8)
				binary.LittleEndian.PutUint64(v, k)
				if err := cli.Put(k, v); err != nil {
					log.Fatal(err)
				}
				got, found, err := cli.Get(k)
				if err != nil || !found || binary.LittleEndian.Uint64(got) != k {
					log.Fatalf("read-your-write failed for key %d", k)
				}
			}
		}(c)
	}
	wg.Wait()
	el := time.Since(start)
	total := clients * perClient * 2
	fmt.Printf("%d clients × %d put+get: %d ops in %v (%.0f ops/s over TCP)\n",
		clients, perClient, total, el.Round(time.Millisecond),
		float64(total)/el.Seconds())

	// A cross-client range scan.
	cli, err := netserver.Dial(srv.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()
	kvs, err := cli.Scan(0, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first %d keys by scan:", len(kvs))
	for _, kv := range kvs {
		fmt.Printf(" %d", kv.Key)
	}
	fmt.Println()
	fmt.Printf("server stats: %+v\n", store.Stats())
}
