// Autotune: run the simulated μTPS system through a workload shift (the
// paper's Figure 14 scenario — value size drops from 512 B to 8 B) and
// watch the auto-tuner re-derive the thread split, hot-set size, and LLC
// way allocation without stopping the system.
package main

import (
	"fmt"

	"mutps/internal/simhw"
	"mutps/internal/simkv"
	"mutps/internal/tuner"
	"mutps/internal/workload"
)

func main() {
	hw := simhw.DefaultParams()
	hw.Cores = 8
	hw.LLCSets = 2048 // laptop-scale model; shapes match the full machine

	const keys = 200_000
	cfg := workload.Config{
		Keys:      keys,
		Theta:     0.99,
		Mix:       workload.MixYCSBA,
		ValueSize: workload.FixedSize(512),
		Seed:      1,
	}
	sys := simkv.NewSystem(simkv.SystemParams{
		HW: hw, Keys: keys, ItemSize: 512,
		Workers: hw.Cores, BatchSize: 8, TreeIndex: true,
		CRWorkers: 2, HotItems: 2000,
	}, simkv.ArchMuTPS, workload.NewGenerator(cfg))

	tn := &simkv.Tunable{S: sys, MaxCache: 4000, CacheStep: 1000, Window: 6000}

	fmt.Println("tuning for 512 B values …")
	res := tuner.Optimize(tn)
	show := func(r tuner.Result) {
		fmt.Printf("  → MR threads %d/%d, cache %d items, MR ways %d: %.1f Mops (%d probes)\n",
			r.Best.MRThreads, hw.Cores, r.Best.CacheItems, r.Best.MRWays, r.Score, r.Probes)
	}
	show(res)

	for i := 0; i < 3; i++ {
		fmt.Printf("window %d: %.1f Mops\n", i, tn.Measure(res.Best))
	}

	fmt.Println("workload shifts: values are now 8 B; stale configuration …")
	sys.SetItemSize(8)
	fmt.Printf("window 3: %.1f Mops (pre-retune)\n", tn.Measure(res.Best))

	fmt.Println("auto-tuner reconfigures (system keeps serving) …")
	res = tuner.Optimize(tn)
	show(res)
	for i := 4; i < 7; i++ {
		fmt.Printf("window %d: %.1f Mops\n", i, tn.Measure(res.Best))
	}
}
