package mutps

// One testing.B benchmark per table and figure of the paper's evaluation,
// as DESIGN.md's experiment index requires. Each benchmark regenerates its
// experiment at quick scale on the simulated substrate (go test -bench
// reports wall time per regeneration; the printed rows appear with -v via
// cmd/mutps-bench). BenchmarkStore* additionally exercise the real store.

import (
	"encoding/binary"
	"io"
	"runtime"
	"testing"
	"time"

	"mutps/internal/bench"
)

func benchScale() bench.Scale {
	s := bench.QuickScale()
	s.Warm = 2000
	s.Ops = 8000
	s.LatOps = 3000
	return s
}

func BenchmarkFig2a(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		bench.RunFig2a(s, io.Discard)
	}
}

func BenchmarkFig2b(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		bench.RunFig2b(s, io.Discard)
	}
}

func BenchmarkFig2c(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		bench.RunFig2c(s, io.Discard)
	}
}

func BenchmarkTable1(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		bench.RunTab1(s, io.Discard)
	}
}

func BenchmarkFig7(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		cells := bench.RunFig7(s, io.Discard, []int{8, 256})
		// Report the headline ratio: μTPS over BaseKV on skewed tree reads.
		for _, c := range cells {
			if c.Tree && c.Mix == "YCSB-B" && c.ItemSize == 256 {
				b.ReportMetric(c.MuTPS/c.BaseKV, "speedup-vs-BaseKV")
			}
		}
	}
}

func BenchmarkFig8a(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		bench.RunFig8a(s, io.Discard)
	}
}

func BenchmarkFig8bc(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		bench.RunFig8bc(s, io.Discard)
	}
}

func BenchmarkFig9(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		bench.RunFig9(s, io.Discard)
	}
}

func BenchmarkFig10(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		bench.RunFig10(s, io.Discard)
	}
}

func BenchmarkFig11(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		bench.RunFig11(s, io.Discard)
	}
}

func BenchmarkFig12(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		bench.RunFig12(s, io.Discard)
	}
}

func BenchmarkFig13a(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		bench.RunFig13a(s, io.Discard)
	}
}

func BenchmarkFig13b(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		bench.RunFig13b(s, io.Discard)
	}
}

func BenchmarkFig13c(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		bench.RunFig13c(s, io.Discard)
	}
}

func BenchmarkFig14(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		bench.RunFig14(s, io.Discard)
	}
}

func BenchmarkTunerAblation(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		bench.RunTunerAblation(s, io.Discard)
	}
}

// --- real-store microbenchmarks ----------------------------------------

func benchStore(b *testing.B, engine Engine) *Store {
	b.Helper()
	s, err := Open(Options{Engine: engine, Workers: 4, RefreshInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	for i := uint64(0); i < 1<<16; i++ {
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], i)
		s.Preload(i, v[:])
	}
	return s
}

func BenchmarkStoreGetHash(b *testing.B) {
	s := benchStore(b, Hash)
	b.ReportAllocs()
	b.ResetTimer()
	i := uint64(0)
	for n := 0; n < b.N; n++ {
		i = i*6364136223846793005 + 1
		s.Get(i % (1 << 16))
	}
}

// BenchmarkStoreGetIntoHash is the YCSB-C-style zero-alloc read path: the
// caller threads one value buffer through every request.
func BenchmarkStoreGetIntoHash(b *testing.B) {
	s := benchStore(b, Hash)
	b.ReportAllocs()
	b.ResetTimer()
	i := uint64(0)
	buf := make([]byte, 0, 8)
	for n := 0; n < b.N; n++ {
		i = i*6364136223846793005 + 1
		v, _, _ := s.GetInto(i%(1<<16), buf)
		buf = v[:0]
	}
}

// BenchmarkStorePutHash is the write-heavy gate: every put replaces the
// item (the value length alternates between 24 and 28 bytes, both in the
// 32-byte size class), so the benchmark measures the full item-replacement
// path — allocate, index swap, retire, reclaim. With the arena on the
// steady state is 0 allocs/op; GC cycles per second are reported so arena
// runs can be compared against -arena-off runs with one command.
func BenchmarkStorePutHash(b *testing.B) {
	benchmarkStorePutHash(b, Options{Engine: Hash, Workers: 4, RefreshInterval: -1})
}

// BenchmarkStorePutHashNoArena is the same workload with the slab arena
// disabled (every replacement hits the Go allocator) — the before side of
// the EXPERIMENTS.md comparison.
func BenchmarkStorePutHashNoArena(b *testing.B) {
	benchmarkStorePutHash(b, Options{Engine: Hash, Workers: 4, RefreshInterval: -1, ArenaOff: true})
}

func benchmarkStorePutHash(b *testing.B, o Options) {
	s, err := Open(o)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	for i := uint64(0); i < 1<<16; i++ {
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], i)
		s.Preload(i, v[:])
	}
	v24 := make([]byte, 24)
	v28 := make([]byte, 28)
	// Per-key toggle: consecutive puts to the same key always alternate
	// 24 ↔ 28 bytes, so every put after a key's first is an item
	// replacement (same 32-byte size class, different length).
	var flip [1 << 16]bool
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	i := uint64(0)
	for n := 0; n < b.N; n++ {
		i = i*6364136223846793005 + 1
		k := i % (1 << 16)
		v := v24
		if flip[k] {
			v = v28
		}
		flip[k] = !flip[k]
		s.Put(k, v)
	}
	b.StopTimer()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	if el := time.Since(t0).Seconds(); el > 0 {
		b.ReportMetric(float64(m1.NumGC-m0.NumGC)/el, "GC/s")
	}
}

func BenchmarkStorePutTree(b *testing.B) {
	s := benchStore(b, Tree)
	var v [8]byte
	b.ReportAllocs()
	b.ResetTimer()
	i := uint64(0)
	for n := 0; n < b.N; n++ {
		i = i*6364136223846793005 + 1
		s.Put(i%(1<<16), v[:])
	}
}

func BenchmarkStoreScanTree(b *testing.B) {
	s := benchStore(b, Tree)
	b.ReportAllocs()
	b.ResetTimer()
	i := uint64(0)
	for n := 0; n < b.N; n++ {
		i = i*6364136223846793005 + 1
		if _, err := s.Scan(i%(1<<16), 50); err != nil {
			b.Fatal(err)
		}
	}
}
