package coldtier

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// openTest opens a log with background goroutines and checkpointing
// disabled, so reopen tests exercise the full-rescan path; checkpoint
// behavior has its own helpers in checkpoint_test.go.
func openTest(t *testing.T, dir string, segBytes int64) *Log {
	t.Helper()
	l, err := Open(Options{Dir: dir, SegmentBytes: segBytes,
		CompactInterval: -1, CheckpointInterval: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

// crash abandons l without Close: background goroutines are stopped and
// the segment files are closed with no final checkpoint, so a subsequent
// Open sees exactly what a killed process would have left on disk.
func crash(l *Log) {
	l.closeOnce.Do(func() {
		close(l.stop)
		l.wg.Wait()
		l.closed.Store(true)
		l.gmu.Lock()
		for _, s := range l.graveyard {
			s.f.Close()
		}
		l.graveyard = nil
		l.gmu.Unlock()
		for _, s := range l.set.Load().segs {
			s.f.Close()
		}
	})
}

func val(key uint64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(key + uint64(i))
	}
	return b
}

func TestPutGetRoundtrip(t *testing.T) {
	l := openTest(t, t.TempDir(), 1<<20)
	defer l.Close()
	for k := uint64(1); k <= 100; k++ {
		if _, err := l.Put(k, 0, val(k, int(k)%256)); err != nil {
			t.Fatalf("Put(%d): %v", k, err)
		}
	}
	if l.Len() != 100 {
		t.Fatalf("Len = %d, want 100", l.Len())
	}
	now := time.Now().UnixNano()
	for k := uint64(1); k <= 100; k++ {
		v, exp, _, ok := l.Get(k, nil, now)
		if !ok {
			t.Fatalf("Get(%d): miss", k)
		}
		if exp != 0 {
			t.Fatalf("Get(%d): exp = %d, want 0", k, exp)
		}
		if !bytes.Equal(v, val(k, int(k)%256)) {
			t.Fatalf("Get(%d): wrong value", k)
		}
	}
	if _, _, _, ok := l.Get(999, nil, now); ok {
		t.Fatal("Get(999): unexpected hit")
	}
}

func TestOverwriteAndDeadAccounting(t *testing.T) {
	l := openTest(t, t.TempDir(), 1<<20)
	defer l.Close()
	l.Put(7, 0, val(7, 64))
	if l.DeadBytes() != 0 {
		t.Fatalf("DeadBytes = %d before overwrite", l.DeadBytes())
	}
	l.Put(7, 0, val(8, 64))
	if want := int64(recHeaderV2 + 64); l.DeadBytes() != want {
		t.Fatalf("DeadBytes = %d, want %d", l.DeadBytes(), want)
	}
	v, _, _, ok := l.Get(7, nil, time.Now().UnixNano())
	if !ok || !bytes.Equal(v, val(8, 64)) {
		t.Fatal("overwrite not visible")
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
}

func TestDeleteTombstone(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, 1<<20)
	l.Put(1, 0, val(1, 32))
	l.Put(2, 0, val(2, 32))
	if !l.Delete(1) {
		t.Fatal("Delete(1) = false")
	}
	if l.Delete(1) {
		t.Fatal("second Delete(1) = true")
	}
	if _, _, _, ok := l.Get(1, nil, time.Now().UnixNano()); ok {
		t.Fatal("deleted key still readable")
	}
	l.Close()

	// Reopen: the tombstone must keep key 1 dead.
	l2 := openTest(t, dir, 1<<20)
	defer l2.Close()
	if _, _, _, ok := l2.Get(1, nil, time.Now().UnixNano()); ok {
		t.Fatal("deleted key resurrected by replay")
	}
	if v, _, _, ok := l2.Get(2, nil, time.Now().UnixNano()); !ok || !bytes.Equal(v, val(2, 32)) {
		t.Fatal("live key lost across reopen")
	}
}

func TestExpiryMiss(t *testing.T) {
	l := openTest(t, t.TempDir(), 1<<20)
	defer l.Close()
	now := time.Now().UnixNano()
	l.Put(1, uint64(now+int64(time.Hour)), val(1, 16))
	l.Put(2, uint64(now-1), val(2, 16)) // already expired
	if _, _, _, ok := l.Get(1, nil, now); !ok {
		t.Fatal("unexpired key missed")
	}
	if _, _, _, ok := l.Get(2, nil, now); ok {
		t.Fatal("expired key served")
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d after lazy expiry drop, want 1", l.Len())
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, 2048) // small segments force rotation
	for k := uint64(1); k <= 200; k++ {
		l.Put(k, 0, val(k, 100))
	}
	for k := uint64(1); k <= 200; k += 2 {
		l.Put(k, 0, val(k+1000, 100)) // overwrite odd keys
	}
	segs := l.Segments()
	if segs < 2 {
		t.Fatalf("expected multiple segments, got %d", segs)
	}
	l.Close()

	l2 := openTest(t, dir, 2048)
	defer l2.Close()
	if l2.Len() != 200 {
		t.Fatalf("Len = %d after reopen, want 200", l2.Len())
	}
	now := time.Now().UnixNano()
	for k := uint64(1); k <= 200; k++ {
		want := val(k, 100)
		if k%2 == 1 {
			want = val(k+1000, 100)
		}
		v, _, _, ok := l2.Get(k, nil, now)
		if !ok || !bytes.Equal(v, want) {
			t.Fatalf("Get(%d) wrong after reopen", k)
		}
	}
}

func TestReopenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, 1<<20)
	l.Put(1, 0, val(1, 64))
	l.Put(2, 0, val(2, 64))
	l.Close()

	name := filepath.Join(dir, segName(1))
	fi, err := os.Stat(name)
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the middle of the second record.
	if err := os.Truncate(name, fi.Size()-10); err != nil {
		t.Fatal(err)
	}

	l2 := openTest(t, dir, 1<<20)
	defer l2.Close()
	if l2.Len() != 1 {
		t.Fatalf("Len = %d after torn-tail reopen, want 1", l2.Len())
	}
	if v, _, _, ok := l2.Get(1, nil, time.Now().UnixNano()); !ok || !bytes.Equal(v, val(1, 64)) {
		t.Fatal("intact record lost")
	}
	if _, _, _, ok := l2.Get(2, nil, time.Now().UnixNano()); ok {
		t.Fatal("torn record served")
	}
	// The log must keep appending cleanly after the truncation.
	if _, err := l2.Put(3, 0, val(3, 64)); err != nil {
		t.Fatal(err)
	}
	if v, _, _, ok := l2.Get(3, nil, time.Now().UnixNano()); !ok || !bytes.Equal(v, val(3, 64)) {
		t.Fatal("post-truncation append unreadable")
	}
}

func TestCompactReclaimsSpace(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, 4096)
	for k := uint64(1); k <= 100; k++ {
		l.Put(k, 0, val(k, 100))
	}
	for k := uint64(1); k <= 100; k++ {
		if k%2 == 0 {
			l.Delete(k)
		} else {
			l.Put(k, 0, val(k+7, 100)) // re-put: old record dead
		}
	}
	before := l.LogBytes()
	segsBefore := l.Segments()
	// Two passes: the first may leave carried tombstones in the graveyard era.
	l.Compact()
	removed := l.Compact()
	_ = removed
	if l.LogBytes() >= before {
		t.Fatalf("LogBytes %d -> %d: compaction reclaimed nothing", before, l.LogBytes())
	}
	if l.Segments() >= segsBefore {
		t.Fatalf("Segments %d -> %d: compaction removed nothing", segsBefore, l.Segments())
	}
	now := time.Now().UnixNano()
	for k := uint64(1); k <= 100; k++ {
		v, _, _, ok := l.Get(k, nil, now)
		if k%2 == 0 {
			if ok {
				t.Fatalf("deleted key %d alive after compact", k)
			}
		} else if !ok || !bytes.Equal(v, val(k+7, 100)) {
			t.Fatalf("live key %d wrong after compact", k)
		}
	}
	// On-disk state must also survive a reopen after compaction.
	l.Close()
	l2 := openTest(t, dir, 4096)
	defer l2.Close()
	for k := uint64(1); k <= 100; k += 2 {
		v, _, _, ok := l2.Get(k, nil, now)
		if !ok || !bytes.Equal(v, val(k+7, 100)) {
			t.Fatalf("live key %d wrong after compact+reopen", k)
		}
	}
	if l2.Len() != 50 {
		t.Fatalf("Len = %d after compact+reopen, want 50", l2.Len())
	}
}

func TestPutIfConditional(t *testing.T) {
	l := openTest(t, t.TempDir(), 1<<20)
	defer l.Close()
	loc1, _ := l.Put(1, 0, val(1, 32))
	// Matching expectation: index repointed.
	ok, err := l.PutIf(1, 0, val(2, 32), loc1)
	if err != nil || !ok {
		t.Fatalf("PutIf with matching loc: ok=%v err=%v", ok, err)
	}
	v, _, _, _ := l.Get(1, nil, time.Now().UnixNano())
	if !bytes.Equal(v, val(2, 32)) {
		t.Fatal("PutIf did not publish")
	}
	// Stale expectation: index untouched.
	ok, err = l.PutIf(1, 0, val(3, 32), loc1)
	if err != nil || ok {
		t.Fatalf("PutIf with stale loc: ok=%v err=%v", ok, err)
	}
	v, _, _, _ = l.Get(1, nil, time.Now().UnixNano())
	if !bytes.Equal(v, val(2, 32)) {
		t.Fatal("stale PutIf clobbered the index")
	}
	// Absent key: no-op.
	if ok, _ := l.PutIf(42, 0, val(4, 8), Loc{Seg: 1, Off: 0, Len: 8}); ok {
		t.Fatal("PutIf on absent key succeeded")
	}
}

func TestConcurrentStress(t *testing.T) {
	l := openTest(t, t.TempDir(), 8192)
	defer l.Close()
	const keys = 64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	time.AfterFunc(100*time.Millisecond, func() { close(stop) })
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := uint64(g)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := i % keys
				switch i % 5 {
				case 0, 1:
					l.Put(k, 0, val(k, 40))
				case 2:
					now := time.Now().UnixNano()
					if v, _, _, ok := l.Get(k, nil, now); ok {
						if len(v) != 40 || v[0] != byte(k) {
							panic(fmt.Sprintf("corrupt read for key %d", k))
						}
					}
				case 3:
					l.Delete(k)
				case 4:
					l.Compact()
				}
				i += 7
			}
		}(g)
	}
	wg.Wait()
}

func TestCloseIdempotent(t *testing.T) {
	l := openTest(t, t.TempDir(), 1<<20)
	l.Put(1, 0, val(1, 32))
	err1 := l.Close()
	// A second Close must not panic on the stop channel and must return
	// the first call's result.
	err2 := l.Close()
	if err1 != err2 {
		t.Fatalf("Close results differ: %v vs %v", err1, err2)
	}
	if _, err := l.Put(2, 0, val(2, 8)); err == nil {
		t.Fatal("Put after Close succeeded")
	}
}

func TestCloseRacingCompact(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		l := openTest(t, t.TempDir(), 2048)
		for k := uint64(1); k <= 60; k++ {
			l.Put(k, 0, val(k, 100))
		}
		for k := uint64(1); k <= 60; k += 2 {
			l.Delete(k)
		}
		var wg sync.WaitGroup
		wg.Add(3)
		go func() { defer wg.Done(); l.Compact() }()
		go func() { defer wg.Done(); l.Close() }()
		go func() { defer wg.Done(); l.Close() }()
		wg.Wait()
	}
}

// TestForeignFilesSkipped pins the segment-name parsing fix: prefix
// matches like seg-000001.log.tmp used to be replayed — and truncated! —
// as segment 1. Foreign files must be skipped untouched, and orphaned
// .tmp debris from our own tooling garbage-collected.
func TestForeignFilesSkipped(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, 1<<20)
	l.Put(1, 0, val(1, 64))
	l.Close()

	foreign := map[string][]byte{
		"seg-000001.logx":    []byte("not a segment"),
		"seg-00001.log":      []byte("too few digits"),
		"seg-.log":           []byte("no digits"),
		"notes.txt":          []byte("user file"),
		"index-000001.ckptx": []byte("not a checkpoint"),
	}
	for name, body := range foreign {
		if err := os.WriteFile(filepath.Join(dir, name), body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Orphaned tmp files from a crashed checkpoint/rewrite: removed at open.
	orphans := []string{"seg-000001.log.tmp", "index-000002.ckpt.tmp"}
	for _, name := range orphans {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("half-written"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	l2 := openTest(t, dir, 1<<20)
	defer l2.Close()
	if l2.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (foreign files replayed?)", l2.Len())
	}
	if v, _, _, ok := l2.Get(1, nil, time.Now().UnixNano()); !ok || !bytes.Equal(v, val(1, 64)) {
		t.Fatal("live key lost")
	}
	for name, body := range foreign {
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil || !bytes.Equal(got, body) {
			t.Fatalf("foreign file %s modified or removed (err=%v)", name, err)
		}
	}
	for _, name := range orphans {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			t.Fatalf("orphan %s not garbage-collected", name)
		}
	}
}

func TestParseSegName(t *testing.T) {
	cases := map[string]struct {
		id uint32
		ok bool
	}{
		"seg-000001.log":     {1, true},
		"seg-123456.log":     {123456, true},
		"seg-4294967295.log": {4294967295, true},
		"seg-000000.log":     {0, false},
		"seg-000001.log.tmp": {0, false},
		"seg-000001.logx":    {0, false},
		"xseg-000001.log":    {0, false},
		"seg-00001.log":      {0, false}, // not canonical (5 digits)
		"seg-0000001.log":    {0, false}, // not canonical (padded 7 digits)
		"seg-abc001.log":     {0, false},
		"seg-4294967296.log": {0, false}, // > uint32
	}
	for name, want := range cases {
		id, ok := parseSegName(name)
		if ok != want.ok || (ok && id != want.id) {
			t.Errorf("parseSegName(%q) = (%d, %v), want (%d, %v)", name, id, ok, want.id, want.ok)
		}
	}
}

// TestLegacyFormatReadable hand-crafts a checksum-less v1 segment and
// verifies the current code still replays and serves it, and that appends
// into the legacy file keep its format consistent.
func TestLegacyFormatReadable(t *testing.T) {
	dir := t.TempDir()
	rec := func(kind byte, key uint64, v []byte) []byte {
		b := make([]byte, recHeaderV1+len(v))
		b[0] = kind
		binary.LittleEndian.PutUint64(b[1:9], key)
		binary.LittleEndian.PutUint32(b[17:21], uint32(len(v)))
		copy(b[recHeaderV1:], v)
		return b
	}
	var file []byte
	file = append(file, rec(recValue, 1, val(1, 40))...)
	file = append(file, rec(recValue, 2, val(2, 40))...)
	file = append(file, rec(recTombstone, 2, nil)...)
	if err := os.WriteFile(filepath.Join(dir, segName(1)), file, 0o644); err != nil {
		t.Fatal(err)
	}

	l := openTest(t, dir, 1<<20)
	if v, _, _, ok := l.Get(1, nil, time.Now().UnixNano()); !ok || !bytes.Equal(v, val(1, 40)) {
		t.Fatal("v1 record unreadable")
	}
	if _, _, _, ok := l.Get(2, nil, time.Now().UnixNano()); ok {
		t.Fatal("v1 tombstone ignored")
	}
	// Appends land in the legacy segment in legacy format; reopen must
	// still parse the mixed file.
	if _, err := l.Put(3, 0, val(3, 40)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2 := openTest(t, dir, 1<<20)
	defer l2.Close()
	if v, _, _, ok := l2.Get(3, nil, time.Now().UnixNano()); !ok || !bytes.Equal(v, val(3, 40)) {
		t.Fatal("append into v1 segment lost across reopen")
	}
	if l2.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l2.Len())
	}
}

// TestDeletePutRaceReplayConsistent pins the Delete/Put ordering fix: the
// tombstone append now happens inside the stripe-lock critical section, so
// whatever state a racing Put and Delete leave in memory, replaying the
// log after a crash reproduces it exactly. Before the fix a Put could
// append its value record after the tombstone yet have its index entry
// deleted — reopen then resurrected the key.
func TestDeletePutRaceReplayConsistent(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 10
	}
	for iter := 0; iter < iters; iter++ {
		dir := t.TempDir()
		l := openTest(t, dir, 1<<20)
		const key = uint64(7)
		l.Put(key, 0, val(1, 32))
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			l.Put(key, 0, val(2, 32))
		}()
		go func() {
			defer wg.Done()
			l.Delete(key)
		}()
		wg.Wait()
		memV, _, _, memOK := l.Get(key, nil, time.Now().UnixNano())
		memCopy := append([]byte(nil), memV...)
		crash(l)

		l2 := openTest(t, dir, 1<<20)
		v, _, _, ok := l2.Get(key, nil, time.Now().UnixNano())
		if ok != memOK {
			t.Fatalf("iter %d: replay disagrees with pre-crash memory: mem ok=%v, replay ok=%v",
				iter, memOK, ok)
		}
		if ok && !bytes.Equal(v, memCopy) {
			t.Fatalf("iter %d: replay value %v != pre-crash %v", iter, v[:4], memCopy[:4])
		}
		l2.Close()
	}
}
