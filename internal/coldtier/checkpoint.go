package coldtier

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Checkpoint format (index-<seq>.ckpt, little-endian, CRC32C-trailed):
//
//	magic[8] "MTPSCKP1"
//	seq       u64   checkpoint sequence number
//	frontier  u32+i64  segment id + offset of the append head at snapshot time
//	segCount  u32   then {id u32, dead i64} per segment present at snapshot
//	entCount  u64   then {key u64, seg u32, off i64, len u32, exp u64} per entry
//	crc       u32   CRC32C over everything above
//
// The snapshot is exactly the last-record-wins view of the log prefix
// strictly before the frontier: it is taken with every index stripe locked
// (and then the append mutex, matching the stripe→append lock order), so
// no append below the frontier can have a pending index update the scan
// misses. Recovery loads the entries and replays only the suffix past the
// frontier; because replay is last-record-wins, re-applying a suffix
// record whose effect the snapshot happens to include is idempotent.
//
// The file is published atomically — written to a .tmp, fsynced, renamed
// over the final name, directory fsynced — and the previous checkpoint is
// removed only after the rename lands, so a crash mid-write leaves either
// the old checkpoint or both, never a half file under the real name.

var ckptMagic = [8]byte{'M', 'T', 'P', 'S', 'C', 'K', 'P', '1'}

const (
	ckptHeaderLen = 8 + 8 + 4 + 8 // magic, seq, frontier seg, frontier off
	ckptSegLen    = 4 + 8
	ckptEntLen    = 8 + 4 + 8 + 4 + 8
)

func ckptName(seq uint64) string { return fmt.Sprintf("index-%06d.ckpt", seq) }

// parseCkptName mirrors parseSegName: only exact, canonical checkpoint
// names count; "index-000001.ckpt.tmp" and friends are debris, not
// checkpoints.
func parseCkptName(name string) (uint64, bool) {
	const pre, suf = "index-", ".ckpt"
	if len(name) < len(pre)+6+len(suf) ||
		!strings.HasPrefix(name, pre) || !strings.HasSuffix(name, suf) {
		return 0, false
	}
	digits := name[len(pre) : len(name)-len(suf)]
	var seq uint64
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		n := seq*10 + uint64(c-'0')
		if n < seq {
			return 0, false // overflow
		}
		seq = n
	}
	if seq == 0 || name != ckptName(seq) {
		return 0, false
	}
	return seq, true
}

type ckptSeg struct {
	id   uint32
	dead int64
}

type ckptEnt struct {
	key uint64
	loc Loc
	exp uint64
}

type checkpoint struct {
	seq         uint64
	frontierSeg uint32
	frontierOff int64
	segs        []ckptSeg
	ents        []ckptEnt
}

func encodeCheckpoint(c *checkpoint) []byte {
	n := ckptHeaderLen + 4 + len(c.segs)*ckptSegLen + 8 + len(c.ents)*ckptEntLen + 4
	b := make([]byte, 0, n)
	b = append(b, ckptMagic[:]...)
	b = binary.LittleEndian.AppendUint64(b, c.seq)
	b = binary.LittleEndian.AppendUint32(b, c.frontierSeg)
	b = binary.LittleEndian.AppendUint64(b, uint64(c.frontierOff))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(c.segs)))
	for _, s := range c.segs {
		b = binary.LittleEndian.AppendUint32(b, s.id)
		b = binary.LittleEndian.AppendUint64(b, uint64(s.dead))
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(len(c.ents)))
	for _, e := range c.ents {
		b = binary.LittleEndian.AppendUint64(b, e.key)
		b = binary.LittleEndian.AppendUint32(b, e.loc.Seg)
		b = binary.LittleEndian.AppendUint64(b, uint64(e.loc.Off))
		b = binary.LittleEndian.AppendUint32(b, e.loc.Len)
		b = binary.LittleEndian.AppendUint64(b, e.exp)
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))
	return b
}

// readCheckpoint loads and validates one checkpoint file. Any structural
// or checksum mismatch returns an error: the caller falls back to an older
// checkpoint or a full rescan, never to a partial load.
func readCheckpoint(path string) (*checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < ckptHeaderLen+4+8+4 || [8]byte(b[:8]) != ckptMagic {
		return nil, fmt.Errorf("coldtier: %s: not a checkpoint", filepath.Base(path))
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("coldtier: %s: checksum mismatch", filepath.Base(path))
	}
	c := &checkpoint{
		seq:         binary.LittleEndian.Uint64(b[8:16]),
		frontierSeg: binary.LittleEndian.Uint32(b[16:20]),
		frontierOff: int64(binary.LittleEndian.Uint64(b[20:28])),
	}
	off := ckptHeaderLen
	segCount := int(binary.LittleEndian.Uint32(b[off : off+4]))
	off += 4
	if segCount < 0 || off+segCount*ckptSegLen+8 > len(body) {
		return nil, fmt.Errorf("coldtier: %s: truncated segment table", filepath.Base(path))
	}
	c.segs = make([]ckptSeg, segCount)
	for i := range c.segs {
		c.segs[i].id = binary.LittleEndian.Uint32(b[off : off+4])
		c.segs[i].dead = int64(binary.LittleEndian.Uint64(b[off+4 : off+12]))
		off += ckptSegLen
	}
	entCount := binary.LittleEndian.Uint64(b[off : off+8])
	off += 8
	if uint64(len(body)-off) != entCount*ckptEntLen {
		return nil, fmt.Errorf("coldtier: %s: truncated entries", filepath.Base(path))
	}
	c.ents = make([]ckptEnt, entCount)
	for i := range c.ents {
		c.ents[i].key = binary.LittleEndian.Uint64(b[off : off+8])
		c.ents[i].loc.Seg = binary.LittleEndian.Uint32(b[off+8 : off+12])
		c.ents[i].loc.Off = int64(binary.LittleEndian.Uint64(b[off+12 : off+20]))
		c.ents[i].loc.Len = binary.LittleEndian.Uint32(b[off+20 : off+24])
		c.ents[i].exp = binary.LittleEndian.Uint64(b[off+24 : off+32])
		off += ckptEntLen
	}
	return c, nil
}

// recoverFromCheckpoint rebuilds the index from a validated checkpoint and
// replays the segment suffix past its frontier. It returns false — with
// the index reset — when the surviving segments cannot satisfy the
// frontier (the log on disk is behind the checkpoint, e.g. after losing
// unsynced file data), in which case the caller falls back.
func (l *Log) recoverFromCheckpoint(c *checkpoint, now uint64) bool {
	set := l.set.Load()
	if fseg := set.find(c.frontierSeg); fseg != nil {
		if c.frontierOff > fseg.size.Load() {
			return false // checkpoint is ahead of the surviving bytes
		}
	} else if c.frontierSeg != 0 {
		// The frontier segment may legitimately be compacted away, but then
		// nothing older than the frontier may survive either.
		for _, s := range set.segs {
			if s.id <= c.frontierSeg {
				return false
			}
		}
	}

	// Restore per-segment dead-byte accounting for segments the snapshot
	// knew; segments newer than the frontier accumulate theirs during the
	// suffix replay.
	for _, cs := range c.segs {
		if seg := set.find(cs.id); seg != nil && cs.dead <= seg.size.Load() {
			seg.dead.Store(cs.dead)
		}
	}

	loaded := int64(0)
	for _, e := range c.ents {
		seg := set.find(e.loc.Seg)
		if seg == nil {
			// Compacted away after the snapshot; the relocated record sits in
			// the suffix and the replay below re-adds the key.
			continue
		}
		if e.loc.Off < seg.base() || e.loc.Off+seg.recHdr()+int64(e.loc.Len) > seg.size.Load() {
			continue // dangling entry: the record's bytes did not survive
		}
		if e.exp != 0 && now >= e.exp {
			seg.dead.Add(seg.recHdr() + int64(e.loc.Len))
			continue
		}
		st := &l.stripes[e.key%idxStripes]
		if old, had := st.m[e.key]; had {
			l.deadAt(old.loc) // duplicate key in a corrupt-but-checksummed file
		} else {
			l.entries.Add(1)
		}
		st.m[e.key] = idxEnt{loc: e.loc, exp: e.exp}
		loaded++
	}
	l.recLoaded.Store(loaded)

	// Replay only the suffix: the frontier segment past the frontier
	// offset, and every later segment in full.
	segs := set.segs
	for i, seg := range segs {
		if seg.id < c.frontierSeg {
			continue
		}
		from := seg.base()
		if seg.id == c.frontierSeg {
			from = c.frontierOff
		}
		l.scanSegment(seg, from, now, i == len(segs)-1)
	}
	return true
}

// Checkpoint atomically snapshots the location index to a new
// index-<seq>.ckpt and removes the previous one. The snapshot holds every
// stripe lock plus the append mutex for the copy (microseconds per 100k
// entries); encoding and file I/O happen outside the locks. A no-op when
// the append head has not moved since the last checkpoint.
func (l *Log) Checkpoint() error {
	if l.closed.Load() {
		return ErrClosed
	}
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()

	for i := range l.stripes {
		l.stripes[i].Lock()
	}
	l.mu.Lock()
	fr := frontier{Seg: l.active.id, Off: l.active.size.Load()}
	if prev := l.ckptFrontier.Load(); prev != nil && *prev == fr {
		// Nothing appended since the last checkpoint. In-memory-only changes
		// (lazy expiry drops) need no new snapshot: recovery re-drops
		// expired entries by deadline anyway.
		l.mu.Unlock()
		for i := idxStripes - 1; i >= 0; i-- {
			l.stripes[i].Unlock()
		}
		return nil
	}
	set := l.set.Load()
	c := &checkpoint{
		seq:         l.ckptSeq + 1,
		frontierSeg: fr.Seg,
		frontierOff: fr.Off,
		segs:        make([]ckptSeg, 0, len(set.segs)),
	}
	for _, s := range set.segs {
		c.segs = append(c.segs, ckptSeg{id: s.id, dead: s.dead.Load()})
	}
	l.mu.Unlock()
	c.ents = make([]ckptEnt, 0, l.entries.Load())
	for i := range l.stripes {
		for k, e := range l.stripes[i].m {
			c.ents = append(c.ents, ckptEnt{key: k, loc: e.loc, exp: e.exp})
		}
	}
	for i := idxStripes - 1; i >= 0; i-- {
		l.stripes[i].Unlock()
	}

	if err := l.publishCheckpoint(c); err != nil {
		l.ckptErrors.Inc(0)
		return err
	}
	prevSeq := l.ckptSeq
	l.ckptSeq = c.seq
	if prevSeq != 0 {
		os.Remove(filepath.Join(l.opts.Dir, ckptName(prevSeq)))
	}
	// Only after the predecessor is gone may the compactor rely on the new
	// frontier for tombstone dropping: ckptFrontier must never run ahead
	// of the oldest checkpoint a recovery could still load.
	l.ckptFrontier.Store(&fr)
	l.ckptWrites.Inc(0)
	return nil
}

// publishCheckpoint writes c via tmp + fsync + rename + directory fsync.
func (l *Log) publishCheckpoint(c *checkpoint) error {
	final := filepath.Join(l.opts.Dir, ckptName(c.seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	b := encodeCheckpoint(c)
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(l.opts.Dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (l *Log) ckptLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.Checkpoint()
		}
	}
}
