// Package coldtier implements the SSD half of the store's bounded-memory
// lifecycle: an append-only value log plus an in-memory location index.
// Evicted values are appended to the log instead of vanishing; a get that
// misses RAM consults the location index and reads the value back with one
// pread. A background compactor rewrites the live tail of mostly-dead
// segments and deletes them, bounding log growth under churn.
//
// The log is a cache tier, not a durability layer: appends are not fsynced
// and Open rebuilds the index by replaying segments best-effort, truncating
// a torn tail. Within that contract replay is exact — later records win,
// and deletes append tombstones so a reopened log never resurrects a
// deleted key.
//
// Concurrency: appends serialize on one mutex (eviction and compaction are
// background work, not the request fast path); reads are lock-free preads
// against immutable sealed segments plus striped-RWMutex index lookups.
package coldtier

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mutps/internal/obs"
)

// Record kinds.
const (
	recValue     byte = 0
	recTombstone byte = 1
)

// recHeader is kind(1) key(8) expiry(8) vlen(4).
const recHeader = 1 + 8 + 8 + 4

// maxValue bounds a single record's payload; matches the wire protocol's
// frame cap so nothing the server accepts is unspillable.
const maxValue = 16 << 20

// Loc names a record's position: segment id, byte offset, value length.
// Segment ids start at 1, so the zero Loc never names a real record.
type Loc struct {
	Seg uint32
	Off int64
	Len uint32
}

// Options configures a Log. Zero values select defaults.
type Options struct {
	Dir             string
	SegmentBytes    int64         // rotate the active segment past this size (default 64 MiB)
	CompactMinDead  float64       // compact sealed segments once this fraction is dead (default 0.4)
	CompactInterval time.Duration // background compactor period (default 2s; <0 disables the goroutine)
}

func (o *Options) defaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.CompactMinDead <= 0 {
		o.CompactMinDead = 0.4
	}
	if o.CompactInterval == 0 {
		o.CompactInterval = 2 * time.Second
	}
}

type segment struct {
	id   uint32
	f    *os.File
	size atomic.Int64 // bytes appended (stable once sealed)
	dead atomic.Int64 // bytes belonging to superseded/deleted records
}

// segSet is the copy-on-write view of the segment list, ordered by id.
// Readers load it atomically; rotation and compaction publish new copies.
type segSet struct {
	segs []*segment // ascending id; last is the active segment
}

func (s *segSet) find(id uint32) *segment {
	i := sort.Search(len(s.segs), func(i int) bool { return s.segs[i].id >= id })
	if i < len(s.segs) && s.segs[i].id == id {
		return s.segs[i]
	}
	return nil
}

const idxStripes = 16

type idxEnt struct {
	loc Loc
	exp uint64
}

type stripe struct {
	sync.RWMutex
	m map[uint64]idxEnt
}

// Log is an append-only value log with an in-memory location index.
type Log struct {
	opts Options

	mu     sync.Mutex // append path: active-segment writes and rotation
	active *segment
	nextID uint32
	wbuf   []byte // append scratch, guarded by mu

	set atomic.Pointer[segSet]

	stripes [idxStripes]stripe
	entries atomic.Int64

	// graveyard holds segments removed from the set but not yet closed, so
	// a reader holding the previous segSet snapshot can finish its pread.
	// Each compact pass closes the previous pass's graveyard.
	gmu       sync.Mutex
	graveyard []*segment

	stop chan struct{}
	wg   sync.WaitGroup

	appends     *obs.Counter
	reads       *obs.Counter
	readErrs    *obs.Counter
	compactions *obs.Counter
	rewrites    *obs.Counter
}

// Open opens (or creates) a value log in opts.Dir, replaying existing
// segments to rebuild the location index.
func Open(opts Options) (*Log, error) {
	opts.defaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("coldtier: Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{
		opts:        opts,
		stop:        make(chan struct{}),
		appends:     obs.NewCounter(1),
		reads:       obs.NewCounter(1),
		readErrs:    obs.NewCounter(1),
		compactions: obs.NewCounter(1),
		rewrites:    obs.NewCounter(1),
	}
	for i := range l.stripes {
		l.stripes[i].m = make(map[uint64]idxEnt)
	}
	if err := l.replay(); err != nil {
		return nil, err
	}
	if l.opts.CompactInterval > 0 {
		l.wg.Add(1)
		go l.compactLoop()
	}
	return l, nil
}

// Close stops the compactor and closes every segment file.
func (l *Log) Close() error {
	close(l.stop)
	l.wg.Wait()
	l.gmu.Lock()
	for _, s := range l.graveyard {
		s.f.Close()
	}
	l.graveyard = nil
	l.gmu.Unlock()
	var err error
	for _, s := range l.set.Load().segs {
		if e := s.f.Close(); e != nil && err == nil {
			err = e
		}
	}
	return err
}

func segName(id uint32) string { return fmt.Sprintf("seg-%06d.log", id) }

// replay scans segment files in id order, rebuilding the index with
// last-record-wins semantics and truncating a torn tail.
func (l *Log) replay() error {
	dents, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return err
	}
	var ids []uint32
	for _, d := range dents {
		var id uint32
		if _, err := fmt.Sscanf(d.Name(), "seg-%06d.log", &id); err == nil && id > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	now := uint64(time.Now().UnixNano())
	set := &segSet{}
	l.set.Store(set) // replay is single-threaded; deadAt resolves through it
	for _, id := range ids {
		f, err := os.OpenFile(filepath.Join(l.opts.Dir, segName(id)), os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		seg := &segment{id: id, f: f}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return err
		}
		set.segs = append(set.segs, seg)
		l.set.Store(set)
		end := l.replaySegment(seg, fi.Size(), now)
		if end < fi.Size() {
			if err := f.Truncate(end); err != nil {
				f.Close()
				return err
			}
		}
		seg.size.Store(end)
		if id >= l.nextID {
			l.nextID = id + 1
		}
	}
	if len(set.segs) == 0 {
		l.nextID = 1
		seg, err := l.newSegment()
		if err != nil {
			return err
		}
		set.segs = append(set.segs, seg)
		l.set.Store(set)
	}
	l.active = set.segs[len(set.segs)-1]
	return nil
}

// replaySegment indexes one segment's records and returns the offset of
// the first invalid/torn record (== size when the file is clean).
func (l *Log) replaySegment(seg *segment, size int64, now uint64) int64 {
	var hdr [recHeader]byte
	var off int64
	for off+recHeader <= size {
		if _, err := seg.f.ReadAt(hdr[:], off); err != nil {
			break
		}
		kind := hdr[0]
		key := binary.LittleEndian.Uint64(hdr[1:9])
		exp := binary.LittleEndian.Uint64(hdr[9:17])
		vlen := binary.LittleEndian.Uint32(hdr[17:21])
		if kind > recTombstone || vlen > maxValue || (kind == recTombstone && vlen != 0) ||
			off+recHeader+int64(vlen) > size {
			break
		}
		recLen := int64(recHeader) + int64(vlen)
		st := &l.stripes[key%idxStripes]
		switch kind {
		case recValue:
			if exp != 0 && now >= exp {
				seg.dead.Add(recLen)
				// an expired record still supersedes older ones
				if old, had := st.m[key]; had {
					l.deadAt(old.loc)
					delete(st.m, key)
					l.entries.Add(-1)
				}
			} else {
				if old, had := st.m[key]; had {
					l.deadAt(old.loc)
				} else {
					l.entries.Add(1)
				}
				st.m[key] = idxEnt{loc: Loc{Seg: seg.id, Off: off, Len: vlen}, exp: exp}
			}
		case recTombstone:
			seg.dead.Add(recLen)
			if old, had := st.m[key]; had {
				l.deadAt(old.loc)
				delete(st.m, key)
				l.entries.Add(-1)
			}
		}
		off += recLen
	}
	return off
}

// deadAt charges a superseded record's bytes to its segment; a no-op if
// the segment has already been compacted away.
func (l *Log) deadAt(loc Loc) {
	if seg := l.set.Load().find(loc.Seg); seg != nil {
		seg.dead.Add(int64(recHeader) + int64(loc.Len))
	}
}

func (l *Log) newSegment() (*segment, error) {
	id := l.nextID
	l.nextID++
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, segName(id)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	return &segment{id: id, f: f}, nil
}

// append writes one record to the active segment (rotating first if it
// would overflow) and returns its location. Caller must not hold stripe
// locks (lock order: append mutex before stripe).
func (l *Log) append(kind byte, key, exp uint64, val []byte) (Loc, error) {
	need := int64(recHeader) + int64(len(val))
	l.mu.Lock()
	defer l.mu.Unlock()
	if sz := l.active.size.Load(); sz > 0 && sz+need > l.opts.SegmentBytes {
		seg, err := l.newSegment()
		if err != nil {
			return Loc{}, err
		}
		old := l.set.Load()
		ns := &segSet{segs: make([]*segment, len(old.segs), len(old.segs)+1)}
		copy(ns.segs, old.segs)
		ns.segs = append(ns.segs, seg)
		l.set.Store(ns)
		l.active = seg
	}
	seg := l.active
	off := seg.size.Load()
	if cap(l.wbuf) < recHeader+len(val) {
		l.wbuf = make([]byte, recHeader+len(val))
	}
	buf := l.wbuf[:recHeader+len(val)]
	buf[0] = kind
	binary.LittleEndian.PutUint64(buf[1:9], key)
	binary.LittleEndian.PutUint64(buf[9:17], exp)
	binary.LittleEndian.PutUint32(buf[17:21], uint32(len(val)))
	copy(buf[recHeader:], val)
	if _, err := seg.f.WriteAt(buf, off); err != nil {
		return Loc{}, err
	}
	seg.size.Store(off + need)
	l.appends.Inc(0)
	return Loc{Seg: seg.id, Off: off, Len: uint32(len(val))}, nil
}

// Put appends a value record for key and points the index at it.
func (l *Log) Put(key, exp uint64, val []byte) (Loc, error) {
	loc, err := l.append(recValue, key, exp, val)
	if err != nil {
		return Loc{}, err
	}
	st := &l.stripes[key%idxStripes]
	st.Lock()
	if old, had := st.m[key]; had {
		l.deadAt(old.loc)
	} else {
		l.entries.Add(1)
	}
	st.m[key] = idxEnt{loc: loc, exp: exp}
	st.Unlock()
	return loc, nil
}

// PutIf appends a value record but only repoints the index if it still
// points at expect — the conditional spill used to correct a value that
// changed under a racing in-place write, without ever clobbering a newer
// generation of the key. Returns whether the index was updated.
func (l *Log) PutIf(key, exp uint64, val []byte, expect Loc) (bool, error) {
	loc, err := l.append(recValue, key, exp, val)
	if err != nil {
		return false, err
	}
	st := &l.stripes[key%idxStripes]
	st.Lock()
	cur, had := st.m[key]
	if !had || cur.loc != expect {
		st.Unlock()
		l.deadAt(loc) // the CAS lost; the fresh record is garbage
		return false, nil
	}
	st.m[key] = idxEnt{loc: loc, exp: exp}
	st.Unlock()
	l.deadAt(expect)
	return true, nil
}

// Delete removes key from the index and appends a tombstone so replay
// cannot resurrect it. Returns whether the key was present.
func (l *Log) Delete(key uint64) bool {
	st := &l.stripes[key%idxStripes]
	st.RLock()
	_, had := st.m[key]
	st.RUnlock()
	if !had {
		return false
	}
	if _, err := l.append(recTombstone, key, 0, nil); err != nil {
		// fall through: the in-memory index is authoritative while open
		_ = err
	}
	st.Lock()
	cur, had := st.m[key]
	if had {
		delete(st.m, key)
		l.entries.Add(-1)
	}
	st.Unlock()
	if had {
		l.deadAt(cur.loc)
	}
	return had
}

// Has reports whether key has a live log record.
func (l *Log) Has(key uint64) bool {
	st := &l.stripes[key%idxStripes]
	st.RLock()
	_, ok := st.m[key]
	st.RUnlock()
	return ok
}

// Locate returns key's current record location.
func (l *Log) Locate(key uint64) (Loc, bool) {
	st := &l.stripes[key%idxStripes]
	st.RLock()
	ent, ok := st.m[key]
	st.RUnlock()
	return ent.loc, ok
}

// Get reads key's value into buf (append-style, like seqitem.Read) and
// returns the filled slice, the record's expiry deadline, and its
// location. Records past their deadline at now read as misses and are
// dropped from the index lazily.
func (l *Log) Get(key uint64, buf []byte, now int64) (val []byte, exp uint64, loc Loc, ok bool) {
	for attempt := 0; attempt < 4; attempt++ {
		st := &l.stripes[key%idxStripes]
		st.RLock()
		ent, had := st.m[key]
		st.RUnlock()
		if !had {
			return nil, 0, Loc{}, false
		}
		if ent.exp != 0 && uint64(now) >= ent.exp {
			st.Lock()
			if cur, had := st.m[key]; had && cur.loc == ent.loc {
				delete(st.m, key)
				l.entries.Add(-1)
				st.Unlock()
				l.deadAt(ent.loc)
			} else {
				st.Unlock()
			}
			return nil, 0, Loc{}, false
		}
		seg := l.set.Load().find(ent.loc.Seg)
		if seg == nil {
			continue // compacted away between lookup and read; index moved
		}
		n := int(recHeader) + int(ent.loc.Len)
		if cap(buf) < n {
			buf = make([]byte, n)
		}
		b := buf[:n]
		if _, err := seg.f.ReadAt(b, ent.loc.Off); err != nil {
			l.readErrs.Inc(0)
			continue // segment closed under us; retry through the index
		}
		if b[0] != recValue || binary.LittleEndian.Uint64(b[1:9]) != key {
			l.readErrs.Inc(0)
			return nil, 0, Loc{}, false
		}
		l.reads.Inc(0)
		copy(b, b[recHeader:])
		return b[:ent.loc.Len], ent.exp, ent.loc, true
	}
	return nil, 0, Loc{}, false
}

// Len returns the number of live keys in the location index.
func (l *Log) Len() int { return int(l.entries.Load()) }

// LogBytes returns the total bytes across all segment files.
func (l *Log) LogBytes() int64 {
	var n int64
	for _, s := range l.set.Load().segs {
		n += s.size.Load()
	}
	return n
}

// DeadBytes returns the bytes charged to superseded/deleted records.
func (l *Log) DeadBytes() int64 {
	var n int64
	for _, s := range l.set.Load().segs {
		n += s.dead.Load()
	}
	return n
}

// Segments returns the current segment count.
func (l *Log) Segments() int { return len(l.set.Load().segs) }

func (l *Log) compactLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.Compact()
		}
	}
}

// Compact rewrites the live records of every sealed segment whose dead
// fraction crossed CompactMinDead, then deletes those segments. Returns
// how many segments were removed. Safe to call concurrently with reads
// and appends; only one compaction runs at a time (the append mutex
// serializes rewrites record by record, not the whole pass).
func (l *Log) Compact() int {
	// Close the previous pass's graveyard: any reader that raced segment
	// removal has long since retried through the index.
	l.gmu.Lock()
	dead := l.graveyard
	l.graveyard = nil
	l.gmu.Unlock()
	for _, s := range dead {
		s.f.Close()
	}

	set := l.set.Load()
	if len(set.segs) < 2 {
		return 0
	}
	minID := set.segs[0].id
	removed := 0
	for _, seg := range set.segs[:len(set.segs)-1] { // never the active segment
		sz := seg.size.Load()
		if sz == 0 || float64(seg.dead.Load()) < l.opts.CompactMinDead*float64(sz) {
			continue
		}
		if l.compactSegment(seg, seg.id == minID) {
			removed++
			minID = l.set.Load().segs[0].id
		}
	}
	return removed
}

// compactSegment relocates seg's live records to the active segment and
// removes seg. oldest reports whether seg is the lowest-id live segment
// (tombstones in the oldest segment shadow nothing and can be dropped).
func (l *Log) compactSegment(seg *segment, oldest bool) bool {
	size := seg.size.Load()
	var hdr [recHeader]byte
	val := make([]byte, 0, 4096)
	now := uint64(time.Now().UnixNano())
	for off := int64(0); off+recHeader <= size; {
		if _, err := seg.f.ReadAt(hdr[:], off); err != nil {
			return false
		}
		kind := hdr[0]
		key := binary.LittleEndian.Uint64(hdr[1:9])
		exp := binary.LittleEndian.Uint64(hdr[9:17])
		vlen := binary.LittleEndian.Uint32(hdr[17:21])
		if kind > recTombstone || off+recHeader+int64(vlen) > size {
			return false // should not happen on a sealed segment
		}
		thisLoc := Loc{Seg: seg.id, Off: off, Len: vlen}
		switch kind {
		case recValue:
			cur, ok := l.Locate(key)
			if ok && cur == thisLoc {
				if exp != 0 && now >= exp {
					// expired while spilled: drop the index entry with it
					st := &l.stripes[key%idxStripes]
					st.Lock()
					if e, had := st.m[key]; had && e.loc == thisLoc {
						delete(st.m, key)
						l.entries.Add(-1)
					}
					st.Unlock()
				} else {
					if cap(val) < int(vlen) {
						val = make([]byte, vlen)
					}
					if _, err := seg.f.ReadAt(val[:vlen], off+recHeader); err != nil {
						return false
					}
					if ok, err := l.PutIf(key, exp, val[:vlen], thisLoc); err != nil {
						return false
					} else if ok {
						l.rewrites.Inc(0)
					}
				}
			}
		case recTombstone:
			// A tombstone must survive as long as an older segment could
			// hold a stale value record for the key that replay would
			// otherwise resurrect. If the key is live again its index
			// target replays last anyway, so only dead keys matter.
			if !oldest && !l.Has(key) {
				if _, err := l.append(recTombstone, key, 0, nil); err != nil {
					return false
				}
			}
		}
		off += int64(recHeader) + int64(vlen)
	}
	// Unpublish, then retire the file. Readers holding the old set finish
	// their preads against the still-open fd; it joins the graveyard and
	// is closed on the next pass.
	l.mu.Lock()
	old := l.set.Load()
	ns := &segSet{segs: make([]*segment, 0, len(old.segs)-1)}
	for _, s := range old.segs {
		if s.id != seg.id {
			ns.segs = append(ns.segs, s)
		}
	}
	l.set.Store(ns)
	l.mu.Unlock()
	os.Remove(filepath.Join(l.opts.Dir, segName(seg.id)))
	l.gmu.Lock()
	l.graveyard = append(l.graveyard, seg)
	l.gmu.Unlock()
	l.compactions.Inc(0)
	return true
}

// Instrument registers the log's metrics with reg.
func (l *Log) Instrument(reg *obs.Registry) {
	if reg == nil || obs.Disabled {
		return
	}
	reg.GaugeFunc("mutps_cold_log_bytes", "", "Total bytes across cold-tier segment files.",
		func() float64 { return float64(l.LogBytes()) })
	reg.GaugeFunc("mutps_cold_dead_bytes", "", "Bytes held by superseded or deleted cold-tier records.",
		func() float64 { return float64(l.DeadBytes()) })
	reg.GaugeFunc("mutps_cold_segments", "", "Cold-tier segment file count.",
		func() float64 { return float64(l.Segments()) })
	reg.GaugeFunc("mutps_cold_entries", "", "Live keys in the cold-tier location index.",
		func() float64 { return float64(l.Len()) })
	reg.CounterFunc("mutps_cold_appends_total", "", "Records appended to the cold-tier log.",
		func() float64 { return float64(l.appends.Value()) })
	reg.CounterFunc("mutps_cold_reads_total", "", "Values served from the cold-tier log.",
		func() float64 { return float64(l.reads.Value()) })
	reg.CounterFunc("mutps_cold_read_errors_total", "", "Cold-tier reads that failed validation or I/O.",
		func() float64 { return float64(l.readErrs.Value()) })
	reg.CounterFunc("mutps_cold_compactions_total", "", "Cold-tier segments compacted away.",
		func() float64 { return float64(l.compactions.Value()) })
	reg.CounterFunc("mutps_cold_rewrites_total", "", "Live records relocated by the compactor.",
		func() float64 { return float64(l.rewrites.Value()) })
}
