// Package coldtier implements the SSD half of the store's bounded-memory
// lifecycle: an append-only value log plus an in-memory location index.
// Evicted values are appended to the log instead of vanishing; a get that
// misses RAM consults the location index and reads the value back with one
// pread. A background compactor rewrites the live tail of mostly-dead
// segments and deletes them, bounding log growth under churn.
//
// The log is a cache tier, not a durability layer: appends are not fsynced
// and a crash may lose recently written records. Within that contract
// recovery is exact (DESIGN.md §13): every mutation appends its record and
// updates the index under one stripe lock, so the in-memory index is always
// the last-record-wins view of the completed appends; reopen replays to the
// same view, truncating a torn tail, and a reopened log never resurrects a
// deleted key or serves a value older than the last one acknowledged.
//
// Open is checkpoint-accelerated: a periodic (and clean-Close) atomic
// snapshot of the location index — `index-<seq>.ckpt`, tmp+fsync+rename —
// records the entries plus the segment frontier it covers, and reopen loads
// the newest valid checkpoint and replays only the segment suffix past its
// frontier, falling back to a full rescan when no checkpoint survives
// validation. Current-format segments carry a per-record CRC32C so torn or
// corrupted records are detected rather than replayed; the original
// checksum-less format is still readable.
//
// Concurrency: appends serialize on one mutex (eviction and compaction are
// background work, not the request fast path); reads are lock-free preads
// against immutable sealed segments plus striped-RWMutex index lookups.
// Mutations hold their key's stripe lock across both the append and the
// index update (lock order: stripe before append mutex), which is what
// makes the crash contract above hold.
package coldtier

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mutps/internal/obs"
)

// Record kinds.
const (
	recValue     byte = 0
	recTombstone byte = 1
)

// Record headers. v1 is kind(1) key(8) expiry(8) vlen(4); v2 appends a
// CRC32C(4) over those 21 bytes and the value. The segment file's leading
// magic selects the version; v1 files have no magic (their first byte is a
// record kind, 0 or 1, which can never collide with the magic's 'M').
const (
	recHeaderV1 = 1 + 8 + 8 + 4
	recHeaderV2 = recHeaderV1 + 4
)

// segMagic leads every current-format segment file.
var segMagic = [8]byte{'M', 'T', 'P', 'S', 'S', 'G', '2', '\n'}

const segHeaderLen = int64(len(segMagic))

// castagnoli is the CRC32C table shared by record and checkpoint checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxValue bounds a single record's payload; matches the wire protocol's
// frame cap so nothing the server accepts is unspillable.
const maxValue = 16 << 20

// ErrClosed is returned by mutations on a closed Log.
var ErrClosed = errors.New("coldtier: log closed")

// Loc names a record's position: segment id, byte offset, value length.
// Segment ids start at 1, so the zero Loc never names a real record.
type Loc struct {
	Seg uint32
	Off int64
	Len uint32
}

// Options configures a Log. Zero values select defaults.
type Options struct {
	Dir             string
	SegmentBytes    int64         // rotate the active segment past this size (default 64 MiB)
	CompactMinDead  float64       // compact sealed segments once this fraction is dead (default 0.4)
	CompactInterval time.Duration // background compactor period (default 2s; <0 disables the goroutine)

	// CheckpointInterval is the period of the background index-checkpoint
	// writer (default 30s). <0 disables checkpointing entirely, including
	// the final checkpoint a clean Close otherwise writes; Open then always
	// rebuilds by full segment rescan.
	CheckpointInterval time.Duration

	// WriteHook, when non-nil, intercepts every segment-record append: it
	// receives the encoded record and returns how many of its bytes to
	// persist plus an error to surface. A non-nil error simulates a crash
	// mid-write — the prefix is written, the record is not published, and
	// the append fails — so tests can produce torn tails ("crash after N
	// writes") deterministically. After the hook returns an error the Log
	// must be treated as crashed: abandon it and reopen the directory.
	WriteHook func(rec []byte) (int, error)
}

func (o *Options) defaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.CompactMinDead <= 0 {
		o.CompactMinDead = 0.4
	}
	if o.CompactInterval == 0 {
		o.CompactInterval = 2 * time.Second
	}
	if o.CheckpointInterval == 0 {
		o.CheckpointInterval = 30 * time.Second
	}
}

type segment struct {
	id   uint32
	f    *os.File
	ver  uint8        // 1: legacy checksum-less records; 2: magic header + CRC records
	size atomic.Int64 // bytes appended (stable once sealed)
	dead atomic.Int64 // bytes belonging to superseded/deleted records
}

// recHdr is the segment's per-record header length.
func (s *segment) recHdr() int64 {
	if s.ver >= 2 {
		return recHeaderV2
	}
	return recHeaderV1
}

// base is the offset of the segment's first record.
func (s *segment) base() int64 {
	if s.ver >= 2 {
		return segHeaderLen
	}
	return 0
}

// segSet is the copy-on-write view of the segment list, ordered by id.
// Readers load it atomically; rotation and compaction publish new copies.
type segSet struct {
	segs []*segment // ascending id; last is the active segment
}

func (s *segSet) find(id uint32) *segment {
	i := sort.Search(len(s.segs), func(i int) bool { return s.segs[i].id >= id })
	if i < len(s.segs) && s.segs[i].id == id {
		return s.segs[i]
	}
	return nil
}

const idxStripes = 16

type idxEnt struct {
	loc Loc
	exp uint64
}

type stripe struct {
	sync.RWMutex
	m map[uint64]idxEnt
}

// frontier names a position in the log's replay order (segments ascending
// by id, offsets ascending within a segment). A checkpoint's frontier is
// the append head at snapshot time: the snapshot is exactly the
// last-record-wins view of everything strictly before it.
type frontier struct {
	Seg uint32
	Off int64
}

// covers reports whether the record at (seg, off) is strictly before f.
func (f frontier) covers(seg uint32, off int64) bool {
	return seg < f.Seg || (seg == f.Seg && off < f.Off)
}

// Recovery modes reported by mutps_cold_open_recovery_mode.
const (
	recoverFresh      = 0 // no segments on disk
	recoverRescan     = 1 // full segment rescan
	recoverCheckpoint = 2 // checkpoint load + suffix replay
)

// Log is an append-only value log with an in-memory location index.
type Log struct {
	opts Options

	mu     sync.Mutex // append path: active-segment writes and rotation
	active *segment
	nextID uint32
	wbuf   []byte // append scratch, guarded by mu

	set atomic.Pointer[segSet]

	stripes [idxStripes]stripe
	entries atomic.Int64

	// graveyard holds segments removed from the set but not yet closed, so
	// a reader holding the previous segSet snapshot can finish its pread.
	// Each compact pass closes the previous pass's graveyard.
	gmu       sync.Mutex
	graveyard []*segment

	// Checkpoint state. ckptMu serializes writers; ckptSeq is the sequence
	// of the newest checkpoint on disk; ckptFrontier is the frontier of the
	// oldest checkpoint still on disk (nil when none) — the compactor may
	// only drop a tombstone that every surviving checkpoint already
	// reflects, i.e. one strictly before this frontier.
	ckptMu       sync.Mutex
	ckptSeq      uint64
	ckptFrontier atomic.Pointer[frontier]

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
	closed    atomic.Bool

	appends     *obs.Counter
	reads       *obs.Counter
	readErrs    *obs.Counter
	compactions *obs.Counter
	rewrites    *obs.Counter
	ckptWrites  *obs.Counter
	ckptErrors  *obs.Counter

	// Open/recovery stats, written once during replay.
	recMode     atomic.Int32
	recReplayed atomic.Int64 // records scanned (suffix only in checkpoint mode)
	recLoaded   atomic.Int64 // index entries restored from the checkpoint
	recTorn     atomic.Int64 // torn-tail truncations performed
	recOrphans  atomic.Int64 // orphaned tmp/invalid files removed at open
	openNanos   atomic.Int64
}

// Open opens (or creates) a value log in opts.Dir, rebuilding the location
// index from the newest valid checkpoint plus the segment suffix past its
// frontier, or by full segment rescan when no checkpoint survives.
func Open(opts Options) (*Log, error) {
	opts.defaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("coldtier: Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{
		opts:        opts,
		stop:        make(chan struct{}),
		appends:     obs.NewCounter(1),
		reads:       obs.NewCounter(1),
		readErrs:    obs.NewCounter(1),
		compactions: obs.NewCounter(1),
		rewrites:    obs.NewCounter(1),
		ckptWrites:  obs.NewCounter(1),
		ckptErrors:  obs.NewCounter(1),
	}
	for i := range l.stripes {
		l.stripes[i].m = make(map[uint64]idxEnt)
	}
	start := time.Now()
	if err := l.replay(); err != nil {
		return nil, err
	}
	l.openNanos.Store(int64(time.Since(start)))
	if l.opts.CompactInterval > 0 {
		l.wg.Add(1)
		go l.compactLoop()
	}
	if l.opts.CheckpointInterval > 0 {
		l.wg.Add(1)
		go l.ckptLoop()
	}
	return l, nil
}

// Close stops the background goroutines, writes a final index checkpoint
// (unless checkpointing is disabled), and closes every segment file. It is
// idempotent: the first call does the work and every call returns the
// first call's error.
func (l *Log) Close() error {
	l.closeOnce.Do(func() {
		close(l.stop)
		l.wg.Wait()
		if l.opts.CheckpointInterval >= 0 {
			// A clean Close leaves a checkpoint at the exact append head, so
			// the next Open replays an empty suffix.
			if err := l.Checkpoint(); err != nil && l.closeErr == nil {
				l.closeErr = err
			}
		}
		l.closed.Store(true)
		l.gmu.Lock()
		for _, s := range l.graveyard {
			s.f.Close()
		}
		l.graveyard = nil
		l.gmu.Unlock()
		for _, s := range l.set.Load().segs {
			if e := s.f.Close(); e != nil && l.closeErr == nil {
				l.closeErr = e
			}
		}
	})
	return l.closeErr
}

func segName(id uint32) string { return fmt.Sprintf("seg-%06d.log", id) }

// parseSegName reports the id of an exactly-named segment file. Prefix
// matches like "seg-000001.log.tmp" or "seg-000001.logx" — precisely the
// debris a crashed checkpoint writer or a foreign tool can leave — must
// not be replayed (or truncated!) as a segment, so the name is required to
// round-trip through segName.
func parseSegName(name string) (uint32, bool) {
	const pre, suf = "seg-", ".log"
	if len(name) < len(pre)+6+len(suf) ||
		!strings.HasPrefix(name, pre) || !strings.HasSuffix(name, suf) {
		return 0, false
	}
	digits := name[len(pre) : len(name)-len(suf)]
	var id uint64
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		id = id*10 + uint64(c-'0')
		if id > 1<<32-1 {
			return 0, false
		}
	}
	if id == 0 || name != segName(uint32(id)) {
		return 0, false
	}
	return uint32(id), true
}

// replay rebuilds the location index at Open: it garbage-collects orphaned
// files, opens every segment, loads the newest valid checkpoint and
// replays the suffix past its frontier — or falls back to a full rescan —
// and truncates a torn tail on the active segment.
func (l *Log) replay() error {
	dents, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return err
	}
	var ids []uint32
	var ckpts []uint64
	for _, d := range dents {
		if d.IsDir() {
			continue
		}
		name := d.Name()
		if id, ok := parseSegName(name); ok {
			ids = append(ids, id)
			continue
		}
		if seq, ok := parseCkptName(name); ok {
			ckpts = append(ckpts, seq)
			continue
		}
		if strings.HasSuffix(name, ".tmp") &&
			(strings.HasPrefix(name, "seg-") || strings.HasPrefix(name, "index-")) {
			// Startup GC: a half-written checkpoint (or other rewrite debris)
			// that never reached its atomic rename is garbage.
			if os.Remove(filepath.Join(l.opts.Dir, name)) == nil {
				l.recOrphans.Add(1)
			}
		}
		// Anything else is a foreign file: skip it, never truncate it.
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] > ckpts[j] }) // newest first

	set := &segSet{}
	for _, id := range ids {
		seg, err := openSegment(l.opts.Dir, id)
		if err != nil {
			for _, s := range set.segs {
				s.f.Close()
			}
			return err
		}
		set.segs = append(set.segs, seg)
		if id >= l.nextID {
			l.nextID = id + 1
		}
	}
	l.set.Store(set)

	now := uint64(time.Now().UnixNano())
	recovered := false
	for _, seq := range ckpts {
		if seq > l.ckptSeq {
			l.ckptSeq = seq // never reuse a sequence, valid or not
		}
		path := filepath.Join(l.opts.Dir, ckptName(seq))
		if recovered {
			os.Remove(path) // superseded by the newer checkpoint we loaded
			continue
		}
		c, err := readCheckpoint(path)
		if err != nil || !l.recoverFromCheckpoint(c, now) {
			// Checksum mismatch or a frontier the surviving segments cannot
			// satisfy: this checkpoint is garbage; try an older one, else
			// rescan everything.
			os.Remove(path)
			l.recOrphans.Add(1)
			l.ckptErrors.Inc(0)
			continue
		}
		l.ckptFrontier.Store(&frontier{Seg: c.frontierSeg, Off: c.frontierOff})
		recovered = true
	}
	if !recovered && len(set.segs) > 0 {
		l.fullRescan(now)
		l.recMode.Store(recoverRescan)
	} else if recovered {
		l.recMode.Store(recoverCheckpoint)
	}

	if len(set.segs) == 0 {
		l.nextID = 1
		seg, err := l.newSegment()
		if err != nil {
			return err
		}
		ns := &segSet{segs: []*segment{seg}}
		l.set.Store(ns)
		set = ns
		l.recMode.Store(recoverFresh)
	}
	l.active = set.segs[len(set.segs)-1]
	return nil
}

// openSegment opens one segment file and sniffs its format version. An
// empty file (created, then crashed before the header write) is stamped
// with the current header; a file shorter than the header replays as
// legacy and truncates to empty.
func openSegment(dir string, id uint32) (*segment, error) {
	f, err := os.OpenFile(filepath.Join(dir, segName(id)), os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	seg := &segment{id: id, f: f, ver: 1}
	size := fi.Size()
	if size >= segHeaderLen {
		var hdr [8]byte
		if _, err := f.ReadAt(hdr[:], 0); err != nil {
			f.Close()
			return nil, err
		}
		if hdr == segMagic {
			seg.ver = 2
		}
	} else if size == 0 {
		if _, err := f.Write(segMagic[:]); err != nil {
			f.Close()
			return nil, err
		}
		seg.ver = 2
		size = segHeaderLen
	}
	seg.size.Store(size)
	return seg, nil
}

// fullRescan replays every segment from its base, last-record-wins.
func (l *Log) fullRescan(now uint64) {
	segs := l.set.Load().segs
	for i, seg := range segs {
		l.scanSegment(seg, seg.base(), now, i == len(segs)-1)
	}
}

// scanSegment replays seg's records from offset from, updating the index
// and dead-byte accounting. On the active (last) segment an invalid or
// torn record truncates the file there — the crash contract's torn-tail
// rule; on sealed segments the scan just stops (never destroy bytes that
// later segments may shadow anyway).
func (l *Log) scanSegment(seg *segment, from int64, now uint64, last bool) {
	size := seg.size.Load()
	end, clean := l.replayRecords(seg, from, size, now)
	if last && (!clean || end < size) {
		if err := seg.f.Truncate(end); err == nil {
			seg.size.Store(end)
			l.recTorn.Add(1)
		}
	}
}

// replayRecords indexes seg's records in [from, size) and returns the
// offset just past the last valid record plus whether the whole range
// parsed cleanly. v2 records are CRC-verified (the value bytes are read
// and checked); v1 records get the legacy structural checks only.
func (l *Log) replayRecords(seg *segment, from, size int64, now uint64) (int64, bool) {
	rh := seg.recHdr()
	if from < seg.base() {
		from = seg.base()
	}
	if from >= size {
		return from, from == size
	}
	br := bufio.NewReaderSize(io.NewSectionReader(seg.f, from, size-from), 256<<10)
	var hdr [recHeaderV2]byte
	var vbuf []byte
	off := from
	for off+rh <= size {
		if _, err := io.ReadFull(br, hdr[:rh]); err != nil {
			return off, false
		}
		kind := hdr[0]
		key := binary.LittleEndian.Uint64(hdr[1:9])
		exp := binary.LittleEndian.Uint64(hdr[9:17])
		vlen := binary.LittleEndian.Uint32(hdr[17:21])
		if kind > recTombstone || vlen > maxValue || (kind == recTombstone && vlen != 0) ||
			off+rh+int64(vlen) > size {
			return off, false
		}
		if seg.ver >= 2 {
			if cap(vbuf) < int(vlen) {
				vbuf = make([]byte, vlen)
			}
			if _, err := io.ReadFull(br, vbuf[:vlen]); err != nil {
				return off, false
			}
			sum := crc32.Update(crc32.Checksum(hdr[:recHeaderV1], castagnoli), castagnoli, vbuf[:vlen])
			if sum != binary.LittleEndian.Uint32(hdr[21:recHeaderV2]) {
				return off, false
			}
		} else if vlen > 0 {
			if _, err := br.Discard(int(vlen)); err != nil {
				return off, false
			}
		}
		recLen := rh + int64(vlen)
		l.recReplayed.Add(1)
		st := &l.stripes[key%idxStripes]
		switch kind {
		case recValue:
			if exp != 0 && now >= exp {
				seg.dead.Add(recLen)
				// an expired record still supersedes older ones
				if old, had := st.m[key]; had {
					l.deadAt(old.loc)
					delete(st.m, key)
					l.entries.Add(-1)
				}
			} else {
				if old, had := st.m[key]; had {
					l.deadAt(old.loc)
				} else {
					l.entries.Add(1)
				}
				st.m[key] = idxEnt{loc: Loc{Seg: seg.id, Off: off, Len: vlen}, exp: exp}
			}
		case recTombstone:
			seg.dead.Add(recLen)
			if old, had := st.m[key]; had {
				l.deadAt(old.loc)
				delete(st.m, key)
				l.entries.Add(-1)
			}
		}
		off += recLen
	}
	return off, off == size
}

// deadAt charges a superseded record's bytes to its segment; a no-op if
// the segment has already been compacted away.
func (l *Log) deadAt(loc Loc) {
	if seg := l.set.Load().find(loc.Seg); seg != nil {
		seg.dead.Add(seg.recHdr() + int64(loc.Len))
	}
}

func (l *Log) newSegment() (*segment, error) {
	id := l.nextID
	l.nextID++
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, segName(id)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(segMagic[:]); err != nil {
		f.Close()
		os.Remove(filepath.Join(l.opts.Dir, segName(id)))
		return nil, err
	}
	seg := &segment{id: id, f: f, ver: 2}
	seg.size.Store(segHeaderLen)
	return seg, nil
}

// append writes one record to the active segment (rotating first if it
// would overflow) and returns its location. Callers hold their key's
// stripe lock where per-key ordering matters (lock order: stripe before
// this mutex; never the reverse).
func (l *Log) append(kind byte, key, exp uint64, val []byte) (Loc, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed.Load() {
		return Loc{}, ErrClosed
	}
	if sz := l.active.size.Load(); sz > l.active.base() &&
		sz+recHeaderV2+int64(len(val)) > l.opts.SegmentBytes {
		seg, err := l.newSegment()
		if err != nil {
			return Loc{}, err
		}
		old := l.set.Load()
		ns := &segSet{segs: make([]*segment, len(old.segs), len(old.segs)+1)}
		copy(ns.segs, old.segs)
		ns.segs = append(ns.segs, seg)
		l.set.Store(ns)
		l.active = seg
	}
	seg := l.active
	rh := int(seg.recHdr())
	need := int64(rh) + int64(len(val))
	off := seg.size.Load()
	if cap(l.wbuf) < rh+len(val) {
		l.wbuf = make([]byte, rh+len(val))
	}
	buf := l.wbuf[:rh+len(val)]
	buf[0] = kind
	binary.LittleEndian.PutUint64(buf[1:9], key)
	binary.LittleEndian.PutUint64(buf[9:17], exp)
	binary.LittleEndian.PutUint32(buf[17:21], uint32(len(val)))
	copy(buf[rh:], val)
	if seg.ver >= 2 {
		sum := crc32.Update(crc32.Checksum(buf[:recHeaderV1], castagnoli), castagnoli, val)
		binary.LittleEndian.PutUint32(buf[21:recHeaderV2], sum)
	}
	if l.opts.WriteHook != nil {
		if n, err := l.opts.WriteHook(buf); err != nil {
			if n > 0 {
				if n > len(buf) {
					n = len(buf)
				}
				seg.f.WriteAt(buf[:n], off) // the torn prefix a crash leaves
			}
			return Loc{}, err
		}
	}
	if _, err := seg.f.WriteAt(buf, off); err != nil {
		return Loc{}, err
	}
	seg.size.Store(off + need)
	l.appends.Inc(0)
	return Loc{Seg: seg.id, Off: off, Len: uint32(len(val))}, nil
}

// Put appends a value record for key and points the index at it. The
// stripe lock spans both, so per key the log order always matches the
// index order and replay after a crash agrees with pre-crash memory.
func (l *Log) Put(key, exp uint64, val []byte) (Loc, error) {
	st := &l.stripes[key%idxStripes]
	st.Lock()
	loc, err := l.append(recValue, key, exp, val)
	if err != nil {
		st.Unlock()
		return Loc{}, err
	}
	old, had := st.m[key]
	st.m[key] = idxEnt{loc: loc, exp: exp}
	if !had {
		l.entries.Add(1)
	}
	st.Unlock()
	if had {
		l.deadAt(old.loc)
	}
	return loc, nil
}

// PutIf appends a value record but only if the index still points at
// expect — the conditional spill used to correct a value that changed
// under a racing in-place write, without ever clobbering a newer
// generation of the key. Returns whether the index was updated.
func (l *Log) PutIf(key, exp uint64, val []byte, expect Loc) (bool, error) {
	st := &l.stripes[key%idxStripes]
	st.Lock()
	cur, had := st.m[key]
	if !had || cur.loc != expect {
		st.Unlock()
		return false, nil // the CAS lost; nothing was appended
	}
	loc, err := l.append(recValue, key, exp, val)
	if err != nil {
		st.Unlock()
		return false, err
	}
	st.m[key] = idxEnt{loc: loc, exp: exp}
	st.Unlock()
	l.deadAt(expect)
	return true, nil
}

// Delete removes key from the index and appends a tombstone so replay
// cannot resurrect it. Returns whether the key was present. The tombstone
// append and the index removal happen under one stripe-lock critical
// section: a racing Put can no longer slot its value record after the
// tombstone yet lose its index entry, which would make reopen disagree
// with pre-crash memory (or resurrect the key).
func (l *Log) Delete(key uint64) bool {
	st := &l.stripes[key%idxStripes]
	st.RLock()
	_, had := st.m[key]
	st.RUnlock()
	if !had {
		return false
	}
	st.Lock()
	cur, had := st.m[key]
	if !had {
		st.Unlock()
		return false
	}
	tomb, err := l.append(recTombstone, key, 0, nil)
	if err != nil {
		// No tombstone on disk means replay would resurrect the key, so the
		// delete must not be acked: keep the entry and report failure. (A
		// torn tombstone prefix, if any, is truncated at the next open.)
		st.Unlock()
		return false
	}
	delete(st.m, key)
	l.entries.Add(-1)
	st.Unlock()
	l.deadAt(cur.loc)
	l.deadAt(tomb) // a tombstone is dead weight from birth
	return true
}

// Has reports whether key has a live log record.
func (l *Log) Has(key uint64) bool {
	st := &l.stripes[key%idxStripes]
	st.RLock()
	_, ok := st.m[key]
	st.RUnlock()
	return ok
}

// Locate returns key's current record location.
func (l *Log) Locate(key uint64) (Loc, bool) {
	st := &l.stripes[key%idxStripes]
	st.RLock()
	ent, ok := st.m[key]
	st.RUnlock()
	return ent.loc, ok
}

// Get reads key's value into buf (append-style, like seqitem.Read) and
// returns the filled slice, the record's expiry deadline, and its
// location. Records past their deadline at now read as misses and are
// dropped from the index lazily. On CRC-carrying segments the record is
// verified before it is served, so a torn or corrupted record reads as a
// miss, never as a wrong value.
func (l *Log) Get(key uint64, buf []byte, now int64) (val []byte, exp uint64, loc Loc, ok bool) {
	for attempt := 0; attempt < 4; attempt++ {
		st := &l.stripes[key%idxStripes]
		st.RLock()
		ent, had := st.m[key]
		st.RUnlock()
		if !had {
			return nil, 0, Loc{}, false
		}
		if ent.exp != 0 && uint64(now) >= ent.exp {
			st.Lock()
			if cur, had := st.m[key]; had && cur.loc == ent.loc {
				delete(st.m, key)
				l.entries.Add(-1)
				st.Unlock()
				l.deadAt(ent.loc)
			} else {
				st.Unlock()
			}
			return nil, 0, Loc{}, false
		}
		seg := l.set.Load().find(ent.loc.Seg)
		if seg == nil {
			continue // compacted away between lookup and read; index moved
		}
		rh := int(seg.recHdr())
		n := rh + int(ent.loc.Len)
		if cap(buf) < n {
			buf = make([]byte, n)
		}
		b := buf[:n]
		if _, err := seg.f.ReadAt(b, ent.loc.Off); err != nil {
			l.readErrs.Inc(0)
			continue // segment closed under us; retry through the index
		}
		if b[0] != recValue || binary.LittleEndian.Uint64(b[1:9]) != key {
			l.readErrs.Inc(0)
			return nil, 0, Loc{}, false
		}
		if seg.ver >= 2 {
			sum := crc32.Update(crc32.Checksum(b[:recHeaderV1], castagnoli), castagnoli, b[rh:])
			if sum != binary.LittleEndian.Uint32(b[21:recHeaderV2]) {
				l.readErrs.Inc(0)
				return nil, 0, Loc{}, false
			}
		}
		l.reads.Inc(0)
		copy(b, b[rh:])
		return b[:ent.loc.Len], ent.exp, ent.loc, true
	}
	return nil, 0, Loc{}, false
}

// Len returns the number of live keys in the location index.
func (l *Log) Len() int { return int(l.entries.Load()) }

// LogBytes returns the total bytes across all segment files.
func (l *Log) LogBytes() int64 {
	var n int64
	for _, s := range l.set.Load().segs {
		n += s.size.Load()
	}
	return n
}

// DeadBytes returns the bytes charged to superseded/deleted records.
func (l *Log) DeadBytes() int64 {
	var n int64
	for _, s := range l.set.Load().segs {
		n += s.dead.Load()
	}
	return n
}

// Segments returns the current segment count.
func (l *Log) Segments() int { return len(l.set.Load().segs) }

func (l *Log) compactLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.Compact()
		}
	}
}

// Compact rewrites the live records of every sealed segment whose dead
// fraction crossed CompactMinDead, then deletes those segments. Returns
// how many segments were removed. Safe to call concurrently with reads
// and appends; only one compaction runs at a time (the append mutex
// serializes rewrites record by record, not the whole pass).
func (l *Log) Compact() int {
	if l.closed.Load() {
		return 0
	}
	// Close the previous pass's graveyard: any reader that raced segment
	// removal has long since retried through the index.
	l.gmu.Lock()
	dead := l.graveyard
	l.graveyard = nil
	l.gmu.Unlock()
	for _, s := range dead {
		s.f.Close()
	}

	set := l.set.Load()
	if len(set.segs) < 2 {
		return 0
	}
	minID := set.segs[0].id
	removed := 0
	for _, seg := range set.segs[:len(set.segs)-1] { // never the active segment
		sz := seg.size.Load()
		if sz <= seg.base() || float64(seg.dead.Load()) < l.opts.CompactMinDead*float64(sz) {
			continue
		}
		if l.compactSegment(seg, seg.id == minID) {
			removed++
			minID = l.set.Load().segs[0].id
		}
	}
	return removed
}

// compactSegment relocates seg's live records to the active segment and
// removes seg — rewrite-then-publish: the copies land in the live log
// (where replay finds them, past any checkpoint frontier) strictly before
// the original file is unlinked, so a crash at any point mid-compact
// loses no live record and resurrects no dead one. oldest reports whether
// seg is the lowest-id live segment.
func (l *Log) compactSegment(seg *segment, oldest bool) bool {
	size := seg.size.Load()
	rh := seg.recHdr()
	var hdr [recHeaderV2]byte
	val := make([]byte, 0, 4096)
	now := uint64(time.Now().UnixNano())
	for off := seg.base(); off+rh <= size; {
		if _, err := seg.f.ReadAt(hdr[:rh], off); err != nil {
			return false
		}
		kind := hdr[0]
		key := binary.LittleEndian.Uint64(hdr[1:9])
		exp := binary.LittleEndian.Uint64(hdr[9:17])
		vlen := binary.LittleEndian.Uint32(hdr[17:21])
		if kind > recTombstone || off+rh+int64(vlen) > size {
			return false // should not happen on a sealed segment
		}
		thisLoc := Loc{Seg: seg.id, Off: off, Len: vlen}
		switch kind {
		case recValue:
			cur, ok := l.Locate(key)
			if ok && cur == thisLoc {
				if exp != 0 && now >= exp {
					// expired while spilled: drop the index entry with it
					st := &l.stripes[key%idxStripes]
					st.Lock()
					if e, had := st.m[key]; had && e.loc == thisLoc {
						delete(st.m, key)
						l.entries.Add(-1)
					}
					st.Unlock()
				} else {
					if cap(val) < int(vlen) {
						val = make([]byte, vlen)
					}
					if _, err := seg.f.ReadAt(val[:vlen], off+rh); err != nil {
						return false
					}
					if seg.ver >= 2 {
						sum := crc32.Update(crc32.Checksum(hdr[:recHeaderV1], castagnoli), castagnoli, val[:vlen])
						if sum != binary.LittleEndian.Uint32(hdr[21:recHeaderV2]) {
							return false // corrupt record: leave the segment alone
						}
					}
					if ok, err := l.PutIf(key, exp, val[:vlen], thisLoc); err != nil {
						return false
					} else if ok {
						l.rewrites.Inc(0)
					}
				}
			}
		case recTombstone:
			// A tombstone must survive as long as any persistent state could
			// resurrect the key: an older segment holding a stale value
			// record (handled by oldest), or a checkpoint whose snapshot
			// predates the delete — a checkpoint acts as a virtual oldest
			// segment covering everything before its frontier, so only
			// tombstones the oldest surviving checkpoint already reflects
			// (strictly before its frontier) may be dropped. If the key is
			// live again its index target replays last anyway.
			covered := true
			if fr := l.ckptFrontier.Load(); fr != nil {
				covered = fr.covers(seg.id, off)
			}
			if (!oldest || !covered) && !l.Has(key) {
				if _, err := l.append(recTombstone, key, 0, nil); err != nil {
					return false
				}
			}
		}
		off += rh + int64(vlen)
	}
	// Unpublish, then retire the file. Readers holding the old set finish
	// their preads against the still-open fd; it joins the graveyard and
	// is closed on the next pass.
	l.mu.Lock()
	old := l.set.Load()
	ns := &segSet{segs: make([]*segment, 0, len(old.segs)-1)}
	for _, s := range old.segs {
		if s.id != seg.id {
			ns.segs = append(ns.segs, s)
		}
	}
	l.set.Store(ns)
	l.mu.Unlock()
	os.Remove(filepath.Join(l.opts.Dir, segName(seg.id)))
	l.gmu.Lock()
	l.graveyard = append(l.graveyard, seg)
	l.gmu.Unlock()
	l.compactions.Inc(0)
	return true
}

// Instrument registers the log's metrics with reg.
func (l *Log) Instrument(reg *obs.Registry) {
	if reg == nil || obs.Disabled {
		return
	}
	reg.GaugeFunc("mutps_cold_log_bytes", "", "Total bytes across cold-tier segment files.",
		func() float64 { return float64(l.LogBytes()) })
	reg.GaugeFunc("mutps_cold_dead_bytes", "", "Bytes held by superseded or deleted cold-tier records.",
		func() float64 { return float64(l.DeadBytes()) })
	reg.GaugeFunc("mutps_cold_segments", "", "Cold-tier segment file count.",
		func() float64 { return float64(l.Segments()) })
	reg.GaugeFunc("mutps_cold_entries", "", "Live keys in the cold-tier location index.",
		func() float64 { return float64(l.Len()) })
	reg.CounterFunc("mutps_cold_appends_total", "", "Records appended to the cold-tier log.",
		func() float64 { return float64(l.appends.Value()) })
	reg.CounterFunc("mutps_cold_reads_total", "", "Values served from the cold-tier log.",
		func() float64 { return float64(l.reads.Value()) })
	reg.CounterFunc("mutps_cold_read_errors_total", "", "Cold-tier reads that failed validation or I/O.",
		func() float64 { return float64(l.readErrs.Value()) })
	reg.CounterFunc("mutps_cold_compactions_total", "", "Cold-tier segments compacted away.",
		func() float64 { return float64(l.compactions.Value()) })
	reg.CounterFunc("mutps_cold_rewrites_total", "", "Live records relocated by the compactor.",
		func() float64 { return float64(l.rewrites.Value()) })
	reg.CounterFunc("mutps_cold_ckpt_writes_total", "", "Cold-tier index checkpoints written.",
		func() float64 { return float64(l.ckptWrites.Value()) })
	reg.CounterFunc("mutps_cold_ckpt_errors_total", "", "Cold-tier checkpoints that failed to write or validate.",
		func() float64 { return float64(l.ckptErrors.Value()) })
	reg.GaugeFunc("mutps_cold_open_recovery_mode", "", "How the last Open rebuilt the index: 0 fresh, 1 full rescan, 2 checkpoint+suffix.",
		func() float64 { return float64(l.recMode.Load()) })
	reg.GaugeFunc("mutps_cold_open_replayed_records", "", "Log records scanned by the last Open (suffix only in checkpoint mode).",
		func() float64 { return float64(l.recReplayed.Load()) })
	reg.GaugeFunc("mutps_cold_open_ckpt_entries", "", "Index entries restored from the checkpoint by the last Open.",
		func() float64 { return float64(l.recLoaded.Load()) })
	reg.GaugeFunc("mutps_cold_open_seconds", "", "Wall time of the last Open's index rebuild.",
		func() float64 { return float64(l.openNanos.Load()) / 1e9 })
	reg.CounterFunc("mutps_cold_torn_truncations_total", "", "Torn segment tails truncated at Open.",
		func() float64 { return float64(l.recTorn.Load()) })
	reg.CounterFunc("mutps_cold_orphans_removed_total", "", "Orphaned tmp/invalid files garbage-collected at Open.",
		func() float64 { return float64(l.recOrphans.Load()) })
}
