package coldtier

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// parseRecords is the test's independent oracle for the v2 segment format:
// it decodes whole records from a raw segment image and returns, for every
// record, the byte offset at which it ends plus the last-record-wins state
// of the prefix up to and including it.
type recState struct {
	end   int64
	state map[uint64][]byte // key -> value, absent = deleted/never written
}

func parseRecords(t *testing.T, img []byte) []recState {
	t.Helper()
	if len(img) < int(segHeaderLen) || [8]byte(img[:8]) != segMagic {
		t.Fatal("oracle: not a v2 segment")
	}
	state := map[uint64][]byte{}
	var out []recState
	off := segHeaderLen
	for off+recHeaderV2 <= int64(len(img)) {
		h := img[off : off+recHeaderV2]
		kind := h[0]
		key := binary.LittleEndian.Uint64(h[1:9])
		vlen := int64(binary.LittleEndian.Uint32(h[17:21]))
		if (kind != recValue && kind != recTombstone) || off+recHeaderV2+vlen > int64(len(img)) {
			break
		}
		val := img[off+recHeaderV2 : off+recHeaderV2+vlen]
		sum := crc32.Update(crc32.Checksum(h[:recHeaderV1], castagnoli), castagnoli, val)
		if sum != binary.LittleEndian.Uint32(h[21:recHeaderV2]) {
			break
		}
		if kind == recTombstone {
			delete(state, key)
		} else {
			state[key] = append([]byte(nil), val...)
		}
		off += recHeaderV2 + vlen
		snap := make(map[uint64][]byte, len(state))
		for k, v := range state {
			snap[k] = v
		}
		out = append(out, recState{end: off, state: snap})
	}
	return out
}

// checkState asserts the reopened log serves exactly want.
func checkState(t *testing.T, l *Log, want map[uint64][]byte, tag string) {
	t.Helper()
	if l.Len() != len(want) {
		t.Fatalf("%s: Len = %d, want %d", tag, l.Len(), len(want))
	}
	now := time.Now().UnixNano()
	for k, wv := range want {
		v, _, _, ok := l.Get(k, nil, now)
		if !ok || !bytes.Equal(v, wv) {
			t.Fatalf("%s: key %d wrong (ok=%v)", tag, k, ok)
		}
	}
}

// buildTornWorkload writes a small mixed workload into one segment and
// returns the dir and the raw segment image.
func buildTornWorkload(t *testing.T) (string, []byte) {
	t.Helper()
	dir := t.TempDir()
	l := openTest(t, dir, 1<<20)
	for k := uint64(1); k <= 12; k++ {
		l.Put(k, 0, val(k, 3+int(k)*5))
	}
	l.Delete(3)
	l.Put(5, 0, val(500, 20))
	l.Delete(8)
	l.Put(3, 0, val(300, 9)) // re-put after delete
	crash(l)
	img, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	return dir, img
}

// TestTornTailEveryByteBoundary truncates the segment at every byte offset
// and asserts the reopened index is exactly the last-record-wins view of
// the longest whole-record prefix — no panic, no resurrection, no skipped
// surviving record.
func TestTornTailEveryByteBoundary(t *testing.T) {
	_, img := buildTornWorkload(t)
	recs := parseRecords(t, img)
	if len(recs) != 16 {
		t.Fatalf("oracle parsed %d records, want 16", len(recs))
	}

	prefixState := func(n int64) map[uint64][]byte {
		st := map[uint64][]byte{}
		for _, r := range recs {
			if r.end <= n {
				st = r.state
			}
		}
		cp := make(map[uint64][]byte, len(st))
		for k, v := range st {
			cp[k] = v
		}
		return cp
	}

	step := int64(1)
	if testing.Short() {
		step = 17 // prime stride still hits mid-header, mid-value, boundaries
	}
	for cut := segHeaderLen; cut <= int64(len(img)); cut += step {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), img[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l := openTest(t, dir, 1<<20)
		checkState(t, l, prefixState(cut), "cut@"+itoa(cut))
		// The torn bytes must be gone: appending and reopening again stays
		// consistent.
		l.Put(9999, 0, val(9999, 11))
		crash(l)
		l2 := openTest(t, dir, 1<<20)
		want := prefixState(cut)
		want[9999] = val(9999, 11)
		checkState(t, l2, want, "cut+append@"+itoa(cut))
		crash(l2)
	}
}

// TestCorruptTailEveryByte flips one byte at every offset in the record
// area. Replay must stop at the record containing the flip (its checksum no
// longer matches) and serve exactly the records before it.
func TestCorruptTailEveryByte(t *testing.T) {
	_, img := buildTornWorkload(t)
	recs := parseRecords(t, img)

	// State of all records that end at or before byte i — the guaranteed
	// surviving prefix when byte i is corrupted.
	stateBefore := func(i int64) map[uint64][]byte {
		st := map[uint64][]byte{}
		for _, r := range recs {
			if r.end <= i {
				st = r.state
			}
		}
		return st
	}

	step := int64(1)
	if testing.Short() {
		step = 13
	}
	for i := segHeaderLen; i < int64(len(img)); i += step {
		dir := t.TempDir()
		mut := append([]byte(nil), img...)
		mut[i] ^= 0xA5
		if err := os.WriteFile(filepath.Join(dir, segName(1)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		l := openTest(t, dir, 1<<20)
		checkState(t, l, stateBefore(i), "flip@"+itoa(i))
		crash(l)
	}
}

// TestWriteHookCrashMidAppend drives the failpoint: the hook persists only
// a prefix of the Nth record and fails the append, simulating a process
// killed mid-write. The torn record must be invisible both to the running
// log and after reopen.
func TestWriteHookCrashMidAppend(t *testing.T) {
	errBoom := errors.New("injected crash")
	for _, torn := range []int{0, 1, recHeaderV1, recHeaderV2, recHeaderV2 + 5} {
		dir := t.TempDir()
		writes := 0
		crashAfter := 5
		l, err := Open(Options{Dir: dir, SegmentBytes: 1 << 20,
			CompactInterval: -1, CheckpointInterval: -1,
			WriteHook: func(rec []byte) (int, error) {
				writes++
				if writes > crashAfter {
					return torn, errBoom
				}
				return len(rec), nil
			}})
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(1); k <= 5; k++ {
			if _, err := l.Put(k, 0, val(k, 40)); err != nil {
				t.Fatalf("pre-crash Put(%d): %v", k, err)
			}
		}
		if _, err := l.Put(6, 0, val(6, 40)); !errors.Is(err, errBoom) {
			t.Fatalf("failpoint Put: err = %v, want injected crash", err)
		}
		if _, _, _, ok := l.Get(6, nil, time.Now().UnixNano()); ok {
			t.Fatal("torn record visible in the running index")
		}
		crash(l)

		l2 := openTest(t, dir, 1<<20)
		want := map[uint64][]byte{}
		for k := uint64(1); k <= 5; k++ {
			want[k] = val(k, 40)
		}
		checkState(t, l2, want, "torn="+itoa(int64(torn)))
		if torn > 0 && l2.recTorn.Load() != 1 {
			t.Fatalf("torn=%d: recTorn = %d, want 1 truncation", torn, l2.recTorn.Load())
		}
		// Appends continue over the truncated tail.
		if _, err := l2.Put(7, 0, val(7, 40)); err != nil {
			t.Fatal(err)
		}
		crash(l2)
		l3 := openTest(t, dir, 1<<20)
		want[7] = val(7, 40)
		checkState(t, l3, want, "torn-reopen="+itoa(int64(torn)))
		crash(l3)
	}
}

// TestWriteHookCrashDuringDelete: the crash hits the tombstone append. The
// delete fails, the key stays live, and reopen agrees.
func TestWriteHookCrashDuringDelete(t *testing.T) {
	errBoom := errors.New("injected crash")
	dir := t.TempDir()
	armed := false
	l, err := Open(Options{Dir: dir, SegmentBytes: 1 << 20,
		CompactInterval: -1, CheckpointInterval: -1,
		WriteHook: func(rec []byte) (int, error) {
			if armed && rec[0] == recTombstone {
				return 3, errBoom // torn tombstone prefix on disk
			}
			return len(rec), nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	l.Put(1, 0, val(1, 32))
	armed = true
	if l.Delete(1) {
		t.Fatal("Delete reported success despite failed tombstone append")
	}
	if _, _, _, ok := l.Get(1, nil, time.Now().UnixNano()); !ok {
		t.Fatal("key vanished from index though its tombstone never landed")
	}
	crash(l)
	l2 := openTest(t, dir, 1<<20)
	defer crash(l2)
	if v, _, _, ok := l2.Get(1, nil, time.Now().UnixNano()); !ok || !bytes.Equal(v, val(1, 32)) {
		t.Fatal("reopen disagrees: key must survive a failed delete")
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
