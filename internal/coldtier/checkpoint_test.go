package coldtier

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// openManualCkpt opens a log with background loops off but Close-time
// checkpointing on, so tests drive Checkpoint() explicitly.
func openManualCkpt(t testing.TB, dir string, segBytes int64) *Log {
	t.Helper()
	l, err := Open(Options{Dir: dir, SegmentBytes: segBytes,
		CompactInterval: -1, CheckpointInterval: time.Hour})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func TestParseCkptName(t *testing.T) {
	cases := map[string]struct {
		seq uint64
		ok  bool
	}{
		"index-000001.ckpt":     {1, true},
		"index-123456.ckpt":     {123456, true},
		"index-1234567.ckpt":    {1234567, true},
		"index-000000.ckpt":     {0, false},
		"index-000001.ckpt.tmp": {0, false},
		"index-000001.ckptx":    {0, false},
		"index-00001.ckpt":      {0, false},
		"index-0000001.ckpt":    {0, false}, // padded 7 digits: not canonical
		"xindex-000001.ckpt":    {0, false},
	}
	for name, want := range cases {
		seq, ok := parseCkptName(name)
		if ok != want.ok || (ok && seq != want.seq) {
			t.Errorf("parseCkptName(%q) = (%d, %v), want (%d, %v)", name, seq, ok, want.seq, want.ok)
		}
	}
}

func TestCheckpointRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l := openManualCkpt(t, dir, 1<<20)
	now := time.Now().UnixNano()
	for k := uint64(1); k <= 500; k++ {
		exp := uint64(0)
		if k%5 == 0 {
			exp = uint64(now + int64(time.Hour))
		}
		l.Put(k, exp, val(k, 48))
	}
	for k := uint64(1); k <= 500; k += 7 {
		l.Delete(k)
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	wantLen := l.Len()
	crash(l) // no Close-time work: recovery must run off the checkpoint alone

	l2 := openManualCkpt(t, dir, 1<<20)
	defer l2.Close()
	if got := l2.recMode.Load(); got != recoverCheckpoint {
		t.Fatalf("recovery mode = %d, want checkpoint (%d)", got, recoverCheckpoint)
	}
	if l2.recReplayed.Load() != 0 {
		t.Fatalf("replayed %d records, want 0: nothing was appended past the frontier",
			l2.recReplayed.Load())
	}
	if l2.Len() != wantLen {
		t.Fatalf("Len = %d after recovery, want %d", l2.Len(), wantLen)
	}
	for k := uint64(1); k <= 500; k++ {
		v, exp, _, ok := l2.Get(k, nil, now)
		if (k-1)%7 == 0 {
			if ok {
				t.Fatalf("deleted key %d resurrected from checkpoint", k)
			}
			continue
		}
		if !ok || !bytes.Equal(v, val(k, 48)) {
			t.Fatalf("key %d wrong after checkpoint recovery", k)
		}
		if k%5 == 0 && exp == 0 {
			t.Fatalf("key %d lost its expiry through the checkpoint", k)
		}
	}
}

func TestCheckpointedOpenReplaysOnlySuffix(t *testing.T) {
	dir := t.TempDir()
	l := openManualCkpt(t, dir, 1<<20)
	for k := uint64(1); k <= 2000; k++ {
		l.Put(k, 0, val(k, 32))
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Suffix: 40 overwrites + 10 deletes past the frontier.
	for k := uint64(1); k <= 40; k++ {
		l.Put(k, 0, val(k+9000, 32))
	}
	for k := uint64(100); k < 110; k++ {
		l.Delete(k)
	}
	crash(l)

	l2 := openManualCkpt(t, dir, 1<<20)
	defer l2.Close()
	if got := l2.recMode.Load(); got != recoverCheckpoint {
		t.Fatalf("recovery mode = %d, want checkpoint", got)
	}
	if got := l2.recReplayed.Load(); got != 50 {
		t.Fatalf("replayed %d records, want exactly the 50 suffix records", got)
	}
	if got := l2.recLoaded.Load(); got != 2000 {
		t.Fatalf("loaded %d checkpoint entries, want 2000", got)
	}
	now := time.Now().UnixNano()
	for k := uint64(1); k <= 2000; k++ {
		v, _, _, ok := l2.Get(k, nil, now)
		switch {
		case k >= 100 && k < 110:
			if ok {
				t.Fatalf("suffix-deleted key %d alive", k)
			}
		case k <= 40:
			if !ok || !bytes.Equal(v, val(k+9000, 32)) {
				t.Fatalf("suffix overwrite of key %d lost", k)
			}
		default:
			if !ok || !bytes.Equal(v, val(k, 32)) {
				t.Fatalf("key %d wrong after suffix replay", k)
			}
		}
	}
}

func TestCloseWritesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	l := openManualCkpt(t, dir, 1<<20)
	for k := uint64(1); k <= 100; k++ {
		l.Put(k, 0, val(k, 32))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "index-*.ckpt"))
	if len(matches) != 1 {
		t.Fatalf("found %d checkpoint files after clean Close, want 1", len(matches))
	}
	l2 := openManualCkpt(t, dir, 1<<20)
	defer l2.Close()
	if l2.recMode.Load() != recoverCheckpoint || l2.recReplayed.Load() != 0 {
		t.Fatalf("clean reopen: mode=%d replayed=%d, want checkpoint mode with 0 replayed",
			l2.recMode.Load(), l2.recReplayed.Load())
	}
}

func TestCheckpointSupersedesPredecessor(t *testing.T) {
	dir := t.TempDir()
	l := openManualCkpt(t, dir, 1<<20)
	l.Put(1, 0, val(1, 32))
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Frontier unchanged: a second call must be a no-op, not a new file.
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	l.Put(2, 0, val(2, 32))
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	crash(l)
	matches, _ := filepath.Glob(filepath.Join(dir, "index-*.ckpt"))
	if len(matches) != 1 {
		t.Fatalf("found %d checkpoint files, want 1 (predecessor retired)", len(matches))
	}
	if filepath.Base(matches[0]) != ckptName(2) {
		t.Fatalf("surviving checkpoint = %s, want %s", filepath.Base(matches[0]), ckptName(2))
	}
}

// TestCorruptCheckpointFallsBack flips every byte of the checkpoint file in
// turn: recovery must reject the damaged snapshot (CRC or structure), fall
// back to a full rescan, and still produce the exact pre-crash state.
func TestCorruptCheckpointFallsBack(t *testing.T) {
	src := t.TempDir()
	l := openManualCkpt(t, src, 1<<20)
	for k := uint64(1); k <= 50; k++ {
		l.Put(k, 0, val(k, 24))
	}
	l.Delete(7)
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	crash(l)
	ckptPath := filepath.Join(src, ckptName(1))
	orig, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	segBytes, err := os.ReadFile(filepath.Join(src, segName(1)))
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < len(orig); i++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), segBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0xFF
		if err := os.WriteFile(filepath.Join(dir, ckptName(1)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		l2 := openManualCkpt(t, dir, 1<<20)
		if got := l2.recMode.Load(); got != recoverRescan {
			crash(l2)
			t.Fatalf("byte %d: recovery mode = %d, want rescan fallback", i, got)
		}
		if l2.Len() != 49 {
			crash(l2)
			t.Fatalf("byte %d: Len = %d after fallback, want 49", i, l2.Len())
		}
		if _, _, _, ok := l2.Get(7, nil, time.Now().UnixNano()); ok {
			crash(l2)
			t.Fatalf("byte %d: deleted key resurrected after fallback", i)
		}
		// The unreadable checkpoint must have been garbage-collected so it
		// cannot shadow the next one.
		if _, err := os.Stat(filepath.Join(dir, ckptName(1))); err == nil {
			crash(l2)
			t.Fatalf("byte %d: corrupt checkpoint not removed", i)
		}
		crash(l2)
	}
}

// TestCheckpointCompactionNoResurrection covers the frontier-aware tombstone
// rule from both sides: tombstones the checkpoint covers may be dropped by
// compaction (the snapshot already excludes the key), while deletes issued
// after the snapshot must survive compaction so suffix replay sees them.
func TestCheckpointCompactionNoResurrection(t *testing.T) {
	t.Run("delete before checkpoint", func(t *testing.T) {
		dir := t.TempDir()
		l := openManualCkpt(t, dir, 2048)
		for k := uint64(1); k <= 120; k++ {
			l.Put(k, 0, val(k, 100))
		}
		for k := uint64(1); k <= 120; k += 2 {
			l.Delete(k)
		}
		if err := l.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		l.Compact()
		l.Compact()
		crash(l)
		l2 := openManualCkpt(t, dir, 2048)
		defer l2.Close()
		now := time.Now().UnixNano()
		for k := uint64(1); k <= 120; k++ {
			v, _, _, ok := l2.Get(k, nil, now)
			if k%2 == 1 {
				if ok {
					t.Fatalf("key %d deleted before checkpoint resurrected", k)
				}
			} else if !ok || !bytes.Equal(v, val(k, 100)) {
				t.Fatalf("live key %d wrong after checkpoint+compact", k)
			}
		}
	})
	t.Run("delete after checkpoint", func(t *testing.T) {
		dir := t.TempDir()
		l := openManualCkpt(t, dir, 2048)
		for k := uint64(1); k <= 120; k++ {
			l.Put(k, 0, val(k, 100))
		}
		if err := l.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		for k := uint64(1); k <= 120; k += 2 {
			l.Delete(k)
		}
		l.Compact()
		l.Compact()
		crash(l)
		l2 := openManualCkpt(t, dir, 2048)
		defer l2.Close()
		if l2.recMode.Load() != recoverCheckpoint {
			t.Fatalf("recovery mode = %d, want checkpoint", l2.recMode.Load())
		}
		now := time.Now().UnixNano()
		for k := uint64(1); k <= 120; k++ {
			v, _, _, ok := l2.Get(k, nil, now)
			if k%2 == 1 {
				if ok {
					t.Fatalf("key %d deleted after checkpoint resurrected by compaction", k)
				}
			} else if !ok || !bytes.Equal(v, val(k, 100)) {
				t.Fatalf("live key %d wrong", k)
			}
		}
	})
}

// TestCheckpointDanglingEntriesRepaired: compaction after the snapshot can
// remove segments the checkpoint references. Recovery must drop those
// entries and let suffix replay (which holds the relocated records) repair
// every live key.
func TestCheckpointDanglingEntriesRepaired(t *testing.T) {
	dir := t.TempDir()
	l := openManualCkpt(t, dir, 2048)
	for k := uint64(1); k <= 100; k++ {
		l.Put(k, 0, val(k, 100))
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Overwrite most keys (their checkpoint locs go dead), leave a few
	// untouched so compaction must relocate them past the frontier.
	for k := uint64(1); k <= 90; k++ {
		l.Put(k, 0, val(k+5000, 100))
	}
	segsBefore := l.Segments()
	l.Compact()
	l.Compact()
	if l.Segments() >= segsBefore {
		t.Fatalf("compaction removed nothing (%d -> %d segments); test needs dangling entries",
			segsBefore, l.Segments())
	}
	crash(l)

	l2 := openManualCkpt(t, dir, 2048)
	defer l2.Close()
	if l2.Len() != 100 {
		t.Fatalf("Len = %d after recovery, want 100", l2.Len())
	}
	now := time.Now().UnixNano()
	for k := uint64(1); k <= 100; k++ {
		want := val(k, 100)
		if k <= 90 {
			want = val(k+5000, 100)
		}
		v, _, _, ok := l2.Get(k, nil, now)
		if !ok || !bytes.Equal(v, want) {
			t.Fatalf("key %d wrong after dangling-entry repair", k)
		}
	}
}

// TestCheckpointBehindLogFallsBack: if the checkpoint claims a frontier the
// surviving segment bytes cannot satisfy (lost unsynced data), recovery must
// reject it rather than replay from a hole.
func TestCheckpointAheadOfLogFallsBack(t *testing.T) {
	dir := t.TempDir()
	l := openManualCkpt(t, dir, 1<<20)
	for k := uint64(1); k <= 30; k++ {
		l.Put(k, 0, val(k, 64))
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	crash(l)
	// Simulate losing the tail the frontier points into.
	segPath := filepath.Join(dir, segName(1))
	fi, _ := os.Stat(segPath)
	if err := os.Truncate(segPath, fi.Size()-200); err != nil {
		t.Fatal(err)
	}
	l2 := openManualCkpt(t, dir, 1<<20)
	defer l2.Close()
	if got := l2.recMode.Load(); got != recoverRescan {
		t.Fatalf("recovery mode = %d, want rescan (frontier unsatisfiable)", got)
	}
	// The rescan serves whatever whole records survived — prefix-consistent.
	now := time.Now().UnixNano()
	for k := uint64(1); k <= uint64(l2.Len()); k++ {
		if v, _, _, ok := l2.Get(k, nil, now); !ok || !bytes.Equal(v, val(k, 64)) {
			t.Fatalf("surviving prefix key %d wrong", k)
		}
	}
}

func buildBenchDir(b *testing.B, checkpointed bool) string {
	b.Helper()
	dir := b.TempDir()
	l := openManualCkpt(b, dir, 64<<20)
	for k := uint64(1); k <= 100_000; k++ {
		if _, err := l.Put(k, 0, val(k, 64)); err != nil {
			b.Fatal(err)
		}
	}
	if checkpointed {
		if err := l.Checkpoint(); err != nil {
			b.Fatal(err)
		}
		// A small suffix past the frontier, as a live system would have.
		for k := uint64(1); k <= 100; k++ {
			l.Put(k, 0, val(k+7, 64))
		}
	}
	crash(l)
	return dir
}

// The recovery-speed smoke: compare with
//
//	go test ./internal/coldtier/ -bench 'BenchmarkOpen' -benchtime 5x
//
// BenchmarkOpenCheckpointed loads 100k index entries and replays a
// 100-record suffix; BenchmarkOpenRescan decodes all 100k records.
func BenchmarkOpenRescan(b *testing.B) {
	dir := buildBenchDir(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := Open(Options{Dir: dir, SegmentBytes: 64 << 20,
			CompactInterval: -1, CheckpointInterval: -1})
		if err != nil {
			b.Fatal(err)
		}
		if l.recMode.Load() != recoverRescan || l.Len() != 100_000 {
			b.Fatalf("mode=%d len=%d", l.recMode.Load(), l.Len())
		}
		b.StopTimer()
		crash(l)
		b.StartTimer()
	}
}

func BenchmarkOpenCheckpointed(b *testing.B) {
	dir := buildBenchDir(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := Open(Options{Dir: dir, SegmentBytes: 64 << 20,
			CompactInterval: -1, CheckpointInterval: -1})
		if err != nil {
			b.Fatal(err)
		}
		if l.recMode.Load() != recoverCheckpoint || l.Len() != 100_000 {
			b.Fatalf("mode=%d len=%d", l.recMode.Load(), l.Len())
		}
		if got := l.recReplayed.Load(); got != 100 {
			b.Fatalf("replayed %d records, want only the 100-record suffix", got)
		}
		b.StopTimer()
		crash(l)
		b.StartTimer()
	}
}

