package simhw

// Alloc is a bump allocator over the simulated physical address space.
// Simulated data structures allocate their nodes and buffers here so that
// every pointer dereference corresponds to a concrete address the cache
// model can track.
type Alloc struct {
	next uint64
	end  uint64
}

// NewAlloc returns an allocator serving addresses from [base, base+size).
// A zero size means unbounded.
func NewAlloc(base, size uint64) *Alloc {
	end := uint64(0)
	if size > 0 {
		end = base + size
	}
	return &Alloc{next: base, end: end}
}

// Alloc reserves size bytes aligned to align (which must be a power of two;
// 0 means cache-line alignment is not required and 8-byte alignment is
// used). It panics if the region is exhausted — simulation configuration
// error, not a runtime condition.
func (a *Alloc) Alloc(size, align uint64) uint64 {
	if align == 0 {
		align = 8
	}
	if align&(align-1) != 0 {
		panic("simhw: alignment must be a power of two")
	}
	p := (a.next + align - 1) &^ (align - 1)
	if a.end != 0 && p+size > a.end {
		panic("simhw: simulated address region exhausted")
	}
	a.next = p + size
	return p
}

// Used returns the number of bytes consumed (including alignment padding).
func (a *Alloc) Used(base uint64) uint64 { return a.next - base }

// Standard simulated address-space layout. Distinct regions make address
// provenance obvious in traces and keep structures from aliasing in the
// direct-mapped-index sense only when they truly share cache sets.
const (
	RegionRXBase   uint64 = 0x0000_1000_0000 // shared receive ring
	RegionRespBase uint64 = 0x0000_2000_0000 // per-worker response buffers
	RegionRingBase uint64 = 0x0000_3000_0000 // CR-MR queue rings
	RegionHotBase  uint64 = 0x0000_4000_0000 // cache-resident hot-set structures
	RegionIdxBase  uint64 = 0x0001_0000_0000 // full index structures
	RegionDataBase uint64 = 0x0010_0000_0000 // KV item storage
)
