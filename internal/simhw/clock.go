package simhw

// Core is a simulated CPU core with a virtual clock. A core's Step function
// performs one unit of work (e.g. process one request or one batch),
// advances Time by the cycles charged, and reports whether the core still
// has work. Cores whose Step is nil are idle.
type Core struct {
	ID   int
	Time uint64
	Step func(c *Core) bool

	done bool
}

// Done reports whether the core has retired (Step returned false).
func (c *Core) Done() bool { return c.done }

// Engine advances a set of cores in min-clock order, which approximates the
// true interleaving of pinned spin-polling threads while staying fully
// deterministic (ties broken by core ID).
type Engine struct {
	Cores []*Core
}

// NewEngine creates an engine over n cores with zeroed clocks.
func NewEngine(n int) *Engine {
	e := &Engine{Cores: make([]*Core, n)}
	for i := range e.Cores {
		e.Cores[i] = &Core{ID: i}
	}
	return e
}

// Run steps cores in min-clock order until every core is done or the
// earliest active core's clock reaches the until cycle bound. It returns the
// largest clock value reached by any core that executed.
func (e *Engine) Run(until uint64) uint64 {
	var horizon uint64
	for {
		var next *Core
		for _, c := range e.Cores {
			if c.done || c.Step == nil {
				continue
			}
			if next == nil || c.Time < next.Time {
				next = c
			}
		}
		if next == nil || next.Time >= until {
			return horizon
		}
		if !next.Step(next) {
			next.done = true
		}
		if next.Time > horizon {
			horizon = next.Time
		}
	}
}

// ActiveCores returns how many cores are still runnable.
func (e *Engine) ActiveCores() int {
	n := 0
	for _, c := range e.Cores {
		if !c.done && c.Step != nil {
			n++
		}
	}
	return n
}

// MaxTime returns the largest clock across all cores (idle cores included).
func (e *Engine) MaxTime() uint64 {
	var m uint64
	for _, c := range e.Cores {
		if c.Time > m {
			m = c.Time
		}
	}
	return m
}

// SyncClocks sets every core's clock to the maximum clock, modelling a
// barrier (used between simulation phases such as warmup and measurement).
func (e *Engine) SyncClocks() {
	m := e.MaxTime()
	for _, c := range e.Cores {
		c.Time = m
	}
}
