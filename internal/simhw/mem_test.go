package simhw

import "testing"

func testHierarchy() *Hierarchy {
	return NewHierarchy(SmallParams())
}

func TestAccessLevelsAndLatencies(t *testing.T) {
	h := testHierarchy()
	p := h.P
	addr := uint64(0x10000)

	if c := h.Access(0, addr, false); c != p.DRAMLat {
		t.Fatalf("cold access cost %d, want DRAM %d", c, p.DRAMLat)
	}
	if c := h.Access(0, addr, false); c != p.L1Lat {
		t.Fatalf("hot access cost %d, want L1 %d", c, p.L1Lat)
	}
	// A different core finds it in LLC (no writer → no coherence charge).
	if c := h.Access(1, addr, false); c != p.LLCLat {
		t.Fatalf("peer access cost %d, want LLC %d", c, p.LLCLat)
	}
	st := h.CoreStats(0)
	if st.DRAMLoads != 1 || st.L1Hits != 1 {
		t.Fatalf("core0 stats %+v", st)
	}
}

func TestCoherencePullAfterRemoteWrite(t *testing.T) {
	h := testHierarchy()
	p := h.P
	addr := uint64(0x20000)
	h.Access(0, addr, true) // core 0 writes (DRAM fill, owner=0)
	c := h.Access(1, addr, false)
	if c != p.LLCLat+p.CoherLat {
		t.Fatalf("reader paid %d, want LLC+coherence %d", c, p.LLCLat+p.CoherLat)
	}
	if h.CoreStats(1).CoherencePulls != 1 {
		t.Fatalf("coherence pulls = %d, want 1", h.CoreStats(1).CoherencePulls)
	}
}

func TestWriteInvalidatesPeerL1(t *testing.T) {
	h := testHierarchy()
	addr := uint64(0x30000)
	h.Access(1, addr, false) // core 1 caches it in its L1
	if c := h.Access(1, addr, false); c != h.P.L1Lat {
		t.Fatal("expected core 1 L1 hit")
	}
	h.Access(0, addr, true) // core 0 writes → invalidate core 1's copy
	if c := h.Access(1, addr, false); c == h.P.L1Lat {
		t.Fatal("core 1 L1 copy must have been invalidated by remote write")
	}
}

func TestCLOSPartitioningProtectsVictim(t *testing.T) {
	p := SmallParams() // LLC: 64 sets × 12 ways
	h := NewHierarchy(p)
	// Core 0 may only allocate into ways {0,1}; core 1 into the rest.
	h.SetCLOS(0, WayMask(0b11))
	h.SetCLOS(1, AllWays(p.LLCWays)&^WayMask(0b11))

	// Core 1 fills a small working set: one line per LLC set.
	protected := make([]uint64, 0, 64)
	for i := uint64(0); i < uint64(p.LLCSets); i++ {
		a := 0x100000 + i*p.LineSize()
		protected = append(protected, a)
		h.Access(1, a, false)
	}
	// Core 0 streams a huge working set; it must not evict core 1's lines
	// from the LLC (they may leave core 1's L1, that's fine).
	for i := uint64(0); i < 1<<14; i++ {
		h.Access(0, 0x4000000+i*p.LineSize(), false)
	}
	for _, a := range protected {
		if !h.LLC().Contains(a &^ (p.LineSize() - 1)) {
			t.Fatalf("protected line %#x evicted despite CLOS partition", a)
		}
	}
}

func TestDDIOFillGoesToRightmostWaysOnMissOnly(t *testing.T) {
	p := SmallParams()
	h := NewHierarchy(p)
	addr := uint64(RegionRXBase)

	// Case 1: line absent → DDIO allocates into rightmost ways. Verify by
	// checking that a subsequent massive fill by a core restricted to the
	// DDIO ways evicts it, while a fill restricted elsewhere does not.
	h.DMAWrite(addr, 64)
	if !h.LLC().Contains(addr) {
		t.Fatal("DMA write must allocate the line")
	}

	// Case 2: line already resident outside DDIO ways → DDIO updates in
	// place (the line stays resident even if the DDIO ways thrash).
	addr2 := uint64(0x900000)
	h.Access(0, addr2, false) // core fill, full mask → may land anywhere
	h.DMAWrite(addr2, 64)
	if !h.LLC().Contains(addr2) {
		t.Fatal("in-place DDIO update must keep the line resident")
	}
	// Thrash the DDIO ways heavily with same-set conflicting DMA writes.
	ls := p.LineSize()
	setStride := ls * uint64(p.LLCSets)
	for i := uint64(1); i <= 64; i++ {
		h.DMAWrite(addr2+i*setStride, 64) // all map to addr2's set
	}
	if !h.LLC().Contains(addr2) {
		t.Fatal("line updated in place must not be evicted by DDIO-way thrash")
	}
}

func TestAccessRangeStreamingPrefetch(t *testing.T) {
	h := testHierarchy()
	p := h.P
	// 8 lines, all cold: first miss pays DRAM, the rest pay IssueCost.
	c := h.AccessRange(0, 0x50000, 8*p.LineSize(), false)
	want := p.DRAMLat + 7*p.IssueCost
	if c != want {
		t.Fatalf("range cost %d, want %d", c, want)
	}
	// Hot now: 8 L1 hits.
	c = h.AccessRange(0, 0x50000, 8*p.LineSize(), false)
	if c != 8*p.L1Lat {
		t.Fatalf("hot range cost %d, want %d", c, 8*p.L1Lat)
	}
	if h.AccessRange(0, 0x50000, 0, false) != 0 {
		t.Fatal("zero-size range must cost 0")
	}
}

func TestAccessBatchOverlapsMisses(t *testing.T) {
	h := testHierarchy()
	p := h.P
	// 4 independent cold lines in different sets.
	addrs := []uint64{0x70000, 0x71000, 0x72000, 0x73000}
	c := h.AccessBatch(0, addrs, false)
	want := p.DRAMLat + 3*p.IssueCost
	if c != want {
		t.Fatalf("batched cost %d, want %d (overlapped)", c, want)
	}
	// Serial access of 4 cold lines would cost 4*DRAMLat; assert the
	// modelled speedup exists.
	if c >= 4*p.DRAMLat {
		t.Fatal("batching produced no overlap benefit")
	}
}

func TestAccessBatchMLPWindow(t *testing.T) {
	p := SmallParams()
	p.MLP = 2
	h := NewHierarchy(p)
	addrs := make([]uint64, 4)
	for i := range addrs {
		addrs[i] = 0x80000 + uint64(i)*0x1000
	}
	c := h.AccessBatch(0, addrs, false)
	// MLP=2: windows of 2 → (DRAM + issue) + (DRAM + issue).
	want := 2 * (p.DRAMLat + p.IssueCost)
	if c != want {
		t.Fatalf("MLP-limited cost %d, want %d", c, want)
	}
}

func TestLLCMissRateCounter(t *testing.T) {
	h := testHierarchy()
	h.Access(0, 0x1000, false) // DRAM
	h.Access(0, 0x1000, false) // L1
	h.Access(1, 0x1000, false) // LLC
	st0, st1 := h.CoreStats(0), h.CoreStats(1)
	if got := st0.LLCMissRate(); got != 1.0 {
		t.Fatalf("core0 LLC miss rate %v, want 1", got)
	}
	if got := st1.LLCMissRate(); got != 0.0 {
		t.Fatalf("core1 LLC miss rate %v, want 0", got)
	}
	h.ResetStats()
	if h.CoreStats(0) != (CoreStats{}) {
		t.Fatal("ResetStats must clear per-core counters")
	}
}
