package simhw

// WayMask is a bitmask over cache ways. Bit i set means way i may be used
// for allocation (fill) by the access class carrying the mask. Lookups are
// never constrained by the mask — Intel CAT restricts allocation, not hits.
type WayMask uint32

// AllWays returns a mask with the n lowest ways set.
func AllWays(n int) WayMask { return WayMask(1<<uint(n)) - 1 }

// RightmostWays returns a mask selecting the k highest-numbered ("rightmost"
// in the paper's and Intel's DDIO terminology) of n ways.
func RightmostWays(n, k int) WayMask {
	if k >= n {
		return AllWays(n)
	}
	return AllWays(n) &^ AllWays(n-k)
}

// Count returns the number of ways enabled in the mask.
func (m WayMask) Count() int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}

// CacheStats aggregates hit/miss counters for one cache instance.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// MissRate returns misses/(hits+misses), or 0 for an untouched cache.
func (s CacheStats) MissRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

type cacheEntry struct {
	tag     uint64
	lastUse uint64
	valid   bool
	dirty   bool
	owner   int8 // core that last wrote the line (for coherence modelling); -1 = none/NIC
}

// Cache is a set-associative cache with LRU replacement and CAT-style
// allocation masks. It is not safe for concurrent use; the simulation
// engine serializes access.
type Cache struct {
	sets     int
	ways     int
	lineBits uint
	setMask  uint64
	entries  []cacheEntry // sets*ways, row-major by set
	tick     uint64
	Stats    CacheStats
}

// NewCache builds a cache with the given geometry. sets must be a power of
// two.
func NewCache(sets, ways int, lineBits uint) *Cache {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("simhw: cache sets must be a positive power of two")
	}
	if ways <= 0 || ways > 32 {
		panic("simhw: cache ways must be in [1,32]")
	}
	return &Cache{
		sets:     sets,
		ways:     ways,
		lineBits: lineBits,
		setMask:  uint64(sets - 1),
		entries:  make([]cacheEntry, sets*ways),
	}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SizeBytes returns the total capacity in bytes.
func (c *Cache) SizeBytes() uint64 {
	return uint64(c.sets) * uint64(c.ways) * (1 << c.lineBits)
}

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	line := addr >> c.lineBits
	return int(line & c.setMask), line >> uint(len64(c.setMask))
}

func len64(mask uint64) int {
	n := 0
	for mask != 0 {
		mask >>= 1
		n++
	}
	return n
}

// Lookup probes the cache without allocating. It returns whether the line is
// present and, if so, marks it most-recently-used. write marks the line
// dirty and records the owner core.
func (c *Cache) Lookup(addr uint64, write bool, core int) (hit bool, prevOwner int8) {
	set, tag := c.index(addr)
	base := set * c.ways
	c.tick++
	for w := 0; w < c.ways; w++ {
		e := &c.entries[base+w]
		if e.valid && e.tag == tag {
			e.lastUse = c.tick
			prevOwner = e.owner
			if write {
				e.dirty = true
				e.owner = int8(core)
			}
			c.Stats.Hits++
			return true, prevOwner
		}
	}
	c.Stats.Misses++
	return false, -1
}

// Contains reports presence without disturbing LRU state or statistics.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		e := &c.entries[base+w]
		if e.valid && e.tag == tag {
			return true
		}
	}
	return false
}

// Fill allocates the line into the cache, choosing a victim only among the
// ways enabled in mask (CAT semantics). It returns the evicted line address
// and whether an eviction of a valid line occurred.
func (c *Cache) Fill(addr uint64, mask WayMask, write bool, core int) (evicted uint64, didEvict bool) {
	if mask == 0 {
		mask = AllWays(c.ways)
	}
	set, tag := c.index(addr)
	base := set * c.ways
	c.tick++
	victim := -1
	var victimUse uint64 = ^uint64(0)
	for w := 0; w < c.ways; w++ {
		if mask&(1<<uint(w)) == 0 {
			continue
		}
		e := &c.entries[base+w]
		if !e.valid {
			victim = w
			victimUse = 0
			break
		}
		if e.lastUse < victimUse {
			victim = w
			victimUse = e.lastUse
		}
	}
	if victim < 0 {
		// Mask selected no ways that exist in this cache; treat as a
		// bypassing access.
		return 0, false
	}
	e := &c.entries[base+victim]
	if e.valid {
		didEvict = true
		evicted = c.lineAddr(set, e.tag)
		c.Stats.Evictions++
	}
	e.valid = true
	e.tag = tag
	e.lastUse = c.tick
	e.dirty = write
	if write {
		e.owner = int8(core)
	} else {
		e.owner = -1
	}
	return evicted, didEvict
}

// Invalidate removes the line if present (used to model cross-cache
// invalidations on remote writes).
func (c *Cache) Invalidate(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		e := &c.entries[base+w]
		if e.valid && e.tag == tag {
			e.valid = false
			return true
		}
	}
	return false
}

func (c *Cache) lineAddr(set int, tag uint64) uint64 {
	return (tag<<uint(len64(c.setMask)) | uint64(set)) << c.lineBits
}

// Reset clears all entries and statistics.
func (c *Cache) Reset() {
	for i := range c.entries {
		c.entries[i] = cacheEntry{}
	}
	c.tick = 0
	c.Stats = CacheStats{}
}

// ResetStats clears counters but keeps cache contents, so steady-state miss
// rates can be measured after warmup.
func (c *Cache) ResetStats() { c.Stats = CacheStats{} }
