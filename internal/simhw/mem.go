package simhw

// Level identifies where a memory access was served from.
type Level uint8

// Access service levels.
const (
	LevelL1 Level = iota
	LevelLLC
	LevelDRAM
)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelLLC:
		return "LLC"
	default:
		return "DRAM"
	}
}

// CoreStats aggregates per-core access counters.
type CoreStats struct {
	Accesses       uint64
	L1Hits         uint64
	LLCHits        uint64
	DRAMLoads      uint64
	CoherencePulls uint64
}

// LLCMissRate returns the fraction of LLC probes (i.e. L1 misses) that
// missed the LLC, matching what the paper measures with Intel PCM.
func (s CoreStats) LLCMissRate() float64 {
	probes := s.LLCHits + s.DRAMLoads
	if probes == 0 {
		return 0
	}
	return float64(s.DRAMLoads) / float64(probes)
}

// Hierarchy models per-core private L1 caches over one shared LLC, with a
// per-core CLOS (class of service) way mask applied to LLC fills, DDIO fill
// rules for NIC DMA, and simple MESI-flavoured coherence costs.
type Hierarchy struct {
	P        Params
	l1       []*Cache
	llc      *Cache
	clos     []WayMask // per-core LLC allocation mask
	ddioMask WayMask
	perCore  []CoreStats
}

// NewHierarchy builds the hierarchy for p.Cores cores. All cores initially
// may allocate into every LLC way.
func NewHierarchy(p Params) *Hierarchy {
	h := &Hierarchy{
		P:        p,
		llc:      NewCache(p.LLCSets, p.LLCWays, p.LineBits),
		ddioMask: RightmostWays(p.LLCWays, p.DDIOWays),
		perCore:  make([]CoreStats, p.Cores),
		clos:     make([]WayMask, p.Cores),
		l1:       make([]*Cache, p.Cores),
	}
	for i := 0; i < p.Cores; i++ {
		h.l1[i] = NewCache(p.L1Sets, p.L1Ways, p.LineBits)
		h.clos[i] = AllWays(p.LLCWays)
	}
	return h
}

// SetCLOS assigns the LLC allocation mask for a core (the PQOS/CAT
// operation the paper's manager thread performs).
func (h *Hierarchy) SetCLOS(core int, mask WayMask) { h.clos[core] = mask }

// CLOS returns a core's current LLC allocation mask.
func (h *Hierarchy) CLOS(core int) WayMask { return h.clos[core] }

// DDIOMask returns the LLC ways DDIO allocates into.
func (h *Hierarchy) DDIOMask() WayMask { return h.ddioMask }

// LLC exposes the shared cache (read-only use intended: stats, Contains).
func (h *Hierarchy) LLC() *Cache { return h.llc }

// L1 exposes a core's private cache.
func (h *Hierarchy) L1(core int) *Cache { return h.l1[core] }

// CoreStats returns a copy of the per-core counters.
func (h *Hierarchy) CoreStats(core int) CoreStats { return h.perCore[core] }

// ResetStats clears all counters, keeping cache contents (for measuring
// steady state after warmup).
func (h *Hierarchy) ResetStats() {
	for i := range h.perCore {
		h.perCore[i] = CoreStats{}
		h.l1[i].ResetStats()
	}
	h.llc.ResetStats()
}

// Access performs one load or store of a single cache line by core and
// returns the cycles charged. Multi-line accesses should call AccessRange.
func (h *Hierarchy) Access(core int, addr uint64, write bool) uint64 {
	st := &h.perCore[core]
	st.Accesses++
	line := addr &^ (h.P.LineSize() - 1)

	if hit, _ := h.l1[core].Lookup(line, write, core); hit {
		st.L1Hits++
		if write {
			// A store that hits a line another core may hold: model
			// invalidation of peer copies lazily — peers will take an LLC
			// refetch on their next access because we invalidate their L1.
			h.invalidatePeers(core, line)
		}
		return h.P.L1Lat
	}

	// L1 miss → probe shared LLC.
	if hit, owner := h.llc.Lookup(line, write, core); hit {
		st.LLCHits++
		h.l1[core].Fill(line, AllWays(h.P.L1Ways), write, core)
		cycles := h.P.LLCLat
		if owner >= 0 && int(owner) != core {
			// Line was last written by another core: pay a coherence pull.
			st.CoherencePulls++
			cycles += h.P.CoherLat
		}
		if write {
			h.invalidatePeers(core, line)
		}
		return cycles
	}

	// LLC miss → DRAM; fill LLC within the core's CLOS mask, then L1.
	st.DRAMLoads++
	h.llc.Fill(line, h.clos[core], write, core)
	h.l1[core].Fill(line, AllWays(h.P.L1Ways), write, core)
	if write {
		h.invalidatePeers(core, line)
	}
	return h.P.DRAMLat
}

func (h *Hierarchy) invalidatePeers(core int, line uint64) {
	for i, c := range h.l1 {
		if i == core {
			continue
		}
		c.Invalidate(line)
	}
}

// AccessRange touches size bytes starting at addr (one Access per line) and
// returns total cycles. Sequential lines after the first DRAM miss benefit
// from the hardware prefetcher: subsequent misses in the same range cost the
// issue gap rather than full latency.
func (h *Hierarchy) AccessRange(core int, addr uint64, size uint64, write bool) uint64 {
	if size == 0 {
		return 0
	}
	ls := h.P.LineSize()
	first := addr &^ (ls - 1)
	last := (addr + size - 1) &^ (ls - 1)
	var cycles uint64
	misses := 0
	for line := first; ; line += ls {
		c := h.Access(core, line, write)
		if c >= h.P.DRAMLat {
			misses++
			if misses > 1 {
				// Streaming prefetch hides most of the latency.
				c = h.P.IssueCost
			}
		}
		cycles += c
		if line == last {
			break
		}
	}
	return cycles
}

// AccessBatch performs a batch of independent single-line accesses whose
// misses may overlap, modelling software-prefetch + coroutine interleaving
// (or hardware MLP): the first miss pays full latency, each further
// concurrent miss pays the issue gap, with at most MLP misses in flight.
func (h *Hierarchy) AccessBatch(core int, addrs []uint64, write bool) uint64 {
	var cycles uint64
	missesInWindow := 0
	for _, a := range addrs {
		c := h.Access(core, a, write)
		if c >= h.P.DRAMLat {
			if missesInWindow == 0 {
				cycles += c
			} else {
				cycles += h.P.IssueCost
			}
			missesInWindow++
			if missesInWindow == h.P.MLP {
				missesInWindow = 0
			}
		} else {
			cycles += c
		}
	}
	return cycles
}

// DMAWrite models a DDIO write from the NIC: for each line, if it is
// already present in the LLC it is updated in place (wherever it resides);
// otherwise it is allocated into the DDIO ways only. Peer L1 copies are
// invalidated. No core is charged cycles — DMA proceeds asynchronously.
func (h *Hierarchy) DMAWrite(addr uint64, size uint64) {
	if size == 0 {
		return
	}
	ls := h.P.LineSize()
	first := addr &^ (ls - 1)
	last := (addr + size - 1) &^ (ls - 1)
	for line := first; ; line += ls {
		if hit, _ := h.llc.Lookup(line, true, -1); !hit {
			// Undo the miss we just counted in llc stats? Keep it: a
			// DDIO-initiated allocation is exactly the event the paper
			// counts as a DDIO cache miss.
			h.llc.Fill(line, h.ddioMask, true, -1)
		}
		for _, c := range h.l1 {
			c.Invalidate(line)
		}
		if line == last {
			break
		}
	}
}

// DMARead models the NIC reading a response buffer. It does not disturb CPU
// caches (the RNIC pulls the data; lines stay valid), so it only exists for
// bandwidth accounting at higher layers.
func (h *Hierarchy) DMARead(addr uint64, size uint64) {}
