package simhw

// NIC models the server-side RNIC. Its two cache-visible behaviours are
// DDIO request delivery into the shared receive ring and DMA reads of
// response buffers (which do not disturb CPU caches). It also accounts
// bytes moved so harnesses can apply the 200 Gbps line-rate cap.
type NIC struct {
	h *Hierarchy

	// WireOverhead is the per-message byte overhead (headers) added to the
	// payload for bandwidth accounting. RoCEv2 + RPC framing ≈ 90 B.
	WireOverhead uint64

	BytesRX uint64 // client→server payload+overhead bytes delivered
	BytesTX uint64 // server→client payload+overhead bytes sent
	MsgsRX  uint64
	MsgsTX  uint64
}

// NewNIC attaches a NIC model to a cache hierarchy.
func NewNIC(h *Hierarchy) *NIC {
	return &NIC{h: h, WireOverhead: 90}
}

// DeliverRequest DMA-writes an incoming request of size bytes into the
// receive-ring slot at addr, following DDIO fill rules.
func (n *NIC) DeliverRequest(addr, size uint64) {
	n.h.DMAWrite(addr, size)
	n.BytesRX += size + n.WireOverhead
	n.MsgsRX++
}

// SendResponse DMA-reads a response of size bytes from addr. CPU caches are
// untouched (the paper relies on this: the CR layer never re-touches the
// response buffer after the MR layer filled it).
func (n *NIC) SendResponse(addr, size uint64) {
	n.h.DMARead(addr, size)
	n.BytesTX += size + n.WireOverhead
	n.MsgsTX++
}

// MinCyclesToMove returns the minimum number of core cycles the NIC needs
// to move the bytes accounted so far, given the modelled line rate. If the
// CPU-side simulated duration is below this, the experiment is
// bandwidth-bound and throughput must be capped accordingly.
func (n *NIC) MinCyclesToMove() uint64 {
	bpc := n.h.P.NICBytesPerCycle()
	most := n.BytesRX
	if n.BytesTX > most {
		most = n.BytesTX
	}
	return uint64(float64(most) / bpc)
}

// ResetStats clears byte/message counters.
func (n *NIC) ResetStats() {
	n.BytesRX, n.BytesTX, n.MsgsRX, n.MsgsTX = 0, 0, 0, 0
}
