package simhw

import "testing"

func TestEngineMinClockOrder(t *testing.T) {
	e := NewEngine(3)
	var order []int
	// Core 0 steps cost 10 cycles, core 1 costs 3, core 2 costs 7; each
	// runs 3 steps. Interleaving must always pick the minimum clock.
	costs := []uint64{10, 3, 7}
	steps := []int{0, 0, 0}
	for i, c := range e.Cores {
		i := i
		c.Step = func(c *Core) bool {
			order = append(order, c.ID)
			c.Time += costs[i]
			steps[i]++
			return steps[i] < 3
		}
	}
	e.Run(^uint64(0))
	// Reconstruct expected order by simulating the same policy.
	want := []int{0, 1, 2, 1, 2, 1, 0, 2, 0}
	// Verify by an independent check instead of a hand-computed list:
	// replay and confirm each chosen core had the min clock at choice time.
	clocks := []uint64{0, 0, 0}
	remaining := []int{3, 3, 3}
	for n, id := range order {
		for other := range clocks {
			if remaining[other] == 0 {
				continue
			}
			if clocks[other] < clocks[id] ||
				(clocks[other] == clocks[id] && other < id) {
				t.Fatalf("step %d chose core %d but core %d had clock %d <= %d",
					n, id, other, clocks[other], clocks[id])
			}
		}
		clocks[id] += costs[id]
		remaining[id]--
	}
	_ = want
	if len(order) != 9 {
		t.Fatalf("executed %d steps, want 9", len(order))
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.Cores[0].Step = func(c *Core) bool {
		n++
		c.Time += 100
		return true
	}
	e.Run(1000)
	// Core stops being scheduled once its clock is >= 1000.
	if n != 10 {
		t.Fatalf("steps = %d, want 10", n)
	}
	if e.Cores[0].Done() {
		t.Fatal("core must not be marked done by a time bound")
	}
}

func TestEngineDoneAndIdleCores(t *testing.T) {
	e := NewEngine(3)
	// Core 0 idle (nil Step), core 1 runs twice, core 2 runs once.
	runs := 0
	e.Cores[1].Step = func(c *Core) bool {
		runs++
		c.Time += 1
		return runs < 2
	}
	done2 := false
	e.Cores[2].Step = func(c *Core) bool {
		done2 = true
		c.Time += 5
		return false
	}
	if e.ActiveCores() != 2 {
		t.Fatalf("active = %d, want 2", e.ActiveCores())
	}
	e.Run(^uint64(0))
	if !done2 || runs != 2 {
		t.Fatalf("runs=%d done2=%v", runs, done2)
	}
	if e.ActiveCores() != 0 {
		t.Fatal("all startable cores must be done")
	}
	if !e.Cores[1].Done() || !e.Cores[2].Done() {
		t.Fatal("done flags not set")
	}
}

func TestEngineSyncClocksAndMaxTime(t *testing.T) {
	e := NewEngine(2)
	e.Cores[0].Time = 50
	e.Cores[1].Time = 80
	if e.MaxTime() != 80 {
		t.Fatalf("MaxTime = %d", e.MaxTime())
	}
	e.SyncClocks()
	if e.Cores[0].Time != 80 || e.Cores[1].Time != 80 {
		t.Fatal("SyncClocks must raise all clocks to max")
	}
}

func TestAllocAlignmentAndExhaustion(t *testing.T) {
	a := NewAlloc(0x1000, 0x100)
	p1 := a.Alloc(10, 64)
	if p1%64 != 0 {
		t.Fatalf("misaligned: %#x", p1)
	}
	p2 := a.Alloc(8, 0)
	if p2 < p1+10 {
		t.Fatalf("overlap: %#x after %#x+10", p2, p1)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected exhaustion panic")
		}
	}()
	a.Alloc(0x1000, 8)
}

func TestAllocBadAlignmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-power-of-two alignment")
		}
	}()
	NewAlloc(0, 0).Alloc(8, 3)
}

func TestNICAccounting(t *testing.T) {
	h := NewHierarchy(SmallParams())
	n := NewNIC(h)
	n.DeliverRequest(RegionRXBase, 64)
	n.SendResponse(RegionRespBase, 1024)
	if n.MsgsRX != 1 || n.MsgsTX != 1 {
		t.Fatalf("msgs rx=%d tx=%d", n.MsgsRX, n.MsgsTX)
	}
	if n.BytesRX != 64+n.WireOverhead || n.BytesTX != 1024+n.WireOverhead {
		t.Fatalf("bytes rx=%d tx=%d", n.BytesRX, n.BytesTX)
	}
	if !h.LLC().Contains(RegionRXBase) {
		t.Fatal("request delivery must populate the LLC via DDIO")
	}
	if n.MinCyclesToMove() == 0 {
		t.Fatal("bandwidth accounting must be positive")
	}
	n.ResetStats()
	if n.BytesRX != 0 || n.MsgsTX != 0 {
		t.Fatal("ResetStats must zero counters")
	}
}

func TestParamsConversions(t *testing.T) {
	p := DefaultParams()
	if p.LineSize() != 64 {
		t.Fatalf("line size %d", p.LineSize())
	}
	if got := p.CyclesToNanos(2000); got != 1000 {
		t.Fatalf("CyclesToNanos(2000) = %v at 2 GHz", got)
	}
	if got := p.NanosToCycles(1000); got != 2000 {
		t.Fatalf("NanosToCycles(1000) = %v", got)
	}
	// 200 Gbps at 2 GHz = 12.5 B/cycle.
	if got := p.NICBytesPerCycle(); got != 12.5 {
		t.Fatalf("NICBytesPerCycle = %v", got)
	}
}
