package simhw

import (
	"testing"
	"testing/quick"
)

// Property: the number of resident lines never exceeds capacity, for any
// access pattern and any allocation mask.
func TestCacheNeverExceedsCapacity(t *testing.T) {
	f := func(addrsRaw []uint16, maskRaw uint8) bool {
		c := NewCache(4, 4, 6)
		mask := WayMask(maskRaw) & AllWays(4)
		for _, a := range addrsRaw {
			addr := uint64(a) * 64
			if hit, _ := c.Lookup(addr, false, 0); !hit {
				c.Fill(addr, mask, false, 0)
			}
		}
		resident := 0
		for line := uint64(0); line <= 0xFFFF; line++ {
			if c.Contains(line * 64) {
				resident++
			}
		}
		return resident <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: lines filled under mask A are never evicted by fills under a
// disjoint mask B (the CAT isolation guarantee).
func TestCachePartitionIsolationProperty(t *testing.T) {
	f := func(protRaw, noiseRaw []uint16) bool {
		c := NewCache(8, 8, 6)
		maskA := WayMask(0b00001111)
		maskB := WayMask(0b11110000)
		// Fill at most 4 protected lines per set (maskA capacity).
		perSet := map[int]int{}
		var protected []uint64
		for _, p := range protRaw {
			addr := uint64(p) * 64
			set := int((addr >> 6) & 7)
			if perSet[set] >= 4 || c.Contains(addr) {
				continue
			}
			perSet[set]++
			c.Fill(addr, maskA, false, 0)
			protected = append(protected, addr)
		}
		for _, n := range noiseRaw {
			c.Fill(uint64(n)*64+1<<20, maskB, false, 1)
		}
		for _, addr := range protected {
			if !c.Contains(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: an access sequence replayed on two fresh hierarchies produces
// identical cycle charges (determinism of the cost model).
func TestHierarchyDeterminismProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		h1 := NewHierarchy(SmallParams())
		h2 := NewHierarchy(SmallParams())
		for _, o := range ops {
			core := int(o % 4)
			addr := uint64(o) * 128
			write := o%3 == 0
			if h1.Access(core, addr, write) != h2.Access(core, addr, write) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: batched access never costs more than serial access of the
// same addresses on an identical hierarchy (overlap can only help).
func TestBatchNeverSlowerProperty(t *testing.T) {
	f := func(addrsRaw []uint16) bool {
		if len(addrsRaw) == 0 {
			return true
		}
		addrs := make([]uint64, len(addrsRaw))
		for i, a := range addrsRaw {
			addrs[i] = uint64(a) * 4096
		}
		hb := NewHierarchy(SmallParams())
		hs := NewHierarchy(SmallParams())
		batched := hb.AccessBatch(0, addrs, false)
		var serial uint64
		for _, a := range addrs {
			serial += hs.Access(0, a, false)
		}
		return batched <= serial
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
