package simhw

import (
	"testing"
	"testing/quick"
)

func TestWayMaskHelpers(t *testing.T) {
	if AllWays(12) != 0xFFF {
		t.Fatalf("AllWays(12) = %#x, want 0xFFF", AllWays(12))
	}
	if got := RightmostWays(12, 2); got != 0xC00 {
		t.Fatalf("RightmostWays(12,2) = %#x, want 0xC00", got)
	}
	if got := RightmostWays(4, 8); got != 0xF {
		t.Fatalf("RightmostWays(4,8) = %#x, want 0xF", got)
	}
	if AllWays(12).Count() != 12 {
		t.Fatalf("Count(AllWays(12)) = %d", AllWays(12).Count())
	}
	if RightmostWays(12, 2).Count() != 2 {
		t.Fatalf("Count(RightmostWays(12,2)) = %d", RightmostWays(12, 2).Count())
	}
	if WayMask(0).Count() != 0 {
		t.Fatalf("Count(0) != 0")
	}
}

func TestCacheBasicHitMiss(t *testing.T) {
	c := NewCache(4, 2, 6)
	if hit, _ := c.Lookup(0x1000, false, 0); hit {
		t.Fatal("empty cache must miss")
	}
	c.Fill(0x1000, 0, false, 0)
	if hit, _ := c.Lookup(0x1000, false, 0); !hit {
		t.Fatal("filled line must hit")
	}
	// Same line, different offset within the 64 B line.
	if hit, _ := c.Lookup(0x103F, false, 0); !hit {
		t.Fatal("offset within the same line must hit")
	}
	if c.Stats.Hits != 2 || c.Stats.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits 1 miss", c.Stats)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(1, 2, 6) // single set, 2 ways
	c.Fill(0x0, 0, false, 0)
	c.Fill(0x40, 0, false, 0)
	// Touch 0x0 so 0x40 becomes LRU.
	c.Lookup(0x0, false, 0)
	ev, did := c.Fill(0x80, 0, false, 0)
	if !did || ev != 0x40 {
		t.Fatalf("evicted %#x (did=%v), want 0x40", ev, did)
	}
	if !c.Contains(0x0) || !c.Contains(0x80) || c.Contains(0x40) {
		t.Fatal("wrong residency after LRU eviction")
	}
}

func TestCacheWayMaskRestrictsAllocationNotHits(t *testing.T) {
	c := NewCache(1, 4, 6)
	// Fill way-restricted to ways {0,1}.
	lo := WayMask(0b0011)
	hi := WayMask(0b1100)
	c.Fill(0x000, lo, false, 0)
	c.Fill(0x040, lo, false, 0)
	c.Fill(0x080, hi, false, 0)
	// A third lo-fill must evict one of the first two, never 0x080.
	c.Fill(0x0C0, lo, false, 0)
	if !c.Contains(0x080) {
		t.Fatal("fill outside mask evicted a protected way")
	}
	// The line in a hi way must still be hittable by anyone.
	if hit, _ := c.Lookup(0x080, false, 3); !hit {
		t.Fatal("mask must not restrict lookups")
	}
}

func TestCacheMaskWithNoWaysBypasses(t *testing.T) {
	c := NewCache(1, 2, 6)
	// Mask selects ways beyond associativity → bypass, no eviction.
	c.Fill(0x0, 0, false, 0)
	_, did := c.Fill(0x40, WayMask(0b100), false, 0)
	if did {
		t.Fatal("bypassing fill must not evict")
	}
	if c.Contains(0x40) {
		t.Fatal("bypassing fill must not allocate")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(2, 2, 6)
	c.Fill(0x1000, 0, false, 0)
	if !c.Invalidate(0x1000) {
		t.Fatal("invalidate of present line must return true")
	}
	if c.Invalidate(0x1000) {
		t.Fatal("second invalidate must return false")
	}
	if c.Contains(0x1000) {
		t.Fatal("line present after invalidate")
	}
}

func TestCacheResetAndResetStats(t *testing.T) {
	c := NewCache(2, 2, 6)
	c.Fill(0x40, 0, true, 1)
	c.Lookup(0x40, false, 1)
	c.ResetStats()
	if c.Stats != (CacheStats{}) {
		t.Fatal("ResetStats must zero counters")
	}
	if !c.Contains(0x40) {
		t.Fatal("ResetStats must keep contents")
	}
	c.Reset()
	if c.Contains(0x40) {
		t.Fatal("Reset must clear contents")
	}
}

func TestCacheGeometryPanics(t *testing.T) {
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { NewCache(3, 2, 6) })
	mustPanic(func() { NewCache(0, 2, 6) })
	mustPanic(func() { NewCache(4, 0, 6) })
	mustPanic(func() { NewCache(4, 64, 6) })
}

// Property: after filling a working set no larger than one set's
// unrestricted capacity, every line still hits.
func TestCacheResidencyProperty(t *testing.T) {
	f := func(seed uint32) bool {
		c := NewCache(8, 4, 6)
		// 8 sets * 4 ways = 32 lines capacity; use 32 distinct lines that
		// spread evenly: addresses i*64 for i in [0,32).
		for i := uint64(0); i < 32; i++ {
			c.Fill(i*64, 0, false, 0)
		}
		for i := uint64(0); i < 32; i++ {
			if hit, _ := c.Lookup(i*64, false, 0); !hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestMissRate(t *testing.T) {
	var s CacheStats
	if s.MissRate() != 0 {
		t.Fatal("empty stats miss rate must be 0")
	}
	s = CacheStats{Hits: 3, Misses: 1}
	if got := s.MissRate(); got != 0.25 {
		t.Fatalf("miss rate = %v, want 0.25", got)
	}
}
