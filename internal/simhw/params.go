// Package simhw provides a deterministic model of the hardware substrate the
// μTPS paper evaluates on: per-core virtual clocks, a set-associative cache
// hierarchy with Intel CAT-style way partitioning and DDIO fill rules, DRAM
// latency, MLP-bounded miss overlap, and a simulated RNIC with a single
// shared receive ring.
//
// The model is cost-accounting rather than cycle-accurate: each simulated
// core owns a virtual clock, memory accesses consult shared stateful caches
// and charge latency to the issuing core, and an Engine advances cores in
// min-clock order so that cross-core cache interactions interleave
// deterministically. Absolute numbers are not the point; the cache-state
// dynamics (thrashing, residency, partition effects) that drive the paper's
// results are modelled faithfully.
package simhw

// Params describes the simulated machine. The defaults mirror the paper's
// server node: a 28-core Intel Xeon Gold 6330 (Ice Lake) with a 42 MB
// 12-way shared LLC, 200 Gbps NIC, DDIO enabled on the two rightmost LLC
// ways.
type Params struct {
	Cores int // number of simulated cores available to the server

	// Cache geometry.
	LineBits  uint // log2 of the cache line size (6 → 64 B lines)
	L1Sets    int  // private L1d sets
	L1Ways    int  // private L1d ways
	LLCSets   int  // shared LLC sets
	LLCWays   int  // shared LLC ways
	DDIOWays  int  // rightmost LLC ways used by DDIO allocations
	MLP       int  // line-fill buffers: max overlapping outstanding misses
	FreqGHz   float64
	L1Lat     uint64 // cycles for an L1 hit
	LLCLat    uint64 // cycles for an LLC hit
	DRAMLat   uint64 // cycles for a DRAM access
	CoherLat  uint64 // extra cycles to pull a line owned modified by a peer
	NICGbps   float64
	IssueCost uint64 // cycles to issue one overlapped miss after the first
}

// DefaultParams returns the paper-testbed machine model.
func DefaultParams() Params {
	return Params{
		Cores:     28,
		LineBits:  6,
		L1Sets:    64, // 32 KB / 64 B / 8 ways
		L1Ways:    8,
		LLCSets:   57344, // 42 MB / 64 B / 12 ways
		LLCWays:   12,
		DDIOWays:  2,
		MLP:       10,
		FreqGHz:   2.0,
		L1Lat:     4,
		LLCLat:    42,
		DRAMLat:   200,
		CoherLat:  70,
		NICGbps:   200,
		IssueCost: 20,
	}
}

// SmallParams returns a scaled-down machine for fast unit tests: the same
// structure, tiny caches so that eviction behaviour is exercised quickly.
func SmallParams() Params {
	p := DefaultParams()
	p.Cores = 8
	p.L1Sets = 8
	p.LLCSets = 64
	return p
}

// LineSize returns the cache line size in bytes.
func (p Params) LineSize() uint64 { return 1 << p.LineBits }

// CyclesToNanos converts core cycles to nanoseconds at the modelled
// frequency.
func (p Params) CyclesToNanos(c uint64) float64 { return float64(c) / p.FreqGHz }

// NanosToCycles converts nanoseconds to core cycles.
func (p Params) NanosToCycles(ns float64) uint64 { return uint64(ns * p.FreqGHz) }

// NICBytesPerCycle returns the NIC line rate expressed in bytes per core
// cycle, used for bandwidth-cap calculations.
func (p Params) NICBytesPerCycle() float64 {
	bytesPerSec := p.NICGbps * 1e9 / 8
	cyclesPerSec := p.FreqGHz * 1e9
	return bytesPerSec / cyclesPerSec
}
