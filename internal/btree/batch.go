package btree

import "sort"

// GetBatch looks up several keys in one shared descent — the real-execution
// counterpart of the paper's batched indexing: keys are sorted so the walk
// visits each needed subtree once, amortizing node traversals and lock
// acquisitions across the batch (the cache-level analog of issuing all
// prefetches for a level together).
//
// The win is contention-dependent: with a cache-warm tree and uniform
// random keys the sort overhead can exceed the savings (see
// BenchmarkGetBatch32 vs BenchmarkGet32Serial); under reader/writer
// contention or cold caches the shared descent takes far fewer lock
// acquisitions and node visits.
//
// Results are returned positionally: vals[i], found[i] correspond to
// keys[i]. The provided slices are reused when large enough.
func (t *Tree[V]) GetBatch(keys []uint64, vals []V, found []bool) ([]V, []bool) {
	n := len(keys)
	if cap(vals) < n {
		vals = make([]V, n)
	}
	vals = vals[:n]
	if cap(found) < n {
		found = make([]bool, n)
	}
	found = found[:n]
	for i := range found {
		found[i] = false
		var zero V
		vals[i] = zero
	}
	if n == 0 {
		return vals, found
	}

	// Order of visit: ascending keys (original positions preserved).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })

	t.rootMu.RLock()
	root := t.root
	root.mu.RLock()
	t.rootMu.RUnlock()
	t.batchDescend(root, keys, order, vals, found)
	return vals, found
}

// batchDescend serves the sorted key positions in order against the locked
// node nd, releasing nd's read lock before returning. Children are visited
// left to right, each locked hand-over-hand below the parent.
func (t *Tree[V]) batchDescend(nd *node[V], keys []uint64, order []int, vals []V, found []bool) {
	if nd.leaf {
		for _, pos := range order {
			i := nd.search(keys[pos])
			if i < nd.n && nd.keys[i] == keys[pos] {
				vals[pos] = nd.vals[i]
				found[pos] = true
			}
		}
		nd.mu.RUnlock()
		return
	}
	// Partition the sorted positions by child and recurse per child.
	start := 0
	for start < len(order) {
		ci := nd.childIndex(keys[order[start]])
		end := start + 1
		for end < len(order) && nd.childIndex(keys[order[end]]) == ci {
			end++
		}
		child := nd.childs[ci]
		child.mu.RLock()
		t.batchDescend(child, keys, order[start:end], vals, found)
		start = end
	}
	nd.mu.RUnlock()
}
