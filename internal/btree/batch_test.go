package btree

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestGetBatchBasic(t *testing.T) {
	tr := New[int]()
	for i := uint64(0); i < 1000; i += 2 {
		tr.Put(i, int(i)*10)
	}
	keys := []uint64{4, 5, 998, 0, 1000, 500}
	vals, found := tr.GetBatch(keys, nil, nil)
	wantFound := []bool{true, false, true, true, false, true}
	for i := range keys {
		if found[i] != wantFound[i] {
			t.Fatalf("key %d: found=%v want %v", keys[i], found[i], wantFound[i])
		}
		if found[i] && vals[i] != int(keys[i])*10 {
			t.Fatalf("key %d: val=%d", keys[i], vals[i])
		}
	}
}

func TestGetBatchEmptyAndSingle(t *testing.T) {
	tr := New[int]()
	tr.Put(7, 70)
	vals, found := tr.GetBatch(nil, nil, nil)
	if len(vals) != 0 || len(found) != 0 {
		t.Fatal("empty batch must return empty results")
	}
	vals, found = tr.GetBatch([]uint64{7}, nil, nil)
	if !found[0] || vals[0] != 70 {
		t.Fatal("single-key batch broken")
	}
}

func TestGetBatchDuplicateAndUnsortedKeys(t *testing.T) {
	tr := New[string]()
	tr.Put(3, "three")
	tr.Put(9, "nine")
	keys := []uint64{9, 3, 9, 9, 3}
	vals, found := tr.GetBatch(keys, nil, nil)
	want := []string{"nine", "three", "nine", "nine", "three"}
	for i := range keys {
		if !found[i] || vals[i] != want[i] {
			t.Fatalf("pos %d: %q/%v", i, vals[i], found[i])
		}
	}
}

func TestGetBatchReusesBuffers(t *testing.T) {
	tr := New[int]()
	tr.Put(1, 10)
	vals := make([]int, 0, 8)
	found := make([]bool, 0, 8)
	v2, f2 := tr.GetBatch([]uint64{1, 2}, vals, found)
	if cap(v2) != 8 || cap(f2) != 8 {
		t.Fatal("large-enough buffers must be reused")
	}
	// Stale content from previous uses must be cleared.
	v3, f3 := tr.GetBatch([]uint64{2}, v2, f2)
	if f3[0] || v3[0] != 0 {
		t.Fatal("results must be reset per call")
	}
}

func TestGetBatchMatchesGet(t *testing.T) {
	f := func(seedKeys []uint16, queries []uint16) bool {
		tr := New[uint64]()
		for _, k := range seedKeys {
			tr.Put(uint64(k), uint64(k)+1)
		}
		keys := make([]uint64, len(queries))
		for i, q := range queries {
			keys[i] = uint64(q)
		}
		vals, found := tr.GetBatch(keys, nil, nil)
		for i, k := range keys {
			v, ok := tr.Get(k)
			if ok != found[i] || (ok && v != vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGetBatchConcurrentWithWriters(t *testing.T) {
	tr := New[uint64]()
	const n = 5000
	for i := uint64(0); i < n; i++ {
		tr.Put(i, i)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		k := uint64(n)
		for {
			select {
			case <-stop:
				return
			default:
			}
			tr.Put(k, k)
			k++
		}
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			keys := make([]uint64, 32)
			var vals []uint64
			var found []bool
			seed := uint64(r + 1)
			for iter := 0; iter < 2000; iter++ {
				for i := range keys {
					seed = seed*6364136223846793005 + 1
					keys[i] = seed % n
				}
				vals, found = tr.GetBatch(keys, vals, found)
				for i := range keys {
					if !found[i] || vals[i] != keys[i] {
						panic("pre-populated key missing or wrong during concurrent batch get")
					}
				}
			}
		}(r)
	}
	// Readers are iteration-bounded; stopping the writer early is fine —
	// it only adds keys beyond the range the readers verify.
	close(stop)
	wg.Wait()
}

func BenchmarkGetBatch32(b *testing.B) {
	tr := New[uint64]()
	for i := uint64(0); i < 1<<20; i++ {
		tr.Put(i, i)
	}
	keys := make([]uint64, 32)
	var vals []uint64
	var found []bool
	b.ResetTimer()
	seed := uint64(1)
	for n := 0; n < b.N; n++ {
		for i := range keys {
			seed = seed*6364136223846793005 + 1
			keys[i] = seed % (1 << 20)
		}
		vals, found = tr.GetBatch(keys, vals, found)
	}
	_ = vals
	_ = found
}

func BenchmarkGet32Serial(b *testing.B) {
	tr := New[uint64]()
	for i := uint64(0); i < 1<<20; i++ {
		tr.Put(i, i)
	}
	keys := make([]uint64, 32)
	b.ResetTimer()
	seed := uint64(1)
	for n := 0; n < b.N; n++ {
		for i := range keys {
			seed = seed*6364136223846793005 + 1
			keys[i] = seed % (1 << 20)
		}
		for _, k := range keys {
			tr.Get(k)
		}
	}
}
