package btree

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasicPutGetDelete(t *testing.T) {
	tr := New[[]byte]()
	if _, ok := tr.Get(5); ok {
		t.Fatal("empty tree must not contain key")
	}
	tr.Put(5, []byte("five"))
	if v, ok := tr.Get(5); !ok || string(v) != "five" {
		t.Fatalf("Get(5) = %q, %v", v, ok)
	}
	tr.Put(5, []byte("cinq"))
	if v, _ := tr.Get(5); string(v) != "cinq" {
		t.Fatal("Put must replace")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if !tr.Delete(5) || tr.Delete(5) {
		t.Fatal("Delete semantics broken")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after delete", tr.Len())
	}
}

func TestPointerValues(t *testing.T) {
	tr := New[*int]()
	x := 41
	tr.Put(1, &x)
	p, ok := tr.Get(1)
	if !ok || p != &x {
		t.Fatal("pointer values must round-trip identically")
	}
}

func TestSortedInsertAndSplits(t *testing.T) {
	tr := New[[]byte]()
	const n = 10000
	for i := uint64(0); i < n; i++ {
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], i)
		tr.Put(i, v[:])
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Depth() < 3 {
		t.Fatalf("tree did not grow: depth %d", tr.Depth())
	}
	for i := uint64(0); i < n; i++ {
		v, ok := tr.Get(i)
		if !ok || binary.LittleEndian.Uint64(v) != i {
			t.Fatalf("key %d wrong after splits", i)
		}
	}
}

func TestReverseAndRandomInsert(t *testing.T) {
	for name, keys := range map[string][]uint64{
		"reverse": genKeys(5000, func(i int) uint64 { return uint64(5000 - i) }),
		"random":  genKeys(5000, func(i int) uint64 { return (uint64(i)*2654435761 + 7) % 100000 }),
	} {
		tr := New[[]byte]()
		seen := map[uint64]bool{}
		for _, k := range keys {
			tr.Put(k, []byte{byte(k)})
			seen[k] = true
		}
		if tr.Len() != len(seen) {
			t.Fatalf("%s: Len=%d want %d", name, tr.Len(), len(seen))
		}
		for k := range seen {
			if v, ok := tr.Get(k); !ok || v[0] != byte(k) {
				t.Fatalf("%s: key %d wrong", name, k)
			}
		}
	}
}

func genKeys(n int, f func(int) uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = f(i)
	}
	return out
}

func TestScanOrderAndBounds(t *testing.T) {
	tr := New[[]byte]()
	for i := uint64(0); i < 1000; i += 2 { // even keys only
		tr.Put(i, []byte(fmt.Sprint(i)))
	}
	var got []uint64
	n := tr.Scan(101, 10, func(k uint64, v []byte) bool {
		got = append(got, k)
		if string(v) != fmt.Sprint(k) {
			t.Fatalf("scan value mismatch at %d", k)
		}
		return true
	})
	if n != 10 || len(got) != 10 {
		t.Fatalf("scan visited %d, want 10", n)
	}
	if got[0] != 102 {
		t.Fatalf("scan start = %d, want 102", got[0])
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+2 {
			t.Fatalf("scan out of order: %v", got)
		}
	}
	// Scan past the end.
	n = tr.Scan(990, 100, func(uint64, []byte) bool { return true })
	if n != 5 { // 990..998
		t.Fatalf("tail scan visited %d, want 5", n)
	}
	// Early stop.
	n = tr.Scan(0, 100, func(uint64, []byte) bool { return false })
	if n != 1 {
		t.Fatalf("early-stop scan visited %d, want 1", n)
	}
	// Degenerate counts.
	if tr.Scan(0, 0, nil) != 0 || tr.Scan(0, -3, nil) != 0 {
		t.Fatal("non-positive count must visit nothing")
	}
}

func TestRangeFullIteration(t *testing.T) {
	tr := New[[]byte]()
	want := map[uint64]bool{}
	for i := 0; i < 3000; i++ {
		k := (uint64(i)*48271 + 11) % 9973
		tr.Put(k, nil)
		want[k] = true
	}
	var got []uint64
	tr.Range(func(k uint64, _ []byte) bool {
		got = append(got, k)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("ranged %d keys, want %d", len(got), len(want))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("Range must be in key order")
	}
}

func TestDeleteThenScanSkipsRemoved(t *testing.T) {
	tr := New[[]byte]()
	for i := uint64(0); i < 100; i++ {
		tr.Put(i, nil)
	}
	for i := uint64(0); i < 100; i += 2 {
		tr.Delete(i)
	}
	n := tr.Scan(0, 1000, func(k uint64, _ []byte) bool {
		if k%2 == 0 {
			t.Fatalf("deleted key %d visible in scan", k)
		}
		return true
	})
	if n != 50 {
		t.Fatalf("scan visited %d, want 50", n)
	}
}

func TestMatchesReferenceMap(t *testing.T) {
	type op struct {
		Kind byte
		Key  uint16
	}
	f := func(ops []op) bool {
		tr := New[[]byte]()
		ref := map[uint64][]byte{}
		for i, o := range ops {
			k := uint64(o.Key % 256)
			switch o.Kind % 3 {
			case 0:
				v := []byte{byte(i)}
				tr.Put(k, v)
				ref[k] = v
			case 1:
				got, ok := tr.Get(k)
				want, wok := ref[k]
				if ok != wok || (ok && string(got) != string(want)) {
					return false
				}
			case 2:
				_, wok := ref[k]
				if tr.Delete(k) != wok {
					return false
				}
				delete(ref, k)
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		// Scan must visit exactly the live sorted keys.
		var keys []uint64
		tr.Range(func(k uint64, _ []byte) bool { keys = append(keys, k); return true })
		if len(keys) != len(ref) {
			return false
		}
		for _, k := range keys {
			if _, ok := ref[k]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentWritersReaders(t *testing.T) {
	tr := New[[]byte]()
	const writers, readers, perW = 4, 4, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				k := uint64(w*perW + i)
				v := make([]byte, 8)
				binary.LittleEndian.PutUint64(v, k)
				tr.Put(k, v)
			}
		}(w)
	}
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			seed := uint64(r + 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				seed = seed*6364136223846793005 + 1
				k := seed % (writers * perW)
				if v, ok := tr.Get(k); ok {
					if binary.LittleEndian.Uint64(v) != k {
						panic("value/key invariant violated during concurrency")
					}
				}
				tr.Scan(k, 20, func(k uint64, v []byte) bool {
					return binary.LittleEndian.Uint64(v) == k
				})
			}
		}(r)
	}
	// Wait for writers, then stop readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			if tr.Len() == writers*perW {
				return
			}
			if i > 1e7 {
				return
			}
		}
	}()
	<-done
	close(stop)
	wg.Wait()
	if tr.Len() != writers*perW {
		t.Fatalf("Len = %d, want %d", tr.Len(), writers*perW)
	}
	for k := uint64(0); k < writers*perW; k++ {
		if v, ok := tr.Get(k); !ok || binary.LittleEndian.Uint64(v) != k {
			t.Fatalf("key %d missing/wrong after concurrent load", k)
		}
	}
}

func TestConcurrentDeleteAndScan(t *testing.T) {
	tr := New[[]byte]()
	const n = 20000
	for i := uint64(0); i < n; i++ {
		tr.Put(i, []byte{1})
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < n; i += 3 {
			tr.Delete(i)
		}
	}()
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			prev := uint64(0)
			first := true
			tr.Scan(0, n, func(k uint64, _ []byte) bool {
				if !first && k <= prev {
					panic("scan order violated under concurrent deletes")
				}
				prev, first = k, false
				return true
			})
		}
	}()
	wg.Wait()
	want := n - (n+2)/3
	if tr.Len() != want {
		t.Fatalf("Len = %d, want %d", tr.Len(), want)
	}
}

func TestDepthSingleLeaf(t *testing.T) {
	tr := New[[]byte]()
	if tr.Depth() != 1 {
		t.Fatalf("empty tree depth = %d", tr.Depth())
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New[[]byte]()
	var v [64]byte
	for i := uint64(0); i < 1<<20; i++ {
		tr.Put(i, v[:])
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			i = i*6364136223846793005 + 1
			tr.Get(i % (1 << 20))
		}
	})
}

func BenchmarkScan50(b *testing.B) {
	tr := New[[]byte]()
	for i := uint64(0); i < 1<<20; i++ {
		tr.Put(i, nil)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			i = i*6364136223846793005 + 1
			tr.Scan(i%(1<<20), 50, func(uint64, []byte) bool { return true })
		}
	})
}
