// Package btree implements a concurrent B+-tree over uint64 keys, the
// stand-in for MassTree used by μTPS-T. MassTree is a trie of B+-trees; for
// the fixed 8-byte keys the paper evaluates with, a single B+-tree layer has
// the same pointer-chase depth and node cacheline footprint, which are the
// properties the μTPS thread architecture cares about.
//
// Concurrency follows classic top-down lock coupling: readers take shared
// node locks hand-over-hand; writers take exclusive locks and split full
// nodes preemptively on the way down, so no ancestor ever needs revisiting.
// Deletion is lazy (no merging); leaves may underflow but remain linked,
// which keeps the scan path simple and is how several production trees
// behave in practice.
package btree

import (
	"sync"
	"sync/atomic"
)

// maxKeys is the node fan-out minus one. 32 keys keeps an internal node at
// roughly 4 cache lines of keys plus children, comparable to MassTree's
// interior nodes.
const maxKeys = 32

type node[V any] struct {
	mu     sync.RWMutex
	leaf   bool
	n      int
	keys   [maxKeys]uint64
	childs [maxKeys + 1]*node[V]
	vals   [maxKeys]V
	next   *node[V] // leaf chain for range scans
}

// Tree is a concurrent B+-tree mapping uint64 keys to values of type V.
type Tree[V any] struct {
	rootMu sync.RWMutex
	root   *node[V]
	count  atomic.Int64
}

// New returns an empty tree.
func New[V any]() *Tree[V] {
	return &Tree[V]{root: &node[V]{leaf: true}}
}

// Len returns the number of stored keys.
func (t *Tree[V]) Len() int { return int(t.count.Load()) }

// search returns the index of the first key >= k within the node.
func (nd *node[V]) search(k uint64) int {
	lo, hi := 0, nd.n
	for lo < hi {
		mid := (lo + hi) / 2
		if nd.keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns which child to descend into for key k.
func (nd *node[V]) childIndex(k uint64) int {
	i := nd.search(k)
	if i < nd.n && nd.keys[i] == k {
		return i + 1
	}
	return i
}

// Get returns the value stored for key.
func (t *Tree[V]) Get(key uint64) (V, bool) {
	t.rootMu.RLock()
	cur := t.root
	cur.mu.RLock()
	t.rootMu.RUnlock()
	for !cur.leaf {
		next := cur.childs[cur.childIndex(key)]
		next.mu.RLock()
		cur.mu.RUnlock()
		cur = next
	}
	defer cur.mu.RUnlock()
	i := cur.search(key)
	if i < cur.n && cur.keys[i] == key {
		return cur.vals[i], true
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value for key.
func (t *Tree[V]) Put(key uint64, val V) {
	for !t.tryPut(key, val) {
		t.splitRoot()
	}
}

// tryPut descends with exclusive lock coupling, splitting full children
// preemptively. It fails (returning false) only when the root itself is
// full and must be split by the caller.
func (t *Tree[V]) tryPut(key uint64, data V) bool {
	t.rootMu.RLock()
	cur := t.root
	cur.mu.Lock()
	t.rootMu.RUnlock()
	if cur.n == maxKeys {
		cur.mu.Unlock()
		return false
	}
	for !cur.leaf {
		child := cur.childs[cur.childIndex(key)]
		child.mu.Lock()
		if child.n == maxKeys {
			left, right, sep := splitChild(child)
			// Insert separator into cur (guaranteed non-full).
			i := cur.search(sep)
			copy(cur.keys[i+1:cur.n+1], cur.keys[i:cur.n])
			copy(cur.childs[i+2:cur.n+2], cur.childs[i+1:cur.n+1])
			cur.keys[i] = sep
			cur.childs[i] = left
			cur.childs[i+1] = right
			cur.n++
			if key > sep || (!child.leaf && key == sep) {
				child = right
			} else if child.leaf && key == sep {
				// Leaf separator equals right's first key.
				child = right
			} else {
				child = left
			}
			// left and right share child's lock state: splitChild keeps
			// the original node as left and returns a fresh right; the
			// original's lock is held. Lock the fresh node if we descend
			// into it and release the other.
			if child == right {
				right.mu.Lock()
				left.mu.Unlock()
			}
		}
		cur.mu.Unlock()
		cur = child
	}
	// Leaf insert; cur is locked and non-full.
	i := cur.search(key)
	if i < cur.n && cur.keys[i] == key {
		cur.vals[i] = data
		cur.mu.Unlock()
		return true
	}
	copy(cur.keys[i+1:cur.n+1], cur.keys[i:cur.n])
	copy(cur.vals[i+1:cur.n+1], cur.vals[i:cur.n])
	cur.keys[i] = key
	cur.vals[i] = data
	cur.n++
	t.count.Add(1)
	cur.mu.Unlock()
	return true
}

// splitChild splits a full locked node into (left=original, right=new) and
// returns the separator key that routes between them. For leaves the
// separator is right's first key (inclusive on the right, B+-tree style).
func splitChild[V any](nd *node[V]) (left, right *node[V], sep uint64) {
	right = &node[V]{leaf: nd.leaf}
	mid := nd.n / 2
	if nd.leaf {
		right.n = nd.n - mid
		copy(right.keys[:], nd.keys[mid:nd.n])
		copy(right.vals[:], nd.vals[mid:nd.n])
		var zero V
		for i := mid; i < nd.n; i++ {
			nd.vals[i] = zero
		}
		nd.n = mid
		right.next = nd.next
		nd.next = right
		sep = right.keys[0]
	} else {
		sep = nd.keys[mid]
		right.n = nd.n - mid - 1
		copy(right.keys[:], nd.keys[mid+1:nd.n])
		copy(right.childs[:], nd.childs[mid+1:nd.n+1])
		for i := mid + 1; i <= nd.n; i++ {
			nd.childs[i] = nil
		}
		nd.n = mid
	}
	return nd, right, sep
}

// splitRoot grows the tree by one level when the root is full.
func (t *Tree[V]) splitRoot() {
	t.rootMu.Lock()
	defer t.rootMu.Unlock()
	r := t.root
	r.mu.Lock()
	if r.n < maxKeys {
		r.mu.Unlock()
		return // someone else already split it
	}
	left, right, sep := splitChild(r)
	newRoot := &node[V]{leaf: false, n: 1}
	newRoot.keys[0] = sep
	newRoot.childs[0] = left
	newRoot.childs[1] = right
	t.root = newRoot
	r.mu.Unlock()
}

// Delete removes key, reporting whether it was present. Leaves are never
// merged; routing keys for removed entries may linger harmlessly.
func (t *Tree[V]) Delete(key uint64) bool {
	t.rootMu.RLock()
	cur := t.root
	cur.mu.Lock()
	t.rootMu.RUnlock()
	for !cur.leaf {
		next := cur.childs[cur.childIndex(key)]
		next.mu.Lock()
		cur.mu.Unlock()
		cur = next
	}
	defer cur.mu.Unlock()
	i := cur.search(key)
	if i >= cur.n || cur.keys[i] != key {
		return false
	}
	copy(cur.keys[i:cur.n-1], cur.keys[i+1:cur.n])
	copy(cur.vals[i:cur.n-1], cur.vals[i+1:cur.n])
	var zero V
	cur.vals[cur.n-1] = zero
	cur.n--
	t.count.Add(-1)
	return true
}

// Scan calls f for up to count entries with key >= start, in ascending key
// order, stopping early if f returns false. It returns the number of
// entries visited.
func (t *Tree[V]) Scan(start uint64, count int, f func(key uint64, val V) bool) int {
	if count <= 0 {
		return 0
	}
	t.rootMu.RLock()
	cur := t.root
	cur.mu.RLock()
	t.rootMu.RUnlock()
	for !cur.leaf {
		next := cur.childs[cur.childIndex(start)]
		next.mu.RLock()
		cur.mu.RUnlock()
		cur = next
	}
	visited := 0
	i := cur.search(start)
	for {
		for ; i < cur.n; i++ {
			if !f(cur.keys[i], cur.vals[i]) {
				cur.mu.RUnlock()
				return visited + 1
			}
			visited++
			if visited == count {
				cur.mu.RUnlock()
				return visited
			}
		}
		next := cur.next
		if next == nil {
			cur.mu.RUnlock()
			return visited
		}
		next.mu.RLock()
		cur.mu.RUnlock()
		cur = next
		i = 0
	}
}

// Range iterates the whole tree in key order until f returns false.
func (t *Tree[V]) Range(f func(key uint64, val V) bool) {
	t.Scan(0, int(^uint(0)>>1), f)
}

// Depth returns the current tree height (1 for a lone leaf); useful for
// tests and for the simulation's pointer-chase modelling.
func (t *Tree[V]) Depth() int {
	t.rootMu.RLock()
	cur := t.root
	cur.mu.RLock()
	t.rootMu.RUnlock()
	d := 1
	for !cur.leaf {
		next := cur.childs[0]
		next.mu.RLock()
		cur.mu.RUnlock()
		cur = next
		d++
	}
	cur.mu.RUnlock()
	return d
}
