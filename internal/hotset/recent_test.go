package hotset

import "testing"

func TestRecentNoteContainsSweep(t *testing.T) {
	r := NewRecent(256)
	if r.Contains(42) {
		t.Fatal("empty filter contains 42")
	}
	r.Note(42)
	if !r.Contains(42) {
		t.Fatal("noted key not contained")
	}
	// Exact match: a different key mapping anywhere must not be vetoed.
	if r.Contains(43) {
		t.Fatal("unnoted key vetoed (false positive)")
	}

	// A veto survives exactly two sweeps.
	r.Sweep()
	if !r.Contains(42) {
		t.Fatal("veto lost after one sweep")
	}
	r.Sweep()
	if r.Contains(42) {
		t.Fatal("veto survived two sweeps")
	}
}

func TestRecentKeyZero(t *testing.T) {
	r := NewRecent(64)
	r.Note(0)
	if !r.Contains(0) {
		t.Fatal("key 0 not representable")
	}
}

func TestRecentCollisionOverwrites(t *testing.T) {
	r := NewRecent(1) // rounds up to 64 slots: collisions guaranteed below
	// Find two keys that collide.
	var a, b uint64
	slot := func(k uint64) uint64 { return hvMix(k) & r.mask }
	a = 1
	for b = 2; slot(b) != slot(a); b++ {
	}
	r.Note(a)
	r.Note(b)
	if r.Contains(a) {
		t.Fatal("overwritten veto still contained (want false negative on collision)")
	}
	if !r.Contains(b) {
		t.Fatal("latest victim lost")
	}
}

func TestRecentSizingRoundsUp(t *testing.T) {
	r := NewRecent(100)
	if got := r.mask + 1; got != 128 {
		t.Fatalf("capacity = %d, want 128", got)
	}
	r = NewRecent(0)
	if got := r.mask + 1; got != 64 {
		t.Fatalf("minimum capacity = %d, want 64", got)
	}
}
