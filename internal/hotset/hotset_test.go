package hotset

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"mutps/internal/seqitem"
)

func TestCMSCountsAndReset(t *testing.T) {
	c := NewCMS(1024)
	for i := 0; i < 100; i++ {
		c.Add(7)
	}
	c.Add(9)
	if got := c.Estimate(7); got < 100 {
		t.Fatalf("estimate(7) = %d, want >= 100", got)
	}
	if got := c.Estimate(9); got < 1 {
		t.Fatalf("estimate(9) = %d, want >= 1", got)
	}
	// CMS never underestimates.
	if got := c.Estimate(12345); got > 101 {
		t.Fatalf("estimate of absent key too large: %d", got)
	}
	c.Reset()
	if c.Estimate(7) != 0 {
		t.Fatal("Reset must clear counters")
	}
}

func TestCMSNeverUnderestimatesProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		c := NewCMS(256)
		truth := map[uint64]uint32{}
		for _, k := range keys {
			c.Add(uint64(k))
			truth[uint64(k)]++
		}
		for k, n := range truth {
			if c.Estimate(k) < n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCMSMinimumWidth(t *testing.T) {
	c := NewCMS(0)
	c.Add(1)
	if c.Estimate(1) < 1 {
		t.Fatal("tiny sketch must still count")
	}
}

func TestTopKKeepsHottest(t *testing.T) {
	top := NewTopK(3)
	counts := map[uint64]uint32{1: 10, 2: 50, 3: 30, 4: 5, 5: 40}
	for k, c := range counts {
		top.Offer(k, c)
	}
	hot := top.Hottest()
	if len(hot) != 3 {
		t.Fatalf("len = %d", len(hot))
	}
	want := []uint64{2, 5, 3}
	for i, h := range hot {
		if h.Key != want[i] {
			t.Fatalf("hottest = %v, want keys %v", hot, want)
		}
	}
	if top.Min() != 30 {
		t.Fatalf("Min = %d", top.Min())
	}
}

func TestTopKUpdateExistingKey(t *testing.T) {
	top := NewTopK(2)
	top.Offer(1, 10)
	top.Offer(2, 20)
	top.Offer(1, 99) // update, not duplicate
	hot := top.Hottest()
	if len(hot) != 2 || hot[0].Key != 1 || hot[0].Count != 99 {
		t.Fatalf("hottest = %v", hot)
	}
	// Lower count for existing key is ignored.
	top.Offer(1, 5)
	if top.Hottest()[0].Count != 99 {
		t.Fatal("lower re-offer must not decrease count")
	}
}

func TestTopKRejectsBelowMin(t *testing.T) {
	top := NewTopK(2)
	top.Offer(1, 10)
	top.Offer(2, 20)
	top.Offer(3, 5)
	hot := top.Hottest()
	for _, h := range hot {
		if h.Key == 3 {
			t.Fatal("key below min must not enter a full heap")
		}
	}
}

func TestTopKPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTopK(0)
}

func TestTopKHeapInvariantProperty(t *testing.T) {
	f := func(offers []uint16) bool {
		top := NewTopK(8)
		truth := map[uint64]uint32{}
		for _, o := range offers {
			k := uint64(o % 64)
			truth[k]++
			top.Offer(k, truth[k])
		}
		// The returned set must be the true top-8 by final count.
		type kc struct {
			k uint64
			c uint32
		}
		var all []kc
		for k, c := range truth {
			all = append(all, kc{k, c})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].c != all[j].c {
				return all[i].c > all[j].c
			}
			return all[i].k < all[j].k
		})
		hot := top.Hottest()
		n := len(hot)
		if n > 8 {
			return false
		}
		// Counts must be correct for every returned key.
		for _, h := range hot {
			if truth[h.Key] != h.Count {
				return false
			}
		}
		// The minimum returned count must be >= the (n+1)-th true count.
		if len(all) > n && n > 0 {
			if hot[n-1].Count < all[n].c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerSamplingAndSnapshot(t *testing.T) {
	tr := NewTracker(2, 1, 1024)
	// Worker 0 hammers key 42, worker 1 spreads accesses.
	for i := 0; i < 500; i++ {
		tr.Record(0, 42)
	}
	for i := 0; i < 100; i++ {
		tr.Record(1, uint64(i))
	}
	cms := NewCMS(4096)
	hot := tr.Snapshot(cms, 5)
	if len(hot) == 0 || hot[0].Key != 42 {
		t.Fatalf("hottest = %+v, want key 42 first", hot)
	}
	// Second snapshot resets the sketch window but rings persist.
	hot2 := tr.Snapshot(cms, 5)
	if hot2[0].Key != 42 {
		t.Fatal("ring contents must persist across snapshots")
	}
}

func TestTrackerSampleEvery(t *testing.T) {
	tr := NewTracker(1, 10, 16)
	for i := 0; i < 9; i++ {
		tr.Record(0, 7)
	}
	cms := NewCMS(64)
	if got := tr.Snapshot(cms, 4); len(got) != 0 {
		t.Fatalf("nothing should be sampled yet, got %v", got)
	}
	tr.Record(0, 7) // 10th access → sampled
	if got := tr.Snapshot(cms, 4); len(got) != 1 || got[0].Key != 7 {
		t.Fatalf("snapshot = %v", got)
	}
}

func TestTrackerConcurrentRecord(t *testing.T) {
	tr := NewTracker(4, 2, 256)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				tr.Record(w, uint64(w))
			}
		}(w)
	}
	cms := NewCMS(1024)
	for i := 0; i < 100; i++ {
		tr.Snapshot(cms, 4) // concurrent with recording; must not race
	}
	wg.Wait()
	hot := tr.Snapshot(cms, 4)
	if len(hot) != 4 {
		t.Fatalf("want all 4 worker keys, got %v", hot)
	}
}

func TestTrackerPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewTracker(0, 1, 1) },
		func() { NewTracker(1, 0, 1) },
		func() { NewTracker(1, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func makeEntries(keys ...uint64) []Entry {
	out := make([]Entry, len(keys))
	for i, k := range keys {
		out[i] = Entry{Key: k, Item: seqitem.New([]byte{byte(k)})}
	}
	return out
}

func TestSortedViewLookup(t *testing.T) {
	v := NewSortedView(makeEntries(30, 10, 20))
	if v.Len() != 3 {
		t.Fatalf("Len = %d", v.Len())
	}
	for _, k := range []uint64{10, 20, 30} {
		it, ok := v.Lookup(k)
		if !ok || it.Read(nil)[0] != byte(k) {
			t.Fatalf("lookup %d failed", k)
		}
	}
	if _, ok := v.Lookup(15); ok {
		t.Fatal("absent key must miss")
	}
	if _, ok := v.Lookup(40); ok {
		t.Fatal("key past end must miss")
	}
}

func TestSortedViewDuplicateKeysKeepLast(t *testing.T) {
	a := seqitem.New([]byte{1})
	b := seqitem.New([]byte{2})
	v := NewSortedView([]Entry{{5, a}, {5, b}})
	if v.Len() != 1 {
		t.Fatalf("Len = %d", v.Len())
	}
	it, _ := v.Lookup(5)
	if it != b {
		t.Fatal("duplicate key must keep the last entry")
	}
}

func TestSortedViewCoveredInRange(t *testing.T) {
	v := NewSortedView(makeEntries(10, 20, 30, 40))
	got := v.CoveredInRange(15, 35)
	if len(got) != 2 || got[0] != 20 || got[1] != 30 {
		t.Fatalf("CoveredInRange = %v", got)
	}
	if out := v.CoveredInRange(50, 60); len(out) != 0 {
		t.Fatal("empty range must return nothing")
	}
}

func TestHashViewLookup(t *testing.T) {
	keys := make([]uint64, 100)
	for i := range keys {
		keys[i] = uint64(i * 7)
	}
	v := NewHashView(makeEntries(keys...))
	if v.Len() != 100 {
		t.Fatalf("Len = %d", v.Len())
	}
	for _, k := range keys {
		if it, ok := v.Lookup(k); !ok || it.Read(nil)[0] != byte(k) {
			t.Fatalf("lookup %d failed", k)
		}
	}
	if _, ok := v.Lookup(1); ok {
		t.Fatal("absent key must miss")
	}
}

func TestHashViewDuplicateInsertReplaces(t *testing.T) {
	a := seqitem.New([]byte{1})
	b := seqitem.New([]byte{2})
	v := NewHashView([]Entry{{9, a}, {9, b}})
	if v.Len() != 1 {
		t.Fatalf("Len = %d", v.Len())
	}
	it, _ := v.Lookup(9)
	if it != b {
		t.Fatal("re-insert must replace")
	}
}

func TestCacheInstallAndLookup(t *testing.T) {
	c := NewCache()
	if _, ok := c.Lookup(1); ok {
		t.Fatal("empty cache must miss")
	}
	if c.Len() != 0 {
		t.Fatal("empty cache Len != 0")
	}
	c.Install(NewSortedView(makeEntries(1, 2)))
	if _, ok := c.Lookup(1); !ok {
		t.Fatal("installed view must serve lookups")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	// Swap to a different view: key 1 disappears atomically.
	c.Install(NewHashView(makeEntries(3)))
	if _, ok := c.Lookup(1); ok {
		t.Fatal("old view must be invisible after Install")
	}
	if _, ok := c.Lookup(3); !ok {
		t.Fatal("new view must be visible after Install")
	}
}

func TestCacheConcurrentSwapAndLookup(t *testing.T) {
	c := NewCache()
	even := NewSortedView(makeEntries(0, 2, 4, 6))
	odd := NewSortedView(makeEntries(1, 3, 5, 7))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				c.Install(even)
			} else {
				c.Install(odd)
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50000; i++ {
				// Consistency: if 0 hits, the snapshot is "even", so 2
				// must hit in the SAME view (not via the cache again).
				v := c.View()
				_, ok0 := v.Lookup(0)
				_, ok2 := v.Lookup(2)
				if ok0 != ok2 {
					panic("view must be internally consistent")
				}
			}
		}()
	}
	// Readers bounded by iterations; writer by stop.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	close(stop)
	<-done
}
