package hotset

import "sync/atomic"

// Tracker records a sampled stream of accessed keys per worker with no
// cross-worker synchronization: each worker owns a fixed ring it overwrites,
// and the background refresher drains all rings into a CMS + TopK to
// produce the next hot-set candidates.
type Tracker struct {
	sampleEvery uint32
	ringSize    int
	rings       [][]atomic.Uint64 // per-worker sampled keys (key+1; 0 = empty)
	pos         []counterPad
	snapshots   atomic.Uint64
}

type counterPad struct {
	n atomic.Uint32
	_ [15]uint32
}

// NewTracker creates a tracker for workers [0, n). Every sampleEvery-th
// recorded access is kept (1 keeps all), in a per-worker ring of ringSize
// samples.
func NewTracker(workers, sampleEvery, ringSize int) *Tracker {
	if workers <= 0 || sampleEvery <= 0 || ringSize <= 0 {
		panic("hotset: NewTracker arguments must be positive")
	}
	t := &Tracker{
		sampleEvery: uint32(sampleEvery),
		ringSize:    ringSize,
		rings:       make([][]atomic.Uint64, workers),
		pos:         make([]counterPad, workers),
	}
	for i := range t.rings {
		t.rings[i] = make([]atomic.Uint64, ringSize)
	}
	return t
}

// Record notes that worker w accessed key. It is wait-free and costs one
// increment plus, on sampled accesses, one store.
func (t *Tracker) Record(w int, key uint64) {
	n := t.pos[w].n.Add(1)
	if n%t.sampleEvery != 0 {
		return
	}
	slot := int(n/t.sampleEvery) % t.ringSize
	t.rings[w][slot].Store(key + 1)
}

// Snapshot drains all rings into the sketch and returns the k hottest
// sampled keys. The sketch is reset first, so each snapshot reflects only
// the most recent window of samples.
func (t *Tracker) Snapshot(cms *CMS, k int) []HotKey {
	t.snapshots.Add(1)
	cms.Reset()
	top := NewTopK(k)
	for w := range t.rings {
		for i := range t.rings[w] {
			v := t.rings[w][i].Load()
			if v == 0 {
				continue
			}
			key := v - 1
			cms.Add(key)
			top.Offer(key, cms.Estimate(key))
		}
	}
	return top.Hottest()
}

// Snapshots returns how many sketch refreshes have run.
func (t *Tracker) Snapshots() uint64 { return t.snapshots.Load() }
