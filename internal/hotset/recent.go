package hotset

import "sync/atomic"

// Recent is the eviction-aware admission filter: a fixed-size,
// direct-mapped set of recently evicted keys. The lifecycle evictor
// Notes each victim; the hot-set refresher Contains-checks candidates
// before admitting them and Sweeps once per refresh, so a veto lasts one
// to two refresh cycles. Without it, a key the evictor judged coldest
// can still rank high in the tracker's sketch (the CMS decays slowly)
// and bounce straight back into the hot set — pinning a freshly evicted
// item's replacement chain and defeating the eviction.
//
// The structure is two generations of atomic slots holding key+1
// (0 = empty). Lookups require an exact key match, so a veto never hits
// the wrong key (no false positives); hash collisions overwrite, so a
// veto can be lost (false negatives) — acceptable for a heuristic that
// only delays re-admission. Note and Contains are wait-free; Sweep is
// called under the refresher's serialization.
type Recent struct {
	mask uint64
	gens [2][]atomic.Uint64
	cur  atomic.Uint32 // generation Note writes into; Contains checks both
}

// NewRecent creates a filter with capacity rounded up to a power of two
// (minimum 64 slots per generation).
func NewRecent(size int) *Recent {
	n := 64
	for n < size {
		n <<= 1
	}
	r := &Recent{mask: uint64(n - 1)}
	r.gens[0] = make([]atomic.Uint64, n)
	r.gens[1] = make([]atomic.Uint64, n)
	return r
}

// Note records an evicted key.
func (r *Recent) Note(key uint64) {
	g := r.gens[r.cur.Load()&1]
	g[hvMix(key)&r.mask].Store(key + 1)
}

// Contains reports whether key was Noted within the last two sweep
// periods (and not overwritten by a colliding victim).
func (r *Recent) Contains(key uint64) bool {
	slot := hvMix(key) & r.mask
	want := key + 1
	return r.gens[0][slot].Load() == want || r.gens[1][slot].Load() == want
}

// Sweep ages the filter: the generation that has been accumulating
// becomes read-only history, and the other — holding the oldest vetoes —
// is cleared for reuse. Call once per hot-set refresh.
func (r *Recent) Sweep() {
	next := (r.cur.Load() + 1) & 1
	g := r.gens[next]
	for i := range g {
		g[i].Store(0)
	}
	r.cur.Store(next)
}
