package hotset

import "sort"

// HotKey is a key with its estimated access count.
type HotKey struct {
	Key   uint64
	Count uint32
}

// TopK keeps the k keys with the largest counts using a min-heap plus a
// membership map, as the paper's hot-set refresher does.
type TopK struct {
	k     int
	heap  []HotKey       // min-heap by Count
	index map[uint64]int // key → heap position
}

// NewTopK creates a tracker for the k hottest keys; k must be positive.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic("hotset: TopK needs k > 0")
	}
	return &TopK{k: k, index: make(map[uint64]int, k)}
}

// Len returns the number of tracked keys (≤ k).
func (t *TopK) Len() int { return len(t.heap) }

// Min returns the smallest tracked count (0 when not yet full).
func (t *TopK) Min() uint32 {
	if len(t.heap) < t.k {
		return 0
	}
	return t.heap[0].Count
}

// Offer considers key with the given count estimate.
func (t *TopK) Offer(key uint64, count uint32) {
	if i, ok := t.index[key]; ok {
		if count > t.heap[i].Count {
			t.heap[i].Count = count
			t.siftDown(i)
		}
		return
	}
	if len(t.heap) < t.k {
		t.heap = append(t.heap, HotKey{key, count})
		t.index[key] = len(t.heap) - 1
		t.siftUp(len(t.heap) - 1)
		return
	}
	if count <= t.heap[0].Count {
		return
	}
	delete(t.index, t.heap[0].Key)
	t.heap[0] = HotKey{key, count}
	t.index[key] = 0
	t.siftDown(0)
}

func (t *TopK) less(i, j int) bool { return t.heap[i].Count < t.heap[j].Count }

func (t *TopK) swap(i, j int) {
	t.heap[i], t.heap[j] = t.heap[j], t.heap[i]
	t.index[t.heap[i].Key] = i
	t.index[t.heap[j].Key] = j
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !t.less(i, p) {
			return
		}
		t.swap(i, p)
		i = p
	}
}

func (t *TopK) siftDown(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && t.less(l, min) {
			min = l
		}
		if r < n && t.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		t.swap(i, min)
		i = min
	}
}

// Hottest returns the tracked keys sorted by descending count (ties broken
// by key for determinism).
func (t *TopK) Hottest() []HotKey {
	out := make([]HotKey, len(t.heap))
	copy(out, t.heap)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}
