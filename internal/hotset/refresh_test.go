package hotset

import (
	"testing"

	"mutps/internal/epoch"
	"mutps/internal/seqitem"
)

// TestEpochGuardedRefresh demonstrates the Nap-style refresh protocol end
// to end: readers pin an epoch around each view use; the refresher swaps
// the view and synchronizes before harvesting the old one.
func TestEpochGuardedRefresh(t *testing.T) {
	const readers = 3
	dom := epoch.NewDomain(readers)
	cache := NewCache()
	itemA := seqitem.New([]byte("aaaaaaaa"))
	cache.Install(NewSortedView([]Entry{{Key: 1, Item: itemA}}))

	// Reader side: epoch-guarded lookup.
	lookup := func(r int, key uint64) (*seqitem.Item, bool) {
		dom.Enter(r)
		defer dom.Exit(r)
		return cache.Lookup(key)
	}

	if it, ok := lookup(0, 1); !ok || string(it.Read(nil)) != "aaaaaaaa" {
		t.Fatal("initial view broken")
	}

	// Refresher side: install, synchronize, then the old view is dead.
	itemB := seqitem.New([]byte("bbbbbbbb"))
	cache.Install(NewSortedView([]Entry{{Key: 2, Item: itemB}}))
	dom.Synchronize()

	if _, ok := lookup(1, 1); ok {
		t.Fatal("old key visible after epoch-guarded switch")
	}
	if it, ok := lookup(2, 2); !ok || string(it.Read(nil)) != "bbbbbbbb" {
		t.Fatal("new view not visible")
	}
}

// TestTrackerToViewPipeline runs the full §3.2.2 pipeline: record traffic,
// snapshot the hottest keys, and build the engine-appropriate view.
func TestTrackerToViewPipeline(t *testing.T) {
	tr := NewTracker(2, 1, 512)
	cms := NewCMS(2048)
	items := map[uint64]*seqitem.Item{}
	for k := uint64(0); k < 100; k++ {
		items[k] = seqitem.New([]byte{byte(k)})
	}
	// Key 5 is the hottest, then 6, then a uniform tail.
	for i := 0; i < 300; i++ {
		tr.Record(0, 5)
	}
	for i := 0; i < 150; i++ {
		tr.Record(1, 6)
	}
	for k := uint64(0); k < 100; k++ {
		tr.Record(0, k)
	}
	hot := tr.Snapshot(cms, 4)
	if len(hot) != 4 || hot[0].Key != 5 || hot[1].Key != 6 {
		t.Fatalf("hot = %+v", hot)
	}
	entries := make([]Entry, 0, len(hot))
	for _, h := range hot {
		entries = append(entries, Entry{Key: h.Key, Item: items[h.Key]})
	}
	for _, view := range []View{NewSortedView(entries), NewHashView(entries)} {
		if view.Len() != 4 {
			t.Fatalf("view len %d", view.Len())
		}
		it, ok := view.Lookup(5)
		if !ok || it.Read(nil)[0] != 5 {
			t.Fatal("hottest key must be servable from the view")
		}
	}
}
