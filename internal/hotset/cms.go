// Package hotset implements the resizable cache of the cache-resident layer
// (§3.2.2): a background refresher samples recently accessed keys, tracks
// the hottest ones with a count-min sketch feeding a top-K min-heap, and
// atomically switches the worker-visible hot-set view using epoch-based
// publication, Nap-style. For tree engines the published view is a sorted
// array (no intermediate pointers, binary-searchable); for hash engines the
// main index layout is reused (a compact open-addressed table).
package hotset

import "sync/atomic"

const cmsDepth = 4

// CMS is a count-min sketch over uint64 keys with saturating uint32
// counters. Writes use atomic adds so multiple recorders may feed the same
// sketch, though the tracker funnels through one refresher in practice.
type CMS struct {
	width uint64 // per-row counters, power of two
	rows  [cmsDepth][]atomic.Uint32
}

// NewCMS creates a sketch with the given per-row width (rounded up to a
// power of two, minimum 16).
func NewCMS(width int) *CMS {
	w := uint64(16)
	for w < uint64(width) {
		w <<= 1
	}
	c := &CMS{width: w}
	for d := 0; d < cmsDepth; d++ {
		c.rows[d] = make([]atomic.Uint32, w)
	}
	return c
}

var cmsSeeds = [cmsDepth]uint64{
	0x9E3779B97F4A7C15, 0xC2B2AE3D27D4EB4F, 0x165667B19E3779F9, 0x27D4EB2F165667C5,
}

func cmsIndex(key, seed, mask uint64) uint64 {
	x := key ^ seed
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x & mask
}

// Add counts one occurrence of key.
func (c *CMS) Add(key uint64) {
	mask := c.width - 1
	for d := 0; d < cmsDepth; d++ {
		ctr := &c.rows[d][cmsIndex(key, cmsSeeds[d], mask)]
		for {
			v := ctr.Load()
			if v == ^uint32(0) {
				break // saturated
			}
			if ctr.CompareAndSwap(v, v+1) {
				break
			}
		}
	}
}

// Estimate returns the sketch's (over-)estimate of key's count.
func (c *CMS) Estimate(key uint64) uint32 {
	mask := c.width - 1
	est := ^uint32(0)
	for d := 0; d < cmsDepth; d++ {
		v := c.rows[d][cmsIndex(key, cmsSeeds[d], mask)].Load()
		if v < est {
			est = v
		}
	}
	return est
}

// Reset zeroes all counters for the next sampling window.
func (c *CMS) Reset() {
	for d := 0; d < cmsDepth; d++ {
		for i := range c.rows[d] {
			c.rows[d][i].Store(0)
		}
	}
}
