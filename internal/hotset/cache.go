package hotset

import (
	"sort"
	"sync/atomic"

	"mutps/internal/seqitem"
)

// Entry binds a hot key to its item record in the main store. The cache
// never copies item data — per the paper, the CPU caches the data
// automatically once the CR layer's dedicated threads access it.
type Entry struct {
	Key  uint64
	Item *seqitem.Item
}

// View is an immutable hot-set snapshot the CR-layer workers look keys up
// in. Implementations must be safe for concurrent readers.
type View interface {
	Lookup(key uint64) (*seqitem.Item, bool)
	Len() int
}

// SortedView is the tree-engine view: an ordered array of index entries,
// eliminating the intermediate pointers of a tree while supporting binary
// search (and range-prefix lookups for scans).
type SortedView struct {
	keys  []uint64
	items []*seqitem.Item
}

// NewSortedView builds a view from entries (which it sorts by key;
// duplicate keys keep the last occurrence).
func NewSortedView(entries []Entry) *SortedView {
	es := make([]Entry, len(entries))
	copy(es, entries)
	sort.Slice(es, func(i, j int) bool { return es[i].Key < es[j].Key })
	v := &SortedView{
		keys:  make([]uint64, 0, len(es)),
		items: make([]*seqitem.Item, 0, len(es)),
	}
	for i, e := range es {
		if i > 0 && e.Key == v.keys[len(v.keys)-1] {
			v.items[len(v.items)-1] = e.Item
			continue
		}
		v.keys = append(v.keys, e.Key)
		v.items = append(v.items, e.Item)
	}
	return v
}

// Lookup implements View by binary search.
func (v *SortedView) Lookup(key uint64) (*seqitem.Item, bool) {
	i := sort.Search(len(v.keys), func(i int) bool { return v.keys[i] >= key })
	if i < len(v.keys) && v.keys[i] == key {
		return v.items[i], true
	}
	return nil, false
}

// Len implements View.
func (v *SortedView) Len() int { return len(v.keys) }

// CoveredInRange returns the cached keys within [lo, hi], used by μTPS-T
// range queries: the CR layer serves these directly and the MR layer skips
// them.
func (v *SortedView) CoveredInRange(lo, hi uint64) []uint64 {
	i := sort.Search(len(v.keys), func(i int) bool { return v.keys[i] >= lo })
	var out []uint64
	for ; i < len(v.keys) && v.keys[i] <= hi; i++ {
		out = append(out, v.keys[i])
	}
	return out
}

// HashView is the hash-engine view: a compact open-addressed table mirroring
// the main index's layout (the paper reuses the main hash structure; a
// dedicated compact table gives the CR layer the same O(1) probe with a
// footprint proportional to the hot set).
type HashView struct {
	mask  uint64
	keys  []uint64 // key+1; 0 = empty
	items []*seqitem.Item
	n     int
}

// NewHashView builds a view with ≤50% load.
func NewHashView(entries []Entry) *HashView {
	size := uint64(16)
	for size < uint64(len(entries))*2 {
		size <<= 1
	}
	v := &HashView{
		mask:  size - 1,
		keys:  make([]uint64, size),
		items: make([]*seqitem.Item, size),
	}
	for _, e := range entries {
		v.insert(e.Key, e.Item)
	}
	return v
}

func hvMix(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xFF51AFD7ED558CCD
	k ^= k >> 33
	return k
}

func (v *HashView) insert(key uint64, it *seqitem.Item) {
	i := hvMix(key) & v.mask
	for {
		switch v.keys[i] {
		case 0:
			v.keys[i] = key + 1
			v.items[i] = it
			v.n++
			return
		case key + 1:
			v.items[i] = it
			return
		}
		i = (i + 1) & v.mask
	}
}

// Lookup implements View by linear probing.
func (v *HashView) Lookup(key uint64) (*seqitem.Item, bool) {
	i := hvMix(key) & v.mask
	for {
		switch v.keys[i] {
		case 0:
			return nil, false
		case key + 1:
			return v.items[i], true
		}
		i = (i + 1) & v.mask
	}
}

// Len implements View.
func (v *HashView) Len() int { return v.n }

// emptyView serves lookups before the first refresh.
type emptyView struct{}

func (emptyView) Lookup(uint64) (*seqitem.Item, bool) { return nil, false }
func (emptyView) Len() int                            { return 0 }

// Cache is the worker-facing handle: an atomically swappable View. The
// refresher builds a new view off the hot path and Installs it; workers see
// either the old or the new snapshot, never a mix — the paper's epoch-based
// atomic switch (the epoch domain additionally lets the refresher wait for
// all workers to leave the old view when it must be quiesced, e.g. during
// thread reassignment).
type Cache struct {
	v        atomic.Pointer[viewBox]
	installs atomic.Uint64
}

type viewBox struct{ View }

// NewCache returns a cache that misses everything until a view is installed.
func NewCache() *Cache {
	c := &Cache{}
	c.v.Store(&viewBox{emptyView{}})
	return c
}

// Lookup consults the current view.
func (c *Cache) Lookup(key uint64) (*seqitem.Item, bool) {
	return c.v.Load().Lookup(key)
}

// View returns the current snapshot (for range queries and stats).
func (c *Cache) View() View { return c.v.Load().View }

// Install atomically publishes a new snapshot.
func (c *Cache) Install(v View) {
	c.v.Store(&viewBox{v})
	c.installs.Add(1)
}

// Installs returns how many views have been published — the epoch-switch
// count the observability layer exports.
func (c *Cache) Installs() uint64 { return c.installs.Load() }

// Len returns the current snapshot's size.
func (c *Cache) Len() int { return c.v.Load().Len() }
