package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadTrace parses a request trace in the common CSV form used by the
// Twitter cache-trace release and similar tools:
//
//	op,key[,valueSize[,scanCount]]
//
// where op is one of get/put/delete/scan (case-insensitive; "set" and
// "update" are accepted as put, "gets" as get). Keys may be decimal
// integers or arbitrary strings (hashed to 64 bits, as the paper's
// 16-byte request format does). Blank lines and lines starting with '#'
// are skipped. The reader stops at EOF or after limit requests (0 = no
// limit).
func ReadTrace(r io.Reader, limit int) ([]Request, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var out []Request
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		req, err := parseTraceLine(text)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		out = append(out, req)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	return out, nil
}

func parseTraceLine(text string) (Request, error) {
	fields := strings.Split(text, ",")
	if len(fields) < 2 {
		return Request{}, fmt.Errorf("want at least op,key; got %q", text)
	}
	var req Request
	switch strings.ToLower(strings.TrimSpace(fields[0])) {
	case "get", "gets", "read":
		req.Op = OpGet
	case "put", "set", "update", "add", "insert", "write":
		req.Op = OpPut
	case "delete", "del":
		req.Op = OpDelete
	case "scan", "range":
		req.Op = OpScan
	default:
		return Request{}, fmt.Errorf("unknown op %q", fields[0])
	}
	req.Key = parseTraceKey(strings.TrimSpace(fields[1]))
	if len(fields) > 2 {
		n, err := strconv.Atoi(strings.TrimSpace(fields[2]))
		if err != nil || n < 0 {
			return Request{}, fmt.Errorf("bad value size %q", fields[2])
		}
		req.ValueSize = n
	}
	if len(fields) > 3 {
		n, err := strconv.Atoi(strings.TrimSpace(fields[3]))
		if err != nil || n < 0 {
			return Request{}, fmt.Errorf("bad scan count %q", fields[3])
		}
		req.ScanCount = n
	}
	if req.Op == OpScan && req.ScanCount == 0 {
		req.ScanCount = 50
	}
	return req, nil
}

// parseTraceKey accepts decimal keys directly and hashes anything else,
// matching the paper's treatment of keys longer than 8 bytes.
func parseTraceKey(s string) uint64 {
	if n, err := strconv.ParseUint(s, 10, 64); err == nil {
		return n
	}
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001B3
	}
	return h
}

// TraceGenerator replays a fixed request slice as a Generator-compatible
// stream, looping when it reaches the end.
type TraceGenerator struct {
	reqs []Request
	pos  int
}

// NewTraceGenerator wraps reqs (which must be non-empty).
func NewTraceGenerator(reqs []Request) *TraceGenerator {
	if len(reqs) == 0 {
		panic("workload: empty trace")
	}
	return &TraceGenerator{reqs: reqs}
}

// Next returns the next trace request, looping at the end.
func (g *TraceGenerator) Next() Request {
	r := g.reqs[g.pos]
	g.pos = (g.pos + 1) % len(g.reqs)
	return r
}

// Len returns the underlying trace length.
func (g *TraceGenerator) Len() int { return len(g.reqs) }
