package workload

// OpType identifies a KVS operation.
type OpType uint8

// Operations issued by generated workloads.
const (
	OpGet OpType = iota
	OpPut
	OpDelete
	OpScan
)

func (o OpType) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	default:
		return "scan"
	}
}

// Request is one generated KV operation.
type Request struct {
	Op        OpType
	Key       uint64
	ValueSize int // bytes; meaningful for puts (and as expected size for gets)
	ScanCount int // items to return; meaningful for scans
}

// Mix gives operation proportions; whatever is left after Get+Scan+Delete
// is Put. Fractions must sum to at most 1.
type Mix struct {
	GetFrac    float64
	ScanFrac   float64
	DeleteFrac float64
}

// Standard mixes from the paper's evaluation (§5.2.1).
var (
	MixYCSBA    = Mix{GetFrac: 0.5}   // 50% get / 50% put
	MixYCSBB    = Mix{GetFrac: 0.95}  // 95% get / 5% put
	MixYCSBC    = Mix{GetFrac: 1.0}   // 100% get
	MixYCSBE    = Mix{ScanFrac: 0.95} // 95% scan / 5% put
	MixPutOnly  = Mix{}               // 100% put
	MixScanOnly = Mix{ScanFrac: 1.0}  // scan-only (Fig 8a)
)

// SizeDist samples a value size in bytes.
type SizeDist interface {
	Sample(r *RNG) int
	Mean() float64
}

// FixedSize returns every value at n bytes.
type FixedSize int

// Sample implements SizeDist.
func (f FixedSize) Sample(*RNG) int { return int(f) }

// Mean implements SizeDist.
func (f FixedSize) Mean() float64 { return float64(f) }

// UniformSize samples value sizes uniformly in [Min, Max]. A spread wide
// enough to cross power-of-two boundaries turns puts into genuine item
// replacements (the in-place seqlock write only covers values that still
// fit the allocated slot), which is what exercises a store's allocation
// and reclamation path under load.
type UniformSize struct{ Min, Max int }

// Sample implements SizeDist.
func (u UniformSize) Sample(r *RNG) int {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + r.Intn(u.Max-u.Min+1)
}

// Mean implements SizeDist.
func (u UniformSize) Mean() float64 { return float64(u.Min+u.Max) / 2 }

// Config fully describes a workload.
type Config struct {
	Keys      uint64  // populated keyspace size
	Theta     float64 // Zipfian skew; 0 = uniform. YCSB default is 0.99.
	Mix       Mix
	ValueSize SizeDist
	ScanLen   int // average range size for scans (paper uses 50)
	Seed      uint64
}

// Generator produces a deterministic request stream for a Config.
type Generator struct {
	cfg  Config
	rng  *RNG
	zipf *Zipfian
}

// NewGenerator validates cfg and builds the stream.
func NewGenerator(cfg Config) *Generator {
	if cfg.Keys == 0 {
		panic("workload: Config.Keys must be positive")
	}
	if cfg.ValueSize == nil {
		cfg.ValueSize = FixedSize(64)
	}
	if cfg.ScanLen == 0 {
		cfg.ScanLen = 50
	}
	if s := cfg.Mix.GetFrac + cfg.Mix.ScanFrac + cfg.Mix.DeleteFrac; s > 1+1e-9 {
		panic("workload: Mix fractions exceed 1")
	}
	return &Generator{
		cfg:  cfg,
		rng:  NewRNG(cfg.Seed),
		zipf: NewZipfian(cfg.Keys, cfg.Theta),
	}
}

// KeyOfRank maps popularity rank k (0 = hottest) to the concrete key, using
// YCSB-style FNV scrambling so hot keys are spread across the keyspace.
func (g *Generator) KeyOfRank(k uint64) uint64 {
	return fnv64a(k) % g.cfg.Keys
}

// HotKeys returns the n hottest keys in rank order. With a uniform
// distribution there is no meaningful ranking, but the mapping is still
// deterministic.
func (g *Generator) HotKeys(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = g.KeyOfRank(uint64(i))
	}
	return out
}

// Next returns the next request in the stream.
func (g *Generator) Next() Request {
	rank := g.zipf.Next(g.rng)
	key := g.KeyOfRank(rank)
	u := g.rng.Float64()
	m := g.cfg.Mix
	var req Request
	switch {
	case u < m.GetFrac:
		req = Request{Op: OpGet, Key: key, ValueSize: g.cfg.ValueSize.Sample(g.rng)}
	case u < m.GetFrac+m.ScanFrac:
		// Scan lengths uniform in [1, 2*ScanLen) so the mean matches ScanLen.
		n := 1 + g.rng.Intn(2*g.cfg.ScanLen-1)
		req = Request{Op: OpScan, Key: key, ScanCount: n}
	case u < m.GetFrac+m.ScanFrac+m.DeleteFrac:
		req = Request{Op: OpDelete, Key: key}
	default:
		req = Request{Op: OpPut, Key: key, ValueSize: g.cfg.ValueSize.Sample(g.rng)}
	}
	return req
}

// Fill produces the next len(dst) requests into dst and returns dst; handy
// for batched simulation loops.
func (g *Generator) Fill(dst []Request) []Request {
	for i := range dst {
		dst[i] = g.Next()
	}
	return dst
}

// Clone returns an independent generator with identical configuration and a
// freshly reset stream — the deterministic-replay primitive used by the
// Figure 2a methodology (the second stage regenerates the first stage's
// exact sequence instead of receiving it over a queue).
func (g *Generator) Clone() *Generator {
	return NewGenerator(g.cfg)
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }
