package workload

import (
	"math"
	"sync"
)

// Zipfian draws ranks in [0, n) with P(rank k) ∝ 1/(k+1)^theta, using the
// Gray et al. algorithm as popularised by YCSB. theta=0 degenerates to
// uniform. Rank 0 is the most popular item.
type Zipfian struct {
	n            uint64
	theta        float64
	alpha        float64
	zetan        float64
	zeta2        float64
	eta          float64
	halfPowTheta float64
}

var zetaCache sync.Map // struct{n,theta} → float64

type zetaKey struct {
	n     uint64
	theta float64
}

func zeta(n uint64, theta float64) float64 {
	if v, ok := zetaCache.Load(zetaKey{n, theta}); ok {
		return v.(float64)
	}
	sum := 0.0
	for i := uint64(0); i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
	}
	zetaCache.Store(zetaKey{n, theta}, sum)
	return sum
}

// NewZipfian builds a Zipfian sampler over [0, n). It panics on n == 0 or
// theta outside [0, 1) — the YCSB algorithm requires theta < 1.
func NewZipfian(n uint64, theta float64) *Zipfian {
	if n == 0 {
		panic("workload: Zipfian over empty domain")
	}
	if theta < 0 || theta >= 1 {
		panic("workload: Zipfian theta must be in [0,1)")
	}
	z := &Zipfian{n: n, theta: theta}
	if theta == 0 {
		return z
	}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	z.halfPowTheta = 1 + math.Pow(0.5, theta)
	return z
}

// Next draws a rank.
func (z *Zipfian) Next(r *RNG) uint64 {
	if z.theta == 0 {
		return r.Uint64n(z.n)
	}
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.halfPowTheta {
		return 1
	}
	rank := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if rank >= z.n {
		rank = z.n - 1
	}
	return rank
}

// N returns the domain size.
func (z *Zipfian) N() uint64 { return z.n }

// Theta returns the skew parameter.
func (z *Zipfian) Theta() float64 { return z.theta }

// ProbOfRank returns the exact probability of rank k (0-based); useful for
// tests and for analytic hot-set expectations.
func (z *Zipfian) ProbOfRank(k uint64) float64 {
	if z.theta == 0 {
		return 1 / float64(z.n)
	}
	return 1 / (math.Pow(float64(k+1), z.theta) * z.zetan)
}
