package workload

import (
	"strings"
	"testing"
)

func TestReadTraceBasic(t *testing.T) {
	in := `# comment
get,42
put,43,128
delete,44
scan,45,0,25

set,46,64
`
	reqs, err := ReadTrace(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []Request{
		{Op: OpGet, Key: 42},
		{Op: OpPut, Key: 43, ValueSize: 128},
		{Op: OpDelete, Key: 44},
		{Op: OpScan, Key: 45, ScanCount: 25},
		{Op: OpPut, Key: 46, ValueSize: 64},
	}
	if len(reqs) != len(want) {
		t.Fatalf("parsed %d, want %d", len(reqs), len(want))
	}
	for i := range want {
		if reqs[i] != want[i] {
			t.Fatalf("req %d = %+v, want %+v", i, reqs[i], want[i])
		}
	}
}

func TestReadTraceStringKeysHashed(t *testing.T) {
	reqs, err := ReadTrace(strings.NewReader("get,user:1001\nget,user:1001\nget,user:1002\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if reqs[0].Key != reqs[1].Key {
		t.Fatal("same string key must hash identically")
	}
	if reqs[0].Key == reqs[2].Key {
		t.Fatal("different string keys should hash differently")
	}
}

func TestReadTraceLimitAndDefaults(t *testing.T) {
	in := strings.Repeat("get,1\n", 100)
	reqs, err := ReadTrace(strings.NewReader(in), 10)
	if err != nil || len(reqs) != 10 {
		t.Fatalf("limit broken: %d, %v", len(reqs), err)
	}
	// Scan without a count defaults to 50.
	reqs, _ = ReadTrace(strings.NewReader("scan,5\n"), 0)
	if reqs[0].ScanCount != 50 {
		t.Fatalf("default scan count = %d", reqs[0].ScanCount)
	}
}

func TestReadTraceErrors(t *testing.T) {
	for _, in := range []string{
		"frobnicate,1\n",
		"get\n",
		"put,1,notanumber\n",
		"scan,1,0,-4\n",
	} {
		if _, err := ReadTrace(strings.NewReader(in), 0); err == nil {
			t.Fatalf("input %q must fail", in)
		}
	}
}

func TestTraceGeneratorLoops(t *testing.T) {
	g := NewTraceGenerator([]Request{{Op: OpGet, Key: 1}, {Op: OpPut, Key: 2}})
	if g.Len() != 2 {
		t.Fatal("Len")
	}
	seq := []uint64{1, 2, 1, 2, 1}
	for i, want := range seq {
		if got := g.Next().Key; got != want {
			t.Fatalf("step %d: key %d, want %d", i, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty trace must panic")
		}
	}()
	NewTraceGenerator(nil)
}
