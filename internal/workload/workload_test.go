package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds should diverge immediately (overwhelmingly likely)")
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed must not produce a degenerate stream")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if n := r.Intn(10); n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %v", n)
		}
		if n := r.Uint64n(3); n >= 3 {
			t.Fatalf("Uint64n out of range: %v", n)
		}
	}
}

func TestRNGPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewRNG(1).Intn(0) },
		func() { NewRNG(1).Uint64n(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestZipfianUniformCase(t *testing.T) {
	z := NewZipfian(100, 0)
	r := NewRNG(1)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next(r)]++
	}
	for k, c := range counts {
		if c == 0 {
			t.Fatalf("rank %d never drawn under uniform", k)
		}
	}
	if p := z.ProbOfRank(0); p != 0.01 {
		t.Fatalf("uniform ProbOfRank = %v", p)
	}
}

func TestZipfianSkewAndFrequencies(t *testing.T) {
	z := NewZipfian(1000, 0.99)
	r := NewRNG(3)
	counts := make([]int, 1000)
	const n = 500000
	for i := 0; i < n; i++ {
		k := z.Next(r)
		if k >= 1000 {
			t.Fatalf("rank out of domain: %d", k)
		}
		counts[k]++
	}
	// Empirical frequency of rank 0 should be near its analytic probability.
	p0 := z.ProbOfRank(0)
	f0 := float64(counts[0]) / n
	if math.Abs(f0-p0) > 0.02 {
		t.Fatalf("rank-0 frequency %v vs analytic %v", f0, p0)
	}
	if counts[0] < counts[500] {
		t.Fatal("rank 0 must be more popular than rank 500")
	}
	// Probabilities must be decreasing in rank.
	if z.ProbOfRank(0) <= z.ProbOfRank(10) {
		t.Fatal("ProbOfRank must decrease with rank")
	}
}

func TestZipfianPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipfian(0, 0.5) },
		func() { NewZipfian(10, -0.1) },
		func() { NewZipfian(10, 1.0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestZipfianProbabilitiesSumToOne(t *testing.T) {
	z := NewZipfian(500, 0.8)
	sum := 0.0
	for k := uint64(0); k < 500; k++ {
		sum += z.ProbOfRank(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestGeneratorDeterministicReplay(t *testing.T) {
	cfg := Config{Keys: 10000, Theta: 0.99, Mix: MixYCSBA, ValueSize: FixedSize(64), Seed: 9}
	g1 := NewGenerator(cfg)
	g2 := g1.Clone()
	for i := 0; i < 5000; i++ {
		if g1.Next() != g2.Next() {
			t.Fatalf("replay diverged at request %d", i)
		}
	}
}

func TestGeneratorMixProportions(t *testing.T) {
	cases := []struct {
		mix  Mix
		want [4]float64 // get, put, delete, scan
	}{
		{MixYCSBA, [4]float64{0.5, 0.5, 0, 0}},
		{MixYCSBB, [4]float64{0.95, 0.05, 0, 0}},
		{MixYCSBC, [4]float64{1, 0, 0, 0}},
		{MixYCSBE, [4]float64{0, 0.05, 0, 0.95}},
		{MixPutOnly, [4]float64{0, 1, 0, 0}},
		{Mix{GetFrac: 0.5, DeleteFrac: 0.1}, [4]float64{0.5, 0.4, 0.1, 0}},
	}
	for _, tc := range cases {
		g := NewGenerator(Config{Keys: 1000, Mix: tc.mix, Seed: 5})
		var got [4]float64
		const n = 200000
		for i := 0; i < n; i++ {
			switch g.Next().Op {
			case OpGet:
				got[0]++
			case OpPut:
				got[1]++
			case OpDelete:
				got[2]++
			case OpScan:
				got[3]++
			}
		}
		for j := range got {
			got[j] /= n
			if math.Abs(got[j]-tc.want[j]) > 0.01 {
				t.Fatalf("mix %+v: op %d frequency %v, want %v", tc.mix, j, got[j], tc.want[j])
			}
		}
	}
}

func TestGeneratorScanLengths(t *testing.T) {
	g := NewGenerator(Config{Keys: 1000, Mix: MixScanOnly, ScanLen: 50, Seed: 2})
	sum, n := 0, 20000
	for i := 0; i < n; i++ {
		req := g.Next()
		if req.Op != OpScan {
			t.Fatal("scan-only mix must emit scans")
		}
		if req.ScanCount < 1 || req.ScanCount >= 100 {
			t.Fatalf("scan length %d out of [1,100)", req.ScanCount)
		}
		sum += req.ScanCount
	}
	mean := float64(sum) / float64(n)
	if math.Abs(mean-50) > 2 {
		t.Fatalf("mean scan length %v, want ≈50", mean)
	}
}

func TestGeneratorKeysInKeyspace(t *testing.T) {
	f := func(seedRaw uint32) bool {
		g := NewGenerator(Config{Keys: 777, Theta: 0.99, Mix: MixYCSBA, Seed: uint64(seedRaw)})
		for i := 0; i < 1000; i++ {
			if g.Next().Key >= 777 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorHotKeysStable(t *testing.T) {
	g := NewGenerator(Config{Keys: 100000, Theta: 0.99, Seed: 1})
	h1 := g.HotKeys(10)
	h2 := g.Clone().HotKeys(10)
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatal("hot keys must be configuration-determined")
		}
		if h1[i] >= 100000 {
			t.Fatal("hot key outside keyspace")
		}
	}
	// The hottest key must actually dominate the generated stream.
	counts := map[uint64]int{}
	for i := 0; i < 200000; i++ {
		counts[g.Next().Key]++
	}
	if counts[h1[0]] < counts[h1[9]] {
		t.Fatal("rank-0 key should be drawn at least as often as rank-9")
	}
}

func TestGeneratorDefaultsAndPanics(t *testing.T) {
	g := NewGenerator(Config{Keys: 10})
	if g.Config().ValueSize.Mean() != 64 {
		t.Fatal("default value size should be 64 B")
	}
	if g.Config().ScanLen != 50 {
		t.Fatal("default scan length should be 50")
	}
	for _, cfg := range []Config{
		{Keys: 0},
		{Keys: 10, Mix: Mix{GetFrac: 0.9, ScanFrac: 0.2}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %+v", cfg)
				}
			}()
			NewGenerator(cfg)
		}()
	}
}

func TestGeneratorFill(t *testing.T) {
	g := NewGenerator(Config{Keys: 100, Mix: MixYCSBC, Seed: 4})
	buf := make([]Request, 32)
	out := g.Fill(buf)
	if len(out) != 32 {
		t.Fatal("Fill must fill the whole slice")
	}
	g2 := g.Clone()
	for i := range out {
		if out[i] != g2.Next() {
			t.Fatal("Fill must match Next stream")
		}
	}
}

func TestETCSizeDistribution(t *testing.T) {
	e := NewETCSize()
	r := NewRNG(11)
	var small, mid, big int
	const n = 200000
	for i := 0; i < n; i++ {
		s := e.Sample(r)
		switch {
		case s >= 1 && s <= 13:
			small++
		case s >= 14 && s <= 300:
			mid++
		case s >= 301 && s <= 1024:
			big++
		default:
			t.Fatalf("ETC size %d out of all ranges", s)
		}
	}
	if f := float64(small) / n; math.Abs(f-0.40) > 0.01 {
		t.Fatalf("small fraction %v, want 0.40", f)
	}
	if f := float64(mid) / n; math.Abs(f-0.55) > 0.01 {
		t.Fatalf("mid fraction %v, want 0.55", f)
	}
	if f := float64(big) / n; math.Abs(f-0.05) > 0.005 {
		t.Fatalf("big fraction %v, want 0.05", f)
	}
	if e.Mean() <= 0 {
		t.Fatal("mean must be positive")
	}
}

func TestTwitterClusterConfigs(t *testing.T) {
	for _, c := range TwitterClusters() {
		cfg := c.Config(1_000_000, 3)
		g := NewGenerator(cfg)
		var puts, total int
		for i := 0; i < 100000; i++ {
			if g.Next().Op == OpPut {
				puts++
			}
			total++
		}
		got := float64(puts) / float64(total)
		if math.Abs(got-c.PutRatio) > 0.01 {
			t.Fatalf("%s: put ratio %v, want %v", c.Name, got, c.PutRatio)
		}
		if cfg.ValueSize.Mean() != float64(c.AvgValue) {
			t.Fatalf("%s: value size mean mismatch", c.Name)
		}
		if cfg.Theta != c.ZipfAlpha {
			t.Fatalf("%s: skew mismatch", c.Name)
		}
	}
}

func TestETCConfigGetRatios(t *testing.T) {
	for _, ratio := range []float64{0.1, 0.5, 0.9} {
		g := NewGenerator(ETCConfig(100000, ratio, 8))
		gets := 0
		const n = 100000
		for i := 0; i < n; i++ {
			if g.Next().Op == OpGet {
				gets++
			}
		}
		if got := float64(gets) / n; math.Abs(got-ratio) > 0.01 {
			t.Fatalf("get ratio %v, want %v", got, ratio)
		}
	}
}

func TestOpTypeString(t *testing.T) {
	want := map[OpType]string{OpGet: "get", OpPut: "put", OpDelete: "delete", OpScan: "scan"}
	for op, s := range want {
		if op.String() != s {
			t.Fatalf("%v.String() = %q", op, op.String())
		}
	}
}
