// Package workload generates the request streams used throughout the μTPS
// evaluation: YCSB-style synthetic mixes with uniform or Zipfian key
// popularity, the Meta ETC pool value-size mixture, and synthetic versions
// of the three Twitter cache traces characterised in the paper's Table 1.
//
// All generators are deterministic given a seed: the same Config and Seed
// reproduce the exact request sequence, which the paper's Figure 2a
// methodology (deterministic replay at the second stage) relies on.
package workload

// RNG is a small, fast, deterministic generator (splitmix64 seeded
// xorshift128+ would be overkill; splitmix64 itself has excellent
// statistical quality for simulation use).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (0 is remapped so the stream
// is never degenerate).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform float in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0,n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform integer in [0,n). n must be positive.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("workload: Uint64n with zero bound")
	}
	return r.Uint64() % n
}

// fnv64a hashes x with 64-bit FNV-1a over its 8 little-endian bytes; used
// to scramble Zipfian ranks across the keyspace, as YCSB does.
func fnv64a(x uint64) uint64 {
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < 8; i++ {
		h ^= x & 0xFF
		h *= 0x100000001B3
		x >>= 8
	}
	return h
}
