package workload

// This file synthesizes the production workloads the paper evaluates:
// Meta's ETC memcache pool (§5.2.2) and the three Twitter cache clusters of
// Table 1. The originals are not redistributable; the paper's evaluation
// only depends on the published distribution parameters, which we
// regenerate exactly.

// ETCSize samples value sizes following the mixture the paper states for
// the ETC pool: 1–13 B (Zipfian within range, 40%), 14–300 B (Zipfian
// within range, 55%), >300 B (uniform, 5%). The open upper range is capped
// at 1 KB, matching the paper's largest evaluated item size.
type ETCSize struct {
	small  *Zipfian // offsets within [1,13]
	mid    *Zipfian // offsets within [14,300]
	maxBig int
}

// NewETCSize builds the ETC value-size sampler.
func NewETCSize() *ETCSize {
	return &ETCSize{
		small:  NewZipfian(13, 0.99),
		mid:    NewZipfian(287, 0.99),
		maxBig: 1024,
	}
}

// Sample implements SizeDist.
func (e *ETCSize) Sample(r *RNG) int {
	u := r.Float64()
	switch {
	case u < 0.40:
		return 1 + int(e.small.Next(r))
	case u < 0.95:
		return 14 + int(e.mid.Next(r))
	default:
		return 301 + r.Intn(e.maxBig-300)
	}
}

// Mean implements SizeDist (approximated numerically once).
func (e *ETCSize) Mean() float64 {
	// Deterministic estimate over a fixed sample; cheap and stable.
	r := NewRNG(1)
	sum := 0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += e.Sample(r)
	}
	return float64(sum) / n
}

// ETCConfig returns the ETC workload with the given get ratio (the paper
// uses 10%, 50% and 90%) over a 10M-key store with YCSB-default skew.
func ETCConfig(keys uint64, getRatio float64, seed uint64) Config {
	return Config{
		Keys:      keys,
		Theta:     0.99,
		Mix:       Mix{GetFrac: getRatio},
		ValueSize: NewETCSize(),
		Seed:      seed,
	}
}

// TwitterCluster describes one of the paper's selected Twitter traces
// (Table 1).
type TwitterCluster struct {
	Name      string
	PutRatio  float64
	AvgValue  int     // bytes
	ZipfAlpha float64 // key-popularity skew; 0 means uniform
}

// The three representative traces from Table 1.
var (
	TwitterCluster12 = TwitterCluster{Name: "Cluster-12", PutRatio: 0.80, AvgValue: 1030, ZipfAlpha: 0.30}
	TwitterCluster19 = TwitterCluster{Name: "Cluster-19", PutRatio: 0.25, AvgValue: 101, ZipfAlpha: 0.74}
	TwitterCluster31 = TwitterCluster{Name: "Cluster-31", PutRatio: 0.94, AvgValue: 15, ZipfAlpha: 0}
)

// TwitterClusters lists all synthesized traces in paper order.
func TwitterClusters() []TwitterCluster {
	return []TwitterCluster{TwitterCluster12, TwitterCluster19, TwitterCluster31}
}

// Config builds the workload for a Twitter cluster over the given keyspace.
func (t TwitterCluster) Config(keys uint64, seed uint64) Config {
	return Config{
		Keys:      keys,
		Theta:     t.ZipfAlpha,
		Mix:       Mix{GetFrac: 1 - t.PutRatio},
		ValueSize: FixedSize(t.AvgValue),
		Seed:      seed,
	}
}
