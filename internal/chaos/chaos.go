// Package chaos is the fault-injection harness for the lifecycle edges of
// the store: shutdown under load, overload shedding, stalled peers, and
// killed connections. The scenarios live in this package's tests; the
// exported helpers — a goroutine-leak assertion and a deadline-bounded
// runner — are the reusable pieces, so any package can turn "this must not
// hang or leak" into a failing test instead of a stalled CI job.
package chaos

import (
	"runtime"
	"testing"
	"time"
)

// leakSettle is how long VerifyNoLeaks waits for exiting goroutines to
// unwind before declaring a leak.
const leakSettle = 5 * time.Second

// VerifyNoLeaks asserts the goroutine count has returned to at most
// before (a count taken ahead of the scenario), retrying while exiting
// goroutines unwind. On failure it dumps every live stack — the parked
// frame of the leaked goroutine is the thing that names the bug.
func VerifyNoLeaks(t testing.TB, before int) {
	t.Helper()
	deadline := time.Now().Add(leakSettle)
	n := runtime.NumGoroutine()
	for n > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n <= before {
		return
	}
	buf := make([]byte, 1<<20)
	m := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d live, want <= %d\n%s", n, before, buf[:m])
}

// WithinDeadline runs fn and fails the test if it has not returned within
// d, dumping all goroutine stacks so a hang pinpoints the stuck frame
// instead of tripping the package timeout with no context.
func WithinDeadline(t testing.TB, d time.Duration, what string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("%s still running after %v\n%s", what, d, buf[:n])
	}
}
