package chaos

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"mutps/internal/netserver"
)

// TestKillMidSpill is the crash-recovery oracle for the cold tier: a real
// mutps-server child runs under a tiny memory budget (so eviction spills
// continuously), a churn workload drives puts/deletes/gets, and the child
// is SIGKILLed at a random moment — mid-spill, mid-checkpoint, and (on the
// longer rounds) mid-compaction. After each kill the server restarts on the
// same cold directory and every tracked key is checked against its
// per-key allowed-outcome set:
//
//   - the last acknowledged value (RAM or cold survivor),
//   - the value of the single in-flight op at kill time (never acked:
//     applied-or-not is legitimately ambiguous),
//   - a miss (this is a cache: unspilled RAM state dies with the process).
//
// Anything else is a bug this PR's recovery work must prevent: an older
// generation served is a stale read, a value for a key whose last acked op
// was a delete is a resurrection.
//
// MUTPS_CHAOS_ROUNDS overrides the round count (CI bounds it; the
// acceptance bar is 20).
func TestKillMidSpill(t *testing.T) {
	rounds := 20
	if s := os.Getenv("MUTPS_CHAOS_ROUNDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("MUTPS_CHAOS_ROUNDS=%q: %v", s, err)
		}
		rounds = n
	} else if testing.Short() {
		rounds = 3
	}

	bin := buildServer(t)
	coldDir := t.TempDir()
	addr := freeAddr(t)

	const churners = 2
	const keysPer = 150
	models := [churners]map[uint64]*keyState{}
	for g := range models {
		models[g] = map[uint64]*keyState{}
	}

	for round := 0; round < rounds; round++ {
		cmd, logs := startServer(t, bin, addr, coldDir)
		c := dialRetry(t, addr, 10*time.Second)

		// Oracle pass: recovery must land inside every key's allowed set.
		for g := range models {
			for key, st := range models[g] {
				v, found, err := c.Get(key)
				if err != nil {
					t.Fatalf("round %d: oracle get(%d): %v\nserver log:\n%s", round, key, err, logs.String())
				}
				if !found {
					st.val, st.maybe = "", "" // cache loss: collapse to absent
					continue
				}
				got := string(v)
				if got != st.val && (st.maybe == "" || got != st.maybe) {
					kind := "stale read"
					if st.val == "" && st.maybe == "" {
						kind = "resurrected delete"
					}
					t.Fatalf("round %d: %s: key %d = %q, allowed {%q, %q, miss}\nserver log:\n%s",
						round, kind, key, got, st.val, st.maybe, logs.String())
				}
				st.val, st.maybe = got, "" // collapse in-flight ambiguity
			}
		}
		c.Close()

		// Churn until the killer fires. Every 5th round outlives the cold
		// tier's 2s compaction tick so kills also land mid-compact.
		killDelay := time.Duration(80+round*37%400) * time.Millisecond
		if round%5 == 4 {
			killDelay = 2200 * time.Millisecond
		}
		killed := make(chan struct{})
		go func() {
			time.Sleep(killDelay)
			cmd.Process.Kill() // SIGKILL: no shutdown path runs
			close(killed)
		}()

		done := make(chan struct{}, churners)
		for g := 0; g < churners; g++ {
			go func(g int) {
				defer func() { done <- struct{}{} }()
				churn(t, addr, uint64(1+g*1000), keysPer, models[g],
					rand.New(rand.NewSource(int64(round)*7919+int64(g))))
			}(g)
		}
		for g := 0; g < churners; g++ {
			<-done
		}
		<-killed
		cmd.Wait() // child is gone; the port is free for the next round
	}
}

// keyState is one key's model: the last acknowledged value ("" = absent)
// plus at most one unacknowledged in-flight value whose fate the kill made
// ambiguous. A miss is always allowed — the store is a cache.
type keyState struct {
	val   string
	maybe string
}

// churn drives sequential ops over this goroutine's disjoint key range,
// updating the model on every ack, until the connection dies under it.
func churn(t *testing.T, addr string, base uint64, keys int, model map[uint64]*keyState, r *rand.Rand) {
	c, err := netserver.DialTimeout(addr, 2*time.Second, 500*time.Millisecond)
	if err != nil {
		return // killed before we connected; nothing acked, nothing to model
	}
	defer c.Close()
	gen := 0
	for {
		key := base + uint64(r.Intn(keys))
		st := model[key]
		if st == nil {
			st = &keyState{}
			model[key] = st
		}
		switch p := r.Float32(); {
		case p < 0.60:
			gen++
			val := fmt.Sprintf("k%d.g%d.%s", key, gen,
				bytes.Repeat([]byte{'x'}, 8+r.Intn(80)))
			if err := c.Put(key, []byte(val)); err != nil {
				st.maybe = val // in flight at the kill: applied-or-not unknown
				return
			}
			st.val, st.maybe = val, ""
		case p < 0.75:
			if _, err := c.Delete(key); err != nil {
				// In-flight delete: old value or absent are both fine, and
				// absent is always allowed — the model needs no marker.
				return
			}
			st.val, st.maybe = "", ""
		default:
			v, found, err := c.Get(key)
			if err != nil {
				return
			}
			// Live reads are strict: the server is up, so the last acked
			// value must be served (RAM or cold), nothing else.
			if found != (st.val != "") || (found && string(v) != st.val) {
				t.Errorf("live read: key %d = (%q, %v), want (%q, %v)",
					key, v, found, st.val, st.val != "")
				return
			}
		}
	}
}

func buildServer(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mutps-server")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/mutps-server")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build server: %v\n%s", err, out)
	}
	return bin
}

func startServer(t *testing.T, bin, addr, coldDir string) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	var logs bytes.Buffer
	cmd := exec.Command(bin,
		"-addr", addr,
		"-hot", "0",
		"-memory-budget", "32K",
		"-cold-dir", coldDir,
		"-cold-segment-bytes", "16K",
		"-cold-ckpt-interval", "100ms",
	)
	cmd.Stdout = &logs
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatalf("start server: %v", err)
	}
	return cmd, &logs
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func dialRetry(t *testing.T, addr string, d time.Duration) *netserver.Client {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		c, err := netserver.DialTimeout(addr, 250*time.Millisecond, 2*time.Second)
		if err == nil {
			// The listener may be up before the store: probe one op.
			if _, _, err := c.Get(0); err == nil {
				return c
			}
			c.Close()
		}
		if time.Now().After(deadline) {
			t.Fatalf("server at %s not ready after %v: %v", addr, d, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
