package chaos

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"
	"runtime"
	"testing"
	"time"

	"mutps/internal/kvcore"
	"mutps/internal/netserver"
	"mutps/internal/obs"
)

func startPipelinedServer(t *testing.T, window int) (*netserver.Server, *kvcore.Store) {
	t.Helper()
	s, err := kvcore.Open(kvcore.Config{Engine: kvcore.Hash, Workers: 4, CRWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return netserver.ServeConfig(s, ln, netserver.Config{MaxInflight: window}), s
}

// TestServerCloseMidWindow kills the server while a pipelined client has a
// full in-flight window streaming through it. Every future handed out must
// still complete — with a result or a transport error, never a hang — and
// the server's decode/completion goroutines, the store workers, and the
// client's read loop must all unwind.
func TestServerCloseMidWindow(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, s := startPipelinedServer(t, 32)
	for k := uint64(0); k < 256; k++ {
		s.Preload(k, []byte("payload-payload-payload"))
	}
	p, err := netserver.DialPipeline(srv.Addr().String(), 64)
	if err != nil {
		t.Fatal(err)
	}

	futs := make(chan *netserver.Future, 4096)
	senderDone := make(chan struct{})
	go func() {
		defer close(senderDone)
		defer close(futs)
		val := []byte("mid-window write")
		for i := 0; i < 4096; i++ {
			op, payload := netserver.OpGet, []byte(nil)
			if i%3 == 0 {
				op, payload = netserver.OpPut, val
			}
			f, err := p.Send(op, uint64(i%256), payload)
			if err != nil {
				return // server died under us: expected
			}
			futs <- f
			if i%64 == 63 {
				if p.Flush() != nil {
					return
				}
			}
		}
		p.Flush()
	}()

	// Let the window fill and responses start streaming, then yank the
	// server out from under the client mid-burst.
	time.Sleep(10 * time.Millisecond)
	WithinDeadline(t, 10*time.Second, "netserver.Close mid-window", func() { srv.Close() })

	WithinDeadline(t, 20*time.Second, "retiring every issued future", func() {
		<-senderDone
		for f := range futs {
			f.Wait() // success or error both fine; stranding is the bug
			f.Release()
		}
	})
	p.Close()
	WithinDeadline(t, 10*time.Second, "store.Close", s.Close)
	VerifyNoLeaks(t, before)
}

// TestSlowReaderWindowBoundsServerMemory proves the per-connection window
// is the server's memory bound: a client that writes a long burst of
// large-value gets but never reads responses must stall the server's
// decode stage at the window, not buffer the whole burst. Once the client
// starts draining, every response must still arrive in FIFO order.
func TestSlowReaderWindowBoundsServerMemory(t *testing.T) {
	const (
		window = 4
		nKeys  = 16
		nReqs  = 256
		valLen = 256 << 10
	)
	before := runtime.NumGoroutine()
	srv, s := startPipelinedServer(t, window)
	val := make([]byte, valLen)
	for i := range val {
		val[i] = byte(i)
	}
	for k := uint64(0); k < nKeys; k++ {
		binary.LittleEndian.PutUint64(val, k)
		s.Preload(k, val)
	}

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// Write every request frame without reading a single response. The
	// frames are 13 bytes each, so they all reach the server; the 256KB
	// responses jam the server's write side, retire stalls, the window
	// fills, and decode must stop claiming slots.
	var hdr [13]byte
	bw := bufio.NewWriter(conn)
	for i := 0; i < nReqs; i++ {
		hdr[0] = netserver.OpGet
		binary.LittleEndian.PutUint64(hdr[1:9], uint64(i%nKeys))
		binary.LittleEndian.PutUint32(hdr[9:13], 0)
		if _, err := bw.Write(hdr[:]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	// Give the server ample time to decode as far as it will ever get.
	time.Sleep(300 * time.Millisecond)
	if !obs.Disabled {
		m := s.Metrics().SnapshotMap()
		if got := m["mutps_net_inflight"]; got > window {
			t.Fatalf("in-flight gauge %v exceeds the window %d", got, window)
		}
		// Decode must have stalled well short of the burst: only the window
		// plus what the kernel socket buffers swallowed can have been
		// submitted.
		if sub := m["mutps_net_ops_submitted_total"]; sub >= nReqs {
			t.Fatalf("server decoded all %d requests (%v submitted) against a non-reading client; the window is not bounding memory", nReqs, sub)
		} else {
			t.Logf("decode stalled after %v of %d requests (window %d)", sub, nReqs, window)
		}
	}

	// Now drain: every response must arrive, in request order, intact.
	r := bufio.NewReaderSize(conn, 1<<20)
	body := make([]byte, valLen)
	var rh [5]byte
	WithinDeadline(t, 60*time.Second, "draining the jammed burst", func() {
		for i := 0; i < nReqs; i++ {
			if _, err := io.ReadFull(r, rh[:]); err != nil {
				t.Errorf("response %d: %v", i, err)
				return
			}
			if rh[0] != netserver.StatusFound {
				t.Errorf("response %d: status %d", i, rh[0])
				return
			}
			plen := binary.LittleEndian.Uint32(rh[1:5])
			if plen != valLen {
				t.Errorf("response %d: %d bytes, want %d", i, plen, valLen)
				return
			}
			if _, err := io.ReadFull(r, body); err != nil {
				t.Errorf("response %d: body: %v", i, err)
				return
			}
			if got, want := binary.LittleEndian.Uint64(body), uint64(i%nKeys); got != want {
				t.Errorf("response %d: FIFO violation: value stamped %d, want %d", i, got, want)
				return
			}
		}
	})
	conn.Close()
	WithinDeadline(t, 10*time.Second, "netserver.Close", func() { srv.Close() })
	WithinDeadline(t, 10*time.Second, "store.Close", s.Close)
	VerifyNoLeaks(t, before)
}
