package chaos

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mutps/internal/kvcore"
	"mutps/internal/rpc"
	"mutps/internal/workload"
)

// acceptable reports whether err is a legal outcome for an operation
// racing with shutdown: success, a graceful ErrClosed, or a retryable
// ErrBacklogged. Anything else (including a hang, caught elsewhere by
// deadline) is a bug.
func acceptable(err error) bool {
	return err == nil || errors.Is(err, rpc.ErrClosed) || errors.Is(err, rpc.ErrBacklogged)
}

// TestStoreCloseMidFlight is the regression stress for the stranded-call
// hang family: many clients hammer Get/Put/Scan/Delete while Close fires
// mid-flight. Every caller must return within the deadline — either with
// its result or with ErrClosed — and no goroutine may outlive the store.
// On the pre-drain seed this test hangs: Close raced Send, workers exited
// with published slots unconsumed, and the pooled Call was never
// completed.
func TestStoreCloseMidFlight(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		t.Run(fmt.Sprintf("round%d", round), runCloseMidFlight)
	}
	VerifyNoLeaks(t, before)
}

func runCloseMidFlight(t *testing.T) {
	// Tiny rings and slabs so the stress actually exercises the full /
	// recycle / drain corners, not just the happy path.
	s, err := kvcore.Open(kvcore.Config{
		Engine:       kvcore.Tree,
		Workers:      4,
		CRWorkers:    2,
		BatchSize:    4,
		RXCapacity:   64,
		CRMRCapacity: 8,
		SlabSize:     64,
		HotItems:     64,
		IdleSleep:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 128
	for i := uint64(0); i < keys; i++ {
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], i)
		s.Preload(i, v[:])
	}
	for i := 0; i < 256; i++ {
		s.Get(uint64(i % 8))
	}
	s.RefreshHotSet() // mixed traffic: CR hits and MR forwards both in play

	const clients = 8
	var (
		wg  sync.WaitGroup
		ops atomic.Int64
	)
	errCh := make(chan error, clients) // first unexpected error per client
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			var val [8]byte
			buf := make([]byte, 0, 8)
			for i := 0; ; i++ {
				k := uint64((c*31 + i) % keys)
				var err error
				switch i % 5 {
				case 0, 1:
					var v []byte
					v, _, err = s.GetInto(k, buf)
					buf = v[:0]
				case 2:
					binary.LittleEndian.PutUint64(val[:], k)
					err = s.Put(k, val[:])
				case 3:
					_, err = s.Scan(k, 4)
				default:
					// Deletes target a disjoint key range so gets above keep
					// verifying real values.
					_, err = s.Delete(keys + k)
				}
				ops.Add(1)
				if !acceptable(err) {
					errCh <- err
					return
				}
				if errors.Is(err, rpc.ErrClosed) {
					return
				}
			}
		}(c)
	}

	// Let the clients build real in-flight depth, then yank the store out
	// from under them.
	for ops.Load() < 2000 {
		time.Sleep(100 * time.Microsecond)
	}
	WithinDeadline(t, 30*time.Second, "Store.Close under load", s.Close)
	WithinDeadline(t, 30*time.Second, "clients returning after Close", wg.Wait)
	select {
	case err := <-errCh:
		t.Fatalf("client saw unexpected error: %v", err)
	default:
	}

	// After the drain the facade must stay in the terminal state, not hang.
	if _, _, err := s.Get(1); !errors.Is(err, rpc.ErrClosed) {
		t.Fatalf("Get after Close = %v, want ErrClosed", err)
	}
	if err := s.Put(1, []byte("x")); !errors.Is(err, rpc.ErrClosed) {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

// TestRPCSendCloseRace hammers the Send/Close TOCTOU at the rpc layer:
// senders race Close so some calls are published in the window between
// Send's closed-check and the ring publish. The drain protocol must
// complete every such call — senders assert completion with a bounded
// wait, never an unbounded one.
func TestRPCSendCloseRace(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 30; round++ {
		s := rpc.NewServer(32, 1, 1)
		workerDone := make(chan struct{})
		go func() {
			defer close(workerDone)
			for {
				m, ok, retired := s.Poll(0)
				if retired {
					return
				}
				if !ok {
					runtime.Gosched()
					continue
				}
				m.Call().Complete()
			}
		}()

		const senders = 4
		var wg sync.WaitGroup
		errCh := make(chan error, senders)
		wg.Add(senders)
		for c := 0; c < senders; c++ {
			go func() {
				defer wg.Done()
				for {
					call, err := s.Send(rpc.Message{Op: workload.OpGet, Key: 1})
					if errors.Is(err, rpc.ErrClosed) {
						return
					}
					if errors.Is(err, rpc.ErrBacklogged) {
						continue
					}
					if err != nil {
						errCh <- err
						return
					}
					if !call.WaitTimeout(10 * time.Second) {
						errCh <- errors.New("call stranded: not completed within 10s of Send/Close race")
						return
					}
					call.Release()
				}
			}()
		}

		runtime.Gosched() // let the senders actually start racing
		s.Close()
		WithinDeadline(t, 30*time.Second, "senders returning after rpc.Close", wg.Wait)
		WithinDeadline(t, 30*time.Second, "worker retiring after rpc.Close", func() { <-workerDone })
		select {
		case err := <-errCh:
			t.Fatalf("round %d: %v", round, err)
		default:
		}
		// The worker consumed everything before retiring, so the sweep for
		// stranded slots must find nothing.
		if n := s.DrainStranded(); n != 0 {
			t.Fatalf("round %d: graceful drain left %d stranded slots", round, n)
		}
	}
	VerifyNoLeaks(t, before)
}

// TestStalledWorkerDrainStranded is the stalled-worker scenario: requests
// are published but no worker ever polls them. Close must still terminate,
// and DrainStranded must complete every published call with ErrClosed so
// their waiters unblock.
func TestStalledWorkerDrainStranded(t *testing.T) {
	s := rpc.NewServer(8, 1, 1)
	const published = 5
	calls := make([]*rpc.Call, 0, published)
	for i := 0; i < published; i++ {
		call, err := s.Send(rpc.Message{Op: workload.OpGet, Key: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, call)
	}

	WithinDeadline(t, 10*time.Second, "rpc.Close with a stalled worker", s.Close)
	if _, err := s.Send(rpc.Message{Op: workload.OpGet, Key: 99}); !errors.Is(err, rpc.ErrClosed) {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}

	if n := s.DrainStranded(); n != published {
		t.Fatalf("DrainStranded = %d, want %d", n, published)
	}
	for i, call := range calls {
		if !call.WaitTimeout(time.Second) {
			t.Fatalf("call %d still pending after DrainStranded", i)
		}
		if !errors.Is(call.Err, rpc.ErrClosed) {
			t.Fatalf("call %d: Err = %v, want ErrClosed", i, call.Err)
		}
		call.Release()
	}
	// The sweep is a terminal cleanup; running it again must find nothing.
	if n := s.DrainStranded(); n != 0 {
		t.Fatalf("second DrainStranded = %d, want 0", n)
	}
}
