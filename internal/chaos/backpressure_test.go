package chaos

import (
	"errors"
	"testing"
	"time"

	"mutps/internal/rpc"
	"mutps/internal/workload"
)

// TestSlowConsumerBackpressureBounded is the slow-consumer scenario: the
// ring fills because nothing polls it, and Send must shed with
// ErrBacklogged within its bounded spin budget instead of spinning
// forever (the pre-PR behaviour). The published-but-never-polled calls
// then drain with ErrClosed at Close, so even a wedged server never
// strands a waiter.
func TestSlowConsumerBackpressureBounded(t *testing.T) {
	s := rpc.NewServer(4, 1, 1) // no goroutine ever polls: a fully stalled consumer
	pending := make([]*rpc.Call, 0, s.Cap())
	sawBacklog := false
	for i := 0; i < s.Cap()+2; i++ {
		t0 := time.Now()
		call, err := s.Send(rpc.Message{Op: workload.OpGet, Key: uint64(i)})
		if err == nil {
			pending = append(pending, call)
			continue
		}
		if !errors.Is(err, rpc.ErrBacklogged) {
			t.Fatalf("send %d: err = %v, want ErrBacklogged", i, err)
		}
		// The budget is ~20ms of spins and naps; 10s is the "bounded at
		// all, not unbounded" line that held the pre-PR hang.
		if d := time.Since(t0); d > 10*time.Second {
			t.Fatalf("send %d: backpressure budget took %v, want bounded", i, d)
		}
		sawBacklog = true
	}
	if !sawBacklog {
		t.Fatalf("ring of %d slots accepted %d sends without backpressure", s.Cap(), s.Cap()+2)
	}
	if len(pending) != s.Cap() {
		t.Fatalf("accepted %d sends, want exactly the ring capacity %d", len(pending), s.Cap())
	}
	if s.Backlogged() == 0 {
		t.Fatal("backlogged counter did not move")
	}

	WithinDeadline(t, 10*time.Second, "rpc.Close with a full ring", s.Close)
	if n := s.DrainStranded(); n != len(pending) {
		t.Fatalf("DrainStranded = %d, want %d", n, len(pending))
	}
	for i, call := range pending {
		if !call.WaitTimeout(time.Second) {
			t.Fatalf("call %d still pending after drain", i)
		}
		if !errors.Is(call.Err, rpc.ErrClosed) {
			t.Fatalf("call %d: Err = %v, want ErrClosed", i, call.Err)
		}
		call.Release()
	}
}
