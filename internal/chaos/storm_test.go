package chaos

import (
	"encoding/binary"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countFDs returns the process's open file-descriptor count from
// /proc/self/fd, or -1 where procfs is unavailable (the storm test then
// checks goroutines only).
func countFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// TestConnectDisconnectStorm slams the server with 5000 connections
// arriving and dying as fast as the dialer can drive them, in three
// habits: connect-and-vanish, one polite request, and a request followed
// by an abrupt RST (SO_LINGER=0) with the response possibly still in
// flight. Afterwards the server must be fully healthy — every
// connection's fd closed (checked against /proc/self/fd, since client and
// server share this process), every per-connection goroutine gone, and a
// fresh connection served normally. Runs against whichever transport
// MUTPS_TRANSPORT selects, so CI covers both.
func TestConnectDisconnectStorm(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, s := startPipelinedServer(t, 0)
	s.Preload(1, []byte("storm-value"))
	addr := srv.Addr().String()
	// Let the accept machinery finish starting before baselining fds.
	time.Sleep(50 * time.Millisecond)
	fdBase := countFDs()

	const total = 5000
	const workers = 128
	getFrame := make([]byte, 13)
	binary.LittleEndian.PutUint64(getFrame[1:9], 1)
	var next atomic.Int64
	var served atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > total {
					return
				}
				var conn net.Conn
				var err error
				for attempt := 0; attempt < 5; attempt++ {
					conn, err = net.Dial("tcp", addr)
					if err == nil {
						break
					}
					time.Sleep(time.Duration(attempt+1) * time.Millisecond)
				}
				if err != nil {
					t.Errorf("dial during storm: %v", err)
					return
				}
				switch i % 3 {
				case 0:
					// Connect and vanish without a byte.
				case 1:
					// One polite request, response read, clean close.
					if _, err := conn.Write(getFrame); err == nil {
						var hdr [5]byte
						if _, err := io.ReadFull(conn, hdr[:]); err == nil {
							body := make([]byte, binary.LittleEndian.Uint32(hdr[1:5]))
							if _, err := io.ReadFull(conn, body); err == nil {
								served.Add(1)
							}
						}
					}
				case 2:
					// Request sent, then an immediate RST: the server may be
					// mid-retirement or mid-flush when the reset lands.
					conn.Write(getFrame)
					conn.(*net.TCPConn).SetLinger(0)
				}
				conn.Close()
			}
		}()
	}
	WithinDeadline(t, 2*time.Minute, "connection storm", wg.Wait)
	if served.Load() == 0 {
		t.Fatal("storm served zero polite requests; the scenario never exercised the server")
	}

	// Every storm fd must drain: the server notices EOF/RST and closes its
	// side asynchronously, so poll. A small slack absorbs unrelated runtime
	// fds (netpoll, timers) that may have appeared since the baseline.
	if fdBase >= 0 {
		const slack = 16
		deadline := time.Now().Add(30 * time.Second)
		n := countFDs()
		for n > fdBase+slack && time.Now().Before(deadline) {
			time.Sleep(20 * time.Millisecond)
			n = countFDs()
		}
		if n > fdBase+slack {
			t.Fatalf("fd leak after storm: %d open, baseline %d (+%d slack)", n, fdBase, slack)
		}
	}

	// The server must still serve a fresh connection normally.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("post-storm dial: %v", err)
	}
	if _, err := conn.Write(getFrame); err != nil {
		t.Fatalf("post-storm request: %v", err)
	}
	var hdr [5]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		t.Fatalf("post-storm response: %v", err)
	}
	body := make([]byte, binary.LittleEndian.Uint32(hdr[1:5]))
	if _, err := io.ReadFull(conn, body); err != nil || string(body) != "storm-value" {
		t.Fatalf("post-storm get = %q, %v", body, err)
	}
	conn.Close()

	srv.Close()
	s.Close()
	VerifyNoLeaks(t, before)
}
