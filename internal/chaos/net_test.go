package chaos

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"mutps/internal/kvcore"
	"mutps/internal/netserver"
)

// fakeServer runs a minimal protocol peer for client-side fault injection:
// it accepts one connection, reads request frames, and hands each to
// reply; a nil reply stalls forever (reads but never answers). The
// goroutine exits when the connection or listener dies.
func fakeServer(t *testing.T, reply func(w *bufio.Writer, op byte, key uint64) error) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		w := bufio.NewWriter(conn)
		var hdr [13]byte
		for {
			if _, err := io.ReadFull(r, hdr[:]); err != nil {
				return
			}
			plen := binary.LittleEndian.Uint32(hdr[9:13])
			if _, err := io.CopyN(io.Discard, r, int64(plen)); err != nil {
				return
			}
			if reply == nil {
				continue // stalled server: swallow the request
			}
			if err := reply(w, hdr[0], binary.LittleEndian.Uint64(hdr[1:9])); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
		}
	}()
	return ln
}

// TestClientOpTimeoutOnStalledServer is the stalled-server scenario: the
// peer accepts and reads but never replies. The per-op deadline must turn
// the hang into a timeout error, and the desynchronized connection must be
// marked broken so later calls fail fast instead of blocking again.
func TestClientOpTimeoutOnStalledServer(t *testing.T) {
	before := runtime.NumGoroutine()
	ln := fakeServer(t, nil)

	c, err := netserver.DialTimeout(ln.Addr().String(), time.Second, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	_, _, err = c.Get(1)
	if err == nil {
		t.Fatal("get against a stalled server returned nil error")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want a net timeout", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("timeout took %v, want ~150ms", d)
	}

	// The stream is out of sync; the client must not wait out another
	// deadline, it must refuse immediately.
	start = time.Now()
	if _, _, err := c.Get(2); err == nil {
		t.Fatal("get on a broken connection returned nil error")
	} else if !strings.Contains(err.Error(), "broken") {
		t.Fatalf("err = %v, want broken-connection failure", err)
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("broken connection failed in %v, want fail-fast", d)
	}

	c.Close()
	ln.Close()
	VerifyNoLeaks(t, before)
}

// TestBackloggedStatusOnWire checks the overload wire contract end to end
// against a peer that sheds everything: both clients must surface
// ErrBacklogged, and because the reply is in-protocol the connection stays
// usable for the retry.
func TestBackloggedStatusOnWire(t *testing.T) {
	before := runtime.NumGoroutine()
	ln := fakeServer(t, func(w *bufio.Writer, op byte, key uint64) error {
		var hdr [5]byte
		hdr[0] = netserver.StatusBacklogged
		_, err := w.Write(hdr[:])
		return err
	})

	c, err := netserver.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // every retry works: the connection is not poisoned
		if _, _, err := c.Get(uint64(i)); !errors.Is(err, netserver.ErrBacklogged) {
			t.Fatalf("get %d: err = %v, want ErrBacklogged", i, err)
		}
	}
	c.Close()

	ln2 := fakeServer(t, func(w *bufio.Writer, op byte, key uint64) error {
		var hdr [5]byte
		hdr[0] = netserver.StatusBacklogged
		_, err := w.Write(hdr[:])
		return err
	})
	p, err := netserver.DialPipeline(ln2.Addr().String(), 16)
	if err != nil {
		t.Fatal(err)
	}
	futs := make([]*netserver.Future, 0, 8)
	for i := 0; i < 8; i++ {
		f, err := p.Send(netserver.OpGet, uint64(i), nil)
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		st, _, err := f.Wait()
		if st != netserver.StatusBacklogged || !errors.Is(err, netserver.ErrBacklogged) {
			t.Fatalf("future %d: status %d err %v, want backlogged", i, st, err)
		}
		f.Release()
	}
	p.Close()
	ln.Close()
	ln2.Close()
	VerifyNoLeaks(t, before)
}

// TestServerReapsIdleAndKilledConns is the connection-kill scenario run
// against a real server: an idle connection is reaped by the idle
// deadline, a connection killed mid-frame is cleaned up, and neither
// disturbs other clients or leaks a serve goroutine through Close.
func TestServerReapsIdleAndKilledConns(t *testing.T) {
	before := runtime.NumGoroutine()
	s, err := kvcore.Open(kvcore.Config{Engine: kvcore.Hash, Workers: 2, CRWorkers: 1, HotItems: 0})
	if err != nil {
		t.Fatal(err)
	}
	s.Preload(1, []byte("one"))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := netserver.ServeConfig(s, ln, netserver.Config{IdleTimeout: 100 * time.Millisecond})
	addr := srv.Addr().String()

	// An idle raw connection: the server must hang up on its own.
	idle, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	WithinDeadline(t, 10*time.Second, "server reaping the idle connection", func() {
		var b [1]byte
		if _, err := idle.Read(b[:]); err == nil {
			t.Error("idle connection read returned data, want server-side close")
		}
	})
	idle.Close()

	// A connection killed mid-frame: write half a request header and slam
	// the connection shut.
	for i := 0; i < 4; i++ {
		kill, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		kill.Write([]byte{netserver.OpGet, 1, 2, 3})
		kill.Close()
	}

	// A well-behaved client is unaffected by the carnage.
	c, err := netserver.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get(1); err != nil || !ok || string(v) != "one" {
		t.Fatalf("get(1) = %q, %v, %v", v, ok, err)
	}
	c.Close()

	WithinDeadline(t, 10*time.Second, "netserver.Close", func() { srv.Close() })
	WithinDeadline(t, 10*time.Second, "store.Close", s.Close)
	VerifyNoLeaks(t, before)
}

// TestMaxConnsGracefulReject checks the connection cap: the connection
// over the cap gets an in-protocol "connection limit reached" error, not
// a silent drop, and a slot freed by a disconnect is reusable.
func TestMaxConnsGracefulReject(t *testing.T) {
	before := runtime.NumGoroutine()
	s, err := kvcore.Open(kvcore.Config{Engine: kvcore.Hash, Workers: 2, CRWorkers: 1, HotItems: 0})
	if err != nil {
		t.Fatal(err)
	}
	s.Preload(1, []byte("one"))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := netserver.ServeConfig(s, ln, netserver.Config{MaxConns: 1})
	addr := srv.Addr().String()

	c1, err := netserver.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c1.Get(1); err != nil || !ok {
		t.Fatalf("first connection get = %v, %v", ok, err)
	}

	c2, err := netserver.Dial(addr)
	if err != nil {
		t.Fatal(err) // TCP connect succeeds; the rejection is in-protocol
	}
	_, _, err = c2.Get(1)
	if err == nil || !strings.Contains(err.Error(), "connection limit reached") {
		t.Fatalf("over-cap get err = %v, want connection limit reached", err)
	}
	c2.Close()

	// Freeing the slot readmits new connections.
	c1.Close()
	var c3 *netserver.Client
	deadline := time.Now().Add(5 * time.Second)
	for {
		c3, err = netserver.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, err := c3.Get(1); err == nil && ok {
			break
		}
		c3.Close()
		if time.Now().After(deadline) {
			t.Fatal("freed connection slot never became reusable")
		}
		time.Sleep(5 * time.Millisecond)
	}
	c3.Close()

	WithinDeadline(t, 10*time.Second, "netserver.Close", func() { srv.Close() })
	WithinDeadline(t, 10*time.Second, "store.Close", s.Close)
	VerifyNoLeaks(t, before)
}
