package chaos

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mutps/internal/kvcore"
	"mutps/internal/rpc"
)

// TestCloseReclaimsRetired closes the store while writers are actively
// retiring items — size-changing puts and deletes keep the epoch retire
// queues non-empty the whole run — and asserts that Close's final drain
// leaks nothing: every retirement recycles, and the arena's live-slot
// accounting agrees exactly with the items still in the index. A slot
// stranded on a retire queue (or double-freed) breaks one of those sums.
func TestCloseReclaimsRetired(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		t.Run(fmt.Sprintf("round%d", round), runCloseReclaim)
	}
	VerifyNoLeaks(t, before)
}

func runCloseReclaim(t *testing.T) {
	// Small arena chunks so the churn spans many chunks and the
	// central-list refill/flush paths stay hot, not just the caches.
	s, err := kvcore.Open(kvcore.Config{
		Engine:     kvcore.Hash,
		Workers:    3,
		CRWorkers:  1,
		HotItems:   32,
		ArenaChunk: 4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 96
	sizes := []int{8, 24, 40, 72} // classes 16/32/64/128: every put hops class
	for k := uint64(0); k < keys; k++ {
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], k)
		s.Preload(k, v[:])
	}
	s.RefreshHotSet() // a live view so retirements take the view-gated path

	const clients = 4
	var (
		wg  sync.WaitGroup
		ops atomic.Int64
	)
	errCh := make(chan error, clients)
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			val := make([]byte, 128)
			for i := 0; ; i++ {
				k := uint64((c*37 + i) % keys)
				binary.LittleEndian.PutUint64(val, k)
				var err error
				if i%89 == 88 {
					_, err = s.Delete(k)
				} else {
					err = s.Put(k, val[:sizes[(c+i)%len(sizes)]])
				}
				ops.Add(1)
				if !acceptable(err) {
					errCh <- err
					return
				}
				if errors.Is(err, rpc.ErrClosed) {
					return
				}
			}
		}(c)
	}

	// Yank the store while the retire queues are guaranteed non-empty:
	// reclaim passes run every reclaimEvery retirements, so a put-heavy
	// mix always has items inside their grace window.
	for ops.Load() < 3000 {
		time.Sleep(100 * time.Microsecond)
	}
	WithinDeadline(t, 30*time.Second, "Store.Close with in-flight retirements", s.Close)
	WithinDeadline(t, 30*time.Second, "clients returning after Close", wg.Wait)
	select {
	case err := <-errCh:
		t.Fatalf("client saw unexpected error: %v", err)
	default:
	}

	if pend := s.RetiredPending(); pend != 0 {
		t.Errorf("%d retirements still pending after Close", pend)
	}
	m := s.Metrics().SnapshotMap()
	if m["mutps_items_retired_pending"] != 0 {
		t.Errorf("retired-pending gauge = %v after Close", m["mutps_items_retired_pending"])
	}
	retired, recycled := m["mutps_items_retired_total"], m["mutps_items_recycled_total"]
	if retired == 0 {
		t.Error("no items retired: churn did not exercise reclamation")
	}
	if retired != recycled {
		t.Errorf("retired %v != recycled %v: slots leaked on a retire queue", retired, recycled)
	}
	// Arena ground truth: with every value slot-sized, live slots must
	// equal the items still indexed — nothing stranded, nothing double-freed.
	var live float64
	for name, v := range m {
		if strings.HasPrefix(name, "mutps_arena_live_slots{") {
			live += v
		}
	}
	if items := m["mutps_items"]; live != items {
		t.Errorf("arena live slots %v != indexed items %v", live, items)
	}
}
