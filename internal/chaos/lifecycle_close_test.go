package chaos

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mutps/internal/kvcore"
	"mutps/internal/rpc"
)

// TestStoreCloseMidEviction closes the store while the budget evictor is
// actively spilling to the cold tier and gets are promoting values back.
// Close must join the evictor and the cold tier's compactor (no goroutine
// outlives the store), run every deferred spill fixup, and drain every
// retirement queue — including the evictor's own — so retired == recycled
// (RetiredPending() == 0) on a closed store.
func TestStoreCloseMidEviction(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		t.Run(fmt.Sprintf("round%d", round), runCloseMidEviction)
	}
	VerifyNoLeaks(t, before)
}

func runCloseMidEviction(t *testing.T) {
	s, err := kvcore.Open(kvcore.Config{
		Engine:        kvcore.Hash,
		Workers:       4,
		CRWorkers:     2,
		BatchSize:     4,
		RXCapacity:    64,
		CRMRCapacity:  8,
		SlabSize:      64,
		IdleSleep:     -1,
		MemoryBudget:  32 << 10, // keyspace below is ~4× this
		EvictInterval: time.Millisecond,
		ColdDir:       t.TempDir(),
		DefaultTTL:    50 * time.Millisecond, // expiry in play during the churn
	})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 2048
	const clients = 6
	var (
		wg  sync.WaitGroup
		ops atomic.Int64
	)
	errCh := make(chan error, clients)
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			val := make([]byte, 64)
			buf := make([]byte, 0, 64)
			for i := 0; ; i++ {
				k := uint64((c*37 + i) % keys)
				var err error
				switch i % 4 {
				case 0, 1:
					for b := range val {
						val[b] = byte(k + uint64(b))
					}
					// Mixed widths keep both the single-word fixup path and
					// the seqlock spill path hot while Close fires.
					if k%8 == 0 {
						err = s.Put(k, val[:8])
					} else {
						err = s.Put(k, val)
					}
				case 2:
					var v []byte
					v, _, err = s.GetInto(k, buf)
					buf = v[:0]
				default:
					_, err = s.Delete(keys + k) // disjoint range: gets stay meaningful
				}
				ops.Add(1)
				if !acceptable(err) {
					errCh <- err
					return
				}
				if errors.Is(err, rpc.ErrClosed) {
					return
				}
			}
		}(c)
	}

	// Build enough churn that evictions and spills are continuously in
	// flight, then close mid-stride.
	for ops.Load() < 4000 {
		time.Sleep(100 * time.Microsecond)
	}
	WithinDeadline(t, 30*time.Second, "Store.Close mid-eviction", s.Close)
	WithinDeadline(t, 30*time.Second, "clients returning after Close", wg.Wait)
	select {
	case err := <-errCh:
		t.Fatalf("client saw unexpected error: %v", err)
	default:
	}
	if n := s.RetiredPending(); n != 0 {
		t.Fatalf("closed store leaks %d retired items (retired != recycled)", n)
	}
}
