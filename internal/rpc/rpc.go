// Package rpc implements reconfigurable RPC (§3.2.1): a single shared
// receive ring at the server into which all clients append requests, with
// worker threads claiming slots by index — worker i fetches the request at
// slot m exactly when m mod n = i, where n is the number of active workers.
// Changing n is therefore a server-local update: no coordination with
// clients is needed, which is the property that makes μTPS's thread
// reassignment cheap.
//
// The transport here is in-process (clients are goroutines); the simulated
// RDMA path lives in internal/simhw and internal/simkv. The reconfiguration
// protocol is the paper's: the manager publishes a switch index S, workers
// keep using the old n for slots below S and the new n from S on, so every
// slot has exactly one owner at all times and no request is lost or
// duplicated.
package rpc

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mutps/internal/workload"
)

// Message is one client request as it sits in a receive-ring slot.
type Message struct {
	Op        workload.OpType
	Key       uint64
	Value     []byte // put payload; not retained after the call completes
	ScanCount int

	// Expire is a put's absolute expiry deadline in Unix nanoseconds
	// (0 = the item never expires). The facade converts relative TTLs to
	// absolute deadlines at Send time so every layer below is clock-free.
	Expire uint64

	// Dst is an optional caller-owned destination buffer for get results:
	// the server appends the value into Dst[:0] when its capacity suffices,
	// so a correctly sized buffer makes the whole get path allocation-free.
	// The caller must not touch Dst between Send and Wait.
	Dst []byte

	call *Call
}

// Call state machine. A call is pending from Send until Complete; a waiter
// that exhausts its spin budget CASes pending→parked and blocks on the
// park channel, which Complete signals. done is terminal until the call is
// recycled.
const (
	callPending uint32 = iota
	callParked
	callDone
)

// waitSpins is how many Gosched-yielding polls Wait makes before parking.
// The common case — server completes while the client is still spinning —
// then costs one atomic load and no channel operation at all.
const waitSpins = 128

// Call is the client-side future for a response. Calls are pooled: Send
// draws from a sync.Pool and Release returns the call for reuse, making
// the steady-state request lifecycle allocation-free.
//
// Protocol rules (violations corrupt the pool):
//   - exactly one goroutine Waits on a call (Wait may be called again
//     after it has returned, but never concurrently);
//   - the server Completes each call exactly once per Send;
//   - Release may be called at most once, only after Wait has returned,
//     and the call and its result fields must not be touched afterwards.
//
// Release is optional — an unreleased call is simply collected by the GC.
type Call struct {
	state atomic.Uint32
	park  chan struct{} // cap 1; reused across recycles

	// Results, valid after Wait returns and until Release.
	Value    []byte   // get result (nil if missing); aliases Dst when it fit
	Found    bool     // get/delete outcome
	Expiry   uint64   // get result: absolute expiry deadline (0 = none)
	Expired  bool     // get outcome: key existed but passed its TTL deadline
	ScanKeys []uint64 // keys returned by a scan, ascending
	ScanVals [][]byte // values parallel to ScanKeys
	Err      error

	// ScanBuf is the backing store for ScanVals: scan servers append every
	// value into it and slice ScanVals out of it, so a whole scan costs no
	// per-entry allocation once the buffer has grown to the scan's working
	// size. Like ScanKeys/ScanVals its capacity survives Release, and like
	// them its contents are only valid until Release — callers that keep
	// values past Release must copy them out.
	ScanBuf []byte

	// Dst is the caller's destination buffer, copied from Message.Dst by
	// Send; servers read values with it.Read(call.Dst[:0]).
	Dst []byte
}

var callPool = sync.Pool{New: func() any {
	return &Call{park: make(chan struct{}, 1)}
}}

// newCall draws a recycled (or fresh) pending call from the pool.
func newCall() *Call {
	c := callPool.Get().(*Call)
	c.state.Store(callPending)
	return c
}

// Wait blocks until the server completes the call: a brief spin (the
// common, already-completed case costs one atomic load), then park.
func (c *Call) Wait() {
	for i := 0; i < waitSpins; i++ {
		if c.state.Load() == callDone {
			return
		}
		runtime.Gosched()
	}
	if c.state.CompareAndSwap(callPending, callParked) {
		<-c.park
		return
	}
	// CAS failed: Complete won the race and the state is already done.
}

// WaitTimeout waits like Wait but gives up after d, reporting whether the
// call completed. A false return leaves the call pending: the server may
// still complete it later, so the caller must not Release a timed-out call
// (and must not reuse its Dst buffer) until it eventually completes. The
// same single-waiter rule as Wait applies.
func (c *Call) WaitTimeout(d time.Duration) bool {
	for i := 0; i < waitSpins; i++ {
		if c.state.Load() == callDone {
			return true
		}
		runtime.Gosched()
	}
	if !c.state.CompareAndSwap(callPending, callParked) {
		return true // Complete won the race
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-c.park:
		return true
	case <-t.C:
		// Un-park so a late Complete does not write to the channel with no
		// reader. If the CAS fails, Complete is already committed to sending
		// the token: consume it and report success.
		if c.state.CompareAndSwap(callParked, callPending) {
			return false
		}
		<-c.park
		return true
	}
}

// Done is the non-blocking completion poll: it reports whether the call
// has completed, without ever parking or consuming the park token. It may
// be called from any goroutine and any number of times; a true return
// means the result fields are valid (the completing store sequences them
// before the state swap Done observes). Pipelined executors use it to
// decide whether retiring the window head will block — e.g. to flush
// buffered responses before waiting — while Wait remains the only way to
// block for the result.
func (c *Call) Done() bool { return c.state.Load() == callDone }

// Complete finishes the call; servers call it exactly once per Send.
func (c *Call) Complete() {
	if c.state.Swap(callDone) == callParked {
		c.park <- struct{}{}
	}
}

// Fail completes the call with an error; it counts as the call's one
// Complete. The drain path uses it to resolve calls the server will never
// execute.
func (c *Call) Fail(err error) {
	c.Err = err
	c.Complete()
}

// Release recycles the call into the pool. Call it after Wait, once, and
// only if no other goroutine still holds the call; see the type comment.
// ScanKeys/ScanVals capacity is retained so scans reuse result slices.
func (c *Call) Release() {
	c.Value = nil
	c.Dst = nil
	c.Found = false
	c.Expiry = 0
	c.Expired = false
	c.Err = nil
	c.ScanKeys = c.ScanKeys[:0]
	for i := range c.ScanVals {
		c.ScanVals[i] = nil // drop value refs; keep the slice's capacity
	}
	c.ScanVals = c.ScanVals[:0]
	c.ScanBuf = c.ScanBuf[:0]
	callPool.Put(c)
}

// ErrClosed is reported by Send after Close, and is the error every call
// caught by the shutdown drain completes with: a caller that sees it knows
// the request was not executed.
var ErrClosed = errors.New("rpc: server closed")

// ErrBacklogged is reported by Send when the receive ring stays full for
// the whole backpressure budget: the server is not consuming fast enough.
// The request was never enqueued, so it is safe to retry after backing off.
var ErrBacklogged = errors.New("rpc: receive ring backlogged")

type slot struct {
	seq atomic.Uint64
	msg Message
}

// phase is one segment of the worker-count schedule: slots in
// [start, nextPhase.start) are owned by worker (slot mod n).
type phase struct {
	start uint64
	n     int
}

type schedule struct {
	phases []phase // ascending by start; at least one
}

// nextOwned returns the smallest slot index >= from owned by worker, or
// false if the worker owns no further slots (it has been retired by a
// shrink and has passed the switch index).
func (s *schedule) nextOwned(from uint64, worker int) (uint64, bool) {
	for i := 0; i < len(s.phases); i++ {
		p := s.phases[i]
		end := ^uint64(0)
		if i+1 < len(s.phases) {
			end = s.phases[i+1].start
		}
		if end <= from {
			continue
		}
		lo := from
		if p.start > lo {
			lo = p.start
		}
		if worker >= p.n {
			continue // retired within this phase
		}
		// First index >= lo with index mod p.n == worker.
		rem := lo % uint64(p.n)
		idx := lo + (uint64(worker)+uint64(p.n)-rem)%uint64(p.n)
		if idx < end {
			return idx, true
		}
	}
	return 0, false
}

// Server is the in-process reconfigurable RPC endpoint.
type Server struct {
	capMask uint64
	slots   []slot

	ticket atomic.Uint64 // client producer tickets
	sched  atomic.Pointer[schedule]
	closed atomic.Bool

	// inflight counts senders between their closed check and the point
	// where their claim is either published or abandoned. Close spins until
	// it reads zero, after which the ticket frontier is final: every claim
	// below it is published and no claim at or above it will ever be made.
	inflight   atomic.Int64
	closeOnce  sync.Once
	backlogged atomic.Uint64 // Sends failed with ErrBacklogged (observability)

	reconfigs atomic.Uint64 // schedule changes applied (observability)

	cursors    []cursorPad // per-worker base: all slots below are consumed or disowned
	maxWorkers int
}

type cursorPad struct {
	v atomic.Uint64
	_ [7]uint64
}

// NewServer creates a receive ring with the given capacity (rounded up to a
// power of two, minimum 4 — the slot state machine reserves seq offsets 0..2
// within a lap) serving up to maxWorkers workers, initially n of them
// active.
func NewServer(capacity, maxWorkers, n int) *Server {
	if n < 1 || n > maxWorkers {
		panic("rpc: initial worker count out of range")
	}
	c := 4
	for c < capacity {
		c <<= 1
	}
	s := &Server{
		capMask:    uint64(c - 1),
		slots:      make([]slot, c),
		cursors:    make([]cursorPad, maxWorkers),
		maxWorkers: maxWorkers,
	}
	for i := range s.slots {
		s.slots[i].seq.Store(uint64(i))
	}
	s.sched.Store(&schedule{phases: []phase{{0, n}}})
	// Cursors start at base 0; each worker derives its owned slots from the
	// schedule on every poll.
	return s
}

// Cap returns the ring capacity in slots.
func (s *Server) Cap() int { return len(s.slots) }

// Workers returns the currently scheduled worker count (the n of the
// latest phase).
func (s *Server) Workers() int {
	ph := s.sched.Load().phases
	return ph[len(ph)-1].n
}

// Backpressure budget for a Send that finds the ring full (§3.4): first a
// run of scheduler yields (cheap; absorbs transient consumer hiccups),
// then a run of short naps (absorbs IdleSleep-parked workers), then give
// up with ErrBacklogged. The worst case is roughly sendFullNaps×sendFullNap
// ≈ 20ms plus scheduling noise — generous enough that a live-but-busy
// server never trips it, and bounded so a stalled server fails fast
// instead of burning a core forever.
const (
	sendFullSpins = 1024
	sendFullNaps  = 200
	sendFullNap   = 100 * time.Microsecond
)

// Send appends a request to the shared receive ring and returns the call
// future. It fails with ErrClosed after Close and with ErrBacklogged when
// the ring stays full for the whole backpressure budget; in both cases the
// request was not enqueued. Safe for any number of concurrent client
// goroutines.
func (s *Server) Send(m Message) (*Call, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	// Enter the inflight window before re-checking closed: Close sets the
	// flag and then waits for inflight to hit zero, so either this sender
	// sees closed here, or Close waits for it to publish/abandon. Either
	// way no publication can land at or beyond the frontier Close reads.
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.closed.Load() {
		return nil, ErrClosed
	}
	call := newCall()
	call.Dst = m.Dst
	m.call = call
	full := 0
	for {
		pos := s.ticket.Load()
		sl := &s.slots[pos&s.capMask]
		seq := sl.seq.Load()
		if seq == pos {
			// Slot free: claim the ticket, then publish unconditionally.
			// Claim-before-publish (rather than an up-front fetch-add) means
			// a Send that gives up never owns a ticket, so it cannot wedge
			// the ring behind a permanently unpublished slot.
			if s.ticket.CompareAndSwap(pos, pos+1) {
				sl.msg = m
				sl.seq.Store(pos + 1)
				return call, nil
			}
			continue // lost the claim race; reload the ticket
		}
		if seq > pos {
			continue // stale ticket read: another producer advanced it
		}
		// seq < pos: the slot still holds an unconsumed request from the
		// previous lap — the ring is full. Wait within budget, then fail.
		if s.closed.Load() {
			call.Release()
			return nil, ErrClosed
		}
		full++
		switch {
		case full < sendFullSpins:
			runtime.Gosched()
		case full < sendFullSpins+sendFullNaps:
			time.Sleep(sendFullNap)
		default:
			call.Release()
			s.backlogged.Add(1)
			return nil, ErrBacklogged
		}
	}
}

// Poll is worker w's non-blocking one-shot check of its next owned slot.
// It returns the message and its completion future when one is ready. ok
// is false when nothing is ready; retired is true when the current
// schedule gives worker w no further slots (after a shrink) — the worker
// may switch to the memory-resident layer, and will automatically resume
// here if a later grow re-activates it.
//
// The cursor holds only a base position: every index below it has been
// consumed or disowned by this worker. Ownership of the next slot is
// re-derived from the live schedule on every call, never cached — a cached
// claim on a future slot can go stale when a later Reconfigure supersedes
// the phase it was derived under, which would leave two workers believing
// they own the same slot (and the loser camped forever on a slot whose
// seq has already advanced past it).
//
// Slot seq states within a lap, for slot index idx:
//
//	idx        free (producers may claim)
//	idx+1      published, unconsumed
//	idx+2      claimed by a consumer (transient; ring capacity ≥ 4 keeps
//	           this distinct from the next-lap free value idx+cap)
//	idx+cap    consumed — the next lap's free value
//
// Consumption claims the slot by CAS(idx+1 → idx+2), so even a worker
// acting on a superseded schedule snapshot can never double-consume; the
// rightful owner that loses such a race observes seq > idx+1 and skips
// past the slot instead of waiting on it forever.
func (s *Server) Poll(w int) (m Message, ok bool, retired bool) {
	for {
		base := s.cursors[w].v.Load()
		idx, okN := s.sched.Load().nextOwned(base, w)
		if !okN {
			return Message{}, false, true
		}
		sl := &s.slots[idx&s.capMask]
		seq := sl.seq.Load()
		switch {
		case seq == idx+1:
			if !sl.seq.CompareAndSwap(idx+1, idx+2) {
				continue // lost a claim race; re-derive and retry
			}
			m = sl.msg
			sl.msg = Message{} // drop references for GC
			sl.seq.Store(idx + s.capMask + 1)
			s.cursors[w].v.Store(idx + 1)
			return m, true, false
		case seq > idx+1:
			// Already claimed or consumed this lap (by a worker that derived
			// ownership under a schedule since superseded): nothing left to
			// do here, release the index and look further.
			s.cursors[w].v.Store(idx + 1)
		default:
			// seq <= idx: not yet published (possibly still holding the
			// previous lap's state). Wait without advancing the base.
			return Message{}, false, false
		}
	}
}

// Call returns the future attached to a polled message.
func (m *Message) Call() *Call { return m.call }

// Reconfigure schedules a change of the active worker count to newN and
// returns the switch slot index S: slots below S keep the old mapping,
// slots at or above S use the new one. Workers discover the change as
// their cursors cross S; grown workers (w >= old n) start receiving work
// automatically once S is reached.
func (s *Server) Reconfigure(newN int) uint64 {
	if newN < 1 || newN > s.maxWorkers {
		panic("rpc: worker count out of range")
	}
	for {
		if s.closed.Load() {
			// The terminal phase is final; a reconfiguration racing with
			// Close must not resurrect workers. (If our CAS below were to
			// land first instead, Close drops the new phase: its start is at
			// or beyond the frontier.)
			return 0
		}
		old := s.sched.Load()
		// S must be beyond every slot any worker could already have
		// consumed; published slots are < ticket, and cursors never run
		// ahead of published slots, so ticket + capacity is safe even
		// against in-flight producers.
		sw := s.ticket.Load() + uint64(len(s.slots))
		phases := make([]phase, 0, len(old.phases)+1)
		phases = append(phases, old.phases...)
		// A trailing phase with start >= sw governs only slots that cannot
		// have been published or consumed yet (sw never decreases), so the
		// new phase supersedes it entirely. Dropping it keeps a burst of
		// reconfigurations with no traffic in between — the auto-tuner's
		// probe pattern — from accumulating zero-width phases.
		for len(phases) > 0 && phases[len(phases)-1].start >= sw {
			phases = phases[:len(phases)-1]
		}
		phases = append(phases, phase{start: sw, n: newN})
		// Prune history: phases entirely below every worker's next owned
		// slot can never be consulted again (cursors only move forward), so
		// keep only the newest phase at or below that frontier. Without
		// this a long-lived server being auto-tuned would accumulate phases
		// without bound and Poll's ownership walk would slow down.
		frontier := s.frontier(old)
		if frontier > sw {
			frontier = sw
		}
		keepFrom := 0
		for i := 1; i < len(phases); i++ {
			if phases[i].start <= frontier {
				keepFrom = i
			}
		}
		phases = phases[keepFrom:]
		if s.sched.CompareAndSwap(old, &schedule{phases: phases}) {
			// Parked workers re-derive their position from the new
			// schedule on their next Poll; nothing else to do.
			s.reconfigs.Add(1)
			return sw
		}
	}
}

// frontier returns the smallest slot index any worker may still consume
// under the given schedule: the minimum of the workers' derived next owned
// positions. Workers the schedule retires are excluded — their frozen bases
// say nothing about pending work, and any future phase that re-activates
// them starts beyond every slot the pruned history governed. Cursors only
// move forward, so a concurrent poll can only make the result conservative.
func (s *Server) frontier(sched *schedule) uint64 {
	min := ^uint64(0)
	for w := range s.cursors {
		next, ok := sched.nextOwned(s.cursors[w].v.Load(), w)
		if !ok {
			continue
		}
		if next < min {
			min = next
		}
	}
	return min
}

// PhaseCount reports the live schedule length (for tests and diagnostics).
func (s *Server) PhaseCount() int { return len(s.sched.Load().phases) }

// Reconfigurations returns how many schedule changes have been applied.
func (s *Server) Reconfigurations() uint64 { return s.reconfigs.Load() }

// Depth estimates the receive ring's occupancy: published requests not
// yet consumed by the slowest worker that will still consume. Each worker
// counts at its derived next owned position under the current schedule;
// workers the schedule retired are excluded — their frozen bases say
// nothing about pending work. It is a scrape-time diagnostic — cursors
// move while it reads, so the value is approximate — clamped to
// [0, capacity].
func (s *Server) Depth() int {
	ticket := s.ticket.Load()
	f := s.frontier(s.sched.Load())
	if f == ^uint64(0) || ticket <= f {
		return 0
	}
	d := ticket - f
	if d > uint64(len(s.slots)) {
		d = uint64(len(s.slots))
	}
	return int(d)
}

// PendingBefore reports whether worker w still owns unconsumed slots below
// the given switch index (used to confirm drain during reassignment).
func (s *Server) PendingBefore(w int, sw uint64) bool {
	next, ok := s.sched.Load().nextOwned(s.cursors[w].v.Load(), w)
	if !ok {
		return false
	}
	// Only published slots can hold requests, so the worker is drained once
	// its next owned slot passes either the switch index or the publication
	// frontier.
	return next < sw && next < s.ticket.Load()
}

// Close initiates the shutdown drain; it is idempotent and safe against
// concurrent Sends and Reconfigures. It (1) fails all subsequent Sends
// with ErrClosed, (2) waits for in-flight Sends to publish or abandon,
// freezing the ticket frontier F, and (3) installs a terminal schedule
// phase {start: F, n: 0}: workers keep consuming every published slot
// below F under the pre-close schedule and then retire, so the drain
// completes every accepted request. Pending phases at or beyond F are
// dropped — they would only ever govern slots that can no longer be
// published.
//
// Close returns as soon as the terminal phase is installed; consumption of
// the remaining slots is the workers' job. Callers that stop their workers
// must run DrainStranded afterwards to fail anything left.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		for s.inflight.Load() != 0 {
			runtime.Gosched() // producer quiesce: bounded by Send's budget
		}
		term := s.ticket.Load()
		for {
			old := s.sched.Load()
			phases := make([]phase, 0, len(old.phases)+1)
			for _, p := range old.phases {
				if p.start < term {
					phases = append(phases, p)
				}
			}
			phases = append(phases, phase{start: term, n: 0})
			if s.sched.CompareAndSwap(old, &schedule{phases: phases}) {
				return
			}
		}
	})
}

// Closed reports whether Close has been called.
func (s *Server) Closed() bool { return s.closed.Load() }

// Backlogged returns how many Sends failed with ErrBacklogged.
func (s *Server) Backlogged() uint64 { return s.backlogged.Load() }

// DrainStranded sweeps the ring for published-but-unconsumed slots and
// fails their calls with ErrClosed, returning how many it resolved. Under
// the graceful drain (Close, then let workers retire) it finds nothing:
// every published slot has an owner that consumes it. It is the safety net
// for callers that stop workers out-of-band, and must only be called after
// Close has returned and every worker has exited — it touches slots
// without claiming them.
func (s *Server) DrainStranded() int {
	n := 0
	for j := range s.slots {
		sl := &s.slots[j]
		seq := sl.seq.Load()
		if (seq-uint64(j))&s.capMask != 1 {
			continue // free or already consumed, not published
		}
		if c := sl.msg.call; c != nil {
			c.Fail(ErrClosed)
		}
		sl.msg = Message{}
		sl.seq.Store(seq + s.capMask) // same advance a consuming Poll applies
		n++
	}
	return n
}
