package rpc

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"mutps/internal/workload"
)

func TestScheduleNextOwned(t *testing.T) {
	s := &schedule{phases: []phase{{0, 3}, {10, 2}}}
	// Phase 1: n=3 on [0,10); phase 2: n=2 on [10,∞).
	cases := []struct {
		from   uint64
		worker int
		want   uint64
		ok     bool
	}{
		{0, 0, 0, true},
		{1, 0, 3, true},
		{0, 2, 2, true},
		{9, 2, 9, true},   // last slot of phase 1 owned by 2? 9 mod 3 = 0... no
		{10, 2, 0, false}, // worker 2 retired in phase 2
		{10, 1, 11, true}, // 11 mod 2 = 1
		{8, 1, 0, true},   // computed below
	}
	// Fix the hand cases that need arithmetic: 9 mod 3 == 0 → worker 2's
	// next owned from 9 is... phase1 has indexes {2,5,8} for worker 2; from
	// 9 nothing in phase 1; phase 2 retires worker 2 → false.
	cases[3] = struct {
		from   uint64
		worker int
		want   uint64
		ok     bool
	}{9, 2, 0, false}
	// worker 1 from 8: phase 1 gives 8 mod 3 = 2 → next is... indexes
	// {1,4,7} — from 8 none < 10 (next would be 10, out of phase). Phase 2:
	// first index ≥ 10 with mod 2 == 1 → 11.
	cases[6] = struct {
		from   uint64
		worker int
		want   uint64
		ok     bool
	}{8, 1, 11, true}

	for _, c := range cases {
		got, ok := s.nextOwned(c.from, c.worker)
		if ok != c.ok || (ok && got != c.want) {
			t.Fatalf("nextOwned(%d, w%d) = (%d,%v), want (%d,%v)",
				c.from, c.worker, got, ok, c.want, c.ok)
		}
	}
}

func TestScheduleOwnershipPartition(t *testing.T) {
	// Every slot index must have exactly one owner across workers.
	s := &schedule{phases: []phase{{0, 4}, {17, 2}, {40, 6}}}
	for idx := uint64(0); idx < 100; idx++ {
		owners := 0
		for w := 0; w < 6; w++ {
			got, ok := s.nextOwned(idx, w)
			if ok && got == idx {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("slot %d has %d owners", idx, owners)
		}
	}
}

func TestSendPollSingleWorker(t *testing.T) {
	s := NewServer(8, 4, 1)
	if s.Cap() != 8 || s.Workers() != 1 {
		t.Fatalf("cap=%d n=%d", s.Cap(), s.Workers())
	}
	call, err := s.Send(Message{Op: workload.OpGet, Key: 7})
	if err != nil {
		t.Fatal(err)
	}
	m, ok, retired := s.Poll(0)
	if !ok || retired || m.Key != 7 || m.Op != workload.OpGet {
		t.Fatalf("poll = %+v ok=%v retired=%v", m, ok, retired)
	}
	if m.Call() != call {
		t.Fatal("polled message must carry the call future")
	}
	m.Call().Found = true
	m.Call().Complete()
	call.Wait()
	if !call.Found {
		t.Fatal("call results must be visible after Wait")
	}
	// Nothing left.
	if _, ok, _ := s.Poll(0); ok {
		t.Fatal("empty ring must poll nothing")
	}
}

func TestModNClaiming(t *testing.T) {
	s := NewServer(16, 4, 3)
	for i := 0; i < 9; i++ {
		s.Send(Message{Key: uint64(i)})
	}
	// Worker w must see exactly keys w, w+3, w+6 in order.
	for w := 0; w < 3; w++ {
		for j := 0; j < 3; j++ {
			m, ok, _ := s.Poll(w)
			if !ok {
				t.Fatalf("worker %d: missing message %d", w, j)
			}
			if want := uint64(w + 3*j); m.Key != want {
				t.Fatalf("worker %d got key %d, want %d", w, m.Key, want)
			}
		}
		if _, ok, _ := s.Poll(w); ok {
			t.Fatalf("worker %d must be drained", w)
		}
	}
	// Worker 3 is inactive and must be marked retired.
	if _, _, retired := s.Poll(3); !retired {
		t.Fatal("worker beyond n must be retired")
	}
}

func TestRingWrapAndRefill(t *testing.T) {
	s := NewServer(4, 1, 1)
	for round := 0; round < 5; round++ {
		for i := 0; i < 4; i++ {
			s.Send(Message{Key: uint64(round*4 + i)})
		}
		for i := 0; i < 4; i++ {
			m, ok, _ := s.Poll(0)
			if !ok || m.Key != uint64(round*4+i) {
				t.Fatalf("round %d idx %d: %+v ok=%v", round, i, m, ok)
			}
		}
	}
}

func TestSendBlocksUntilSlotFreed(t *testing.T) {
	s := NewServer(4, 1, 1) // minimum ring: 4 slots
	for i := 0; i < 4; i++ {
		s.Send(Message{Key: uint64(i)})
	}
	done := make(chan struct{})
	go func() {
		s.Send(Message{Key: 4}) // must block until a slot frees
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("send into a full ring must block")
	default:
	}
	if m, ok, _ := s.Poll(0); !ok || m.Key != 0 {
		t.Fatal("poll failed")
	}
	<-done // now the blocked send can finish
	for i := 1; i <= 4; i++ {
		if m, ok, _ := s.Poll(0); !ok || m.Key != uint64(i) {
			t.Fatalf("order broken after blocking send at %d", i)
		}
	}
}

func TestReconfigureGrow(t *testing.T) {
	s := NewServer(16, 4, 1)
	// Pre-switch traffic: all owned by worker 0.
	for i := 0; i < 3; i++ {
		s.Send(Message{Key: uint64(i)})
	}
	sw := s.Reconfigure(2)
	// Worker 1 must see nothing before the switch index.
	if _, ok, _ := s.Poll(1); ok {
		t.Fatal("grown worker must not claim pre-switch slots")
	}
	// Worker 0 drains pre-switch slots.
	for i := 0; i < 3; i++ {
		if m, ok, _ := s.Poll(0); !ok || m.Key != uint64(i) {
			t.Fatalf("pre-switch drain broke at %d", i)
		}
	}
	// Fill up to the switch index so post-switch sends land at S, S+1, ...
	pre := int(sw - 3)
	for i := 0; i < pre; i++ {
		s.Send(Message{Key: 1000 + uint64(i)})
	}
	for i := 0; i < pre; i++ {
		if _, ok, _ := s.Poll(0); !ok {
			t.Fatalf("drain to switch index stalled at %d", i)
		}
	}
	// Post-switch: slots S and S+1 split between workers 0 and 1.
	s.Send(Message{Key: 7000})
	s.Send(Message{Key: 7001})
	w0 := int(sw % 2)
	m, ok, _ := s.Poll(w0)
	if !ok || m.Key != 7000 {
		t.Fatalf("post-switch slot S: %+v ok=%v", m, ok)
	}
	m, ok, _ = s.Poll(1 - w0)
	if !ok || m.Key != 7001 {
		t.Fatalf("post-switch slot S+1: %+v ok=%v", m, ok)
	}
	if s.Workers() != 2 {
		t.Fatalf("Workers = %d", s.Workers())
	}
}

func TestReconfigureShrinkRetires(t *testing.T) {
	s := NewServer(8, 2, 2)
	sw := s.Reconfigure(1)
	if s.PendingBefore(1, sw) {
		t.Fatal("no traffic yet: nothing pending")
	}
	// Worker 1 hits the switch and retires.
	for {
		_, ok, retired := s.Poll(1)
		if retired {
			break
		}
		if !ok {
			// Advance the ring so cursors can cross S: send and let worker
			// 0 drain.
			s.Send(Message{Key: 1})
			for {
				if _, ok0, _ := s.Poll(0); !ok0 {
					break
				}
			}
		}
	}
	// All subsequent traffic belongs to worker 0.
	s.Send(Message{Key: 9})
	found := false
	for i := 0; i < 16; i++ {
		if m, ok, _ := s.Poll(0); ok && m.Key == 9 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("worker 0 must own all post-shrink slots")
	}
}

// TestReconfigureBurstNoTraffic is the auto-tuner regression: a burst of
// reconfigurations with zero traffic in between all compute the same switch
// index (the ticket does not move), so every phase in the burst except the
// last is superseded before any of its slots exist. A worker that derived a
// future position under a superseded phase must not keep a stale claim on
// it — historically that let the stale worker steal a slot from its
// rightful owner when traffic resumed, wedging the owner (and the client
// whose request landed on the owner's next slot) forever.
func TestReconfigureBurstNoTraffic(t *testing.T) {
	for round := 0; round < 20; round++ {
		s := NewServer(16, 4, 2)
		// Warm traffic so cursors sit mid-ring, then stop.
		for i := 0; i < 5; i++ {
			s.Send(Message{Key: uint64(i)})
			for w := 0; w < 2; w++ {
				for {
					if m, ok, _ := s.Poll(w); ok {
						m.Call().Complete()
					} else {
						break
					}
				}
			}
		}
		// Zero-traffic reconfiguration burst, polling all workers between
		// steps like live worker loops do (this is what used to plant the
		// stale claims).
		for _, n := range []int{3, 1, 3, 2, 3, 1, 3, 2} {
			s.Reconfigure(n)
			for w := 0; w < 4; w++ {
				if m, ok, _ := s.Poll(w); ok {
					m.Call().Complete()
				}
			}
		}
		if pc := s.PhaseCount(); pc > 2 {
			t.Fatalf("zero-traffic burst grew the schedule to %d phases", pc)
		}
		// Traffic resumes: every send must complete within a bounded number
		// of polls across the currently active workers.
		for i := 0; i < 64; i++ {
			call, err := s.Send(Message{Key: 100 + uint64(i)})
			if err != nil {
				t.Fatal(err)
			}
			served := false
			for spin := 0; spin < 1000 && !served; spin++ {
				for w := 0; w < 4; w++ {
					if m, ok, _ := s.Poll(w); ok {
						m.Call().Complete()
					}
				}
				served = call.Done()
			}
			if !served {
				t.Fatalf("round %d: request %d lost after reconfiguration burst", round, i)
			}
			call.Release()
		}
	}
}

func TestReconfigurePanics(t *testing.T) {
	s := NewServer(8, 2, 1)
	for _, n := range []int{0, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			s.Reconfigure(n)
		}()
	}
}

func TestCloseStopsSends(t *testing.T) {
	s := NewServer(4, 1, 1)
	s.Close()
	if call, err := s.Send(Message{}); err != ErrClosed || call != nil {
		t.Fatalf("Send after Close = (%v, %v), want (nil, ErrClosed)", call, err)
	}
}

func TestConcurrentClientsAllDelivered(t *testing.T) {
	const nClients, perClient, nWorkers = 4, 2000, 3
	s := NewServer(64, nWorkers, nWorkers)
	var wg sync.WaitGroup
	// Workers complete calls as they poll.
	stop := make(chan struct{})
	var served sync.Map
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				m, ok, _ := s.Poll(w)
				if !ok {
					select {
					case <-stop:
						if m2, ok2, _ := s.Poll(w); ok2 {
							served.Store(m2.Key, w)
							m2.Call().Complete()
							continue
						}
						return
					default:
						runtime.Gosched()
						continue
					}
				}
				if _, dup := served.LoadOrStore(m.Key, w); dup {
					panic("duplicate claim of a request")
				}
				m.Call().Complete()
			}
		}(w)
	}
	var cwg sync.WaitGroup
	for c := 0; c < nClients; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			for i := 0; i < perClient; i++ {
				call, err := s.Send(Message{Key: uint64(c*perClient + i)})
				if err != nil {
					panic(err)
				}
				call.Wait()
			}
		}(c)
	}
	cwg.Wait()
	close(stop)
	wg.Wait()
	n := 0
	served.Range(func(any, any) bool { n++; return true })
	if n != nClients*perClient {
		t.Fatalf("served %d, want %d", n, nClients*perClient)
	}
}

func TestLiveReconfigurationUnderLoad(t *testing.T) {
	const total = 5000
	s := NewServer(32, 4, 2)
	var served sync.Map
	stop := make(chan struct{})
	var wg sync.WaitGroup
	activeTarget := make([]chan int, 4)
	for w := 0; w < 4; w++ {
		activeTarget[w] = make(chan int, 1)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				m, ok, _ := s.Poll(w)
				if ok {
					if _, dup := served.LoadOrStore(m.Key, w); dup {
						panic("duplicate claim during reconfiguration")
					}
					m.Call().Complete()
					continue
				}
				select {
				case <-stop:
					if _, ok2, _ := s.Poll(w); !ok2 {
						return
					}
				default:
					runtime.Gosched()
				}
			}
		}(w)
	}
	var cwg sync.WaitGroup
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		for i := 0; i < total; i++ {
			call, err := s.Send(Message{Key: uint64(i)})
			if err != nil {
				panic(err)
			}
			call.Wait()
			switch i {
			case 1000:
				s.Reconfigure(4)
			case 3000:
				s.Reconfigure(1)
			}
		}
	}()
	cwg.Wait()
	close(stop)
	wg.Wait()
	n := 0
	served.Range(func(any, any) bool { n++; return true })
	if n != total {
		t.Fatalf("served %d, want %d", n, total)
	}
}

func TestSchedulePruning(t *testing.T) {
	s := NewServer(8, 2, 2)
	// Repeated reconfiguration with workers keeping pace must not grow the
	// schedule without bound.
	for round := 0; round < 50; round++ {
		n := 1 + round%2
		s.Reconfigure(n)
		// Drive traffic past the switch so cursors advance.
		for i := 0; i < 20; i++ {
			s.Send(Message{Key: uint64(i)})
			for w := 0; w < 2; w++ {
				for {
					if _, ok, _ := s.Poll(w); !ok {
						break
					}
				}
			}
		}
	}
	if got := s.PhaseCount(); got > 6 {
		t.Fatalf("schedule grew to %d phases despite pruning", got)
	}
	// The ring must still be fully functional.
	s.Send(Message{Key: 42})
	found := false
	for w := 0; w < 2 && !found; w++ {
		for {
			m, ok, _ := s.Poll(w)
			if !ok {
				break
			}
			if m.Key == 42 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("request lost after heavy reconfiguration")
	}
}

// --- pooled-call protocol ------------------------------------------------

// TestCallCompleteBeforeWait exercises the fast path: when the server
// completes before the client waits, Wait returns after a single atomic
// load and never touches the park channel.
func TestCallCompleteBeforeWait(t *testing.T) {
	s := NewServer(8, 2, 1)
	call, _ := s.Send(Message{Op: workload.OpGet, Key: 1})
	m, ok, _ := s.Poll(0)
	if !ok {
		t.Fatal("missing message")
	}
	m.Call().Found = true
	m.Call().Complete()
	call.Wait()
	call.Wait() // Wait after completion must be idempotent
	if !call.Found {
		t.Fatal("results must be visible after Wait")
	}
	call.Release()
}

// TestCallParkWakeup forces the slow path: the waiter parks (the server
// is deliberately slow) and Complete must wake it exactly once.
func TestCallParkWakeup(t *testing.T) {
	s := NewServer(8, 2, 1)
	call, _ := s.Send(Message{Op: workload.OpGet, Key: 1})
	go func() {
		time.Sleep(2 * time.Millisecond) // let the waiter exhaust its spins
		m, ok, _ := s.Poll(0)
		if !ok {
			panic("missing message")
		}
		m.Call().Found = true
		m.Call().Complete()
	}()
	call.Wait()
	if !call.Found {
		t.Fatal("parked waiter must observe results after wakeup")
	}
	call.Release()
}

// TestCallReleaseRecycles checks that a released call comes back from the
// pool reset: no stale results, scan slices emptied but retaining their
// backing capacity.
func TestCallReleaseRecycles(t *testing.T) {
	c := newCall()
	c.Found = true
	c.Value = []byte{1}
	c.Err = ErrClosed
	c.ScanKeys = append(c.ScanKeys, 1, 2, 3)
	c.ScanVals = append(c.ScanVals, []byte{1}, []byte{2})
	keysCap := cap(c.ScanKeys)
	c.Complete()
	c.Wait()
	c.Release()

	// The pool is per-P, so the same goroutine gets the same object back.
	c2 := newCall()
	if c2.Found || c2.Value != nil || c2.Err != nil || c2.Dst != nil {
		t.Fatalf("recycled call carries stale results: %+v", c2)
	}
	if len(c2.ScanKeys) != 0 || len(c2.ScanVals) != 0 {
		t.Fatal("recycled call carries stale scan results")
	}
	if c2 == c && cap(c2.ScanKeys) != keysCap {
		t.Fatal("recycling must retain scan slice capacity")
	}
	c2.Complete()
	c2.Wait()
	c2.Release()
}

// TestSendReusesPooledCalls verifies that the steady-state Send→Complete→
// Wait→Release cycle allocates nothing.
func TestSendReusesPooledCalls(t *testing.T) {
	s := NewServer(8, 2, 1)
	avg := testing.AllocsPerRun(200, func() {
		call, _ := s.Send(Message{Op: workload.OpGet, Key: 9})
		m, ok, _ := s.Poll(0)
		if !ok {
			t.Fatal("missing message")
		}
		m.Call().Complete()
		call.Wait()
		call.Release()
	})
	if avg != 0 {
		t.Fatalf("pooled call cycle allocates %.2f times per op, want 0", avg)
	}
}

func TestDepthTracksOccupancy(t *testing.T) {
	// maxWorkers > n: workers 1..3 stay parked forever and must not drag
	// the depth frontier down to zero.
	s := NewServer(8, 4, 1)
	if _, _, retired := s.Poll(1); !retired {
		t.Fatal("worker 1 must retire under a 1-worker schedule")
	}
	if d := s.Depth(); d != 0 {
		t.Fatalf("idle depth = %d, want 0", d)
	}
	var calls []*Call
	for i := 0; i < 3; i++ {
		c, _ := s.Send(Message{Op: workload.OpGet, Key: uint64(i)})
		calls = append(calls, c)
	}
	if d := s.Depth(); d != 3 {
		t.Fatalf("depth after 3 sends = %d, want 3", d)
	}
	for range calls {
		m, ok, _ := s.Poll(0)
		if !ok {
			t.Fatal("expected a message")
		}
		m.Call().Complete()
	}
	if d := s.Depth(); d != 0 {
		t.Fatalf("depth after drain = %d, want 0", d)
	}
	for _, c := range calls {
		c.Wait()
		c.Release()
	}
}

func TestReconfigurationsCounter(t *testing.T) {
	s := NewServer(8, 4, 1)
	if s.Reconfigurations() != 0 {
		t.Fatal("fresh server must report zero reconfigurations")
	}
	s.Reconfigure(3)
	s.Reconfigure(2)
	if got := s.Reconfigurations(); got != 2 {
		t.Fatalf("reconfigurations = %d, want 2", got)
	}
}

// TestWaitTimeoutExpiresAndRecovers covers the deadline path of a pooled
// call: an uncompleted call times out, then still completes normally —
// the timed-out waiter's parked state must be fully reverted so the later
// Complete neither blocks nor double-wakes.
func TestWaitTimeoutExpiresAndRecovers(t *testing.T) {
	s := NewServer(8, 1, 1)
	call, err := s.Send(Message{Op: workload.OpGet, Key: 1})
	if err != nil {
		t.Fatal(err)
	}
	if call.WaitTimeout(10 * time.Millisecond) {
		t.Fatal("WaitTimeout reported done on an uncompleted call")
	}
	m, ok, _ := s.Poll(0)
	if !ok {
		t.Fatal("published message not visible to the worker")
	}
	m.Call().Complete()
	if !call.WaitTimeout(time.Second) {
		t.Fatal("WaitTimeout did not observe the completion")
	}
	call.Wait() // done is sticky: further waits return immediately
	call.Release()
}

// TestWaitTimeoutCompleteRace hammers the window where Complete fires just
// as the timeout reverts the parked state. Under -race this is the gate on
// the CAS-revert protocol: a lost token would strand the follow-up Wait, a
// duplicate token would corrupt the next pooled use of the call.
func TestWaitTimeoutCompleteRace(t *testing.T) {
	s := NewServer(64, 1, 1)
	for i := 0; i < 300; i++ {
		call, err := s.Send(Message{Op: workload.OpGet, Key: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			for {
				m, ok, _ := s.Poll(0)
				if ok {
					m.Call().Complete()
					return
				}
				runtime.Gosched()
			}
		}()
		if !call.WaitTimeout(time.Duration(i%7) * 10 * time.Microsecond) {
			call.Wait() // timed out: completion must still arrive and wake us
		}
		call.Release()
	}
}

// TestCallDoneNonBlockingPoll pins the Done contract the pipelined network
// server depends on: Done never blocks, never consumes the park token, and
// flips exactly at completion — so a completion stage can poll the window
// head to decide whether to flush buffered responses before committing to
// a blocking Wait.
func TestCallDoneNonBlockingPoll(t *testing.T) {
	s := NewServer(8, 2, 1)
	call, _ := s.Send(Message{Op: workload.OpGet, Key: 1})
	if call.Done() {
		t.Fatal("Done before completion")
	}
	m, ok, _ := s.Poll(0)
	if !ok {
		t.Fatal("missing message")
	}
	m.Call().Found = true
	m.Call().Complete()
	for i := 0; !call.Done(); i++ {
		if i > 1_000_000 {
			t.Fatal("Done never observed completion")
		}
	}
	// Polling Done must not have burned the park token: a Wait after Done
	// still returns (fast path, but the contract holds either way).
	call.Wait()
	if !call.Found {
		t.Fatal("results must be visible after Done reported completion")
	}
	call.Release()
}
