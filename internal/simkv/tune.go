package simkv

import "mutps/internal/tuner"

// tunerWindow is the number of requests simulated per Measure probe — the
// analog of the paper's 10 ms monitoring window.
const tunerWindow = 8000

// Tunable adapts a μTPS System to the auto-tuner's Reconfigurable
// interface: each Measure applies the configuration live (the system keeps
// its cache state) and simulates one monitoring window.
type Tunable struct {
	S *System
	// CacheStep overrides the linear-probe step (default 1000 items, the
	// paper's 1K).
	CacheStep int
	// MaxCache bounds the hot-set sizes explored (default 10000, the
	// paper's 10K-item hot set).
	MaxCache int
	// Window overrides the per-probe request count.
	Window int
}

// Bounds implements tuner.Reconfigurable.
func (t *Tunable) Bounds() (threads, ways, maxCacheItems, cacheStep int) {
	maxC := t.MaxCache
	if maxC == 0 {
		maxC = 10000
	}
	step := t.CacheStep
	if step == 0 {
		step = 1000
	}
	return t.S.P.Workers, t.S.P.HW.LLCWays, maxC, step
}

// Measure implements tuner.Reconfigurable.
func (t *Tunable) Measure(c tuner.Config) float64 {
	s := t.S
	if c.MRThreads < 1 {
		c.MRThreads = 1
	}
	if c.MRThreads > s.P.Workers-1 {
		c.MRThreads = s.P.Workers - 1
	}
	s.SetSplit(s.P.Workers - c.MRThreads)
	s.SetHotItems(c.CacheItems)
	s.SetMRWays(c.MRWays)
	w := t.Window
	if w == 0 {
		w = tunerWindow
	}
	res := s.Run(w/4, w)
	return res.Mops(s.P.HW)
}

var _ tuner.Reconfigurable = (*Tunable)(nil)

// BestMuTPS sweeps the CR/MR split (and optionally LLC-way grants) with a
// fresh system per candidate and returns the best measured result together
// with the winning parameters — the grid-experiment stand-in for running
// the full auto-tuner at every point of a figure.
func BestMuTPS(p SystemParams, mk func() *System, warm, n int, waysGrid []int) (Result, SystemParams) {
	if len(waysGrid) == 0 {
		waysGrid = []int{0}
	}
	var best Result
	bestP := p
	first := true
	for _, w := range waysGrid {
		for cr := 1; cr < p.Workers; cr++ {
			cand := p
			cand.CRWorkers = cr
			cand.MRWays = w
			sys := mk()
			sys.P = cand
			sys.applyCLOS()
			sys.configureHot(cand.HotItems)
			r := sys.Run(warm, n)
			if first || r.Mops(p.HW) > best.Mops(p.HW) {
				best, bestP, first = r, cand, false
			}
		}
	}
	return best, bestP
}
