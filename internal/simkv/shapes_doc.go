package simkv

// This file documents the calibration constants' provenance so future
// changes keep the shape tests meaningful.
//
// The cost model separates three kinds of per-request cost:
//
//  1. Memory-hierarchy cycles — computed by internal/simhw from actual
//     cache state (L1/LLC hit/miss, coherence pulls, way-mask fills).
//     These dominate and are where every headline effect lives: RX-buffer
//     dwell misses under run-to-completion, hot-item residency under CR-
//     exclusive ways, index pointer chasing, MLP-overlapped batch misses.
//
//  2. Fixed CPU work (cyclesPoll/Parse/Respond/IndexCPU/Coro/RingPush/
//     RingPop) — small constants in the tens of cycles, approximating
//     straight-line instruction work per step on an Ice Lake-class core.
//
//  3. Structural penalties with published grounding:
//     - cyclesICache (monolithic front-end stalls): §2.2.1 "TPS reduces
//       the instruction cache footprint for each worker thread".
//     - lockTable handoff ∝ contenders (TTAS retry storms): drives the
//       Figure 2c share-everything collapse and the benefit of throttling
//       the MR pool.
//     - deliveryLead (DMA precedes poll by the in-flight window): exposes
//       RX lines to eviction between DDIO write and poll, §2.2.1's
//       "DDIO-initiated cache misses".
//
// Calibration anchors (quick scale, seeds fixed):
//   - Fig 2a TPS/TPQ ∈ [1.0, 1.6] across item sizes (paper: 1.22–1.54).
//   - Fig 7 μTPS/BaseKV ∈ [0.9, 7] everywhere; > 1 on skewed tree reads
//     (paper band: 1.03–5.46).
//   - eRPC beats BaseKV on uniform small-item hash and loses under skew.
//   - Sherman bandwidth-bound at 1 KB.
// Changing any constant requires re-running `go test ./internal/bench` —
// the shape tests are the regression net.
