package simkv

import (
	"mutps/internal/simhw"
	"mutps/internal/workload"
)

// Passive KVSs (RaceHash, Sherman) bypass the server CPU entirely: clients
// locate and fetch items with one-sided RDMA verbs. Their throughput is
// therefore bounded by the NIC's verb rate and line rate, not by server
// cache behaviour, so they are modelled analytically: verbs per operation ×
// a small-message verb-rate ceiling, plus the bandwidth cap. This matches
// how the paper explains their results ("they require multiple one-sided
// verbs to locate a KV item"; Sherman at 1 KB "is primarily constrained by
// network bandwidth").
type PassiveKind int

// The two passive baselines of Figure 7.
const (
	RaceHash PassiveKind = iota // one-sided extendible hashing
	Sherman                     // one-sided B+-tree with client-side caches
)

// PassiveParams configures the analytic model.
type PassiveParams struct {
	HW       simhw.Params
	Kind     PassiveKind
	ItemSize int
	// VerbRate is the RNIC's small-message one-sided op ceiling (ops/s).
	// CX-6-class NICs sustain on the order of 50–80 M reads/s; the default
	// (60 M) reproduces the paper's relative placement.
	VerbRate float64
}

// verbsPerOp returns the average one-sided verbs needed per operation.
func (p PassiveParams) verbsPerOp(op workload.OpType) float64 {
	switch p.Kind {
	case RaceHash:
		// Race hashing: read the (combined) bucket group, then the item;
		// writes add a CAS on the slot and the item write.
		if op == workload.OpGet {
			return 2
		}
		return 4
	default: // Sherman
		// Internal nodes are cached client-side: reads touch the leaf and
		// the item; writes add lock acquisition/release one-sided ops.
		if op == workload.OpGet {
			return 2
		}
		if op == workload.OpScan {
			return 3 // leaf chain reads; items arrive in bulk
		}
		return 5
	}
}

// RunPassive evaluates the analytic model on n generated requests and
// returns throughput in Mops plus whether the bandwidth bound was the
// limiter.
func RunPassive(p PassiveParams, gen *workload.Generator, n int) (mops float64, bwLimited bool) {
	if p.VerbRate == 0 {
		p.VerbRate = 60e6
	}
	var verbs, bytes float64
	for i := 0; i < n; i++ {
		r := gen.Next()
		v := p.verbsPerOp(r.Op)
		verbs += v
		// Every verb moves a header; item-carrying verbs move the value.
		bytes += v*64 + float64(p.ItemSize)
		if r.Op == workload.OpScan {
			bytes += float64(r.ScanCount * p.ItemSize)
		}
	}
	// Time to issue all verbs at the verb ceiling vs move all bytes at
	// line rate; clients pipeline perfectly (best case for the baseline).
	opSecs := verbs / p.VerbRate
	bwSecs := bytes / (p.HW.NICGbps * 1e9 / 8)
	secs := opSecs
	if bwSecs > secs {
		secs = bwSecs
		bwLimited = true
	}
	return float64(n) / secs / 1e6, bwLimited
}
