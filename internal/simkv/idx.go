package simkv

import "mutps/internal/simhw"

// simIndex computes the cache-line addresses a lookup of key would chase.
// The structures are pre-populated and static: YCSB-style workloads update
// values in place, so structural modifications are not modelled.
type simIndex interface {
	// PathAddrs appends the node-line addresses dereferenced while
	// locating key, one per pointer-chase level, and returns the extended
	// slice.
	PathAddrs(dst []uint64, key uint64) []uint64
	// Depth returns the pointer-chase depth (len of a path).
	Depth() int
	// FootprintBytes returns the total index size, for reporting.
	FootprintBytes() uint64
}

// itemLayout computes where item records live in the simulated data region.
type itemLayout struct {
	base     uint64
	slotSize uint64
	size     int
}

// newItemLayout lays out n items of the given value size. Each slot holds a
// 16-byte header plus the value, rounded to cache lines so items do not
// share lines (as real allocators align them).
func newItemLayout(base uint64, size int) *itemLayout {
	slot := uint64(16+size+63) &^ 63
	return &itemLayout{base: base, slotSize: slot, size: size}
}

// Addr returns the item record address for key.
func (l *itemLayout) Addr(key uint64) uint64 { return l.base + key*l.slotSize }

// Bytes returns the bytes read or written when copying the value.
func (l *itemLayout) Bytes() uint64 { return uint64(l.size) }

// simCuckoo models a bucketized cuckoo hash table: two candidate buckets
// per key, each one cache line (4 tags + pointers), with the item found in
// the first bucket with probability hit1.
type simCuckoo struct {
	base    uint64
	buckets uint64
}

// newSimCuckoo sizes the table at 2x occupancy like libcuckoo defaults.
func newSimCuckoo(base uint64, keys uint64) *simCuckoo {
	n := uint64(16)
	for n < keys/2 { // 4 slots per bucket at ~50% load
		n <<= 1
	}
	return &simCuckoo{base: base, buckets: n}
}

func mix(k, seed uint64) uint64 {
	k ^= seed
	k ^= k >> 33
	k *= 0xFF51AFD7ED558CCD
	k ^= k >> 33
	return k
}

// PathAddrs: the primary bucket line; half the keys also probe the
// alternate bucket (deterministic by key parity of the hash to stay
// reproducible).
func (c *simCuckoo) PathAddrs(dst []uint64, key uint64) []uint64 {
	h1 := mix(key, 0x9E3779B97F4A7C15)
	b1 := h1 % c.buckets
	dst = append(dst, c.base+b1*64)
	if h1&1 == 1 { // ~50%: key resides in its second bucket
		b2 := mix(key, 0xC2B2AE3D27D4EB4F) % c.buckets
		dst = append(dst, c.base+b2*64)
	}
	return dst
}

func (c *simCuckoo) Depth() int { return 2 }

func (c *simCuckoo) FootprintBytes() uint64 { return c.buckets * 64 }

// simBTree models a static B+-tree over keys [0, n): fanout-f nodes, one
// line accessed per level (the paper's pointer-chase cost), leaves in key
// order so scans walk consecutive leaves.
type simBTree struct {
	base    uint64
	keys    uint64
	fanout  uint64
	levels  []uint64 // node count per level, root first
	offsets []uint64 // address offset of each level
	nodeSz  uint64
}

// newSimBTree builds the level geometry for n keys with fanout 16 and
// 256-byte nodes (4 lines; one line is touched per visited node, plus one
// extra for the intra-node binary search on wide nodes).
func newSimBTree(base uint64, keys uint64) *simBTree {
	t := &simBTree{base: base, keys: keys, fanout: 16, nodeSz: 256}
	n := (keys + t.fanout - 1) / t.fanout // leaves
	var levels []uint64
	for {
		levels = append([]uint64{n}, levels...)
		if n == 1 {
			break
		}
		n = (n + t.fanout - 1) / t.fanout
	}
	t.levels = levels
	t.offsets = make([]uint64, len(levels))
	var off uint64
	for i, cnt := range levels {
		t.offsets[i] = off
		off += cnt * t.nodeSz
	}
	return t
}

// nodeAddr returns the address of node idx at level l (0 = root level).
func (t *simBTree) nodeAddr(l int, idx uint64) uint64 {
	return t.base + t.offsets[l] + idx*t.nodeSz
}

// PathAddrs walks root→leaf; the node index at each level follows from the
// key's position in the sorted keyspace (keys are 0..n-1 after load).
func (t *simBTree) PathAddrs(dst []uint64, key uint64) []uint64 {
	if key >= t.keys {
		key = t.keys - 1
	}
	start := len(dst)
	idx := key / t.fanout
	for l := len(t.levels) - 1; l >= 0; l-- {
		dst = append(dst, t.nodeAddr(l, idx))
		idx /= t.fanout
	}
	// Reverse the appended segment to root-first order.
	for i, j := start, len(dst)-1; i < j; i, j = i+1, j-1 {
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}

func (t *simBTree) Depth() int { return len(t.levels) }

func (t *simBTree) FootprintBytes() uint64 {
	var total uint64
	for _, c := range t.levels {
		total += c * t.nodeSz
	}
	return total
}

// LeafAddrs appends the leaf-line addresses covering count consecutive keys
// starting at key — the scan path.
func (t *simBTree) LeafAddrs(dst []uint64, key uint64, count int) []uint64 {
	first := key / t.fanout
	last := (key + uint64(count) - 1) / t.fanout
	lvl := len(t.levels) - 1
	for leaf := first; leaf <= last; leaf++ {
		if leaf >= t.levels[lvl] {
			break
		}
		dst = append(dst, t.nodeAddr(lvl, leaf))
	}
	return dst
}

// hotIndexLayout is the CR layer's compact hot-set index: a sorted array of
// 16-byte entries (tree engines) or an open-addressed table (hash
// engines); either way lookups touch O(1)-ish lines inside a small
// dedicated region that stays cache-resident.
type hotIndexLayout struct {
	base    uint64
	entries int
	sorted  bool
}

func newHotIndexLayout(base uint64, entries int, sorted bool) *hotIndexLayout {
	return &hotIndexLayout{base: base, entries: entries, sorted: sorted}
}

// LookupAddrs returns the lines touched by a hot-index probe for key.
func (h *hotIndexLayout) LookupAddrs(dst []uint64, key uint64) []uint64 {
	if h.entries == 0 {
		return dst
	}
	span := uint64(h.entries) * 16
	if h.sorted {
		// Binary search: the first few levels share a handful of hot
		// lines; model the final two distinct line touches.
		mid := h.base + (mix(key, 7)%span)&^63
		dst = append(dst, h.base, mid)
		return dst
	}
	dst = append(dst, h.base+(mix(key, 7)%span)&^63)
	return dst
}

// FootprintBytes returns the hot index size.
func (h *hotIndexLayout) FootprintBytes() uint64 { return uint64(h.entries) * 16 }

var _ = simhw.RegionIdxBase // region constants used by callers
