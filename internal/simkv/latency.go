package simkv

import (
	"container/heap"
	"sort"

	"mutps/internal/simhw"
	"mutps/internal/workload"
)

// LatencyResult reports a closed-loop run (Fig. 10): achieved throughput
// and median / tail response times.
type LatencyResult struct {
	Mops    float64
	P50Usec float64
	P99Usec float64
}

type sendEvent struct {
	at     uint64 // cycles at which the client transmits
	client int
}

type sendHeap []sendEvent

func (h sendHeap) Len() int           { return len(h) }
func (h sendHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h sendHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *sendHeap) Push(x any)        { *h = append(*h, x.(sendEvent)) }
func (h *sendHeap) Pop() any          { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

// inflight tracks one outstanding request per closed-loop client.
type inflight struct {
	req     simReq
	sentAt  uint64
	availAt uint64 // arrival at the server (sentAt + rtt/2)
	ready   bool
}

// RunLatency drives the system with `clients` closed-loop clients (one
// outstanding request each) for totalOps operations and reports throughput
// against P50/P99 latency. rttNanos is the full network round trip added
// to every request. Supported archs: ArchMuTPS, ArchRTC, ArchERPC.
func (s *System) RunLatency(clients, totalOps int, rttNanos float64) LatencyResult {
	halfRTT := s.P.HW.NanosToCycles(rttNanos / 2)
	gen := s.gen
	pending := &sendHeap{}
	for c := 0; c < clients; c++ {
		heap.Push(pending, sendEvent{at: s.maxNow(), client: c})
	}
	slots := make([]inflight, 0, totalOps+clients)
	latencies := make([]uint64, 0, totalOps)
	completed := 0
	var lastDone uint64
	start := s.maxNow()

	// ensureSlot materializes the request occupying global slot index i by
	// admitting the earliest pending client send. It returns false when no
	// client is ready to occupy it yet.
	ensureSlot := func(i int) bool {
		for len(slots) <= i {
			if pending.Len() == 0 {
				return false
			}
			ev := heap.Pop(pending).(sendEvent)
			r := gen.Next()
			size := r.ValueSize
			if r.Op == workload.OpScan {
				size = r.ScanCount
			}
			slots = append(slots, inflight{
				req:     simReq{key: r.Key, op: r.Op, size: size, slot: uint64(len(slots))},
				sentAt:  ev.at,
				availAt: ev.at + halfRTT,
				ready:   true,
			})
		}
		return true
	}

	complete := func(i int, at uint64) {
		fl := &slots[i]
		recv := at + halfRTT
		latencies = append(latencies, recv-fl.sentAt)
		completed++
		if recv > lastDone {
			lastDone = recv
		}
		heap.Push(pending, sendEvent{at: recv, client: 0})
	}

	nCR := s.P.Workers
	isMuTPS := s.A == ArchMuTPS
	if isMuTPS {
		nCR = s.P.CRWorkers
	}
	nMR := s.P.Workers - nCR

	eng := s.newEngine()
	type fwd struct {
		idx     int // slot index
		readyAt uint64
	}
	queues := make([][][]fwd, s.P.Workers) // per MR core, FIFO of batches
	activeCR := nCR
	sc := make([]*coreScratch, s.P.Workers)
	for i := range sc {
		sc[i] = &coreScratch{}
	}

	for c := 0; c < nCR; c++ {
		c := c
		next := c
		var local []fwd
		pushes := 0
		flush := func(core *simhw.Core) {
			if len(local) == 0 || nMR == 0 {
				return
			}
			mr := nCR + pushes%nMR
			pushes++
			addr := s.ringSlotAddr(c, mr, uint64(pushes))
			core.Time += s.HW.AccessRange(core.ID, addr, uint64(16*len(local)), true) + cyclesRingPush
			b := make([]fwd, len(local))
			copy(b, local)
			for i := range b {
				b[i].readyAt = core.Time
			}
			local = local[:0]
			queues[mr] = append(queues[mr], b)
		}
		eng.Cores[c].Step = func(core *simhw.Core) bool {
			if completed >= totalOps {
				return false
			}
			if !ensureSlot(next) {
				flush(core)
				core.Time += cyclesIdle
				return true
			}
			fl := &slots[next]
			if fl.availAt > core.Time {
				// Nothing to poll yet; flush the partial batch rather than
				// holding requests hostage to the batching threshold.
				flush(core)
				core.Time += cyclesIdle
				if fl.availAt > core.Time {
					core.Time = fl.availAt
				}
			}
			idx := next
			next += activeCR
			r := fl.req
			rxAddr := s.rxAddr(core.ID, r.slot)
			s.NIC.DeliverRequest(rxAddr, reqBytes(r.op, s.P.ItemSize))
			core.Time += cyclesPoll + cyclesParse
			core.Time += s.HW.AccessRange(core.ID, rxAddr, rxHeaderBytes, false)
			if isMuTPS && s.hot[r.key] && (r.op == workload.OpGet || r.op == workload.OpPut) {
				if r.op == workload.OpPut {
					core.Time += s.HW.AccessRange(core.ID, rxAddr+rxHeaderBytes, uint64(s.P.ItemSize), false)
				}
				core.Time += s.serveItem(core, &r, true)
				core.Time += s.respond(core, &r, sc[c].respCounter)
				sc[c].respCounter++
				complete(idx, core.Time)
				return true
			}
			if !isMuTPS {
				// Run-to-completion: do the whole thing here, paying the
				// monolithic front-end penalty.
				core.Time += cyclesICache
				batch := []simReq{r}
				s.mrBatch(core, batch, sc[c], s.A != ArchERPC, false)
				complete(idx, core.Time)
				return true
			}
			local = append(local, fwd{idx: idx})
			if len(local) >= s.P.BatchSize {
				flush(core)
			}
			return true
		}
	}
	if isMuTPS {
		for m := nCR; m < s.P.Workers; m++ {
			m := m
			eng.Cores[m].Step = func(core *simhw.Core) bool {
				if completed >= totalOps {
					return false
				}
				if len(queues[m]) == 0 {
					core.Time += cyclesIdle
					return true
				}
				b := queues[m][0]
				queues[m] = queues[m][1:]
				if b[0].readyAt > core.Time {
					core.Time = b[0].readyAt
				}
				core.Time += s.HW.AccessRange(core.ID, s.ringSlotAddr(0, m, 0), uint64(16*len(b)), false) + cyclesRingPop
				batch := make([]simReq, len(b))
				for i := range b {
					batch[i] = slots[b[i].idx].req
				}
				s.mrBatch(core, batch, sc[m], true, true)
				for i := range b {
					complete(b[i].idx, core.Time)
				}
				return true
			}
		}
	}

	eng.Run(^uint64(0))
	s.saveClocks(eng)

	if len(latencies) == 0 {
		return LatencyResult{}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p50 := latencies[len(latencies)/2]
	p99 := latencies[(len(latencies)*99)/100]
	secs := s.P.HW.CyclesToNanos(lastDone-start) / 1e9
	return LatencyResult{
		Mops:    float64(completed) / secs / 1e6,
		P50Usec: s.P.HW.CyclesToNanos(p50) / 1e3,
		P99Usec: s.P.HW.CyclesToNanos(p99) / 1e3,
	}
}

func (s *System) maxNow() uint64 {
	var m uint64
	for _, t := range s.now {
		if t > m {
			m = t
		}
	}
	return m
}
