package simkv

import (
	"mutps/internal/simhw"
	"mutps/internal/tuner"
	"mutps/internal/workload"
)

// SweepPoint is one workload grid point of the offline prior sweep: a
// named op mix at a fixed value size and skew.
type SweepPoint struct {
	Name      string
	Mix       workload.Mix
	Theta     float64
	ValueSize int
}

// DefaultSweepGrid spans the scenario matrix's workload space: the YCSB
// mixes the dynamic scenarios switch between, crossed with the value
// sizes the size-shift scenario traverses. Each point maps to one
// workload signature in the prior table, so a live shift onto any of
// these regimes finds a pre-computed starting configuration.
func DefaultSweepGrid() []SweepPoint {
	// One mix per signature bucket: YCSB-B (95% get) rounds to the same
	// r100 class as YCSB-C, so C's entry covers both; a 70/30 point fills
	// the gap between the balanced and read-mostly regimes.
	mixes := []struct {
		name string
		mix  workload.Mix
	}{
		{"ycsb-a", workload.MixYCSBA},
		{"read-heavy", workload.Mix{GetFrac: 0.7}},
		{"ycsb-c", workload.MixYCSBC},
		{"ycsb-e", workload.MixYCSBE},
	}
	sizes := []int{8, 64, 512}
	grid := make([]SweepPoint, 0, len(mixes)*len(sizes))
	for _, m := range mixes {
		for _, sz := range sizes {
			grid = append(grid, SweepPoint{
				Name:      m.name,
				Mix:       m.mix,
				Theta:     0.99,
				ValueSize: sz,
			})
		}
	}
	return grid
}

// SweepParams returns the simulated machine used for prior sweeps: small
// enough that a full grid finishes in seconds, but with the 1.5 MB LLC /
// 200k-key ratio that makes the cache-vs-split trade-off non-trivial (a
// hot set that fits trivially would make every prior degenerate).
func SweepParams() SystemParams {
	hw := simhw.DefaultParams()
	hw.Cores = 8
	hw.LLCSets = 2048
	return SystemParams{
		HW:        hw,
		Keys:      200_000,
		ItemSize:  64,
		Workers:   8,
		BatchSize: 8,
		CRWorkers: 2,
		HotItems:  2000,
		MRWays:    8,
	}
}

// SweepPriors runs the full auto-tuner at every grid point against a
// fresh simulated system and returns the per-signature best-known
// configurations (Source "simkv"). The signature for each point is
// derived exactly as the live store derives it from traffic — read and
// scan fractions plus the value-size class — so an online lookup under a
// matching workload hits the sweep's entry.
//
// window overrides the per-probe simulated request count (0 = default).
func SweepPriors(p SystemParams, grid []SweepPoint, window int, seed uint64) *tuner.Priors {
	priors := tuner.NewPriors()
	for i, pt := range grid {
		sp := p
		sp.ItemSize = pt.ValueSize
		wl := workload.Config{
			Keys:      sp.Keys,
			Theta:     pt.Theta,
			Mix:       pt.Mix,
			ValueSize: workload.FixedSize(pt.ValueSize),
			Seed:      seed + uint64(i),
		}
		sys := NewSystem(sp, ArchMuTPS, workload.NewGenerator(wl))
		res := tuner.Optimize(&Tunable{S: sys, Window: window})
		sig := tuner.MakeSignature(pt.Mix.GetFrac, pt.Mix.ScanFrac, float64(pt.ValueSize))
		priors.Update(sig, tuner.Prior{Config: res.Best, Score: res.Score, Source: "simkv"})
	}
	return priors
}
