// Package simkv runs the paper's evaluation on the simulated hardware of
// internal/simhw. It models μTPS and every compared system — BaseKV (the
// run-to-completion baseline with reconfigurable RPC, batching and
// prefetching enabled), eRPCKV (shared-nothing, key-mod dispatch), and the
// passive one-sided-RDMA stores RaceHash and Sherman — at the granularity
// of cache-line accesses, so the cache-state phenomena that drive the
// paper's results (RX-buffer thrashing, hot-set residency, way-partition
// interactions, lock contention) emerge from the model rather than being
// asserted.
//
// Simulated data structures do not store data: they compute the addresses
// a real implementation would touch, and the simhw cache hierarchy charges
// cycles. Throughput is ops divided by the slowest core's virtual clock;
// all runs are deterministic given the workload seed.
package simkv

import (
	"mutps/internal/simhw"
	"mutps/internal/workload"
)

// CPU work constants (cycles) for the non-memory parts of request
// processing. These are rough Ice Lake-era figures; only their relative
// magnitudes matter for shape reproduction.
const (
	cyclesPoll     = 30  // check a receive-slot header
	cyclesParse    = 50  // decode the request
	cyclesRespond  = 40  // build the response descriptor, post send
	cyclesIndexCPU = 25  // per-node key comparisons during index traversal
	cyclesRingPush = 40  // CR-MR queue push (per batch)
	cyclesRingPop  = 40  // CR-MR queue pop (per batch)
	cyclesCoro     = 12  // stackless-coroutine switch
	cyclesLockHold = 150 // item lock hold: version bumps + store fences under invalidation
	cyclesIdle     = 200 // idle-poll quantum when no work is available
	rxHeaderBytes  = 32  // request header in a receive slot

	// cyclesICache charges run-to-completion workers for executing the
	// entire monolithic request path on one core: the paper calls out that
	// "TPS reduces the instruction cache footprint for each worker
	// thread"; a full KVS pass (RPC framing, index traversal, item access,
	// concurrency control, response building) overflows a 32 KB L1i and
	// stalls the front end, where each μTPS stage stays resident.
	cyclesICache = 200

	// cyclesScanMerge is the per-item cost of merging scatter-gathered
	// range-query fragments in a shared-nothing store, where consecutive
	// keys live on different shards.
	cyclesScanMerge = 8
)

// SystemParams configures one simulated KVS run.
type SystemParams struct {
	HW        simhw.Params
	Keys      uint64 // pre-populated items
	ItemSize  int    // value bytes
	Workers   int    // server cores in use
	BatchSize int    // CR-MR / indexing batch
	TreeIndex bool   // B+-tree (μTPS-T) vs cuckoo hash (μTPS-H)

	// μTPS-specific knobs (ignored by baselines).
	CRWorkers int // cores at the cache-resident layer
	HotItems  int // hot-set size cached at the CR layer
	MRWays    int // LLC ways the MR layer may allocate into (0 = all)
}

// Result reports one simulated run.
type Result struct {
	Ops    uint64
	Cycles uint64 // slowest core's busy time over the measured window

	// Per-layer LLC miss rates (probes that reached DRAM), matching what
	// the paper measures with PCM. For RTC systems both describe the same
	// worker pool.
	CRMissRate float64
	MRMissRate float64

	BWLimited bool // throughput was capped by the 200 Gbps line rate
}

// Mops returns throughput in million operations per second.
func (r Result) Mops(hw simhw.Params) float64 {
	if r.Cycles == 0 {
		return 0
	}
	secs := hw.CyclesToNanos(r.Cycles) / 1e9
	return float64(r.Ops) / secs / 1e6
}

// applyBandwidthCap clamps the result to the NIC line rate: if moving the
// bytes takes longer than the CPU did, the network is the bottleneck.
func (r *Result) applyBandwidthCap(n *simhw.NIC) {
	min := n.MinCyclesToMove()
	if min > r.Cycles {
		r.Cycles = min
		r.BWLimited = true
	}
}

// reqBytes returns the wire payload of a request as it lands in a receive
// slot: header plus the value for puts.
func reqBytes(op workload.OpType, itemSize int) uint64 {
	if op == workload.OpPut {
		return uint64(rxHeaderBytes + itemSize)
	}
	return rxHeaderBytes
}

// respBytes returns the response payload: header plus the value for gets,
// or scanned items for scans.
func respBytes(op workload.OpType, itemSize, scanned int) uint64 {
	switch op {
	case workload.OpGet:
		return uint64(rxHeaderBytes + itemSize)
	case workload.OpScan:
		return uint64(rxHeaderBytes + scanned*itemSize)
	default:
		return rxHeaderBytes
	}
}

// lockTable models per-item write locks: a map from item address to the
// cycle at which the lock frees. A contended handoff pays a penalty that
// grows with the number of cores in the put path, modelling the CAS retry
// storm on the lock line (spinners hammering the line delay the holder's
// release and the next acquirer's CAS — the classic TTAS degradation that
// drives the paper's Figure 2c share-everything collapse).
type lockTable struct {
	freeAt     map[uint64]uint64
	coher      uint64
	contenders uint64 // worker threads that may contend on item locks
}

func newLockTable(coherLat uint64) *lockTable {
	return &lockTable{
		freeAt: make(map[uint64]uint64),
		coher:  coherLat,
	}
}

// setContenders records how many cores run the locking put path.
func (lt *lockTable) setContenders(n int) {
	if n < 1 {
		n = 1
	}
	lt.contenders = uint64(n)
}

// acquire blocks virtual time until the item lock frees, then holds it for
// holdCycles. It returns the core's new clock value.
func (lt *lockTable) acquire(now uint64, itemAddr uint64, holdCycles uint64) uint64 {
	free := lt.freeAt[itemAddr]
	if free > now {
		// Contended handoff: wait for release, then pay the retry-storm
		// arbitration cost proportional to the contender pool.
		now = free + lt.coher*lt.contenders
	} else {
		now += lt.coher // uncontended CAS still pulls the line
	}
	lt.freeAt[itemAddr] = now + holdCycles
	return now + holdCycles
}
