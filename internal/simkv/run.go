package simkv

import (
	"mutps/internal/simhw"
	"mutps/internal/workload"
)

// simReq is one pre-generated request flowing through a simulated system.
type simReq struct {
	key  uint64
	op   workload.OpType
	size int // value bytes (puts/gets), items (scans)
	slot uint64
}

// genReqs pre-generates n requests so that slot index → request is a pure
// function (workers claim slots out of order across cores).
func genReqs(gen *workload.Generator, n int) []simReq {
	out := make([]simReq, n)
	for i := range out {
		r := gen.Next()
		size := r.ValueSize
		if r.Op == workload.OpScan {
			size = r.ScanCount
		}
		out[i] = simReq{key: r.Key, op: r.Op, size: size, slot: uint64(i)}
	}
	return out
}

// Arch selects the simulated thread architecture.
type Arch int

// Simulated systems (Fig. 7's competitors plus the Fig. 2 specials).
const (
	ArchMuTPS  Arch = iota // the paper's system
	ArchRTC                // BaseKV: run-to-completion, share-everything
	ArchERPC               // eRPCKV: run-to-completion, shared-nothing
	ArchRTCCAT             // Fig 2a: RTC with workers fenced off the DDIO ways
	ArchReplay             // Fig 2a: two-stage TPS with deterministic replay (no queues)
)

// System is a simulated KVS instance. Hardware state (caches) persists
// across Run calls so tuning and dynamic-workload experiments see warm
// steady states.
type System struct {
	P   SystemParams
	A   Arch
	HW  *simhw.Hierarchy
	NIC *simhw.NIC

	idx    simIndex
	tree   *simBTree // non-nil when TreeIndex
	items  *itemLayout
	hotIdx *hotIndexLayout
	hot    map[uint64]bool
	gen    *workload.Generator
	locks  *lockTable

	rxSlotSize uint64
	rxSlots    uint64

	// Per-core virtual clocks, persisted across Run/Measure calls so lock
	// release times and cache state stay on one consistent timeline.
	now []uint64

	// Per-worker private RX regions for eRPC's shared-nothing layout
	// (15 MB per worker, as eRPC allocates).
	erpcRXStride uint64
}

// rxRingBytesShare sizes the shared receive ring at a third of the LLC so
// it can stay cache-resident, as the paper's reconfigurable RPC intends;
// slot counts are clamped to a sane range.
func rxRingSlotsFor(hw simhw.Params, slotSize uint64) uint64 {
	budget := hw.LineSize() * uint64(hw.LLCSets) * uint64(hw.LLCWays) / 3
	n := budget / slotSize
	if n < 512 {
		n = 512
	}
	if n > 2048 {
		n = 2048
	}
	return n
}

// NewSystem builds a simulated KVS over a fresh hardware model.
func NewSystem(p SystemParams, arch Arch, gen *workload.Generator) *System {
	hw := simhw.NewHierarchy(p.HW)
	s := &System{
		P:   p,
		A:   arch,
		HW:  hw,
		NIC: simhw.NewNIC(hw),
		gen: gen,
	}
	if p.TreeIndex {
		t := newSimBTree(simhw.RegionIdxBase, p.Keys)
		s.idx, s.tree = t, t
	} else {
		s.idx = newSimCuckoo(simhw.RegionIdxBase, p.Keys)
	}
	s.items = newItemLayout(simhw.RegionDataBase, p.ItemSize)
	s.locks = newLockTable(p.HW.CoherLat)
	s.rxSlotSize = (uint64(rxHeaderBytes+p.ItemSize) + 63) &^ 63
	s.rxSlots = rxRingSlotsFor(p.HW, s.rxSlotSize)
	s.erpcRXStride = 15 << 20

	s.now = make([]uint64, p.Workers)
	s.locks.setContenders(p.Workers)
	s.configureHot(p.HotItems)
	s.applyCLOS()
	return s
}

// configureHot installs the hot set: the K hottest keys by workload rank
// (the hotset package validates the tracking machinery on the real store;
// the simulation uses the ideal hot set directly).
func (s *System) configureHot(k int) {
	s.P.HotItems = k
	s.hot = make(map[uint64]bool, k)
	if s.A != ArchMuTPS || k <= 0 {
		s.hotIdx = newHotIndexLayout(simhw.RegionHotBase, 0, s.P.TreeIndex)
		return
	}
	for _, key := range s.gen.HotKeys(k) {
		s.hot[key] = true
	}
	s.hotIdx = newHotIndexLayout(simhw.RegionHotBase, k, s.P.TreeIndex)
}

// applyCLOS assigns LLC way masks per the architecture: μTPS gives CR
// cores every way and restricts MR cores to the rightmost MRWays; the CAT
// variant fences all workers off the DDIO ways; other systems share all
// ways.
func (s *System) applyCLOS() {
	all := simhw.AllWays(s.P.HW.LLCWays)
	for c := 0; c < s.P.HW.Cores; c++ {
		s.HW.SetCLOS(c, all)
	}
	switch s.A {
	case ArchMuTPS:
		if s.P.MRWays > 0 && s.P.MRWays < s.P.HW.LLCWays {
			mask := simhw.RightmostWays(s.P.HW.LLCWays, s.P.MRWays)
			for c := s.P.CRWorkers; c < s.P.Workers; c++ {
				s.HW.SetCLOS(c, mask)
			}
		}
	case ArchRTCCAT:
		mask := all &^ s.HW.DDIOMask()
		for c := 0; c < s.P.Workers; c++ {
			s.HW.SetCLOS(c, mask)
		}
	}
}

// SetSplit adjusts the μTPS CR/MR core division.
func (s *System) SetSplit(nCR int) {
	s.P.CRWorkers = nCR
	s.applyCLOS()
}

// SetMRWays adjusts the LLC ways granted to the MR layer.
func (s *System) SetMRWays(w int) {
	s.P.MRWays = w
	s.applyCLOS()
}

// SetHotItems re-derives the hot set at a new size.
func (s *System) SetHotItems(k int) { s.configureHot(k) }

// SetItemSize changes the value size (the Fig. 14 dynamic-workload shift).
func (s *System) SetItemSize(size int) {
	s.P.ItemSize = size
	s.items = newItemLayout(simhw.RegionDataBase, size)
	s.rxSlotSize = (uint64(rxHeaderBytes+size) + 63) &^ 63
	s.rxSlots = rxRingSlotsFor(s.P.HW, s.rxSlotSize)
}

func (s *System) rxAddr(core int, slot uint64) uint64 {
	if s.A == ArchERPC {
		// Per-worker private RX ring inside eRPC's 15 MB buffer region.
		// The descriptor ring itself is short (512 entries) and reused
		// rapidly, which is why eRPC's RX path stays cache-friendly even
		// though its total buffer reservation is large.
		const erpcRingSlots = 512
		base := simhw.RegionRXBase + uint64(core)*s.erpcRXStride
		return base + (slot%erpcRingSlots)*s.rxSlotSize
	}
	return simhw.RegionRXBase + (slot%s.rxSlots)*s.rxSlotSize
}

func (s *System) respAddr(core int, counter uint64) uint64 {
	const respRegion = 64 << 10 // 64 KB per worker, reused across batches
	sz := (uint64(rxHeaderBytes+s.P.ItemSize) + 63) &^ 63
	per := respRegion / sz
	if per == 0 {
		per = 1
	}
	return simhw.RegionRespBase + uint64(core)<<20 + (counter%per)*sz
}

func (s *System) ringSlotAddr(cr, mr int, seq uint64) uint64 {
	const slotsPerRing = 64
	ringStride := uint64(slotsPerRing) * 64 * 8 // slot up to 8 lines
	base := simhw.RegionRingBase + uint64(cr*s.P.Workers+mr)*ringStride
	return base + (seq%slotsPerRing)*64*8
}

// serveItem charges the data access for one request at core and returns
// the added cycles. Write ops go through the item lock when locked is
// true; core.Time must already include previously charged cycles.
func (s *System) serveItem(core *simhw.Core, r *simReq, locked bool) uint64 {
	addr := s.items.Addr(r.key)
	var cycles uint64
	switch r.op {
	case workload.OpGet:
		cycles += s.HW.AccessRange(core.ID, addr, s.items.Bytes()+16, false)
	case workload.OpPut, workload.OpDelete:
		if locked && s.P.ItemSize > 8 {
			// Serialize through the item lock: copy time is charged as
			// the hold; the acquire models CAS/coherence and waiting.
			copyCycles := s.HW.AccessRange(core.ID, addr, s.items.Bytes()+16, true) + cyclesLockHold
			core.Time = s.locks.acquire(core.Time+cycles, addr, copyCycles)
			return 0 // time already advanced
		}
		cycles += s.HW.AccessRange(core.ID, addr, s.items.Bytes()+16, true)
	}
	return cycles
}

// respond charges building and posting a response (gets and scans carry
// the value back; puts/deletes a header) and accounts NIC TX bytes.
func (s *System) respond(core *simhw.Core, r *simReq, counter uint64) uint64 {
	bytes := respBytes(r.op, s.P.ItemSize, r.size)
	var cycles uint64
	if r.op == workload.OpGet || r.op == workload.OpScan {
		cycles += s.HW.AccessRange(core.ID, s.respAddr(core.ID, counter), bytes, true)
	}
	s.NIC.SendResponse(s.respAddr(core.ID, counter), bytes)
	return cycles + cyclesRespond
}
