package simkv

import (
	"mutps/internal/simhw"
	"mutps/internal/workload"
)

// coreScratch is per-core reusable working memory for batch processing.
type coreScratch struct {
	paths       [][]uint64
	addrs       []uint64
	respCounter uint64
}

// mrBatch charges one batch of index+data work at core: level-by-level
// batched index traversal (software prefetch + coroutine interleaving →
// overlapped misses), then per-item data access, then responses. locked
// selects share-everything item locking for writes; readRX models the MR
// layer fetching put payloads from the receive buffer (the cross-layer
// coherence traffic the paper describes).
func (s *System) mrBatch(core *simhw.Core, batch []simReq, sc *coreScratch, locked, readRX bool) {
	var cycles uint64
	if readRX {
		for i := range batch {
			if batch[i].op == workload.OpPut {
				cycles += s.HW.AccessRange(core.ID,
					s.rxAddr(core.ID, batch[i].slot)+rxHeaderBytes,
					uint64(s.P.ItemSize), false)
			}
		}
	}

	// Batched indexing: one AccessBatch per tree level across the batch.
	sc.paths = sc.paths[:0]
	maxDepth := 0
	for i := range batch {
		var p []uint64
		if batch[i].op == workload.OpScan && s.tree != nil {
			p = s.tree.PathAddrs(nil, batch[i].key)
		} else {
			p = s.idx.PathAddrs(nil, batch[i].key)
		}
		sc.paths = append(sc.paths, p)
		if len(p) > maxDepth {
			maxDepth = len(p)
		}
	}
	for l := 0; l < maxDepth; l++ {
		sc.addrs = sc.addrs[:0]
		for _, p := range sc.paths {
			if l < len(p) {
				sc.addrs = append(sc.addrs, p[l])
			}
		}
		cycles += s.HW.AccessBatch(core.ID, sc.addrs, false)
		cycles += uint64(len(sc.addrs)) * (cyclesIndexCPU + cyclesCoro)
	}
	core.Time += cycles

	// Data access + responses, per request.
	for i := range batch {
		r := &batch[i]
		if r.op == workload.OpScan && s.tree != nil {
			core.Time += s.scanCost(core, r, sc)
			core.Time += s.respond(core, r, sc.respCounter)
			sc.respCounter++
			continue
		}
		core.Time += s.serveItem(core, r, locked)
		core.Time += s.respond(core, r, sc.respCounter)
		sc.respCounter++
	}
}

// scanCost charges a range query: leaf walk plus reading r.size items.
// The μTPS MR layer overlaps the leaf and item misses with its coroutine
// scheduler (AccessBatch); run-to-completion workers execute the scan
// inline between polls, forfeiting the overlap window, so they pay serial
// access costs. Shared-nothing stores additionally scatter-gather: a range
// of consecutive keys spans every shard, so each shard pays an index
// descent and the requester merges the fragments.
func (s *System) scanCost(core *simhw.Core, r *simReq, sc *coreScratch) uint64 {
	var cycles uint64
	batched := s.A == ArchMuTPS || s.A == ArchReplay
	if s.A == ArchERPC {
		shards := s.P.Workers
		if r.size < shards {
			shards = r.size
		}
		// One descent per shard beyond the one already charged by mrBatch.
		depth := uint64(s.idx.Depth())
		cycles += uint64(shards-1) * depth * (s.P.HW.LLCLat + cyclesIndexCPU)
		cycles += uint64(r.size) * cyclesScanMerge
	}
	sc.addrs = s.tree.LeafAddrs(sc.addrs[:0], r.key, r.size)
	if batched {
		cycles += s.HW.AccessBatch(core.ID, sc.addrs, false)
	} else {
		for _, a := range sc.addrs {
			cycles += s.HW.Access(core.ID, a, false)
		}
	}
	// Items of consecutive keys; overlap their first lines, stream the rest.
	sc.addrs = sc.addrs[:0]
	for j := 0; j < r.size; j++ {
		k := r.key + uint64(j)
		if k >= s.P.Keys {
			break
		}
		sc.addrs = append(sc.addrs, s.items.Addr(k))
	}
	if batched {
		cycles += s.HW.AccessBatch(core.ID, sc.addrs, false)
	} else {
		for _, a := range sc.addrs {
			cycles += s.HW.Access(core.ID, a, false)
		}
	}
	extra := (uint64(s.P.ItemSize)+16)/64 - 1
	cycles += uint64(len(sc.addrs)) * extra * s.P.HW.IssueCost
	return cycles
}

// Run simulates warm+measured requests and reports the measured window.
func (s *System) Run(warm, measured int) Result {
	reqs := genReqs(s.gen, warm+measured)
	if warm > 0 {
		s.runPhase(reqs[:warm])
	}
	s.HW.ResetStats()
	s.NIC.ResetStats()
	res := s.runPhase(reqs[warm:])
	res.applyBandwidthCap(s.NIC)
	s.fillMissRates(&res)
	return res
}

func (s *System) fillMissRates(res *Result) {
	crProbes, crMiss, mrProbes, mrMiss := 0.0, 0.0, 0.0, 0.0
	split := s.P.CRWorkers
	if s.A != ArchMuTPS && s.A != ArchReplay {
		split = s.P.Workers // single pool: report the same rate twice
	}
	for c := 0; c < s.P.Workers; c++ {
		st := s.HW.CoreStats(c)
		p := float64(st.LLCHits + st.DRAMLoads)
		m := float64(st.DRAMLoads)
		if c < split || split == s.P.Workers {
			crProbes += p
			crMiss += m
		}
		if c >= split || split == s.P.Workers {
			mrProbes += p
			mrMiss += m
		}
	}
	if crProbes > 0 {
		res.CRMissRate = crMiss / crProbes
	}
	if mrProbes > 0 {
		res.MRMissRate = mrMiss / mrProbes
	}
}

// newEngine builds a per-phase engine whose core clocks continue from the
// previous phase (lock-table release times are absolute).
func (s *System) newEngine() *simhw.Engine {
	eng := simhw.NewEngine(s.P.Workers)
	for i, c := range eng.Cores {
		c.Time = s.now[i]
	}
	return eng
}

// saveClocks persists core clocks after a phase.
func (s *System) saveClocks(eng *simhw.Engine) {
	for i, c := range eng.Cores {
		s.now[i] = c.Time
	}
}

// deliveryLead is how many slots ahead of the poll point the NIC has
// already DMAed requests into the receive ring — the in-flight window.
// The dwell between DMA and poll is what exposes run-to-completion
// systems to RX-buffer eviction (§2.2.1).
const deliveryLead = 256

// lead clamps the delivery window to half the ring.
func (s *System) lead() int {
	l := int(s.rxSlots / 2)
	if l > deliveryLead {
		l = deliveryLead
	}
	return l
}

// newDeliverer returns a closure that ensures every request up to (and
// including) slot upTo-1 has been DMA-delivered, in order.
func (s *System) newDeliverer(reqs []simReq) func(upTo int) {
	delivered := 0
	w := s.P.Workers
	return func(upTo int) {
		if upTo > len(reqs) {
			upTo = len(reqs)
		}
		for ; delivered < upTo; delivered++ {
			r := &reqs[delivered]
			owner := 0
			if s.A == ArchERPC {
				owner = int(r.key % uint64(w))
			}
			s.NIC.DeliverRequest(s.rxAddr(owner, r.slot), reqBytes(r.op, s.P.ItemSize))
		}
	}
}

func (s *System) runPhase(reqs []simReq) Result {
	switch s.A {
	case ArchMuTPS:
		return s.runMuTPS(reqs)
	case ArchReplay:
		return s.runReplay(reqs)
	default:
		return s.runRTC(reqs)
	}
}

// --- μTPS -------------------------------------------------------------

type mrBatchMsg struct {
	reqs    []simReq
	readyAt uint64
	ring    uint64 // slot address for the pop access
}

func (s *System) runMuTPS(reqs []simReq) Result {
	nCR := s.P.CRWorkers
	nMR := s.P.Workers - nCR
	if nCR < 1 || nMR < 1 {
		panic("simkv: μTPS needs at least one core per layer")
	}
	eng := s.newEngine()
	queues := make([][]mrBatchMsg, s.P.Workers)
	producersLeft := nCR
	var ops uint64
	s.locks.setContenders(nMR)
	deliver := s.newDeliverer(reqs)

	for c := 0; c < nCR; c++ {
		c := c
		next := c
		sc := &coreScratch{}
		var local []simReq
		pushes := uint64(0)
		flush := func(core *simhw.Core) {
			if len(local) == 0 {
				return
			}
			mr := nCR + int(pushes)%nMR
			pushes++
			addr := s.ringSlotAddr(c, mr, pushes)
			core.Time += s.HW.AccessRange(core.ID, addr, uint64(16*len(local)), true) + cyclesRingPush
			b := make([]simReq, len(local))
			copy(b, local)
			local = local[:0]
			queues[mr] = append(queues[mr], mrBatchMsg{reqs: b, readyAt: core.Time, ring: addr})
		}
		eng.Cores[c].Step = func(core *simhw.Core) bool {
			if next >= len(reqs) {
				flush(core)
				producersLeft--
				return false
			}
			r := reqs[next]
			next += nCR
			// The NIC DMAed this request (and the in-flight window behind
			// it) into the shared ring earlier; only the poll is charged.
			deliver(int(r.slot) + s.lead() + 1)
			rxAddr := s.rxAddr(core.ID, r.slot)
			core.Time += cyclesPoll + cyclesParse
			core.Time += s.HW.AccessRange(core.ID, rxAddr, rxHeaderBytes, false)
			// Hot-set probe.
			if s.hotIdx.FootprintBytes() > 0 {
				sc.addrs = s.hotIdx.LookupAddrs(sc.addrs[:0], r.key)
				for _, a := range sc.addrs {
					core.Time += s.HW.Access(core.ID, a, false)
				}
			}
			if s.hot[r.key] && (r.op == workload.OpGet || r.op == workload.OpPut) {
				// Hit path: serve entirely at the CR layer.
				if r.op == workload.OpPut {
					core.Time += s.HW.AccessRange(core.ID, rxAddr+rxHeaderBytes, uint64(s.P.ItemSize), false)
				}
				core.Time += s.serveItem(core, &r, true)
				core.Time += s.respond(core, &r, sc.respCounter)
				sc.respCounter++
				ops++
				return true
			}
			// Miss path: forward.
			local = append(local, r)
			if len(local) >= s.P.BatchSize {
				flush(core)
			}
			return true
		}
	}

	for m := nCR; m < s.P.Workers; m++ {
		m := m
		sc := &coreScratch{}
		eng.Cores[m].Step = func(core *simhw.Core) bool {
			q := queues[m]
			if len(q) == 0 {
				if producersLeft == 0 {
					return false
				}
				core.Time += cyclesIdle
				return true
			}
			msg := q[0]
			queues[m] = q[1:]
			if msg.readyAt > core.Time {
				core.Time = msg.readyAt
			}
			core.Time += s.HW.AccessRange(core.ID, msg.ring, uint64(16*len(msg.reqs)), false) + cyclesRingPop
			s.mrBatch(core, msg.reqs, sc, true, true)
			ops += uint64(len(msg.reqs))
			return true
		}
	}

	t0 := s.syncStart(eng)
	eng.Run(^uint64(0))
	s.saveClocks(eng)
	return Result{Ops: ops, Cycles: eng.MaxTime() - t0}
}

// --- RTC family (BaseKV, eRPCKV, CAT variant) --------------------------

func (s *System) runRTC(reqs []simReq) Result {
	w := s.P.Workers
	eng := s.newEngine()
	var ops uint64

	// Request assignment: BaseKV claims shared-ring slots round-robin
	// (slot mod w); eRPCKV dispatches by key (shared-nothing), which is
	// where its skew imbalance comes from.
	assigned := make([][]simReq, w)
	for i := range reqs {
		var c int
		if s.A == ArchERPC {
			c = int(reqs[i].key % uint64(w))
		} else {
			c = i % w
		}
		assigned[c] = append(assigned[c], reqs[i])
	}

	locked := s.A != ArchERPC // shared-nothing needs no item locks
	s.locks.setContenders(w)
	deliver := s.newDeliverer(reqs)
	rpcOverhead := uint64(cyclesPoll + cyclesParse)
	if s.A == ArchERPC {
		// eRPC's hand-optimized RX path: leaner descriptor handling and
		// zero-copy delivery (the paper: "eRPC's highly optimized
		// implementation delivers higher throughput than Reconfigurable
		// RPC").
		rpcOverhead -= 100
	}

	for c := 0; c < w; c++ {
		c := c
		mine := assigned[c]
		next := 0
		sc := &coreScratch{}
		batch := make([]simReq, 0, s.P.BatchSize)
		eng.Cores[c].Step = func(core *simhw.Core) bool {
			if next >= len(mine) {
				return false
			}
			batch = batch[:0]
			for next < len(mine) && len(batch) < s.P.BatchSize {
				r := mine[next]
				next++
				deliver(int(r.slot) + s.lead() + 1)
				rxAddr := s.rxAddr(core.ID, r.slot)
				core.Time += rpcOverhead + cyclesICache
				core.Time += s.HW.AccessRange(core.ID, rxAddr, reqBytes(r.op, s.P.ItemSize), false)
				batch = append(batch, r)
			}
			// Run-to-completion, but with batching+prefetching enabled as
			// the paper grants BaseKV.
			s.mrBatch(core, batch, sc, locked, false)
			ops += uint64(len(batch))
			return true
		}
	}

	t0 := s.syncStart(eng)
	eng.Run(^uint64(0))
	s.saveClocks(eng)
	return Result{Ops: ops, Cycles: eng.MaxTime() - t0}
}

// --- Fig 2a replay TPS --------------------------------------------------

// runReplay models the motivation experiment: stage 1 (network) and stage
// 2 (index+data) on disjoint cores with *no* inter-stage communication —
// stage 2 deterministically regenerates the request stream.
func (s *System) runReplay(reqs []simReq) Result {
	n1 := s.P.CRWorkers
	n2 := s.P.Workers - n1
	if n1 < 1 || n2 < 1 {
		panic("simkv: replay needs cores in both stages")
	}
	eng := s.newEngine()
	var ops uint64
	s.locks.setContenders(n2)
	deliver := s.newDeliverer(reqs)

	for c := 0; c < n1; c++ {
		c := c
		next := c
		eng.Cores[c].Step = func(core *simhw.Core) bool {
			if next >= len(reqs) {
				return false
			}
			r := reqs[next]
			next += n1
			deliver(int(r.slot) + s.lead() + 1)
			rxAddr := s.rxAddr(core.ID, r.slot)
			core.Time += cyclesPoll + cyclesParse
			// Stage 1 reads the header and posts the send descriptor; the
			// data copy into the response buffer is stage 2's job (§3.3).
			core.Time += s.HW.AccessRange(core.ID, rxAddr, rxHeaderBytes, false)
			core.Time += cyclesRespond
			return true
		}
	}
	for c := n1; c < s.P.Workers; c++ {
		c := c
		next := c - n1
		sc := &coreScratch{}
		batch := make([]simReq, 0, s.P.BatchSize)
		eng.Cores[c].Step = func(core *simhw.Core) bool {
			if next >= len(reqs) {
				return false
			}
			batch = batch[:0]
			for next < len(reqs) && len(batch) < s.P.BatchSize {
				batch = append(batch, reqs[next])
				next += n2
			}
			s.mrBatch(core, batch, sc, true, false)
			ops += uint64(len(batch))
			return true
		}
	}

	t0 := s.syncStart(eng)
	eng.Run(^uint64(0))
	s.saveClocks(eng)
	return Result{Ops: ops, Cycles: eng.MaxTime() - t0}
}

// syncStart aligns all core clocks (a barrier between warmup and
// measurement) and returns the common start time.
func (s *System) syncStart(eng *simhw.Engine) uint64 {
	var t0 uint64
	for _, c := range eng.Cores {
		if c.Time > t0 {
			t0 = c.Time
		}
	}
	for _, c := range eng.Cores {
		c.Time = t0
	}
	return t0
}
