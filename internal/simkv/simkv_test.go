package simkv

import (
	"testing"

	"mutps/internal/simhw"
	"mutps/internal/tuner"
	"mutps/internal/workload"
)

// testHW scales the machine down (8 cores, 1.5 MB LLC) so a 200k-key store
// exhibits the paper's cache dynamics in fast unit tests.
func testHW() simhw.Params {
	p := simhw.DefaultParams()
	p.Cores = 8
	p.LLCSets = 2048 // 1.5 MB LLC
	return p
}

func testParams(tree bool, itemSize int) SystemParams {
	return SystemParams{
		HW:        testHW(),
		Keys:      200_000,
		ItemSize:  itemSize,
		Workers:   8,
		BatchSize: 8,
		TreeIndex: tree,
		CRWorkers: 2,
		HotItems:  2000,
		MRWays:    8, // leave 4 LLC ways exclusive to the CR layer
	}
}

func cfgFor(theta float64, mix workload.Mix, keys uint64, size int, seed uint64) workload.Config {
	return workload.Config{Keys: keys, Theta: theta, Mix: mix, ValueSize: workload.FixedSize(size), Seed: seed}
}

func runSys(p SystemParams, a Arch, wl workload.Config, warm, n int) Result {
	sys := NewSystem(p, a, workload.NewGenerator(wl))
	return sys.Run(warm, n)
}

const (
	tWarm = 6000
	tOps  = 20000
)

func TestMuTPSBeatsRTCOnSkewedTree(t *testing.T) {
	p := testParams(true, 64)
	wl := cfgFor(0.99, workload.MixYCSBB, p.Keys, p.ItemSize, 7)
	mu, bestP := BestMuTPS(p, func() *System {
		return NewSystem(p, ArchMuTPS, workload.NewGenerator(wl))
	}, tWarm, tOps, []int{0, 4, 8})
	base := runSys(p, ArchRTC, wl, tWarm, tOps)
	rm, rb := mu.Mops(p.HW), base.Mops(p.HW)
	t.Logf("μTPS=%.1f Mops (cr=%d ways=%d) BaseKV=%.1f Mops (%.2fx)",
		rm, bestP.CRWorkers, bestP.MRWays, rb, rm/rb)
	if rm <= rb {
		t.Fatalf("μTPS (%.1f) must beat BaseKV (%.1f) on skewed tree reads", rm, rb)
	}
}

func TestCRLayerMissRateFarBelowRTC(t *testing.T) {
	p := testParams(true, 64)
	wl := cfgFor(0, workload.MixYCSBC, p.Keys, p.ItemSize, 3)
	mu := runSys(p, ArchMuTPS, wl, tWarm, tOps)
	base := runSys(p, ArchRTC, wl, tWarm, tOps)
	t.Logf("CR miss %.1f%% / MR miss %.1f%% vs RTC %.1f%%",
		100*mu.CRMissRate, 100*mu.MRMissRate, 100*base.CRMissRate)
	// Paper §2.2.1: stage-1 threads 2% vs 33% for NP-TPQ.
	if mu.CRMissRate >= base.CRMissRate/2 {
		t.Fatalf("CR layer LLC miss rate %.2f must be far below RTC's %.2f",
			mu.CRMissRate, base.CRMissRate)
	}
}

func TestERPCWinsUniformLosesSkewed(t *testing.T) {
	p := testParams(false, 8)
	uni := cfgFor(0, workload.MixYCSBC, p.Keys, p.ItemSize, 5)
	skew := cfgFor(0.99, workload.MixYCSBC, p.Keys, p.ItemSize, 5)
	eUni := runSys(p, ArchERPC, uni, tWarm, tOps).Mops(p.HW)
	bUni := runSys(p, ArchRTC, uni, tWarm, tOps).Mops(p.HW)
	eSkew := runSys(p, ArchERPC, skew, tWarm, tOps).Mops(p.HW)
	bSkew := runSys(p, ArchRTC, skew, tWarm, tOps).Mops(p.HW)
	t.Logf("uniform: eRPC=%.1f Base=%.1f | skewed: eRPC=%.1f Base=%.1f", eUni, bUni, eSkew, bSkew)
	if eUni <= bUni {
		t.Fatalf("eRPC (%.1f) should beat BaseKV (%.1f) on uniform hash reads", eUni, bUni)
	}
	if eSkew >= bSkew {
		t.Fatalf("eRPC (%.1f) should trail BaseKV (%.1f) under skew (load imbalance)", eSkew, bSkew)
	}
}

func TestBatchingImprovesMuTPS(t *testing.T) {
	wl := cfgFor(0.99, workload.MixYCSBA, 200_000, 8, 11)
	p1 := testParams(false, 8)
	p1.BatchSize = 1
	p8 := testParams(false, 8)
	p8.BatchSize = 10
	r1 := runSys(p1, ArchMuTPS, wl, tWarm, tOps).Mops(p1.HW)
	r8 := runSys(p8, ArchMuTPS, wl, tWarm, tOps).Mops(p8.HW)
	t.Logf("batch=1: %.1f Mops, batch=10: %.1f Mops (+%.0f%%)", r1, r8, 100*(r8/r1-1))
	if r8 <= r1 {
		t.Fatalf("batching must help: %.1f vs %.1f", r8, r1)
	}
}

func TestSEContentionCollapse(t *testing.T) {
	// Fig 2c: share-everything puts degrade as threads grow; shared-nothing
	// does not collapse the same way.
	wl := cfgFor(0.99, workload.MixPutOnly, 200_000, 64, 13)
	few := testParams(false, 64)
	few.Workers = 3
	few.CRWorkers = 1
	many := testParams(false, 64)
	many.Workers = 8
	rFew := runSys(few, ArchRTC, wl, tWarm, tOps).Mops(few.HW)
	rMany := runSys(many, ArchRTC, wl, tWarm, tOps).Mops(many.HW)
	perFew, perMany := rFew/3, rMany/8
	t.Logf("SE puts: 3 workers=%.1f Mops (%.2f/w), 8 workers=%.1f Mops (%.2f/w)",
		rFew, perFew, rMany, perMany)
	if perMany > perFew*0.9 {
		t.Fatalf("per-worker SE put efficiency must degrade with contention: %.2f → %.2f",
			perFew, perMany)
	}
}

func TestPassiveModels(t *testing.T) {
	hw := testHW()
	genCfg := cfgFor(0.99, workload.MixYCSBC, 200_000, 64, 17)
	// Scale the NIC verb ceiling to the test machine's 8-of-28 cores so
	// the CPU-vs-NIC comparison matches the full-scale geometry.
	verbRate := 60e6 * 8 / 28
	mops, bw := RunPassive(PassiveParams{HW: hw, Kind: RaceHash, ItemSize: 64, VerbRate: verbRate},
		workload.NewGenerator(genCfg), 20000)
	if bw || mops <= 0 || mops > 30 {
		t.Fatalf("RaceHash gets: %.1f Mops (bw=%v) out of expected range", mops, bw)
	}
	// Sherman at 1 KB must be bandwidth-limited (paper's observation).
	// The bandwidth bound is a NIC property, so check it at the full verb
	// ceiling (the scaled rate above only matters for CPU comparisons).
	mops1k, bw1k := RunPassive(PassiveParams{HW: hw, Kind: Sherman, ItemSize: 1024},
		workload.NewGenerator(cfgFor(0.99, workload.MixYCSBC, 200_000, 1024, 17)), 20000)
	t.Logf("RaceHash 64B: %.1f Mops; Sherman 1KB: %.1f Mops bw=%v", mops, mops1k, bw1k)
	if !bw1k {
		t.Fatal("Sherman at 1 KB should be bandwidth-bound")
	}
	// μTPS with small items should beat both passive stores.
	p := testParams(false, 64)
	mu := runSys(p, ArchMuTPS, genCfg, tWarm, tOps).Mops(p.HW)
	if mu <= mops {
		t.Fatalf("μTPS (%.1f) should beat RaceHash (%.1f) at 64 B", mu, mops)
	}
}

func TestReplayModeRuns(t *testing.T) {
	p := testParams(true, 64)
	p.CRWorkers = 3
	wl := cfgFor(0, workload.MixYCSBC, p.Keys, p.ItemSize, 23)
	r := runSys(p, ArchReplay, wl, tWarm, tOps)
	if r.Ops == 0 || r.Cycles == 0 {
		t.Fatal("replay mode produced nothing")
	}
	if r.CRMissRate >= r.MRMissRate {
		t.Fatalf("stage-1 miss rate %.2f should be below stage-2's %.2f",
			r.CRMissRate, r.MRMissRate)
	}
}

func TestLatencyClosedLoop(t *testing.T) {
	p := testParams(true, 8)
	wl := cfgFor(0.99, workload.MixYCSBA, p.Keys, 8, 29)
	few := NewSystem(p, ArchMuTPS, workload.NewGenerator(wl)).RunLatency(4, 4000, 2000)
	many := NewSystem(p, ArchMuTPS, workload.NewGenerator(wl)).RunLatency(32, 4000, 2000)
	t.Logf("4 clients: %.2f Mops P50=%.2fµs P99=%.2fµs | 32 clients: %.2f Mops P50=%.2fµs P99=%.2fµs",
		few.Mops, few.P50Usec, few.P99Usec, many.Mops, many.P50Usec, many.P99Usec)
	if few.P50Usec < 2 { // RTT alone is 2 µs
		t.Fatalf("P50 %.2f below network RTT", few.P50Usec)
	}
	if many.Mops <= few.Mops {
		t.Fatal("more closed-loop clients must raise throughput before saturation")
	}
	if few.P99Usec < few.P50Usec {
		t.Fatal("P99 below P50")
	}
	rtc := NewSystem(p, ArchRTC, workload.NewGenerator(wl)).RunLatency(16, 4000, 2000)
	if rtc.Mops <= 0 || rtc.P50Usec <= 0 {
		t.Fatal("RTC latency mode broken")
	}
}

func TestTunableSearch(t *testing.T) {
	p := testParams(true, 64)
	wl := cfgFor(0.99, workload.MixYCSBA, p.Keys, 64, 31)
	sys := NewSystem(p, ArchMuTPS, workload.NewGenerator(wl))
	tn := &Tunable{S: sys, MaxCache: 4000, CacheStep: 2000, Window: 4000}
	res := tuner.Optimize(tn)
	if res.Score <= 0 || res.Probes == 0 {
		t.Fatalf("tuner result %+v", res)
	}
	if res.Best.MRThreads < 1 || res.Best.MRThreads > p.Workers-1 {
		t.Fatalf("tuned MR threads out of range: %+v", res.Best)
	}
	// The tuned configuration should beat a pathological one.
	bad := tn.Measure(tuner.Config{CacheItems: 0, MRThreads: 1, MRWays: p.HW.LLCWays})
	good := tn.Measure(res.Best)
	t.Logf("tuned=%+v score=%.1f vs pathological=%.1f", res.Best, good, bad)
	if good < bad*0.95 {
		t.Fatalf("tuned config (%.1f) worse than pathological (%.1f)", good, bad)
	}
}

func TestDynamicItemSizeShift(t *testing.T) {
	// Fig 14 mechanics: shrink the value size mid-run, retune, and confirm
	// the system reconfigures without error and throughput changes.
	p := testParams(true, 512)
	wl := cfgFor(0.99, workload.MixYCSBA, p.Keys, 512, 37)
	sys := NewSystem(p, ArchMuTPS, workload.NewGenerator(wl))
	before := sys.Run(tWarm, tOps).Mops(p.HW)
	sys.SetItemSize(8)
	after := sys.Run(tWarm, tOps).Mops(p.HW)
	t.Logf("512B: %.1f Mops → 8B: %.1f Mops", before, after)
	if after <= before {
		t.Fatal("shrinking items must raise throughput")
	}
}

func TestDeterminism(t *testing.T) {
	p := testParams(false, 64)
	wl := cfgFor(0.99, workload.MixYCSBA, p.Keys, 64, 41)
	a := runSys(p, ArchMuTPS, wl, 2000, 8000)
	b := runSys(p, ArchMuTPS, wl, 2000, 8000)
	if a != b {
		t.Fatalf("simulation must be deterministic: %+v vs %+v", a, b)
	}
}

func TestItemLayoutAndIndexes(t *testing.T) {
	l := newItemLayout(0x1000, 100)
	if l.Addr(0) != 0x1000 || l.Addr(1)-l.Addr(0) < 116 {
		t.Fatal("item layout slots must not overlap")
	}
	if l.Addr(1)%64 != 0 {
		t.Fatal("items must be line-aligned")
	}
	c := newSimCuckoo(0, 1_000_000)
	p := c.PathAddrs(nil, 42)
	if len(p) < 1 || len(p) > 2 {
		t.Fatalf("cuckoo path %v", p)
	}
	if c.FootprintBytes() == 0 || c.Depth() != 2 {
		t.Fatal("cuckoo geometry")
	}
	bt := newSimBTree(0, 10_000_000)
	path := bt.PathAddrs(nil, 12345)
	if len(path) != bt.Depth() {
		t.Fatalf("path length %d vs depth %d", len(path), bt.Depth())
	}
	if bt.Depth() < 5 {
		t.Fatalf("10M keys at fanout 16 must be ≥6 levels, got %d", bt.Depth())
	}
	// Same key → same path; adjacent keys share upper levels.
	p2 := bt.PathAddrs(nil, 12345)
	for i := range path {
		if path[i] != p2[i] {
			t.Fatal("paths must be deterministic")
		}
	}
	p3 := bt.PathAddrs(nil, 12346)
	if path[0] != p3[0] {
		t.Fatal("root must be shared")
	}
	leaves := bt.LeafAddrs(nil, 0, 50)
	if len(leaves) < 3 {
		t.Fatalf("50-item scan should span several leaves, got %d", len(leaves))
	}
	// Out-of-range key clamps.
	if got := bt.PathAddrs(nil, 1<<62); len(got) != bt.Depth() {
		t.Fatal("clamped path broken")
	}
}

func TestLockTableContention(t *testing.T) {
	lt := newLockTable(70)
	lt.setContenders(8)
	// Uncontended: now advances by coher + hold.
	end := lt.acquire(1000, 0xABC, 500)
	if end != 1000+70+500 {
		t.Fatalf("uncontended end = %d", end)
	}
	// Contended: waits for release, then pays the retry-storm handoff
	// proportional to the contender pool.
	end2 := lt.acquire(1100, 0xABC, 500)
	if end2 != end+70*8+500 {
		t.Fatalf("contended end = %d, want %d", end2, end+70*8+500)
	}
	// A different item is independent.
	if lt.acquire(2000, 0xDEF, 100) != 2000+70+100 {
		t.Fatal("independent items must not contend")
	}
	// Larger contender pools pay larger handoffs.
	lt2 := newLockTable(70)
	lt2.setContenders(28)
	lt2.acquire(1000, 1, 500)
	if lt2.acquire(1100, 1, 500)-end2 <= 0 {
		t.Fatal("handoff must grow with contenders")
	}
	// Degenerate contender count clamps to 1.
	lt3 := newLockTable(70)
	lt3.setContenders(0)
	if lt3.acquire(0, 1, 10) != 80 {
		t.Fatal("contender clamp broken")
	}
}
