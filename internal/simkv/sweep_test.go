package simkv

import (
	"path/filepath"
	"testing"

	"mutps/internal/tuner"
	"mutps/internal/workload"
)

// A reduced grid keeps the sweep test fast; the default grid is exercised
// for shape only.
func smallGrid() []SweepPoint {
	return []SweepPoint{
		{Name: "ycsb-a", Mix: workload.MixYCSBA, Theta: 0.99, ValueSize: 512},
		{Name: "ycsb-c", Mix: workload.MixYCSBC, Theta: 0.99, ValueSize: 8},
	}
}

func TestSweepPriorsCoversGrid(t *testing.T) {
	grid := smallGrid()
	priors := SweepPriors(SweepParams(), grid, 2000, 11)
	if priors.Len() != len(grid) {
		t.Fatalf("priors has %d entries, want %d", priors.Len(), len(grid))
	}
	for _, pt := range grid {
		sig := tuner.MakeSignature(pt.Mix.GetFrac, pt.Mix.ScanFrac, float64(pt.ValueSize))
		pr, ok := priors.Lookup(sig)
		if !ok {
			t.Fatalf("no prior for %s (%s)", pt.Name, sig)
		}
		if pr.Source != "simkv" {
			t.Fatalf("%s: source = %q, want simkv", sig, pr.Source)
		}
		if pr.Score <= 0 {
			t.Fatalf("%s: non-positive score %v", sig, pr.Score)
		}
		p := SweepParams()
		if pr.Config.MRThreads < 1 || pr.Config.MRThreads > p.Workers-1 {
			t.Fatalf("%s: MRThreads %d outside [1,%d]", sig, pr.Config.MRThreads, p.Workers-1)
		}
		if pr.Config.CacheItems < 0 {
			t.Fatalf("%s: negative cache size %d", sig, pr.Config.CacheItems)
		}
	}
}

func TestSweepPriorsRoundTripFile(t *testing.T) {
	priors := SweepPriors(SweepParams(), smallGrid()[:1], 2000, 3)
	path := filepath.Join(t.TempDir(), "priors.json")
	if err := priors.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := tuner.LoadPriors(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != priors.Len() {
		t.Fatalf("round-trip lost entries: %d != %d", got.Len(), priors.Len())
	}
	sig := tuner.MakeSignature(workload.MixYCSBA.GetFrac, 0, 512)
	want, _ := priors.Lookup(sig)
	pr, ok := got.Lookup(sig)
	if !ok || pr != want {
		t.Fatalf("round-trip prior = %+v ok=%v, want %+v", pr, ok, want)
	}
}

func TestDefaultSweepGridShape(t *testing.T) {
	grid := DefaultSweepGrid()
	if len(grid) != 12 {
		t.Fatalf("grid has %d points, want 12 (4 mixes x 3 sizes)", len(grid))
	}
	seen := map[tuner.Signature]bool{}
	for _, pt := range grid {
		sig := tuner.MakeSignature(pt.Mix.GetFrac, pt.Mix.ScanFrac, float64(pt.ValueSize))
		if seen[sig] {
			t.Fatalf("duplicate signature %s: grid points would overwrite each other", sig)
		}
		seen[sig] = true
	}
}
