package ring

import (
	"runtime"
	"sync"
	"testing"
	"unsafe"
)

func TestRequestIs16Bytes(t *testing.T) {
	if s := unsafe.Sizeof(Request{}); s != 16 {
		t.Fatalf("Request is %d bytes, the paper's format is 16", s)
	}
}

func TestSPSCPushPeekCommit(t *testing.T) {
	q := NewSPSC(4)
	if q.Peek() != nil {
		t.Fatal("empty ring must peek nil")
	}
	batch := []Request{{Key: 1}, {Key: 2}}
	if !q.Push(batch) {
		t.Fatal("push into empty ring must succeed")
	}
	got := q.Peek()
	if len(got) != 2 || got[0].Key != 1 || got[1].Key != 2 {
		t.Fatalf("peek = %+v", got)
	}
	// Peek again returns the same batch (no consumption).
	if g2 := q.Peek(); len(g2) != 2 {
		t.Fatal("peek must not consume")
	}
	if q.Done() != 0 {
		t.Fatal("done must not advance before commit")
	}
	q.Commit()
	if q.Done() != 1 {
		t.Fatalf("Done = %d", q.Done())
	}
	if q.Peek() != nil {
		t.Fatal("ring must be empty after commit")
	}
	if !q.Empty() {
		t.Fatal("Empty must be true after draining")
	}
}

func TestSPSCFullRing(t *testing.T) {
	q := NewSPSC(2)
	one := []Request{{Key: 9}}
	if !q.Push(one) || !q.Push(one) {
		t.Fatal("ring of 2 must accept 2 batches")
	}
	if q.Push(one) {
		t.Fatal("full ring must reject push")
	}
	q.Peek()
	q.Commit()
	if !q.Push(one) {
		t.Fatal("push must succeed after commit frees a slot")
	}
}

func TestSPSCCapacityRounding(t *testing.T) {
	if NewSPSC(3).Cap() != 4 || NewSPSC(0).Cap() != 2 || NewSPSC(8).Cap() != 8 {
		t.Fatal("capacity must round up to a power of two, min 2")
	}
}

func TestSPSCPushPanics(t *testing.T) {
	q := NewSPSC(2)
	for _, batch := range [][]Request{nil, make([]Request, MaxBatch+1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			q.Push(batch)
		}()
	}
}

func TestSPSCConcurrentFIFO(t *testing.T) {
	q := NewSPSC(8)
	const batches = 5000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // producer
		defer wg.Done()
		for i := uint64(0); i < batches; i++ {
			b := []Request{{Key: 2 * i}, {Key: 2*i + 1}}
			for !q.Push(b) {
				runtime.Gosched()
			}
		}
	}()
	go func() { // consumer
		defer wg.Done()
		next := uint64(0)
		for next < 2*batches {
			b := q.Peek()
			if b == nil {
				runtime.Gosched()
				continue
			}
			for _, r := range b {
				if r.Key != next {
					panic("FIFO order violated")
				}
				next++
			}
			q.Commit()
		}
	}()
	wg.Wait()
	if q.Done() != batches || q.Pushed() != batches {
		t.Fatalf("done=%d pushed=%d", q.Done(), q.Pushed())
	}
}

func TestCRMRGeometry(t *testing.T) {
	q := NewCRMR(3, 2, 4)
	if q.MaxCR() != 3 || q.MaxMR() != 2 {
		t.Fatalf("dims %dx%d", q.MaxCR(), q.MaxMR())
	}
	if q.Ring(2, 1) == nil || q.Ring(0, 0) == q.Ring(0, 1) {
		t.Fatal("rings must be distinct per pair")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		NewCRMR(0, 1, 4)
	}()
}

func TestProducerRoundRobinAndBatching(t *testing.T) {
	q := NewCRMR(1, 3, 8)
	p := q.Producer(0, 2)
	// First request: queued locally, no flush.
	if mr, fl := p.Add(Request{Key: 1}, 0, 3); fl || mr != -1 {
		t.Fatal("batch of 1 must not flush at size 2")
	}
	if p.PendingLocal() != 1 {
		t.Fatalf("pending = %d", p.PendingLocal())
	}
	// Second request completes the batch → flush to MR 0.
	mr, fl := p.Add(Request{Key: 2}, 0, 3)
	if !fl || mr != 0 {
		t.Fatalf("flush to %d, %v", mr, fl)
	}
	// Next flushes rotate: MR 1, then MR 2, then MR 0.
	for want := 1; want <= 3; want++ {
		p.Add(Request{Key: 9}, 0, 3)
		mr, fl = p.Add(Request{Key: 9}, 0, 3)
		if !fl || mr != want%3 {
			t.Fatalf("round robin broke: got %d want %d", mr, want%3)
		}
	}
	// Batches landed in the right rings.
	if q.Ring(0, 0).Pushed() != 2 || q.Ring(0, 1).Pushed() != 1 || q.Ring(0, 2).Pushed() != 1 {
		t.Fatal("wrong ring distribution")
	}
}

func TestProducerFlushEmptyAndClamping(t *testing.T) {
	q := NewCRMR(1, 1, 4)
	p := q.Producer(0, 0) // clamped to 1
	if mr, fl := p.Flush(0, 1); fl || mr != -1 {
		t.Fatal("flush of empty batch must be a no-op")
	}
	if mr, fl := p.Add(Request{}, 0, 1); !fl || mr != 0 {
		t.Fatal("batch size clamped to 1 must flush immediately")
	}
	big := q.Producer(0, MaxBatch+10)
	for i := 0; i < MaxBatch-1; i++ {
		if _, fl := big.Add(Request{}, 0, 1); fl {
			t.Fatal("must not flush before MaxBatch")
		}
	}
	if _, fl := big.Add(Request{}, 0, 1); !fl {
		t.Fatal("must flush at MaxBatch")
	}
}

func TestConsumerPollScansAllProducers(t *testing.T) {
	q := NewCRMR(3, 1, 4)
	c := q.Consumer(0)
	if cr, _, _ := c.Poll(3); cr != -1 {
		t.Fatal("empty matrix must poll nothing")
	}
	// CR 2 pushes a batch.
	q.Ring(2, 0).Push([]Request{{Key: 42}})
	cr, reqs, r := c.Poll(3)
	if cr != 2 || len(reqs) != 1 || reqs[0].Key != 42 {
		t.Fatalf("poll = cr%d %+v", cr, reqs)
	}
	r.Commit()
	if !q.ColumnEmpty(0) {
		t.Fatal("column must be empty after commit")
	}
}

func TestConsumerPollFairness(t *testing.T) {
	q := NewCRMR(2, 1, 8)
	c := q.Consumer(0)
	// Both CR workers have pending batches; alternating polls must not
	// starve either.
	for i := 0; i < 4; i++ {
		q.Ring(0, 0).Push([]Request{{Key: 100}})
		q.Ring(1, 0).Push([]Request{{Key: 200}})
	}
	seen := map[int]int{}
	for i := 0; i < 8; i++ {
		cr, _, r := c.Poll(2)
		if cr == -1 {
			t.Fatal("expected work")
		}
		seen[cr]++
		r.Commit()
	}
	if seen[0] != 4 || seen[1] != 4 {
		t.Fatalf("unfair polling: %v", seen)
	}
}

func TestRowColumnEmpty(t *testing.T) {
	q := NewCRMR(2, 2, 4)
	if !q.RowEmpty(0) || !q.ColumnEmpty(1) {
		t.Fatal("fresh matrix must be empty")
	}
	q.Ring(0, 1).Push([]Request{{}})
	if q.RowEmpty(0) {
		t.Fatal("row with pending batch must not be empty")
	}
	if q.ColumnEmpty(1) {
		t.Fatal("column with pending batch must not be empty")
	}
	if !q.RowEmpty(1) || !q.ColumnEmpty(0) {
		t.Fatal("unrelated row/column must stay empty")
	}
}

func TestCRMREndToEndConcurrent(t *testing.T) {
	const (
		nCR, nMR = 3, 2
		perCR    = 3000
	)
	q := NewCRMR(nCR, nMR, 16)
	var wg sync.WaitGroup
	var mu sync.Mutex
	received := map[uint64]bool{}
	// MR consumers.
	var doneProducers sync.WaitGroup
	doneProducers.Add(nCR)
	stop := make(chan struct{})
	for m := 0; m < nMR; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			c := q.Consumer(m)
			for {
				cr, reqs, r := c.Poll(nCR)
				if cr == -1 {
					select {
					case <-stop:
						if _, reqs2, _ := c.Poll(nCR); reqs2 == nil {
							return
						}
						continue
					default:
						runtime.Gosched()
						continue
					}
				}
				mu.Lock()
				for _, req := range reqs {
					if received[req.Key] {
						panic("duplicate delivery")
					}
					received[req.Key] = true
				}
				mu.Unlock()
				r.Commit()
			}
		}(m)
	}
	for cw := 0; cw < nCR; cw++ {
		wg.Add(1)
		go func(cw int) {
			defer wg.Done()
			defer doneProducers.Done()
			p := q.Producer(cw, 4)
			for i := 0; i < perCR; i++ {
				p.Add(Request{Key: uint64(cw*perCR + i)}, 0, nMR)
			}
			p.Flush(0, nMR)
		}(cw)
	}
	doneProducers.Wait()
	close(stop)
	wg.Wait()
	if len(received) != nCR*perCR {
		t.Fatalf("received %d, want %d", len(received), nCR*perCR)
	}
}
