package ring

import (
	"runtime"
	"sync/atomic"
)

// CRMR is the all-to-all CR-MR queue: rings[c][m] is the dedicated SPSC
// ring from CR worker c to MR worker m. CR workers spread batches across MR
// workers round-robin to balance load; each MR worker scans its column of
// rings to pop new batches.
//
// The matrix is sized for the maximum worker counts the store may ever use,
// so thread reassignment (which changes how many workers are *active* at
// each layer) never reallocates rings — idle rings simply stay empty.
type CRMR struct {
	rings [][]*SPSC
}

// NewCRMR builds a maxCR × maxMR matrix of rings with the given per-ring
// slot capacity.
func NewCRMR(maxCR, maxMR, capacity int) *CRMR {
	if maxCR <= 0 || maxMR <= 0 {
		panic("ring: CRMR dimensions must be positive")
	}
	q := &CRMR{rings: make([][]*SPSC, maxCR)}
	for c := range q.rings {
		q.rings[c] = make([]*SPSC, maxMR)
		for m := range q.rings[c] {
			q.rings[c][m] = NewSPSC(capacity)
		}
	}
	return q
}

// MaxCR returns the producer-side dimension.
func (q *CRMR) MaxCR() int { return len(q.rings) }

// MaxMR returns the consumer-side dimension.
func (q *CRMR) MaxMR() int { return len(q.rings[0]) }

// Ring returns the dedicated ring from CR worker c to MR worker m.
func (q *CRMR) Ring(c, m int) *SPSC { return q.rings[c][m] }

// Producer is CR worker c's sending handle: it batches requests locally
// and pushes full batches to the active MR workers round-robin.
type Producer struct {
	q     *CRMR
	cr    int
	next  int // round-robin cursor over MR workers
	batch []Request
	limit int

	// stalls counts failed Push attempts (target ring full, §3.4's
	// backpressure signal). Written only by the producer, read by the
	// observability scraper, hence atomic.
	stalls atomic.Uint64
}

// Producer creates the handle for CR worker c with the given batch size
// (requests accumulated before a push; clamped to [1, MaxBatch]).
func (q *CRMR) Producer(c, batchSize int) *Producer {
	if batchSize < 1 {
		batchSize = 1
	}
	if batchSize > MaxBatch {
		batchSize = MaxBatch
	}
	return &Producer{q: q, cr: c, batch: make([]Request, 0, batchSize), limit: batchSize}
}

// Add queues one request locally; when the local batch reaches the batch
// size it is flushed. It returns the MR worker index the batch went to and
// true when a flush happened (so the caller can record the in-flight batch
// for completion matching), or -1 and false otherwise. The active MR
// workers are the contiguous columns [mrBase, mrBase+nMR).
func (p *Producer) Add(req Request, mrBase, nMR int) (mr int, flushed bool) {
	p.batch = append(p.batch, req)
	if len(p.batch) < p.limit {
		return -1, false
	}
	return p.Flush(mrBase, nMR)
}

// Flush pushes any locally queued requests as one batch, spinning while
// the target ring is full. It returns (-1, false) when nothing was queued.
func (p *Producer) Flush(mrBase, nMR int) (mr int, flushed bool) {
	if len(p.batch) == 0 {
		return -1, false
	}
	if nMR <= 0 || mrBase < 0 || mrBase+nMR > p.q.MaxMR() {
		panic("ring: active MR range out of bounds")
	}
	m := mrBase + p.next%nMR
	p.next++
	r := p.q.rings[p.cr][m]
	for !r.Push(p.batch) {
		// Ring full: the MR worker is behind. On pinned dedicated cores
		// this would be a pure spin; under the Go scheduler we must yield
		// so the consumer goroutine can run.
		p.stalls.Add(1)
		runtime.Gosched()
	}
	p.batch = p.batch[:0]
	return m, true
}

// PendingLocal returns how many requests are queued locally (not yet
// pushed).
func (p *Producer) PendingLocal() int { return len(p.batch) }

// DropLocal discards the locally queued requests without pushing them,
// keeping the batch slice's capacity. The shutdown path uses it after
// failing the dropped requests' calls directly; Flush is wrong there
// because the consumer side may already be gone.
func (p *Producer) DropLocal() { p.batch = p.batch[:0] }

// Stalls returns how many Push attempts found the target ring full.
func (p *Producer) Stalls() uint64 { return p.stalls.Load() }

// Consumer is MR worker m's receiving handle: it scans the rings of all
// active CR workers for new batches.
type Consumer struct {
	q    *CRMR
	mr   int
	next int // scan cursor over CR workers for fairness

	// emptyPolls counts Polls that found every scanned ring empty — the
	// pop-side stall signal. Single writer (the consumer), atomic for the
	// scraper.
	emptyPolls atomic.Uint64
}

// Consumer creates the handle for MR worker m.
func (q *CRMR) Consumer(m int) *Consumer {
	return &Consumer{q: q, mr: m}
}

// Poll performs a one-shot scan over the active CR workers' rings (rows
// [0, nCR)) and returns the first available batch along with the CR worker
// it came from and the ring to Commit on. It returns cr = -1 when no ring
// has work — the non-blocking discipline of the FSM execution model.
func (c *Consumer) Poll(nCR int) (cr int, reqs []Request, r *SPSC) {
	if nCR <= 0 || nCR > c.q.MaxCR() {
		panic("ring: active CR count out of range")
	}
	for i := 0; i < nCR; i++ {
		idx := (c.next + i) % nCR
		ring := c.q.rings[idx][c.mr]
		if batch := ring.Peek(); batch != nil {
			c.next = (idx + 1) % nCR
			return idx, batch, ring
		}
	}
	c.emptyPolls.Add(1)
	return -1, nil, nil
}

// EmptyPolls returns how many Polls came back empty-handed.
func (c *Consumer) EmptyPolls() uint64 { return c.emptyPolls.Load() }

// ColumnEmpty reports whether every ring feeding MR worker m is drained —
// used during thread reassignment to ensure no residual requests.
func (q *CRMR) ColumnEmpty(m int) bool {
	for c := range q.rings {
		if !q.rings[c][m].Empty() {
			return false
		}
	}
	return true
}

// Occupancy returns the total batches currently published but not yet
// committed across the whole matrix — the queue's instantaneous depth in
// slots, read at scrape time.
func (q *CRMR) Occupancy() uint64 {
	var occ uint64
	for c := range q.rings {
		for m := range q.rings[c] {
			r := q.rings[c][m]
			// Done first: reading Pushed afterwards guarantees the later
			// value is ≥ the earlier one even against concurrent commits,
			// so the difference never underflows.
			done := r.Done()
			occ += r.Pushed() - done
		}
	}
	return occ
}

// RowEmpty reports whether CR worker c's outgoing rings are all drained.
func (q *CRMR) RowEmpty(c int) bool {
	for m := range q.rings[c] {
		if !q.rings[c][m].Empty() {
			return false
		}
	}
	return true
}
