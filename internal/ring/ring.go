// Package ring implements the CR-MR queue (§3.4): the communication fabric
// between the cache-resident and memory-resident layers. It is an
// all-to-all matrix of single-producer single-consumer lock-free rings —
// one dedicated ring per (CR thread, MR thread) pair — whose slots each
// carry a small batch of compact 16-byte requests to amortize push/pop
// costs. Completion is piggybacked: the consumer advances its done pointer
// only after fully processing a slot (responses already written), so the
// producer learns about completed batches without any explicit message.
package ring

import "sync/atomic"

// MaxBatch is the largest number of requests one slot can carry.
const MaxBatch = 32

// Request is the compact 16-byte inter-layer request representation
// (paper Figure 6). Keys longer than 8 bytes are hashed into Key by the
// RPC layer before reaching this queue.
type Request struct {
	Key  uint64 // the key (or its 8-byte hash)
	Type uint8  // operation type (matches workload.OpType values)
	Flag uint8  // engine-specific flags (e.g. hot-covered marker for scans)
	Size uint16 // value size or scan count
	Buf  uint32 // network-buffer slot index (receive slot for put, response slot for get)
}

type slot struct {
	seq  atomic.Uint64
	n    int32
	_    [3]int32 // keep reqs 16-byte aligned and pad the header
	reqs [MaxBatch]Request
}

type pad64 struct {
	v atomic.Uint64
	_ [7]uint64
}

// SPSC is a bounded single-producer single-consumer ring of request
// batches with Vyukov-style per-slot sequence numbers, plus a consumer
// "done" cursor for piggybacked completion.
type SPSC struct {
	mask  uint64
	slots []slot

	// Producer-private cursor (accessed only by the producer).
	head uint64
	// Consumer-private cursor (accessed only by the consumer).
	tail uint64

	// done counts slots fully processed (committed) by the consumer; the
	// producer polls it to learn about completions.
	done pad64
	// pushed counts slots published by the producer (for symmetry/stats).
	pushed pad64
}

// NewSPSC creates a ring with the given capacity in slots (rounded up to a
// power of two, minimum 2).
func NewSPSC(capacity int) *SPSC {
	c := 2
	for c < capacity {
		c <<= 1
	}
	q := &SPSC{mask: uint64(c - 1), slots: make([]slot, c)}
	for i := range q.slots {
		q.slots[i].seq.Store(uint64(i))
	}
	return q
}

// Cap returns the ring capacity in slots.
func (q *SPSC) Cap() int { return len(q.slots) }

// Push publishes a batch of up to MaxBatch requests as one slot. It
// returns false when the ring is full (the producer should retry after
// draining completions). Must be called from a single producer goroutine.
func (q *SPSC) Push(reqs []Request) bool {
	if len(reqs) == 0 || len(reqs) > MaxBatch {
		panic("ring: batch size out of range")
	}
	s := &q.slots[q.head&q.mask]
	if s.seq.Load() != q.head {
		return false // slot not yet freed by consumer
	}
	n := copy(s.reqs[:], reqs)
	s.n = int32(n)
	s.seq.Store(q.head + 1)
	q.head++
	q.pushed.v.Add(1)
	return true
}

// Peek returns the oldest unprocessed batch without freeing its slot, or
// nil when the ring is empty. The returned slice aliases ring storage and
// is valid until the matching Commit. Must be called from a single
// consumer goroutine.
func (q *SPSC) Peek() []Request {
	s := &q.slots[q.tail&q.mask]
	if s.seq.Load() != q.tail+1 {
		return nil
	}
	return s.reqs[:s.n]
}

// Commit frees the slot returned by the last Peek and advances the done
// cursor — the paper's piggybacked completion signal. Calling Commit
// without a successful Peek corrupts the ring; the consumer loop owns this
// discipline.
func (q *SPSC) Commit() {
	s := &q.slots[q.tail&q.mask]
	s.seq.Store(q.tail + q.mask + 1)
	q.tail++
	q.done.v.Add(1)
}

// Done returns the number of batches fully processed by the consumer. The
// producer compares it against its own count of pushed batches to complete
// the corresponding response contexts in FIFO order.
func (q *SPSC) Done() uint64 { return q.done.v.Load() }

// Pushed returns the number of batches published.
func (q *SPSC) Pushed() uint64 { return q.pushed.v.Load() }

// Empty reports whether the consumer has drained everything currently
// published (used by the thread-reassignment protocol, which must wait for
// residual requests before a worker switches roles).
func (q *SPSC) Empty() bool { return q.Done() == q.Pushed() }
