package scenario

import (
	"errors"
	"testing"
	"time"

	"mutps/internal/benchfmt"
	"mutps/internal/workload"
)

// memClient counts requests and optionally slows down or fails.
type memClient struct {
	ops   int
	delay time.Duration
	fail  error
	keys  []uint64
}

func (c *memClient) Do(req workload.Request) error {
	if c.fail != nil {
		return c.fail
	}
	c.ops++
	c.keys = append(c.keys, req.Key)
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	return nil
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"diurnal", "hotspot-migrate", "overload-shed",
		"scan-heavy", "size-shift", "ycsb-mix"}
	names := Names()
	if len(names) != len(want) {
		t.Fatalf("matrix has %d scenarios, want %d: %v", len(names), len(want), names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names()[%d] = %q, want %q", i, names[i], n)
		}
		s, ok := Lookup(n)
		if !ok {
			t.Fatalf("Lookup(%q) missing", n)
		}
		if s.Name != n || len(s.Phases) < 2 || s.Keys == 0 || s.Description == "" {
			t.Fatalf("scenario %q malformed: %+v", n, s)
		}
		if s.Duration() <= 0 || s.MaxValueSize() <= 0 {
			t.Fatalf("scenario %q has no duration or sizes", n)
		}
	}
	if _, ok := Lookup("no-such"); ok {
		t.Fatal("Lookup invented a scenario")
	}
}

func TestScaledShrinksDurations(t *testing.T) {
	s, _ := Lookup("size-shift")
	half := Scaled(s, 0.5)
	if half.Duration() != s.Duration()/2 {
		t.Fatalf("scaled duration = %v, want %v", half.Duration(), s.Duration()/2)
	}
	if s.Phases[0].Duration != 3*time.Second {
		t.Fatal("Scaled mutated the registry copy")
	}
}

func TestRunnerEmitsWindowsPerPhase(t *testing.T) {
	sc := Scenario{
		Name: "t", Keys: 1024,
		Phases: []Phase{
			{Name: "p1", Duration: 120 * time.Millisecond, Mix: workload.MixYCSBC, ValueSize: 16},
			{Name: "p2", Duration: 120 * time.Millisecond, Mix: workload.MixYCSBA, ValueSize: 32},
		},
	}
	cli := &memClient{}
	var streamed int
	var phases []string
	r := &Runner{
		Scenario: sc, Client: cli, Window: 40 * time.Millisecond, Seed: 1,
		Emit:    func(benchfmt.Record) { streamed++ },
		OnPhase: func(_ int, ph Phase) { phases = append(phases, ph.Name) },
		Extra:   func() map[string]any { return map[string]any{"probe": 7} },
	}
	recs, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 4 {
		t.Fatalf("only %d windows emitted", len(recs))
	}
	if streamed != len(recs) {
		t.Fatalf("Emit saw %d records, returned %d", streamed, len(recs))
	}
	if len(phases) != 2 || phases[0] != "p1" || phases[1] != "p2" {
		t.Fatalf("OnPhase calls: %v", phases)
	}
	seenP2 := false
	lastWindow := map[string]int{}
	var totalOps uint64
	for _, rec := range recs {
		if err := rec.Validate(); err != nil {
			t.Fatalf("invalid record: %v (%+v)", err, rec)
		}
		if rec.Scenario != "t" || rec.Bench != "scenario" {
			t.Fatalf("bad identity: %+v", rec)
		}
		if rec.Window != lastWindow[rec.Phase]+1 {
			t.Fatalf("phase %s window %d after %d", rec.Phase, rec.Window, lastWindow[rec.Phase])
		}
		lastWindow[rec.Phase] = rec.Window
		if rec.Phase == "p2" {
			seenP2 = true
			if rec.Config["value_size"] != 32 {
				t.Fatalf("p2 config: %+v", rec.Config)
			}
		}
		if rec.Extra["probe"] != 7 {
			t.Fatalf("Extra not sampled: %+v", rec.Extra)
		}
		totalOps += rec.Ops
	}
	if !seenP2 {
		t.Fatal("no p2 windows")
	}
	if totalOps != uint64(cli.ops) {
		t.Fatalf("window ops sum %d != client ops %d", totalOps, cli.ops)
	}
}

func TestRunnerTargetRatePaces(t *testing.T) {
	sc := Scenario{
		Name: "paced", Keys: 1024,
		Phases: []Phase{{
			Name: "slow", Duration: 300 * time.Millisecond,
			Mix: workload.MixYCSBC, ValueSize: 16, TargetRate: 1000,
		}},
	}
	cli := &memClient{}
	r := &Runner{Scenario: sc, Client: cli, Window: 100 * time.Millisecond}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	// 1000 ops/s over 0.3 s ≈ 300 ops; unpaced this client would do
	// millions. Allow generous jitter either way.
	if cli.ops > 600 {
		t.Fatalf("pacing failed: %d ops for a 300-op budget", cli.ops)
	}
	if cli.ops < 100 {
		t.Fatalf("pacing starved the run: %d ops", cli.ops)
	}
}

func TestRunnerKeyOffsetRotates(t *testing.T) {
	sc := Scenario{
		Name: "rot", Keys: 100,
		Phases: []Phase{{
			Name: "off", Duration: 30 * time.Millisecond,
			Mix: workload.MixYCSBC, ValueSize: 16, Keys: 10, KeyOffset: 50,
			Theta: 0, ThetaSet: true,
		}},
	}
	cli := &memClient{}
	r := &Runner{Scenario: sc, Client: cli, Window: 30 * time.Millisecond}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if len(cli.keys) == 0 {
		t.Fatal("no requests issued")
	}
	for _, k := range cli.keys {
		if k >= 100 {
			t.Fatalf("key %d outside the scenario keyspace", k)
		}
	}
}

func TestRunnerPropagatesClientError(t *testing.T) {
	sc := Scenario{
		Name: "err", Keys: 10,
		Phases: []Phase{{Name: "p", Duration: time.Second, Mix: workload.MixYCSBC, ValueSize: 8}},
	}
	boom := errors.New("store exploded")
	r := &Runner{Scenario: sc, Client: &memClient{fail: boom}}
	if _, err := r.Run(); err == nil || !errors.Is(err, boom) && err.Error() == "" {
		t.Fatalf("err = %v, want wrapped client error", err)
	}
}
