// Package scenario defines the dynamic-workload benchmark matrix: scripted
// multi-phase workloads (mix switches, value-size shifts, hotspot
// migration, load ramps, scan storms, overload) that exercise a store's
// behaviour *across* a change, not just at steady state. A Runner drives
// any Client through a scenario and emits one normalized benchfmt record
// per measurement window, which is what the throughput-recovery curves
// (paper Fig 14) are plotted from.
package scenario

import (
	"fmt"
	"sort"
	"time"

	"mutps/internal/benchfmt"
	"mutps/internal/obs"
	"mutps/internal/workload"
)

// Phase is one homogeneous stretch of a scenario. Zero-value fields
// inherit the scenario defaults (Keys) or the package defaults (Theta
// 0.99, ValueSize 64, ScanLen 50).
type Phase struct {
	Name     string
	Duration time.Duration
	Mix      workload.Mix
	Theta    float64
	// ThetaSet marks Theta as deliberate even when 0 (uniform); without
	// it a zero Theta means "default to 0.99".
	ThetaSet   bool
	ValueSize  int
	Keys       uint64
	KeyOffset  uint64  // rotates the popularity ranking through the keyspace
	TargetRate float64 // ops/s cap; 0 = open throttle
	ScanLen    int
}

// Scenario is a named phase sequence over one keyspace.
type Scenario struct {
	Name        string
	Description string
	Keys        uint64 // keyspace every phase draws from
	Phases      []Phase
}

// MaxValueSize returns the largest value any phase writes — the preload
// sizing hint.
func (s Scenario) MaxValueSize() int {
	m := 0
	for _, ph := range s.phases() {
		if ph.ValueSize > m {
			m = ph.ValueSize
		}
	}
	return m
}

// Duration returns the scenario's total scripted length.
func (s Scenario) Duration() time.Duration {
	var d time.Duration
	for _, ph := range s.Phases {
		d += ph.Duration
	}
	return d
}

// phases returns the phase list with defaults resolved.
func (s Scenario) phases() []Phase {
	out := make([]Phase, len(s.Phases))
	for i, ph := range s.Phases {
		if ph.Keys == 0 {
			ph.Keys = s.Keys
		}
		if ph.Theta == 0 && !ph.ThetaSet {
			ph.Theta = 0.99
		}
		if ph.ValueSize == 0 {
			ph.ValueSize = 64
		}
		if ph.ScanLen == 0 {
			ph.ScanLen = 50
		}
		out[i] = ph
	}
	return out
}

// Scaled returns a copy with every phase duration multiplied by f — how
// CI smoke runs shrink a multi-second scenario to a sub-second one
// without changing its shape.
func Scaled(s Scenario, f float64) Scenario {
	out := s
	out.Phases = append([]Phase(nil), s.Phases...)
	for i := range out.Phases {
		out.Phases[i].Duration = time.Duration(float64(out.Phases[i].Duration) * f)
	}
	return out
}

// registry holds the scenario matrix. Durations are the canonical values
// used for the EXPERIMENTS.md figures; smoke runs scale them down.
var registry = map[string]Scenario{
	"ycsb-mix": {
		Name:        "ycsb-mix",
		Description: "YCSB A -> B -> C mix rotation at fixed size and skew",
		Keys:        65536,
		Phases: []Phase{
			{Name: "ycsb-a", Duration: 2 * time.Second, Mix: workload.MixYCSBA, ValueSize: 128},
			{Name: "ycsb-b", Duration: 2 * time.Second, Mix: workload.MixYCSBB, ValueSize: 128},
			{Name: "ycsb-c", Duration: 2 * time.Second, Mix: workload.MixYCSBC, ValueSize: 128},
		},
	},
	"size-shift": {
		Name:        "size-shift",
		Description: "YCSB-A values shrink 512B -> 8B mid-run (Fig 14 recovery curve)",
		Keys:        65536,
		Phases: []Phase{
			{Name: "pre-shift", Duration: 3 * time.Second, Mix: workload.MixYCSBA, ValueSize: 512},
			{Name: "post-shift", Duration: 3 * time.Second, Mix: workload.MixYCSBA, ValueSize: 8},
		},
	},
	"hotspot-migrate": {
		Name:        "hotspot-migrate",
		Description: "read-mostly zipf traffic whose hot ranks jump to a disjoint key region",
		Keys:        65536,
		Phases: []Phase{
			{Name: "hotspot-a", Duration: 2 * time.Second, Mix: workload.MixYCSBB, ValueSize: 128},
			{Name: "hotspot-b", Duration: 2 * time.Second, Mix: workload.MixYCSBB, ValueSize: 128, KeyOffset: 32768},
			{Name: "hotspot-c", Duration: 2 * time.Second, Mix: workload.MixYCSBB, ValueSize: 128, KeyOffset: 49152},
		},
	},
	"diurnal": {
		Name:        "diurnal",
		Description: "YCSB-B under a night/morning/peak/evening load ramp",
		Keys:        65536,
		Phases: []Phase{
			{Name: "night", Duration: 2 * time.Second, Mix: workload.MixYCSBB, ValueSize: 128, TargetRate: 20_000},
			{Name: "morning", Duration: 2 * time.Second, Mix: workload.MixYCSBB, ValueSize: 128, TargetRate: 100_000},
			{Name: "peak", Duration: 2 * time.Second, Mix: workload.MixYCSBB, ValueSize: 128},
			{Name: "evening", Duration: 2 * time.Second, Mix: workload.MixYCSBB, ValueSize: 128, TargetRate: 50_000},
		},
	},
	"scan-heavy": {
		Name:        "scan-heavy",
		Description: "point-read traffic turns into a YCSB-E scan storm",
		Keys:        65536,
		Phases: []Phase{
			{Name: "point-reads", Duration: 2 * time.Second, Mix: workload.MixYCSBC, ValueSize: 128},
			{Name: "scan-storm", Duration: 2 * time.Second, Mix: workload.MixYCSBE, ValueSize: 128, ScanLen: 50},
			{Name: "point-reads-again", Duration: 2 * time.Second, Mix: workload.MixYCSBC, ValueSize: 128},
		},
	},
	"overload-shed": {
		Name:        "overload-shed",
		Description: "paced steady state, open-throttle overload burst, recovery",
		Keys:        65536,
		Phases: []Phase{
			{Name: "steady", Duration: 2 * time.Second, Mix: workload.MixYCSBA, ValueSize: 128, TargetRate: 50_000},
			{Name: "overload", Duration: 2 * time.Second, Mix: workload.MixYCSBA, ValueSize: 128},
			{Name: "recover", Duration: 2 * time.Second, Mix: workload.MixYCSBA, ValueSize: 128, TargetRate: 50_000},
		},
	},
}

// Lookup returns a scenario from the matrix by name.
func Lookup(name string) (Scenario, bool) {
	s, ok := registry[name]
	return s, ok
}

// Names lists the matrix in stable order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Client executes one request against a store. Implementations decide
// what a miss means (the runner treats only returned errors as fatal).
type Client interface {
	Do(req workload.Request) error
}

// Runner drives a Client through a scenario, measuring windows of fixed
// wall-clock length and emitting one normalized record per window.
type Runner struct {
	Scenario Scenario
	Client   Client
	// Bench names the emitter in the records (default "scenario").
	Bench string
	// Window is the measurement granularity (default 100ms).
	Window time.Duration
	Seed   uint64
	// Emit, when set, receives every record as it is produced (for
	// streaming to a file while the run is live).
	Emit func(benchfmt.Record)
	// OnPhase, when set, runs at each phase start — the hook scenario
	// harnesses use to annotate or force retunes.
	OnPhase func(i int, ph Phase)
	// Extra, when set, is sampled at each window close and attached to
	// the record (tuner counters, store gauges, ...).
	Extra func() map[string]any
}

// Run executes the scenario to completion and returns every window
// record. The first client error aborts the run.
func (r *Runner) Run() ([]benchfmt.Record, error) {
	if r.Client == nil {
		return nil, fmt.Errorf("scenario: Runner.Client is nil")
	}
	bench := r.Bench
	if bench == "" {
		bench = "scenario"
	}
	win := r.Window
	if win == 0 {
		win = 100 * time.Millisecond
	}
	var records []benchfmt.Record
	for i, ph := range r.Scenario.phases() {
		if r.OnPhase != nil {
			r.OnPhase(i, ph)
		}
		gen := workload.NewGenerator(workload.Config{
			Keys:      ph.Keys,
			Theta:     ph.Theta,
			Mix:       ph.Mix,
			ValueSize: workload.FixedSize(ph.ValueSize),
			ScanLen:   ph.ScanLen,
			Seed:      r.Seed + uint64(i),
		})
		phaseStart := time.Now()
		windowStart := phaseStart
		windowIdx := 1
		var windowOps, phaseOps uint64
		lat := obs.NewHistogram(1)

		emit := func(end time.Time) {
			elapsed := end.Sub(windowStart).Seconds()
			if elapsed <= 0 {
				elapsed = win.Seconds()
			}
			snap := lat.Snapshot()
			rec := benchfmt.New(bench)
			rec.Scenario = r.Scenario.Name
			rec.Phase = ph.Name
			rec.Window = windowIdx
			rec.Config = map[string]any{
				"mix":         mixName(ph.Mix),
				"theta":       ph.Theta,
				"value_size":  ph.ValueSize,
				"keys":        ph.Keys,
				"key_offset":  ph.KeyOffset,
				"target_rate": ph.TargetRate,
			}
			rec.Ops = windowOps
			rec.OpsPerSec = float64(windowOps) / elapsed
			rec.P50Ns = float64(snap.Quantile(0.50))
			rec.P99Ns = float64(snap.Quantile(0.99))
			if r.Extra != nil {
				rec.Extra = r.Extra()
			}
			rec.UnixNanos = end.UnixNano()
			records = append(records, rec)
			if r.Emit != nil {
				r.Emit(rec)
			}
		}

		for {
			now := time.Now()
			if now.Sub(phaseStart) >= ph.Duration {
				if windowOps > 0 {
					emit(now)
				}
				break
			}
			if now.Sub(windowStart) >= win {
				emit(now)
				windowStart = now
				windowIdx++
				windowOps = 0
				lat = obs.NewHistogram(1)
			}
			if ph.TargetRate > 0 {
				expect := ph.TargetRate * now.Sub(phaseStart).Seconds()
				if float64(phaseOps) > expect {
					time.Sleep(200 * time.Microsecond)
					continue
				}
			}
			req := gen.Next()
			if ph.KeyOffset != 0 {
				req.Key = (req.Key + ph.KeyOffset) % r.Scenario.Keys
			}
			t0 := time.Now()
			if err := r.Client.Do(req); err != nil {
				return records, fmt.Errorf("scenario %s/%s: %v", r.Scenario.Name, ph.Name, err)
			}
			lat.Record(0, uint64(time.Since(t0)))
			windowOps++
			phaseOps++
		}
	}
	return records, nil
}

// mixName labels the standard mixes; anything custom falls back to its
// fractions.
func mixName(m workload.Mix) string {
	switch m {
	case workload.MixYCSBA:
		return "ycsb-a"
	case workload.MixYCSBB:
		return "ycsb-b"
	case workload.MixYCSBC:
		return "ycsb-c"
	case workload.MixYCSBE:
		return "ycsb-e"
	default:
		return fmt.Sprintf("get%.2f-scan%.2f-del%.2f", m.GetFrac, m.ScanFrac, m.DeleteFrac)
	}
}
