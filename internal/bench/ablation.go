package bench

import (
	"fmt"
	"io"

	"mutps/internal/simkv"
	"mutps/internal/tuner"
	"mutps/internal/workload"
)

// TunerAblation compares the paper's trisecting search against exhaustive
// search: both must land on configurations of equivalent quality, with the
// trisection using far fewer probes (the design-choice ablation DESIGN.md
// calls out).
type TunerAblation struct {
	TrisectScore  float64
	TrisectProbes int
	ExhaustScore  float64
	ExhaustProbes int
}

// RunTunerAblation runs both searches on identical fresh systems.
func RunTunerAblation(s Scale, w io.Writer) TunerAblation {
	mk := func() *simkv.Tunable {
		cfg := workload.Config{Keys: s.Keys, Theta: 0.99,
			Mix: workload.MixYCSBA, ValueSize: workload.FixedSize(64), Seed: s.Seed}
		p := s.params(true, 64)
		sys := simkv.NewSystem(p, simkv.ArchMuTPS, workload.NewGenerator(cfg))
		return &simkv.Tunable{S: sys, MaxCache: s.HotItems, CacheStep: s.HotItems / 2, Window: s.Ops / 4}
	}
	tri := tuner.Optimize(mk())
	exh := tuner.OptimizeExhaustive(mk())
	out := TunerAblation{
		TrisectScore:  tri.Score,
		TrisectProbes: tri.Probes,
		ExhaustScore:  exh.Score,
		ExhaustProbes: exh.Probes,
	}
	fmt.Fprintf(w, "Tuner ablation: trisect %.1f Mops in %d probes vs exhaustive %.1f Mops in %d probes\n",
		out.TrisectScore, out.TrisectProbes, out.ExhaustScore, out.ExhaustProbes)
	return out
}

// Experiments maps experiment IDs (as used by cmd/mutps-bench -fig) to
// runners, in paper order.
func Experiments() []struct {
	ID  string
	Run func(Scale, io.Writer)
} {
	return []struct {
		ID  string
		Run func(Scale, io.Writer)
	}{
		{"2a", func(s Scale, w io.Writer) { RunFig2a(s, w) }},
		{"2b", func(s Scale, w io.Writer) { RunFig2b(s, w) }},
		{"2c", func(s Scale, w io.Writer) { RunFig2c(s, w) }},
		{"tab1", func(s Scale, w io.Writer) { RunTab1(s, w) }},
		{"7", func(s Scale, w io.Writer) { RunFig7(s, w, nil) }},
		{"8a", func(s Scale, w io.Writer) { RunFig8a(s, w) }},
		{"8bc", func(s Scale, w io.Writer) { RunFig8bc(s, w) }},
		{"9", func(s Scale, w io.Writer) { RunFig9(s, w) }},
		{"10", func(s Scale, w io.Writer) { RunFig10(s, w) }},
		{"11", func(s Scale, w io.Writer) { RunFig11(s, w) }},
		{"12", func(s Scale, w io.Writer) { RunFig12(s, w) }},
		{"13a", func(s Scale, w io.Writer) { RunFig13a(s, w) }},
		{"13b", func(s Scale, w io.Writer) { RunFig13b(s, w) }},
		{"13c", func(s Scale, w io.Writer) { RunFig13c(s, w) }},
		{"14", func(s Scale, w io.Writer) { RunFig14(s, w) }},
		{"tuner-ablation", func(s Scale, w io.Writer) { RunTunerAblation(s, w) }},
	}
}
