package bench

import (
	"fmt"
	"net"
	"testing"

	"mutps/internal/kvcore"
	"mutps/internal/netserver"
	"mutps/internal/obs"
)

// BenchmarkNetPipeline measures single-connection throughput as a function
// of the pipelining window: one client connection, a sliding window of W
// in-flight gets over preloaded 64-byte values. window=1 is the synchronous
// baseline (one round trip per op, one write syscall per response);
// larger windows keep the store's receive ring fed from a single socket and
// coalesce response flushes. The reported resp/flush metric is the flush
// coalescing factor — a direct proxy for write-syscall reduction.
func BenchmarkNetPipeline(b *testing.B) {
	for _, window := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			store, err := kvcore.Open(kvcore.Config{Engine: kvcore.Hash, Workers: 4, CRWorkers: 2})
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			const nKeys = 4096
			val := make([]byte, 64)
			for k := uint64(0); k < nKeys; k++ {
				store.Preload(k, val)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			srv := netserver.ServeConfig(store, ln, netserver.Config{MaxInflight: window})
			defer srv.Close()
			pc, err := netserver.DialPipeline(srv.Addr().String(), window)
			if err != nil {
				b.Fatal(err)
			}
			defer pc.Close()

			futs := make([]*netserver.Future, 0, window)
			retire := func(f *netserver.Future) {
				st, _, err := f.Wait()
				if err != nil || st != netserver.StatusFound {
					b.Fatalf("get: status %d err %v", st, err)
				}
				f.Release()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(futs) == window {
					// Window full: everything buffered must hit the wire
					// before blocking on the oldest response.
					if err := pc.Flush(); err != nil {
						b.Fatal(err)
					}
					retire(futs[0])
					copy(futs, futs[1:])
					futs = futs[:window-1]
				}
				f, err := pc.Send(netserver.OpGet, uint64(i%nKeys), nil)
				if err != nil {
					b.Fatal(err)
				}
				futs = append(futs, f)
			}
			if err := pc.Flush(); err != nil {
				b.Fatal(err)
			}
			for _, f := range futs {
				retire(f)
			}
			b.StopTimer()
			if !obs.Disabled {
				m := store.Metrics().SnapshotMap()
				if flushes := m["mutps_net_flush_coalesce_count"]; flushes > 0 {
					b.ReportMetric(m["mutps_net_ops_retired_total"]/flushes, "resp/flush")
				}
			}
		})
	}
}
