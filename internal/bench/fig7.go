package bench

import (
	"fmt"
	"io"

	"mutps/internal/simkv"
	"mutps/internal/workload"
)

// Fig7Cell is one (engine, mix, item size) cell of the overall-performance
// grid with every compared system's throughput in Mops.
type Fig7Cell struct {
	Tree      bool
	Mix       string
	ItemSize  int
	MuTPS     float64
	BaseKV    float64
	ERPCKV    float64
	Passive   float64 // RaceHash for hash rows, Sherman for tree rows
	PassiveBW bool
}

// fig7Mix is one workload column of Figure 7.
type fig7Mix struct {
	name  string
	theta float64
	mix   workload.Mix
}

func fig7Mixes() []fig7Mix {
	return []fig7Mix{
		{"YCSB-A", 0.99, workload.MixYCSBA},
		{"YCSB-B", 0.99, workload.MixYCSBB},
		{"YCSB-C", 0.99, workload.MixYCSBC},
		{"PUT-S", 0.99, workload.MixPutOnly},
		{"GET-U", 0, workload.MixYCSBC},
		{"PUT-U", 0, workload.MixPutOnly},
	}
}

// RunFig7 reproduces the overall-performance grid: six operation mixes ×
// four item sizes × two index engines, for μTPS, BaseKV, eRPCKV, and the
// passive store matching the engine (RaceHash for hash, Sherman for tree).
// Sizes may be restricted (nil = the paper's 8/64/256/1024).
func RunFig7(s Scale, w io.Writer, sizes []int) []Fig7Cell {
	if sizes == nil {
		sizes = []int{8, 64, 256, 1024}
	}
	var out []Fig7Cell
	for _, tree := range []bool{true, false} {
		engine := "libcuckoo (μTPS-H)"
		if tree {
			engine = "MassTree (μTPS-T)"
		}
		fmt.Fprintf(w, "Fig 7 [%s]\n", engine)
		tw := newTab(w)
		fmt.Fprintln(tw, "mix\titem\tμTPS\tBaseKV\teRPCKV\tpassive")
		for _, m := range fig7Mixes() {
			for _, sz := range sizes {
				cell := s.runFig7Cell(tree, m, sz)
				out = append(out, cell)
				suffix := ""
				if cell.PassiveBW {
					suffix = "*"
				}
				fmt.Fprintf(tw, "%s\t%dB\t%s\t%s\t%s\t%s%s\n",
					m.name, sz, fmtMops(cell.MuTPS), fmtMops(cell.BaseKV),
					fmtMops(cell.ERPCKV), fmtMops(cell.Passive), suffix)
			}
		}
		tw.Flush()
		fmt.Fprintln(w, "  (* = bandwidth-bound)")
	}
	return out
}

func (s Scale) runFig7Cell(tree bool, m fig7Mix, sz int) Fig7Cell {
	wl := s.workload(m.theta, m.mix, sz)
	p := s.params(tree, sz)
	if m.theta == 0 {
		// Uniform traffic has no hot set worth caching; the tuner would
		// shrink it (Fig 13c) — skip the sweep dimension.
		p.HotItems = 0
	}
	mu := s.runMuTPSBest(p, wl)
	base := s.runArch(p, simkv.ArchRTC, wl)
	erpc := s.runArch(p, simkv.ArchERPC, wl)
	kind := simkv.RaceHash
	if tree {
		kind = simkv.Sherman
	}
	passive, bw := simkv.RunPassive(simkv.PassiveParams{
		HW:       s.HW,
		Kind:     kind,
		ItemSize: sz,
		VerbRate: s.passiveVerbRate(),
	}, workload.NewGenerator(wl), s.Ops)
	return Fig7Cell{
		Tree:      tree,
		Mix:       m.name,
		ItemSize:  sz,
		MuTPS:     mu.Mops(s.HW),
		BaseKV:    base.Mops(s.HW),
		ERPCKV:    erpc.Mops(s.HW),
		Passive:   passive,
		PassiveBW: bw,
	}
}

// passiveVerbRate scales the RNIC verb ceiling with the share of the full
// 28-core machine in use, so quick-scale comparisons keep the full-scale
// CPU-vs-NIC geometry. Bandwidth caps always use the true line rate.
func (s Scale) passiveVerbRate() float64 {
	return 60e6 * float64(s.HW.Cores) / 28
}
