package bench

import (
	"io"
	"math"
	"os"
	"testing"
)

// The shape assertions here are the per-experiment acceptance criteria
// recorded in EXPERIMENTS.md: relative orderings and rough factors, never
// absolute numbers.

func quiet() io.Writer {
	if testing.Verbose() {
		return os.Stdout
	}
	return io.Discard
}

func TestFig2aShapes(t *testing.T) {
	s := QuickScale()
	rows := RunFig2a(s, quiet())
	if len(rows) != 4 {
		t.Fatalf("want 4 item sizes, got %d", len(rows))
	}
	for _, r := range rows {
		if r.TPSMops <= r.TPQMops {
			t.Errorf("%dB: TPS (%.1f) must beat TPQ (%.1f)", r.ItemSize, r.TPSMops, r.TPQMops)
		}
		// CAT-only partitioning must not explain away the TPS gain. At
		// 1 KB the experiment is stage-2 bound and the two converge (the
		// paper also shows CAT closing part of the gap at large items), so
		// allow a small tolerance there.
		tol := 1.0
		if r.ItemSize >= 1024 {
			tol = 1.06
		}
		if r.TPQCATMops >= r.TPSMops*tol {
			t.Errorf("%dB: CAT partitioning (%.1f) must not reach TPS (%.1f)",
				r.ItemSize, r.TPQCATMops, r.TPSMops)
		}
		// PCM observation: stage-1 miss rate far below the RTC pool's.
		if r.Stage1Miss >= r.TPQMiss/2 {
			t.Errorf("%dB: stage-1 miss %.0f%% should be well under TPQ's %.0f%%",
				r.ItemSize, 100*r.Stage1Miss, 100*r.TPQMiss)
		}
	}
}

func TestFig2bHotspotSeparationHelps(t *testing.T) {
	s := QuickScale()
	rows := RunFig2b(s, quiet())
	for _, r := range rows {
		if r.SeparateMops <= r.BaselineMops {
			t.Errorf("zipf %.2f: separation (%.1f) must beat unified (%.1f)",
				r.Theta, r.SeparateMops, r.BaselineMops)
		}
	}
}

func TestFig2cSEvsSNTradeoff(t *testing.T) {
	s := QuickScale()
	pts := RunFig2c(s, quiet())
	if len(pts) < 3 {
		t.Fatalf("need several thread counts, got %d", len(pts))
	}
	first, last := pts[0], pts[len(pts)-1]
	// SE per-worker efficiency must fall with scale (the collapse trend).
	if last.SEMops/float64(last.Workers) >= first.SEMops/float64(first.Workers) {
		t.Error("SE per-worker efficiency should degrade with more workers")
	}
	// At full width the TPS arrangement must beat SE.
	if last.TPSMops <= last.SEMops {
		t.Errorf("TPS (%.1f) must beat SE (%.1f) at %d workers",
			last.TPSMops, last.SEMops, last.Workers)
	}
}

func TestTab1MatchesPaper(t *testing.T) {
	s := QuickScale()
	rows := RunTab1(s, quiet())
	if len(rows) != 3 {
		t.Fatalf("want 3 clusters")
	}
	for _, r := range rows {
		if math.Abs(r.GotPut-r.WantPut) > 0.02 {
			t.Errorf("%s: put ratio %.2f vs wanted %.2f", r.Name, r.GotPut, r.WantPut)
		}
		if r.GotPut > 0 && math.Abs(r.GotAvgVal-float64(r.WantAvgVal)) > 1 {
			t.Errorf("%s: avg value %.0f vs wanted %d", r.Name, r.GotAvgVal, r.WantAvgVal)
		}
	}
}

func TestFig7KeyShapes(t *testing.T) {
	s := QuickScale()
	// Restrict to two item sizes to keep the grid fast; the cmd tool runs
	// the full four.
	cells := RunFig7(s, quiet(), []int{8, 256})
	get := func(tree bool, mix string, size int) Fig7Cell {
		for _, c := range cells {
			if c.Tree == tree && c.Mix == mix && c.ItemSize == size {
				return c
			}
		}
		t.Fatalf("cell %v/%s/%d missing", tree, mix, size)
		return Fig7Cell{}
	}
	// Read-intensive skewed tree: μTPS wins clearly.
	for _, mix := range []string{"YCSB-B", "YCSB-C"} {
		c := get(true, mix, 256)
		if c.MuTPS <= c.BaseKV {
			t.Errorf("tree/%s/256B: μTPS %.1f must beat BaseKV %.1f", mix, c.MuTPS, c.BaseKV)
		}
		if c.ERPCKV >= c.MuTPS {
			t.Errorf("tree/%s/256B: eRPC %.1f must trail μTPS %.1f under skew", mix, c.ERPCKV, c.MuTPS)
		}
		if c.Passive >= c.MuTPS {
			t.Errorf("tree/%s/256B: passive %.1f must trail μTPS %.1f", mix, c.Passive, c.MuTPS)
		}
	}
	// Uniform small-item hash: gains are modest; eRPC is competitive.
	c := get(false, "GET-U", 8)
	if c.MuTPS < c.BaseKV*0.9 {
		t.Errorf("hash/GET-U/8B: μTPS %.1f should at least match BaseKV %.1f", c.MuTPS, c.BaseKV)
	}
	if c.ERPCKV < c.BaseKV {
		t.Errorf("hash/GET-U/8B: eRPC %.1f should beat BaseKV %.1f", c.ERPCKV, c.BaseKV)
	}
	// Write-intensive skewed hash: BaseKV contention makes μTPS's lead big.
	c = get(false, "PUT-S", 256)
	if c.MuTPS <= c.BaseKV {
		t.Errorf("hash/PUT-S/256B: μTPS %.1f must beat BaseKV %.1f", c.MuTPS, c.BaseKV)
	}
	// μTPS's overall speedup band over BaseKV: within the paper's 1.03–5.46×
	// envelope (allowing a little slack below on uniform cells).
	for _, cell := range cells {
		ratio := cell.MuTPS / cell.BaseKV
		if ratio < 0.9 || ratio > 7 {
			t.Errorf("%v/%s/%dB: speedup %.2fx outside plausible envelope",
				cell.Tree, cell.Mix, cell.ItemSize, ratio)
		}
	}
}

func TestFig8aScanShapes(t *testing.T) {
	s := QuickScale()
	rows := RunFig8a(s, quiet())
	for _, r := range rows {
		if r.MuTPST <= r.BaseKV {
			t.Errorf("%s: μTPS-T %.1f must beat BaseKV %.1f", r.Workload, r.MuTPST, r.BaseKV)
		}
		if r.MuTPST <= r.ERPCKV {
			t.Errorf("%s: μTPS-T %.1f must beat eRPCKV %.1f", r.Workload, r.MuTPST, r.ERPCKV)
		}
	}
}

func TestFig8bcETCShapes(t *testing.T) {
	s := QuickScale()
	rows := RunFig8bc(s, quiet())
	for _, r := range rows {
		if r.MuTPST <= r.BaseKV {
			t.Errorf("ETC %.0f%% gets: μTPS-T %.1f must beat BaseKV %.1f",
				100*r.GetRatio, r.MuTPST, r.BaseKV)
		}
		if r.MuTPST <= r.ERPCKV {
			t.Errorf("ETC %.0f%% gets: μTPS-T %.1f must beat eRPCKV %.1f",
				100*r.GetRatio, r.MuTPST, r.ERPCKV)
		}
	}
}

func TestFig9TwitterShapes(t *testing.T) {
	s := QuickScale()
	rows := RunFig9(s, quiet())
	byName := map[string]Fig9Row{}
	for _, r := range rows {
		byName[r.Cluster] = r
	}
	// Skewed clusters: μTPS wins over BaseKV.
	for _, n := range []string{"Cluster-12", "Cluster-19"} {
		r := byName[n]
		if r.MuTPST <= r.BaseKV {
			t.Errorf("%s: μTPS-T %.1f must beat BaseKV %.1f", n, r.MuTPST, r.BaseKV)
		}
	}
	// Uniform write-dominant Cluster-31: roughly a tie (paper: +0.1%).
	r := byName["Cluster-31"]
	if r.MuTPST < r.BaseKV*0.85 {
		t.Errorf("Cluster-31: μTPS-T %.1f should be near BaseKV %.1f", r.MuTPST, r.BaseKV)
	}
	// Read-intensive Cluster-19: μTPS beats eRPC. (On the write-dominant
	// clusters 12/31 our lock-free shared-nothing model is stronger than
	// the paper's eRPCKV measurement — a documented deviation in
	// EXPERIMENTS.md.)
	if r := byName["Cluster-19"]; r.MuTPST <= r.ERPCKV {
		t.Errorf("Cluster-19: μTPS-T %.1f must beat eRPCKV %.1f", r.MuTPST, r.ERPCKV)
	}
}

func TestFig10LatencyShapes(t *testing.T) {
	s := QuickScale()
	s.LatOps = 3000
	pts := RunFig10(s, quiet())
	// Throughput grows with clients for each system; P99 >= P50 always.
	byKey := map[string][]Fig10Point{}
	for _, p := range pts {
		k := p.System
		if p.Tree {
			k += "/tree"
		}
		byKey[k] = append(byKey[k], p)
		if p.P99Usec < p.P50Usec {
			t.Errorf("%s @%d clients: P99 %.2f < P50 %.2f", p.System, p.Clients, p.P99Usec, p.P50Usec)
		}
		if p.P50Usec < 2.0 {
			t.Errorf("%s @%d clients: latency below network RTT", p.System, p.Clients)
		}
	}
	for k, series := range byKey {
		if series[len(series)-1].Mops <= series[0].Mops {
			t.Errorf("%s: throughput should grow from %d to %d clients",
				k, series[0].Clients, series[len(series)-1].Clients)
		}
	}
}

func TestFig11ScalabilityShapes(t *testing.T) {
	s := QuickScale()
	pts := RunFig11(s, quiet())
	// At the largest worker count, μTPS leads BaseKV on both engines for
	// 256B; μTPS must scale (last > first).
	type key struct {
		tree bool
		size int
	}
	series := map[key][]Fig11Point{}
	for _, p := range pts {
		k := key{p.Tree, p.ItemSize}
		series[k] = append(series[k], p)
	}
	for k, ps := range series {
		first, last := ps[0], ps[len(ps)-1]
		if last.MuTPS <= first.MuTPS {
			t.Errorf("%v: μTPS must scale with workers (%.1f → %.1f)", k, first.MuTPS, last.MuTPS)
		}
		if k.size == 256 && last.MuTPS <= last.BaseKV {
			t.Errorf("%v: μTPS %.1f must lead BaseKV %.1f at full width", k, last.MuTPS, last.BaseKV)
		}
	}
}

func TestFig12BatchingShapes(t *testing.T) {
	s := QuickScale()
	pts := RunFig12(s, quiet())
	first, best := pts[0], pts[0]
	for _, p := range pts {
		if p.MuTPST > best.MuTPST {
			best = p
		}
	}
	if best.MuTPST <= first.MuTPST {
		t.Errorf("batching must improve μTPS-T: batch1=%.1f best=%.1f", first.MuTPST, best.MuTPST)
	}
	var bestH Fig12Point = pts[0]
	for _, p := range pts {
		if p.MuTPSH > bestH.MuTPSH {
			bestH = p
		}
	}
	if bestH.MuTPSH <= pts[0].MuTPSH {
		t.Errorf("batching must improve μTPS-H: batch1=%.1f best=%.1f", pts[0].MuTPSH, bestH.MuTPSH)
	}
}

func TestFig13TunerDirections(t *testing.T) {
	s := QuickScale()
	s.Ops = 8000 // tuner probes are numerous; keep windows small
	a := RunFig13a(s, quiet())
	// Larger items → more MR workers needed (same keyspace, same skew).
	find := func(keys uint64, size int, skew bool) Fig13aPoint {
		for _, p := range a {
			if p.Keyspace == keys && p.ItemSize == size && p.Skewed == skew {
				return p
			}
		}
		t.Fatal("missing Fig13a point")
		return Fig13aPoint{}
	}
	// A larger keyspace deepens the index and increases per-request MR
	// work, pulling workers to the MR layer (uniform rows, where the hot
	// cache does not confound the split).
	smallKeys := find(s.Keys/10, 8, false)
	bigKeys := find(s.Keys, 8, false)
	if bigKeys.MRShare < smallKeys.MRShare {
		t.Errorf("larger keyspace should push work to MR: %.2f vs %.2f",
			bigKeys.MRShare, smallKeys.MRShare)
	}
	// Skew moves work to the CR layer (the hot set absorbs traffic).
	skewed := find(s.Keys, 8, true)
	uniform := find(s.Keys, 8, false)
	if skewed.MRShare > uniform.MRShare {
		t.Errorf("skew should shrink the MR share: skewed %.2f vs uniform %.2f",
			skewed.MRShare, uniform.MRShare)
	}
}

func TestFig14DynamicReconfiguration(t *testing.T) {
	s := QuickScale()
	s.Ops = 8000
	pts := RunFig14(s, quiet())
	var oldM, tuned float64
	for _, p := range pts {
		switch p.Phase {
		case "old":
			oldM = p.Mops
		case "tuned":
			tuned = p.Mops
		}
	}
	if tuned <= oldM {
		t.Errorf("after the 512B→8B shift and retune, throughput must rise: %.1f → %.1f", oldM, tuned)
	}
}

func TestTunerAblationShapes(t *testing.T) {
	s := QuickScale()
	s.Ops = 8000
	r := RunTunerAblation(s, quiet())
	if r.TrisectProbes >= r.ExhaustProbes {
		t.Errorf("trisection (%d probes) must be cheaper than exhaustive (%d)",
			r.TrisectProbes, r.ExhaustProbes)
	}
	if r.TrisectScore < r.ExhaustScore*0.85 {
		t.Errorf("trisection score %.1f too far below exhaustive %.1f",
			r.TrisectScore, r.ExhaustScore)
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
		if e.Run == nil {
			t.Fatalf("experiment %q has no runner", e.ID)
		}
	}
	for _, want := range []string{"2a", "2b", "2c", "tab1", "7", "8a", "8bc", "9", "10", "11", "12", "13a", "13b", "13c", "14"} {
		if !ids[want] {
			t.Fatalf("experiment %q missing from registry", want)
		}
	}
}
