package bench

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"mutps/internal/benchfmt"
	"mutps/internal/cluster"
	"mutps/internal/kvcore"
	"mutps/internal/obs"
)

// BenchmarkClusterGets measures aggregate get throughput against an
// in-process shard set at 1 and 2 shards: the scale-out question is
// whether adding a shard adds throughput. Each of four driver goroutines
// keeps one 64-key mget frame in flight, so every iteration exercises
// the full fan-out path — consistent-hash grouping, one batched frame
// per touched shard, positional scatter of the replies.
//
// Honest-numbers caveat: on a single-core host the shards time-share one
// CPU and 2-shard throughput cannot exceed 1-shard (the paper's scaling
// claim needs a core per shard). The keys/frame metric is deterministic
// batching behavior and holds on any host.
//
// Set BENCH_CLUSTER_OUT=path to append one machine-readable JSON record
// per sub-benchmark (shards, ops/s, P50/P99, avg keys/frame).
func BenchmarkClusterGets(b *testing.B) {
	const (
		nKeys   = 8192
		batch   = 64
		drivers = 4
	)
	for _, shards := range []int{1, 2} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			l, err := cluster.LaunchLocal(shards, cluster.LocalOptions{
				Engine: kvcore.Hash, Workers: 4, CRWorkers: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			cli, err := cluster.Dial(cluster.Config{
				Addrs:     l.Addrs(),
				Inflight:  128,
				MGetBatch: batch,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer cli.Close()
			// Preload directly into each shard's store, routed the same way
			// the client routes, so the measured loop is pure gets.
			val := make([]byte, 64)
			for k := uint64(0); k < nKeys; k++ {
				l.Store(cli.ShardOf(k)).Preload(k, val)
			}

			lat := obs.NewHistogram(drivers)
			perDriver := b.N / drivers
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for d := 0; d < drivers; d++ {
				wg.Add(1)
				go func(d int) {
					defer wg.Done()
					keys := make([]uint64, batch)
					// Stride the keyspace per driver so frames hit all shards.
					next := uint64(d * 1047)
					for i := 0; i < perDriver; i += batch {
						n := batch
						if rem := perDriver - i; rem < n {
							n = rem
						}
						for j := 0; j < n; j++ {
							keys[j] = next % nKeys
							next += 7
						}
						t0 := time.Now()
						_, found, err := cli.MGet(keys[:n])
						if err != nil {
							b.Error(err)
							return
						}
						lat.Record(d, uint64(time.Since(t0)))
						for j, ok := range found {
							if !ok {
								b.Errorf("key %d missing", keys[j])
								return
							}
						}
					}
				}(d)
			}
			wg.Wait()
			b.StopTimer()

			elapsed := b.Elapsed()
			opsPerSec := float64(perDriver*drivers) / elapsed.Seconds()
			keysPerFrame := 0.0
			if !obs.Disabled {
				m := cli.Metrics().SnapshotMap()
				if frames := m["mutps_cluster_mget_frames_total"]; frames > 0 {
					keysPerFrame = m["mutps_cluster_mget_keys_per_frame_sum"] / frames
					b.ReportMetric(keysPerFrame, "keys/frame")
				}
			}
			snap := lat.Snapshot()
			b.ReportMetric(opsPerSec, "gets/s")
			if out := os.Getenv("BENCH_CLUSTER_OUT"); out != "" && b.N > 1 {
				rec := benchfmt.New("BenchmarkClusterGets")
				rec.Config = map[string]any{
					"shards":     shards,
					"batch_size": batch,
					"drivers":    drivers,
				}
				rec.Ops = uint64(perDriver * drivers)
				rec.OpsPerSec = opsPerSec
				// P50/P99 here are per mget *frame*, not per key.
				rec.P50Ns = float64(snap.Quantile(0.50))
				rec.P99Ns = float64(snap.Quantile(0.99))
				rec.Extra = map[string]any{
					"latency_of":         "mget-frame",
					"avg_keys_per_frame": keysPerFrame,
				}
				appendBenchRecord(b, out, rec)
			}
		})
	}
}

// appendBenchRecord stamps and appends one normalized record (schema
// mutps-bench/v1) so repeated runs (and sub-benchmarks) accumulate into a
// comparable series all BENCH_*.json artifacts share.
func appendBenchRecord(b *testing.B, path string, rec benchfmt.Record) {
	b.Helper()
	rec.UnixNanos = time.Now().UnixNano()
	if err := benchfmt.Append(path, rec); err != nil {
		b.Fatal(err)
	}
}
