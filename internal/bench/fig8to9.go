package bench

import (
	"fmt"
	"io"

	"mutps/internal/simkv"
	"mutps/internal/workload"
)

// Fig8aRow is one workload column of the scan experiment.
type Fig8aRow struct {
	Workload string
	MuTPST   float64
	BaseKV   float64
	ERPCKV   float64
}

// RunFig8a reproduces Figure 8a: scan throughput (YCSB-E and scan-only,
// average range 50, 8 B items, tree index).
func RunFig8a(s Scale, w io.Writer) []Fig8aRow {
	var out []Fig8aRow
	tw := newTab(w)
	fmt.Fprintln(tw, "Fig 8a: scans (range≈50, 8B items, tree)\t(Mops)")
	fmt.Fprintln(tw, "workload\tμTPS-T\tBaseKV\teRPCKV")
	for _, m := range []struct {
		name string
		mix  workload.Mix
	}{
		{"YCSB-E", workload.MixYCSBE},
		{"scan-only", workload.MixScanOnly},
	} {
		wl := s.workload(0.99, m.mix, 8)
		p := s.params(true, 8)
		mu := s.runMuTPSBest(p, wl)
		base := s.runArch(p, simkv.ArchRTC, wl)
		erpc := s.runArch(p, simkv.ArchERPC, wl)
		row := Fig8aRow{
			Workload: m.name,
			MuTPST:   mu.Mops(s.HW),
			BaseKV:   base.Mops(s.HW),
			ERPCKV:   erpc.Mops(s.HW),
		}
		out = append(out, row)
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", m.name,
			fmtMops(row.MuTPST), fmtMops(row.BaseKV), fmtMops(row.ERPCKV))
	}
	tw.Flush()
	return out
}

// Fig8bcRow is one get-ratio column of the ETC experiment.
type Fig8bcRow struct {
	GetRatio float64
	MuTPST   float64
	MuTPSH   float64
	BaseKV   float64
	ERPCKV   float64
}

// RunFig8bc reproduces Figures 8b–c: the Meta ETC pool value-size mixture
// at get ratios of 10%, 50%, and 90%.
func RunFig8bc(s Scale, w io.Writer) []Fig8bcRow {
	var out []Fig8bcRow
	tw := newTab(w)
	fmt.Fprintln(tw, "Fig 8b-c: ETC pool\t(Mops)")
	fmt.Fprintln(tw, "get%\tμTPS-T\tμTPS-H\tBaseKV\teRPCKV")
	for _, ratio := range []float64{0.1, 0.5, 0.9} {
		wl := workload.ETCConfig(s.Keys, ratio, s.Seed)
		// The simulator models one value size per run; use the ETC mean.
		meanSize := int(wl.ValueSize.Mean())
		wlFixed := wl
		wlFixed.ValueSize = workload.FixedSize(meanSize)
		pT := s.params(true, meanSize)
		pH := s.params(false, meanSize)
		muT := s.runMuTPSBest(pT, wlFixed)
		muH := s.runMuTPSBest(pH, wlFixed)
		base := s.runArch(pT, simkv.ArchRTC, wlFixed)
		erpc := s.runArch(pT, simkv.ArchERPC, wlFixed)
		row := Fig8bcRow{
			GetRatio: ratio,
			MuTPST:   muT.Mops(s.HW),
			MuTPSH:   muH.Mops(s.HW),
			BaseKV:   base.Mops(s.HW),
			ERPCKV:   erpc.Mops(s.HW),
		}
		out = append(out, row)
		fmt.Fprintf(tw, "%.0f%%\t%s\t%s\t%s\t%s\n", 100*ratio,
			fmtMops(row.MuTPST), fmtMops(row.MuTPSH), fmtMops(row.BaseKV), fmtMops(row.ERPCKV))
	}
	tw.Flush()
	return out
}

// Fig9Row is one Twitter-cluster column.
type Fig9Row struct {
	Cluster string
	MuTPST  float64
	BaseKV  float64
	ERPCKV  float64
}

// RunFig9 reproduces Figure 9: throughput on the three synthesized Twitter
// traces of Table 1.
func RunFig9(s Scale, w io.Writer) []Fig9Row {
	var out []Fig9Row
	tw := newTab(w)
	fmt.Fprintln(tw, "Fig 9: Twitter traces\t(Mops)")
	fmt.Fprintln(tw, "cluster\tμTPS-T\tBaseKV\teRPCKV")
	for _, c := range workload.TwitterClusters() {
		wl := c.Config(s.Keys, s.Seed)
		p := s.params(true, c.AvgValue)
		if c.ZipfAlpha == 0 {
			p.HotItems = 0
		}
		mu := s.runMuTPSBest(p, wl)
		base := s.runArch(p, simkv.ArchRTC, wl)
		erpc := s.runArch(p, simkv.ArchERPC, wl)
		row := Fig9Row{
			Cluster: c.Name,
			MuTPST:  mu.Mops(s.HW),
			BaseKV:  base.Mops(s.HW),
			ERPCKV:  erpc.Mops(s.HW),
		}
		out = append(out, row)
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", c.Name,
			fmtMops(row.MuTPST), fmtMops(row.BaseKV), fmtMops(row.ERPCKV))
	}
	tw.Flush()
	return out
}
