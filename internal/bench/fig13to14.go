package bench

import (
	"fmt"
	"io"

	"mutps/internal/simkv"
	"mutps/internal/tuner"
	"mutps/internal/workload"
)

// Fig13aPoint records the auto-tuner's core allocation for one workload.
type Fig13aPoint struct {
	Keyspace uint64
	ItemSize int
	Skewed   bool
	MRShare  float64 // fraction of workers given to the MR layer
}

// RunFig13a reproduces Figure 13a: the worker share the auto-tuner assigns
// to the memory-resident layer as keyspace, item size, and skew vary
// (YCSB-A, tree index).
func RunFig13a(s Scale, w io.Writer) []Fig13aPoint {
	var out []Fig13aPoint
	tw := newTab(w)
	fmt.Fprintln(tw, "Fig 13a: tuner core allocation (MR share)")
	fmt.Fprintln(tw, "keys\titem\tskew\tMR share")
	for _, keys := range []uint64{s.Keys / 10, s.Keys} {
		for _, sz := range []int{8, 256} {
			for _, theta := range []float64{0, 0.99} {
				cfg := workload.Config{Keys: keys, Theta: theta,
					Mix: workload.MixYCSBA, ValueSize: workload.FixedSize(sz), Seed: s.Seed}
				p := s.params(true, sz)
				p.Keys = keys
				sys := simkv.NewSystem(p, simkv.ArchMuTPS, workload.NewGenerator(cfg))
				tn := &simkv.Tunable{S: sys, MaxCache: s.HotItems, CacheStep: maxInt(1, s.HotItems/2), Window: s.Ops / 4}
				res := tuner.Optimize(tn)
				pt := Fig13aPoint{
					Keyspace: keys, ItemSize: sz, Skewed: theta > 0,
					MRShare: float64(res.Best.MRThreads) / float64(p.Workers),
				}
				out = append(out, pt)
				fmt.Fprintf(tw, "%d\t%dB\t%v\t%.0f%%\n", keys, sz, pt.Skewed, 100*pt.MRShare)
			}
		}
	}
	tw.Flush()
	return out
}

// Fig13bPoint records the tuner's LLC-way grant to the MR layer.
type Fig13bPoint struct {
	ItemSize   int
	Skewed     bool
	MRWayShare float64
}

// RunFig13b reproduces Figure 13b: the fraction of LLC ways the tuner lets
// the memory-resident layer reuse.
func RunFig13b(s Scale, w io.Writer) []Fig13bPoint {
	var out []Fig13bPoint
	tw := newTab(w)
	fmt.Fprintln(tw, "Fig 13b: tuner LLC-way allocation (MR share of ways)")
	fmt.Fprintln(tw, "item\tskew\tMR ways")
	for _, sz := range []int{8, 256} {
		for _, theta := range []float64{0, 0.99} {
			cfg := workload.Config{Keys: s.Keys, Theta: theta,
				Mix: workload.MixYCSBA, ValueSize: workload.FixedSize(sz), Seed: s.Seed}
			p := s.params(true, sz)
			sys := simkv.NewSystem(p, simkv.ArchMuTPS, workload.NewGenerator(cfg))
			tn := &simkv.Tunable{S: sys, MaxCache: s.HotItems, CacheStep: s.HotItems, Window: s.Ops / 4}
			res := tuner.Optimize(tn)
			share := float64(res.Best.MRWays) / float64(s.HW.LLCWays)
			if res.Best.MRWays == 0 {
				share = 1 // 0 = unrestricted: all ways available to MR
			}
			pt := Fig13bPoint{ItemSize: sz, Skewed: theta > 0, MRWayShare: share}
			out = append(out, pt)
			fmt.Fprintf(tw, "%dB\t%v\t%.0f%%\n", sz, pt.Skewed, 100*pt.MRWayShare)
		}
	}
	tw.Flush()
	return out
}

// Fig13cPoint records the tuned hot-set cache size.
type Fig13cPoint struct {
	Tree       bool
	Theta      float64
	CachedFrac float64 // chosen cache size / hot-set tracking budget
}

// RunFig13c reproduces Figure 13c: the ratio of cached items to the
// tracked hot set as skew and index type vary.
func RunFig13c(s Scale, w io.Writer) []Fig13cPoint {
	var out []Fig13cPoint
	tw := newTab(w)
	fmt.Fprintln(tw, "Fig 13c: tuner cache sizing (fraction of hot set cached)")
	fmt.Fprintln(tw, "index\tzipf\tcached")
	for _, tree := range []bool{true, false} {
		for _, theta := range []float64{0.90, 0.99} {
			cfg := workload.Config{Keys: s.Keys, Theta: theta,
				Mix: workload.MixYCSBA, ValueSize: workload.FixedSize(64), Seed: s.Seed}
			p := s.params(tree, 64)
			sys := simkv.NewSystem(p, simkv.ArchMuTPS, workload.NewGenerator(cfg))
			tn := &simkv.Tunable{S: sys, MaxCache: s.HotItems, CacheStep: maxInt(1, s.HotItems/4), Window: s.Ops / 4}
			res := tuner.Optimize(tn)
			name := "hash"
			if tree {
				name = "tree"
			}
			pt := Fig13cPoint{Tree: tree, Theta: theta,
				CachedFrac: float64(res.Best.CacheItems) / float64(s.HotItems)}
			out = append(out, pt)
			fmt.Fprintf(tw, "%s\t%.2f\t%.0f%%\n", name, theta, 100*pt.CachedFrac)
		}
	}
	tw.Flush()
	return out
}

// Fig14Point is one time sample of the dynamic-workload experiment.
type Fig14Point struct {
	Window int
	Mops   float64
	Phase  string // "old", "detect", "tuned"
}

// RunFig14 reproduces Figure 14: the workload's value size drops from
// 512 B to 8 B mid-run; the auto-tuner detects the throughput shift and
// reconfigures while the system keeps serving.
func RunFig14(s Scale, w io.Writer) []Fig14Point {
	var out []Fig14Point
	tw := newTab(w)
	fmt.Fprintln(tw, "Fig 14: dynamic workload (512B → 8B)")
	fmt.Fprintln(tw, "window\tMops\tphase")
	cfg := workload.Config{Keys: s.Keys, Theta: 0.99,
		Mix: workload.MixYCSBA, ValueSize: workload.FixedSize(512), Seed: s.Seed}
	p := s.params(true, 512)
	sys := simkv.NewSystem(p, simkv.ArchMuTPS, workload.NewGenerator(cfg))
	tn := &simkv.Tunable{S: sys, MaxCache: s.HotItems, CacheStep: s.HotItems / 2, Window: s.Ops / 4}

	// Tune for the initial workload, then watch windows through the
	// feedback monitor — retuning fires when it detects the load shift,
	// exactly the paper's trigger condition.
	res := tuner.Optimize(tn)
	mon := &tuner.Monitor{Warmup: 2}
	window := 0
	emit := func(mops float64, phase string) bool {
		out = append(out, Fig14Point{Window: window, Mops: mops, Phase: phase})
		fmt.Fprintf(tw, "%d\t%.1f\t%s\n", window, mops, phase)
		window++
		return mon.Observe(mops)
	}
	for i := 0; i < 3; i++ {
		emit(tn.Measure(res.Best), "old")
	}
	// The workload changes: smaller values arrive. The system keeps
	// serving under the stale configuration until the monitor fires.
	sys.SetItemSize(8)
	var res2 tuner.Result
	for i := 0; i < 10; i++ {
		if emit(tn.Measure(res.Best), "detect") {
			res2 = tuner.Optimize(tn)
			mon.Reset()
			break
		}
	}
	for i := 0; i < 3; i++ {
		emit(tn.Measure(res2.Best), "tuned")
	}
	tw.Flush()
	fmt.Fprintf(w, "  retune probes: %d (reconfiguration without downtime)\n", res2.Probes)
	return out
}
