package bench

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"mutps/internal/benchfmt"
	"mutps/internal/kvcore"
	"mutps/internal/netserver"
	"mutps/internal/obs"
)

// BenchmarkSparseConns is the million-connection-front-end scaling probe:
// N open connections with only ~1% active at any instant (rotating), the
// workload shape the epoll transport exists for. It compares the two
// transports on throughput, tail latency, and — the real subject — what
// the idle 99% cost: goroutines, leased transport buffers, and live heap.
//
// Run in-process, so the goroutine count and heap include the client side
// (one pipelined client per connection, ~1 goroutine and a small bufio
// each); that cost is identical across transports, so the *difference*
// between the goroutine and epoll rows isolates the server transport.
// Client and server split the fd budget in one process (2 fds/conn), so
// tiers the RLIMIT_NOFILE can't cover skip; the canonical 10k-conn
// numbers are measured out-of-process by mutps-loadgen -conns (see
// EXPERIMENTS.md), where each side gets its own fd budget.
//
// Set BENCH_NET_OUT=path to append one machine-readable JSON record per
// sub-benchmark (ops/s, P50/P99, goroutines, leased/heap bytes).
func BenchmarkSparseConns(b *testing.B) {
	for _, tr := range []string{netserver.TransportGoroutine, netserver.TransportEpoll} {
		for _, conns := range []int{1000, 4000, 10000} {
			b.Run(fmt.Sprintf("transport=%s/conns=%d", tr, conns), func(b *testing.B) {
				benchSparseConns(b, tr, conns)
			})
		}
	}
}

func benchSparseConns(b *testing.B, tr string, conns int) {
	// Client and server share this process: 2 fds per connection plus
	// slack. Skip (rather than die mid-dial) where the limit can't cover
	// the tier — CI raises ulimit -n for the 10k point.
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err == nil && rl.Cur < uint64(conns*2+128) {
		b.Skipf("RLIMIT_NOFILE %d < %d needed for %d in-process conns", rl.Cur, conns*2+128, conns)
	}
	store, err := kvcore.Open(kvcore.Config{Engine: kvcore.Hash, Workers: 4, CRWorkers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	const nKeys = 4096
	val := make([]byte, 64)
	for k := uint64(0); k < nKeys; k++ {
		store.Preload(k, val)
	}
	srv, err := netserver.ListenAndServe(store, "127.0.0.1:0", netserver.Config{Transport: tr})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	if srv.Transport() != tr {
		b.Skipf("%s transport unavailable on this platform", tr)
	}

	const win = 16
	pcs := make([]*netserver.PipelineClient, conns)
	var dialIdx atomic.Int64
	var dwg sync.WaitGroup
	var dialErr atomic.Value
	for d := 0; d < 64; d++ {
		dwg.Add(1)
		go func() {
			defer dwg.Done()
			for dialErr.Load() == nil {
				i := int(dialIdx.Add(1)) - 1
				if i >= conns {
					return
				}
				pc, err := netserver.DialPipeline(srv.Addr().String(), win)
				if err != nil {
					dialErr.Store(err)
					return
				}
				pcs[i] = pc
			}
		}()
	}
	dwg.Wait()
	if err, _ := dialErr.Load().(error); err != nil {
		b.Fatalf("dialing %d conns: %v (RLIMIT_NOFILE too low for an in-process run?)", conns, err)
	}
	defer func() {
		for _, pc := range pcs {
			pc.Close()
		}
	}()
	time.Sleep(300 * time.Millisecond) // settle: idle buffers strip, accept drains

	active := max(conns/100, 8)
	const burst = 32
	hist := obs.NewHistogram(active)
	locks := make([]sync.Mutex, conns)
	var remaining atomic.Int64
	remaining.Store(int64(b.N))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for w := 0; w < active; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			type sent struct {
				f  *netserver.Future
				t0 time.Time
			}
			futs := make([]sent, 0, win)
			retire := func(s sent) {
				if st, _, err := s.f.Wait(); err != nil || st != netserver.StatusFound {
					b.Errorf("get: status %d err %v", st, err)
				}
				hist.Record(w, uint64(time.Since(s.t0)))
				s.f.Release()
			}
			for {
				n := burst
				if left := remaining.Add(-burst); left < 0 {
					n += int(left)
					if n <= 0 {
						return
					}
				}
				i := int(cursor.Add(1)-1) % conns
				locks[i].Lock()
				pc := pcs[i]
				for j := 0; j < n; j++ {
					if len(futs) == win {
						pc.Flush()
						retire(futs[0])
						copy(futs, futs[1:])
						futs = futs[:win-1]
					}
					f, err := pc.Send(netserver.OpGet, uint64((w*burst+j)%nKeys), nil)
					if err != nil {
						b.Errorf("send: %v", err)
						locks[i].Unlock()
						return
					}
					futs = append(futs, sent{f, time.Now()})
				}
				pc.Flush()
				for _, s := range futs {
					retire(s)
				}
				futs = futs[:0]
				locks[i].Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()

	goroutines := runtime.NumGoroutine()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	leased := 0.0
	idle := 0.0
	if !obs.Disabled {
		m := store.Metrics().SnapshotMap()
		leased = m["mutps_net_leased_buffer_bytes"]
		idle = m["mutps_net_idle_conns"]
	}
	opsPerSec := float64(b.N) / elapsed.Seconds()
	b.ReportMetric(opsPerSec, "ops/s")
	b.ReportMetric(float64(goroutines), "goroutines")
	b.ReportMetric(leased/1024, "leased-KiB")
	b.ReportMetric(float64(ms.HeapInuse)/(1<<20), "heap-MiB")

	snap := hist.Snapshot()
	if out := os.Getenv("BENCH_NET_OUT"); out != "" && b.N > 1 {
		rec := benchfmt.New("BenchmarkSparseConns")
		rec.Config = map[string]any{
			"transport": tr,
			"conns":     conns,
			"active":    active,
			"inflight":  win,
		}
		rec.Ops = uint64(b.N)
		rec.OpsPerSec = opsPerSec
		rec.P50Ns = float64(snap.Quantile(0.50))
		rec.P99Ns = float64(snap.Quantile(0.99))
		rec.Extra = map[string]any{
			"goroutines":      goroutines,
			"leased_bytes":    leased,
			"idle_conns":      idle,
			"heap_inuse":      ms.HeapInuse,
			"client_overhead": conns, // ~1 client goroutine per conn rides in `goroutines`
		}
		appendBenchRecord(b, out, rec)
	}
}
