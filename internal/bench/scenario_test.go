package bench

import (
	"os"
	"testing"
	"time"

	"mutps/internal/benchfmt"
	"mutps/internal/kvcore"
	"mutps/internal/scenario"
	"mutps/internal/simkv"
	"mutps/internal/tuner"
	"mutps/internal/workload"
)

// kvClient adapts an in-process store to the scenario runner. A get miss
// is not an error (scenarios delete and rotate hotspots); only store
// failures abort a run.
type kvClient struct {
	s   *kvcore.Store
	buf []byte
	val []byte
}

func newKVClient(s *kvcore.Store, maxVal int) *kvClient {
	return &kvClient{s: s, buf: make([]byte, 0, maxVal), val: make([]byte, maxVal)}
}

func (c *kvClient) Do(req workload.Request) error {
	switch req.Op {
	case workload.OpGet:
		_, _, err := c.s.GetInto(req.Key, c.buf[:0])
		return err
	case workload.OpPut:
		return c.s.Put(req.Key, c.val[:req.ValueSize])
	case workload.OpDelete:
		_, err := c.s.Delete(req.Key)
		return err
	default:
		_, err := c.s.Scan(req.Key, req.ScanCount)
		return err
	}
}

// openScenarioStore builds a store sized for scenario runs and preloads
// the full keyspace at the scenario's largest value size.
func openScenarioStore(t *testing.T, sc scenario.Scenario) *kvcore.Store {
	t.Helper()
	s, err := kvcore.Open(kvcore.Config{
		Engine: kvcore.Hash, Workers: 4, CRWorkers: 2, HotItems: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	val := make([]byte, sc.MaxValueSize())
	for k := uint64(0); k < sc.Keys; k++ {
		s.Preload(k, val)
	}
	return s
}

// shrink shrinks a registry scenario to smoke size: short phases over a
// small keyspace.
func shrink(t *testing.T, name string, timeScale float64, keys uint64) scenario.Scenario {
	t.Helper()
	sc, ok := scenario.Lookup(name)
	if !ok {
		t.Fatalf("scenario %q not in matrix", name)
	}
	sc = scenario.Scaled(sc, timeScale)
	sc.Keys = keys
	return sc
}

// maybeAppend streams records into $BENCH_SCENARIOS_OUT when set (the CI
// smoke artifact).
func maybeAppend(t *testing.T, recs []benchfmt.Record) {
	t.Helper()
	out := os.Getenv("BENCH_SCENARIOS_OUT")
	if out == "" {
		return
	}
	for _, rec := range recs {
		if err := benchfmt.Append(out, rec); err != nil {
			t.Fatal(err)
		}
	}
	// Re-read the artifact so a schema violation fails the run that
	// produced it, not a later consumer.
	if _, err := benchfmt.ReadFile(out); err != nil {
		t.Fatalf("artifact failed validation: %v", err)
	}
}

// TestScenarioMatrixSmoke runs two scenarios of the matrix at reduced
// duration against a live store, validating every emitted record. With
// BENCH_SCENARIOS_OUT set it also writes (and re-validates) the
// normalized artifact — the CI smoke path.
func TestScenarioMatrixSmoke(t *testing.T) {
	for _, name := range []string{"ycsb-mix", "size-shift"} {
		sc := shrink(t, name, 0.05, 2048) // 2s phases -> 100ms
		s := openScenarioStore(t, sc)
		r := &scenario.Runner{
			Scenario: sc,
			Client:   newKVClient(s, sc.MaxValueSize()),
			Window:   25 * time.Millisecond,
			Seed:     42,
		}
		recs, err := r.Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		phases := map[string]bool{}
		for _, rec := range recs {
			if err := rec.Validate(); err != nil {
				t.Fatalf("%s: invalid record %+v: %v", name, rec, err)
			}
			if rec.Scenario != name {
				t.Fatalf("record names scenario %q, want %q", rec.Scenario, name)
			}
			phases[rec.Phase] = true
		}
		if len(phases) != len(sc.Phases) {
			t.Fatalf("%s: windows cover %d phases, want %d", name, len(phases), len(sc.Phases))
		}
		maybeAppend(t, recs)
	}
}

// TestScenarioSizeShiftRecovery is the Fig 14 harness: the size-shift
// scenario runs twice over identical stores — once frozen at the
// configuration tuned for the pre-shift workload (the static baseline),
// once with the closed-loop controller live (priors seeded from the
// simkv sweep, a retune forced at the phase boundary on top of the
// natural triggers). It reports the post-shift throughput of both runs
// and the tuned run's recovery time: the first post-shift window at
// ≥90% of the tuned run's own post-shift steady state.
//
// Absolute margins are machine-dependent (CI runs this on one core), so
// the test asserts mechanism — retunes happened online, no downtime, a
// recovery window exists — and records the measured numbers.
func TestScenarioSizeShiftRecovery(t *testing.T) {
	sc := shrink(t, "size-shift", 0.25, 8192) // 3s phases -> 750ms
	window := 75 * time.Millisecond

	// Offline prior sweep over the two regimes this scenario traverses.
	priors := simkv.SweepPriors(simkv.SweepParams(), []simkv.SweepPoint{
		{Name: "ycsb-a-big", Mix: workload.MixYCSBA, Theta: 0.99, ValueSize: 512},
		{Name: "ycsb-a-small", Mix: workload.MixYCSBA, Theta: 0.99, ValueSize: 8},
	}, 2000, 17)

	run := func(tuned bool) ([]benchfmt.Record, uint64) {
		s := openScenarioStore(t, sc)
		// Close eagerly at the end of the run (Close is idempotent, so the
		// t.Cleanup in openScenarioStore stays harmless): the static run's
		// busy-polling workers must not contend with the tuned run.
		defer s.Close()
		tn := &kvcore.Tunable{S: s, Window: 3 * time.Millisecond, MaxCache: 1024, CacheStep: 512}
		ctl := tuner.NewController(tn, tuner.ControllerConfig{
			Interval:  25 * time.Millisecond,
			Cooldown:  300 * time.Millisecond,
			Rate:      s.Ops,
			Priors:    priors,
			Signature: tn.Signature,
		})

		// Both runs start from the configuration tuned for the pre-shift
		// workload: warm with pre-shift traffic, search once.
		warmCli := newKVClient(s, sc.MaxValueSize())
		warm := workload.NewGenerator(workload.Config{
			Keys: sc.Keys, Theta: 0.99, Mix: workload.MixYCSBA,
			ValueSize: workload.FixedSize(512), Seed: 5,
		})
		warmUntil := time.Now().Add(150 * time.Millisecond)
		for time.Now().Before(warmUntil) {
			if err := warmCli.Do(warm.Next()); err != nil {
				t.Fatal(err)
			}
		}
		ctl.Retune()
		preCfg := tn.Current()

		if tuned {
			ctl.Start()
			defer ctl.Stop()
		}
		bench := "scenario-static"
		if tuned {
			bench = "scenario-tuned"
		}
		r := &scenario.Runner{
			Scenario: sc,
			Client:   newKVClient(s, sc.MaxValueSize()),
			Bench:    bench,
			Window:   window,
			Seed:     42,
			OnPhase: func(i int, _ scenario.Phase) {
				if tuned && i > 0 {
					// Operator-forced search at the shift, alongside the
					// natural throughput/latency triggers.
					go ctl.Retune()
				}
			},
			Extra: func() map[string]any {
				ticks, triggers, retunes, reverts := ctl.Counters()
				cur := tn.Current()
				return map[string]any{
					"ticks": ticks, "triggers": triggers,
					"retunes": retunes, "reverts": reverts,
					"cache_items": cur.CacheItems, "mr_threads": cur.MRThreads,
				}
			},
		}
		recs, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		_, _, retunes, _ := ctl.Counters()
		t.Logf("%s: pre-shift config %+v, final config %+v, retunes %d",
			bench, preCfg, tn.Current(), retunes)
		return recs, retunes
	}

	staticRecs, staticRetunes := run(false)
	tunedRecs, tunedRetunes := run(true)
	if staticRetunes != 1 {
		t.Fatalf("static baseline ran %d searches, want exactly the pre-shift one", staticRetunes)
	}
	if tunedRetunes < 2 {
		t.Fatalf("tuned run never retuned online (retunes=%d)", tunedRetunes)
	}

	postRate := func(recs []benchfmt.Record) (rates []float64) {
		for _, rec := range recs {
			if rec.Phase == "post-shift" {
				rates = append(rates, rec.OpsPerSec)
			}
		}
		return rates
	}
	staticPost := postRate(staticRecs)
	tunedPost := postRate(tunedRecs)
	if len(tunedPost) < 3 || len(staticPost) < 3 {
		t.Fatalf("too few post-shift windows: tuned %d static %d", len(tunedPost), len(staticPost))
	}

	// Steady state = mean of the final third; recovery = first window at
	// ≥90% of it.
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	steady := mean(tunedPost[len(tunedPost)*2/3:])
	recovery := -1
	for i, r := range tunedPost {
		if r >= 0.9*steady {
			recovery = i
			break
		}
	}
	if recovery < 0 {
		t.Fatalf("tuned run never reached 90%% of its post-shift steady state (%v vs %.0f)",
			tunedPost, steady)
	}
	recoveryMs := float64(recovery) * window.Seconds() * 1e3
	staticMean, tunedMean := mean(staticPost), mean(tunedPost)
	margin := tunedMean/staticMean - 1
	t.Logf("post-shift: tuned %.0f ops/s vs static %.0f ops/s (margin %+.1f%%), "+
		"recovery window %d (≤%.0f ms), steady %.0f ops/s",
		tunedMean, staticMean, margin*100, recovery, recoveryMs+float64(window.Milliseconds()), steady)

	summary := benchfmt.New("scenario-summary")
	summary.Scenario = sc.Name
	summary.Ops = 0
	summary.OpsPerSec = tunedMean
	summary.Extra = map[string]any{
		"static_post_ops_per_sec": staticMean,
		"tuned_post_ops_per_sec":  tunedMean,
		"margin":                  margin,
		"recovery_window":         recovery,
		"recovery_ms_upper":       recoveryMs + float64(window.Milliseconds()),
		"tuned_retunes":           tunedRetunes,
	}
	maybeAppend(t, append(append([]benchfmt.Record{}, staticRecs...),
		append(tunedRecs, summary)...))
}
