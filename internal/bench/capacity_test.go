package bench

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mutps/internal/benchfmt"
	"mutps/internal/kvcore"
	"mutps/internal/obs"
)

// BenchmarkEvictionChurn measures sustained put churn over a keyspace ~4×
// the memory budget, with and without the cold tier — the capacity
// experiment from DESIGN.md §13. Every put past the watermark forces the
// evictor to unlink a victim (and, with a cold dir, spill its value to the
// SSD log), so the metric is the steady-state write throughput of the
// bounded-memory lifecycle, not of an unbounded store.
//
// Set BENCH_CAPACITY_OUT=path to append one machine-readable JSON record
// per sub-benchmark (ops/s, P50/P99, spills, budget adherence).
func BenchmarkEvictionChurn(b *testing.B) {
	const (
		budget  = 1 << 20 // 1 MiB arena budget
		nKeys   = 32768   // ≈ 4× budget at ~128 B/slot
		valSize = 96
		drivers = 4
	)
	// "unbounded" is the before-column baseline: same churn, no budget, so
	// the arena grows to hold the whole keyspace.
	for _, mode := range []string{"unbounded", "drop", "spill"} {
		b.Run(fmt.Sprintf("mode=%s", mode), func(b *testing.B) {
			cfg := kvcore.Config{
				Engine: kvcore.Hash, Workers: 4, CRWorkers: 1,
			}
			if mode != "unbounded" {
				cfg.MemoryBudget = budget
				cfg.EvictInterval = time.Millisecond
			}
			if mode == "spill" {
				cfg.ColdDir = b.TempDir()
			}
			s, err := kvcore.Open(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()

			lat := obs.NewHistogram(drivers)
			var next atomic.Uint64
			perDriver := b.N / drivers
			if perDriver == 0 {
				perDriver = 1
			}
			val := make([]byte, valSize)
			for i := range val {
				val[i] = byte(i)
			}
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			for d := 0; d < drivers; d++ {
				wg.Add(1)
				go func(d int) {
					defer wg.Done()
					for i := 0; i < perDriver; i++ {
						k := next.Add(1) % nKeys
						t0 := time.Now()
						if err := s.Put(k, val); err != nil {
							b.Error(err)
							return
						}
						lat.Record(d, uint64(time.Since(t0)))
					}
				}(d)
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()

			ops := perDriver * drivers
			opsPerSec := float64(ops) / elapsed.Seconds()
			b.ReportMetric(opsPerSec, "puts/s")
			var over int64
			if mode == "unbounded" {
				b.ReportMetric(float64(s.BudgetedBytes()), "live-bytes")
			} else {
				// Give the evictor one settle window, then report how far
				// over budget the arena sits (0 = budget held).
				deadline := time.Now().Add(2 * time.Second)
				for s.BudgetedBytes() > budget && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				if over = int64(s.BudgetedBytes()) - budget; over < 0 {
					over = 0
				}
				b.ReportMetric(float64(over), "bytes-over-budget")
			}
			snap := lat.Snapshot()
			if out := os.Getenv("BENCH_CAPACITY_OUT"); out != "" && b.N > 1 {
				rec := benchfmt.New("BenchmarkEvictionChurn")
				rec.Config = map[string]any{
					"mode":         mode,
					"budget_bytes": budget,
					"keys":         nKeys,
					"value_size":   valSize,
					"drivers":      drivers,
				}
				rec.Ops = uint64(ops)
				rec.OpsPerSec = opsPerSec
				rec.P50Ns = float64(snap.Quantile(0.50))
				rec.P99Ns = float64(snap.Quantile(0.99))
				rec.Extra = map[string]any{
					"latency_of":        "put",
					"live_bytes":        s.BudgetedBytes(),
					"bytes_over_budget": over,
				}
				appendBenchRecord(b, out, rec)
			}
		})
	}
}
