// Package bench regenerates every table and figure of the paper's
// evaluation (§2.2 motivation and §5) on the simulated substrate. Each
// RunFigN/RunTabN function sweeps the same parameters as the paper,
// prints the corresponding rows/series, and returns structured results so
// tests can assert the qualitative shapes (who wins, by roughly what
// factor, where crossovers fall).
package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"mutps/internal/simhw"
	"mutps/internal/simkv"
	"mutps/internal/workload"
)

// Scale fixes the experiment geometry. Full reproduces the paper's
// testbed; Quick shrinks cores, LLC, keyspace, and window so the entire
// suite runs in minutes on a laptop while preserving every shape (both the
// store and the LLC shrink, keeping their ratio).
type Scale struct {
	Name     string
	HW       simhw.Params
	Keys     uint64
	Warm     int
	Ops      int
	LatOps   int
	Splits   []int // CR-worker counts tried per μTPS point
	Ways     []int // MR LLC-way grants tried per μTPS point
	HotItems int
	Seed     uint64
}

// FullScale is the paper's geometry: 28 cores on one NUMA node, 42 MB LLC,
// 10M pre-populated items.
func FullScale() Scale {
	return Scale{
		Name:     "full",
		HW:       simhw.DefaultParams(),
		Keys:     10_000_000,
		Warm:     20_000,
		Ops:      60_000,
		LatOps:   20_000,
		Splits:   []int{4, 8, 12, 16, 20, 24},
		Ways:     []int{0, 6},
		HotItems: 10_000,
		Seed:     42,
	}
}

// QuickScale shrinks the machine and store proportionally (8 cores,
// 1.5 MB LLC, 200k keys).
func QuickScale() Scale {
	hw := simhw.DefaultParams()
	hw.Cores = 8
	hw.LLCSets = 2048
	return Scale{
		Name:     "quick",
		HW:       hw,
		Keys:     200_000,
		Warm:     5_000,
		Ops:      15_000,
		LatOps:   5_000,
		Splits:   []int{1, 2, 3, 4, 5, 6},
		Ways:     []int{0, 4},
		HotItems: 2_000,
		Seed:     42,
	}
}

func (s Scale) params(tree bool, itemSize int) simkv.SystemParams {
	return simkv.SystemParams{
		HW:        s.HW,
		Keys:      s.Keys,
		ItemSize:  itemSize,
		Workers:   s.HW.Cores,
		BatchSize: 8,
		TreeIndex: tree,
		CRWorkers: maxInt(1, s.HW.Cores/4),
		HotItems:  s.HotItems,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (s Scale) workload(theta float64, mix workload.Mix, itemSize int) workload.Config {
	return workload.Config{
		Keys:      s.Keys,
		Theta:     theta,
		Mix:       mix,
		ValueSize: workload.FixedSize(itemSize),
		Seed:      s.Seed,
	}
}

// runMuTPSBest sweeps the scale's split/way grids and returns the best
// μTPS result — the grid-experiment equivalent of the auto-tuner.
func (s Scale) runMuTPSBest(p simkv.SystemParams, wl workload.Config) simkv.Result {
	best := simkv.Result{}
	first := true
	for _, w := range s.Ways {
		for _, cr := range s.Splits {
			if cr < 1 || cr >= p.Workers {
				continue
			}
			cand := p
			cand.CRWorkers = cr
			cand.MRWays = w
			sys := simkv.NewSystem(cand, simkv.ArchMuTPS, workload.NewGenerator(wl))
			r := sys.Run(s.Warm, s.Ops)
			if first || r.Mops(s.HW) > best.Mops(s.HW) {
				best, first = r, false
			}
		}
	}
	return best
}

func (s Scale) runArch(p simkv.SystemParams, a simkv.Arch, wl workload.Config) simkv.Result {
	sys := simkv.NewSystem(p, a, workload.NewGenerator(wl))
	return sys.Run(s.Warm, s.Ops)
}

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
}

func fmtMops(v float64) string { return fmt.Sprintf("%.1f", v) }
