package bench

import (
	"fmt"
	"io"

	"mutps/internal/simkv"
	"mutps/internal/workload"
)

// Fig2aResult is one item-size column of the motivation experiment.
type Fig2aResult struct {
	ItemSize   int
	TPSMops    float64 // two-stage, deterministic replay (no queues)
	TPQMops    float64 // run-to-completion
	TPQCATMops float64 // run-to-completion + CAT fencing off DDIO ways
	Stage1Miss float64 // LLC miss rate of the network stage under TPS
	TPQMiss    float64 // LLC miss rate of RTC workers
}

// RunFig2a reproduces Figure 2a plus the §2.2.1 PCM measurement: GET
// throughput under a uniform workload with the tree index, comparing the
// communication-free TPS prototype against NP-TPQ and NP-TPQ with cache
// partitioning, across item sizes.
func RunFig2a(s Scale, w io.Writer) []Fig2aResult {
	sizes := []int{8, 64, 256, 1024}
	var out []Fig2aResult
	tw := newTab(w)
	fmt.Fprintln(tw, "Fig 2a: GET-uniform, tree index\t(Mops)")
	fmt.Fprintln(tw, "item\tNP-TPS\tNP-TPQ\tTPQ+CAT\tstage1miss\tTPQmiss")
	for _, sz := range sizes {
		wl := s.workload(0, workload.MixYCSBC, sz)
		p := s.params(true, sz)
		p.HotItems = 0 // the motivation prototype has no hot cache

		// TPS via replay: pick the best stage split (the paper manually
		// tuned thread counts until stage rates matched).
		var tps simkv.Result
		firstRun := true
		for _, cr := range s.Splits {
			if cr < 1 || cr >= p.Workers {
				continue
			}
			cand := p
			cand.CRWorkers = cr
			r := s.runArch(cand, simkv.ArchReplay, wl)
			if firstRun || r.Mops(s.HW) > tps.Mops(s.HW) {
				tps, firstRun = r, false
			}
		}
		tpq := s.runArch(p, simkv.ArchRTC, wl)
		cat := s.runArch(p, simkv.ArchRTCCAT, wl)
		res := Fig2aResult{
			ItemSize:   sz,
			TPSMops:    tps.Mops(s.HW),
			TPQMops:    tpq.Mops(s.HW),
			TPQCATMops: cat.Mops(s.HW),
			Stage1Miss: tps.CRMissRate,
			TPQMiss:    tpq.CRMissRate,
		}
		out = append(out, res)
		fmt.Fprintf(tw, "%dB\t%s\t%s\t%s\t%.0f%%\t%.0f%%\n",
			sz, fmtMops(res.TPSMops), fmtMops(res.TPQMops), fmtMops(res.TPQCATMops),
			100*res.Stage1Miss, 100*res.TPQMiss)
	}
	tw.Flush()
	return out
}

// Fig2bResult compares index-lookup throughput with and without hotspot
// separation.
type Fig2bResult struct {
	Theta        float64
	BaselineMops float64
	SeparateMops float64
}

// RunFig2b reproduces Figure 2b: index-lookup throughput under Zipfian
// keys, redirecting the queries of the 0.1‰ hottest keys to a dedicated
// thread pool with dedicated LLC ways versus processing everything in one
// pool of the same total size.
func RunFig2b(s Scale, w io.Writer) []Fig2bResult {
	var out []Fig2bResult
	tw := newTab(w)
	fmt.Fprintln(tw, "Fig 2b: MassTree lookup, hotspot separation\t(Mops)")
	fmt.Fprintln(tw, "zipf\tunified\tseparated\tspeedup")
	for _, theta := range []float64{0.90, 0.99} {
		wl := s.workload(theta, workload.MixYCSBC, 8)
		p := s.params(true, 8)
		p.HotItems = 0
		base := s.runArch(p, simkv.ArchRTC, wl)
		sep := p
		sep.HotItems = int(s.Keys / 10000) // 0.1‰ of the keyspace
		r := s.runMuTPSBest(sep, wl)
		res := Fig2bResult{Theta: theta, BaselineMops: base.Mops(s.HW), SeparateMops: r.Mops(s.HW)}
		out = append(out, res)
		fmt.Fprintf(tw, "%.2f\t%s\t%s\t%.2fx\n", theta,
			fmtMops(res.BaselineMops), fmtMops(res.SeparateMops),
			res.SeparateMops/res.BaselineMops)
	}
	tw.Flush()
	return out
}

// Fig2cPoint is one thread-count sample of the SE/SN/TPS put comparison.
type Fig2cPoint struct {
	Workers int
	SEMops  float64
	SNMops  float64
	TPSMops float64
}

// RunFig2c reproduces Figure 2c: put throughput on 64 B items under a
// skewed workload as the worker count grows — share-everything (locks),
// shared-nothing (key partitioning), and the TPS arrangement that
// throttles the update stage.
func RunFig2c(s Scale, w io.Writer) []Fig2cPoint {
	var out []Fig2cPoint
	tw := newTab(w)
	fmt.Fprintln(tw, "Fig 2c: PUT-skewed 64B vs worker count\t(Mops)")
	fmt.Fprintln(tw, "workers\tSE\tSN\tTPS")
	wl := s.workload(0.99, workload.MixPutOnly, 64)
	step := maxInt(1, s.HW.Cores/7)
	for n := 2; n <= s.HW.Cores; n += step {
		p := s.params(false, 64)
		p.Workers = n
		p.CRWorkers = maxInt(1, n/4)
		se := s.runArch(p, simkv.ArchRTC, wl)
		sn := s.runArch(p, simkv.ArchERPC, wl)
		tps := simkv.Result{}
		firstRun := true
		for cr := 1; cr < n; cr++ {
			cand := p
			cand.CRWorkers = cr
			r := s.runArch(cand, simkv.ArchMuTPS, wl)
			if firstRun || r.Mops(s.HW) > tps.Mops(s.HW) {
				tps, firstRun = r, false
			}
		}
		pt := Fig2cPoint{Workers: n, SEMops: se.Mops(s.HW), SNMops: sn.Mops(s.HW), TPSMops: tps.Mops(s.HW)}
		out = append(out, pt)
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\n", n, fmtMops(pt.SEMops), fmtMops(pt.SNMops), fmtMops(pt.TPSMops))
	}
	tw.Flush()
	return out
}

// Tab1Row verifies one synthesized Twitter trace against Table 1.
type Tab1Row struct {
	Name       string
	WantPut    float64
	GotPut     float64
	WantAvgVal int
	GotAvgVal  float64
	WantZipf   float64
}

// RunTab1 regenerates Table 1: the put ratio, average value size, and skew
// of the three synthesized Twitter traces, measured from the generators.
func RunTab1(s Scale, w io.Writer) []Tab1Row {
	var out []Tab1Row
	tw := newTab(w)
	fmt.Fprintln(tw, "Table 1: Twitter trace characteristics (measured from synthesis)")
	fmt.Fprintln(tw, "cluster\tput%\tavg value\tzipf α")
	for _, c := range workload.TwitterClusters() {
		g := workload.NewGenerator(c.Config(s.Keys, s.Seed))
		puts, bytes, n := 0, 0, 50_000
		for i := 0; i < n; i++ {
			r := g.Next()
			if r.Op == workload.OpPut {
				puts++
				bytes += r.ValueSize
			}
		}
		row := Tab1Row{
			Name:       c.Name,
			WantPut:    c.PutRatio,
			GotPut:     float64(puts) / float64(n),
			WantAvgVal: c.AvgValue,
			WantZipf:   c.ZipfAlpha,
		}
		if puts > 0 {
			row.GotAvgVal = float64(bytes) / float64(puts)
		}
		out = append(out, row)
		fmt.Fprintf(tw, "%s\t%.0f%% (want %.0f%%)\t%.0fB (want %dB)\t%.2f\n",
			c.Name, 100*row.GotPut, 100*row.WantPut, row.GotAvgVal, row.WantAvgVal, row.WantZipf)
	}
	tw.Flush()
	return out
}
