package bench

import (
	"fmt"
	"io"

	"mutps/internal/simkv"
	"mutps/internal/workload"
)

// Fig10Point is one client-count sample of a latency-throughput curve.
type Fig10Point struct {
	System  string
	Tree    bool
	Clients int
	Mops    float64
	P50Usec float64
	P99Usec float64
}

// RunFig10 reproduces Figure 10: throughput versus P50/P99 latency under
// YCSB-A with 8 B items as closed-loop clients grow from 2 to 64 in steps
// of 4 (scaled down proportionally at quick scale), for both engines.
func RunFig10(s Scale, w io.Writer) []Fig10Point {
	var out []Fig10Point
	rtt := 2000.0 // ns round trip, single-digit-µs network
	maxClients := 64 * s.HW.Cores / 28
	if maxClients < 8 {
		maxClients = 8
	}
	step := maxInt(2, maxClients/8)
	for _, tree := range []bool{true, false} {
		engine := "hash"
		if tree {
			engine = "tree"
		}
		fmt.Fprintf(w, "Fig 10 [%s index, YCSB-A 8B]\n", engine)
		tw := newTab(w)
		fmt.Fprintln(tw, "clients\tsystem\tMops\tP50µs\tP99µs")
		for clients := 2; clients <= maxClients; clients += step {
			for _, sysName := range []struct {
				name string
				arch simkv.Arch
			}{
				{"μTPS", simkv.ArchMuTPS},
				{"BaseKV", simkv.ArchRTC},
				{"eRPCKV", simkv.ArchERPC},
			} {
				wl := s.workload(0.99, workload.MixYCSBA, 8)
				p := s.params(tree, 8)
				sys := simkv.NewSystem(p, sysName.arch, workload.NewGenerator(wl))
				r := sys.RunLatency(clients, s.LatOps, rtt)
				pt := Fig10Point{
					System: sysName.name, Tree: tree, Clients: clients,
					Mops: r.Mops, P50Usec: r.P50Usec, P99Usec: r.P99Usec,
				}
				out = append(out, pt)
				fmt.Fprintf(tw, "%d\t%s\t%.2f\t%.2f\t%.2f\n",
					clients, sysName.name, pt.Mops, pt.P50Usec, pt.P99Usec)
			}
		}
		tw.Flush()
	}
	return out
}

// Fig11Point is one worker-count sample of the scalability experiment.
type Fig11Point struct {
	Tree     bool
	ItemSize int
	Workers  int
	MuTPS    float64
	BaseKV   float64
	ERPCKV   float64
}

// RunFig11 reproduces Figure 11: YCSB-A throughput as the worker count
// grows, with 8 B and 256 B items on both engines. μTPS needs at least two
// workers (one per layer), so its curve starts at 2.
func RunFig11(s Scale, w io.Writer) []Fig11Point {
	var out []Fig11Point
	step := maxInt(1, s.HW.Cores/7)
	for _, tree := range []bool{true, false} {
		for _, sz := range []int{8, 256} {
			engine := "hash"
			if tree {
				engine = "tree"
			}
			fmt.Fprintf(w, "Fig 11 [%s, %dB, YCSB-A]\n", engine, sz)
			tw := newTab(w)
			fmt.Fprintln(tw, "workers\tμTPS\tBaseKV\teRPCKV")
			wl := s.workload(0.99, workload.MixYCSBA, sz)
			for n := 2; n <= s.HW.Cores; n += step {
				p := s.params(tree, sz)
				p.Workers = n
				var mu simkv.Result
				firstRun := true
				for cr := 1; cr < n; cr++ {
					cand := p
					cand.CRWorkers = cr
					r := s.runArch(cand, simkv.ArchMuTPS, wl)
					if firstRun || r.Mops(s.HW) > mu.Mops(s.HW) {
						mu, firstRun = r, false
					}
				}
				base := s.runArch(p, simkv.ArchRTC, wl)
				erpc := s.runArch(p, simkv.ArchERPC, wl)
				pt := Fig11Point{
					Tree: tree, ItemSize: sz, Workers: n,
					MuTPS:  mu.Mops(s.HW),
					BaseKV: base.Mops(s.HW),
					ERPCKV: erpc.Mops(s.HW),
				}
				out = append(out, pt)
				fmt.Fprintf(tw, "%d\t%s\t%s\t%s\n", n,
					fmtMops(pt.MuTPS), fmtMops(pt.BaseKV), fmtMops(pt.ERPCKV))
			}
			tw.Flush()
		}
	}
	return out
}

// Fig12Point is one batch-size sample.
type Fig12Point struct {
	Batch  int
	MuTPST float64
	MuTPSH float64
}

// RunFig12 reproduces Figure 12: μTPS throughput as the CR-MR batch size
// varies from 1 to 20 under YCSB-A with 8 B items.
func RunFig12(s Scale, w io.Writer) []Fig12Point {
	var out []Fig12Point
	tw := newTab(w)
	fmt.Fprintln(tw, "Fig 12: batch size (YCSB-A, 8B)\t(Mops)")
	fmt.Fprintln(tw, "batch\tμTPS-T\tμTPS-H")
	wl := s.workload(0.99, workload.MixYCSBA, 8)
	for _, b := range []int{1, 2, 4, 8, 12, 16, 20} {
		pT := s.params(true, 8)
		pT.BatchSize = b
		pH := s.params(false, 8)
		pH.BatchSize = b
		rT := s.runMuTPSBest(pT, wl)
		rH := s.runMuTPSBest(pH, wl)
		pt := Fig12Point{Batch: b, MuTPST: rT.Mops(s.HW), MuTPSH: rH.Mops(s.HW)}
		out = append(out, pt)
		fmt.Fprintf(tw, "%d\t%s\t%s\n", b, fmtMops(pt.MuTPST), fmtMops(pt.MuTPSH))
	}
	tw.Flush()
	return out
}
