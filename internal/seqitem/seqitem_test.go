package seqitem

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewAndRead(t *testing.T) {
	for _, val := range [][]byte{nil, {}, []byte("a"), []byte("12345678"), []byte("a longer value spanning words")} {
		it := New(val)
		if it.Size() != len(val) {
			t.Fatalf("Size = %d, want %d", it.Size(), len(val))
		}
		got := it.Read(nil)
		if !bytes.Equal(got, val) {
			t.Fatalf("Read = %q, want %q", got, val)
		}
	}
}

func TestWriteSameSize(t *testing.T) {
	it := New([]byte("hello, world!!"))
	if !it.Write([]byte("HELLO, WORLD??")) {
		t.Fatal("same-size write must succeed")
	}
	if got := it.Read(nil); string(got) != "HELLO, WORLD??" {
		t.Fatalf("Read = %q", got)
	}
}

func TestWriteSizeMismatchRejected(t *testing.T) {
	it := New([]byte("eight by"))
	if it.Write([]byte("nine byte")) {
		t.Fatal("size-changing write must be rejected")
	}
	if got := it.Read(nil); string(got) != "eight by" {
		t.Fatal("rejected write must not modify the item")
	}
}

func TestSmallItemWordPath(t *testing.T) {
	it := New([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	if it.ReadUint64() != 0x0807060504030201 {
		t.Fatalf("ReadUint64 = %#x", it.ReadUint64())
	}
	it.Write([]byte{8, 7, 6, 5, 4, 3, 2, 1})
	if it.ReadUint64() != 0x0102030405060708 {
		t.Fatalf("after write ReadUint64 = %#x", it.ReadUint64())
	}
}

func TestReadReusesBuffer(t *testing.T) {
	it := New([]byte("0123456789"))
	buf := make([]byte, 0, 64)
	out := it.Read(buf)
	if &out[0] != &buf[:1][0] {
		t.Fatal("Read must reuse a large-enough buffer")
	}
}

func TestReadRoundTripProperty(t *testing.T) {
	f := func(val []byte) bool {
		it := New(val)
		next := make([]byte, len(val))
		for i := range next {
			next[i] = val[i] ^ 0xFF
		}
		if !it.Write(next) {
			return false
		}
		return bytes.Equal(it.Read(nil), next)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestNoTornReads hammers one large item with writers that each write a
// value filled with a single repeated byte; readers must never observe a
// mix of fill bytes.
func TestNoTornReads(t *testing.T) {
	const size = 256
	it := New(bytes.Repeat([]byte{0}, size))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			val := bytes.Repeat([]byte{byte(w + 1)}, size)
			for {
				select {
				case <-stop:
					return
				default:
					it.Write(val)
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 0, size)
			for i := 0; i < 20000; i++ {
				got := it.Read(buf)
				fill := got[0]
				for _, b := range got {
					if b != fill {
						panic("torn read observed")
					}
				}
			}
		}()
	}
	// Let readers finish, then stop writers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Readers exit by iteration count; writers by stop.
	for i := 0; i < 4; i++ {
	}
	close(stop)
	<-done
}

// TestSmallItemConcurrentWrites checks last-writer-wins word semantics.
func TestSmallItemConcurrentWrites(t *testing.T) {
	it := New(make([]byte, 8))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			val := bytes.Repeat([]byte{byte(w)}, 8)
			for i := 0; i < 10000; i++ {
				it.Write(val)
				got := it.Read(nil)
				fill := got[0]
				for _, b := range got {
					if b != fill {
						panic("torn small read")
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkWrite8B(b *testing.B) {
	it := New(make([]byte, 8))
	val := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.Write(val)
	}
}

func BenchmarkWrite256B(b *testing.B) {
	it := New(make([]byte, 256))
	val := bytes.Repeat([]byte{7}, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.Write(val)
	}
}

func BenchmarkRead256B(b *testing.B) {
	it := New(bytes.Repeat([]byte{7}, 256))
	buf := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.Read(buf)
	}
}

func TestMoveToChainConvergence(t *testing.T) {
	a := New([]byte("aaaa"))
	b := New([]byte("bbbbbbbb"))
	c := New([]byte("cccccccccccc"))
	a.MoveTo(b)
	b.MoveTo(c)
	// All operations on the stale head follow the chain to the newest record.
	if a.Latest() != c {
		t.Fatal("Latest must follow the whole chain")
	}
	if got := a.Read(nil); string(got) != "cccccccccccc" {
		t.Fatalf("Read through chain = %q", got)
	}
	if a.Size() != 12 {
		t.Fatalf("Size through chain = %d", a.Size())
	}
	if !a.Write([]byte("CCCCCCCCCCCC")) {
		t.Fatal("same-size write through chain must succeed")
	}
	if got := c.Read(nil); string(got) != "CCCCCCCCCCCC" {
		t.Fatal("write through chain must land on the newest record")
	}
	// Size mismatch still rejected at the newest record.
	if a.Write([]byte("short")) {
		t.Fatal("size-changing write must be rejected through the chain")
	}
}

func TestKillAndDeadThroughChain(t *testing.T) {
	a := New([]byte("aaaa"))
	if a.Dead() {
		t.Fatal("fresh item must be alive")
	}
	b := New([]byte("bbbb"))
	a.MoveTo(b)
	b.Kill()
	if !a.Dead() {
		t.Fatal("death must be visible through the chain")
	}
	// Resurrection: a new record replaces the dead one.
	c := New([]byte("cccc"))
	b.MoveTo(c)
	if a.Dead() {
		t.Fatal("chain ending in a live record must be alive")
	}
}

func TestConcurrentMoveAndRead(t *testing.T) {
	head := New(bytes.Repeat([]byte{1}, 32))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	cur := head
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 2; i < 100; i++ {
			n := New(bytes.Repeat([]byte{byte(i)}, 32))
			cur.MoveTo(n)
			cur = n
		}
		close(stop)
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 0, 32)
			for {
				got := head.Read(buf)
				fill := got[0]
				for _, x := range got {
					if x != fill {
						panic("mixed-generation read through a moving chain")
					}
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	if head.Read(nil)[0] != 99 {
		t.Fatal("chain must end at the last record")
	}
}
