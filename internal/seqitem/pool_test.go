package seqitem

import (
	"bytes"
	"testing"

	"mutps/internal/arena"
)

func TestPoolRoundTrip(t *testing.T) {
	a := arena.New(0)
	p := NewPool(a.NewCache())
	it := NewIn(p, []byte("hello, arena"))
	if got := it.Read(nil); !bytes.Equal(got, []byte("hello, arena")) {
		t.Fatalf("Read = %q", got)
	}
	if !it.Write([]byte("HELLO, ARENA")) {
		t.Fatal("same-size Write failed")
	}
	if got := it.Read(nil); !bytes.Equal(got, []byte("HELLO, ARENA")) {
		t.Fatalf("Read after Write = %q", got)
	}
	p.Recycle(it)
}

// TestPoolHeaderReuse checks a recycled item comes back with fully reset
// state: no stale dead/moved/viewGen/version bits survive reuse.
func TestPoolHeaderReuse(t *testing.T) {
	a := arena.New(0)
	p := NewPool(a.NewCache())
	it := NewIn(p, make([]byte, 24))
	it.Write(bytes.Repeat([]byte{0xAA}, 24)) // bump version via locked path
	repl := NewIn(p, make([]byte, 28))
	it.MoveTo(repl)
	it.Kill()
	it.MarkViewed(7)
	p.Recycle(it)

	it2 := NewIn(p, []byte("fresh"))
	if it2 != it {
		t.Fatal("header not reused LIFO")
	}
	if it2.Dead() {
		t.Error("recycled item still dead")
	}
	if it2.Latest() != it2 {
		t.Error("recycled item still moved")
	}
	if it2.ViewGen() != 0 {
		t.Error("recycled item kept viewGen")
	}
	if got := it2.Read(nil); !bytes.Equal(got, []byte("fresh")) {
		t.Errorf("recycled item Read = %q", got)
	}
}

// TestPoolSlotReuse checks the arena slot travels with the recycle: a
// same-class successor gets the retired item's words back.
func TestPoolSlotReuse(t *testing.T) {
	a := arena.New(0)
	c := a.NewCache()
	p := NewPool(c)
	it := NewIn(p, make([]byte, 24))
	p.Recycle(it)
	_ = NewIn(p, make([]byte, 28)) // same 32-byte class
	st := a.Snapshot()
	if st.LiveSlots[1] != 1 {
		t.Errorf("live 32B slots = %d, want 1 (slot reused)", st.LiveSlots[1])
	}
}

func TestPoolNilCacheFallsBack(t *testing.T) {
	p := NewPool(nil)
	it := NewIn(p, []byte("no arena"))
	if got := it.Read(nil); !bytes.Equal(got, []byte("no arena")) {
		t.Fatalf("Read = %q", got)
	}
	p.Recycle(it) // must not panic with no cache
}

func TestPoolLargeValueFallback(t *testing.T) {
	a := arena.New(0)
	p := NewPool(a.NewCache())
	big := bytes.Repeat([]byte{0x5C}, arena.MaxClassBytes+100)
	it := NewIn(p, big)
	if got := it.Read(nil); !bytes.Equal(got, big) {
		t.Fatal("large value round-trip failed")
	}
	p.Recycle(it)
	if st := a.Snapshot(); st.Fallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", st.Fallbacks)
	}
}

// TestPoolSteadyStateAllocFree: after warm-up, NewIn+Recycle of a
// same-class value allocates nothing.
func TestPoolSteadyStateAllocFree(t *testing.T) {
	a := arena.New(0)
	p := NewPool(a.NewCache())
	v24, v28 := make([]byte, 24), make([]byte, 28)
	for i := 0; i < 4; i++ { // warm up header + slot free lists
		p.Recycle(NewIn(p, v24))
	}
	allocs := testing.AllocsPerRun(200, func() {
		it := NewIn(p, v24)
		p.Recycle(it)
		it = NewIn(p, v28)
		p.Recycle(it)
	})
	if allocs != 0 {
		t.Errorf("AllocsPerRun = %v, want 0", allocs)
	}
}
