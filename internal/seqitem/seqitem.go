// Package seqitem implements the paper's per-item concurrency control
// (§3.3): each KV item embeds lock and version bits. Updates of 8 bytes or
// less are performed directly with a single atomic store; larger updates
// take the lock bit with CAS, copy the value in place, and bump the version
// before and after. Reads are lock-free: the version is read before and
// after the copy and the read retries if it changed (a seqlock).
//
// An Item's size is fixed at creation. A size-changing update is performed
// by the index layer as an item replacement (allocate a new Item, swap the
// index pointer), which keeps the in-place protocol exact: 8-byte items
// never need the lock at all, and larger items are only ever overwritten
// with same-length values under the lock. The value payload is stored as
// 64-bit words accessed atomically, so the protocol is precise under the
// Go memory model while preserving the paper's cache behaviour — an
// in-place update touches only the item's own cache lines.
package seqitem

import (
	"runtime"
	"sync/atomic"

	"mutps/internal/arena"
)

// meta layout: bit 0 = lock, remaining bits = version.
const (
	lockBit uint64 = 1
	verOne  uint64 = 2
)

// Item is a fixed-size mutable KV value with embedded lock/version bits.
// Create items with New.
type Item struct {
	size  int
	meta  atomic.Uint64
	words []atomic.Uint64

	// moved points to the item's replacement after a size-changing update
	// swapped the index pointer; stale holders (e.g. the CR layer's hot-set
	// view) transparently follow it. dead marks a deleted item so stale
	// holders treat lookups as misses.
	moved atomic.Pointer[Item]
	dead  atomic.Bool

	// exp is the item's absolute expiry deadline in Unix nanoseconds
	// (0 = never expires). It lives in the header — not the value words —
	// so TTL stamping and expiry checks never interact with the seqlock.
	exp atomic.Uint64

	// viewGen is the hot-set install generation that most recently
	// published this item in a CR-layer view (0 = never installed). The
	// store's reclamation protocol (DESIGN.md §11) uses it to decide when a
	// retired item can no longer be reached through a stale view.
	viewGen atomic.Uint64
	// slab is true when words was carved from the arena and must be
	// returned on Recycle. Set once at allocation, read only by the pool.
	slab bool
}

// Latest follows the replacement chain to the current item record.
func (it *Item) Latest() *Item {
	for {
		n := it.moved.Load()
		if n == nil {
			return it
		}
		it = n
	}
}

// MoveTo publishes n as the item's replacement. Callers swap the index
// pointer first, then MoveTo, so every path converges on the new record.
func (it *Item) MoveTo(n *Item) { it.moved.Store(n) }

// Kill marks the item (and anything that still points at it) deleted.
func (it *Item) Kill() { it.dead.Store(true) }

// Dead reports whether the latest record in the chain has been deleted.
func (it *Item) Dead() bool { return it.Latest().dead.Load() }

// Revive clears the dead mark. Only the lazy-expiry path may call it, under
// the item's key-stripe lock and only while the item is still indexed: it
// undoes a Kill whose justification (a passed TTL deadline) a racing put
// invalidated before the unlink completed. Readers that observed the
// transient dead mark reported a miss, which linearizes between the expiry
// and the reviving put.
func (it *Item) Revive() { it.Latest().dead.Store(false) }

// SetExpire stamps the current record's absolute expiry deadline in Unix
// nanoseconds; 0 clears it (the item never expires).
func (it *Item) SetExpire(at uint64) { it.Latest().exp.Store(at) }

// Expire returns the current record's absolute expiry deadline (0 = none).
func (it *Item) Expire() uint64 { return it.Latest().exp.Load() }

// Expired reports whether the current record has passed its deadline at
// time now (Unix nanoseconds). Items without a deadline never expire.
func (it *Item) Expired(now int64) bool {
	e := it.Latest().exp.Load()
	return e != 0 && uint64(now) >= e
}

// New creates an item holding exactly val (whose length becomes the item's
// immutable size).
func New(val []byte) *Item {
	n := len(val)
	nw := (n + 7) / 8
	if nw == 0 {
		nw = 1
	}
	it := &Item{size: n, words: make([]atomic.Uint64, nw)}
	it.storeWords(val)
	return it
}

// Size returns the current record's fixed value size in bytes (following
// any replacement chain).
func (it *Item) Size() int { return it.Latest().size }

func (it *Item) storeWords(val []byte) {
	n := len(val)
	for w := 0; w*8 < n; w++ {
		var chunk uint64
		for b := 0; b < 8 && w*8+b < n; b++ {
			chunk |= uint64(val[w*8+b]) << (8 * b)
		}
		it.words[w].Store(chunk)
	}
}

func (it *Item) loadWords(dst []byte) {
	n := it.size
	for w := 0; w*8 < n; w++ {
		chunk := it.words[w].Load()
		for b := 0; b < 8 && w*8+b < n; b++ {
			dst[w*8+b] = byte(chunk >> (8 * b))
		}
	}
}

// Write replaces the value in place. It returns false (leaving the item
// unchanged) when len(val) differs from the item's fixed size — the caller
// must then allocate a replacement item and swap the index pointer — or
// when the item was killed before the write could take the lock, so a
// racing unlink (delete or eviction) cannot silently swallow the update.
func (it *Item) Write(val []byte) bool {
	it = it.Latest()
	if len(val) != it.size {
		return false
	}
	if it.size <= 8 {
		// The paper's fast path: the whole value is one word, so a single
		// atomic store is a complete, untearable update.
		var chunk uint64
		for b := 0; b < len(val); b++ {
			chunk |= uint64(val[b]) << (8 * b)
		}
		it.words[0].Store(chunk)
		return true
	}
	// Lock bit via CAS, copy, unlock with a second version bump.
	for {
		old := it.meta.Load()
		if old&lockBit != 0 {
			runtime.Gosched()
			continue
		}
		if it.meta.CompareAndSwap(old, (old+verOne)|lockBit) {
			break
		}
	}
	// Holding the lock: an evictor kills the item, then reads the value
	// through the seqlock (waiting this lock out), so refusing here
	// guarantees the spilled copy is the final value and sends this write
	// down the replacement path instead of into a dead record.
	if it.dead.Load() {
		it.meta.Store((it.meta.Load() + verOne) &^ lockBit)
		return false
	}
	it.storeWords(val)
	it.meta.Store((it.meta.Load() + verOne) &^ lockBit)
	return true
}

// Read copies the current value into buf (growing it if needed) and returns
// the filled slice: the paper's lock-free read protocol.
//
// The contract is append-style and is what makes the store's zero-alloc
// get path possible: when cap(buf) >= Size the returned slice is
// buf[:Size] — same backing array, no allocation — so callers that thread
// a caller-owned buffer through (rpc.Call.Dst, Store.GetInto) read values
// without touching the allocator. Read never retains buf and never
// returns a slice longer than Size.
func (it *Item) Read(buf []byte) []byte {
	it = it.Latest()
	n := it.size
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if n <= 8 {
		chunk := it.words[0].Load()
		for b := 0; b < n; b++ {
			buf[b] = byte(chunk >> (8 * b))
		}
		return buf
	}
	for {
		m1 := it.meta.Load()
		if m1&lockBit != 0 {
			runtime.Gosched()
			continue
		}
		it.loadWords(buf)
		if it.meta.Load() == m1 {
			return buf
		}
	}
}

// ReadUint64 returns the first payload word; it is the zero-copy fast path
// for ≤8-byte items (always consistent because such items are updated with
// a single store).
func (it *Item) ReadUint64() uint64 { return it.Latest().words[0].Load() }

// MarkViewed records that the item was published in hot-set install
// generation gen, walking the whole replacement chain: a view that can
// reach this item can reach every successor through Latest, so each must
// carry the mark. Successors linked after the walk are covered by the
// replacer, which re-reads the predecessor's viewGen after publishing the
// link (MoveTo before the read, so in the SC total order either the read
// sees this walk's mark, or the walk's chain load sees the new link and
// marks the successor itself). CAS-max keeps the field monotonic against
// stale concurrent markers.
func (it *Item) MarkViewed(gen uint64) {
	for n := it; n != nil; n = n.moved.Load() {
		for {
			old := n.viewGen.Load()
			if gen <= old || n.viewGen.CompareAndSwap(old, gen) {
				break
			}
		}
	}
}

// ViewGen returns the last hot-set install generation that published this
// item, 0 if it was never installed in a view.
func (it *Item) ViewGen() uint64 { return it.viewGen.Load() }

// SlotBytes returns the arena bytes this record (not its chain successors)
// pins: the capacity of its slab slot, or 0 for heap-backed values. The
// store's budget accounting uses it to project how much memory a retired
// item will release once recycled.
func (it *Item) SlotBytes() int {
	if !it.slab {
		return 0
	}
	return cap(it.words) * 8
}

// headerChunk is how many Item headers a pool carves per heap allocation.
const headerChunk = 256

// Pool allocates Items whose headers come from carved chunks and whose
// value words come from a worker's arena cache: the GC-quiet allocation
// path. Like arena.Cache it is single-owner — exactly one goroutine calls
// NewIn and Recycle — and recycled headers and slots are reused in LIFO
// order, so a warmed-up pool allocates nothing.
//
// The caller owns the reclamation protocol: an Item must only be Recycled
// once no concurrent reader (seqlock readers, stale hot-set views) can
// still reach it. Recycling too early is a use-after-free in every way
// that matters — a later NewIn rewrites size and words in plain (checked
// by the race detector) and reuses the value slot (silent data
// corruption).
type Pool struct {
	cache *arena.Cache
	free  []*Item // recycled headers, LIFO
	chunk []Item  // current header chunk being carved
	next  int
}

// NewPool creates a pool drawing value words from cache. A nil cache is
// allowed and means every value falls back to the Go allocator (items are
// still header-pooled).
func NewPool(cache *arena.Cache) *Pool { return &Pool{cache: cache} }

// NewIn creates an item holding exactly val, reusing a recycled header
// and an arena value slot when available.
func NewIn(p *Pool, val []byte) *Item {
	var it *Item
	if n := len(p.free); n > 0 {
		it = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	} else {
		if p.next == len(p.chunk) {
			p.chunk = make([]Item, headerChunk)
			p.next = 0
		}
		it = &p.chunk[p.next]
		p.next++
	}
	n := len(val)
	nw := (n + 7) / 8
	if nw == 0 {
		nw = 1
	}
	// Reset every header field: recycled headers carry a dead item's state.
	it.size = n
	it.meta.Store(0)
	it.moved.Store(nil)
	it.dead.Store(false)
	it.exp.Store(0)
	it.viewGen.Store(0)
	if p.cache != nil {
		it.words, it.slab = p.cache.Get(n)
	} else {
		it.words, it.slab = make([]atomic.Uint64, nw), false
	}
	it.storeWords(val)
	return it
}

// Recycle returns an item's value slot to the arena and its header to the
// pool's free list. See the Pool comment for the reachability contract.
func (p *Pool) Recycle(it *Item) {
	if it.slab {
		p.cache.Put(it.words)
	}
	it.words = nil
	it.moved.Store(nil) // don't pin the replacement chain in memory
	p.free = append(p.free, it)
}
