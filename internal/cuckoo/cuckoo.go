// Package cuckoo implements a concurrent bucketized cuckoo hash table with
// lock-free reads, the stand-in for libcuckoo used by μTPS-H. It is generic
// over the value type so the store can index shared item records. Each key maps
// to two buckets of slotsPerBucket slots; inserts displace entries along a
// bounded cuckoo path when both buckets are full, and the table doubles
// when a path cannot be found.
//
// Readers never take locks: each occupied slot holds an immutable entry
// behind an atomic pointer, so a Get is two bucket scans of atomic loads.
// Writers serialize per bucket via striped mutexes; displacement paths and
// resizing serialize on dedicated locks since they are rare.
package cuckoo

import (
	"sync"
	"sync/atomic"
)

const slotsPerBucket = 4

// maxKickDepth bounds the displacement path length before a resize is
// forced, matching libcuckoo's bounded search.
const maxKickDepth = 128

type entry[V any] struct {
	key  uint64
	data V // immutable after publication
}

type bucket[V any] struct {
	slots [slotsPerBucket]atomic.Pointer[entry[V]]
}

type table[V any] struct {
	buckets  []bucket[V]
	mask     uint64
	locks    []sync.Mutex // striped over buckets
	lockMask uint64
}

// Map is a concurrent cuckoo hash table keyed by uint64 storing values of
// type V. Values are stored verbatim; for aliasing-sensitive value types
// (e.g. []byte) the caller decides whether to copy.
type Map[V any] struct {
	resizeMu sync.RWMutex // held shared by all ops, exclusive by resize
	kickMu   sync.Mutex   // serializes displacement paths
	t        atomic.Pointer[table[V]]
	count    atomic.Int64
}

// New creates a table sized for at least capacityHint items.
func New[V any](capacityHint int) *Map[V] {
	if capacityHint < slotsPerBucket {
		capacityHint = slotsPerBucket
	}
	nBuckets := 1
	// Target ≤50% load at the hint so the cuckoo paths stay short.
	for nBuckets*slotsPerBucket < capacityHint*2 {
		nBuckets <<= 1
	}
	m := &Map[V]{}
	m.t.Store(newTable[V](nBuckets))
	return m
}

func newTable[V any](nBuckets int) *table[V] {
	nLocks := nBuckets
	if nLocks > 4096 {
		nLocks = 4096
	}
	return &table[V]{
		buckets:  make([]bucket[V], nBuckets),
		mask:     uint64(nBuckets - 1),
		locks:    make([]sync.Mutex, nLocks),
		lockMask: uint64(nLocks - 1),
	}
}

func mix1(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xFF51AFD7ED558CCD
	k ^= k >> 33
	k *= 0xC4CEB9FE1A85EC53
	k ^= k >> 33
	return k
}

func mix2(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xBF58476D1CE4E5B9
	k ^= k >> 27
	k *= 0x94D049BB133111EB
	k ^= k >> 31
	return k
}

func (t *table[V]) indexes(key uint64) (uint64, uint64) {
	i1 := mix1(key) & t.mask
	i2 := mix2(key) & t.mask
	if i1 == i2 {
		i2 = (i2 + 1) & t.mask
	}
	return i1, i2
}

func (t *table[V]) lockPair(i1, i2 uint64) func() {
	l1, l2 := i1&t.lockMask, i2&t.lockMask
	if l1 == l2 {
		t.locks[l1].Lock()
		return func() { t.locks[l1].Unlock() }
	}
	if l1 > l2 {
		l1, l2 = l2, l1
	}
	t.locks[l1].Lock()
	t.locks[l2].Lock()
	return func() {
		t.locks[l2].Unlock()
		t.locks[l1].Unlock()
	}
}

// Get returns the value stored for key.
func (m *Map[V]) Get(key uint64) (V, bool) {
	t := m.t.Load()
	i1, i2 := t.indexes(key)
	for _, bi := range [2]uint64{i1, i2} {
		b := &t.buckets[bi]
		for s := 0; s < slotsPerBucket; s++ {
			if e := b.slots[s].Load(); e != nil && e.key == key {
				return e.data, true
			}
		}
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value for key.
func (m *Map[V]) Put(key uint64, val V) {
	e := &entry[V]{key: key, data: val}
	for {
		if m.tryPut(e) {
			return
		}
		m.grow()
	}
}

// tryPut attempts an insert/update against the current table; false means
// the table must grow.
func (m *Map[V]) tryPut(e *entry[V]) bool {
	m.resizeMu.RLock()
	defer m.resizeMu.RUnlock()
	t := m.t.Load()
	i1, i2 := t.indexes(e.key)
	unlock := t.lockPair(i1, i2)

	// Replace in place if present.
	for _, bi := range [2]uint64{i1, i2} {
		b := &t.buckets[bi]
		for s := 0; s < slotsPerBucket; s++ {
			if old := b.slots[s].Load(); old != nil && old.key == e.key {
				b.slots[s].Store(e)
				unlock()
				return true
			}
		}
	}
	// Empty slot in either bucket.
	for _, bi := range [2]uint64{i1, i2} {
		b := &t.buckets[bi]
		for s := 0; s < slotsPerBucket; s++ {
			if b.slots[s].Load() == nil {
				b.slots[s].Store(e)
				m.count.Add(1)
				unlock()
				return true
			}
		}
	}
	unlock()
	// Both buckets full: displacement path under the kick lock.
	return m.insertWithKick(t, e, i1)
}

type kickStep struct {
	bucket uint64
	slot   int
}

// insertWithKick frees a slot in bucket start by walking a cuckoo path.
// Items are copied to their alternate bucket leaf-first so that a
// concurrent reader always finds every key in at least one of its buckets.
func (m *Map[V]) insertWithKick(t *table[V], e *entry[V], start uint64) bool {
	m.kickMu.Lock()
	defer m.kickMu.Unlock()

	path := make([]kickStep, 0, maxKickDepth)
	cur := start
	seen := map[uint64]bool{}
	for depth := 0; depth < maxKickDepth; depth++ {
		if seen[cur] {
			return false // cycle → resize
		}
		seen[cur] = true
		// Pick the victim slot round-robin by depth for determinism.
		victim := depth % slotsPerBucket
		path = append(path, kickStep{cur, victim})
		ve := t.buckets[cur].slots[victim].Load()
		if ve == nil {
			// Slot became empty meanwhile; shorten the path here.
			break
		}
		v1, v2 := t.indexes(ve.key)
		alt := v1
		if cur == v1 {
			alt = v2
		}
		// Does the alternate bucket have room?
		hasRoom := false
		for s := 0; s < slotsPerBucket; s++ {
			if t.buckets[alt].slots[s].Load() == nil {
				hasRoom = true
				break
			}
		}
		if hasRoom {
			// Move items back-to-front along the path.
			if !m.shiftPath(t, path, alt) {
				return false
			}
			// start bucket now has the victim slot free; claim it.
			unlock := t.lockPair(start, start)
			ok := false
			b := &t.buckets[start]
			for s := 0; s < slotsPerBucket; s++ {
				if b.slots[s].Load() == nil {
					b.slots[s].Store(e)
					m.count.Add(1)
					ok = true
					break
				}
			}
			unlock()
			if !ok {
				return false
			}
			return true
		}
		cur = alt
	}
	return false
}

// shiftPath moves the entry at each path step into the next bucket,
// starting from the deepest step whose destination is finalAlt.
func (m *Map[V]) shiftPath(t *table[V], path []kickStep, finalAlt uint64) bool {
	dst := finalAlt
	for i := len(path) - 1; i >= 0; i-- {
		src := path[i]
		unlock := t.lockPair(src.bucket, dst)
		e := t.buckets[src.bucket].slots[src.slot].Load()
		if e == nil {
			unlock()
			dst = src.bucket
			continue
		}
		// The victim may have been replaced since the path was planned;
		// moving it to a bucket that is not one of its two homes would make
		// it unfindable, so validate and abort the path instead.
		e1, e2 := t.indexes(e.key)
		if dst != e1 && dst != e2 {
			unlock()
			return false
		}
		placed := false
		db := &t.buckets[dst]
		for s := 0; s < slotsPerBucket; s++ {
			if db.slots[s].Load() == nil {
				db.slots[s].Store(e)
				placed = true
				break
			}
		}
		if !placed {
			unlock()
			return false
		}
		t.buckets[src.bucket].slots[src.slot].Store(nil)
		unlock()
		dst = src.bucket
	}
	return true
}

// grow doubles the table and rehashes every entry.
func (m *Map[V]) grow() {
	m.resizeMu.Lock()
	defer m.resizeMu.Unlock()
	old := m.t.Load()
	nt := newTable[V](len(old.buckets) * 2)
	for bi := range old.buckets {
		for s := 0; s < slotsPerBucket; s++ {
			e := old.buckets[bi].slots[s].Load()
			if e == nil {
				continue
			}
			if !insertInto(nt, e) {
				// Extremely unlikely at ≤25% load; grow again.
				nt = rehashAll(nt, e)
			}
		}
	}
	m.t.Store(nt)
}

func insertInto[V any](t *table[V], e *entry[V]) bool {
	i1, i2 := t.indexes(e.key)
	for _, bi := range [2]uint64{i1, i2} {
		for s := 0; s < slotsPerBucket; s++ {
			if t.buckets[bi].slots[s].Load() == nil {
				t.buckets[bi].slots[s].Store(e)
				return true
			}
		}
	}
	// Single-threaded kick (we hold the resize lock exclusively).
	cur := i1
	carried := e
	for depth := 0; depth < maxKickDepth; depth++ {
		victim := depth % slotsPerBucket
		old := t.buckets[cur].slots[victim].Load()
		t.buckets[cur].slots[victim].Store(carried)
		if old == nil {
			return true
		}
		carried = old
		o1, o2 := t.indexes(old.key)
		if cur == o1 {
			cur = o2
		} else {
			cur = o1
		}
		for s := 0; s < slotsPerBucket; s++ {
			if t.buckets[cur].slots[s].Load() == nil {
				t.buckets[cur].slots[s].Store(carried)
				return true
			}
		}
	}
	return false
}

func rehashAll[V any](t *table[V], pending *entry[V]) *table[V] {
	for {
		nt := newTable[V](len(t.buckets) * 2)
		ok := insertInto(nt, pending)
		for bi := range t.buckets {
			for s := 0; s < slotsPerBucket; s++ {
				if e := t.buckets[bi].slots[s].Load(); e != nil {
					ok = ok && insertInto(nt, e)
				}
			}
		}
		if ok {
			return nt
		}
		t = nt
	}
}

// Delete removes key, reporting whether it was present.
func (m *Map[V]) Delete(key uint64) bool {
	m.resizeMu.RLock()
	defer m.resizeMu.RUnlock()
	t := m.t.Load()
	i1, i2 := t.indexes(key)
	unlock := t.lockPair(i1, i2)
	defer unlock()
	for _, bi := range [2]uint64{i1, i2} {
		b := &t.buckets[bi]
		for s := 0; s < slotsPerBucket; s++ {
			if e := b.slots[s].Load(); e != nil && e.key == key {
				b.slots[s].Store(nil)
				m.count.Add(-1)
				return true
			}
		}
	}
	return false
}

// Len returns the number of stored items.
func (m *Map[V]) Len() int { return int(m.count.Load()) }

// Capacity returns the current slot capacity (buckets × slots).
func (m *Map[V]) Capacity() int { return len(m.t.Load().buckets) * slotsPerBucket }

// Range calls f for every entry until f returns false. The iteration is a
// best-effort snapshot under concurrent writes.
func (m *Map[V]) Range(f func(key uint64, val V) bool) {
	t := m.t.Load()
	for bi := range t.buckets {
		for s := 0; s < slotsPerBucket; s++ {
			if e := t.buckets[bi].slots[s].Load(); e != nil {
				if !f(e.key, e.data) {
					return
				}
			}
		}
	}
}
