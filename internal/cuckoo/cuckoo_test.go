package cuckoo

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasicPutGetDelete(t *testing.T) {
	m := New[[]byte](16)
	if _, ok := m.Get(1); ok {
		t.Fatal("empty map must not contain key")
	}
	m.Put(1, []byte("one"))
	v, ok := m.Get(1)
	if !ok || string(v) != "one" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	m.Put(1, []byte("uno"))
	if v, _ := m.Get(1); string(v) != "uno" {
		t.Fatal("Put must replace")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
	if !m.Delete(1) {
		t.Fatal("Delete of present key must return true")
	}
	if m.Delete(1) {
		t.Fatal("second Delete must return false")
	}
	if _, ok := m.Get(1); ok {
		t.Fatal("deleted key must be gone")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d, want 0", m.Len())
	}
}

func TestZeroKeyAndZeroValue(t *testing.T) {
	m := New[[]byte](4)
	m.Put(0, nil)
	v, ok := m.Get(0)
	if !ok || len(v) != 0 {
		t.Fatal("zero key with empty value must round-trip")
	}
}

func TestPointerValues(t *testing.T) {
	m := New[*int](4)
	x := 41
	m.Put(7, &x)
	p, ok := m.Get(7)
	if !ok || p != &x {
		t.Fatal("pointer values must round-trip identically")
	}
	if _, ok := m.Get(8); ok {
		t.Fatal("absent key must miss")
	}
}

func TestGrowthKeepsAllKeys(t *testing.T) {
	m := New[[]byte](4) // force many doublings
	const n = 50000
	for i := uint64(0); i < n; i++ {
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], i)
		m.Put(i, v[:])
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		v, ok := m.Get(i)
		if !ok {
			t.Fatalf("key %d lost", i)
		}
		if binary.LittleEndian.Uint64(v) != i {
			t.Fatalf("key %d has wrong value", i)
		}
	}
	if m.Capacity() < n {
		t.Fatal("capacity must have grown past item count")
	}
}

func TestRange(t *testing.T) {
	m := New[[]byte](64)
	want := map[uint64]string{}
	for i := uint64(0); i < 100; i++ {
		s := fmt.Sprintf("v%d", i)
		want[i] = s
		m.Put(i, []byte(s))
	}
	got := map[uint64]string{}
	m.Range(func(k uint64, v []byte) bool {
		got[k] = string(v)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("ranged %d items, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d: got %q want %q", k, got[k], v)
		}
	}
	// Early stop.
	n := 0
	m.Range(func(uint64, []byte) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop iterated %d times", n)
	}
}

func TestMatchesReferenceMap(t *testing.T) {
	type op struct {
		Kind byte
		Key  uint16
		Val  byte
	}
	f := func(ops []op) bool {
		m := New[[]byte](8)
		ref := map[uint64][]byte{}
		for _, o := range ops {
			k := uint64(o.Key % 512)
			switch o.Kind % 3 {
			case 0:
				v := []byte{o.Val}
				m.Put(k, v)
				ref[k] = v
			case 1:
				got, ok := m.Get(k)
				want, wok := ref[k]
				if ok != wok {
					return false
				}
				if ok && string(got) != string(want) {
					return false
				}
			case 2:
				_, wok := ref[k]
				if m.Delete(k) != wok {
					return false
				}
				delete(ref, k)
			}
		}
		if m.Len() != len(ref) {
			return false
		}
		for k, want := range ref {
			got, ok := m.Get(k)
			if !ok || string(got) != string(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	m := New[[]byte](1024)
	const (
		goroutines = 8
		opsPer     = 20000
		keyspace   = 4096
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			seed := uint64(g)*2654435761 + 1
			for i := 0; i < opsPer; i++ {
				seed = seed*6364136223846793005 + 1442695040888963407
				k := seed % keyspace
				switch seed >> 62 {
				case 0, 1:
					v := make([]byte, 8)
					binary.LittleEndian.PutUint64(v, k)
					m.Put(k, v)
				case 2:
					if val, ok := m.Get(k); ok {
						if binary.LittleEndian.Uint64(val) != k {
							panic("read value does not match key invariant")
						}
					}
				case 3:
					m.Delete(k)
				}
			}
		}(g)
	}
	wg.Wait()
	// Post-condition: every remaining entry still satisfies value==key.
	m.Range(func(k uint64, v []byte) bool {
		if binary.LittleEndian.Uint64(v) != k {
			t.Errorf("entry %d corrupted", k)
			return false
		}
		return true
	})
}

func TestConcurrentGrowthUnderWriters(t *testing.T) {
	m := New[[]byte](4)
	var wg sync.WaitGroup
	const writers = 4
	const perWriter = 8000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := uint64(w*perWriter + i)
				v := make([]byte, 8)
				binary.LittleEndian.PutUint64(v, k)
				m.Put(k, v)
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != writers*perWriter {
		t.Fatalf("Len = %d, want %d", m.Len(), writers*perWriter)
	}
	for k := uint64(0); k < writers*perWriter; k++ {
		if v, ok := m.Get(k); !ok || binary.LittleEndian.Uint64(v) != k {
			t.Fatalf("key %d missing or wrong after concurrent growth", k)
		}
	}
}

func TestTinyCapacityHint(t *testing.T) {
	m := New[[]byte](0)
	m.Put(42, []byte("x"))
	if v, ok := m.Get(42); !ok || string(v) != "x" {
		t.Fatal("map with zero hint must still work")
	}
}

func BenchmarkGet(b *testing.B) {
	m := New[[]byte](1 << 20)
	var v [64]byte
	for i := uint64(0); i < 1<<20; i++ {
		m.Put(i, v[:])
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			i = i*6364136223846793005 + 1
			m.Get(i % (1 << 20))
		}
	})
}

func BenchmarkPut(b *testing.B) {
	m := New[[]byte](1 << 20)
	var v [64]byte
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			i = i*6364136223846793005 + 1
			m.Put(i%(1<<20), v[:])
		}
	})
}
