package kvcore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"mutps/internal/rpc"
	"mutps/internal/workload"
)

func openTest(t *testing.T, engine Engine, mutate func(*Config)) *Store {
	t.Helper()
	cfg := Config{
		Engine:    engine,
		Workers:   4,
		CRWorkers: 2,
		BatchSize: 4,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Engine: Hash, Workers: 1, CRWorkers: 1},
		{Engine: Hash, Workers: 4, CRWorkers: 0},
		{Engine: Hash, Workers: 4, CRWorkers: 4},
	} {
		if _, err := Open(cfg); err == nil {
			t.Fatalf("config %+v must be rejected", cfg)
		}
	}
}

func TestEngineString(t *testing.T) {
	if Hash.String() != "hash" || Tree.String() != "tree" {
		t.Fatal("engine names")
	}
}

func TestBasicOpsBothEngines(t *testing.T) {
	for _, engine := range []Engine{Hash, Tree} {
		t.Run(engine.String(), func(t *testing.T) {
			s := openTest(t, engine, nil)
			if _, ok, _ := s.Get(1); ok {
				t.Fatal("empty store must miss")
			}
			s.Put(1, []byte("hello"))
			v, ok, _ := s.Get(1)
			if !ok || string(v) != "hello" {
				t.Fatalf("Get = %q, %v", v, ok)
			}
			// Same-size overwrite (in-place path).
			s.Put(1, []byte("world"))
			if v, _, _ := s.Get(1); string(v) != "world" {
				t.Fatal("same-size put must replace")
			}
			// Size-changing overwrite (replacement path).
			s.Put(1, []byte("a much longer value than before"))
			if v, _, _ := s.Get(1); string(v) != "a much longer value than before" {
				t.Fatal("size-changing put must replace")
			}
			if found, _ := s.Delete(1); !found {
				t.Fatal("delete of a live key must report true")
			}
			if found, _ := s.Delete(1); found {
				t.Fatal("second delete must report false")
			}
			if _, ok, _ := s.Get(1); ok {
				t.Fatal("deleted key visible")
			}
			// Put after delete resurrects the key.
			s.Put(1, []byte("back"))
			if v, ok, _ := s.Get(1); !ok || string(v) != "back" {
				t.Fatal("put after delete must resurrect")
			}
		})
	}
}

func TestEightByteFastPath(t *testing.T) {
	s := openTest(t, Hash, nil)
	val := make([]byte, 8)
	binary.LittleEndian.PutUint64(val, 0xDEADBEEF)
	s.Put(42, val)
	got, ok, _ := s.Get(42)
	if !ok || binary.LittleEndian.Uint64(got) != 0xDEADBEEF {
		t.Fatal("8-byte value round-trip failed")
	}
}

func TestScanTreeEngine(t *testing.T) {
	s := openTest(t, Tree, nil)
	for i := uint64(0); i < 100; i += 2 {
		s.Put(i, []byte{byte(i)})
	}
	out, err := s.Scan(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("scan returned %d", len(out))
	}
	for i, kv := range out {
		want := uint64(10 + 2*i)
		if kv.Key != want || kv.Value[0] != byte(want) {
			t.Fatalf("scan[%d] = %+v, want key %d", i, kv, want)
		}
	}
}

func TestScanHashEngineRejected(t *testing.T) {
	s := openTest(t, Hash, nil)
	if _, err := s.Scan(0, 10); err == nil {
		t.Fatal("hash engine must reject scans")
	}
}

func TestPreload(t *testing.T) {
	s := openTest(t, Tree, nil)
	for i := uint64(0); i < 1000; i++ {
		s.Preload(i, []byte{byte(i)})
	}
	if st := s.Stats(); st.Items != 1000 {
		t.Fatalf("Items = %d", st.Items)
	}
	if v, ok, _ := s.Get(999); !ok || v[0] != byte(999%256) {
		t.Fatal("preloaded item must be readable via RPC path")
	}
}

func TestHotSetServesAtCRLayer(t *testing.T) {
	s := openTest(t, Tree, func(c *Config) {
		c.HotItems = 16
		c.SampleEvery = 1
	})
	for i := uint64(0); i < 100; i++ {
		s.Preload(i, []byte("valuesz8"))
	}
	// Drive traffic concentrated on key 7 so the tracker sees it.
	for i := 0; i < 120; i++ {
		s.Get(7)
	}
	if n := s.RefreshHotSet(); n == 0 {
		t.Fatal("refresh found no hot items despite traffic")
	}
	if _, ok := s.cache.Lookup(7); !ok {
		t.Fatal("key 7 must be in the hot view")
	}
	before := s.Stats()
	for i := 0; i < 100; i++ {
		if v, ok, _ := s.Get(7); !ok || string(v) != "valuesz8" {
			t.Fatal("hot get wrong")
		}
	}
	after := s.Stats()
	if after.CRHits-before.CRHits < 90 {
		t.Fatalf("hot gets not served at CR layer: %d hits", after.CRHits-before.CRHits)
	}
	// Hot put, same size: served at CR, visible everywhere.
	s.Put(7, []byte("newvals8"))
	if v, _, _ := s.Get(7); string(v) != "newvals8" {
		t.Fatal("hot put lost")
	}
	// Size-changing put on a hot key: falls through to MR, old holders
	// must converge on the new record.
	s.Put(7, []byte("a longer value now"))
	if v, _, _ := s.Get(7); string(v) != "a longer value now" {
		t.Fatal("size-changing hot put lost")
	}
	// Delete a hot key: subsequent hot lookups must miss.
	s.Delete(7)
	if _, ok, _ := s.Get(7); ok {
		t.Fatal("deleted hot key still visible")
	}
}

func TestRefreshHotSetDisabled(t *testing.T) {
	s := openTest(t, Hash, nil) // HotItems = 0
	s.Preload(1, []byte("x"))
	s.Get(1)
	if n := s.RefreshHotSet(); n != 0 {
		t.Fatalf("disabled hot set cached %d items", n)
	}
	if s.HotItems() != 0 {
		t.Fatal("HotItems should be 0")
	}
	s.SetHotItems(-5)
	if s.HotItems() != 0 {
		t.Fatal("negative target must clamp to 0")
	}
}

func TestConcurrentClients(t *testing.T) {
	s := openTest(t, Hash, func(c *Config) { c.HotItems = 32; c.SampleEvery = 2 })
	const clients, perClient, keys = 3, 700, 256
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			seed := uint64(c)*2654435761 + 99
			for i := 0; i < perClient; i++ {
				seed = seed*6364136223846793005 + 1
				k := seed % keys
				switch seed >> 62 {
				case 0, 1:
					v := make([]byte, 8)
					binary.LittleEndian.PutUint64(v, k)
					s.Put(k, v)
				case 2:
					if v, ok, _ := s.Get(k); ok {
						if binary.LittleEndian.Uint64(v) != k {
							panic(fmt.Sprintf("key %d corrupt", k))
						}
					}
				default:
					s.Delete(k)
				}
				if c == 0 && i%500 == 0 {
					s.RefreshHotSet() // exercise refresh under load
				}
			}
		}(c)
	}
	wg.Wait()
	st := s.Stats()
	if st.Ops == 0 || st.Forwarded == 0 {
		t.Fatalf("stats look dead: %+v", st)
	}
}

func TestSetSplitUnderLoad(t *testing.T) {
	s := openTest(t, Tree, func(c *Config) { c.Workers = 5; c.CRWorkers = 2 })
	for i := uint64(0); i < 256; i++ {
		s.Preload(i, []byte{byte(i)})
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 4)
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			seed := uint64(c + 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				seed = seed*48271 + 11
				k := seed % 256
				if v, ok, _ := s.Get(k); ok && v[0] != byte(k) {
					errs <- fmt.Errorf("key %d corrupt during reassignment", k)
					return
				}
			}
		}(c)
	}
	// Reassign repeatedly in both directions under load.
	for _, n := range []int{1, 3, 2} {
		if err := s.SetSplit(n); err != nil {
			t.Fatal(err)
		}
		// Generate enough traffic for the switch index to be crossed.
		for i := 0; i < 200; i++ {
			s.Get(uint64(i % 256))
		}
		nCR, nMR := s.Split()
		if nCR != n || nMR != 5-n {
			t.Fatalf("split = %d/%d, want %d/%d", nCR, nMR, n, 5-n)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestSetSplitValidation(t *testing.T) {
	s := openTest(t, Hash, nil)
	if err := s.SetSplit(0); err == nil {
		t.Fatal("nCR=0 must be rejected")
	}
	if err := s.SetSplit(4); err == nil {
		t.Fatal("nCR=Workers must be rejected")
	}
	if err := s.SetSplit(2); err != nil {
		t.Fatal("no-op split must succeed")
	}
}

func TestAsyncPipeline(t *testing.T) {
	s := openTest(t, Hash, nil)
	const n = 300
	calls := make([]*rpc.Call, 0, n)
	for i := 0; i < n; i++ {
		v := make([]byte, 8)
		binary.LittleEndian.PutUint64(v, uint64(i))
		c, err := s.SendAsync(rpc.Message{
			Op: workload.OpPut, Key: uint64(i), Value: v,
		})
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, c)
	}
	for _, c := range calls {
		c.Wait()
	}
	for i := 0; i < n; i++ {
		v, ok, _ := s.Get(uint64(i))
		if !ok || binary.LittleEndian.Uint64(v) != uint64(i) {
			t.Fatalf("async put %d lost", i)
		}
	}
}

func TestLargeValuesAcrossPaths(t *testing.T) {
	s := openTest(t, Tree, nil)
	big := bytes.Repeat([]byte{0xAB}, 4096)
	s.Put(5, big)
	v, ok, _ := s.Get(5)
	if !ok || !bytes.Equal(v, big) {
		t.Fatal("4 KB value round-trip failed")
	}
	// In-place same-size update of the large value.
	big2 := bytes.Repeat([]byte{0xCD}, 4096)
	s.Put(5, big2)
	if v, _, _ := s.Get(5); !bytes.Equal(v, big2) {
		t.Fatal("large in-place update failed")
	}
}

func TestStatsAndOps(t *testing.T) {
	s := openTest(t, Hash, nil)
	before := s.Ops()
	s.Put(1, []byte("x"))
	s.Get(1)
	s.Get(2)
	if got := s.Ops() - before; got != 3 {
		t.Fatalf("ops delta = %d, want 3", got)
	}
	st := s.Stats()
	if st.Items != 1 {
		t.Fatalf("Items = %d", st.Items)
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	s, err := Open(Config{Engine: Hash, Workers: 2, CRWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.StartRefresher(time.Millisecond)
	s.Put(1, []byte("x"))
	s.Close()
	s.Close() // must not panic or deadlock
	if call, err := s.SendAsync(rpc.Message{Op: workload.OpGet, Key: 1}); err != rpc.ErrClosed || call != nil {
		t.Fatalf("send after Close = (%v, %v), want (nil, ErrClosed)", call, err)
	}
	if err := s.Put(2, []byte("y")); err != rpc.ErrClosed {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
	if _, _, err := s.Get(1); err != rpc.ErrClosed {
		t.Fatalf("Get after Close = %v, want ErrClosed", err)
	}
	if err := s.SetSplit(1); err != rpc.ErrClosed {
		t.Fatalf("SetSplit after Close = %v, want ErrClosed", err)
	}
}

func TestBatchedGetsMatchSerial(t *testing.T) {
	// Tree engine with BatchSize > 1 exercises the MR layer's shared-descent
	// GetBatch path; results must match per-key gets exactly.
	s := openTest(t, Tree, func(c *Config) { c.BatchSize = 8 })
	for i := uint64(0); i < 512; i += 2 {
		s.Preload(i, []byte{byte(i), byte(i >> 8)})
	}
	// Fire a pipeline of async gets so MR sees multi-request batches.
	calls := make([]*rpc.Call, 0, 256)
	keys := make([]uint64, 0, 256)
	for i := uint64(0); i < 256; i++ {
		k := (i * 7) % 512
		keys = append(keys, k)
		c, err := s.SendAsync(rpc.Message{Op: workload.OpGet, Key: k})
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, c)
	}
	for i, c := range calls {
		c.Wait()
		k := keys[i]
		wantFound := k%2 == 0
		if c.Found != wantFound {
			t.Fatalf("key %d: found=%v want %v", k, c.Found, wantFound)
		}
		if c.Found && (c.Value[0] != byte(k) || c.Value[1] != byte(k>>8)) {
			t.Fatalf("key %d: wrong value %v", k, c.Value)
		}
	}
}

func TestDeleteVisibleToBatchedGets(t *testing.T) {
	s := openTest(t, Tree, func(c *Config) { c.BatchSize = 8 })
	for i := uint64(0); i < 64; i++ {
		s.Preload(i, []byte{1})
	}
	s.Delete(9)
	calls := make([]*rpc.Call, 0, 64)
	for i := uint64(0); i < 64; i++ {
		c, err := s.SendAsync(rpc.Message{Op: workload.OpGet, Key: i})
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, c)
	}
	for i, c := range calls {
		c.Wait()
		if uint64(i) == 9 && c.Found {
			t.Fatal("deleted key visible via batched get")
		}
		if uint64(i) != 9 && !c.Found {
			t.Fatalf("live key %d missing via batched get", i)
		}
	}
}
