package kvcore

import "testing"

// TestEvictionVetoesHotSetAdmission: a key the evictor chose as victim
// must not bounce straight back into the hot set on the next refresh,
// even when it is re-inserted and the tracker's sketch still ranks it
// hot. The veto ages out after two refreshes (Sweep cycles), after which
// a genuinely hot key is admissible again.
func TestEvictionVetoesHotSetAdmission(t *testing.T) {
	s := openTest(t, Hash, func(c *Config) {
		c.Workers = 2
		c.CRWorkers = 1
		c.HotItems = 16
		c.SampleEvery = 1 // track every access: deterministic heat
	})
	val := make([]byte, 64)
	for k := uint64(1); k <= 64; k++ {
		s.Preload(k, val)
	}

	heat := func(key uint64) {
		for i := 0; i < 512; i++ {
			if _, _, err := s.Get(key); err != nil {
				t.Fatal(err)
			}
		}
	}

	heat(5)
	s.RefreshHotSet()
	if _, ok := s.cache.Lookup(5); !ok {
		t.Fatal("hot key not admitted before eviction (test setup broken)")
	}

	if _, ok := s.EvictKey(5); !ok {
		t.Fatal("EvictKey(5) did not evict")
	}
	// The key comes back (a client re-writes it) and stays hot in the
	// tracker — the exact churn pattern the veto exists for.
	if err := s.Put(5, val); err != nil {
		t.Fatal(err)
	}

	vetoBefore := s.met.hotVeto.Value()
	heat(5)
	s.RefreshHotSet() // refresh 1: vetoed (current generation)
	if _, ok := s.cache.Lookup(5); ok {
		t.Fatal("victim re-admitted on the refresh right after eviction")
	}
	heat(5)
	s.RefreshHotSet() // refresh 2: still vetoed (aged generation)
	if _, ok := s.cache.Lookup(5); ok {
		t.Fatal("victim re-admitted while the veto generation is still live")
	}
	if got := s.met.hotVeto.Value(); got < vetoBefore+2 {
		t.Fatalf("veto counter = %d, want ≥ %d", got, vetoBefore+2)
	}

	heat(5)
	s.RefreshHotSet() // refresh 3: veto aged out — hot again, admissible
	if _, ok := s.cache.Lookup(5); !ok {
		t.Fatal("veto never aged out: hot key still barred after two sweeps")
	}

	// The admitted entry serves reads correctly (fresh generation, not the
	// killed pre-eviction item).
	got, found, err := s.Get(5)
	if err != nil || !found || len(got) != len(val) {
		t.Fatalf("get after re-admission: found=%v err=%v len=%d", found, err, len(got))
	}
}
