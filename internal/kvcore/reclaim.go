package kvcore

import (
	"mutps/internal/seqitem"
)

// This file is the store half of the GC-quiet write path: epoch-based
// retirement of replaced and deleted items, so their arena slots and
// headers recycle without ever waiting on the hot path. The full
// ownership and ordering argument is DESIGN.md §11; the shape here:
//
// An item leaves the index (putMR replacement, deleteMR, Preload
// overwrite) and is retired by the unlinking worker into that worker's
// private queues, stamped with the then-current epoch e0. Reclamation
// runs amortized on the same worker, off the request path:
//
//   stage 0 (q0, FIFO): wait Frontier() > e0. That grace period covers
//     every reader section that could have obtained the item from the
//     index or a hot-set view, and — because the hot-set refresher runs
//     inside its own epoch reader slot — every in-flight refresh that
//     could still publish the item into a view. After it, the item's
//     viewGen is final: 0 means no view ever held it (or its chain), and
//     it recycles immediately; otherwise it must outlive the view that
//     holds it.
//   parked (qv, unordered): viewGen g is the *current* view
//     (Installs() == g). Wait for supersession; rescanned each pass.
//   stage 1 (q1, FIFO): a newer view is installed (Installs() > g). The
//     item was re-stamped e1 at that observation; wait Frontier() > e1 to
//     cover readers still inside sections that loaded the old view
//     pointer, then recycle.
//
// Queues are slice+head FIFOs (crState's pattern): drained backing arrays
// are reused, so steady-state retirement allocates nothing.

// retiredItem is one parked item and the epoch stamp its current stage
// waits on (unused while parked in qv).
type retiredItem struct {
	it *seqitem.Item
	e  uint64
}

// retireFIFO is an allocation-recycling FIFO of retired items.
type retireFIFO struct {
	q    []retiredItem
	head int
}

func (f *retireFIFO) push(r retiredItem) { f.q = append(f.q, r) }

func (f *retireFIFO) peek() (retiredItem, bool) {
	if f.head == len(f.q) {
		return retiredItem{}, false
	}
	return f.q[f.head], true
}

func (f *retireFIFO) pop() retiredItem {
	r := f.q[f.head]
	f.q[f.head].it = nil
	f.head++
	if f.head == len(f.q) {
		f.q = f.q[:0]
		f.head = 0
	}
	return r
}

func (f *retireFIFO) len() int { return len(f.q) - f.head }

// retireQ is one worker's retirement state. Single-owner: only the worker
// goroutine (in either role) touches it; the preload queue is owned by
// the preload mutex instead.
type retireQ struct {
	q0  retireFIFO    // awaiting the stage-0 grace period
	qv  []retiredItem // in the current view, awaiting supersession
	q1  retireFIFO    // view superseded, awaiting the stage-1 grace period
	ops int           // put/delete ops since the last reclaim pass
}

func (q *retireQ) pending() int { return q.q0.len() + len(q.qv) + q.q1.len() }

// reclaimEvery and reclaimBudget bound a reclaim pass: at most one pass
// per reclaimEvery retiring ops (plus every idle tick), recycling at most
// reclaimBudget items, so reclamation never adds a latency spike to the
// request path it shares a goroutine with.
const (
	reclaimEvery  = 64
	reclaimBudget = 256
)

// retire hands the just-unlinked item to worker w's queue. Caller must
// have already made the item unreachable to new index readers (index
// pointer swapped or deleted) — the epoch stamp must postdate the unlink.
// Safe inside an epoch section; the reclaim pass itself runs later, from
// maybeReclaim or reclaimTick, outside any section.
func (s *Store) retire(w int, it *seqitem.Item) {
	rq := s.retq[w]
	rq.q0.push(retiredItem{it: it, e: s.dom.Epoch()})
	s.retiredPend.Add(1)
	s.retiredBytes.Add(int64(it.SlotBytes()))
	s.met.retired.Inc(w)
	rq.ops++
}

// maybeReclaim runs a pass once per reclaimEvery retirements. Called on
// the request path right after the epoch section closes, so the pass
// observes a frontier its own reader slot no longer pins.
func (s *Store) maybeReclaim(w int) {
	if s.dom == nil {
		return
	}
	if rq := s.retq[w]; rq.ops >= reclaimEvery {
		rq.ops = 0
		s.reclaim(w)
	}
}

// reclaim runs one budget-bounded reclamation pass over worker w's
// queues. It must be called outside any epoch read-section (a worker's
// own active section would not deadlock — the frontier ignores epochs
// newer than a stamp — but items retired within the section could never
// clear it).
func (s *Store) reclaim(w int) {
	rq := s.retq[w]
	if rq.pending() == 0 {
		return
	}
	s.dom.Advance()
	f := s.dom.Frontier()
	installs := s.cache.Installs()
	budget := reclaimBudget

	// Stage 0: q0 is FIFO by e0, so stop at the first unexpired stamp.
	for budget > 0 {
		r, ok := rq.q0.peek()
		if !ok || f <= r.e {
			break
		}
		rq.q0.pop()
		budget--
		vg := r.it.ViewGen() // final once the stage-0 grace period passed
		switch {
		case vg == 0:
			s.recycle(w, r.it)
		case installs > vg:
			rq.q1.push(retiredItem{it: r.it, e: s.dom.Epoch()})
		default:
			rq.qv = append(rq.qv, retiredItem{it: r.it})
		}
	}

	// Parked: move items whose view has been superseded to stage 1.
	for i := 0; i < len(rq.qv) && budget > 0; {
		if installs > rq.qv[i].it.ViewGen() {
			rq.q1.push(retiredItem{it: rq.qv[i].it, e: s.dom.Epoch()})
			last := len(rq.qv) - 1
			rq.qv[i] = rq.qv[last]
			rq.qv[last].it = nil
			rq.qv = rq.qv[:last]
			budget--
			continue
		}
		i++
	}

	// Stage 1: FIFO by e1.
	for budget > 0 {
		r, ok := rq.q1.peek()
		if !ok || f <= r.e {
			break
		}
		rq.q1.pop()
		s.recycle(w, r.it)
		budget--
	}
}

// recycle returns a fully quiesced item to worker w's pool (and its value
// slot to the arena).
func (s *Store) recycle(w int, it *seqitem.Item) {
	s.retiredBytes.Add(-int64(it.SlotBytes())) // before Recycle drops the words
	s.pools[w].Recycle(it)
	s.retiredPend.Add(-1)
	s.met.recycled.Inc(w)
}

// reclaimTick is the idle/periodic hook: cheap when there is nothing to
// do, a bounded pass otherwise. Gated on the arena being enabled.
func (s *Store) reclaimTick(w int) {
	if s.dom == nil {
		return
	}
	rq := s.retq[w]
	rq.ops = 0
	if rq.pending() > 0 {
		s.reclaim(w)
	}
}

// drainRetired force-recycles every queued retirement. Only Close may
// call it, after the workers and the refresher have exited: with no
// readers left, every grace period is trivially satisfied, so a closed
// store leaks no arena slots.
func (s *Store) drainRetired() {
	if s.dom == nil {
		return
	}
	for w, rq := range s.retq {
		for rq.q0.len() > 0 {
			s.recycle(w, rq.q0.pop().it)
		}
		for _, r := range rq.qv {
			s.recycle(w, r.it)
		}
		rq.qv = rq.qv[:0]
		for rq.q1.len() > 0 {
			s.recycle(w, rq.q1.pop().it)
		}
	}
	s.preMu.Lock()
	for i, r := range s.preRet {
		s.retiredBytes.Add(-int64(r.it.SlotBytes()))
		s.prePool.Recycle(r.it)
		s.retiredPend.Add(-1)
		s.met.recycled.Inc(0)
		s.preRet[i].it = nil
	}
	s.preRet = s.preRet[:0]
	s.preMu.Unlock()
}

// newItem allocates an item for worker w: pool-backed when the arena is
// on, plain heap otherwise.
func (s *Store) newItem(w int, val []byte) *seqitem.Item {
	if s.pools == nil {
		return seqitem.New(val)
	}
	return seqitem.NewIn(s.pools[w], val)
}

// epochEnter/epochExit bracket an item-reading section for reader slot r
// (workers use their id; the refresher uses slot cfg.Workers). No-ops
// when the arena — and with it, item reclamation — is off.
func (s *Store) epochEnter(r int) {
	if s.dom != nil {
		s.dom.Enter(r)
	}
}

func (s *Store) epochExit(r int) {
	if s.dom != nil {
		s.dom.Exit(r)
	}
}

// RetiredPending reports items retired and not yet recycled (also
// exported as a gauge; the chaos tests assert it reaches zero after
// Close).
func (s *Store) RetiredPending() int64 { return s.retiredPend.Load() }
