package kvcore

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mutps/internal/rpc"
	"mutps/internal/workload"
)

// TestPutSameClassAllocFree locks in this PR's tentpole: a size-changing
// put whose old and new values share an arena size class is an item
// *replacement* — new item, index pointer swap, old item retired through
// the epoch protocol — and after warm-up the whole cycle performs zero
// heap allocations: header and slot come back from the worker pool as
// retired predecessors clear their grace periods.
func TestPutSameClassAllocFree(t *testing.T) {
	s := openAllocStore(t, 0)
	preloadKeys(s, 16)

	v24 := make([]byte, 24)
	v28 := make([]byte, 28)
	binary.LittleEndian.PutUint64(v24, 7)
	binary.LittleEndian.PutUint64(v28, 7)
	flip := false
	put := func() {
		v := v24
		if flip {
			v = v28
		}
		flip = !flip
		if err := s.Put(7, v); err != nil {
			t.Fatal(err)
		}
	}
	// Warm-up: grow the retire queues and pools to steady state and let
	// the first reclaim passes recycle the backlog.
	for i := 0; i < 4*reclaimEvery; i++ {
		put()
	}
	avg := testing.AllocsPerRun(300, put)
	if avg != 0 && !raceEnabled {
		t.Fatalf("same-class replacement put allocates %.2f times per op, want 0", avg)
	}
	if v, ok, _ := s.Get(7); !ok || binary.LittleEndian.Uint64(v) != 7 {
		t.Fatalf("get(7) after churn = %x, %v", v, ok)
	}
}

// TestScanAllocFree gates the scan satellite: on the raw async path a
// warmed-up scan allocates nothing — keys, values, and value bytes all
// land in the call's pooled result buffers (ScanKeys/ScanVals/ScanBuf).
func TestScanAllocFree(t *testing.T) {
	s, err := Open(Config{
		Engine:    Tree,
		Workers:   3,
		CRWorkers: 1,
		HotItems:  0,
		IdleSleep: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	preloadKeys(s, 128)

	scan := func() {
		call, err := s.SendAsync(rpc.Message{Op: workload.OpScan, Key: 10, ScanCount: 50})
		if err != nil {
			t.Fatal(err)
		}
		call.Wait()
		if call.Err != nil || len(call.ScanKeys) != 50 {
			t.Fatalf("scan: %v, %d keys", call.Err, len(call.ScanKeys))
		}
		if k0 := call.ScanKeys[0]; k0 != 10 {
			t.Fatalf("scan starts at %d", k0)
		}
		if v0 := binary.LittleEndian.Uint64(call.ScanVals[0]); v0 != 10 {
			t.Fatalf("scan value[0] = %d", v0)
		}
		call.Release()
	}
	for i := 0; i < 32; i++ { // warm call pool, result buffers, MR scratch
		scan()
	}
	avg := testing.AllocsPerRun(200, scan)
	if avg != 0 && !raceEnabled {
		t.Fatalf("warmed-up scan allocates %.2f times per op, want 0", avg)
	}
}

// TestEpochReclamationStress churns size-changing puts and deletes under
// concurrent readers and a continuously refreshing hot set. Every written
// value encodes its key in the first 8 bytes, and every read verifies it:
// a slot recycled before its grace periods elapse shows up as a value
// that decodes to the wrong key — corruption -race cannot see, because
// item words are atomics. The plain header fields rewritten by pool reuse
// (size, words) give -race real teeth on top. CI runs this with -race.
func TestEpochReclamationStress(t *testing.T) {
	// Default IdleSleep: on a single-CPU runner, pure-spin workers starve
	// the client goroutines and the test crawls.
	s, err := Open(Config{
		Engine:    Hash,
		Workers:   3,
		CRWorkers: 1,
		HotItems:  48,
	})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 64
	sizes := []int{16, 24, 32, 40} // classes 16/32/32/64: mixes reuse and class hops
	mkval := func(k uint64, sz int) []byte {
		v := make([]byte, sz)
		binary.LittleEndian.PutUint64(v, k)
		return v
	}
	for k := uint64(0); k < keys; k++ {
		s.Preload(k, mkval(k, sizes[k%uint64(len(sizes))]))
	}

	const writers, readers = 2, 2
	writerOps, readerOps := 4000, 6000
	if testing.Short() {
		writerOps, readerOps = 800, 1200
	}
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)
	stopRefresh := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*0x9E3779B97F4A7C15 + 1
			for i := 0; i < writerOps; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				k := rng % keys
				switch {
				case i%97 == 96:
					if _, err := s.Delete(k); err != nil {
						errCh <- err
						return
					}
					if err := s.Put(k, mkval(k, sizes[i%len(sizes)])); err != nil {
						errCh <- err
						return
					}
				default:
					if err := s.Put(k, mkval(k, sizes[(i+w)%len(sizes)])); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			buf := make([]byte, 0, 64)
			rng := uint64(r)*0xDEADBEEF + 7
			for i := 0; i < readerOps; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				k := rng % keys
				v, ok, err := s.GetInto(k, buf)
				if err != nil {
					errCh <- err
					return
				}
				if ok {
					if len(v) < 8 {
						errCh <- fmt.Errorf("get(%d): %d-byte value", k, len(v))
						return
					}
					if got := binary.LittleEndian.Uint64(v); got != k {
						errCh <- fmt.Errorf("get(%d) decoded key %d: recycled slot read", k, got)
						return
					}
				}
				buf = v[:0]
			}
		}(r)
	}
	var refreshes atomic.Int64
	go func() {
		for {
			select {
			case <-stopRefresh:
				return
			default:
				s.RefreshHotSet()
				refreshes.Add(1)
				// Throttle: a hot refresh loop (CMS snapshot each pass)
				// would monopolize a single-CPU runner.
				time.Sleep(500 * time.Microsecond)
			}
		}
	}()

	wg.Wait()
	close(stopRefresh)
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if refreshes.Load() == 0 {
		t.Error("refresher never ran: view-gated reclamation not exercised")
	}
	retired := s.met.retired.Value()
	if retired == 0 {
		t.Error("no items were retired: stress did not exercise reclamation")
	}
	s.Close()
	if pend := s.RetiredPending(); pend != 0 {
		t.Errorf("%d retirements still pending after Close", pend)
	}
	if rec := s.met.recycled.Value(); rec != retired {
		t.Errorf("retired %d != recycled %d after Close", retired, rec)
	}
}

// TestArenaOffMatchesSemantics runs the same churn shape with the arena
// disabled: the escape hatch must stay semantically identical.
func TestArenaOffMatchesSemantics(t *testing.T) {
	s, err := Open(Config{
		Engine:    Hash,
		Workers:   3,
		CRWorkers: 1,
		HotItems:  16,
		IdleSleep: -1,
		ArenaOff:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	var v [24]byte
	for i := 0; i < 500; i++ {
		k := uint64(i % 16)
		binary.LittleEndian.PutUint64(v[:], k)
		if err := s.Put(k, v[:8+(i%3)*8]); err != nil {
			t.Fatal(err)
		}
		if got, ok, _ := s.Get(k); !ok || binary.LittleEndian.Uint64(got) != k {
			t.Fatalf("get(%d) = %x, %v", k, got, ok)
		}
	}
	if s.RetiredPending() != 0 {
		t.Error("arena-off store tracked retirements")
	}
}
