package kvcore

import (
	"time"

	"mutps/internal/coldtier"
	"mutps/internal/rpc"
	"mutps/internal/seqitem"
)

// This file is the store half of the bounded-memory lifecycle (DESIGN.md
// §13): the lifecycle.Store surface the evictor drives (BudgetedBytes,
// WalkItems, EvictKey, EvictorMaintain), lazy TTL expiry on the read
// path, and the cold-tier miss path with promotion. The state machine:
//
//   live ──expire──▶ expired ──lazy read / evictor──▶ reclaimed (cold entry deleted)
//    │
//    └──evict──▶ spilled (value in the SSD log) ──get──▶ promoted (live again)
//                                              └─delete─▶ gone
//
// Invariant: RAM shadows cold. A key present in the index is always
// served from RAM, so the cold tier may hold a stale older value for it;
// every path that unlinks a key from RAM therefore either re-spills the
// final value (eviction) or deletes the cold entry (delete, lazy expiry),
// keeping stale shadows unreachable.

// evictorQ is the evictor goroutine's pool/retire-queue index; its epoch
// reader slot is evictorSlot. Workers use their own ids for both; the
// refresher owns slot cfg.Workers.
func (s *Store) evictorQ() int    { return s.cfg.Workers }
func (s *Store) evictorSlot() int { return s.cfg.Workers + 1 }

// spillFixup closes the last write-vs-spill race for ≤8-byte items. Their
// in-place puts are single atomic stores with no lock or dead-check, so a
// writer that obtained the item before the eviction unlinked it can land a
// store after the evictor read the value for spilling. The fixup keeps the
// evicted item alive past the stage-0 grace period (retiring it only
// afterwards), then re-reads the word: if it changed, the late write is
// re-spilled conditionally (PutIf on the original location, so a newer
// generation that promote→put→evict cycled through the key is never
// clobbered). >8-byte items need none of this: their writes hold the
// seqlock, which the spill read waits out, and post-Kill lockers abort.
type spillFixup struct {
	it   *seqitem.Item
	key  uint64
	loc  coldtier.Loc
	word uint64 // the word the spill wrote
	exp  uint64
	size int
	e    uint64 // epoch stamp; process once Frontier() > e
}

// BudgetedBytes implements lifecycle.Store: live arena bytes minus bytes
// already retired and merely waiting out grace periods.
func (s *Store) BudgetedBytes() uint64 {
	live := s.arena.LiveBytes()
	ret := s.retiredBytes.Load()
	if ret < 0 {
		ret = 0 // racy collection-time reads can transiently invert
	}
	if uint64(ret) >= live {
		return 0
	}
	return live - uint64(ret)
}

// WalkItems implements lifecycle.Store: it visits live arena-backed items
// with their slot size, hot-set sketch estimate, and expiry state. The
// walk is a best-effort snapshot (concurrent writers may be missed or
// doubled — the evictor re-resolves every victim under its key lock) and
// runs inside the evictor's epoch reader slot so no visited item's slot
// can recycle mid-read.
func (s *Store) WalkItems(f func(key uint64, bytes int, hot uint32, expired bool) bool) {
	now := time.Now().UnixNano()
	visit := func(key uint64, it *seqitem.Item) bool {
		if it.Dead() {
			return true
		}
		b := it.Latest().SlotBytes()
		if b == 0 {
			return true // heap-backed fallback value: not in the arena budget
		}
		return f(key, b, s.cms.Estimate(key), it.Expired(now))
	}
	s.epochEnter(s.evictorSlot())
	defer s.epochExit(s.evictorSlot())
	if r, ok := s.idx.(interface {
		Range(func(uint64, *seqitem.Item) bool)
	}); ok {
		r.Range(visit)
		return
	}
	if s.scanIdx != nil {
		s.scanIdx.Scan(0, s.idx.Len(), visit)
	}
}

// EvictKey implements lifecycle.Store. Under the key-stripe lock — which
// excludes replacement puts, deletes, lazy expiry, and promotion for this
// key — it kills the item (diverting racing writers to the replacement
// path, where they will block on the same lock and reinsert), reads the
// final value through the seqlock, spills it to the cold tier, unlinks
// the key, and retires the item through the epoch path. Expired victims
// are dropped rather than spilled, and their stale cold shadow is deleted.
func (s *Store) EvictKey(key uint64) (uint64, bool) {
	mu := &s.keyLocks[key&s.lockMask]
	mu.Lock()
	defer mu.Unlock()
	it, ok := s.idx.Get(key)
	if !ok || it.Dead() {
		return 0, false
	}
	it = it.Latest()
	freed := uint64(it.SlotBytes())
	if freed == 0 {
		return 0, false // heap-backed: evicting it frees no arena bytes
	}
	exp := it.Expire()
	expired := exp != 0 && uint64(time.Now().UnixNano()) >= exp
	it.Kill()
	// Veto hot-set admission for the next refresh cycles: the tracker's
	// sketch may still rank this key hot, and re-admitting the victim
	// would pin its chain and defeat the eviction.
	s.recent.Note(key)

	spilled := false
	var loc coldtier.Loc
	var word uint64
	if s.cold != nil && !expired {
		if it.Size() <= 8 {
			// Single-word value: capture the word once and spill exactly it,
			// so the fixup has the precise byte pattern to compare against.
			word = it.ReadUint64()
			s.evScratch = appendWord(s.evScratch[:0], word, it.Size())
		} else {
			// Read waits out a writer holding the seqlock; later lockers see
			// dead and abort, so this is the value's final state.
			s.evScratch = it.Read(s.evScratch[:0])
		}
		l, err := s.cold.Put(key, exp, s.evScratch)
		if err == nil {
			spilled = true
			loc = l
			s.met.spills.Inc(0)
			s.met.spilledBytes.Add(0, uint64(len(s.evScratch)))
		} else {
			// Disk failure: the value is dropped (this is a cache tier).
			// Delete any stale cold shadow so the key reads as missing
			// rather than resurrecting an older generation.
			s.cold.Delete(key)
			s.met.spillErrors.Inc(0)
		}
	} else if s.cold != nil {
		s.cold.Delete(key) // expired: clear the shadow too
	}

	s.idx.Delete(key)
	if spilled && it.Size() <= 8 {
		// Defer retirement to the fixup pass: the item's slot must stay
		// intact until the grace period lets us re-check the word.
		s.fixups = append(s.fixups, spillFixup{
			it: it, key: key, loc: loc, word: word,
			exp: exp, size: it.Size(), e: s.dom.Epoch(),
		})
	} else {
		s.retire(s.evictorQ(), it)
	}
	return freed, true
}

// appendWord serializes the low size bytes of a value word (the inverse
// of seqitem's ≤8-byte packing).
func appendWord(dst []byte, word uint64, size int) []byte {
	for b := 0; b < size; b++ {
		dst = append(dst, byte(word>>(8*b)))
	}
	return dst
}

// EvictorMaintain implements lifecycle.Store: called only from the
// evictor goroutine, it processes due spill fixups and runs a bounded
// reclamation pass over the evictor's retirement queue.
func (s *Store) EvictorMaintain() {
	s.runFixups(false)
	s.reclaimTick(s.evictorQ())
}

// runFixups processes spill fixups whose grace period has passed: re-read
// the evicted item's word and, when a late write changed it, re-spill the
// final value conditionally on the original cold location. force (Close
// only, with all workers joined) processes everything unconditionally.
// The item is retired here, not at eviction — see spillFixup.
func (s *Store) runFixups(force bool) {
	if len(s.fixups) == 0 {
		return
	}
	var f uint64
	if !force {
		s.dom.Advance()
		f = s.dom.Frontier()
	}
	old := s.fixups
	kept := old[:0]
	for _, fx := range old {
		if !force && f <= fx.e {
			kept = append(kept, fx)
			continue
		}
		if cur := fx.it.ReadUint64(); cur != fx.word {
			s.evScratch = appendWord(s.evScratch[:0], cur, fx.size)
			if ok, err := s.cold.PutIf(fx.key, fx.exp, s.evScratch, fx.loc); err == nil && ok {
				s.met.spillFixups.Inc(0)
			}
		}
		s.retire(s.evictorQ(), fx.it)
	}
	for i := len(kept); i < len(old); i++ {
		old[i] = spillFixup{}
	}
	s.fixups = kept
}

// serveGet completes a get against the full index: live item → value and
// expiry deadline; expired item → lazy unlink, not-found; RAM miss → cold
// tier, promoting a hit back into RAM. Runs inside worker w's epoch
// section; the caller Completes the call.
func (s *Store) serveGet(w int, key uint64, it *seqitem.Item, ok bool, call *rpc.Call) {
	if ok && it.Dead() {
		// Dead but still indexed: an eviction is mid-flight between Kill and
		// unlink. Its keylock spans the whole protocol (including the cold
		// write), so re-resolving under the lock observes the final state —
		// without this, the get could miss RAM and cold both.
		mu := &s.keyLocks[key&s.lockMask]
		mu.Lock()
		it, ok = s.idx.Get(key)
		mu.Unlock()
	}
	if ok && !it.Dead() {
		if e := it.Expire(); e != 0 && uint64(time.Now().UnixNano()) >= e {
			s.lazyExpire(w, key, it)
			call.Expired = true
			return
		} else {
			call.Value = it.Read(call.Dst[:0])
			call.Found = true
			call.Expiry = e
			return
		}
	}
	s.coldGet(w, key, call)
}

// lazyExpire unlinks an item whose TTL deadline has passed, re-verifying
// under the key-stripe lock (a racing put may have replaced or revived
// it). The cold shadow is deleted so the key cannot resurrect from the
// SSD. Runs inside worker w's epoch section.
func (s *Store) lazyExpire(w int, key uint64, it *seqitem.Item) {
	mu := &s.keyLocks[key&s.lockMask]
	mu.Lock()
	defer mu.Unlock()
	cur, ok := s.idx.Get(key)
	if !ok || cur.Latest() != it.Latest() {
		return // replaced or already unlinked
	}
	cur = cur.Latest()
	now := uint64(time.Now().UnixNano())
	if e := cur.Expire(); e == 0 || now < e {
		return // a racing put refreshed the deadline
	}
	cur.Kill()
	if e := cur.Expire(); e == 0 || now < e {
		// An in-flight lock-free put moved the deadline between the check
		// and the Kill; undo. (A SetExpire still in flight past this second
		// read is the one residual: that put's TTL refresh loses to expiry.)
		cur.Revive()
		return
	}
	s.idx.Delete(key)
	if s.dom != nil {
		s.retire(w, cur)
	}
	if s.cold != nil {
		s.cold.Delete(key)
	}
	s.met.expired.Inc(w)
}

// coldGet serves a RAM miss from the cold tier and promotes the hit back
// into the index, so the next get for the key is a RAM (or even hot-set)
// hit — the MR worker is the promotion path, exactly like any other write.
func (s *Store) coldGet(w int, key uint64, call *rpc.Call) {
	if s.cold == nil {
		return
	}
	v, exp, loc, ok := s.cold.Get(key, call.Dst[:0], time.Now().UnixNano())
	if !ok {
		s.met.coldMisses.Inc(w)
		return
	}
	s.met.coldHits.Inc(w)
	call.Value = v
	call.Found = true
	call.Expiry = exp
	s.promote(w, key, v, exp, loc)
}

// promote inserts a cold-tier value back into RAM. Under the key-stripe
// lock it re-verifies both sides: the key must still be absent from the
// index (a racing put wins) and the cold entry must still live at the
// location the value was read from (a racing delete or newer spill wins —
// the location compare defeats the promote→put→evict ABA).
func (s *Store) promote(w int, key uint64, val []byte, exp uint64, loc coldtier.Loc) {
	mu := &s.keyLocks[key&s.lockMask]
	mu.Lock()
	defer mu.Unlock()
	if _, ok := s.idx.Get(key); ok {
		return
	}
	if l, ok := s.cold.Locate(key); !ok || l != loc {
		return
	}
	// Crash contract: retire the cold copy BEFORE the key goes back into
	// RAM. In-place writes to the RAM item never reach the SSD, so a
	// surviving cold entry would serve a stale generation after a crash; a
	// tombstone instead turns that crash into a clean miss. If the tombstone
	// cannot be appended, skip promotion — the value was still served.
	if !s.cold.Delete(key) {
		return
	}
	n := s.newItem(w, val)
	if exp != 0 {
		n.SetExpire(exp)
	}
	s.idx.Put(key, n)
	s.met.promotes.Inc(w)
	s.met.promotedBytes.Add(w, uint64(len(val)))
}
