package kvcore

import (
	"mutps/internal/obs"
	"mutps/internal/workload"
)

// opNames renders operation labels in workload.OpType order.
var opNames = [4]string{`op="get"`, `op="put"`, `op="delete"`, `op="scan"`}

// storeMetrics is the store's instrument set. Hot-path instruments are
// sharded per worker (or, at the client-facing facade, by key) so no
// request ever bounces a shared cache line; everything derived from state
// lower layers already keep (ring stalls, queue depth, hot-set epochs) is
// registered as a collection-time func metric instead of being counted
// twice.
type storeMetrics struct {
	reg *obs.Registry

	ops       [4]*obs.Counter // completed operations by op type
	crHit     *obs.Counter    // served entirely at the CR layer
	crMiss    *obs.Counter    // consulted the hot set and missed
	crBypass  *obs.Counter    // never eligible for the hot set (delete/scan)
	forwarded *obs.Counter    // crossed the CR-MR queue
	roleSwap  *obs.Counter    // worker layer transitions (§3.5)

	batchSize *obs.Histogram    // CR→MR requests per flushed batch
	lat       [4]*obs.Histogram // facade-observed latency by op type, ns
	valSize   *obs.Histogram    // put value sizes, bytes (workload-signature feed)
	hotVeto   *obs.Counter      // hot-set admissions skipped by the eviction veto

	retired  *obs.Counter // items unlinked and queued for reclamation
	recycled *obs.Counter // retired items whose slots returned to the arena

	// Bounded-memory lifecycle (§13). The spill counters are written only
	// by the evictor goroutine (shard 0); the rest are sharded per worker.
	spills        *obs.Counter // values written to the cold tier by eviction
	spillErrors   *obs.Counter // evictions whose cold write failed (value dropped)
	spillFixups   *obs.Counter // late ≤8-byte writes re-spilled after the grace period
	spilledBytes  *obs.Counter // value bytes spilled
	promotes      *obs.Counter // cold-tier hits promoted back into RAM
	promotedBytes *obs.Counter // value bytes promoted
	coldHits      *obs.Counter // RAM-miss gets served from the cold tier
	coldMisses    *obs.Counter // RAM-miss gets the cold tier missed too
	expired       *obs.Counter // items unlinked by lazy TTL expiry
}

func newStoreMetrics(workers int) *storeMetrics {
	r := obs.NewRegistry()
	m := &storeMetrics{reg: r}
	for op, l := range opNames {
		m.ops[op] = r.Counter("mutps_ops_total", l,
			"Completed operations by type.", workers)
		m.lat[op] = r.Histogram("mutps_op_latency_nanoseconds", l,
			"Request latency observed at the store facade, in nanoseconds.", workers)
	}
	m.crHit = r.Counter("mutps_cr_requests_total", `result="hit"`,
		"Cache-resident layer outcomes: hit = served from the hot set, miss = looked up and forwarded, bypass = op type never served hot (delete/scan).", workers)
	m.crMiss = r.Counter("mutps_cr_requests_total", `result="miss"`, "", workers)
	m.crBypass = r.Counter("mutps_cr_requests_total", `result="bypass"`, "", workers)
	m.forwarded = r.Counter("mutps_forwarded_total", "",
		"Requests forwarded over the CR-MR queue.", workers)
	m.roleSwap = r.Counter("mutps_role_switches_total", "",
		"Worker layer transitions (including each worker's initial role settling).", workers)
	m.batchSize = r.Histogram("mutps_crmr_batch_size", "",
		"Requests per flushed CR-MR batch.", workers)
	m.valSize = r.Histogram("mutps_put_value_bytes", "",
		"Put value sizes in bytes; the mean (sum/count) feeds the tuner's workload signature.", workers)
	m.hotVeto = r.Counter("mutps_hotset_vetoed_total", "",
		"Hot-set admissions skipped because the key was recently evicted.", 1)
	m.retired = r.Counter("mutps_items_retired_total", "",
		"Items unlinked from the index and queued for epoch-based reclamation.", workers)
	m.recycled = r.Counter("mutps_items_recycled_total", "",
		"Retired items whose headers and arena slots have been recycled.", workers)
	m.spills = r.Counter("mutps_cold_spills_total", "",
		"Evicted values written to the cold-tier log.", 1)
	m.spillErrors = r.Counter("mutps_cold_spill_errors_total", "",
		"Evictions whose cold-tier write failed; the value was dropped.", 1)
	m.spillFixups = r.Counter("mutps_cold_spill_fixups_total", "",
		"Late single-word writes re-spilled after the eviction grace period.", 1)
	m.spilledBytes = r.Counter("mutps_cold_spilled_bytes_total", "",
		"Value bytes spilled to the cold tier by eviction.", 1)
	m.promotes = r.Counter("mutps_cold_promotes_total", "",
		"Cold-tier hits promoted back into the in-memory index.", workers)
	m.promotedBytes = r.Counter("mutps_cold_promoted_bytes_total", "",
		"Value bytes promoted back into the in-memory index.", workers)
	m.coldHits = r.Counter("mutps_cold_gets_total", `result="hit"`,
		"RAM-miss gets that consulted the cold tier, by outcome.", workers)
	m.coldMisses = r.Counter("mutps_cold_gets_total", `result="miss"`, "", workers)
	m.expired = r.Counter("mutps_expired_total", "",
		"Items unlinked by lazy TTL expiry on the read path.", workers)
	return m
}

// opsTotal merges the per-op completion counters — the monotonic feedback
// signal the auto-tuner's monitor differentiates.
func (m *storeMetrics) opsTotal() uint64 {
	var t uint64
	for _, c := range m.ops {
		t += c.Value()
	}
	return t
}

// OpCounts returns the completed-operation counters by op type (get,
// put, delete, scan) — with opsTotal and PutValueStats, the raw material
// for the tuner's workload signature.
func (s *Store) OpCounts() [4]uint64 {
	var out [4]uint64
	for i, c := range s.met.ops {
		out[i] = c.Value()
	}
	return out
}

// PutValueStats returns the cumulative sum and count of put value sizes
// observed at the CR layer; the windowed delta sum/count is the exact
// mean value size of recent traffic.
func (s *Store) PutValueStats() (sumBytes, count uint64) {
	snap := s.met.valSize.Snapshot()
	return snap.Sum, snap.Count
}

// registerDerived exposes the state lower layers already track — receive
// ring, CR-MR queue, hot set, index — as collection-time func metrics.
// Called once from Open, after every substructure exists.
func (s *Store) registerDerived() {
	r := s.met.reg
	r.GaugeFunc("mutps_rx_queue_depth", "",
		"Receive-ring occupancy (published requests not yet consumed).",
		func() float64 { return float64(s.rpc.Depth()) })
	r.CounterFunc("mutps_reconfigurations_total", "",
		"RPC schedule changes applied by thread reassignment.",
		func() float64 { return float64(s.rpc.Reconfigurations()) })
	r.CounterFunc("mutps_rpc_backlogged_total", "",
		"Sends rejected with ErrBacklogged because the receive ring stayed full for the whole backpressure budget.",
		func() float64 { return float64(s.rpc.Backlogged()) })
	r.CounterFunc("mutps_ring_push_stalls_total", "",
		"CR-MR pushes that found the target ring full.",
		func() float64 {
			var t uint64
			for _, p := range s.crp {
				t += p.prod.Stalls()
			}
			return float64(t)
		})
	r.CounterFunc("mutps_ring_pop_stalls_total", "",
		"CR-MR polls that found every scanned ring empty.",
		func() float64 {
			var t uint64
			for _, c := range s.mrcons {
				t += c.EmptyPolls()
			}
			return float64(t)
		})
	r.GaugeFunc("mutps_crmr_occupancy", "",
		"Batches published to the CR-MR queue and not yet committed.",
		func() float64 { return float64(s.crmr.Occupancy()) })
	r.CounterFunc("mutps_hotset_installs_total", "",
		"Hot-set view epoch switches (atomic view installs).",
		func() float64 { return float64(s.cache.Installs()) })
	r.CounterFunc("mutps_hotset_refreshes_total", "",
		"Tracker sketch refreshes (CMS + top-k snapshots).",
		func() float64 { return float64(s.tracker.Snapshots()) })
	r.GaugeFunc("mutps_hotset_size", "",
		"Entries in the current hot-set view.",
		func() float64 { return float64(s.cache.Len()) })
	r.GaugeFunc("mutps_hotset_hit_ratio", "",
		"CR hits over hot-set-eligible requests (gets and puts).",
		func() float64 {
			hit := float64(s.met.crHit.Value())
			total := hit + float64(s.met.crMiss.Value())
			if total == 0 {
				return 0
			}
			return hit / total
		})
	r.GaugeFunc("mutps_items", "",
		"Items in the main index.",
		func() float64 { return float64(s.idx.Len()) })
	r.GaugeFunc("mutps_workers", `layer="cr"`,
		"Workers currently assigned per layer.",
		func() float64 { return float64(s.nCR.Load()) })
	r.GaugeFunc("mutps_workers", `layer="mr"`,
		"", func() float64 { return float64(s.cfg.Workers - int(s.nCR.Load())) })
	if s.arena != nil {
		r.GaugeFunc("mutps_items_retired_pending", "",
			"Items retired and not yet past their reclamation grace periods.",
			func() float64 { return float64(s.retiredPend.Load()) })
		s.arena.Instrument(r)
	}
	if s.cold != nil {
		r.GaugeFunc("mutps_cold_hit_ratio", "",
			"Cold-tier hits over RAM-miss gets that consulted the cold tier.",
			func() float64 {
				hit := float64(s.met.coldHits.Value())
				total := hit + float64(s.met.coldMisses.Value())
				if total == 0 {
					return 0
				}
				return hit / total
			})
	}
}

// Metrics returns the store's metric registry, ready to mount behind
// obs.Handler on a /metrics endpoint or to flatten into the netserver
// stats payload.
func (s *Store) Metrics() *obs.Registry { return s.met.reg }

// Trace returns the store's decision trace: every SetSplit/SetHotItems
// reconfiguration and every tuner trigger/retune outcome lands here.
func (s *Store) Trace() *obs.DecisionTrace { return s.trace }

// opIndex clamps an op type into the metrics arrays.
func opIndex(op workload.OpType) int {
	if int(op) >= len(opNames) {
		return len(opNames) - 1
	}
	return int(op)
}
