package kvcore

import (
	"testing"
	"time"

	"mutps/internal/tuner"
)

func TestTunableBounds(t *testing.T) {
	s := openTest(t, Hash, func(c *Config) { c.Workers = 4; c.CRWorkers = 1 })
	tn := &Tunable{S: s}
	threads, ways, maxC, step := tn.Bounds()
	if threads != 4 || ways != 0 {
		t.Fatalf("bounds = %d/%d", threads, ways)
	}
	if maxC != 8192 || step != 1024 {
		t.Fatalf("cache bounds = %d/%d", maxC, step)
	}
}

func TestTunableMeasureAppliesConfig(t *testing.T) {
	s := openTest(t, Hash, func(c *Config) { c.Workers = 4; c.CRWorkers = 1; c.HotItems = 64 })
	for i := uint64(0); i < 128; i++ {
		s.Preload(i, []byte{1})
	}
	// Background traffic so Measure observes non-zero throughput.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				s.Get(uint64(i % 128))
			}
		}
	}()
	tn := &Tunable{S: s, Window: 20 * time.Millisecond, MaxCache: 128, CacheStep: 64}
	rate := tn.Measure(tuner.Config{CacheItems: 32, MRThreads: 2})
	close(stop)
	<-done
	if rate <= 0 {
		t.Fatalf("measured rate %v under live traffic", rate)
	}
	if nCR, _ := s.Split(); nCR != 2 {
		t.Fatalf("Measure must apply the split: nCR=%d", nCR)
	}
	if s.HotItems() != 32 {
		t.Fatalf("Measure must apply the hot-set target: %d", s.HotItems())
	}
}

func TestTunableMeasureClampsSplit(t *testing.T) {
	s := openTest(t, Hash, func(c *Config) { c.Workers = 3; c.CRWorkers = 1 })
	tn := &Tunable{S: s, Window: time.Millisecond}
	// MRThreads beyond Workers-1 must clamp, not error.
	tn.Measure(tuner.Config{MRThreads: 99})
	if nCR, _ := s.Split(); nCR != 1 {
		t.Fatalf("clamped split nCR=%d, want 1", nCR)
	}
	tn.Measure(tuner.Config{MRThreads: 0})
	if nCR, _ := s.Split(); nCR != 2 {
		t.Fatalf("clamped split nCR=%d, want 2", nCR)
	}
}
