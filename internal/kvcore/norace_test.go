//go:build !race

package kvcore

const raceEnabled = false
