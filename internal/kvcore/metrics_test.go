package kvcore

import (
	"strings"
	"testing"

	"mutps/internal/obs"
)

// TestStoreMetricsMoveWithTraffic drives every op type through a live
// store and checks the instruments it is wired to actually move: per-op
// counters, CR hit/miss classification, latency and batch-size histograms,
// and the derived gauges registered at Open.
func TestStoreMetricsMoveWithTraffic(t *testing.T) {
	s := openAllocStore(t, 64)
	preloadKeys(s, 64)

	// Warm key 3 into the hot set so both CR outcomes occur.
	for i := 0; i < 512; i++ {
		s.Get(3)
	}
	if s.RefreshHotSet() == 0 {
		t.Fatal("hot set empty after warm-up")
	}
	for i := 0; i < 100; i++ {
		s.Get(3)                      // CR hits
		s.Get(uint64(40 + i%20))      // CR misses, forwarded
		s.Put(uint64(i), []byte("x")) // puts
	}
	s.Delete(63)

	m := s.Metrics().SnapshotMap()
	if m[`mutps_ops_total{op="get"}`] < 200 {
		t.Fatalf("get counter = %v, want >= 200", m[`mutps_ops_total{op="get"}`])
	}
	if m[`mutps_ops_total{op="put"}`] < 100 {
		t.Fatalf("put counter = %v, want >= 100", m[`mutps_ops_total{op="put"}`])
	}
	if m[`mutps_ops_total{op="delete"}`] != 1 {
		t.Fatalf("delete counter = %v, want 1", m[`mutps_ops_total{op="delete"}`])
	}
	if m[`mutps_cr_requests_total{result="hit"}`] == 0 {
		t.Fatal("no CR hits recorded")
	}
	if m[`mutps_cr_requests_total{result="miss"}`] == 0 {
		t.Fatal("no CR misses recorded")
	}
	if m[`mutps_cr_requests_total{result="bypass"}`] == 0 {
		t.Fatal("delete did not count as a CR bypass")
	}
	if m[`mutps_forwarded_total`] == 0 {
		t.Fatal("no forwards recorded")
	}
	if m[`mutps_op_latency_nanoseconds_count{op="get"}`] < 200 {
		t.Fatalf("get latency samples = %v, want >= 200",
			m[`mutps_op_latency_nanoseconds_count{op="get"}`])
	}
	if m[`mutps_op_latency_nanoseconds_p50{op="get"}`] == 0 {
		t.Fatal("get latency p50 is zero")
	}
	if m[`mutps_crmr_batch_size_count`] == 0 {
		t.Fatal("no CR→MR batches recorded")
	}
	if m[`mutps_items`] == 0 || m[`mutps_hotset_size`] == 0 {
		t.Fatalf("derived gauges empty: items=%v hot=%v", m[`mutps_items`], m[`mutps_hotset_size`])
	}
	ratio := m[`mutps_hotset_hit_ratio`]
	if ratio <= 0 || ratio >= 1 {
		t.Fatalf("hit ratio = %v, want in (0, 1)", ratio)
	}
	if m[`mutps_workers{layer="cr"}`]+m[`mutps_workers{layer="mr"}`] != 3 {
		t.Fatalf("worker gauges do not sum to the pool: cr=%v mr=%v",
			m[`mutps_workers{layer="cr"}`], m[`mutps_workers{layer="mr"}`])
	}
	if v, ok := m[`mutps_rpc_backlogged_total`]; !ok || v != 0 {
		t.Fatalf("backpressure counter = %v, %v; want registered and 0 without overload", v, ok)
	}

	// Stats() is now derived from the same instruments.
	st := s.Stats()
	if float64(st.Ops) != m[`mutps_ops_total{op="get"}`]+m[`mutps_ops_total{op="put"}`]+
		m[`mutps_ops_total{op="delete"}`]+m[`mutps_ops_total{op="scan"}`] {
		t.Fatalf("Stats.Ops %d disagrees with per-op counters", st.Ops)
	}
}

// TestReconfigurationDecisionsTraced checks SetSplit and SetHotItems land
// in the decision trace with before/after configuration.
func TestReconfigurationDecisionsTraced(t *testing.T) {
	s := openAllocStore(t, 64)
	if err := s.SetSplit(2); err != nil {
		t.Fatal(err)
	}
	s.SetHotItems(128)
	s.SetHotItems(128) // unchanged target: no decision

	ds := s.Trace().Snapshot()
	if len(ds) != 2 {
		t.Fatalf("trace has %d decisions, want 2: %+v", len(ds), ds)
	}
	if ds[0].Event != "split" || ds[0].OldSplit != 1 || ds[0].NewSplit != 2 {
		t.Fatalf("split decision = %+v", ds[0])
	}
	if ds[1].Event != "cache" || ds[1].OldCache != 64 || ds[1].NewCache != 128 {
		t.Fatalf("cache decision = %+v", ds[1])
	}

	// The split must also show up in the reconfiguration counter and the
	// layer gauges.
	m := s.Metrics().SnapshotMap()
	if m[`mutps_reconfigurations_total`] == 0 {
		t.Fatal("reconfiguration counter did not move")
	}
	if m[`mutps_workers{layer="cr"}`] != 2 {
		t.Fatalf("cr worker gauge = %v, want 2", m[`mutps_workers{layer="cr"}`])
	}
}

// TestMetricsPrometheusExport smoke-checks the store registry renders as
// Prometheus text with the expected families present.
func TestMetricsPrometheusExport(t *testing.T) {
	s := openAllocStore(t, 64)
	preloadKeys(s, 8)
	for i := uint64(0); i < 8; i++ {
		s.Get(i)
	}
	var sb strings.Builder
	if err := s.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE mutps_ops_total counter",
		"# TYPE mutps_op_latency_nanoseconds histogram",
		`mutps_op_latency_nanoseconds_bucket{op="get",le="+Inf"}`,
		"# TYPE mutps_rx_queue_depth gauge",
		"mutps_items 8",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestRoleSwitchCounter checks layer transitions are counted: beyond the
// initial role settling, a SetSplit that moves a worker adds switches.
func TestRoleSwitchCounter(t *testing.T) {
	s := openAllocStore(t, 0)
	base := s.met.roleSwap.Value()
	if err := s.SetSplit(2); err != nil {
		t.Fatal(err)
	}
	// The promoted worker leaves runMR and enters runCR; give it a moment.
	deadline := 200
	for s.met.roleSwap.Value() == base && deadline > 0 {
		deadline--
		s.Get(1) // keep the loop honest under -race
	}
	if s.met.roleSwap.Value() == base {
		t.Fatal("role-switch counter did not move after SetSplit")
	}
}

// TestDisabledConstWiredIntoStore documents the obs_off contract: in the
// default build Disabled is false and instruments record.
func TestDisabledConstWiredIntoStore(t *testing.T) {
	if obs.Disabled {
		t.Skip("obs_off build: instruments intentionally inert")
	}
	s := openAllocStore(t, 0)
	s.Put(1, []byte("v"))
	if s.met.opsTotal() == 0 {
		t.Fatal("ops counter inert in the default build")
	}
}
