//go:build race

package kvcore

// raceEnabled lets the allocation gates stand down under -race: the race
// runtime instruments allocations of its own (shadow state for fresh
// slices), so AllocsPerRun == 0 is not achievable or meaningful there.
const raceEnabled = true
