package kvcore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mutps/internal/tuner"
)

// TestOnlineRetuneUnderLoad is the no-downtime guarantee test: full
// tuner searches (SetSplit reassignments + hot-set resizes + view
// reinstalls) run while client goroutines hammer the store, and every
// read must remain byte-for-byte correct throughout. Values encode
// their key in every byte and alternate between two lengths, so a
// torn/stale/crossed read is detected at the byte level, and both the
// in-place write path and the item-replacement path stay exercised
// across reconfigurations. Run with -race in CI.
func TestOnlineRetuneUnderLoad(t *testing.T) {
	s := openTest(t, Hash, func(c *Config) {
		c.Workers = 4
		c.CRWorkers = 2
		c.HotItems = 64
	})
	const nKeys = 256
	sizes := [2]int{16, 48} // same key flips between sizes: replacement path
	pattern := func(key uint64, size int) []byte {
		b := make([]byte, size)
		for i := range b {
			b[i] = byte(key)
		}
		return b
	}
	for k := uint64(0); k < nKeys; k++ {
		s.Preload(k, pattern(k, sizes[k%2]))
	}

	var stop atomic.Bool
	var oracleErr atomic.Value
	fail := func(format string, args ...any) {
		oracleErr.CompareAndSwap(nil, fmt.Sprintf(format, args...))
		stop.Store(true)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 0, 64)
			for i := 0; !stop.Load(); i++ {
				key := uint64((g*131 + i) % nKeys)
				if i%4 == 3 {
					if err := s.Put(key, pattern(key, sizes[(i/4)%2])); err != nil {
						fail("put %d: %v", key, err)
						return
					}
					continue
				}
				v, found, err := s.GetInto(key, buf[:0])
				if err != nil {
					fail("get %d: %v", key, err)
					return
				}
				if !found {
					fail("get %d: vanished mid-retune", key)
					return
				}
				if len(v) != sizes[0] && len(v) != sizes[1] {
					fail("get %d: impossible length %d", key, len(v))
					return
				}
				for j, b := range v {
					if b != byte(key) {
						fail("get %d: byte %d = %#x, want %#x (torn or crossed read)",
							key, j, b, byte(key))
						return
					}
				}
			}
		}(g)
	}

	// Online retuning mid-traffic: the real controller plumbing (Tunable →
	// Optimize → SetSplit/SetHotItems/RefreshHotSet), forced several times
	// so every probe reconfigures a store under full load.
	tn := &Tunable{S: s, Window: 2 * time.Millisecond, MaxCache: 128, CacheStep: 64}
	ctl := tuner.NewController(tn, tuner.ControllerConfig{Rate: s.Ops})
	deadline := time.Now().Add(2 * time.Second)
	retunes := 0
	for time.Now().Before(deadline) && retunes < 3 && !stop.Load() {
		ctl.Retune()
		retunes++
		// Also force the extremes the search may not linger on.
		tn.Apply(tuner.Config{CacheItems: 0, MRThreads: 3})
		time.Sleep(5 * time.Millisecond)
		tn.Apply(tuner.Config{CacheItems: 128, MRThreads: 1})
		time.Sleep(5 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if msg, ok := oracleErr.Load().(string); ok {
		t.Fatal(msg)
	}
	if retunes == 0 {
		t.Fatal("no retune completed")
	}
	// The store still serves after the dust settles.
	for k := uint64(0); k < nKeys; k++ {
		v, found, err := s.Get(k)
		if err != nil || !found {
			t.Fatalf("post-retune get %d: found=%v err=%v", k, found, err)
		}
		for j, b := range v {
			if b != byte(k) {
				t.Fatalf("post-retune get %d: byte %d = %#x", k, j, b)
			}
		}
	}
}

// TestRetuneIdleThenTraffic retunes a store that is carrying no traffic at
// all — the controller's probe burst fires many SetSplit reconfigurations
// while the RPC ring's ticket stands still, so every probe phase lands on
// the same switch index — and then checks that traffic resuming afterwards
// completes. This wedged before the RPC ring re-derived slot ownership on
// every poll: a worker activated under a superseded probe phase kept a
// stale claim on a future slot, stole it from its rightful owner when
// traffic resumed, and the owner (plus the client whose request landed on
// the owner's next slot) hung forever. See also the rpc package's
// TestReconfigureBurstNoTraffic for the protocol-level version.
func TestRetuneIdleThenTraffic(t *testing.T) {
	s := openTest(t, Hash, func(c *Config) {
		c.Workers = 4
		c.CRWorkers = 2
		c.HotItems = 64
	})
	const nKeys = 2048
	val := make([]byte, 64)
	for k := uint64(0); k < nKeys; k++ {
		s.Preload(k, val)
	}
	for i := 0; i < 1000; i++ { // park cursors mid-ring
		if _, _, err := s.Get(uint64(i) % nKeys); err != nil {
			t.Fatal(err)
		}
	}
	tn := &Tunable{S: s, Window: time.Millisecond, MaxCache: 128, CacheStep: 64}
	// A prior outside the clamped range forces an extra probe config, like
	// a simkv-seeded prior tuned for different hardware would.
	priors := tuner.NewPriors()
	priors.Update(tuner.MakeSignature(1, 0, 64),
		tuner.Prior{Config: tuner.Config{CacheItems: 10000, MRThreads: 7}, Source: "simkv"})
	ctl := tuner.NewController(tn, tuner.ControllerConfig{
		Rate: s.Ops, Priors: priors, Signature: tn.Signature,
	})
	for round := 0; round < 3; round++ {
		ctl.Retune() // zero traffic: every probe shares one switch index
		done := make(chan error, 1)
		go func() {
			for k := uint64(0); k < nKeys; k++ {
				if _, _, err := s.Get(k); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("round %d: gets wedged after idle retune (cfg %+v)", round, tn.Current())
		}
	}
}
