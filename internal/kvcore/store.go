package kvcore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mutps/internal/arena"
	"mutps/internal/coldtier"
	"mutps/internal/epoch"
	"mutps/internal/hotset"
	"mutps/internal/lifecycle"
	"mutps/internal/obs"
	"mutps/internal/ring"
	"mutps/internal/rpc"
	"mutps/internal/seqitem"
	"mutps/internal/workload"
)

// Config describes a Store. Zero fields take documented defaults.
type Config struct {
	Engine    Engine
	Workers   int // total worker goroutines (>= 2)
	CRWorkers int // initially at the cache-resident layer (1..Workers-1)

	BatchSize    int // CR→MR requests per ring slot (default 8)
	RXCapacity   int // receive-ring slots (default 1024)
	CRMRCapacity int // per-pair CR-MR ring slots (default 64)
	SlabSize     int // per-CR-worker in-flight request contexts (default 4096)

	HotItems    int // hot-set cache target size (0 disables the CR cache)
	SampleEvery int // hot-set tracker sampling period (default 8)
	TrackRing   int // per-worker sample ring (default 1024)

	// IdleSleep is how long a worker parks after a long run of empty polls
	// (default 50µs; negative disables). On the paper's dedicated pinned
	// cores workers spin forever; when sharing cores with clients (tests,
	// laptops, TCP serving) pure spinning starves everyone else, so idle
	// workers yield the processor after idleSpins consecutive empty polls.
	IdleSleep time.Duration

	CapacityHint int // expected item count (hash engine pre-sizing)

	ArenaOff   bool // disable the slab arena (items come from the Go heap)
	ArenaChunk int  // arena backing-chunk bytes per size class (default 256 KiB)

	// Bounded-memory lifecycle (DESIGN.md §13). MemoryBudget is the high
	// watermark on live arena bytes; when crossed, a background evictor
	// unlinks the coldest items (ranked by the hot-set sketch) until live
	// bytes fall to EvictLowWater×MemoryBudget, spilling values to the
	// cold tier when ColdDir is set and dropping them otherwise. The
	// budget requires the arena: it bounds what the arena accounts for.
	MemoryBudget  int64         // 0 = unbounded
	EvictLowWater float64       // fraction of the budget to evict down to (default 0.9)
	EvictInterval time.Duration // evictor poll period (default 5ms)

	ColdDir          string // SSD value-log directory ("" = no cold tier)
	ColdSegmentBytes int64  // cold-tier segment size (default 64 MiB)

	// ColdCheckpointInterval is the period of the cold tier's background
	// location-index checkpoint (0 = coldtier default of 30s, <0 = disable
	// checkpointing entirely, including the clean-Close checkpoint).
	// Restart from a checkpoint replays only the log suffix past its
	// frontier instead of rescanning every segment.
	ColdCheckpointInterval time.Duration

	// DefaultTTL is stamped on every put that carries no explicit TTL
	// (0 = items never expire). Expiry is lazy: expired items read as
	// missing and are unlinked by the first read that notices, or by the
	// evictor, whichever comes first.
	DefaultTTL time.Duration
}

func (c *Config) applyDefaults() error {
	if c.Workers < 2 {
		return fmt.Errorf("kvcore: need at least 2 workers, got %d", c.Workers)
	}
	if c.CRWorkers < 1 || c.CRWorkers >= c.Workers {
		return fmt.Errorf("kvcore: CRWorkers must be in [1, Workers-1], got %d/%d",
			c.CRWorkers, c.Workers)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.BatchSize > ring.MaxBatch {
		c.BatchSize = ring.MaxBatch
	}
	if c.RXCapacity <= 0 {
		c.RXCapacity = 1024
	}
	if c.CRMRCapacity <= 0 {
		c.CRMRCapacity = 64
	}
	if c.SlabSize <= 0 {
		c.SlabSize = 4096
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 8
	}
	if c.TrackRing <= 0 {
		c.TrackRing = 1024
	}
	if c.CapacityHint <= 0 {
		c.CapacityHint = 1 << 16
	}
	if c.IdleSleep == 0 {
		c.IdleSleep = 50 * time.Microsecond
	}
	if c.ArenaChunk <= 0 {
		c.ArenaChunk = arena.DefaultChunkBytes
	}
	if c.MemoryBudget > 0 && c.ArenaOff {
		return fmt.Errorf("kvcore: MemoryBudget requires the arena (ArenaOff must be false)")
	}
	if c.MemoryBudget < 0 {
		return fmt.Errorf("kvcore: MemoryBudget must be >= 0, got %d", c.MemoryBudget)
	}
	return nil
}

// Store is a running μTPS key-value store.
type Store struct {
	cfg Config

	idx     Index
	scanIdx RangeIndex // nil for hash engine

	rpc     *rpc.Server
	crmr    *ring.CRMR
	cache   *hotset.Cache
	tracker *hotset.Tracker
	cms     *hotset.CMS
	recent  *hotset.Recent // eviction veto: victims skip hot-set admission
	slabs   []*slab
	crp     []*crPersist
	mrscr   []*mrScratch
	mrcons  []*ring.Consumer

	// keyLocks stripes size-changing puts and deletes. The stripe count is
	// a power of two derived from Config.Workers (≥64) so that write-heavy
	// workloads on wide stores don't hit a fixed contention ceiling.
	keyLocks []sync.Mutex
	lockMask uint64

	// The GC-quiet write path (nil/empty when Config.ArenaOff): items draw
	// their headers and value words from per-worker pools over the shared
	// slab arena, and retired items pass through epoch grace periods
	// (reader slots: one per worker plus one for the serialized hot-set
	// refresher) before their slots recycle. See reclaim.go and DESIGN.md
	// §11.
	arena       *arena.Arena
	dom         *epoch.Domain
	pools       []*seqitem.Pool
	retq        []*retireQ
	retiredPend atomic.Int64

	// Bounded-memory lifecycle (DESIGN.md §13). The evictor goroutine owns
	// pool/queue index cfg.Workers and epoch reader slot cfg.Workers+1, so
	// reclaiming memory never rides the RPC ring; fixups and evScratch are
	// evictor-goroutine-private. retiredBytes projects how many live arena
	// bytes are already retired and merely waiting out grace periods — the
	// budget is enforced against live-minus-retired, or eviction would
	// re-fire on memory it has already freed.
	cold         *coldtier.Log
	evictor      *lifecycle.Evictor
	fixups       []spillFixup
	evScratch    []byte
	retiredBytes atomic.Int64

	// Preload bypasses the RPC path, so it gets its own serialized pool
	// and retire queue (drained at Close, when no readers remain).
	preMu   sync.Mutex
	prePool *seqitem.Pool
	preRet  []retiredItem

	// refreshMu serializes RefreshHotSet: the refresher owns one epoch
	// reader slot and one install-generation sequence, neither of which
	// tolerates concurrent refreshes.
	refreshMu sync.Mutex

	nCR       atomic.Int32
	hotTarget atomic.Int32
	stop      atomic.Bool
	crDone    atomic.Int32 // workers retired from the terminal RPC schedule
	wg        sync.WaitGroup
	closeOnce sync.Once
	refreshWG sync.WaitGroup
	refreshCh chan struct{}

	// met holds every instrument (sharded counters, latency histograms,
	// derived gauges); trace records reconfiguration decisions.
	met   *storeMetrics
	trace *obs.DecisionTrace
}

// Open validates cfg, builds the store, and starts its workers.
func Open(cfg Config) (*Store, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	s := &Store{cfg: cfg}
	s.met = newStoreMetrics(cfg.Workers)
	s.trace = obs.NewDecisionTrace(256)
	if cfg.Engine == Tree {
		ti := newTreeIndex()
		s.idx, s.scanIdx = ti, ti
	} else {
		s.idx = newHashIndex(cfg.CapacityHint)
	}
	s.rpc = rpc.NewServer(cfg.RXCapacity, cfg.Workers, cfg.CRWorkers)
	s.crmr = ring.NewCRMR(cfg.Workers, cfg.Workers, cfg.CRMRCapacity)
	s.cache = hotset.NewCache()
	s.tracker = hotset.NewTracker(cfg.Workers, cfg.SampleEvery, cfg.TrackRing)
	s.cms = hotset.NewCMS(4 * cfg.TrackRing * cfg.Workers)
	s.recent = hotset.NewRecent(4096)
	s.slabs = make([]*slab, cfg.Workers)
	s.crp = make([]*crPersist, cfg.Workers)
	s.mrscr = make([]*mrScratch, cfg.Workers)
	s.mrcons = make([]*ring.Consumer, cfg.Workers)
	for i := range s.slabs {
		s.slabs[i] = newSlab(cfg.SlabSize)
		s.crp[i] = &crPersist{
			prod: s.crmr.Producer(i, cfg.BatchSize),
			cols: make([]crState, cfg.Workers),
		}
		s.mrscr[i] = &mrScratch{}
		s.mrcons[i] = s.crmr.Consumer(i)
	}
	stripes := 64
	for stripes < 16*cfg.Workers {
		stripes <<= 1
	}
	s.keyLocks = make([]sync.Mutex, stripes)
	s.lockMask = uint64(stripes - 1)
	if !cfg.ArenaOff {
		s.arena = arena.New(cfg.ArenaChunk)
		// Reader slots: one per worker, cfg.Workers for the refresher,
		// cfg.Workers+1 for the evictor. Pool/queue index cfg.Workers is
		// the evictor's (workers use their own ids).
		s.dom = epoch.NewDomain(cfg.Workers + 2)
		s.pools = make([]*seqitem.Pool, cfg.Workers+1)
		s.retq = make([]*retireQ, cfg.Workers+1)
		for i := range s.pools {
			s.pools[i] = seqitem.NewPool(s.arena.NewCache())
			s.retq[i] = &retireQ{}
		}
		s.prePool = seqitem.NewPool(s.arena.NewCache())
	}
	if cfg.ColdDir != "" {
		cold, err := coldtier.Open(coldtier.Options{
			Dir:                cfg.ColdDir,
			SegmentBytes:       cfg.ColdSegmentBytes,
			CheckpointInterval: cfg.ColdCheckpointInterval,
		})
		if err != nil {
			return nil, fmt.Errorf("kvcore: cold tier: %w", err)
		}
		s.cold = cold
		s.cold.Instrument(s.met.reg)
	}
	s.nCR.Store(int32(cfg.CRWorkers))
	s.hotTarget.Store(int32(cfg.HotItems))
	s.registerDerived()

	if cfg.MemoryBudget > 0 {
		s.evictor = lifecycle.New(lifecycle.Config{
			Budget:   uint64(cfg.MemoryBudget),
			LowWater: cfg.EvictLowWater,
			Interval: cfg.EvictInterval,
		}, s, s.met.reg)
		// Kick the evictor from allocation slow paths too, so a put burst
		// between ticks can't overshoot the budget by a full interval.
		s.arena.SetPressureHook(uint64(cfg.MemoryBudget), s.evictor.Notify)
		s.evictor.Start()
	}

	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker(i)
	}
	return s, nil
}

// Engine returns the configured index engine.
func (s *Store) Engine() Engine { return s.cfg.Engine }

// Close drains and stops the store; it is idempotent and safe to call
// under concurrent load. Every request accepted before Close completes
// with its result; concurrent and later requests fail with rpc.ErrClosed.
// No accepted call is ever stranded (§3.5's residual-request guarantee,
// extended to shutdown).
func (s *Store) Close() {
	s.closeOnce.Do(func() {
		// Order matters: close the RPC ring first so new Sends fail and a
		// terminal schedule phase retires each worker only after it has
		// consumed every slot it owns; then wait for the workers, so none
		// exits while it still owns live slots. stop is set only after the
		// drain completes — it is a backstop for out-of-band stoppers, not
		// the shutdown signal.
		s.rpc.Close()
		if s.refreshCh != nil {
			close(s.refreshCh)
			s.refreshWG.Wait()
		}
		if s.evictor != nil {
			s.evictor.Close()
		}
		s.wg.Wait()
		s.stop.Store(true)
		// Under the graceful drain above this finds nothing; it is the
		// safety net that turns any future drain bug into failed calls
		// instead of hung callers.
		s.rpc.DrainStranded()
		// Workers and the background refresher are gone; refreshMu excludes
		// a manual RefreshHotSet still in flight. With no readers left,
		// every retirement grace period is satisfied, so the drain returns
		// all in-flight retirements to the arena — a closed store leaks no
		// slots.
		// Deferred spill fixups run first (force=true: no writer can race
		// anymore), so the cold tier closes consistent.
		s.refreshMu.Lock()
		s.runFixups(true)
		s.drainRetired()
		s.refreshMu.Unlock()
		if s.cold != nil {
			s.cold.Close()
		}
	})
}

// --- client API -----------------------------------------------------------

// Get fetches the value for key over the store's RPC path. The returned
// slice is freshly allocated; use GetInto to reuse a caller-owned buffer.
// The error is rpc.ErrClosed after Close and rpc.ErrBacklogged (retryable)
// when the receive ring is saturated.
func (s *Store) Get(key uint64) ([]byte, bool, error) {
	return s.GetInto(key, nil)
}

// GetInto fetches the value for key, appending it into buf[:0]. When buf
// has enough capacity the returned value aliases it and the whole request
// lifecycle is allocation-free (pooled call, reused buffer); otherwise a
// fresh slice is returned. On a miss (and on error) it returns buf[:0] and
// false, so a loop can keep threading one buffer (buf = v[:0]) regardless
// of outcome. buf must not be touched by the caller while the request is
// in flight.
func (s *Store) GetInto(key uint64, buf []byte) ([]byte, bool, error) {
	var start time.Time
	if !obs.Disabled {
		start = time.Now()
	}
	call, err := s.rpc.Send(rpc.Message{Op: workload.OpGet, Key: key, Dst: buf})
	if err != nil {
		return buf[:0], false, err
	}
	call.Wait()
	v, found, err := call.Value, call.Found, call.Err
	call.Release()
	if err != nil {
		return buf[:0], false, err
	}
	if v == nil {
		v = buf[:0]
	}
	if !obs.Disabled {
		s.met.lat[workload.OpGet].Record(int(key), uint64(time.Since(start)))
	}
	return v, found, nil
}

// Put stores val under key. The value bytes are copied into the item
// before Put returns, so the caller may immediately reuse val. A non-nil
// error (rpc.ErrClosed, rpc.ErrBacklogged) means the put did not execute.
func (s *Store) Put(key uint64, val []byte) error {
	var start time.Time
	if !obs.Disabled {
		start = time.Now()
	}
	call, err := s.rpc.Send(rpc.Message{Op: workload.OpPut, Key: key, Value: val, Expire: s.expireAt(0)})
	if err != nil {
		return err
	}
	call.Wait()
	err = call.Err
	call.Release()
	if err != nil {
		return err
	}
	if !obs.Disabled {
		s.met.lat[workload.OpPut].Record(int(key), uint64(time.Since(start)))
	}
	return nil
}

// expireAt converts a relative TTL into the absolute unix-nano deadline
// stamped into the item header. ttl == 0 falls back to Config.DefaultTTL;
// a zero result means "never expires".
func (s *Store) expireAt(ttl time.Duration) uint64 {
	if ttl <= 0 {
		ttl = s.cfg.DefaultTTL
	}
	if ttl <= 0 {
		return 0
	}
	return uint64(time.Now().UnixNano() + int64(ttl))
}

// PutTTL stores val under key with a per-item TTL. ttl <= 0 selects
// Config.DefaultTTL (and "never" when that is unset too). Expiry is lazy:
// after the deadline the key reads as missing on every path (hot set, MR
// index, cold tier) and its memory is reclaimed by the first read that
// notices or by the evictor.
func (s *Store) PutTTL(key uint64, val []byte, ttl time.Duration) error {
	var start time.Time
	if !obs.Disabled {
		start = time.Now()
	}
	call, err := s.rpc.Send(rpc.Message{Op: workload.OpPut, Key: key, Value: val, Expire: s.expireAt(ttl)})
	if err != nil {
		return err
	}
	call.Wait()
	err = call.Err
	call.Release()
	if err != nil {
		return err
	}
	if !obs.Disabled {
		s.met.lat[workload.OpPut].Record(int(key), uint64(time.Since(start)))
	}
	return nil
}

// GetTTL fetches the value for key together with its remaining TTL
// (0 = no expiry set). Expired keys report found=false.
func (s *Store) GetTTL(key uint64) (val []byte, ttl time.Duration, found bool, err error) {
	call, err := s.rpc.Send(rpc.Message{Op: workload.OpGet, Key: key})
	if err != nil {
		return nil, 0, false, err
	}
	call.Wait()
	v, found, exp, cerr := call.Value, call.Found, call.Expiry, call.Err
	call.Release()
	if cerr != nil {
		return nil, 0, false, cerr
	}
	if found && exp != 0 {
		if rem := int64(exp) - time.Now().UnixNano(); rem > 0 {
			ttl = time.Duration(rem)
		} else {
			// Deadline passed between the worker's check and now.
			return nil, 0, false, nil
		}
	}
	return v, ttl, found, nil
}

// Delete removes key, reporting whether it existed.
func (s *Store) Delete(key uint64) (bool, error) {
	var start time.Time
	if !obs.Disabled {
		start = time.Now()
	}
	call, err := s.rpc.Send(rpc.Message{Op: workload.OpDelete, Key: key})
	if err != nil {
		return false, err
	}
	call.Wait()
	found, err := call.Found, call.Err
	call.Release()
	if err != nil {
		return false, err
	}
	if !obs.Disabled {
		s.met.lat[workload.OpDelete].Record(int(key), uint64(time.Since(start)))
	}
	return found, nil
}

// KV is one scan result entry.
type KV struct {
	Key   uint64
	Value []byte
}

// MaxScanCount is the largest per-scan entry count the compact 16-bit
// CR-MR request encoding can carry (Fig. 6). Larger requests are rejected
// at the facade rather than silently truncated.
const MaxScanCount = 0xFFFF

// Scan returns up to count entries with keys >= start in ascending order.
// It requires the Tree engine and count ≤ MaxScanCount.
func (s *Store) Scan(start uint64, count int) ([]KV, error) {
	if s.scanIdx == nil {
		return nil, fmt.Errorf("kvcore: scan requires the tree engine")
	}
	if count > MaxScanCount {
		return nil, fmt.Errorf("kvcore: scan count %d exceeds the maximum %d", count, MaxScanCount)
	}
	var t0 time.Time
	if !obs.Disabled {
		t0 = time.Now()
	}
	call, err := s.rpc.Send(rpc.Message{Op: workload.OpScan, Key: start, ScanCount: count})
	if err != nil {
		return nil, err
	}
	call.Wait()
	if err := call.Err; err != nil {
		call.Release()
		return nil, err
	}
	// ScanVals alias the call's pooled ScanBuf, so copy the values out —
	// into one shared backing array, not one allocation per entry — before
	// Release recycles the buffers.
	out := make([]KV, len(call.ScanKeys))
	total := 0
	for _, v := range call.ScanVals {
		total += len(v)
	}
	blob := make([]byte, 0, total)
	for i := range out {
		n := len(blob)
		blob = append(blob, call.ScanVals[i]...)
		out[i] = KV{Key: call.ScanKeys[i], Value: blob[n:len(blob):len(blob)]}
	}
	call.Release()
	if !obs.Disabled {
		s.met.lat[workload.OpScan].Record(int(start), uint64(time.Since(t0)))
	}
	return out, nil
}

// SendAsync exposes the raw asynchronous RPC path for benchmarks and load
// generators (many requests in flight per client goroutine). On error
// (rpc.ErrClosed, rpc.ErrBacklogged) no request was enqueued and the call
// is nil; a non-nil call always completes, possibly with call.Err set.
func (s *Store) SendAsync(m rpc.Message) (*rpc.Call, error) { return s.rpc.Send(m) }

// GetAsync submits a get and returns its completion future without
// waiting. dst is the caller-owned destination buffer (GetInto's buf):
// the value is appended into dst[:0] when its capacity suffices, and dst
// must not be touched until the call completes (poll with call.Done,
// block with call.Wait). After completion call.Value/call.Found carry the
// result; Release the call when done with them. A nil call (with
// rpc.ErrClosed or rpc.ErrBacklogged) means nothing was enqueued.
//
// The async facade trades the facade's per-op latency instrumentation for
// pipelining: callers that keep N calls in flight (the netserver's
// per-connection window, load generators) record their own latency.
func (s *Store) GetAsync(key uint64, dst []byte) (*rpc.Call, error) {
	return s.rpc.Send(rpc.Message{Op: workload.OpGet, Key: key, Dst: dst})
}

// PutAsync submits a put and returns its completion future without
// waiting. val must stay untouched until the call completes: the value is
// copied into the item only when a worker executes the request, not at
// submit time (the synchronous Put hides this by blocking).
func (s *Store) PutAsync(key uint64, val []byte) (*rpc.Call, error) {
	return s.rpc.Send(rpc.Message{Op: workload.OpPut, Key: key, Value: val, Expire: s.expireAt(0)})
}

// PutTTLAsync is PutAsync with a per-item TTL (ttl <= 0 selects the
// configured default).
func (s *Store) PutTTLAsync(key uint64, val []byte, ttl time.Duration) (*rpc.Call, error) {
	return s.rpc.Send(rpc.Message{Op: workload.OpPut, Key: key, Value: val, Expire: s.expireAt(ttl)})
}

// DeleteAsync submits a delete and returns its completion future without
// waiting; call.Found reports whether the key existed.
func (s *Store) DeleteAsync(key uint64) (*rpc.Call, error) {
	return s.rpc.Send(rpc.Message{Op: workload.OpDelete, Key: key})
}

// --- manager operations ----------------------------------------------------

// Split returns the current (CR, MR) worker allocation.
func (s *Store) Split() (nCR, nMR int) {
	n := int(s.nCR.Load())
	return n, s.cfg.Workers - n
}

// SetSplit reassigns workers so that nCR of them serve the cache-resident
// layer. It follows §3.5: the RPC schedule switches at a future slot index,
// shrunk CR workers drain their owned slots then move to the MR layer, and
// grown CR workers drain their CR-MR columns before switching. Request
// processing is never blocked.
func (s *Store) SetSplit(nCR int) error {
	if nCR < 1 || nCR >= s.cfg.Workers {
		return fmt.Errorf("kvcore: nCR must be in [1, Workers-1], got %d", nCR)
	}
	if s.rpc.Closed() {
		return rpc.ErrClosed
	}
	old := int(s.nCR.Swap(int32(nCR)))
	if old == nCR {
		return nil
	}
	s.rpc.Reconfigure(nCR)
	s.trace.Record(obs.Decision{Event: "split",
		OldSplit: old, NewSplit: nCR, OldCache: -1, NewCache: -1})
	return nil
}

// SetHotItems adjusts the hot-set cache target (0 disables it at the next
// refresh).
func (s *Store) SetHotItems(k int) {
	if k < 0 {
		k = 0
	}
	old := int(s.hotTarget.Swap(int32(k)))
	if old != k {
		s.trace.Record(obs.Decision{Event: "cache",
			OldSplit: -1, NewSplit: -1, OldCache: old, NewCache: k})
	}
}

// HotItems returns the hot-set target size.
func (s *Store) HotItems() int { return int(s.hotTarget.Load()) }

// RefreshHotSet samples the trackers and installs a fresh hot-set view,
// returning the number of cached entries. It is called periodically by the
// background refresher or manually by tests and tuners. Refreshes are
// serialized and run inside the refresher's own epoch reader slot: item
// reclamation relies on a retired item's grace period covering any refresh
// that read the index before the item was unlinked, and on install
// generations reaching items (MarkViewed) strictly before their view is
// published.
func (s *Store) RefreshHotSet() int {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	s.epochEnter(s.cfg.Workers)
	defer s.epochExit(s.cfg.Workers)
	k := int(s.hotTarget.Load())
	if k <= 0 {
		s.cache.Install(hotset.NewSortedView(nil))
		return 0
	}
	hot := s.tracker.Snapshot(s.cms, k)
	entries := make([]hotset.Entry, 0, len(hot))
	for _, h := range hot {
		if s.recent.Contains(h.Key) {
			// Eviction-aware admission: the evictor just chose this key as a
			// victim; re-admitting it would pin its replacement chain and
			// undo the eviction. The veto ages out over the next two
			// refreshes (Sweep below) — if the key is genuinely hot it will
			// still rank in the sketch then.
			s.met.hotVeto.Inc(0)
			continue
		}
		if it, ok := s.idx.Get(h.Key); ok && !it.Dead() {
			entries = append(entries, hotset.Entry{Key: h.Key, Item: it.Latest()})
		}
	}
	s.recent.Sweep()
	if s.dom != nil {
		gen := s.cache.Installs() + 1 // the generation Install below gets
		for _, e := range entries {
			e.Item.MarkViewed(gen)
		}
	}
	var v hotset.View
	if s.cfg.Engine == Tree {
		v = hotset.NewSortedView(entries)
	} else {
		v = hotset.NewHashView(entries)
	}
	s.cache.Install(v)
	return len(entries)
}

// StartRefresher launches the background hot-set refresher with the given
// period. It stops when the store is closed.
func (s *Store) StartRefresher(period time.Duration) {
	s.refreshCh = make(chan struct{})
	s.refreshWG.Add(1)
	go func() {
		defer s.refreshWG.Done()
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-s.refreshCh:
				return
			case <-t.C:
				s.RefreshHotSet()
			}
		}
	}()
}

// Stats is a snapshot of store counters.
type Stats struct {
	Ops       uint64 // completed operations
	CRHits    uint64 // served entirely at the cache-resident layer
	Forwarded uint64 // forwarded over the CR-MR queue
	Items     int    // indexed items
	HotSize   int    // current hot-set view size
}

// Stats returns a snapshot of the store's counters. (Merged from the
// sharded obs instruments; under the obs_off measurement build these all
// read zero.)
func (s *Store) Stats() Stats {
	return Stats{
		Ops:       s.met.opsTotal(),
		CRHits:    s.met.crHit.Value(),
		Forwarded: s.met.forwarded.Value(),
		Items:     s.idx.Len(),
		HotSize:   s.cache.Len(),
	}
}

// Ops returns the completed-operation counter (monotonic), the feedback
// signal the auto-tuner's monitor differentiates.
func (s *Store) Ops() uint64 { return s.met.opsTotal() }

// Preload inserts directly into the index, bypassing the RPC path; used
// for bulk pre-population before serving. Preloads are serialized among
// themselves and take the key-stripe lock against concurrent worker
// writes; an overwritten item is retired like any other (its queue is
// drained at Close).
func (s *Store) Preload(key uint64, val []byte) {
	if s.dom == nil {
		s.preloadPlain(key, val)
		return
	}
	s.preMu.Lock()
	defer s.preMu.Unlock()
	mu := &s.keyLocks[key&s.lockMask]
	mu.Lock()
	defer mu.Unlock()
	n := seqitem.NewIn(s.prePool, val)
	if it, ok := s.idx.Get(key); ok {
		s.idx.Put(key, n)
		it.MoveTo(n)
		n.MarkViewed(it.ViewGen()) // propagate view reachability (§11)
		s.preRet = append(s.preRet, retiredItem{it: it})
		s.retiredPend.Add(1)
		s.retiredBytes.Add(int64(it.SlotBytes()))
		s.met.retired.Inc(0)
		return
	}
	s.idx.Put(key, n)
}

func (s *Store) preloadPlain(key uint64, val []byte) {
	mu := &s.keyLocks[key&s.lockMask]
	mu.Lock()
	defer mu.Unlock()
	if it, ok := s.idx.Get(key); ok {
		n := seqitem.New(val)
		s.idx.Put(key, n)
		it.MoveTo(n)
		return
	}
	s.idx.Put(key, seqitem.New(val))
}
