package kvcore

import (
	"runtime"
	"time"

	"mutps/internal/ring"
	"mutps/internal/rpc"
	"mutps/internal/seqitem"
	"mutps/internal/workload"
)

// idleSpins is how many consecutive empty polls a worker tolerates before
// parking for Config.IdleSleep.
const idleSpins = 256

// idleGate tracks consecutive empty polls and parks the goroutine once the
// spin budget is exhausted.
type idleGate struct {
	spins int
	sleep time.Duration
}

func (g *idleGate) busy() { g.spins = 0 }

func (g *idleGate) idle() {
	g.spins++
	if g.sleep > 0 && g.spins >= idleSpins {
		g.spins = 0
		time.Sleep(g.sleep)
		return
	}
	runtime.Gosched()
}

// slab holds in-flight request contexts for one CR worker — the in-process
// analog of the network receive-buffer slots the paper's 16-byte CR-MR
// requests point into with their Buf field. Slots are allocated by the CR
// worker when forwarding and recycled when the owning batch's ring reports
// completion (the piggybacked tail advance).
type slab struct {
	msgs []rpc.Message
	free []uint32
}

func newSlab(size int) *slab {
	s := &slab{msgs: make([]rpc.Message, size), free: make([]uint32, size)}
	for i := range s.free {
		s.free[i] = uint32(size - 1 - i)
	}
	return s
}

func (s *slab) get() (uint32, bool) {
	if len(s.free) == 0 {
		return 0, false
	}
	slot := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	return slot, true
}

func (s *slab) put(slot uint32) {
	s.msgs[slot] = rpc.Message{}
	s.free = append(s.free, slot)
}

// worker is the body of every store goroutine. A worker has a fixed
// identity usable in either layer: RPC slot owner i at the CR layer, CR-MR
// column i at the MR layer.
//
// Role transitions follow §3.5, and crucially the *RPC schedule* — not the
// nCR snapshot — decides when the CR role ends: the worker always enters
// the CR loop, which retires immediately if the schedule assigns it no
// slots, and otherwise keeps consuming until every slot the schedule ever
// assigned it (including those below a pending switch index) is drained.
// Dispatching on nCR alone would race with SetSplit: a worker could jump
// to the MR role while the old schedule still routes requests to it,
// stranding them forever.
func (s *Store) worker(id int) {
	defer s.wg.Done()
	for !s.stop.Load() {
		s.runCR(id)
		if s.drainExit(id) || s.stop.Load() {
			return
		}
		s.met.roleSwap.Inc(id) // CR stint over, moving to the MR layer
		s.runMR(id)
		if s.drainExit(id) {
			return
		}
		if !s.stop.Load() {
			s.met.roleSwap.Inc(id) // reassigned back to the CR layer
		}
	}
}

// drainExit reports whether worker id may exit under the shutdown drain:
// every worker has retired from the terminal RPC schedule with its final
// batch pushed (crDone), and this worker's own CR-MR column — which only it
// may consume — is empty. Together these mean no call this worker could
// ever complete is still pending.
func (s *Store) drainExit(id int) bool {
	return s.rpc.Closed() &&
		s.crDone.Load() >= int32(s.cfg.Workers) &&
		s.crmr.ColumnEmpty(id)
}

// crState tracks per-destination in-flight batches so slab slots can be
// recycled in FIFO order as the MR side commits them. The FIFO is a
// slice + head index rather than a re-sliced slice so that, once drained,
// the backing array is reused instead of reallocated — steady-state
// forwarding never grows it.
type crState struct {
	batches [][]uint32 // FIFO of slot lists per MR column; live from head on
	head    int
	done    uint64 // batches known completed per column
}

func (c *crState) push(b []uint32) { c.batches = append(c.batches, b) }

func (c *crState) pop() []uint32 {
	b := c.batches[c.head]
	c.batches[c.head] = nil
	c.head++
	if c.head == len(c.batches) {
		c.batches = c.batches[:0]
		c.head = 0
	}
	return b
}

func (c *crState) pending() int { return len(c.batches) - c.head }

// crPersist is a worker's CR-side bookkeeping. It lives in the Store (not
// on the runCR stack) because batches can still be in flight when the
// worker switches to the MR role — possibly consumed by the worker itself
// once it gets there — and their slab slots must be recycled on the next
// CR stint rather than leaked or (worse) recycled prematurely.
type crPersist struct {
	prod     *ring.Producer
	cols     []crState
	curBatch []uint32
	inflight int        // batches pushed but not yet recycled, across all columns
	spare    [][]uint32 // retired batch slot-lists, reused for curBatch

	// terminalDone is set (once, by the owning worker) when the worker has
	// consumed every RPC slot the terminal shutdown schedule assigns it and
	// pushed its final batch; the store-wide crDone counter mirrors it. It
	// is never reset: the terminal phase is final.
	terminalDone bool
}

// newBatch returns an empty slot list, recycling a retired one when
// possible so steady-state forwarding allocates nothing.
func (p *crPersist) newBatch() []uint32 {
	if n := len(p.spare); n > 0 {
		b := p.spare[n-1]
		p.spare[n-1] = nil
		p.spare = p.spare[:n-1]
		return b
	}
	return nil
}

func (p *crPersist) retireBatch(b []uint32) {
	p.spare = append(p.spare, b[:0])
}

// runCR is the cache-resident layer FSM (§3.2.3). It returns when the
// worker is retired from the RPC schedule (role moves to MR) or the store
// stops.
func (s *Store) runCR(id int) {
	st := s.crp[id]
	sl := s.slabs[id]
	served := 0
	gate := idleGate{sleep: s.cfg.IdleSleep}

	recycle := func() bool {
		if st.inflight == 0 {
			// Pure hit-path traffic: skip the O(nMR) column sweep entirely.
			return false
		}
		progress := false
		for m := range st.cols {
			r := s.crmr.Ring(id, m)
			d := r.Done()
			for st.cols[m].done < d && st.cols[m].pending() > 0 {
				b := st.cols[m].pop()
				for _, slot := range b {
					sl.put(slot)
				}
				st.retireBatch(b)
				st.inflight--
				st.cols[m].done++
				progress = true
			}
		}
		return progress
	}

	flush := func() {
		nCR := int(s.nCR.Load())
		nMR := s.cfg.Workers - nCR
		n := st.prod.PendingLocal()
		if mr, fl := st.prod.Flush(nCR, nMR); fl {
			s.met.batchSize.Record(id, uint64(n))
			st.cols[mr].push(st.curBatch)
			st.inflight++
			st.curBatch = st.newBatch()
		}
	}

	for !s.stop.Load() {
		recycle()
		m, ok, retired := s.rpc.Poll(id)
		if retired {
			// Push any partial batch before switching roles (it may land
			// on our own MR column — we will consume it ourselves there).
			// In-flight batches keep their slab slots until our next CR
			// stint recycles them; the MR side completes the calls.
			flush()
			recycle()
			if s.rpc.Closed() && !st.terminalDone {
				// Retired under the terminal shutdown schedule: every RPC
				// slot this worker will ever own has been consumed and its
				// final batch pushed. Count it towards the drain barrier.
				st.terminalDone = true
				s.crDone.Add(1)
			}
			return
		}
		if !ok {
			// Idle: don't strand a partial batch behind the batching
			// threshold; push it now so MR can make progress.
			flush()
			// Consumer identity is per *worker*, not per role: a producer
			// with a momentarily stale view of the split can push a batch
			// to this worker's MR column just after it switched to the CR
			// role. Nobody else may consume an SPSC ring, so drain our own
			// column here; this only fires on reassignment stragglers.
			s.drainOwnColumn(id)
			s.reclaimTick(id)
			gate.idle()
			continue
		}
		gate.busy()
		served++
		if served%256 == 0 {
			// Under saturation the idle branch may never run; still check
			// for reassignment stragglers on our own column periodically
			// (draining may execute puts, so retirements accrue at the CR
			// role too — let their reclaim keep pace).
			s.drainOwnColumn(id)
			s.reclaimTick(id)
		}
		s.tracker.Record(id, m.Key)
		if m.Op == workload.OpPut {
			// Every request passes through exactly one CR poll, so this is
			// the one place value sizes can be observed once regardless of
			// whether the put serves hot or forwards.
			s.met.valSize.Record(id, uint64(len(m.Value)))
		}
		if s.tryServeHot(id, &m) {
			s.met.crHit.Inc(id)
			s.met.ops[opIndex(m.Op)].Inc(id)
			continue
		}
		if m.Op == workload.OpGet || m.Op == workload.OpPut {
			s.met.crMiss.Inc(id) // consulted the hot set, wasn't there
		} else {
			s.met.crBypass.Inc(id) // deletes/scans never serve hot
		}
		// Miss path: forward over the CR-MR queue.
		slot, okSlot := sl.get()
		for !okSlot {
			// All contexts in flight; recycle completions until one frees.
			if !recycle() {
				// No commits to harvest: some in-flight batches may sit in
				// our own MR column, which only we may consume — drain it or
				// this loop can never make progress.
				s.drainOwnColumn(id)
				runtime.Gosched()
			}
			if s.stop.Load() {
				// Hard stop while holding a polled message: complete it and
				// the partial batch with ErrClosed rather than stranding
				// their callers (the graceful drain never reaches here — stop
				// is set only after workers exit — but tests and embedders
				// may flip stop directly).
				m.Call().Fail(rpc.ErrClosed)
				s.failPartial(st, sl)
				return
			}
			slot, okSlot = sl.get()
		}
		sl.msgs[slot] = m
		req := encodeRequest(&m, slot)
		st.curBatch = append(st.curBatch, slot)
		nCR := int(s.nCR.Load())
		if mr, fl := st.prod.Add(req, nCR, s.cfg.Workers-nCR); fl {
			s.met.batchSize.Record(id, uint64(s.cfg.BatchSize))
			st.cols[mr].push(st.curBatch)
			st.inflight++
			st.curBatch = st.newBatch()
		}
		s.met.forwarded.Inc(id)
	}
	// Hard-stop exit (stop observed at the loop head): the MR side may be
	// gone too, so fail the partial batch locally instead of pushing it.
	s.failPartial(st, sl)
}

// failPartial completes every request in the worker's not-yet-pushed
// partial batch with ErrClosed and recycles its slab slots and the
// producer's local queue. Only the hard-stop path needs it: the graceful
// drain flushes partial batches to the (still live) MR side instead.
func (s *Store) failPartial(st *crPersist, sl *slab) {
	for _, slot := range st.curBatch {
		if c := sl.msgs[slot].Call(); c != nil {
			c.Fail(rpc.ErrClosed)
		}
		sl.put(slot)
	}
	st.curBatch = st.curBatch[:0]
	st.prod.DropLocal()
}

// encodeRequest builds the compact 16-byte CR-MR representation (Fig. 6).
// Scan counts are validated against MaxScanCount at the facade (Store.Scan)
// before they reach this encoding; the clamp below is a backstop for raw
// SendAsync callers (put sizes are informational — processMR reads the
// value through the slab message, not through Size).
func encodeRequest(m *rpc.Message, slot uint32) ring.Request {
	size := len(m.Value)
	if m.Op == workload.OpScan {
		size = m.ScanCount
	}
	if size > MaxScanCount {
		size = MaxScanCount
	}
	return ring.Request{
		Key:  m.Key,
		Type: uint8(m.Op),
		Size: uint16(size),
		Buf:  slot,
	}
}

// tryServeHot serves the request entirely at the CR layer when the key is
// in the hot-set view: the hit path of the FSM. Deletes and scans always
// take the miss path (they mutate or traverse the full index). The view
// lookup and the item read happen inside worker w's epoch section —
// that's what lets reclamation wait out readers of superseded views.
func (s *Store) tryServeHot(w int, m *rpc.Message) bool {
	s.epochEnter(w)
	defer s.epochExit(w)
	switch m.Op {
	case workload.OpGet:
		it, ok := s.cache.Lookup(m.Key)
		if !ok || it.Dead() {
			return false
		}
		e := it.Expire()
		if e != 0 && uint64(time.Now().UnixNano()) >= e {
			// Expired: forward so the MR layer unlinks it (lazy expiry).
			// TTL-free items never pay the clock read here.
			return false
		}
		call := m.Call()
		call.Value = it.Read(call.Dst[:0])
		call.Found = true
		call.Expiry = e
		call.Complete()
		return true
	case workload.OpPut:
		it, ok := s.cache.Lookup(m.Key)
		if !ok || it.Dead() {
			return false
		}
		if e := it.Expire(); e != 0 && uint64(time.Now().UnixNano()) >= e {
			// Writing an expired item in place would resurrect it raceably;
			// the MR replacement path serializes with lazy expiry instead.
			return false
		}
		if !it.Write(m.Value) {
			// Size change: must be an item replacement at the MR layer.
			return false
		}
		it.SetExpire(m.Expire)
		m.Call().Complete()
		return true
	default:
		return false
	}
}

// drainOwnColumn processes any batches sitting in worker id's MR column —
// the §3.5 residual-request guarantee, enforced from the CR role.
func (s *Store) drainOwnColumn(id int) {
	for {
		cr, reqs, rg := s.mrcons[id].Poll(s.cfg.Workers)
		if cr == -1 {
			return
		}
		for i := range reqs {
			s.processMR(id, cr, &reqs[i])
		}
		rg.Commit()
	}
}

// mrScratch is a worker's persistent MR-side scratch state: the
// batched-indexing buffers live in the Store (like crPersist) so role
// switches reuse them instead of regrowing them on every runMR entry.
type mrScratch struct {
	keys  []uint64
	pos   []int
	items []*seqitem.Item
	found []bool

	// Scan state. The tree-scan callback closes over the scratch pointer
	// and is built once per worker: a per-call closure (and the boxing of
	// every variable it captures) would cost four allocations per scan.
	scanKeys []uint64
	scanBuf  []byte
	scanOffs []int
	scanFn   func(k uint64, it *seqitem.Item) bool
}

// scanVisit accumulates one live entry into the scratch buffers; see
// scanMR for the layout.
func (scr *mrScratch) scanVisit(k uint64, it *seqitem.Item) bool {
	if it.Dead() {
		return true
	}
	buf := scr.scanBuf
	n := len(buf)
	sz := it.Size()
	if cap(buf) < n+sz {
		nb := make([]byte, n, 2*(n+sz))
		copy(nb, buf)
		buf = nb
	}
	v := it.Read(buf[n : n : n+sz])
	if len(v) <= sz {
		buf = buf[:n+len(v)] // v aliases buf (Read had the capacity)
	} else {
		// A replacement between Size and Read grew the value, so Read
		// returned a fresh slice; fold it back into the buffer.
		buf = append(buf[:n], v...)
	}
	scr.scanBuf = buf
	scr.scanKeys = append(scr.scanKeys, k)
	scr.scanOffs = append(scr.scanOffs, len(buf))
	return true
}

// runMR is the memory-resident layer loop: it drains batches from the
// CR-MR queue and processes them against the full index. It returns when
// the split moves this worker to the CR layer (after draining its column)
// or the store stops.
func (s *Store) runMR(id int) {
	cons := s.mrcons[id]
	batched, _ := s.idx.(BatchIndex)
	scr := s.mrscr[id]
	gate := idleGate{sleep: s.cfg.IdleSleep}
	for !s.stop.Load() {
		// Scan all rows: residual batches may exist from workers that have
		// since changed role.
		cr, reqs, rg := cons.Poll(s.cfg.Workers)
		if cr == -1 {
			s.reclaimTick(id)
			if s.rpc.Closed() {
				st := s.crp[id]
				if !st.terminalDone {
					// Shutdown drain: bounce through runCR once to consume
					// the RPC slots the terminal schedule still assigns us
					// and mark our retirement.
					return
				}
				if s.drainExit(id) {
					return
				}
				// Retired but other workers are still pushing their final
				// batches; keep consuming until the drain barrier clears.
				gate.idle()
				continue
			}
			if id < int(s.nCR.Load()) && s.crmr.ColumnEmpty(id) {
				// Reassigned to the CR layer and fully drained: switch.
				return
			}
			gate.idle()
			continue
		}
		gate.busy()
		if batched != nil && len(reqs) > 1 {
			// Batched indexing (§3.3): serve the batch's gets with one
			// shared index traversal; other ops take the per-request path.
			scr.keys, scr.pos = scr.keys[:0], scr.pos[:0]
			for i := range reqs {
				if workload.OpType(reqs[i].Type) == workload.OpGet {
					scr.keys = append(scr.keys, reqs[i].Key)
					scr.pos = append(scr.pos, i)
				}
			}
			if len(scr.keys) > 1 {
				// One epoch section covers the shared traversal and every
				// item read; it closes before the non-get requests run
				// (processMR opens its own — sections must not nest).
				s.epochEnter(id)
				scr.items, scr.found = batched.GetBatch(scr.keys, scr.items, scr.found)
				for j, i := range scr.pos {
					call := s.slabs[cr].msgs[reqs[i].Buf].Call()
					s.serveGet(id, scr.keys[j], scr.items[j], scr.found[j], call)
					call.Complete()
				}
				s.epochExit(id)
				s.met.ops[workload.OpGet].Add(id, uint64(len(scr.pos)))
				for i := range reqs {
					if workload.OpType(reqs[i].Type) != workload.OpGet {
						s.processMR(id, cr, &reqs[i])
					}
				}
				rg.Commit()
				continue
			}
		}
		for i := range reqs {
			s.processMR(id, cr, &reqs[i])
		}
		rg.Commit() // piggybacked completion: slab slots recyclable
	}
}

// processMR executes one forwarded request against the full index and
// completes its call; w is the executing worker (the completion-counter
// shard, the item pool, the epoch reader slot). The slab entry is
// read-only here; the owning CR worker recycles it after the ring commit.
func (s *Store) processMR(w, cr int, req *ring.Request) {
	m := &s.slabs[cr].msgs[req.Buf]
	call := m.Call()
	s.epochEnter(w)
	switch workload.OpType(req.Type) {
	case workload.OpGet:
		it, ok := s.idx.Get(req.Key)
		s.serveGet(w, req.Key, it, ok, call)
	case workload.OpPut:
		s.putMR(w, req.Key, m.Value, m.Expire)
	case workload.OpDelete:
		call.Found = s.deleteMR(w, req.Key)
	case workload.OpScan:
		s.scanMR(w, req, call)
	}
	s.epochExit(w)
	op := opIndex(workload.OpType(req.Type))
	call.Complete()
	s.met.ops[op].Inc(w)
	s.maybeReclaim(w)
}

// putMR first tries the in-place same-size write (no locks beyond the
// item's own bits), then falls back to item replacement under a key-stripe
// lock so concurrent replacements serialize; w is the executing worker,
// whose pool the new item comes from and whose queue the old one retires
// to. exp is the absolute expiry deadline to stamp (0 = never): the
// in-place path writes the value first, then moves the deadline — a reader
// in the gap sees the new value under the old deadline, which lazy expiry
// re-verifies under the key lock before acting on. Expired items are never
// written in place (that would resurrect them raceably); they take the
// replacement path, which serializes with lazy expiry on the lock.
func (s *Store) putMR(w int, key uint64, val []byte, exp uint64) {
	if it, ok := s.idx.Get(key); ok && !it.Dead() &&
		!it.Expired(time.Now().UnixNano()) && it.Write(val) {
		it.SetExpire(exp)
		return
	}
	mu := &s.keyLocks[key&s.lockMask]
	mu.Lock()
	defer mu.Unlock()
	if it, ok := s.idx.Get(key); ok {
		if !it.Dead() && !it.Expired(time.Now().UnixNano()) && it.Write(val) {
			it.SetExpire(exp)
			return
		}
		n := s.newItem(w, val)
		if exp != 0 {
			n.SetExpire(exp)
		}
		s.idx.Put(key, n)
		it.MoveTo(n) // stale holders (hot views) converge on the new record
		if s.dom != nil {
			// Propagate view reachability: a view that holds it can reach n
			// through the chain. Reading ViewGen after MoveTo ensures either
			// this read sees a concurrent marker's generation, or that
			// marker's chain walk sees n and marks it directly (§11).
			n.MarkViewed(it.ViewGen())
			s.retire(w, it)
		}
		return
	}
	// New-key insert. Retire any cold shadow first: this put supersedes
	// whatever generation the SSD holds, and RAM writes never flow back to
	// it, so leaving it would hand out a stale value after a crash. Ordered
	// before idx.Put so a crash in the gap yields a miss, never staleness.
	if s.cold != nil {
		s.cold.Delete(key)
	}
	n := s.newItem(w, val)
	if exp != 0 {
		n.SetExpire(exp)
	}
	s.idx.Put(key, n)
}

func (s *Store) deleteMR(w int, key uint64) bool {
	mu := &s.keyLocks[key&s.lockMask]
	mu.Lock()
	defer mu.Unlock()
	it, ok := s.idx.Get(key)
	if !ok {
		// The key may still live (only) in the cold tier; deleting there
		// reports whether it did.
		if s.cold != nil {
			return s.cold.Delete(key)
		}
		return false
	}
	expired := it.Expired(time.Now().UnixNano())
	s.idx.Delete(key)
	it.Kill()
	if s.dom != nil {
		s.retire(w, it)
	}
	if s.cold != nil {
		s.cold.Delete(key) // clear any stale shadow
	}
	return !expired // deleting an already-expired key reports not-found
}

// scanMR fills the call's scan result slices. Every value is read into
// call.ScanBuf (one shared byte buffer whose capacity, like ScanKeys' and
// ScanVals', survives call recycling), so a warmed-up scan performs no
// per-entry allocation at all — the result values are slices into ScanBuf
// and are only valid until Release; the synchronous Scan facade copies
// them out before releasing. Values are sliced out of the buffer after
// the traversal (via the offs scratch) because growth during the scan
// can move the backing array.
func (s *Store) scanMR(w int, req *ring.Request, call *rpc.Call) {
	if s.scanIdx == nil {
		return
	}
	scr := s.mrscr[w]
	if scr.scanFn == nil {
		scr.scanFn = scr.scanVisit
	}
	scr.scanKeys = call.ScanKeys[:0]
	scr.scanBuf = call.ScanBuf[:0]
	scr.scanOffs = scr.scanOffs[:0]
	s.scanIdx.Scan(req.Key, int(req.Size), scr.scanFn)
	buf := scr.scanBuf
	vals := call.ScanVals[:0]
	start := 0
	for _, end := range scr.scanOffs {
		vals = append(vals, buf[start:end:end])
		start = end
	}
	call.ScanKeys = scr.scanKeys
	call.ScanVals = vals
	call.ScanBuf = buf
	scr.scanKeys = nil // the slices belong to the call until its Release
	scr.scanBuf = nil
}
