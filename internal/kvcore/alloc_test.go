package kvcore

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"mutps/internal/rpc"
	"mutps/internal/workload"
)

// openAllocStore builds a small hash store with the background refresher
// off so nothing but the request path itself runs during measurement.
func openAllocStore(t *testing.T, hotItems int) *Store {
	t.Helper()
	s, err := Open(Config{
		Engine:    Hash,
		Workers:   3,
		CRWorkers: 1,
		HotItems:  hotItems,
		IdleSleep: -1, // spin+Gosched only: Sleep timers stay out of the picture
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func preloadKeys(s *Store, n uint64) {
	for i := uint64(0); i < n; i++ {
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], i)
		s.Preload(i, v[:])
	}
}

// TestCRHitPathAllocFree locks in the tentpole: a get served entirely at
// the cache-resident layer performs zero heap allocations — pooled call,
// caller-owned value buffer, no per-request channel.
func TestCRHitPathAllocFree(t *testing.T) {
	s := openAllocStore(t, 64)
	preloadKeys(s, 16)

	// Warm the tracker so key 3 lands in the hot set, then install it.
	for i := 0; i < 512; i++ {
		s.Get(3)
	}
	if n := s.RefreshHotSet(); n == 0 {
		t.Fatal("hot set empty after warm-up")
	}
	before := s.Stats()
	if v, ok, _ := s.Get(3); !ok || binary.LittleEndian.Uint64(v) != 3 {
		t.Fatalf("get(3) = %v, %v", v, ok)
	}
	if after := s.Stats(); after.CRHits == before.CRHits {
		t.Fatal("get(3) did not take the CR hit path; cannot gate it")
	}

	buf := make([]byte, 0, 8)
	avg := testing.AllocsPerRun(200, func() {
		v, ok, _ := s.GetInto(3, buf)
		if !ok || len(v) != 8 {
			t.Fatalf("GetInto(3) = %v, %v", v, ok)
		}
		buf = v[:0]
	})
	if avg != 0 {
		t.Fatalf("CR hit path allocates %.2f times per op, want 0", avg)
	}
}

// TestMRGetPathAllocs gates the forwarded path: with the hot-set cache
// disabled every get crosses the CR-MR ring, is served against the full
// index, and still costs at most one allocation per op (steady state it
// is zero: pooled calls, recycled batch slot-lists, reused ring slots).
func TestMRGetPathAllocs(t *testing.T) {
	s := openAllocStore(t, 0)
	preloadKeys(s, 16)

	before := s.Stats()
	if v, ok, _ := s.Get(5); !ok || binary.LittleEndian.Uint64(v) != 5 {
		t.Fatalf("get(5) = %v, %v", v, ok)
	}
	after := s.Stats()
	if after.Forwarded == before.Forwarded {
		t.Fatal("get(5) was not forwarded to the MR layer; cannot gate it")
	}

	buf := make([]byte, 0, 8)
	avg := testing.AllocsPerRun(200, func() {
		v, ok, _ := s.GetInto(5, buf)
		if !ok || len(v) != 8 {
			t.Fatalf("GetInto(5) = %v, %v", v, ok)
		}
		buf = v[:0]
	})
	if avg > 1 {
		t.Fatalf("MR get path allocates %.2f times per op, want <= 1", avg)
	}
}

// TestPutInPlaceAllocFree checks the same discipline for same-size puts:
// the value is copied into the item before Put returns and nothing else
// is allocated on the way.
func TestPutInPlaceAllocFree(t *testing.T) {
	s := openAllocStore(t, 0)
	preloadKeys(s, 16)

	val := make([]byte, 8)
	avg := testing.AllocsPerRun(200, func() {
		binary.LittleEndian.PutUint64(val, 42)
		s.Put(7, val)
	})
	if avg > 1 {
		t.Fatalf("in-place put allocates %.2f times per op, want <= 1", avg)
	}
	if v, ok, _ := s.Get(7); !ok || binary.LittleEndian.Uint64(v) != 42 {
		t.Fatalf("get(7) after puts = %v, %v", v, ok)
	}
}

// TestCallPoolingAcrossSetSplit hammers the pooled-call request path from
// many clients while the worker split is reconfigured continuously. Under
// -race this is the gate that a recycled Call is never completed twice and
// never observed by a stale waiter: any double-complete corrupts the
// pool's state machine and any stale read trips the race detector.
func TestCallPoolingAcrossSetSplit(t *testing.T) {
	s, err := Open(Config{
		Engine:    Hash,
		Workers:   4,
		CRWorkers: 1,
		HotItems:  64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	preloadKeys(s, 256)
	for i := 0; i < 512; i++ {
		s.Get(uint64(i % 8))
	}
	s.RefreshHotSet() // mixed traffic: some hits, some forwards

	const clients = 6
	const opsPerClient = 3000
	var wg sync.WaitGroup
	errCh := make(chan error, clients+1)
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			buf := make([]byte, 0, 8)
			var val [8]byte
			for i := 0; i < opsPerClient; i++ {
				k := uint64((c*opsPerClient + i) % 256)
				switch i % 4 {
				case 0, 1, 2:
					v, ok, _ := s.GetInto(k, buf)
					if !ok || binary.LittleEndian.Uint64(v) != k {
						errCh <- fmt.Errorf("client %d: get(%d) = %x, %v", c, k, v, ok)
						return
					}
					buf = v[:0]
				default:
					binary.LittleEndian.PutUint64(val[:], k)
					s.Put(k, val[:])
				}
			}
		}(c)
	}

	clientsDone := make(chan struct{})
	go func() { wg.Wait(); close(clientsDone) }()
	splitterDone := make(chan struct{})
	go func() {
		defer close(splitterDone)
		splits := []int{1, 2, 3, 2}
		for i := 0; ; i++ {
			select {
			case <-clientsDone:
				return
			default:
			}
			if err := s.SetSplit(splits[i%len(splits)]); err != nil {
				errCh <- err
				return
			}
			// Give workers time to cross the switch index so schedules stay
			// short and every transition is actually exercised.
			time.Sleep(200 * time.Microsecond)
		}
	}()
	<-clientsDone
	<-splitterDone
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// The raw async path must keep working through the churn too.
	calls := make([]*rpc.Call, 0, 64)
	for i := uint64(0); i < 64; i++ {
		c, err := s.SendAsync(rpc.Message{Op: workload.OpGet, Key: i})
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, c)
	}
	for i, c := range calls {
		c.Wait()
		if !c.Found || binary.LittleEndian.Uint64(c.Value) != uint64(i) {
			t.Fatalf("async get(%d) = %v, %v", i, c.Value, c.Found)
		}
		c.Release()
	}
}
