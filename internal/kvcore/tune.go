package kvcore

import (
	"time"

	"mutps/internal/obs"
	"mutps/internal/tuner"
)

// Tunable adapts the real store to the auto-tuner: each Measure applies a
// configuration live (thread reassignment + hot-set resize, never blocking
// request processing) and observes the op counter over a wall-clock window
// — the paper's 10 ms feedback monitor.
//
// MRWays is accepted and recorded but has no effect on the real store: Go
// cannot program Intel CAT. (The simulated system honours it; see
// internal/simkv.Tunable.)
type Tunable struct {
	S *Store
	// Window is the monitoring interval (default 10ms, the paper's value).
	Window time.Duration
	// MaxCache bounds the hot-set sizes explored (default 8192).
	MaxCache int
	// CacheStep is the linear-probe step (default MaxCache/8).
	CacheStep int

	lastWays int
	sampler  *obs.WindowSampler
}

// Bounds implements tuner.Reconfigurable.
func (t *Tunable) Bounds() (threads, ways, maxCacheItems, cacheStep int) {
	maxC := t.MaxCache
	if maxC == 0 {
		maxC = 8192
	}
	step := t.CacheStep
	if step == 0 {
		step = maxC / 8
	}
	// No CAT control from Go: expose a single "ways" point so the tuner's
	// way search degenerates to a no-op probe.
	return t.S.cfg.Workers, 0, maxC, step
}

// Measure implements tuner.Reconfigurable.
func (t *Tunable) Measure(c tuner.Config) float64 {
	nCR := t.S.cfg.Workers - c.MRThreads
	if nCR < 1 {
		nCR = 1
	}
	if nCR > t.S.cfg.Workers-1 {
		nCR = t.S.cfg.Workers - 1
	}
	if err := t.S.SetSplit(nCR); err != nil {
		return 0
	}
	t.S.SetHotItems(c.CacheItems)
	t.S.RefreshHotSet()
	t.lastWays = c.MRWays

	w := t.Window
	if w == 0 {
		w = 10 * time.Millisecond
	}
	if t.sampler == nil {
		t.sampler = obs.NewWindowSampler(t.S.Ops)
	}
	t.sampler.Reset()
	time.Sleep(w)
	return t.sampler.Rate()
}

var _ tuner.Reconfigurable = (*Tunable)(nil)
