package kvcore

import (
	"sync/atomic"
	"time"

	"mutps/internal/obs"
	"mutps/internal/tuner"
)

// Tunable adapts the real store to the auto-tuner: each Measure applies a
// configuration live (thread reassignment + hot-set resize, never blocking
// request processing) and observes the op counter over a wall-clock window
// — the paper's 10 ms feedback monitor.
//
// MRWays is accepted and recorded but has no effect on the real store: Go
// cannot program Intel CAT. (The simulated system honours it; see
// internal/simkv.Tunable.)
type Tunable struct {
	S *Store
	// Window is the monitoring interval (default 10ms, the paper's value).
	Window time.Duration
	// MaxCache bounds the hot-set sizes explored (default 8192).
	MaxCache int
	// CacheStep is the linear-probe step (default MaxCache/8).
	CacheStep int

	// lastWays is atomic: the controller goroutine records it in Apply
	// while observers (bench Extra hooks, stats scrapes) read it through
	// Current concurrently.
	lastWays atomic.Int32
	sampler  *obs.WindowSampler

	// Windowed workload-signature state: deltas since the previous
	// Signature call classify *recent* traffic, not the lifetime mix.
	lastOps    [4]uint64
	lastValSum uint64
	lastValCnt uint64
}

// Bounds implements tuner.Reconfigurable.
func (t *Tunable) Bounds() (threads, ways, maxCacheItems, cacheStep int) {
	maxC := t.MaxCache
	if maxC == 0 {
		maxC = 8192
	}
	step := t.CacheStep
	if step == 0 {
		step = maxC / 8
	}
	// No CAT control from Go: expose a single "ways" point so the tuner's
	// way search degenerates to a no-op probe.
	return t.S.cfg.Workers, 0, maxC, step
}

// Apply implements tuner.System: install a configuration on the running
// store without measuring. The thread split lands via the reconfigurable
// RPC schedule and the hot-set size via the next epoch-switched view
// install — traffic is never paused.
func (t *Tunable) Apply(c tuner.Config) {
	nCR := t.S.cfg.Workers - c.MRThreads
	if nCR < 1 {
		nCR = 1
	}
	if nCR > t.S.cfg.Workers-1 {
		nCR = t.S.cfg.Workers - 1
	}
	t.S.SetSplit(nCR) //nolint:errcheck // closed-store errors only; probing a closing store is moot
	t.S.SetHotItems(c.CacheItems)
	t.S.RefreshHotSet()
	t.lastWays.Store(int32(c.MRWays))
}

// Current implements tuner.System.
func (t *Tunable) Current() tuner.Config {
	_, nMR := t.S.Split()
	return tuner.Config{
		CacheItems: t.S.HotItems(),
		MRThreads:  nMR,
		MRWays:     int(t.lastWays.Load()),
	}
}

// Measure implements tuner.Reconfigurable.
func (t *Tunable) Measure(c tuner.Config) float64 {
	t.Apply(c)

	w := t.Window
	if w == 0 {
		w = 10 * time.Millisecond
	}
	if t.sampler == nil {
		t.sampler = obs.NewWindowSampler(t.S.Ops)
	}
	t.sampler.Reset()
	time.Sleep(w)
	return t.sampler.Rate()
}

// Signature classifies the traffic observed since the previous Signature
// call (read fraction, scan fraction, exact mean put value size from the
// value-size histogram's sum/count deltas) for the controller's prior
// table. With no traffic in the window it falls back to lifetime totals.
func (t *Tunable) Signature() tuner.Signature {
	ops := t.S.OpCounts()
	vSum, vCnt := t.S.PutValueStats()

	var d [4]uint64
	var total uint64
	for i := range ops {
		d[i] = ops[i] - t.lastOps[i]
		total += d[i]
	}
	dSum, dCnt := vSum-t.lastValSum, vCnt-t.lastValCnt
	t.lastOps, t.lastValSum, t.lastValCnt = ops, vSum, vCnt

	if total == 0 {
		d = ops
		for _, n := range ops {
			total += n
		}
		dSum, dCnt = vSum, vCnt
		if total == 0 {
			return tuner.Signature{}
		}
	}
	readFrac := float64(d[0]) / float64(total)
	scanFrac := float64(d[3]) / float64(total)
	meanVal := 0.0
	if dCnt > 0 {
		meanVal = float64(dSum) / float64(dCnt)
	}
	return tuner.MakeSignature(readFrac, scanFrac, meanVal)
}

var _ tuner.System = (*Tunable)(nil)
