// Package kvcore is the real (non-simulated) μTPS key-value store: the
// paper's two-layer thread architecture running on goroutine workers. The
// cache-resident layer polls the reconfigurable RPC ring, serves hot items
// from the hot-set view, and forwards misses over the CR-MR queue; the
// memory-resident layer owns the full index (libcuckoo-style hash table for
// μTPS-H, B+-tree for μTPS-T) and the item records, processing forwarded
// requests in batches. An auto-tunable manager reassigns workers between
// the layers and refreshes the hot set without stopping request processing.
package kvcore

import (
	"sync/atomic"

	"mutps/internal/btree"
	"mutps/internal/cuckoo"
	"mutps/internal/seqitem"
)

// Engine selects the full-index structure.
type Engine int

// Available engines, matching the paper's two stores.
const (
	Hash Engine = iota // μTPS-H: cuckoo hash, point queries only
	Tree               // μTPS-T: B+-tree, point and range queries
)

func (e Engine) String() string {
	if e == Hash {
		return "hash"
	}
	return "tree"
}

// Index is the memory-resident layer's view of the full index, mapping
// keys to shared item records.
type Index interface {
	Get(key uint64) (*seqitem.Item, bool)
	Put(key uint64, it *seqitem.Item)
	Delete(key uint64) bool
	Len() int
}

// RangeIndex additionally supports ordered scans (tree engines).
type RangeIndex interface {
	Index
	Scan(start uint64, count int, f func(key uint64, it *seqitem.Item) bool) int
}

// BatchIndex is implemented by indexes that can serve several lookups in
// one shared traversal — the real-execution counterpart of the paper's
// batched indexing at the memory-resident layer.
type BatchIndex interface {
	GetBatch(keys []uint64, vals []*seqitem.Item, found []bool) ([]*seqitem.Item, []bool)
}

// itemRef is a stable indirection cell between the cuckoo table and the
// item record. The cuckoo map allocates a fresh entry on every Put — fine
// for inserts, fatal for the GC-quiet write path, where a same-key item
// replacement must not allocate. Storing the box once and swapping its
// pointer makes replacement a single atomic store. (The B+-tree needs no
// box: its Put overwrites the value slot of an existing key in place.)
type itemRef struct{ p atomic.Pointer[seqitem.Item] }

type hashIndex struct {
	m *cuckoo.Map[*itemRef]
}

func newHashIndex(capacityHint int) Index {
	return &hashIndex{m: cuckoo.New[*itemRef](capacityHint)}
}

func (h *hashIndex) Get(key uint64) (*seqitem.Item, bool) {
	if r, ok := h.m.Get(key); ok {
		if it := r.p.Load(); it != nil {
			return it, true
		}
	}
	return nil, false
}

// Put inserts or replaces. Writers for one key are serialized by the
// store's key-stripe locks, so the get-then-store sequence cannot race
// with another Put or Delete of the same key.
func (h *hashIndex) Put(key uint64, it *seqitem.Item) {
	if r, ok := h.m.Get(key); ok {
		r.p.Store(it)
		return
	}
	r := &itemRef{}
	r.p.Store(it)
	h.m.Put(key, r)
}

func (h *hashIndex) Delete(key uint64) bool { return h.m.Delete(key) }
func (h *hashIndex) Len() int               { return h.m.Len() }

// Range visits every indexed item — a best-effort snapshot under
// concurrent writes (cuckoo.Map.Range's contract), which is all the
// evictor's victim scan needs.
func (h *hashIndex) Range(f func(key uint64, it *seqitem.Item) bool) {
	h.m.Range(func(k uint64, r *itemRef) bool {
		if it := r.p.Load(); it != nil {
			return f(k, it)
		}
		return true
	})
}

type treeIndex struct {
	t *btree.Tree[*seqitem.Item]
}

func newTreeIndex() RangeIndex {
	return &treeIndex{t: btree.New[*seqitem.Item]()}
}

func (x *treeIndex) Get(key uint64) (*seqitem.Item, bool) { return x.t.Get(key) }
func (x *treeIndex) Put(key uint64, it *seqitem.Item)     { x.t.Put(key, it) }
func (x *treeIndex) Delete(key uint64) bool               { return x.t.Delete(key) }
func (x *treeIndex) Len() int                             { return x.t.Len() }

func (x *treeIndex) Scan(start uint64, count int, f func(uint64, *seqitem.Item) bool) int {
	return x.t.Scan(start, count, f)
}

func (x *treeIndex) GetBatch(keys []uint64, vals []*seqitem.Item, found []bool) ([]*seqitem.Item, []bool) {
	return x.t.GetBatch(keys, vals, found)
}
