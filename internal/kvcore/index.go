// Package kvcore is the real (non-simulated) μTPS key-value store: the
// paper's two-layer thread architecture running on goroutine workers. The
// cache-resident layer polls the reconfigurable RPC ring, serves hot items
// from the hot-set view, and forwards misses over the CR-MR queue; the
// memory-resident layer owns the full index (libcuckoo-style hash table for
// μTPS-H, B+-tree for μTPS-T) and the item records, processing forwarded
// requests in batches. An auto-tunable manager reassigns workers between
// the layers and refreshes the hot set without stopping request processing.
package kvcore

import (
	"mutps/internal/btree"
	"mutps/internal/cuckoo"
	"mutps/internal/seqitem"
)

// Engine selects the full-index structure.
type Engine int

// Available engines, matching the paper's two stores.
const (
	Hash Engine = iota // μTPS-H: cuckoo hash, point queries only
	Tree               // μTPS-T: B+-tree, point and range queries
)

func (e Engine) String() string {
	if e == Hash {
		return "hash"
	}
	return "tree"
}

// Index is the memory-resident layer's view of the full index, mapping
// keys to shared item records.
type Index interface {
	Get(key uint64) (*seqitem.Item, bool)
	Put(key uint64, it *seqitem.Item)
	Delete(key uint64) bool
	Len() int
}

// RangeIndex additionally supports ordered scans (tree engines).
type RangeIndex interface {
	Index
	Scan(start uint64, count int, f func(key uint64, it *seqitem.Item) bool) int
}

// BatchIndex is implemented by indexes that can serve several lookups in
// one shared traversal — the real-execution counterpart of the paper's
// batched indexing at the memory-resident layer.
type BatchIndex interface {
	GetBatch(keys []uint64, vals []*seqitem.Item, found []bool) ([]*seqitem.Item, []bool)
}

type hashIndex struct {
	m *cuckoo.Map[*seqitem.Item]
}

func newHashIndex(capacityHint int) Index {
	return &hashIndex{m: cuckoo.New[*seqitem.Item](capacityHint)}
}

func (h *hashIndex) Get(key uint64) (*seqitem.Item, bool) { return h.m.Get(key) }
func (h *hashIndex) Put(key uint64, it *seqitem.Item)     { h.m.Put(key, it) }
func (h *hashIndex) Delete(key uint64) bool               { return h.m.Delete(key) }
func (h *hashIndex) Len() int                             { return h.m.Len() }

type treeIndex struct {
	t *btree.Tree[*seqitem.Item]
}

func newTreeIndex() RangeIndex {
	return &treeIndex{t: btree.New[*seqitem.Item]()}
}

func (x *treeIndex) Get(key uint64) (*seqitem.Item, bool) { return x.t.Get(key) }
func (x *treeIndex) Put(key uint64, it *seqitem.Item)     { x.t.Put(key, it) }
func (x *treeIndex) Delete(key uint64) bool               { return x.t.Delete(key) }
func (x *treeIndex) Len() int                             { return x.t.Len() }

func (x *treeIndex) Scan(start uint64, count int, f func(uint64, *seqitem.Item) bool) int {
	return x.t.Scan(start, count, f)
}

func (x *treeIndex) GetBatch(keys []uint64, vals []*seqitem.Item, found []bool) ([]*seqitem.Item, []bool) {
	return x.t.GetBatch(keys, vals, found)
}
