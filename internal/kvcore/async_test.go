package kvcore

import (
	"bytes"
	"testing"

	"mutps/internal/rpc"
)

// TestAsyncFacade exercises the Get/Put/DeleteAsync surface the pipelined
// network server is built on: submit without waiting, then retire the
// calls in submission order, exactly as a connection's completion stage
// does.
func TestAsyncFacade(t *testing.T) {
	s, err := Open(Config{Engine: Hash, Workers: 4, CRWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	val := []byte("async-value")
	put, err := s.PutAsync(1, val)
	if err != nil {
		t.Fatal(err)
	}
	put.Wait()
	if put.Err != nil {
		t.Fatal(put.Err)
	}
	put.Release()

	dst := make([]byte, 0, 64)
	get, err := s.GetAsync(1, dst)
	if err != nil {
		t.Fatal(err)
	}
	get.Wait()
	if get.Err != nil || !get.Found || !bytes.Equal(get.Value, val) {
		t.Fatalf("get: found=%v value=%q err=%v", get.Found, get.Value, get.Err)
	}
	get.Release()

	del, err := s.DeleteAsync(1)
	if err != nil {
		t.Fatal(err)
	}
	del.Wait()
	if del.Err != nil || !del.Found {
		t.Fatalf("delete: found=%v err=%v", del.Found, del.Err)
	}
	del.Release()

	miss, err := s.GetAsync(1, dst)
	if err != nil {
		t.Fatal(err)
	}
	miss.Wait()
	if miss.Err != nil || miss.Found {
		t.Fatalf("get after delete: found=%v err=%v", miss.Found, miss.Err)
	}
	miss.Release()

	// Many calls in flight at once, retired strictly in submission order:
	// the invariant the server's FIFO completion stage relies on.
	const n = 64
	calls := make([]*rpc.Call, 0, n)
	for i := uint64(0); i < n; i++ {
		c, err := s.PutAsync(100+i, val)
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, c)
	}
	for i, c := range calls {
		c.Wait()
		if c.Err != nil {
			t.Fatalf("put %d: %v", 100+i, c.Err)
		}
		c.Release()
	}
	for i := uint64(0); i < n; i++ {
		c, err := s.GetAsync(100+i, nil)
		if err != nil {
			t.Fatal(err)
		}
		c.Wait()
		if !c.Found || !bytes.Equal(c.Value, val) {
			t.Fatalf("windowed put %d lost", 100+i)
		}
		c.Release()
	}
}
