package kvcore

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// lcVal is the deterministic value oracle for lifecycle tests: any read of
// key k must return exactly lcVal(k, n) for one of the sizes the test
// writes, whatever tier (hot set, index, cold log, promotion) served it.
func lcVal(k uint64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(k*131 + uint64(i)*7)
	}
	return b
}

func lcSize(k uint64) int {
	if k%8 == 0 {
		return 8 // single-word items: the no-lock write path and spill fixups
	}
	return 24 + int(k%64)
}

func TestTTLExpiry(t *testing.T) {
	for _, engine := range []Engine{Hash, Tree} {
		t.Run(engine.String(), func(t *testing.T) {
			s := openTest(t, engine, nil)
			if err := s.PutTTL(1, lcVal(1, 32), 60*time.Millisecond); err != nil {
				t.Fatal(err)
			}
			if err := s.Put(2, lcVal(2, 32)); err != nil {
				t.Fatal(err)
			}
			v, ok, _ := s.Get(1)
			if !ok || !bytes.Equal(v, lcVal(1, 32)) {
				t.Fatal("unexpired key must hit")
			}
			time.Sleep(80 * time.Millisecond)
			if _, ok, _ := s.Get(1); ok {
				t.Fatal("expired key still readable")
			}
			if _, ok, _ := s.Get(1); ok {
				t.Fatal("expired key readable on second get")
			}
			if v, ok, _ := s.Get(2); !ok || !bytes.Equal(v, lcVal(2, 32)) {
				t.Fatal("TTL-free key must survive")
			}
			// The first expired get lazily unlinked the item.
			if s.met.expired.Value() == 0 {
				t.Fatal("lazy expiry did not unlink")
			}
			if found, _ := s.Delete(1); found {
				t.Fatal("delete of expired key must report not-found")
			}
		})
	}
}

func TestDefaultTTL(t *testing.T) {
	s := openTest(t, Hash, func(c *Config) { c.DefaultTTL = 50 * time.Millisecond })
	s.Put(7, lcVal(7, 16))
	if _, ok, _ := s.Get(7); !ok {
		t.Fatal("fresh key must hit")
	}
	time.Sleep(70 * time.Millisecond)
	if _, ok, _ := s.Get(7); ok {
		t.Fatal("default TTL did not expire the key")
	}
}

func TestPutRefreshesTTL(t *testing.T) {
	s := openTest(t, Hash, nil)
	s.PutTTL(3, lcVal(3, 16), 50*time.Millisecond)
	// An explicit TTL-free overwrite clears the deadline (same size: the
	// in-place path must clear it too, not just replacements).
	s.Put(3, lcVal(3, 16))
	time.Sleep(70 * time.Millisecond)
	if _, ok, _ := s.Get(3); !ok {
		t.Fatal("overwrite did not clear the TTL")
	}
	// A refresh pushes the deadline out.
	s.PutTTL(4, lcVal(4, 16), 40*time.Millisecond)
	time.Sleep(25 * time.Millisecond)
	s.PutTTL(4, lcVal(4, 16), 200*time.Millisecond)
	time.Sleep(40 * time.Millisecond)
	if _, ok, _ := s.Get(4); !ok {
		t.Fatal("TTL refresh did not extend the deadline")
	}
}

func TestGetTTLRemaining(t *testing.T) {
	s := openTest(t, Hash, nil)
	s.PutTTL(1, lcVal(1, 16), time.Hour)
	s.Put(2, lcVal(2, 16))
	_, ttl, ok, err := s.GetTTL(1)
	if err != nil || !ok {
		t.Fatalf("GetTTL(1): ok=%v err=%v", ok, err)
	}
	if ttl <= 0 || ttl > time.Hour {
		t.Fatalf("remaining ttl %v out of range", ttl)
	}
	if _, ttl, ok, _ := s.GetTTL(2); !ok || ttl != 0 {
		t.Fatalf("TTL-free key: ok=%v ttl=%v, want hit with 0", ok, ttl)
	}
	if _, _, ok, _ := s.GetTTL(3); ok {
		t.Fatal("absent key must miss")
	}
}

// TestBudgetHeldUnderChurn writes a keyspace several times larger than the
// memory budget (no cold tier: values drop) and asserts the evictor keeps
// budgeted live bytes at the watermark once churn settles.
func TestBudgetHeldUnderChurn(t *testing.T) {
	const budget = 96 << 10
	s := openTest(t, Hash, func(c *Config) {
		c.MemoryBudget = budget
		c.EvictInterval = time.Millisecond
	})
	const keys = 4096 // ≈ 4× budget at ~100B/slot
	for round := 0; round < 2; round++ {
		for k := uint64(0); k < keys; k++ {
			if err := s.Put(k, lcVal(k, lcSize(k))); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.BudgetedBytes() > budget && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.BudgetedBytes(); got > budget {
		t.Fatalf("budgeted bytes %d still above budget %d", got, budget)
	}
	if n := s.idx.Len(); n >= keys {
		t.Fatalf("no evictions: %d items indexed", n)
	}
}

// TestColdTierServesEvicted is the acceptance-core test: with a keyspace
// ~4× the budget and a cold tier attached, every key must read back its
// exact value — from RAM or, after eviction, from the SSD log — and cold
// hits must promote back into RAM.
func TestColdTierServesEvicted(t *testing.T) {
	const budget = 96 << 10
	s := openTest(t, Hash, func(c *Config) {
		c.MemoryBudget = budget
		c.EvictInterval = time.Millisecond
		c.ColdDir = t.TempDir()
	})
	const keys = 4096
	for k := uint64(0); k < keys; k++ {
		if err := s.Put(k, lcVal(k, lcSize(k))); err != nil {
			t.Fatal(err)
		}
	}
	if s.met.spills.Value() == 0 {
		// The keyspace is 4× the budget, so spills must have happened by
		// the time the last put returns or shortly after.
		deadline := time.Now().Add(2 * time.Second)
		for s.met.spills.Value() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if s.met.spills.Value() == 0 {
			t.Fatal("nothing spilled to the cold tier")
		}
	}
	for k := uint64(0); k < keys; k++ {
		v, ok, err := s.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("key %d lost (neither RAM nor cold)", k)
		}
		if want := lcVal(k, lcSize(k)); !bytes.Equal(v, want) {
			t.Fatalf("key %d corrupt: got %d bytes", k, len(v))
		}
	}
	if s.met.coldHits.Value() == 0 {
		t.Fatal("full read-back never hit the cold tier")
	}
	if s.met.promotes.Value() == 0 {
		t.Fatal("cold hits never promoted")
	}
}

// TestColdPromotionServesFromRAM verifies a promoted key is indexed again:
// the second get must not consult the cold tier.
func TestColdPromotionServesFromRAM(t *testing.T) {
	s := openTest(t, Hash, func(c *Config) {
		c.MemoryBudget = 32 << 10
		c.EvictInterval = time.Millisecond
		c.ColdDir = t.TempDir()
	})
	const keys = 2048
	for k := uint64(0); k < keys; k++ {
		s.Put(k, lcVal(k, 64))
	}
	// Let the evictor settle below the watermark first: while live bytes
	// still exceed the budget, a freshly promoted key is itself a prime
	// re-eviction candidate and the second probe would miss RAM again.
	deadline := time.Now().Add(5 * time.Second)
	for s.BudgetedBytes() > (32<<10)-4096 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	// Find a key that was evicted (absent from RAM, present in cold).
	var victim uint64
	found := false
	for k := uint64(0); k < keys && !found; k++ {
		if _, ok := s.idx.Get(k); !ok && s.cold.Has(k) {
			victim, found = k, true
		}
	}
	if !found {
		t.Skip("no fully evicted key to probe (eviction raced the scan)")
	}
	if v, ok, _ := s.Get(victim); !ok || !bytes.Equal(v, lcVal(victim, 64)) {
		t.Fatal("cold get wrong")
	}
	hits := s.met.coldHits.Value()
	if v, ok, _ := s.Get(victim); !ok || !bytes.Equal(v, lcVal(victim, 64)) {
		t.Fatal("promoted get wrong")
	}
	if s.met.coldHits.Value() != hits {
		t.Fatal("second get consulted the cold tier: promotion did not index the key")
	}
}

// TestExpiredNeverSpills: evicting an expired item drops it and clears any
// cold shadow instead of spilling a dead value.
func TestExpiredNeverSpills(t *testing.T) {
	// No MemoryBudget: the evictor goroutine (the sole legal EvictKey
	// caller) never starts, so the test may drive EvictKey itself.
	s := openTest(t, Hash, func(c *Config) { c.ColdDir = t.TempDir() })
	s.PutTTL(5, lcVal(5, 32), 20*time.Millisecond)
	time.Sleep(40 * time.Millisecond)
	if _, ok := s.EvictKey(5); !ok {
		t.Fatal("EvictKey missed an indexed key")
	}
	if s.cold.Has(5) {
		t.Fatal("expired value spilled to the cold tier")
	}
	if _, ok, _ := s.Get(5); ok {
		t.Fatal("expired evicted key resurrected")
	}
}

// TestLifecycleChurnStress races TTL expiry, same-size in-place writes,
// replacement puts, deletes, eviction, spilling, and promotion under the
// race detector. Every observed value must match the (key, size) oracle —
// a torn read, a cross-key promotion, or a use-after-recycle shows up as a
// pattern mismatch or a race report.
func TestLifecycleChurnStress(t *testing.T) {
	s := openTest(t, Hash, func(c *Config) {
		c.MemoryBudget = 48 << 10
		c.EvictInterval = time.Millisecond
		c.ColdDir = t.TempDir()
		c.HotItems = 64
	})
	s.StartRefresher(5 * time.Millisecond)
	const keys = 512
	dur := 300 * time.Millisecond
	if testing.Short() {
		dur = 50 * time.Millisecond
	}
	stop := make(chan struct{})
	time.AfterFunc(dur, func() { close(stop) })
	var wg sync.WaitGroup
	fail := make(chan string, 8)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := uint64(g)
			buf := make([]byte, 0, 128)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := i % keys
				switch i % 7 {
				case 0, 1:
					s.Put(k, lcVal(k, lcSize(k)))
				case 2:
					// Alternate size: forces replacement instead of in-place.
					s.Put(k, lcVal(k, lcSize(k)+16))
				case 3:
					s.PutTTL(k, lcVal(k, lcSize(k)), time.Duration(1+k%3)*time.Millisecond)
				case 4, 5:
					v, ok, err := s.GetInto(k, buf)
					if err == nil && ok {
						n := len(v)
						if n != lcSize(k) && n != lcSize(k)+16 {
							select {
							case fail <- "unexpected value size":
							default:
							}
							return
						}
						if !bytes.Equal(v, lcVal(k, n)) {
							select {
							case fail <- "value does not match oracle":
							default:
							}
							return
						}
					}
					buf = v[:0]
				default:
					s.Delete(k)
				}
				i += 13
			}
		}(g)
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}
