// Buffer leasing: short-lived byte buffers for the network transports.
//
// The slab arena (arena.go) backs item VALUES — word arrays owned by the
// store for an item's whole lifetime. The Leaser backs the transient
// buffers around a request: read staging, decoded put payloads, get
// destination buffers, and coalesced response chains. Their lifetime is
// the inverse of an item's: microseconds while a request is in flight,
// then back to the pool — and, critically, an idle connection holds none
// at all. That inversion is what makes a million mostly-idle connections
// affordable: buffer memory is proportional to the number of requests in
// flight, not the number of sockets open.
//
// The design mirrors the arena's size-classed central lists without the
// per-worker caches: leases happen once per request burst (not once per
// op), so a mutex per class is cheap, and the transports that call it are
// a small fixed pool of event-loop goroutines, not hundreds of workers.
// Each class retains at most classRetain free buffers; beyond that,
// returned buffers are dropped to the garbage collector, so a burst of
// activity cannot permanently inflate the pool (the arena's grow-only
// policy is right for items, wrong for connection buffers).
package arena

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

const (
	// LeaseMinBytes .. LeaseMaxBytes bound the lease size classes
	// (power-of-two: 512 B, 1 KiB, ..., 64 KiB). Larger requests fall back
	// to the Go allocator and are never pooled.
	LeaseMinBytes  = 512
	LeaseMaxBytes  = 64 << 10
	leaseClasses   = 8
	leaseMinShift  = 9 // log2(LeaseMinBytes)

	// classRetain caps the free buffers kept per class: the pool holds at
	// most classRetain × classBytes resident per class when fully idle.
	classRetain = 128
)

// leaseClassFor maps a byte size in (0, LeaseMaxBytes] to its class.
func leaseClassFor(n int) int {
	if n <= LeaseMinBytes {
		return 0
	}
	return bits.Len(uint(n-1)) - leaseMinShift
}

// leaseClassBytes returns class c's buffer size.
func leaseClassBytes(c int) int { return LeaseMinBytes << c }

// leaseCentral is one class's free list. Padded like the arena's central
// so adjacent class mutexes stay off each other's cache lines.
type leaseCentral struct {
	mu   sync.Mutex
	free [][]byte
	_    [6]uint64
}

// Leaser is a concurrent size-classed []byte pool with live-lease
// accounting. Get returns a zero-length buffer whose capacity is the
// class size (≥ the requested bytes); Put returns it. The leased-bytes
// gauge counts class-size bytes currently out on lease — the resident
// buffer cost of all in-flight requests — and held bytes counts what the
// free lists retain for reuse.
type Leaser struct {
	classes [leaseClasses]leaseCentral

	leased    atomic.Int64  // class-size bytes currently on lease
	held      atomic.Int64  // class-size bytes sitting in free lists
	leases    atomic.Uint64 // Get calls served from a class
	fallbacks atomic.Uint64 // Get calls beyond LeaseMaxBytes (unpooled)
}

// NewLeaser creates an empty lease pool.
func NewLeaser() *Leaser { return &Leaser{} }

// Get leases a buffer with capacity for at least n bytes (n > 0),
// returned with length zero. Buffers up to LeaseMaxBytes come from the
// size-classed pool and must be handed back with Put; larger ones come
// from the Go allocator and are simply dropped when done (Put ignores
// them). The contents are unspecified — callers overwrite what they read.
func (l *Leaser) Get(n int) []byte {
	if n > LeaseMaxBytes {
		l.fallbacks.Add(1)
		return make([]byte, 0, n)
	}
	cl := leaseClassFor(n)
	cb := leaseClassBytes(cl)
	ce := &l.classes[cl]
	ce.mu.Lock()
	var b []byte
	if ln := len(ce.free); ln > 0 {
		b = ce.free[ln-1]
		ce.free[ln-1] = nil
		ce.free = ce.free[:ln-1]
	}
	ce.mu.Unlock()
	if b == nil {
		b = make([]byte, 0, cb)
	} else {
		l.held.Add(-int64(cb))
	}
	l.leased.Add(int64(cb))
	l.leases.Add(1)
	return b
}

// Put returns a buffer previously vended by a pooled Get. Leased buffers
// keep their class capacity for life (append-growth replaces the backing
// array, it never resizes it in place), so callers must return exactly
// the slice Get handed out — a buffer that was replaced by growth is no
// longer the lease and must not come back here. Buffers whose capacity is
// not a class size (fallback allocations past LeaseMaxBytes, which Get
// did not count as leased) are dropped to the GC. Put(nil) is a no-op, so
// callers can unconditionally return-and-clear buffer fields.
func (l *Leaser) Put(b []byte) {
	cb := cap(b)
	if cb == 0 {
		return
	}
	cl := leaseClassFor(cb)
	if cl < 0 || cl >= leaseClasses || leaseClassBytes(cl) != cb {
		return // fallback allocation: never counted, nothing to settle
	}
	l.leased.Add(-int64(cb))
	ce := &l.classes[cl]
	ce.mu.Lock()
	if len(ce.free) < classRetain {
		ce.free = append(ce.free, b[:0:cb])
		ce.mu.Unlock()
		l.held.Add(int64(cb))
		return
	}
	ce.mu.Unlock()
	// Over the retain cap: drop to the GC.
}

// LeasedBytes returns the class-size bytes currently out on lease: the
// resident buffer footprint of every in-flight request across the
// transports that share this pool.
func (l *Leaser) LeasedBytes() int64 { return l.leased.Load() }

// HeldBytes returns the bytes retained in the free lists for reuse.
func (l *Leaser) HeldBytes() int64 { return l.held.Load() }

// Leases returns the cumulative pooled Get count.
func (l *Leaser) Leases() uint64 { return l.leases.Load() }

// LeaseFallbacks returns the cumulative beyond-class Get count.
func (l *Leaser) LeaseFallbacks() uint64 { return l.fallbacks.Load() }
