// Package arena is a size-classed slab allocator for item value storage:
// the GC-quiet backing store for the write path. Values live as word
// arrays ([]atomic.Uint64, the representation internal/seqitem reads and
// writes) carved from large backing chunks, in power-of-two size classes
// from 16 bytes to 4 KiB; anything larger falls back to the Go allocator
// (counted, so the dashboard shows when a workload outgrows the classes).
//
// The concurrency structure mirrors the store's thread model. Each worker
// owns a Cache of per-class free lists and allocates and frees against it
// with no synchronization at all; caches refill from and flush to a
// per-class central free list in fixed-size batches, so the central mutex
// is touched once per batchSlots operations, not once per op. Slots are
// never returned to the operating system — a store's arena footprint is
// its high-water mark — which is the same policy the Go runtime's own
// mcache/mcentral spans follow and what keeps steady-state allocation
// allocation-free: after warm-up every Get is a pop from a slice the
// worker already owns.
//
// The arena does not know about item lifetimes. Callers must guarantee a
// slot is unreachable before Put returns it — in the store that guarantee
// is the epoch-based retirement protocol (DESIGN.md §11): an item's slot
// recycles only after a grace period covers every concurrent reader and
// every hot-set view that could still hold the item.
package arena

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

const (
	// MinClassBytes .. MaxClassBytes bound the size classes; NumClasses
	// power-of-two classes span them (16, 32, ..., 4096).
	MinClassBytes = 16
	MaxClassBytes = 4096
	NumClasses    = 9

	// batchSlots is the refill/flush transfer unit between a worker cache
	// and the central free list, and localCap (2×) the local free-list
	// bound: a cache holds at most one batch beyond what it hands back.
	batchSlots = 32
	localCap   = 2 * batchSlots

	// DefaultChunkBytes is the default backing-chunk size per class.
	DefaultChunkBytes = 256 << 10
)

// Pooled reports whether a value of n bytes is served from the size
// classes (false means Get falls back to the Go allocator).
func Pooled(n int) bool { return n <= MaxClassBytes }

// classFor maps a byte size in (0, MaxClassBytes] to its class index.
func classFor(n int) int {
	if n <= MinClassBytes {
		return 0
	}
	// Round up to a power of two, then log2 relative to MinClassBytes.
	return bits.Len(uint(n-1)) - 4
}

// classBytes returns class c's slot size in bytes.
func classBytes(c int) int { return MinClassBytes << c }

// classWords returns class c's slot size in 8-byte words.
func classWords(c int) int { return classBytes(c) / 8 }

// central is one size class's shared state: the free list plus the
// carving cursor into the class's current backing chunk. Padded so
// adjacent classes' mutexes never share a cache line.
type central struct {
	mu    sync.Mutex
	free  [][]atomic.Uint64 // flushed-back slots
	chunk []atomic.Uint64   // current backing chunk being carved
	next  int               // carve cursor into chunk, in words

	carved atomic.Uint64 // slots ever carved from chunks (monotonic)
	nfree  atomic.Uint64 // len(free) mirror for lock-free scraping
	_      [4]uint64
}

// Arena is the shared allocator: central free lists, chunk carving, and
// the cache registry the collectors sum live counts over.
type Arena struct {
	chunkWords int // per-class chunk size, in words
	classes    [NumClasses]central

	mu     sync.Mutex
	caches []*Cache

	chunks    atomic.Uint64 // backing chunks allocated
	refills   atomic.Uint64 // cache refills from a central list
	flushes   atomic.Uint64 // cache flushes back to a central list
	fallbacks atomic.Uint64 // allocations beyond MaxClassBytes

	// Pressure hook: refill calls presFn when live bytes reach presAt.
	// Set once before allocation traffic starts (SetPressureHook).
	presAt uint64
	presFn func()
}

// New creates an arena whose classes carve chunkBytes-sized backing
// chunks (0 means DefaultChunkBytes; tiny values are clamped so a chunk
// always holds at least one largest-class slot).
func New(chunkBytes int) *Arena {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	if chunkBytes < MaxClassBytes {
		chunkBytes = MaxClassBytes
	}
	return &Arena{chunkWords: chunkBytes / 8}
}

// ChunkBytes returns the per-class backing chunk size.
func (a *Arena) ChunkBytes() int { return a.chunkWords * 8 }

// LiveBytes returns the bytes of value storage currently held by items
// (slot-size granularity; a collection-time sum over every cache).
func (a *Arena) LiveBytes() uint64 { return a.Snapshot().LiveBytes }

// SetPressureHook arranges for fn to be called from allocation slow paths
// (cache refills — roughly once per batch of allocations) whenever live
// bytes are at or above threshold. fn must be cheap and non-blocking; the
// store points it at the evictor's coalescing Notify. Must be called
// before allocation traffic starts: the fields are written plainly and
// published by the goroutine starts that follow.
func (a *Arena) SetPressureHook(threshold uint64, fn func()) {
	a.presAt = threshold
	a.presFn = fn
}

// NewCache creates a worker-owned allocation cache. Caches are registered
// with the arena so live-slot accounting can sum them at collection time;
// they are never unregistered (workers live as long as the store).
func (a *Arena) NewCache() *Cache {
	c := &Cache{a: a}
	a.mu.Lock()
	a.caches = append(a.caches, c)
	a.mu.Unlock()
	return c
}

// localClass is one size class's worker-local state. allocs/frees are
// written only by the owning worker but read by collectors, so they are
// atomics; the pad keeps neighbouring classes (and neighbouring caches)
// off each other's cache lines.
type localClass struct {
	free   [][]atomic.Uint64
	allocs atomic.Uint64 // slots handed to items by this cache
	frees  atomic.Uint64 // slots taken back from items by this cache
	_      [3]uint64
}

// Cache is a single-owner allocation cache: exactly one goroutine may
// call Get and Put (the store gives every worker its own, plus one, mutex
// guarded, for bulk preloading).
type Cache struct {
	a   *Arena
	cls [NumClasses]localClass
}

// Get returns a word array with capacity for n bytes (n > 0), and whether
// it came from the arena. Slots have capacity exactly their class size so
// Put can re-derive the class; len is the exact word count for n. When
// n > MaxClassBytes the array comes from the Go allocator (pooled=false)
// and must not be Put back.
func (c *Cache) Get(n int) (slot []atomic.Uint64, pooled bool) {
	nw := (n + 7) / 8
	if nw == 0 {
		nw = 1
	}
	if n > MaxClassBytes {
		c.a.fallbacks.Add(1)
		return make([]atomic.Uint64, nw), false
	}
	cl := classFor(n)
	lc := &c.cls[cl]
	if len(lc.free) == 0 {
		c.refill(cl)
	}
	s := lc.free[len(lc.free)-1]
	lc.free[len(lc.free)-1] = nil
	lc.free = lc.free[:len(lc.free)-1]
	lc.allocs.Add(1)
	return s[:nw], true
}

// Put recycles a slot previously returned by Get with pooled=true. The
// caller must guarantee no reader can still reach the slot (the store's
// epoch retirement protocol). The slot's contents need not be zeroed:
// seqitem writes every word it will read.
func (c *Cache) Put(slot []atomic.Uint64) {
	cl := classFor(cap(slot) * 8)
	lc := &c.cls[cl]
	lc.free = append(lc.free, slot[:cap(slot):cap(slot)])
	lc.frees.Add(1)
	if len(lc.free) >= localCap {
		c.flush(cl)
	}
}

// refill moves up to batchSlots free slots from the central list (carving
// fresh ones from the class chunk when the list runs dry) into the local
// list. Called with the local list empty; guarantees at least one slot.
func (c *Cache) refill(cl int) {
	ce := &c.a.classes[cl]
	lc := &c.cls[cl]
	cw := classWords(cl)
	ce.mu.Lock()
	n := batchSlots
	if ln := len(ce.free); ln < n {
		n = ln
	}
	for i := 0; i < n; i++ {
		s := ce.free[len(ce.free)-1]
		ce.free[len(ce.free)-1] = nil
		ce.free = ce.free[:len(ce.free)-1]
		lc.free = append(lc.free, s)
	}
	ce.nfree.Store(uint64(len(ce.free)))
	carved := 0
	for len(lc.free) < batchSlots {
		if ce.next+cw > len(ce.chunk) {
			ce.chunk = make([]atomic.Uint64, c.a.chunkWords)
			ce.next = 0
			c.a.chunks.Add(1)
		}
		s := ce.chunk[ce.next : ce.next+cw : ce.next+cw]
		ce.next += cw
		lc.free = append(lc.free, s)
		carved++
	}
	if carved > 0 {
		ce.carved.Add(uint64(carved))
	}
	ce.mu.Unlock()
	c.a.refills.Add(1)
	if c.a.presFn != nil && c.a.LiveBytes() >= c.a.presAt {
		c.a.presFn()
	}
}

// flush returns batchSlots slots from the local list to the central list,
// leaving one batch locally so the next Get stays local.
func (c *Cache) flush(cl int) {
	ce := &c.a.classes[cl]
	lc := &c.cls[cl]
	ce.mu.Lock()
	for i := 0; i < batchSlots; i++ {
		s := lc.free[len(lc.free)-1]
		lc.free[len(lc.free)-1] = nil
		lc.free = lc.free[:len(lc.free)-1]
		ce.free = append(ce.free, s)
	}
	ce.nfree.Store(uint64(len(ce.free)))
	ce.mu.Unlock()
	c.a.flushes.Add(1)
}

// Stats is a point-in-time accounting snapshot (collection-time reads of
// the lock-free counters; per-class live counts sum every cache, so under
// load the snapshot is approximate but never drifts).
type Stats struct {
	LiveSlots [NumClasses]uint64 // slots currently held by items, per class
	Carved    [NumClasses]uint64 // slots ever carved, per class
	Central   [NumClasses]uint64 // slots free in the central lists
	LiveBytes uint64             // Σ LiveSlots × class size
	Chunks    uint64
	Refills   uint64
	Flushes   uint64
	Fallbacks uint64
}

// Snapshot sums the arena's counters.
func (a *Arena) Snapshot() Stats {
	var st Stats
	a.mu.Lock()
	caches := a.caches
	a.mu.Unlock()
	for cl := 0; cl < NumClasses; cl++ {
		var allocs, frees uint64
		for _, c := range caches {
			allocs += c.cls[cl].allocs.Load()
			frees += c.cls[cl].frees.Load()
		}
		if allocs > frees { // racy reads can transiently invert
			st.LiveSlots[cl] = allocs - frees
		}
		st.Carved[cl] = a.classes[cl].carved.Load()
		st.Central[cl] = a.classes[cl].nfree.Load()
		st.LiveBytes += st.LiveSlots[cl] * uint64(classBytes(cl))
	}
	st.Chunks = a.chunks.Load()
	st.Refills = a.refills.Load()
	st.Flushes = a.flushes.Load()
	st.Fallbacks = a.fallbacks.Load()
	return st
}
