package arena

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct{ n, class, bytes int }{
		{1, 0, 16}, {8, 0, 16}, {16, 0, 16},
		{17, 1, 32}, {24, 1, 32}, {32, 1, 32},
		{33, 2, 64}, {64, 2, 64},
		{65, 3, 128}, {128, 3, 128},
		{129, 4, 256}, {256, 4, 256},
		{257, 5, 512}, {512, 5, 512},
		{513, 6, 1024}, {1024, 6, 1024},
		{1025, 7, 2048}, {2048, 7, 2048},
		{2049, 8, 4096}, {4096, 8, 4096},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
		if got := classBytes(c.class); got != c.bytes {
			t.Errorf("classBytes(%d) = %d, want %d", c.class, got, c.bytes)
		}
	}
	if NumClasses != classFor(MaxClassBytes)+1 {
		t.Errorf("NumClasses = %d, want %d", NumClasses, classFor(MaxClassBytes)+1)
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	a := New(0)
	c := a.NewCache()
	for _, n := range []int{1, 8, 16, 24, 100, 4096} {
		s, pooled := c.Get(n)
		if !pooled {
			t.Fatalf("Get(%d) not pooled", n)
		}
		want := (n + 7) / 8
		if len(s) != want {
			t.Errorf("Get(%d): len = %d, want %d", n, len(s), want)
		}
		if cap(s)*8 != classBytes(classFor(n)) {
			t.Errorf("Get(%d): cap = %d words, want class size %d bytes",
				n, cap(s), classBytes(classFor(n)))
		}
		c.Put(s)
	}
	// Fallback path: larger than the largest class.
	s, pooled := c.Get(MaxClassBytes + 1)
	if pooled {
		t.Fatal("oversized Get reported pooled")
	}
	if len(s) != (MaxClassBytes+1+7)/8 {
		t.Errorf("fallback len = %d", len(s))
	}
	if got := a.Snapshot().Fallbacks; got != 1 {
		t.Errorf("fallbacks = %d, want 1", got)
	}
}

// TestRecycling checks that a Put slot is handed back by a later Get of
// the same class (LIFO within the local cache) rather than freshly carved.
func TestRecycling(t *testing.T) {
	a := New(0)
	c := a.NewCache()
	s1, _ := c.Get(24)
	c.Put(s1)
	s2, _ := c.Get(28)
	if &s1[0] != &s2[0] {
		t.Error("Put slot was not recycled by next same-class Get")
	}
}

// TestFlushRefill frees enough slots through one cache to force central
// flushes, then drains them back through a second cache, checking the
// accounting balances and no slot is handed out twice.
func TestFlushRefill(t *testing.T) {
	a := New(0)
	c1 := a.NewCache()
	const n = 4 * localCap
	held := make([][]atomic.Uint64, 0, n)
	for i := 0; i < n; i++ {
		s, _ := c1.Get(24)
		held = append(held, s)
	}
	for _, s := range held {
		c1.Put(s)
	}
	st := a.Snapshot()
	if st.Flushes == 0 {
		t.Error("no central flushes after freeing 4x localCap slots")
	}
	if st.LiveSlots[1] != 0 {
		t.Errorf("live slots = %d after freeing everything", st.LiveSlots[1])
	}
	if st.Central[1] == 0 {
		t.Error("central free list empty after flushes")
	}

	c2 := a.NewCache()
	seen := make(map[*atomic.Uint64]bool, n)
	for i := 0; i < n; i++ {
		s, _ := c2.Get(24)
		if seen[&s[0]] {
			t.Fatal("slot handed out twice")
		}
		seen[&s[0]] = true
	}
	st = a.Snapshot()
	if st.LiveSlots[1] != n {
		t.Errorf("live slots = %d, want %d", st.LiveSlots[1], n)
	}
	if st.LiveBytes != n*32 {
		t.Errorf("live bytes = %d, want %d", st.LiveBytes, n*32)
	}
}

// TestDistinctSlots checks freshly carved slots never alias: writes
// through one slot are invisible through any other.
func TestDistinctSlots(t *testing.T) {
	a := New(8 << 10) // small chunks to cross chunk boundaries
	c := a.NewCache()
	held := make([][]atomic.Uint64, 0, 600)
	for i := 0; i < 600; i++ {
		s, _ := c.Get(64)
		for w := range s {
			s[w].Store(uint64(i))
		}
		held = append(held, s)
	}
	for i, s := range held {
		for w := range s {
			if got := s[w].Load(); got != uint64(i) {
				t.Fatalf("slot %d word %d = %d (slots overlap)", i, w, got)
			}
		}
	}
	if chunks := a.Snapshot().Chunks; chunks < 2 {
		t.Errorf("chunks = %d, expected multiple with 8 KiB chunks", chunks)
	}
}

// TestConcurrentCaches hammers one arena from several caches at once
// (each cache single-owner, as the store uses them) and checks the books
// balance afterwards. Run under -race in CI.
func TestConcurrentCaches(t *testing.T) {
	a := New(64 << 10)
	const workers = 4
	const rounds = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		c := a.NewCache()
		wg.Add(1)
		go func(c *Cache, w int) {
			defer wg.Done()
			sizes := []int{8, 24, 100, 300, 1500}
			held := make([][]atomic.Uint64, 0, 8)
			for i := 0; i < rounds; i++ {
				s, _ := c.Get(sizes[(i+w)%len(sizes)])
				s[0].Store(uint64(w))
				held = append(held, s)
				if len(held) == cap(held) {
					for _, h := range held {
						if got := h[0].Load(); got != uint64(w) {
							panic("cross-cache slot aliasing")
						}
						c.Put(h)
					}
					held = held[:0]
				}
			}
			for _, h := range held {
				c.Put(h)
			}
		}(c, w)
	}
	wg.Wait()
	st := a.Snapshot()
	for cl, live := range st.LiveSlots {
		if live != 0 {
			t.Errorf("class %d: %d slots leaked", cl, live)
		}
	}
	if st.Refills == 0 {
		t.Error("expected central refill traffic")
	}
}

func BenchmarkGetPut(b *testing.B) {
	a := New(0)
	c := a.NewCache()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, _ := c.Get(24)
		c.Put(s)
	}
}
