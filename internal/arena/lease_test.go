package arena

import (
	"fmt"
	"sync"
	"testing"
)

func TestLeaseClassFor(t *testing.T) {
	cases := []struct {
		n, class int
	}{
		{1, 0}, {511, 0}, {512, 0},
		{513, 1}, {1024, 1},
		{1025, 2}, {2048, 2},
		{4096, 3}, {4097, 4},
		{32 << 10, 6}, {(32 << 10) + 1, 7}, {64 << 10, 7},
	}
	for _, c := range cases {
		if got := leaseClassFor(c.n); got != c.class {
			t.Errorf("leaseClassFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
	for cl := 0; cl < leaseClasses; cl++ {
		cb := leaseClassBytes(cl)
		if got := leaseClassFor(cb); got != cl {
			t.Errorf("leaseClassFor(leaseClassBytes(%d)=%d) = %d, want %d", cl, cb, got, cl)
		}
	}
	if leaseClassBytes(leaseClasses-1) != LeaseMaxBytes {
		t.Errorf("top class is %d bytes, want LeaseMaxBytes=%d",
			leaseClassBytes(leaseClasses-1), LeaseMaxBytes)
	}
}

func TestLeaserGetPutAccounting(t *testing.T) {
	l := NewLeaser()
	b := l.Get(700) // class 1: 1 KiB
	if len(b) != 0 || cap(b) != 1024 {
		t.Fatalf("Get(700): len=%d cap=%d, want 0/1024", len(b), cap(b))
	}
	if got := l.LeasedBytes(); got != 1024 {
		t.Fatalf("LeasedBytes after Get = %d, want 1024", got)
	}
	if l.HeldBytes() != 0 {
		t.Fatalf("HeldBytes with one buffer on lease = %d, want 0", l.HeldBytes())
	}
	l.Put(b)
	if got := l.LeasedBytes(); got != 0 {
		t.Fatalf("LeasedBytes after Put = %d, want 0", got)
	}
	if got := l.HeldBytes(); got != 1024 {
		t.Fatalf("HeldBytes after Put = %d, want 1024", got)
	}
	// The returned buffer is reused, capacity intact, length reset.
	b2 := l.Get(1000)
	if cap(b2) != 1024 || len(b2) != 0 {
		t.Fatalf("reused Get: len=%d cap=%d, want 0/1024", len(b2), cap(b2))
	}
	if l.HeldBytes() != 0 || l.LeasedBytes() != 1024 {
		t.Fatalf("held=%d leased=%d after reuse, want 0/1024", l.HeldBytes(), l.LeasedBytes())
	}
	l.Put(b2)
	if got := l.Leases(); got != 2 {
		t.Fatalf("Leases = %d, want 2", got)
	}
}

func TestLeaserFallbackBeyondMax(t *testing.T) {
	l := NewLeaser()
	b := l.Get(LeaseMaxBytes + 1)
	if cap(b) != LeaseMaxBytes+1 || len(b) != 0 {
		t.Fatalf("fallback Get: len=%d cap=%d", len(b), cap(b))
	}
	if l.LeasedBytes() != 0 {
		t.Fatalf("fallback counted as leased: %d", l.LeasedBytes())
	}
	if l.LeaseFallbacks() != 1 {
		t.Fatalf("LeaseFallbacks = %d, want 1", l.LeaseFallbacks())
	}
	// Put of a non-class capacity is a drop, not an accounting event.
	l.Put(b)
	if l.LeasedBytes() != 0 || l.HeldBytes() != 0 {
		t.Fatalf("fallback Put settled accounting: leased=%d held=%d",
			l.LeasedBytes(), l.HeldBytes())
	}
}

func TestLeaserPutNilAndOddCaps(t *testing.T) {
	l := NewLeaser()
	l.Put(nil)
	l.Put(make([]byte, 0, 777)) // not a class size: dropped silently
	if l.LeasedBytes() != 0 || l.HeldBytes() != 0 {
		t.Fatalf("nil/odd Put moved accounting: leased=%d held=%d",
			l.LeasedBytes(), l.HeldBytes())
	}
}

func TestLeaserRetainCap(t *testing.T) {
	l := NewLeaser()
	bufs := make([][]byte, classRetain+16)
	for i := range bufs {
		bufs[i] = l.Get(LeaseMinBytes)
	}
	for _, b := range bufs {
		l.Put(b)
	}
	// Only classRetain buffers are held; the rest went to the GC.
	wantHeld := int64(classRetain * LeaseMinBytes)
	if got := l.HeldBytes(); got != wantHeld {
		t.Fatalf("HeldBytes after over-retain churn = %d, want %d", got, wantHeld)
	}
	if l.LeasedBytes() != 0 {
		t.Fatalf("LeasedBytes after full return = %d, want 0", l.LeasedBytes())
	}
}

func TestLeaserConcurrentChurn(t *testing.T) {
	l := NewLeaser()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sizes := []int{64, 600, 4096, 30 << 10, LeaseMaxBytes}
			for i := 0; i < 2000; i++ {
				b := l.Get(sizes[(i+w)%len(sizes)])
				b = append(b, byte(i))
				l.Put(b)
			}
		}(w)
	}
	wg.Wait()
	if got := l.LeasedBytes(); got != 0 {
		t.Fatalf("LeasedBytes after churn = %d, want 0 (every lease returned)", got)
	}
	if l.HeldBytes() < 0 {
		t.Fatalf("HeldBytes went negative: %d", l.HeldBytes())
	}
	if l.Leases() != 8*2000 {
		t.Fatalf("Leases = %d, want %d", l.Leases(), 8*2000)
	}
}

func BenchmarkLeaserGetPut(b *testing.B) {
	for _, n := range []int{512, 4096, 64 << 10} {
		b.Run(fmt.Sprintf("size=%d", n), func(b *testing.B) {
			l := NewLeaser()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l.Put(l.Get(n))
			}
		})
	}
}
