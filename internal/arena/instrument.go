package arena

import (
	"fmt"

	"mutps/internal/obs"
)

// Instrument registers the arena's accounting with a metrics registry:
// total live bytes, per-class occupancy (live, ever-carved, and
// central-free slots), and the traffic counters (chunk allocations, cache
// refills/flushes, large-object fallbacks). All series are collection-time
// funcs over the arena's lock-free counters — scraping costs the hot path
// nothing.
func (a *Arena) Instrument(reg *obs.Registry) {
	reg.GaugeFunc("mutps_arena_live_bytes", "",
		"Bytes of item value storage currently held out of the arena (slot-size granularity).",
		func() float64 { return float64(a.Snapshot().LiveBytes) })
	for cl := 0; cl < NumClasses; cl++ {
		cl := cl
		label := fmt.Sprintf(`class="%d"`, classBytes(cl))
		reg.GaugeFunc("mutps_arena_live_slots", label,
			"Arena slots currently held by items, per size class.",
			func() float64 { return float64(a.liveSlots(cl)) })
		reg.CounterFunc("mutps_arena_carved_slots_total", label,
			"Arena slots ever carved from backing chunks, per size class.",
			func() float64 { return float64(a.classes[cl].carved.Load()) })
		reg.GaugeFunc("mutps_arena_central_free_slots", label,
			"Arena slots parked in the central free lists, per size class.",
			func() float64 { return float64(a.classes[cl].nfree.Load()) })
	}
	reg.CounterFunc("mutps_arena_chunks_total", "",
		"Backing chunks allocated from the Go heap.",
		func() float64 { return float64(a.chunks.Load()) })
	reg.CounterFunc("mutps_arena_refills_total", "",
		"Worker-cache refills from a central free list.",
		func() float64 { return float64(a.refills.Load()) })
	reg.CounterFunc("mutps_arena_flushes_total", "",
		"Worker-cache flushes back to a central free list.",
		func() float64 { return float64(a.flushes.Load()) })
	reg.CounterFunc("mutps_arena_fallbacks_total", "",
		"Allocations larger than the largest size class, served by the Go heap.",
		func() float64 { return float64(a.fallbacks.Load()) })
}

// liveSlots sums one class's live-slot count across every cache.
func (a *Arena) liveSlots(cl int) uint64 {
	a.mu.Lock()
	caches := a.caches
	a.mu.Unlock()
	var allocs, frees uint64
	for _, c := range caches {
		allocs += c.cls[cl].allocs.Load()
		frees += c.cls[cl].frees.Load()
	}
	if allocs <= frees {
		return 0
	}
	return allocs - frees
}
