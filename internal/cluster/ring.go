// Package cluster presents N independent mutps server processes as one
// logical keyspace: a consistent-hash routing layer with virtual nodes, an
// optional size-aware placement policy that keeps large objects off the
// shards serving small requests (the Minos insight: large values inflate
// small-request tail latency when they share queues), and a fan-out client
// that keeps one pipelined connection per shard full and batches multi-key
// gets into one wire frame per shard.
package cluster

import (
	"fmt"
	"sort"
)

// defaultVNodes is the virtual-node count per member when a Ring is built
// with vnodes <= 0. 128 points per member keeps the per-shard key share
// within a few percent of uniform at typical cluster sizes while the whole
// ring stays small enough to rebuild in microseconds.
const defaultVNodes = 128

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash   uint64
	member int // index into Ring.members
}

// Ring is a consistent-hash ring with virtual nodes. Members are identified
// by stable strings (shard addresses): a member's virtual-node positions
// depend only on its own name, so adding or removing one member remaps only
// the ~1/N key share adjacent to its points and leaves every other key in
// place.
//
// A Ring is immutable after construction from the caller's point of view:
// Add and Remove return a new Ring sharing nothing with the receiver, so a
// Ring in use by a client may be read from any goroutine without locking.
type Ring struct {
	vnodes  int
	members []string
	points  []ringPoint // sorted by hash
}

// NewRing builds a ring over members (each name must be unique and
// non-empty) with the given virtual nodes per member (<=0 selects the
// default).
func NewRing(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	seen := make(map[string]struct{}, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member name")
		}
		if _, dup := seen[m]; dup {
			return nil, fmt.Errorf("cluster: duplicate member %q", m)
		}
		seen[m] = struct{}{}
	}
	r := &Ring{vnodes: vnodes, members: append([]string(nil), members...)}
	r.rebuild()
	return r, nil
}

// rebuild recomputes the sorted point list from the member set.
func (r *Ring) rebuild() {
	r.points = make([]ringPoint, 0, len(r.members)*r.vnodes)
	for mi, m := range r.members {
		h := memberSeed(m)
		for v := 0; v < r.vnodes; v++ {
			h = mix64(h + uint64(v)*0x9e3779b97f4a7c15)
			r.points = append(r.points, ringPoint{hash: h, member: mi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// memberSeed hashes a member name with FNV-1a, then finalizes for
// avalanche so lexically close addresses ("host:7071", "host:7072") land
// on unrelated circle positions.
func memberSeed(m string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(m); i++ {
		h ^= uint64(m[i])
		h *= prime64
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer: a cheap full-avalanche bijection used
// both for vnode placement and for key hashing.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Locate returns the member owning key: the first virtual node clockwise
// from the key's circle position.
func (r *Ring) Locate(key uint64) string {
	return r.members[r.locateIndex(key)]
}

// LocateIndex returns the owning member's index into Members().
func (r *Ring) LocateIndex(key uint64) int { return r.locateIndex(key) }

func (r *Ring) locateIndex(key uint64) int {
	h := mix64(key)
	pts := r.points
	// First point with hash >= h, wrapping to pts[0].
	i := sort.Search(len(pts), func(i int) bool { return pts[i].hash >= h })
	if i == len(pts) {
		i = 0
	}
	return pts[i].member
}

// Members returns the ring's member names in construction order.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Add returns a new ring with member added; the receiver is unchanged.
func (r *Ring) Add(member string) (*Ring, error) {
	return NewRing(append(r.Members(), member), r.vnodes)
}

// Remove returns a new ring without member; the receiver is unchanged.
func (r *Ring) Remove(member string) (*Ring, error) {
	ms := r.Members()
	for i, m := range ms {
		if m == member {
			return NewRing(append(ms[:i], ms[i+1:]...), r.vnodes)
		}
	}
	return nil, fmt.Errorf("cluster: member %q not in ring", member)
}
