package cluster

import (
	"fmt"
	"sync"
)

// Router maps keys to shard indices. Without size-aware placement every
// key routes on one ring over all shards. With a size threshold configured
// the shard set splits in two: puts whose value meets the threshold route
// on a ring over the designated large-object shards, everything else on a
// ring over the remaining (small) shards — so a 4KB+ value never sits in a
// queue ahead of a 64B get and small-request tail latency stops paying for
// large-object service time (the Minos size-aware-sharding argument; our
// arena's size classes already make value size a first-class signal
// server-side).
//
// Placement must stay consistent for reads, and a get does not know the
// value's size, so the router keeps a client-side tracker of keys it has
// placed on the large set. Tracked keys read from the large ring directly;
// untracked keys read from the small ring first and fall back to one large
// probe on a miss (covering keys another client placed large). Puts that
// cross the threshold in either direction issue a companion delete to the
// other set so no stale copy can shadow the fresh value.
type Router struct {
	all       *Ring // size-aware off: one ring over every shard
	small     *Ring // size-aware on: ring over the small-object shards
	large     *Ring // size-aware on: ring over the large-object shards
	threshold int   // 0 = size-aware placement disabled
	shardOf   map[string]int
	tracked   keySet // keys this client placed on the large set
}

// NewRouter builds routing state over addrs. threshold <= 0 disables
// size-aware placement; otherwise largeShards (indices into addrs) is the
// large-object set, defaulting to the last shard when empty.
func NewRouter(addrs []string, vnodes, threshold int, largeShards []int) (*Router, error) {
	r := &Router{threshold: threshold, shardOf: make(map[string]int, len(addrs))}
	for i, a := range addrs {
		r.shardOf[a] = i
	}
	var err error
	if r.all, err = NewRing(addrs, vnodes); err != nil {
		return nil, err
	}
	if threshold <= 0 {
		return r, nil
	}
	if len(largeShards) == 0 {
		largeShards = []int{len(addrs) - 1}
	}
	isLarge := make([]bool, len(addrs))
	for _, i := range largeShards {
		if i < 0 || i >= len(addrs) {
			return nil, fmt.Errorf("cluster: large shard index %d out of range [0,%d)", i, len(addrs))
		}
		isLarge[i] = true
	}
	var smalls, larges []string
	for i, a := range addrs {
		if isLarge[i] {
			larges = append(larges, a)
		} else {
			smalls = append(smalls, a)
		}
	}
	if len(smalls) == 0 {
		return nil, fmt.Errorf("cluster: size-aware placement needs at least one small shard")
	}
	if r.small, err = NewRing(smalls, vnodes); err != nil {
		return nil, err
	}
	if r.large, err = NewRing(larges, vnodes); err != nil {
		return nil, err
	}
	return r, nil
}

// SizeAware reports whether size-aware placement is active.
func (r *Router) SizeAware() bool { return r.threshold > 0 }

// GetShard returns the shard to read key from and an optional fallback
// shard (-1 if none) to probe when the primary misses.
func (r *Router) GetShard(key uint64) (shard, fallback int) {
	if r.threshold <= 0 {
		return r.shardOf[r.all.Locate(key)], -1
	}
	if r.tracked.has(key) {
		return r.shardOf[r.large.Locate(key)], -1
	}
	return r.shardOf[r.small.Locate(key)], r.shardOf[r.large.Locate(key)]
}

// PutShard returns the shard a put of size bytes under key routes to, an
// optional companion-delete shard (-1 if none) that must be cleared of a
// stale copy, and whether the put was placed on the large-object set. It
// updates the large-key tracker.
func (r *Router) PutShard(key uint64, size int) (shard, companion int, large bool) {
	if r.threshold <= 0 {
		return r.shardOf[r.all.Locate(key)], -1, false
	}
	if size >= r.threshold {
		// The stale small copy must go: untracked gets read the small ring
		// first, so it would shadow the fresh large value.
		r.tracked.add(key)
		return r.shardOf[r.large.Locate(key)], r.shardOf[r.small.Locate(key)], true
	}
	if r.tracked.remove(key) {
		// The key shrank below the threshold: clear the large copy it used
		// to occupy.
		return r.shardOf[r.small.Locate(key)], r.shardOf[r.large.Locate(key)], false
	}
	return r.shardOf[r.small.Locate(key)], -1, false
}

// DeleteShards appends to dst every shard that may hold key — one without
// size-aware placement, the small and large owners with it — and clears
// the tracker.
func (r *Router) DeleteShards(dst []int, key uint64) []int {
	if r.threshold <= 0 {
		return append(dst, r.shardOf[r.all.Locate(key)])
	}
	r.tracked.remove(key)
	return append(dst, r.shardOf[r.small.Locate(key)], r.shardOf[r.large.Locate(key)])
}

// TrackedLarge reports whether this client has placed key on the large
// set (test hook).
func (r *Router) TrackedLarge(key uint64) bool { return r.tracked.has(key) }

// keySet is a lock-striped set of keys, sized for the rare large-object
// case: membership checks are one mutex + one map probe on the stripe.
type keySet struct {
	stripes [16]keyStripe
}

type keyStripe struct {
	mu sync.Mutex
	m  map[uint64]struct{}
}

func (s *keySet) stripe(k uint64) *keyStripe { return &s.stripes[mix64(k)&15] }

func (s *keySet) add(k uint64) {
	st := s.stripe(k)
	st.mu.Lock()
	if st.m == nil {
		st.m = make(map[uint64]struct{})
	}
	st.m[k] = struct{}{}
	st.mu.Unlock()
}

func (s *keySet) remove(k uint64) bool {
	st := s.stripe(k)
	st.mu.Lock()
	_, ok := st.m[k]
	if ok {
		delete(st.m, k)
	}
	st.mu.Unlock()
	return ok
}

func (s *keySet) has(k uint64) bool {
	st := s.stripe(k)
	st.mu.Lock()
	_, ok := st.m[k]
	st.mu.Unlock()
	return ok
}
