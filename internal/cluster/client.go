package cluster

import (
	"fmt"
	"strings"
	"sync/atomic"

	"mutps/internal/netserver"
	"mutps/internal/obs"
)

// Config configures a cluster Client. Only Addrs is required.
type Config struct {
	// Addrs lists the shard servers. Order is the shard index used by
	// LargeShards and the per-shard metrics labels.
	Addrs []string
	// VNodes is the consistent-hash virtual-node count per shard
	// (default 128).
	VNodes int
	// Inflight is the per-shard pipelined-connection window (default 128).
	Inflight int
	// MGetBatch caps the keys per mget wire frame (default 256, hard cap
	// netserver.MaxMGetKeys). Larger multi-gets split across frames.
	MGetBatch int
	// SizeThreshold, when > 0, enables size-aware placement: puts of
	// values >= this many bytes route to the LargeShards set.
	SizeThreshold int
	// LargeShards are indices into Addrs designating the large-object
	// shard set (default: the last shard) when SizeThreshold > 0.
	LargeShards []int
	// Registry receives the client's mutps_cluster_* metrics; nil creates
	// a private registry (reachable via Metrics).
	Registry *obs.Registry
}

// Client presents the shard set as one logical keyspace. It keeps one
// pipelined connection per shard and fans multi-key gets out as one
// batched mget frame per shard — the per-host batching that multi-node
// throughput comes from — while single-key ops route point-to-point on the
// consistent-hash ring. Safe for concurrent use; concurrent callers share
// the per-shard windows.
type Client struct {
	cfg    Config
	router *Router
	shards []*shard
	batch  int

	reg        *obs.Registry
	opsShard   []*obs.Counter
	mgetFrames *obs.Counter
	mgetKeys   *obs.Histogram
	fallbacks  *obs.Counter
	largePuts  *obs.Counter
	probes     *obs.Counter
}

// shard is one member server: its pipelined connection plus the sticky
// legacy flag set when the server rejects the mget op.
type shard struct {
	addr   string
	pc     *netserver.PipelineClient
	legacy atomic.Bool
}

// Dial connects to every shard and builds the routing state.
func Dial(cfg Config) (*Client, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("cluster: no shard addresses")
	}
	if cfg.Inflight <= 0 {
		cfg.Inflight = 128
	}
	batch := cfg.MGetBatch
	if batch <= 0 {
		batch = 256
	}
	if batch > netserver.MaxMGetKeys {
		batch = netserver.MaxMGetKeys
	}
	router, err := NewRouter(cfg.Addrs, cfg.VNodes, cfg.SizeThreshold, cfg.LargeShards)
	if err != nil {
		return nil, err
	}
	c := &Client{cfg: cfg, router: router, batch: batch}
	for _, addr := range cfg.Addrs {
		pc, err := netserver.DialPipeline(addr, cfg.Inflight)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: dial shard %s: %w", addr, err)
		}
		c.shards = append(c.shards, &shard{addr: addr, pc: pc})
	}
	c.reg = cfg.Registry
	if c.reg == nil {
		c.reg = obs.NewRegistry()
	}
	c.opsShard = make([]*obs.Counter, len(c.shards))
	for i := range c.shards {
		c.opsShard[i] = c.reg.Counter("mutps_cluster_ops_total",
			fmt.Sprintf(`shard="%d"`, i),
			"Wire operations sent to each shard (frames, not keys).", 4)
	}
	c.mgetFrames = c.reg.Counter("mutps_cluster_mget_frames_total", "",
		"Batched mget frames sent across all shards.", 4)
	c.mgetKeys = c.reg.Histogram("mutps_cluster_mget_keys_per_frame", "",
		"Keys carried per mget frame (per-shard fan-out batching factor).", 4)
	c.fallbacks = c.reg.Counter("mutps_cluster_mget_fallback_total", "",
		"MGet frames degraded to per-key pipelined gets (legacy server or in-protocol rejection).", 4)
	c.largePuts = c.reg.Counter("mutps_cluster_large_routed_total", "",
		"Puts routed to the large-object shard set by the size-aware policy.", 4)
	c.probes = c.reg.Counter("mutps_cluster_large_probe_total", "",
		"Get misses probed on the large-object set for untracked keys.", 4)
	return c, nil
}

// Metrics returns the registry carrying the client's mutps_cluster_*
// series.
func (c *Client) Metrics() *obs.Registry { return c.reg }

// Shards returns the shard count.
func (c *Client) Shards() int { return len(c.shards) }

// ShardOf returns the shard index a get for key routes to first (test and
// tooling hook).
func (c *Client) ShardOf(key uint64) int {
	si, _ := c.router.GetShard(key)
	return si
}

// Close tears down every shard connection; the first error wins.
func (c *Client) Close() error {
	var first error
	for _, sh := range c.shards {
		if err := sh.pc.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// do runs one synchronous op against shard si: send, flush, wait. The
// returned body is copied out of the pooled future, so it is caller-owned.
func (c *Client) do(si int, op byte, key uint64, payload []byte) (status byte, body []byte, err error) {
	sh := c.shards[si]
	f, err := sh.pc.Send(op, key, payload)
	if err != nil {
		return 0, nil, err
	}
	if !obs.Disabled {
		c.opsShard[si].Inc(0)
	}
	if err := sh.pc.Flush(); err != nil {
		// The future is completed by the client's close-on-write-failure
		// protocol; wait it out so it is never abandoned mid-read.
		f.Wait()
		f.Release()
		return 0, nil, err
	}
	st, b, err := f.Wait()
	if len(b) > 0 && err == nil {
		body = append([]byte(nil), b...)
	}
	f.Release()
	return st, body, err
}

// Get fetches key from its owning shard, probing the large-object set on a
// miss when size-aware placement is active and the key is untracked.
func (c *Client) Get(key uint64) ([]byte, bool, error) {
	si, fallback := c.router.GetShard(key)
	st, body, err := c.do(si, netserver.OpGet, key, nil)
	if err != nil {
		return nil, false, err
	}
	if st == netserver.StatusFound {
		return body, true, nil
	}
	if fallback >= 0 {
		if !obs.Disabled {
			c.probes.Inc(0)
		}
		st, body, err = c.do(fallback, netserver.OpGet, key, nil)
		if err != nil {
			return nil, false, err
		}
		if st == netserver.StatusFound {
			return body, true, nil
		}
	}
	return nil, false, nil
}

// Put stores val under key on the shard the placement policy selects,
// clearing a stale copy from the other shard set when the key crosses the
// size threshold.
func (c *Client) Put(key uint64, val []byte) error {
	si, companion, large := c.router.PutShard(key, len(val))
	if large && !obs.Disabled {
		c.largePuts.Inc(0)
	}
	if _, _, err := c.do(si, netserver.OpPut, key, val); err != nil {
		return err
	}
	if companion >= 0 {
		if _, _, err := c.do(companion, netserver.OpDelete, key, nil); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes key from every shard that may hold it, reporting whether
// any copy existed.
func (c *Client) Delete(key uint64) (bool, error) {
	var shards [2]int
	found := false
	for _, si := range c.router.DeleteShards(shards[:0], key) {
		st, _, err := c.do(si, netserver.OpDelete, key, nil)
		if err != nil {
			return false, err
		}
		found = found || st == netserver.StatusFound
	}
	return found, nil
}

// frame is one in-flight unit of an MGet fan-out: a batched mget wire
// frame (idxs positions answered positionally) or a single per-key get on
// a legacy shard.
type frame struct {
	sh     int
	fut    *netserver.Future
	idxs   []int
	perKey bool
}

// MGet fetches keys from across the cluster with one batched mget frame
// per shard per MGetBatch keys: keys group by owning shard, each group
// rides the shard's pipelined window as whole frames, and every window
// fills concurrently — the cross-host fan-out that aggregate throughput
// comes from. Results are positional: vals[i]/found[i] answer keys[i],
// with vals caller-owned. Shards that reject the mget op degrade to
// per-key pipelined gets transparently and are remembered as legacy.
func (c *Client) MGet(keys []uint64) (vals [][]byte, found []bool, err error) {
	vals = make([][]byte, len(keys))
	found = make([]bool, len(keys))
	if len(keys) == 0 {
		return vals, found, nil
	}
	groups := make([][]int, len(c.shards))
	var fbs []int
	needFallback := false
	if c.router.SizeAware() {
		fbs = make([]int, len(keys))
	}
	for i, k := range keys {
		si, fb := c.router.GetShard(k)
		groups[si] = append(groups[si], i)
		if fbs != nil {
			fbs[i] = fb
			if fb >= 0 {
				needFallback = true
			}
		}
	}
	if err := c.fanout(keys, groups, vals, found); err != nil {
		return nil, nil, err
	}
	if needFallback {
		// Second round: untracked keys that missed may live on the
		// large-object set (placed there by another client).
		probe := make([][]int, len(c.shards))
		any := false
		for i := range keys {
			if !found[i] && fbs[i] >= 0 {
				probe[fbs[i]] = append(probe[fbs[i]], i)
				any = true
			}
		}
		if any {
			if !obs.Disabled {
				c.probes.Inc(0)
			}
			if err := c.fanout(keys, probe, vals, found); err != nil {
				return nil, nil, err
			}
		}
	}
	return vals, found, nil
}

// fanout sends one round of grouped gets — mget frames on current shards,
// per-key gets on legacy ones — flushes every touched window once, then
// retires the frames in issue order and scatters results into vals/found.
func (c *Client) fanout(keys []uint64, groups [][]int, vals [][]byte, found []bool) error {
	var frames []frame
	var keybuf []uint64
	var payload []byte
	touched := make([]bool, len(c.shards))
	for si, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		touched[si] = true
		sh := c.shards[si]
		if sh.legacy.Load() {
			for j := range idxs {
				f, err := sh.pc.Send(netserver.OpGet, keys[idxs[j]], nil)
				if err != nil {
					c.drainFrames(frames)
					return err
				}
				if !obs.Disabled {
					c.opsShard[si].Inc(0)
				}
				frames = append(frames, frame{sh: si, fut: f, idxs: idxs[j : j+1], perKey: true})
			}
			continue
		}
		for start := 0; start < len(idxs); start += c.batch {
			end := start + c.batch
			if end > len(idxs) {
				end = len(idxs)
			}
			sub := idxs[start:end]
			keybuf = keybuf[:0]
			for _, i := range sub {
				keybuf = append(keybuf, keys[i])
			}
			payload = netserver.AppendMGetRequest(payload[:0], keybuf)
			f, err := sh.pc.Send(netserver.OpMGet, 0, payload)
			if err != nil {
				c.drainFrames(frames)
				return err
			}
			if !obs.Disabled {
				c.opsShard[si].Inc(0)
				c.mgetFrames.Inc(0)
				c.mgetKeys.Record(0, uint64(len(sub)))
			}
			frames = append(frames, frame{sh: si, fut: f, idxs: sub})
		}
	}
	for si, t := range touched {
		if t {
			c.shards[si].pc.Flush()
		}
	}
	var firstErr error
	for fi := range frames {
		fr := &frames[fi]
		st, body, err := fr.fut.Wait()
		switch {
		case err == nil:
			if fr.perKey {
				i := fr.idxs[0]
				if st == netserver.StatusFound {
					vals[i] = append([]byte(nil), body...)
					found[i] = true
				}
			} else if derr := scatterMGet(body, fr.idxs, vals, found); derr != nil && firstErr == nil {
				firstErr = derr
			}
		case st == netserver.StatusError && !fr.perKey:
			// In-protocol rejection of an mget frame: an old server. Mark it
			// legacy on the canonical "unknown op" reply so later rounds skip
			// the wasted frame, and re-fetch this frame's keys per key either
			// way — if the error was something else (say, shutdown), the
			// retries surface it.
			if strings.Contains(err.Error(), "unknown op") {
				c.shards[fr.sh].legacy.Store(true)
			}
			if !obs.Disabled {
				c.fallbacks.Inc(0)
			}
			if derr := c.perKeyRetry(keys, fr, vals, found); derr != nil && firstErr == nil {
				firstErr = derr
			}
		default:
			if firstErr == nil {
				firstErr = err
			}
		}
		fr.fut.Release()
	}
	return firstErr
}

// scatterMGet decodes one mget response body into the positions the frame
// covered. Values are copied out of the pooled response buffer.
func scatterMGet(body []byte, idxs []int, vals [][]byte, found []bool) error {
	fvals, ffound, err := netserver.DecodeMGet(body)
	if err != nil {
		return err
	}
	if len(fvals) != len(idxs) {
		return fmt.Errorf("cluster: mget response carried %d entries for %d keys", len(fvals), len(idxs))
	}
	for j, i := range idxs {
		if ffound[j] {
			vals[i] = fvals[j]
			found[i] = true
		}
	}
	return nil
}

// perKeyRetry re-fetches one frame's keys as individual pipelined gets on
// the same shard (the mget degradation path for legacy servers).
func (c *Client) perKeyRetry(keys []uint64, fr *frame, vals [][]byte, found []bool) error {
	sh := c.shards[fr.sh]
	futs := make([]*netserver.Future, 0, len(fr.idxs))
	for _, i := range fr.idxs {
		f, err := sh.pc.Send(netserver.OpGet, keys[i], nil)
		if err != nil {
			for _, pf := range futs {
				pf.Wait()
				pf.Release()
			}
			return err
		}
		if !obs.Disabled {
			c.opsShard[fr.sh].Inc(0)
		}
		futs = append(futs, f)
	}
	sh.pc.Flush()
	var firstErr error
	for j, f := range futs {
		st, body, err := f.Wait()
		i := fr.idxs[j]
		switch {
		case err == nil && st == netserver.StatusFound:
			vals[i] = append([]byte(nil), body...)
			found[i] = true
		case err != nil && firstErr == nil:
			firstErr = err
		}
		f.Release()
	}
	return firstErr
}

// drainFrames waits out and releases already-sent futures after a send
// failure mid-fan-out, so no pooled future is abandoned.
func (c *Client) drainFrames(frames []frame) {
	for i := range frames {
		frames[i].fut.Wait()
		frames[i].fut.Release()
	}
}
