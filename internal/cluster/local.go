package cluster

import (
	"fmt"
	"net"

	"mutps/internal/kvcore"
	"mutps/internal/netserver"
)

// LocalOptions configures the stores behind an in-process local cluster.
// Zero values take the kvcore defaults.
type LocalOptions struct {
	Engine    kvcore.Engine
	Workers   int
	CRWorkers int
	HotItems  int
	Inflight  int // per-connection server window
	Addrs     []string
}

// Local is an in-process shard set: N independent stores, each behind its
// own netserver listener — the multi-shard harness for tests, benchmarks,
// and single-machine cluster runs (cmd/mutps-cluster). The shards share
// nothing but the process: separate indexes, separate worker pools,
// separate arenas, so they model separate server processes up to kernel
// scheduling.
type Local struct {
	stores  []*kvcore.Store
	servers []*netserver.Server
	addrs   []string
}

// LaunchLocal starts n shards. Each listens on opt.Addrs[i] when provided
// (n addresses required then), else on an ephemeral loopback port.
func LaunchLocal(n int, opt LocalOptions) (*Local, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least one shard")
	}
	if len(opt.Addrs) != 0 && len(opt.Addrs) != n {
		return nil, fmt.Errorf("cluster: %d addrs for %d shards", len(opt.Addrs), n)
	}
	if opt.Workers == 0 {
		opt.Workers = 4
	}
	if opt.CRWorkers == 0 {
		opt.CRWorkers = 1
	}
	l := &Local{}
	for i := 0; i < n; i++ {
		store, err := kvcore.Open(kvcore.Config{
			Engine:    opt.Engine,
			Workers:   opt.Workers,
			CRWorkers: opt.CRWorkers,
			HotItems:  opt.HotItems,
		})
		if err != nil {
			l.Close()
			return nil, err
		}
		l.stores = append(l.stores, store)
		addr := "127.0.0.1:0"
		if len(opt.Addrs) > 0 {
			addr = opt.Addrs[i]
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("cluster: shard %d listen %s: %w", i, addr, err)
		}
		srv := netserver.ServeConfig(store, ln, netserver.Config{MaxInflight: opt.Inflight})
		l.servers = append(l.servers, srv)
		l.addrs = append(l.addrs, srv.Addr().String())
	}
	return l, nil
}

// Addrs returns each shard's listen address, shard-index order.
func (l *Local) Addrs() []string { return append([]string(nil), l.addrs...) }

// Store returns shard i's store (preloading, metrics scraping in tests).
func (l *Local) Store(i int) *kvcore.Store { return l.stores[i] }

// Server returns shard i's network server.
func (l *Local) Server(i int) *netserver.Server { return l.servers[i] }

// Close stops every server and store.
func (l *Local) Close() {
	for _, s := range l.servers {
		s.Close()
	}
	for _, st := range l.stores {
		st.Close()
	}
}
