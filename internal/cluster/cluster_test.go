package cluster

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"

	"mutps/internal/netserver"
	"mutps/internal/obs"
)

func launch(t *testing.T, n int) (*Local, *Client) {
	t.Helper()
	return launchCfg(t, n, Config{})
}

func launchCfg(t *testing.T, n int, cfg Config) (*Local, *Client) {
	t.Helper()
	l, err := LaunchLocal(n, LocalOptions{Workers: 3, CRWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Addrs = l.Addrs()
	c, err := Dial(cfg)
	if err != nil {
		l.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		l.Close()
	})
	return l, c
}

// TestClusterRoundTrip spawns N in-process netservers and verifies that
// every key routes to exactly one shard and round-trips through the
// cluster client: the value is readable via the cluster, present on the
// routed shard's store, and absent from every other shard.
func TestClusterRoundTrip(t *testing.T) {
	const nShards, nKeys = 3, 300
	l, c := launch(t, nShards)
	for k := uint64(0); k < nKeys; k++ {
		if err := c.Put(k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	perShard := make([]int, nShards)
	for k := uint64(0); k < nKeys; k++ {
		v, ok, err := c.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", k) {
			t.Fatalf("cluster get %d: %q %v %v", k, v, ok, err)
		}
		holders := 0
		for s := 0; s < nShards; s++ {
			if _, found, err := l.Store(s).Get(k); err != nil {
				t.Fatal(err)
			} else if found {
				holders++
				if s != c.ShardOf(k) {
					t.Fatalf("key %d held by shard %d but routed to %d", k, s, c.ShardOf(k))
				}
			}
		}
		if holders != 1 {
			t.Fatalf("key %d held by %d shards, want exactly 1", k, holders)
		}
		perShard[c.ShardOf(k)]++
	}
	for s, n := range perShard {
		if n == 0 {
			t.Errorf("shard %d received no keys out of %d", s, nKeys)
		}
	}
	// Deletes route the same way.
	if ok, err := c.Delete(7); err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if _, ok, _ := c.Get(7); ok {
		t.Fatal("key 7 still readable after delete")
	}
}

func TestClusterMGet(t *testing.T) {
	const nShards = 3
	_, c := launchCfg(t, nShards, Config{MGetBatch: 16})
	for k := uint64(0); k < 200; k += 2 {
		if err := c.Put(k, []byte(fmt.Sprintf("m%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = uint64(i)
	}
	vals, found, err := c.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		want := k%2 == 0
		if found[i] != want {
			t.Fatalf("key %d: found=%v want %v", k, found[i], want)
		}
		if want && string(vals[i]) != fmt.Sprintf("m%d", k) {
			t.Fatalf("key %d: %q", k, vals[i])
		}
	}
	// The fan-out histogram must show per-shard grouping: with 200 keys,
	// 3 shards, and batch 16, frames carry multiple keys each.
	if !obs.Disabled {
		m := c.Metrics().SnapshotMap()
		frames := m["mutps_cluster_mget_frames_total"]
		if frames == 0 {
			t.Fatal("no mget frames recorded")
		}
		avg := 200 / frames
		if avg < 2 {
			t.Errorf("avg keys/frame %.1f — fan-out not batching", avg)
		}
	}
}

func TestClusterMGetConcurrent(t *testing.T) {
	_, c := launchCfg(t, 2, Config{MGetBatch: 32})
	for k := uint64(0); k < 128; k++ {
		if err := c.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			keys := make([]uint64, 64)
			for round := 0; round < 20; round++ {
				for i := range keys {
					keys[i] = uint64((g*17 + round*31 + i) % 128)
				}
				vals, found, err := c.MGet(keys)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				for i, k := range keys {
					if !found[i] || len(vals[i]) != 1 || vals[i][0] != byte(k) {
						t.Errorf("goroutine %d key %d: found=%v val=%v", g, k, found[i], vals[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// legacyServer is a minimal pre-mget protocol server: get/put out of a
// map, any other op rejected with the canonical "unknown op" status-error
// — exactly what an old mutps-server replies. It lets the fallback test
// run against a true legacy peer without resurrecting old code.
type legacyServer struct {
	ln net.Listener
	mu sync.Mutex
	m  map[uint64][]byte
	wg sync.WaitGroup
}

func startLegacyServer(t *testing.T) *legacyServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &legacyServer{ln: ln, m: map[uint64][]byte{}}
	s.wg.Add(1)
	go s.accept()
	t.Cleanup(func() {
		ln.Close()
		s.wg.Wait()
	})
	return s
}

func (s *legacyServer) accept() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *legacyServer) serve(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	var hdr [13]byte
	reply := func(status byte, payload []byte) bool {
		var rh [5]byte
		rh[0] = status
		binary.LittleEndian.PutUint32(rh[1:5], uint32(len(payload)))
		if _, err := w.Write(rh[:]); err != nil {
			return false
		}
		if _, err := w.Write(payload); err != nil {
			return false
		}
		return w.Flush() == nil
	}
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		op := hdr[0]
		key := binary.LittleEndian.Uint64(hdr[1:9])
		plen := binary.LittleEndian.Uint32(hdr[9:13])
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return
		}
		switch op {
		case netserver.OpGet:
			s.mu.Lock()
			v, ok := s.m[key]
			s.mu.Unlock()
			if ok {
				if !reply(netserver.StatusFound, v) {
					return
				}
			} else if !reply(netserver.StatusNotFound, nil) {
				return
			}
		case netserver.OpPut:
			s.mu.Lock()
			s.m[key] = bytes.Clone(payload)
			s.mu.Unlock()
			if !reply(netserver.StatusFound, nil) {
				return
			}
		default:
			if !reply(netserver.StatusError, []byte(fmt.Sprintf("unknown op %d", op))) {
				return
			}
		}
	}
}

// TestClusterLegacyFallback mixes a current shard with a legacy shard that
// rejects the mget op: the client must degrade that shard's frames to
// per-key pipelined gets, remember the downgrade, and keep every result
// positionally correct — the stats2 versioning pattern applied to mget.
func TestClusterLegacyFallback(t *testing.T) {
	l, err := LaunchLocal(1, LocalOptions{Workers: 3, CRWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	legacy := startLegacyServer(t)
	addrs := append(l.Addrs(), legacy.ln.Addr().String())
	c, err := Dial(Config{Addrs: addrs, MGetBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for k := uint64(0); k < 100; k++ {
		if err := c.Put(k, []byte(fmt.Sprintf("f%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	legacyShard := -1
	for k := uint64(0); k < 100; k++ {
		if c.cfg.Addrs[c.ShardOf(k)] == legacy.ln.Addr().String() {
			legacyShard = c.ShardOf(k)
			break
		}
	}
	if legacyShard == -1 {
		t.Skip("no key routed to the legacy shard (ring imbalance at this size)")
	}
	keys := make([]uint64, 100)
	for i := range keys {
		keys[i] = uint64(i)
	}
	for round := 0; round < 2; round++ {
		vals, found, err := c.MGet(keys)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i, k := range keys {
			if !found[i] || string(vals[i]) != fmt.Sprintf("f%d", k) {
				t.Fatalf("round %d key %d: found=%v val=%q", round, k, found[i], vals[i])
			}
		}
	}
	if !c.shards[legacyShard].legacy.Load() {
		t.Error("legacy shard not remembered as legacy after rejected mget")
	}
	if !obs.Disabled {
		m := c.Metrics().SnapshotMap()
		if m["mutps_cluster_mget_fallback_total"] == 0 {
			t.Error("fallback counter did not move")
		}
	}
}

// TestSizeAwarePlacement verifies the Minos-style routing: small values
// stay on the small shard set, threshold-crossing puts move to the large
// set (with the stale small copy cleared), shrinking moves back, and reads
// stay correct throughout — including for a second client with no placement
// tracker, which must find large keys via the miss-probe path.
func TestSizeAwarePlacement(t *testing.T) {
	const nShards = 3
	l, err := LaunchLocal(nShards, LocalOptions{Workers: 3, CRWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cfg := Config{
		Addrs:         l.Addrs(),
		SizeThreshold: 1024,
		LargeShards:   []int{nShards - 1},
	}
	c, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	small := bytes.Repeat([]byte{7}, 64)
	big := bytes.Repeat([]byte{9}, 4096)

	// Small values never land on the large shard.
	for k := uint64(0); k < 50; k++ {
		if err := c.Put(k, small); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 50; k++ {
		if _, found, _ := l.Store(nShards - 1).Get(k); found {
			t.Fatalf("small key %d landed on the large shard", k)
		}
	}
	// Large values land only on the large shard.
	for k := uint64(100); k < 120; k++ {
		if err := c.Put(k, big); err != nil {
			t.Fatal(err)
		}
		if !c.router.TrackedLarge(k) {
			t.Fatalf("key %d not tracked large after large put", k)
		}
	}
	for k := uint64(100); k < 120; k++ {
		if _, found, _ := l.Store(nShards - 1).Get(k); !found {
			t.Fatalf("large key %d missing from the large shard", k)
		}
		v, ok, err := c.Get(k)
		if err != nil || !ok || len(v) != len(big) {
			t.Fatalf("cluster get of large key %d: %v %v len=%d", k, ok, err, len(v))
		}
	}
	// Crossing up: a small key regrown large must read back fresh (the
	// stale small copy is companion-deleted).
	if err := c.Put(3, big); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := c.Get(3); !ok || len(v) != len(big) {
		t.Fatalf("key 3 after growth: ok=%v len=%d", ok, len(v))
	}
	foundSmall := false
	for s := 0; s < nShards-1; s++ {
		if _, f, _ := l.Store(s).Get(3); f {
			foundSmall = true
		}
	}
	if foundSmall {
		t.Fatal("stale small copy of key 3 survived growth to large")
	}
	// Crossing down: shrink back below the threshold.
	if err := c.Put(3, small); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := c.Get(3); !ok || len(v) != len(small) {
		t.Fatalf("key 3 after shrink: ok=%v len=%d", ok, len(v))
	}
	if _, f, _ := l.Store(nShards - 1).Get(3); f {
		t.Fatal("stale large copy of key 3 survived shrink")
	}
	if c.router.TrackedLarge(3) {
		t.Fatal("key 3 still tracked large after shrink")
	}

	// A fresh client (empty tracker) must still read large keys via the
	// miss-probe, and its MGet must resolve a mix of small and large keys.
	c2, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if v, ok, err := c2.Get(110); err != nil || !ok || len(v) != len(big) {
		t.Fatalf("fresh client get of large key: %v %v len=%d", ok, err, len(v))
	}
	mixed := []uint64{1, 110, 2, 111, 999}
	vals, found, err := c2.MGet(mixed)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := []int{len(small), len(big), len(small), len(big), 0}
	for i, k := range mixed {
		if k == 999 {
			if found[i] {
				t.Fatal("missing key reported found")
			}
			continue
		}
		if !found[i] || len(vals[i]) != wantLen[i] {
			t.Fatalf("mixed mget key %d: found=%v len=%d want %d", k, found[i], len(vals[i]), wantLen[i])
		}
	}
	// Delete clears both sets.
	if ok, err := c.Delete(110); err != nil || !ok {
		t.Fatalf("delete large: %v %v", ok, err)
	}
	if _, ok, _ := c.Get(110); ok {
		t.Fatal("large key readable after delete")
	}
}
