package cluster

import (
	"fmt"
	"testing"
)

func ringMembers(n int) []string {
	ms := make([]string, n)
	for i := range ms {
		ms[i] = fmt.Sprintf("10.0.0.%d:7070", i+1)
	}
	return ms
}

func TestRingDeterministic(t *testing.T) {
	a, err := NewRing(ringMembers(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(ringMembers(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 10_000; k++ {
		if a.Locate(k) != b.Locate(k) {
			t.Fatalf("key %d: %s vs %s — ring must be deterministic", k, a.Locate(k), b.Locate(k))
		}
	}
}

// TestRingUniformity checks the key-distribution bound: with 128 vnodes
// per member, every shard's share of a large uniform keyspace must be
// within ±35% of the fair share. (Consistent hashing with v vnodes has
// relative stddev ≈ 1/√v ≈ 9%; ±35% is ≈4σ, loose enough to be stable
// across hash tweaks and tight enough to catch a broken point placement.)
func TestRingUniformity(t *testing.T) {
	const nKeys = 200_000
	for _, nShards := range []int{2, 4, 8} {
		r, err := NewRing(ringMembers(nShards), 128)
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[string]int)
		for k := uint64(0); k < nKeys; k++ {
			counts[r.Locate(k)]++
		}
		if len(counts) != nShards {
			t.Fatalf("%d shards: only %d received keys", nShards, len(counts))
		}
		fair := float64(nKeys) / float64(nShards)
		for m, n := range counts {
			dev := (float64(n) - fair) / fair
			if dev > 0.35 || dev < -0.35 {
				t.Errorf("%d shards: %s holds %d keys (fair %.0f, deviation %+.1f%%)",
					nShards, m, n, fair, dev*100)
			}
		}
	}
}

// TestRingRemappingOnAdd checks the consistent-hashing contract: growing
// the ring from N to N+1 members remaps at most ~1/(N+1) of the keyspace
// (the new member's fair share), plus slack for vnode variance — not the
// ~N/(N+1) a modulo-hash scheme would remap.
func TestRingRemappingOnAdd(t *testing.T) {
	const nKeys = 100_000
	for _, n := range []int{2, 4, 8} {
		before, err := NewRing(ringMembers(n), 128)
		if err != nil {
			t.Fatal(err)
		}
		after, err := before.Add("10.0.1.1:7070")
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for k := uint64(0); k < nKeys; k++ {
			if before.Locate(k) != after.Locate(k) {
				moved++
			}
		}
		frac := float64(moved) / nKeys
		bound := 1.0/float64(n+1) + 0.05
		if frac > bound {
			t.Errorf("add to %d members: %.1f%% of keys remapped, bound %.1f%%",
				n, frac*100, bound*100)
		}
		if moved == 0 {
			t.Errorf("add to %d members: no keys remapped — new member gets no load", n)
		}
	}
}

// TestRingRemappingOnRemove is the symmetric bound: removing one of N
// members remaps only that member's ~1/N share, and every remapped key
// belonged to the removed member.
func TestRingRemappingOnRemove(t *testing.T) {
	const nKeys = 100_000
	for _, n := range []int{3, 5, 8} {
		members := ringMembers(n)
		before, err := NewRing(members, 128)
		if err != nil {
			t.Fatal(err)
		}
		victim := members[n/2]
		after, err := before.Remove(victim)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for k := uint64(0); k < nKeys; k++ {
			b, a := before.Locate(k), after.Locate(k)
			if b != a {
				moved++
				if b != victim {
					t.Fatalf("key %d moved %s→%s but %s was not removed", k, b, a, victim)
				}
			}
		}
		frac := float64(moved) / nKeys
		bound := 1.0/float64(n) + 0.05
		if frac > bound {
			t.Errorf("remove from %d members: %.1f%% remapped, bound %.1f%%", n, frac*100, bound*100)
		}
	}
}

func TestRingRejectsBadMembers(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Error("empty member name accepted")
	}
	r, _ := NewRing([]string{"a", "b"}, 0)
	if _, err := r.Remove("zzz"); err == nil {
		t.Error("removing unknown member accepted")
	}
}
