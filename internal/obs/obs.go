// Package obs is the store's allocation-free observability substrate:
// sharded cache-line-padded counters, lock-free log₂ latency histograms,
// a registry that merges per-worker shards into named snapshots, and two
// exporters (Prometheus text over HTTP, and the versioned stats payload
// internal/netserver serves over the store's own wire protocol).
//
// Design rules, in priority order:
//
//  1. The record path never allocates and never touches a shared cache
//     line: every hot instrument is sharded per worker (or per
//     connection), each shard padded to its own line, and updates are
//     single atomic adds. AllocsPerRun tests gate this.
//  2. Reads are merge-on-demand: Value and Snapshot sum the shards, so
//     scraping /metrics costs the scraper, not the workers.
//  3. The whole package compiles away under the obs_off build tag
//     (Disabled is a constant, so the compiler removes the guarded
//     branches), which is how the CI overhead guard measures the cost of
//     instrumentation itself.
package obs

import "sync/atomic"

// cell is one counter shard padded to a 64-byte cache line so per-worker
// increments never bounce a line between cores.
type cell struct {
	v atomic.Uint64
	_ [56]byte
}

// shardCount rounds n up to a power of two (minimum 1) so shard selection
// is a mask, never a modulo, and any int (worker id, key hash, connection
// id) is a valid shard argument.
func shardCount(n int) int {
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// Counter is a monotonically increasing sharded counter. Writers pick a
// shard (their worker id, or any cheap per-goroutine value); readers sum
// all shards. The zero Counter is not usable; call NewCounter.
type Counter struct {
	shards []cell
	mask   uint32
}

// NewCounter creates a counter with at least the given shard count
// (rounded up to a power of two).
func NewCounter(shards int) *Counter {
	n := shardCount(shards)
	return &Counter{shards: make([]cell, n), mask: uint32(n - 1)}
}

// Inc adds one to the counter on the caller's shard.
func (c *Counter) Inc(shard int) {
	if Disabled {
		return
	}
	c.shards[uint32(shard)&c.mask].v.Add(1)
}

// Add adds n to the counter on the caller's shard.
func (c *Counter) Add(shard int, n uint64) {
	if Disabled {
		return
	}
	c.shards[uint32(shard)&c.mask].v.Add(n)
}

// Value merges the shards.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is a settable instantaneous value (queue depth, connection
// count). Gauges are updated off the per-request hot path, so one atomic
// without sharding suffices.
type Gauge struct {
	v atomic.Int64
}

// NewGauge creates a gauge at zero.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores the current value.
func (g *Gauge) Set(v int64) {
	if Disabled {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (use negative deltas to decrease).
func (g *Gauge) Add(delta int64) {
	if Disabled {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }
