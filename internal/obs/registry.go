package obs

import (
	"fmt"
	"sort"
	"sync"
)

// metric kinds.
const (
	kindCounter = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

// series is one labelled instrument inside a family.
type series struct {
	labels string // rendered label pairs, e.g. `op="get"`; "" for none
	kind   int
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family groups the series sharing a metric name, so the text exporter
// emits one HELP/TYPE header per name as the exposition format requires.
type family struct {
	name   string
	help   string
	kind   int
	series []*series
}

// Registry is a named collection of instruments. Registration is
// idempotent: asking for a (name, labels) pair that already exists
// returns the existing instrument, so layers that may be constructed
// twice against one store (e.g. two netservers) share series instead of
// colliding. Registration takes a lock; the instruments themselves are
// the lock-free types above.
type Registry struct {
	mu    sync.Mutex
	fams  []*family
	byKey map[string]*series
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*series{}}
}

// lookup finds or creates the (name, labels) series of the given kind.
func (r *Registry) lookup(name, labels, help string, kind int) (*series, bool) {
	key := name + "{" + labels + "}"
	if s, ok := r.byKey[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different kind", key))
		}
		return s, true
	}
	var fam *family
	for _, f := range r.fams {
		if f.name == name {
			fam = f
			break
		}
	}
	if fam == nil {
		fam = &family{name: name, help: help, kind: kind}
		r.fams = append(r.fams, fam)
	} else if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric family %s holds mixed kinds", name))
	}
	s := &series{labels: labels, kind: kind}
	fam.series = append(fam.series, s)
	r.byKey[key] = s
	return s, false
}

// Counter registers (or retrieves) a sharded counter.
func (r *Registry) Counter(name, labels, help string, shards int) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.lookup(name, labels, help, kindCounter)
	if !ok {
		s.c = NewCounter(shards)
	}
	return s.c
}

// Gauge registers (or retrieves) a gauge.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.lookup(name, labels, help, kindGauge)
	if !ok {
		s.g = NewGauge()
	}
	return s.g
}

// Histogram registers (or retrieves) a sharded histogram.
func (r *Registry) Histogram(name, labels, help string, shards int) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.lookup(name, labels, help, kindHistogram)
	if !ok {
		s.h = NewHistogram(shards)
	}
	return s.h
}

// FindHistogram returns the histogram already registered under (name,
// labels), without creating one. It lets a layer that did not register
// an instrument (e.g. the tuner controller reading the netserver's
// latency families) tap its _sum/_count feed.
func (r *Registry) FindHistogram(name, labels string) (*Histogram, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byKey[name+"{"+labels+"}"]
	if !ok || s.kind != kindHistogram {
		return nil, false
	}
	return s.h, true
}

// CounterFunc registers a computed cumulative metric: fn is called at
// collection time (scrapes and snapshots), never on the hot path. Useful
// for counters a lower layer already keeps as plain atomics.
func (r *Registry) CounterFunc(name, labels, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.lookup(name, labels, help, kindCounterFunc); !ok {
		s.fn = fn
	}
}

// GaugeFunc registers a computed instantaneous metric (queue depth,
// occupancy, hit ratio), called at collection time.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.lookup(name, labels, help, kindGaugeFunc); !ok {
		s.fn = fn
	}
}

// Sample is one flattened scalar in a registry snapshot: counters and
// gauges keep their value; each histogram contributes _count, _sum, _p50,
// _p99, and _max series so wire consumers get tails (and means, via
// _sum/_count) without shipping buckets.
type Sample struct {
	Name  string // full series name including labels, e.g. `x_total{op="get"}`
	Value float64
}

// seriesName renders the full series name.
func seriesName(fam string, labels string) string {
	if labels == "" {
		return fam
	}
	return fam + "{" + labels + "}"
}

// Snapshot flattens every registered metric into name/value samples, in
// registration order (histogram-derived samples sorted within a series).
// This is the payload the versioned netserver stats op serves.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Sample
	for _, f := range r.fams {
		for _, s := range f.series {
			n := seriesName(f.name, s.labels)
			switch s.kind {
			case kindCounter:
				out = append(out, Sample{n, float64(s.c.Value())})
			case kindGauge:
				out = append(out, Sample{n, float64(s.g.Value())})
			case kindCounterFunc, kindGaugeFunc:
				out = append(out, Sample{n, s.fn()})
			case kindHistogram:
				snap := s.h.Snapshot()
				out = append(out,
					Sample{seriesName(f.name+"_count", s.labels), float64(snap.Count)},
					Sample{seriesName(f.name+"_sum", s.labels), float64(snap.Sum)},
					Sample{seriesName(f.name+"_p50", s.labels), float64(snap.Quantile(0.50))},
					Sample{seriesName(f.name+"_p99", s.labels), float64(snap.Quantile(0.99))},
					Sample{seriesName(f.name+"_max", s.labels), float64(snap.Max)},
				)
			}
		}
	}
	return out
}

// SnapshotMap returns the same flattening as a map for lookup-style
// consumers (tests, the CLI).
func (r *Registry) SnapshotMap() map[string]float64 {
	m := map[string]float64{}
	for _, s := range r.Snapshot() {
		m[s.Name] = s.Value
	}
	return m
}

// Names returns the sorted registered family names (diagnostics).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, len(r.fams))
	for i, f := range r.fams {
		names[i] = f.name
	}
	sort.Strings(names)
	return names
}
