package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// promKind maps metric kinds to Prometheus TYPE strings.
func promKind(kind int) string {
	switch kind {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE header per family, then each
// series; histograms as cumulative `_bucket{le="..."}` series plus _sum
// and _count. Buckets above the highest occupied one are elided (the
// cumulative encoding keeps the exposition exact).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, promKind(f.kind))
		for _, s := range f.series {
			switch s.kind {
			case kindCounter:
				writeSample(bw, f.name, s.labels, "", float64(s.c.Value()))
			case kindGauge:
				writeSample(bw, f.name, s.labels, "", float64(s.g.Value()))
			case kindCounterFunc, kindGaugeFunc:
				writeSample(bw, f.name, s.labels, "", s.fn())
			case kindHistogram:
				writeHistogram(bw, f.name, s.labels, s.h.Snapshot())
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one series line, splicing an extra label (the
// histogram `le`) after any static labels.
func writeSample(w *bufio.Writer, name, labels, extra string, v float64) {
	w.WriteString(name)
	if labels != "" || extra != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		if labels != "" && extra != "" {
			w.WriteByte(',')
		}
		w.WriteString(extra)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	w.WriteByte('\n')
}

func writeHistogram(w *bufio.Writer, name, labels string, s HistSnapshot) {
	top := 0
	for b := 0; b < NumBuckets; b++ {
		if s.Counts[b] != 0 {
			top = b
		}
	}
	var cum uint64
	for b := 0; b <= top && b < NumBuckets-1; b++ {
		cum += s.Counts[b]
		le := `le="` + strconv.FormatUint(BucketUpper(b), 10) + `"`
		writeSample(w, name+"_bucket", labels, le, float64(cum))
	}
	writeSample(w, name+"_bucket", labels, `le="+Inf"`, float64(s.Count))
	writeSample(w, name+"_sum", labels, "", float64(s.Sum))
	writeSample(w, name+"_count", labels, "", float64(s.Count))
}

// Handler returns an http.Handler serving the registry at any path —
// mount it at /metrics. Standard library only; the content type is the
// Prometheus text exposition format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
