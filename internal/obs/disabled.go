//go:build obs_off

package obs

// Disabled is the constant true under the obs_off build tag: every record
// path folds to a no-op and the compiler deletes the instrumentation,
// which is how CI measures the overhead of the enabled build. obs_off is
// a measurement build only — snapshots, Stats, and the tuner's feedback
// signal all read as zero under it.
const Disabled = true
