package obs

import (
	"bufio"
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func testRegistry() *Registry {
	r := NewRegistry()
	hits := r.Counter("mutps_cr_requests_total", `result="hit"`, "CR-layer request outcomes.", 4)
	miss := r.Counter("mutps_cr_requests_total", `result="miss"`, "CR-layer request outcomes.", 4)
	depth := r.Gauge("mutps_rx_queue_depth", "", "Receive-ring occupancy.")
	r.GaugeFunc("mutps_hotset_hit_ratio", "", "CR hit fraction.", func() float64 { return 0.75 })
	lat := r.Histogram("mutps_op_latency_nanoseconds", `op="get"`, "Per-op latency.", 4)
	hits.Add(0, 30)
	miss.Add(1, 10)
	depth.Set(7)
	for v := uint64(100); v < 5000; v += 100 {
		lat.Record(0, v)
	}
	return r
}

var (
	sampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN)$`)
	helpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)
	typeRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$`)
)

// validatePromText is a minimal Prometheus text-format (0.0.4) checker:
// every line is a valid HELP, TYPE, or sample line; every sample's base
// name was introduced by a preceding TYPE; histogram buckets are
// cumulative and end at le="+Inf" equal to _count.
func validatePromText(t *testing.T, text string) {
	t.Helper()
	typed := map[string]string{}
	lastBucket := map[string]float64{} // series (with static labels) → last cumulative
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP") {
			if !helpRe.MatchString(line) {
				t.Fatalf("bad HELP line: %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE") {
			if !typeRe.MatchString(line) {
				t.Fatalf("bad TYPE line: %q", line)
			}
			f := strings.Fields(line)
			typed[f[2]] = f[3]
			continue
		}
		if !sampleRe.MatchString(line) {
			t.Fatalf("bad sample line: %q", line)
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if bt := strings.TrimSuffix(name, suf); bt != name && typed[bt] == "histogram" {
				base = bt
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("sample %q has no preceding TYPE", line)
		}
		if typed[base] == "histogram" && strings.HasSuffix(name, "_bucket") {
			val, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if err != nil {
				t.Fatalf("bad bucket value in %q: %v", line, err)
			}
			key := base + stripLe(line)
			if val < lastBucket[key] {
				t.Fatalf("bucket counts not cumulative at %q (%f after %f)", line, val, lastBucket[key])
			}
			lastBucket[key] = val
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}

// stripLe isolates the non-le labels of a bucket line so cumulative
// checks track one series at a time.
func stripLe(line string) string {
	open := strings.IndexByte(line, '{')
	close := strings.IndexByte(line, '}')
	if open < 0 || close < 0 {
		return ""
	}
	var keep []string
	for _, pair := range strings.Split(line[open+1:close], ",") {
		if !strings.HasPrefix(pair, `le="`) {
			keep = append(keep, pair)
		}
	}
	return strings.Join(keep, ",")
}

func TestMetricsEndpointServesValidPrometheusText(t *testing.T) {
	r := testRegistry()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	validatePromText(t, text)

	for _, want := range []string{
		`mutps_cr_requests_total{result="hit"} 30`,
		`mutps_cr_requests_total{result="miss"} 10`,
		`mutps_rx_queue_depth 7`,
		`mutps_hotset_hit_ratio 0.75`,
		`mutps_op_latency_nanoseconds_bucket{op="get",le="+Inf"} 49`,
		`mutps_op_latency_nanoseconds_count{op="get"} 49`,
		"# TYPE mutps_op_latency_nanoseconds histogram",
		"# TYPE mutps_cr_requests_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n--- got:\n%s", want, text)
		}
	}
	// The two counter series must share exactly one HELP/TYPE header.
	if n := strings.Count(text, "# TYPE mutps_cr_requests_total"); n != 1 {
		t.Errorf("family header emitted %d times, want 1", n)
	}
}

func TestRegistrySnapshotFlattening(t *testing.T) {
	r := testRegistry()
	m := r.SnapshotMap()
	if m[`mutps_cr_requests_total{result="hit"}`] != 30 {
		t.Fatalf("snapshot hit counter = %f, want 30", m[`mutps_cr_requests_total{result="hit"}`])
	}
	if m[`mutps_op_latency_nanoseconds_count{op="get"}`] != 49 {
		t.Fatalf("histogram count sample = %f, want 49", m[`mutps_op_latency_nanoseconds_count{op="get"}`])
	}
	p99 := m[`mutps_op_latency_nanoseconds_p99{op="get"}`]
	if p99 < 2048 || p99 > 4900 {
		t.Fatalf("p99 sample = %f, want within the top recorded bucket", p99)
	}
	if m[`mutps_op_latency_nanoseconds_max{op="get"}`] != 4900 {
		t.Fatalf("max sample = %f, want 4900", m[`mutps_op_latency_nanoseconds_max{op="get"}`])
	}
}

// TestRegistryIdempotentRegistration: the same (name, labels) pair must
// return the same instrument, so layers constructed twice share series.
func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", "", 1)
	b := r.Counter("x_total", "", "", 8)
	if a != b {
		t.Fatal("re-registration returned a distinct counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("x_total", "", "")
}
