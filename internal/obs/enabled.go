//go:build !obs_off

package obs

// Disabled reports whether instrumentation is compiled out. In the normal
// build it is the constant false, so `if Disabled { return }` guards cost
// nothing and the record paths are live.
const Disabled = false
