package obs

import (
	"sync"
	"testing"
)

func TestCounterShardingAndMerge(t *testing.T) {
	c := NewCounter(3) // rounds up to 4 shards
	if len(c.shards) != 4 {
		t.Fatalf("shards = %d, want 4", len(c.shards))
	}
	c.Inc(0)
	c.Add(1, 10)
	c.Inc(5) // masked onto shard 1
	c.Add(7, 100)
	if got := c.Value(); got != 112 {
		t.Fatalf("Value = %d, want 112", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter(8)
	const workers, each = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc(w)
			}
		}(w)
	}
	// Concurrent readers must see monotonically plausible sums.
	done := make(chan struct{})
	go func() {
		defer close(done)
		var last uint64
		for i := 0; i < 1000; i++ {
			v := c.Value()
			if v < last {
				t.Errorf("Value went backwards: %d after %d", v, last)
				return
			}
			last = v
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != workers*each {
		t.Fatalf("Value = %d, want %d", got, workers*each)
	}
}

func TestGauge(t *testing.T) {
	g := NewGauge()
	g.Set(42)
	g.Add(-2)
	if got := g.Value(); got != 40 {
		t.Fatalf("Value = %d, want 40", got)
	}
}

// TestRecordPathsAllocFree is the package-level alloc gate: the hot-path
// instruments (Counter.Inc/Add, Histogram.Record, Gauge.Add) must not
// touch the allocator.
func TestRecordPathsAllocFree(t *testing.T) {
	c := NewCounter(4)
	g := NewGauge()
	h := NewHistogram(4)
	if avg := testing.AllocsPerRun(500, func() {
		c.Inc(1)
		c.Add(2, 3)
		g.Add(1)
		h.Record(3, 12345)
	}); avg != 0 {
		t.Fatalf("record paths allocate %.2f times per op, want 0", avg)
	}
}

func TestWindowSampler(t *testing.T) {
	var n uint64
	s := NewWindowSampler(func() uint64 { return n })
	n = 1000
	if r := s.Rate(); r <= 0 {
		t.Fatalf("Rate = %f, want > 0", r)
	}
	// No progress: the next window must read ~0.
	if r := s.Rate(); r != 0 {
		t.Fatalf("Rate with no progress = %f, want 0", r)
	}
	n += 500
	s.Reset()
	if r := s.Rate(); r != 0 {
		t.Fatalf("Rate right after Reset = %f, want 0 (window re-opened)", r)
	}
}

func TestDecisionTraceRingEviction(t *testing.T) {
	tr := NewDecisionTrace(16)
	for i := 0; i < 40; i++ {
		tr.Record(Decision{Event: "trigger", Rate: float64(i)})
	}
	snap := tr.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("retained %d decisions, want 16", len(snap))
	}
	if tr.Total() != 40 {
		t.Fatalf("Total = %d, want 40", tr.Total())
	}
	for i, d := range snap {
		if want := uint64(24 + i); d.Seq != want {
			t.Fatalf("snap[%d].Seq = %d, want %d (oldest-first, newest retained)", i, d.Seq, want)
		}
		if d.Time.IsZero() {
			t.Fatalf("snap[%d].Time not stamped", i)
		}
	}
}

func TestDecisionTraceConcurrent(t *testing.T) {
	tr := NewDecisionTrace(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record(Decision{Event: "split", OldSplit: 1, NewSplit: 2})
			}
		}()
	}
	for i := 0; i < 200; i++ {
		tr.Snapshot()
	}
	wg.Wait()
	if tr.Total() != 2000 {
		t.Fatalf("Total = %d, want 2000", tr.Total())
	}
}
