package obs

import (
	"bufio"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Decision is one entry in the tuner's decision trace: what fired, what
// the configuration was before and after, and what the feedback monitor
// saw. Not every field is meaningful for every event; unset ints are -1
// so renderers can elide them.
type Decision struct {
	Seq   uint64    // monotonically increasing, assigned by the trace
	Time  time.Time // assigned by the trace when zero
	Event string    // "trigger" | "retune" | "split" | "cache" | ...
	Rate  float64   // ops/sec the monitor observed (0 when n/a)

	OldSplit, NewSplit int // CR workers before/after (-1 when n/a)
	OldCache, NewCache int // hot-set target before/after (-1 when n/a)

	Score  float64 // throughput at the chosen configuration (retune)
	Probes int     // Measure calls the search spent (retune)
}

// DecisionTrace is a bounded ring buffer of Decisions. Recording is
// mutex-guarded — decisions happen at reconfiguration frequency, not
// request frequency — and Snapshot returns oldest-first copies, so
// readers never alias the ring.
type DecisionTrace struct {
	mu    sync.Mutex
	buf   []Decision
	total uint64 // decisions ever recorded
}

// NewDecisionTrace creates a trace retaining the last capacity decisions
// (minimum 16).
func NewDecisionTrace(capacity int) *DecisionTrace {
	if capacity < 16 {
		capacity = 16
	}
	return &DecisionTrace{buf: make([]Decision, 0, capacity)}
}

// Record appends a decision, stamping Seq and (when zero) Time, and
// evicting the oldest entry once the ring is full.
func (t *DecisionTrace) Record(d Decision) {
	t.mu.Lock()
	defer t.mu.Unlock()
	d.Seq = t.total
	t.total++
	if d.Time.IsZero() {
		d.Time = time.Now()
	}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, d)
		return
	}
	copy(t.buf, t.buf[1:])
	t.buf[len(t.buf)-1] = d
}

// Snapshot returns the retained decisions, oldest first.
func (t *DecisionTrace) Snapshot() []Decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Decision, len(t.buf))
	copy(out, t.buf)
	return out
}

// Total returns how many decisions were ever recorded (retained or
// evicted).
func (t *DecisionTrace) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// TraceHandler serves the decision trace as human-readable text, one
// decision per line — mount it next to /metrics (e.g. at /trace).
func TraceHandler(t *DecisionTrace) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		bw := bufio.NewWriter(w)
		for _, d := range t.Snapshot() {
			fmt.Fprintf(bw, "#%d %s %s", d.Seq, d.Time.Format(time.RFC3339Nano), d.Event)
			if d.Rate != 0 {
				fmt.Fprintf(bw, " rate=%.0f", d.Rate)
			}
			if d.OldSplit >= 0 || d.NewSplit >= 0 {
				fmt.Fprintf(bw, " split=%d→%d", d.OldSplit, d.NewSplit)
			}
			if d.OldCache >= 0 || d.NewCache >= 0 {
				fmt.Fprintf(bw, " cache=%d→%d", d.OldCache, d.NewCache)
			}
			if d.Score != 0 {
				fmt.Fprintf(bw, " score=%.0f", d.Score)
			}
			if d.Probes != 0 {
				fmt.Fprintf(bw, " probes=%d", d.Probes)
			}
			bw.WriteByte('\n')
		}
		bw.Flush()
	})
}
