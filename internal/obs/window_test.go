package obs

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestWindowSamplerRate(t *testing.T) {
	var n atomic.Uint64
	s := NewWindowSampler(n.Load)
	n.Add(1000)
	time.Sleep(20 * time.Millisecond)
	r := s.Rate()
	if r <= 0 {
		t.Fatalf("rate = %v, want > 0", r)
	}
	// Next window opens at the new count: no new ops ⇒ rate 0.
	if r2 := s.Rate(); r2 != 0 {
		t.Fatalf("empty window rate = %v, want 0", r2)
	}
}

func TestMeanSamplerExactMean(t *testing.T) {
	h := NewHistogram(1)
	s := NewHistogramMeanSampler(h)

	// 1000 and 3000 land in log₂ buckets [512,1024) and [2048,4096); any
	// bucket-interpolated estimate is far from the true mean 2000. The
	// _sum-derived mean must be exact.
	h.Record(0, 1000)
	h.Record(0, 3000)
	mean, ok := s.Mean()
	if !ok {
		t.Fatal("window had events but ok=false")
	}
	if mean != 2000 {
		t.Fatalf("mean = %v, want exactly 2000", mean)
	}

	// Cross-check: the interpolated p50 is NOT 2000 here, which is why
	// the trigger math moved off quantiles (ISSUE 10 satellite).
	snap := h.Snapshot()
	if q := snap.Quantile(0.50); q == 2000 {
		t.Logf("note: interpolated p50 happens to equal the mean (%v)", q)
	}

	// Empty window: mean undefined.
	if _, ok := s.Mean(); ok {
		t.Fatal("empty window reported ok=true")
	}

	// Windows are deltas: a new batch is not polluted by the old one.
	h.Record(0, 500)
	mean, ok = s.Mean()
	if !ok || mean != 500 {
		t.Fatalf("second window mean = %v ok=%v, want 500 true", mean, ok)
	}
}

func TestMeanSamplerReset(t *testing.T) {
	h := NewHistogram(1)
	s := NewHistogramMeanSampler(h)
	h.Record(0, 1_000_000)
	s.Reset()
	// The pre-Reset recording must not leak into the next window.
	h.Record(0, 10)
	mean, ok := s.Mean()
	if !ok || mean != 10 {
		t.Fatalf("post-reset mean = %v ok=%v, want 10 true", mean, ok)
	}
}

func TestMeanSamplerMultiHistogram(t *testing.T) {
	a, b := NewHistogram(1), NewHistogram(1)
	s := NewHistogramMeanSampler(a, b)
	a.Record(0, 100)
	b.Record(0, 300)
	mean, ok := s.Mean()
	if !ok || mean != 200 {
		t.Fatalf("mean across histograms = %v ok=%v, want 200 true", mean, ok)
	}
}

func TestRegistryFindHistogram(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.FindHistogram("missing", ""); ok {
		t.Fatal("found a histogram that was never registered")
	}
	h := r.Histogram("lat", `op="get"`, "help", 1)
	got, ok := r.FindHistogram("lat", `op="get"`)
	if !ok || got != h {
		t.Fatalf("FindHistogram = %p ok=%v, want %p true", got, ok, h)
	}
	r.Counter("c", "", "help", 1)
	if _, ok := r.FindHistogram("c", ""); ok {
		t.Fatal("FindHistogram matched a counter")
	}
}
