package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
	"testing"
)

func TestRuntimeMetricsRegistered(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)

	runtime.GC() // guarantee at least one cycle and a non-empty pause histogram
	m := r.SnapshotMap()

	if v := m["mutps_go_heap_live_bytes"]; v <= 0 {
		t.Errorf("heap live bytes = %v, want > 0", v)
	}
	cycles := m["mutps_go_gc_cycles_total"]
	if cycles <= 0 {
		t.Errorf("gc cycles = %v, want > 0 after runtime.GC", cycles)
	}
	for _, k := range []string{`mutps_go_gc_pause_seconds{q="0.5"}`, `mutps_go_gc_pause_seconds{q="0.99"}`, `mutps_go_gc_pause_seconds{q="max"}`} {
		v, ok := m[k]
		if !ok {
			t.Fatalf("missing %s", k)
		}
		if v < 0 || v > 10 {
			t.Errorf("%s = %v, want a sane pause in [0,10s]", k, v)
		}
	}

	runtime.GC()
	if after := r.SnapshotMap()["mutps_go_gc_cycles_total"]; after <= cycles {
		t.Errorf("gc cycles did not advance: %v -> %v", cycles, after)
	}
}

func TestHistQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{0, 10, 80, 10},
		Buckets: []float64{math.Inf(-1), 1, 2, 3, math.Inf(1)},
	}
	if got := histQuantile(h, 0.5); got != 3 {
		t.Errorf("p50 = %v, want 3 (upper bound of the bucket holding rank 50)", got)
	}
	if got := histQuantile(h, 0.05); got != 2 {
		t.Errorf("p5 = %v, want 2", got)
	}
	// max: highest non-empty bucket's upper bound is +Inf, so it steps
	// inward to the nearest finite boundary.
	if got := histQuantile(h, -1); got != 3 {
		t.Errorf("max = %v, want 3", got)
	}
	if got := histQuantile(&metrics.Float64Histogram{}, 0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}
