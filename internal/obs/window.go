package obs

import "time"

// WindowSampler turns a monotonic counter into a windowed rate — the
// feedback signal the auto-tuner's monitor consumes (the paper's 10 ms
// throughput windows). It is single-consumer: each Rate call closes the
// window opened by the previous one.
type WindowSampler struct {
	read  func() uint64
	lastN uint64
	lastT time.Time
}

// NewWindowSampler starts a sampler over the given counter reader (e.g.
// Store.Ops, or an obs.Counter's Value bound with a closure). The first
// window opens immediately.
func NewWindowSampler(read func() uint64) *WindowSampler {
	return &WindowSampler{read: read, lastN: read(), lastT: time.Now()}
}

// Rate closes the current window and returns its average rate per
// second, then opens the next window. A zero-length window reports 0.
func (s *WindowSampler) Rate() float64 {
	n, now := s.read(), time.Now()
	dn := n - s.lastN
	dt := now.Sub(s.lastT).Seconds()
	s.lastN, s.lastT = n, now
	if dt <= 0 {
		return 0
	}
	return float64(dn) / dt
}

// Reset re-opens the window at the counter's current value without
// reporting a rate (call after a reconfiguration so the next window
// reflects only the new configuration).
func (s *WindowSampler) Reset() {
	s.lastN, s.lastT = s.read(), time.Now()
}

// MeanSampler turns a paired monotonic (sum, count) feed — exactly the
// _sum/_count series every histogram exports — into a windowed mean.
// Unlike a quantile interpolated from log₂ buckets, the delta-of-sums
// mean is exact, which is what the paper's feedback controller consumes
// as its latency signal. Single-consumer, like WindowSampler.
type MeanSampler struct {
	read      func() (sum, count uint64)
	lastSum   uint64
	lastCount uint64
}

// NewMeanSampler starts a sampler over the given paired reader. The
// first window opens immediately.
func NewMeanSampler(read func() (sum, count uint64)) *MeanSampler {
	s := &MeanSampler{read: read}
	s.lastSum, s.lastCount = read()
	return s
}

// NewHistogramMeanSampler samples the exact mean of new recordings
// across one or more histograms (e.g. the per-op latency families a
// server registers) by summing their _sum and _count deltas.
func NewHistogramMeanSampler(hs ...*Histogram) *MeanSampler {
	return NewMeanSampler(func() (uint64, uint64) {
		var sum, count uint64
		for _, h := range hs {
			snap := h.Snapshot()
			sum += snap.Sum
			count += snap.Count
		}
		return sum, count
	})
}

// Mean closes the current window and returns the exact mean of the
// values recorded during it, then opens the next window. ok is false
// when the window saw no events (the mean is undefined, not zero).
func (s *MeanSampler) Mean() (mean float64, ok bool) {
	sum, count := s.read()
	dSum, dCount := sum-s.lastSum, count-s.lastCount
	s.lastSum, s.lastCount = sum, count
	if dCount == 0 {
		return 0, false
	}
	return float64(dSum) / float64(dCount), true
}

// Reset re-opens the window at the feed's current totals without
// reporting a mean.
func (s *MeanSampler) Reset() {
	s.lastSum, s.lastCount = s.read()
}
