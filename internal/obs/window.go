package obs

import "time"

// WindowSampler turns a monotonic counter into a windowed rate — the
// feedback signal the auto-tuner's monitor consumes (the paper's 10 ms
// throughput windows). It is single-consumer: each Rate call closes the
// window opened by the previous one.
type WindowSampler struct {
	read  func() uint64
	lastN uint64
	lastT time.Time
}

// NewWindowSampler starts a sampler over the given counter reader (e.g.
// Store.Ops, or an obs.Counter's Value bound with a closure). The first
// window opens immediately.
func NewWindowSampler(read func() uint64) *WindowSampler {
	return &WindowSampler{read: read, lastN: read(), lastT: time.Now()}
}

// Rate closes the current window and returns its average rate per
// second, then opens the next window. A zero-length window reports 0.
func (s *WindowSampler) Rate() float64 {
	n, now := s.read(), time.Now()
	dn := n - s.lastN
	dt := now.Sub(s.lastT).Seconds()
	s.lastN, s.lastT = n, now
	if dt <= 0 {
		return 0
	}
	return float64(dn) / dt
}

// Reset re-opens the window at the counter's current value without
// reporting a rate (call after a reconfiguration so the next window
// reflects only the new configuration).
func (s *WindowSampler) Reset() {
	s.lastN, s.lastT = s.read(), time.Now()
}
