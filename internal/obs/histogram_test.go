package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{255, 8}, {256, 9}, {1 << 40, 41}, {1 << 62, 63}, {math.MaxUint64, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	// Every non-overflow bucket's bounds must be consistent with bucketOf.
	for b := 0; b < NumBuckets-1; b++ {
		if bucketOf(bucketLower(b)) != b || bucketOf(BucketUpper(b)) != b {
			t.Errorf("bucket %d bounds [%d, %d] not self-consistent", b, bucketLower(b), BucketUpper(b))
		}
	}
}

// exactQuantile returns the order statistic the histogram estimates:
// the ceil(p*n)-th smallest value.
func exactQuantile(sorted []uint64, p float64) uint64 {
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// checkQuantiles records vals into a histogram and asserts each estimated
// quantile lands within the log₂ bucket of the exact order statistic —
// the histogram's documented accuracy bound.
func checkQuantiles(t *testing.T, name string, vals []uint64) {
	t.Helper()
	h := NewHistogram(4)
	for i, v := range vals {
		h.Record(i, v)
	}
	snap := h.Snapshot()
	if snap.Count != uint64(len(vals)) {
		t.Fatalf("%s: Count = %d, want %d", name, snap.Count, len(vals))
	}
	sorted := append([]uint64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if snap.Max != sorted[len(sorted)-1] {
		t.Fatalf("%s: Max = %d, want %d", name, snap.Max, sorted[len(sorted)-1])
	}
	for _, p := range []float64{0.50, 0.90, 0.95, 0.99, 1.0} {
		est := snap.Quantile(p)
		exact := exactQuantile(sorted, p)
		b := bucketOf(exact)
		lo, hi := bucketLower(b), BucketUpper(b)
		if est < lo || est > hi {
			t.Errorf("%s: Quantile(%.2f) = %d outside exact value %d's bucket [%d, %d]",
				name, p, est, exact, lo, hi)
		}
	}
}

func TestQuantileAccuracyUniform(t *testing.T) {
	// Uniform over [1, 1M]: a deterministic LCG stream.
	vals := make([]uint64, 50000)
	x := uint64(12345)
	for i := range vals {
		x = x*6364136223846793005 + 1442695040888963407
		vals[i] = x%1_000_000 + 1
	}
	checkQuantiles(t, "uniform", vals)
}

func TestQuantileAccuracyBimodal(t *testing.T) {
	// A latency-shaped distribution: a tight fast mode around 1µs with a
	// 1% slow tail around 1ms — the regime P99 reporting exists for.
	vals := make([]uint64, 0, 20000)
	x := uint64(99)
	for i := 0; i < 20000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		if i%100 == 0 {
			vals = append(vals, 1_000_000+x%500_000) // ~1ms tail
		} else {
			vals = append(vals, 800+x%700) // ~1µs mode
		}
	}
	checkQuantiles(t, "bimodal", vals)
}

func TestQuantileAccuracyPowers(t *testing.T) {
	// Exact powers of two land on bucket boundaries — the worst case for
	// off-by-one bucket indexing.
	var vals []uint64
	for e := 0; e < 30; e++ {
		for r := 0; r < 10; r++ {
			vals = append(vals, 1<<uint(e))
		}
	}
	checkQuantiles(t, "powers", vals)
}

func TestQuantileInterpolationUniform(t *testing.T) {
	// With values uniform over one wide bucket, interpolation should get
	// much closer than the factor-2 bucket bound: assert 10% relative
	// error at the median.
	vals := make([]uint64, 0, 1<<18)
	for v := uint64(1 << 18); v < 1<<19; v += 4 {
		vals = append(vals, v)
	}
	h := NewHistogram(1)
	for _, v := range vals {
		h.Record(0, v)
	}
	snap := h.Snapshot()
	est := float64(snap.Quantile(0.5))
	exact := float64(vals[len(vals)/2-1])
	if rel := math.Abs(est-exact) / exact; rel > 0.10 {
		t.Fatalf("interpolated median %f vs exact %f: %.1f%% error, want ≤10%%", est, exact, rel*100)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty snapshot quantile must be 0")
	}
	h := NewHistogram(1)
	h.Record(0, 7)
	snap := h.Snapshot()
	for _, p := range []float64{-1, 0, 0.5, 1, 2} {
		if q := snap.Quantile(p); q < 4 || q > 7 {
			t.Fatalf("single-value Quantile(%f) = %d, want within bucket [4,7]", p, q)
		}
	}
	if snap.Quantile(1) != 7 {
		t.Fatalf("Quantile(1) = %d, want the max 7", snap.Quantile(1))
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(1), NewHistogram(1)
	for v := uint64(1); v <= 100; v++ {
		a.Record(0, v)
		b.Record(0, v*1000)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(&sb)
	if sa.Count != 200 {
		t.Fatalf("merged Count = %d, want 200", sa.Count)
	}
	if sa.Max != 100_000 {
		t.Fatalf("merged Max = %d, want 100000", sa.Max)
	}
	if sum := sa.Sum; sum != 5050+5050*1000 {
		t.Fatalf("merged Sum = %d, want %d", sum, 5050+5050*1000)
	}
}

// TestConcurrentRecordSnapshot drives recorders and snapshotters together;
// under -race this is the lock-freedom gate, and the final snapshot must
// account for every record.
func TestConcurrentRecordSnapshot(t *testing.T) {
	h := NewHistogram(8)
	const workers, each = 8, 20000
	var wg sync.WaitGroup
	var stop atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			x := uint64(w + 1)
			for i := 0; i < each; i++ {
				x = x*6364136223846793005 + 1
				h.Record(w, x%1_000_000)
			}
		}(w)
	}
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		var last uint64
		for !stop.Load() {
			s := h.Snapshot()
			if s.Count < last {
				t.Errorf("snapshot Count went backwards: %d after %d", s.Count, last)
				return
			}
			// Counts must always sum to Count (no torn view of totals).
			var sum uint64
			for _, n := range s.Counts {
				sum += n
			}
			if sum != s.Count {
				t.Errorf("bucket sum %d != Count %d", sum, s.Count)
				return
			}
			last = s.Count
		}
	}()
	wg.Wait()
	stop.Store(true)
	snapWG.Wait()
	if s := h.Snapshot(); s.Count != workers*each {
		t.Fatalf("final Count = %d, want %d", s.Count, workers*each)
	}
}

func TestMeanAndSum(t *testing.T) {
	h := NewHistogram(2)
	for v := uint64(1); v <= 10; v++ {
		h.Record(int(v), v)
	}
	s := h.Snapshot()
	if s.Sum != 55 || s.Mean() != 5.5 {
		t.Fatalf("Sum/Mean = %d/%f, want 55/5.5", s.Sum, s.Mean())
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram(8)
	b.ReportAllocs()
	x := uint64(1)
	for n := 0; n < b.N; n++ {
		x = x*6364136223846793005 + 1
		h.Record(int(x>>32), bits.RotateLeft64(x, 7)%1_000_000)
	}
}
