package obs

import (
	"math"
	"os"
	"runtime"
	"runtime/metrics"
	"strconv"
	"strings"
	"sync"
)

// Go runtime metric names sampled by RegisterRuntimeMetrics. These are
// the three signals the GC-quiet write path is judged by: how much heap
// the item population pins, how often the collector runs, and what the
// collector's pauses cost the workers.
const (
	rmHeapLive = "/memory/classes/heap/objects:bytes"
	rmGCCycles = "/gc/cycles/total:gc-cycles"
	rmGCPause  = "/sched/pauses/total/gc:seconds"
)

// runtimeCollector owns one reusable metrics.Sample set so scrapes do
// not allocate. All registered funcs share it; the mutex serializes
// concurrent scrapers (metrics.Read mutates the slice in place).
type runtimeCollector struct {
	mu      sync.Mutex
	samples [3]metrics.Sample
}

func newRuntimeCollector() *runtimeCollector {
	c := &runtimeCollector{}
	c.samples[0].Name = rmHeapLive
	c.samples[1].Name = rmGCCycles
	c.samples[2].Name = rmGCPause
	return c
}

// read refreshes every sample and returns the i-th value. One
// metrics.Read call covers all three names; scrape paths are not hot
// enough to justify caching across funcs within a snapshot.
func (c *runtimeCollector) read(i int) metrics.Value {
	c.mu.Lock()
	defer c.mu.Unlock()
	metrics.Read(c.samples[:])
	return c.samples[i].Value
}

func (c *runtimeCollector) uint64At(i int) float64 {
	v := c.read(i)
	if v.Kind() != metrics.KindUint64 {
		return 0
	}
	return float64(v.Uint64())
}

func (c *runtimeCollector) pauseQuantile(q float64) float64 {
	v := c.read(2)
	if v.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	return histQuantile(v.Float64Histogram(), q)
}

// histQuantile extracts quantile q from a runtime histogram by walking
// the cumulative counts, returning the upper boundary of the bucket the
// quantile lands in (a conservative estimate). q < 0 means the maximum:
// the upper boundary of the highest non-empty bucket. Infinite edge
// boundaries fall back to the nearest finite neighbour.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, n := range h.Counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if q < 0 {
		rank = total
	}
	var seen uint64
	for i, n := range h.Counts {
		seen += n
		if n == 0 || seen < rank {
			continue
		}
		if q >= 0 {
			return finiteBound(h.Buckets, i+1)
		}
		// max: remember the highest non-empty bucket; since counts are
		// walked in order and seen == total only at the last non-empty
		// one, this return fires exactly there.
		if seen == total {
			return finiteBound(h.Buckets, i+1)
		}
	}
	return finiteBound(h.Buckets, len(h.Buckets)-1)
}

// finiteBound returns Buckets[i], stepping inward past infinities
// (runtime histograms may bound the edges with ±Inf).
func finiteBound(b []float64, i int) float64 {
	if i >= len(b) {
		i = len(b) - 1
	}
	if i < 0 {
		return 0
	}
	for i > 0 && math.IsInf(b[i], 0) {
		i--
	}
	if math.IsInf(b[i], 0) {
		return 0
	}
	return b[i]
}

// RegisterRuntimeMetrics exposes the Go runtime's GC-pressure signals on
// r, alongside the store's own instruments:
//
//	mutps_go_heap_live_bytes        bytes of live heap objects
//	mutps_go_gc_cycles_total        completed GC cycles
//	mutps_go_gc_pause_seconds{q=..} GC stop-the-world pause quantiles
//
// These are sampled from runtime/metrics at scrape time, allocation-free
// after registration. They exist so a before/after arena comparison can
// be read straight off /metrics instead of requiring GODEBUG=gctrace.
func RegisterRuntimeMetrics(r *Registry) {
	c := newRuntimeCollector()
	r.GaugeFunc("mutps_go_heap_live_bytes", "",
		"Bytes of heap memory occupied by live objects (runtime/metrics "+rmHeapLive+").",
		func() float64 { return c.uint64At(0) })
	r.CounterFunc("mutps_go_gc_cycles_total", "",
		"Completed garbage-collection cycles (runtime/metrics "+rmGCCycles+").",
		func() float64 { return c.uint64At(1) })
	for _, e := range []struct {
		label string
		q     float64
	}{
		{`q="0.5"`, 0.5},
		{`q="0.99"`, 0.99},
		{`q="max"`, -1},
	} {
		q := e.q
		r.GaugeFunc("mutps_go_gc_pause_seconds", e.label,
			"Stop-the-world GC pause duration quantiles in seconds (runtime/metrics "+rmGCPause+").",
			func() float64 { return c.pauseQuantile(q) })
	}
	r.GaugeFunc("mutps_go_goroutines", "",
		"Live goroutines in the process. The transport-cost signal: the "+
			"goroutine transport scales this with open connections, the "+
			"epoll transport holds it flat.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("mutps_proc_rss_bytes", "",
		"Resident set size of the process from /proc/self/statm "+
			"(0 where procfs is unavailable).",
		func() float64 { return procRSSBytes() })
}

// procRSSBytes reads the resident page count from /proc/self/statm
// (second field) — the cheapest RSS source on Linux; zero elsewhere.
func procRSSBytes() float64 {
	b, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	f := strings.Fields(string(b))
	if len(f) < 2 {
		return 0
	}
	pages, err := strconv.ParseUint(f[1], 10, 64)
	if err != nil {
		return 0
	}
	return float64(pages) * float64(os.Getpagesize())
}
