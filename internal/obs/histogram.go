package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of every Histogram. Bucket 0 holds
// the value 0; bucket i (1 ≤ i ≤ 62) holds values whose bit length is i,
// i.e. [2^(i-1), 2^i − 1]; bucket 63 is the overflow bucket for
// everything ≥ 2^62. Nanosecond latencies up to ~146 years therefore land
// in a regular bucket.
const NumBuckets = 64

// histShard is one worker's private bucket array. At 64×8 bytes the
// buckets span eight cache lines of their own; sum and max share the
// ninth, and the trailing pad keeps the next shard off it.
type histShard struct {
	buckets [NumBuckets]atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	_       [48]byte
}

// Histogram is a sharded fixed-bucket log₂ histogram. Record is lock-free
// and allocation-free: one bit-length, two atomic adds, and a max update
// on the caller's shard. Snapshots merge the shards and answer quantile
// queries with within-bucket linear interpolation.
type Histogram struct {
	shards []histShard
	mask   uint32
}

// NewHistogram creates a histogram with at least the given shard count
// (rounded up to a power of two).
func NewHistogram(shards int) *Histogram {
	n := shardCount(shards)
	return &Histogram{shards: make([]histShard, n), mask: uint32(n - 1)}
}

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	b := bits.Len64(v)
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// BucketUpper returns the inclusive upper bound of bucket i, and
// math.MaxUint64 for the overflow bucket (rendered as +Inf by the
// Prometheus exporter).
func BucketUpper(i int) uint64 {
	if i >= NumBuckets-1 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// bucketLower returns the inclusive lower bound of bucket i.
func bucketLower(i int) uint64 {
	if i == 0 {
		return 0
	}
	return 1 << uint(i-1)
}

// Record adds one observation on the caller's shard.
func (h *Histogram) Record(shard int, v uint64) {
	if Disabled {
		return
	}
	s := &h.shards[uint32(shard)&h.mask]
	s.buckets[bucketOf(v)].Add(1)
	s.sum.Add(v)
	for {
		m := s.max.Load()
		if v <= m || s.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// HistSnapshot is a merged, immutable view of a histogram, usable on its
// own (Quantile, Merge) and by the exporters.
type HistSnapshot struct {
	Counts [NumBuckets]uint64
	Count  uint64 // total observations
	Sum    uint64 // sum of observed values
	Max    uint64 // largest observed value
}

// Snapshot merges all shards. Concurrent Records may or may not be
// included — each bucket is read once atomically, so the snapshot is a
// consistent-enough view for monitoring, never a torn read.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.shards {
		sh := &h.shards[i]
		for b := 0; b < NumBuckets; b++ {
			n := sh.buckets[b].Load()
			s.Counts[b] += n
			s.Count += n
		}
		s.Sum += sh.sum.Load()
		if m := sh.max.Load(); m > s.Max {
			s.Max = m
		}
	}
	return s
}

// Merge folds another snapshot into s (for aggregating per-client or
// per-store histograms).
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	for b := 0; b < NumBuckets; b++ {
		s.Counts[b] += o.Counts[b]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Quantile estimates the p-quantile (0 ≤ p ≤ 1) of the recorded values:
// it walks to the bucket holding the target rank and interpolates
// linearly inside it, clamping to the observed maximum, so the estimate
// is always within one power-of-two bucket of the exact order statistic.
// It returns 0 on an empty snapshot.
func (s *HistSnapshot) Quantile(p float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// Rank of the target order statistic, 1-based.
	rank := uint64(math.Ceil(p * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for b := 0; b < NumBuckets; b++ {
		n := s.Counts[b]
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := bucketLower(b), BucketUpper(b)
			if hi > s.Max {
				hi = s.Max // the top occupied bucket never extends past max
			}
			if hi <= lo {
				return lo
			}
			frac := float64(rank-cum) / float64(n)
			return lo + uint64(frac*float64(hi-lo))
		}
		cum += n
	}
	return s.Max
}

// Mean returns the average observed value (0 when empty).
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
