package netserver

import (
	"encoding/binary"
	"net"
	"testing"

	"mutps/internal/kvcore"
)

func TestPipelineBasicOrdering(t *testing.T) {
	srv, _ := startServer(t, kvcore.Hash)
	pc, err := DialPipeline(srv.Addr().String(), 32)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()

	const n = 200
	futs := make([]*Future, 0, n)
	for i := uint64(0); i < n; i++ {
		v := make([]byte, 8)
		binary.LittleEndian.PutUint64(v, i)
		f, err := pc.Send(OpPut, i, v)
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	if err := pc.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, f := range futs {
		if st, _, err := f.Wait(); err != nil || st != StatusFound {
			t.Fatalf("put response: %d %v", st, err)
		}
	}
	// Pipelined reads: responses must match request order.
	futs = futs[:0]
	for i := uint64(0); i < n; i++ {
		f, err := pc.Send(OpGet, i, nil)
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	pc.Flush()
	for i, f := range futs {
		st, body, err := f.Wait()
		if err != nil || st != StatusFound {
			t.Fatalf("get %d: %d %v", i, st, err)
		}
		if binary.LittleEndian.Uint64(body) != uint64(i) {
			t.Fatalf("response %d out of order: got %d", i, binary.LittleEndian.Uint64(body))
		}
	}
}

func TestPipelineErrorResponsesDoNotDesync(t *testing.T) {
	srv, _ := startServer(t, kvcore.Hash)
	pc, err := DialPipeline(srv.Addr().String(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	// Scan on a hash engine errors; the following get must still line up.
	fErr, _ := pc.Send(OpScan, 0, []byte{1, 0, 0, 0})
	pc.Send(OpPut, 9, []byte("x"))
	fGet, _ := pc.Send(OpGet, 9, nil)
	pc.Flush()
	if _, _, err := fErr.Wait(); err == nil {
		t.Fatal("scan on hash engine must error")
	}
	st, body, err := fGet.Wait()
	if err != nil || st != StatusFound || string(body) != "x" {
		t.Fatalf("pipeline desynced after error: %d %q %v", st, body, err)
	}
}

func TestPipelineCloseFailsOutstanding(t *testing.T) {
	srv, _ := startServer(t, kvcore.Hash)
	pc, err := DialPipeline(srv.Addr().String(), 4)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := pc.Send(OpGet, 1, nil)
	pc.Close()
	if _, _, err := f.Wait(); err != nil {
		// Either it completed before close or it failed — both are fine;
		// what matters is that Wait returns.
		t.Log("outstanding future failed on close:", err)
	}
	if _, err := pc.Send(OpGet, 2, nil); err == nil {
		t.Fatal("send after close must fail")
	}
	pc.Close() // idempotent
}

func BenchmarkPipelinePutGet(b *testing.B) {
	store, err := kvcore.Open(kvcore.Config{Engine: kvcore.Hash, Workers: 3, CRWorkers: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	ln, err := netListen()
	if err != nil {
		b.Fatal(err)
	}
	srv := Serve(store, ln)
	defer srv.Close()
	pc, err := DialPipeline(srv.Addr().String(), 128)
	if err != nil {
		b.Fatal(err)
	}
	defer pc.Close()
	val := make([]byte, 64)
	b.ResetTimer()
	futs := make([]*Future, 0, 128)
	for n := 0; n < b.N; n++ {
		f, err := pc.Send(OpPut, uint64(n%4096), val)
		if err != nil {
			b.Fatal(err)
		}
		futs = append(futs, f)
		if len(futs) == 128 {
			pc.Flush()
			for _, f := range futs {
				f.Wait()
				f.Release()
			}
			futs = futs[:0]
		}
	}
	pc.Flush()
	for _, f := range futs {
		f.Wait()
		f.Release()
	}
}

// TestPipelineAllocsPerOp gates the TCP fast path: with pooled futures,
// recycled response-body buffers, per-connection server frame scratch, and
// the store's pooled calls underneath, a steady-state pipelined get costs
// only what the kernel socket path itself costs. The budget of 4 covers
// runtime-internal netpoll bookkeeping, which varies by platform; the
// pre-pooling cost was ~10 allocs/op (future, done channel, response body,
// server payload frame, store call, done channel, value — per op).
func TestPipelineAllocsPerOp(t *testing.T) {
	srv, store := startServer(t, kvcore.Hash)
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], 77)
	store.Put(3, v[:])
	pc, err := DialPipeline(srv.Addr().String(), 32)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()

	avg := testing.AllocsPerRun(300, func() {
		f, err := pc.Send(OpGet, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		pc.Flush()
		st, body, err := f.Wait()
		if err != nil || st != StatusFound || binary.LittleEndian.Uint64(body) != 77 {
			t.Fatalf("get = %d %x %v", st, body, err)
		}
		f.Release()
	})
	t.Logf("pipelined get: %.2f allocs/op", avg)
	if avg > 4 && !raceEnabled {
		t.Fatalf("pipelined get allocates %.2f times per op, want <= 4", avg)
	}
}

// TestPipelineFutureRelease checks recycled futures come back clean and
// reuse their body buffers.
func TestPipelineFutureRelease(t *testing.T) {
	f := newFuture()
	f.status = StatusFound
	f.body = append(f.body, 1, 2, 3)
	f.complete()
	f.Wait()
	bodyCap := cap(f.body)
	f.Release()
	f2 := newFuture()
	if f2.status != 0 || f2.err != nil || len(f2.body) != 0 {
		t.Fatalf("recycled future carries stale state: %+v", f2)
	}
	if f2 == f && cap(f2.body) != bodyCap {
		t.Fatal("recycling must retain body capacity")
	}
	f2.complete()
	f2.Wait()
	f2.Release()
}

// netListen wraps net.Listen for benchmarks (keeps the test file free of a
// direct net import dependency in its main body).
func netListen() (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }
