package netserver

import (
	"encoding/binary"
	"net"
	"testing"

	"mutps/internal/kvcore"
)

func TestPipelineBasicOrdering(t *testing.T) {
	srv, _ := startServer(t, kvcore.Hash)
	pc, err := DialPipeline(srv.Addr().String(), 32)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()

	const n = 200
	futs := make([]*Future, 0, n)
	for i := uint64(0); i < n; i++ {
		v := make([]byte, 8)
		binary.LittleEndian.PutUint64(v, i)
		f, err := pc.Send(OpPut, i, v)
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	if err := pc.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, f := range futs {
		if st, _, err := f.Wait(); err != nil || st != StatusFound {
			t.Fatalf("put response: %d %v", st, err)
		}
	}
	// Pipelined reads: responses must match request order.
	futs = futs[:0]
	for i := uint64(0); i < n; i++ {
		f, err := pc.Send(OpGet, i, nil)
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	pc.Flush()
	for i, f := range futs {
		st, body, err := f.Wait()
		if err != nil || st != StatusFound {
			t.Fatalf("get %d: %d %v", i, st, err)
		}
		if binary.LittleEndian.Uint64(body) != uint64(i) {
			t.Fatalf("response %d out of order: got %d", i, binary.LittleEndian.Uint64(body))
		}
	}
}

func TestPipelineErrorResponsesDoNotDesync(t *testing.T) {
	srv, _ := startServer(t, kvcore.Hash)
	pc, err := DialPipeline(srv.Addr().String(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	// Scan on a hash engine errors; the following get must still line up.
	fErr, _ := pc.Send(OpScan, 0, []byte{1, 0, 0, 0})
	pc.Send(OpPut, 9, []byte("x"))
	fGet, _ := pc.Send(OpGet, 9, nil)
	pc.Flush()
	if _, _, err := fErr.Wait(); err == nil {
		t.Fatal("scan on hash engine must error")
	}
	st, body, err := fGet.Wait()
	if err != nil || st != StatusFound || string(body) != "x" {
		t.Fatalf("pipeline desynced after error: %d %q %v", st, body, err)
	}
}

func TestPipelineCloseFailsOutstanding(t *testing.T) {
	srv, _ := startServer(t, kvcore.Hash)
	pc, err := DialPipeline(srv.Addr().String(), 4)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := pc.Send(OpGet, 1, nil)
	pc.Close()
	if _, _, err := f.Wait(); err != nil {
		// Either it completed before close or it failed — both are fine;
		// what matters is that Wait returns.
		t.Log("outstanding future failed on close:", err)
	}
	if _, err := pc.Send(OpGet, 2, nil); err == nil {
		t.Fatal("send after close must fail")
	}
	pc.Close() // idempotent
}

func BenchmarkPipelinePutGet(b *testing.B) {
	store, err := kvcore.Open(kvcore.Config{Engine: kvcore.Hash, Workers: 3, CRWorkers: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	ln, err := netListen()
	if err != nil {
		b.Fatal(err)
	}
	srv := Serve(store, ln)
	defer srv.Close()
	pc, err := DialPipeline(srv.Addr().String(), 128)
	if err != nil {
		b.Fatal(err)
	}
	defer pc.Close()
	val := make([]byte, 64)
	b.ResetTimer()
	futs := make([]*Future, 0, 128)
	for n := 0; n < b.N; n++ {
		f, err := pc.Send(OpPut, uint64(n%4096), val)
		if err != nil {
			b.Fatal(err)
		}
		futs = append(futs, f)
		if len(futs) == 128 {
			pc.Flush()
			for _, f := range futs {
				f.Wait()
			}
			futs = futs[:0]
		}
	}
	pc.Flush()
	for _, f := range futs {
		f.Wait()
	}
}

// netListen wraps net.Listen for benchmarks (keeps the test file free of a
// direct net import dependency in its main body).
func netListen() (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }
