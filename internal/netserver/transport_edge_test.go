package netserver

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"mutps/internal/kvcore"
)

// startTransportServer starts a server on the named transport. Epoll
// requests skip on platforms without it, so the suite stays portable
// while exercising both cost models on Linux.
func startTransportServer(t *testing.T, tr string) *Server {
	t.Helper()
	if tr == TransportEpoll && !epollSupported {
		t.Skip("epoll transport requires linux")
	}
	store, err := kvcore.Open(kvcore.Config{Engine: kvcore.Hash, Workers: 3, CRWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ListenAndServe(store, "127.0.0.1:0", Config{Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.Transport(); got != tr {
		t.Fatalf("serving via %s transport, requested %s", got, tr)
	}
	t.Cleanup(func() {
		srv.Close()
		store.Close()
	})
	return srv
}

// forEachTransport runs fn as a subtest against both transports.
func forEachTransport(t *testing.T, fn func(t *testing.T, srv *Server)) {
	for _, tr := range []string{TransportGoroutine, TransportEpoll} {
		t.Run(tr, func(t *testing.T) { fn(t, startTransportServer(t, tr)) })
	}
}

// reqFrame encodes one request frame: op, key, payload length, payload.
func reqFrame(op byte, key uint64, payload []byte) []byte {
	b := make([]byte, 13+len(payload))
	b[0] = op
	binary.LittleEndian.PutUint64(b[1:9], key)
	binary.LittleEndian.PutUint32(b[9:13], uint32(len(payload)))
	copy(b[13:], payload)
	return b
}

// readResp reads one status+body response frame.
func readResp(t *testing.T, r io.Reader) (byte, []byte) {
	t.Helper()
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		t.Fatalf("response header: %v", err)
	}
	body := make([]byte, binary.LittleEndian.Uint32(hdr[1:5]))
	if _, err := io.ReadFull(r, body); err != nil {
		t.Fatalf("response body: %v", err)
	}
	return hdr[0], body
}

// TestFrameDribbledByteByByte feeds a put and a get one byte at a time
// with pauses, so the server sees a partial header, then a partial
// payload, across many separate readiness wakeups (every gap is an EAGAIN
// on the epoll transport — mid-header included). The decode state must
// persist across all of them and produce exactly the same responses a
// single write would.
func TestFrameDribbledByteByByte(t *testing.T) {
	forEachTransport(t, func(t *testing.T, srv *Server) {
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		val := bytes.Repeat([]byte{0xAB}, 40)
		for _, frame := range [][]byte{
			reqFrame(OpPut, 9, val),
			reqFrame(OpGet, 9, nil),
		} {
			for _, b := range frame {
				if _, err := conn.Write([]byte{b}); err != nil {
					t.Fatal(err)
				}
				time.Sleep(time.Millisecond)
			}
		}
		if st, _ := readResp(t, conn); st != StatusFound {
			t.Fatalf("put status = %d", st)
		}
		st, body := readResp(t, conn)
		if st != StatusFound || !bytes.Equal(body, val) {
			t.Fatalf("get = %d %x, want the 40-byte value back", st, body)
		}
	})
}

// TestLargeFrameSplitAcrossWakeups writes a put whose payload dwarfs the
// epoll transport's staging buffer in mid-size chunks with pauses: the
// decoder must switch into payload-spill mode on the first chunk and keep
// filling the leased payload across wakeups, and a frame sent immediately
// after must parse cleanly (no spilled bytes may leak into the header
// stream).
func TestLargeFrameSplitAcrossWakeups(t *testing.T) {
	forEachTransport(t, func(t *testing.T, srv *Server) {
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		val := make([]byte, 200<<10)
		for i := range val {
			val[i] = byte(i * 7)
		}
		frame := append(reqFrame(OpPut, 11, val), reqFrame(OpGet, 11, nil)...)
		const chunk = 7000 // co-prime-ish with the 32 KiB staging buffer
		for off := 0; off < len(frame); off += chunk {
			end := min(off+chunk, len(frame))
			if _, err := conn.Write(frame[off:end]); err != nil {
				t.Fatal(err)
			}
			time.Sleep(500 * time.Microsecond)
		}
		if st, _ := readResp(t, conn); st != StatusFound {
			t.Fatalf("put status = %d", st)
		}
		st, body := readResp(t, conn)
		if st != StatusFound || !bytes.Equal(body, val) {
			t.Fatalf("get status = %d, body len %d, want the 200 KiB value back", st, len(body))
		}
	})
}

// TestHalfCloseDeliversInFlightResponses sends a burst of gets and
// immediately shuts down the write side (shutdown(SHUT_WR)). The server
// sees EOF with the whole burst still in flight; every response must
// still come back, in order, before the server closes the connection.
func TestHalfCloseDeliversInFlightResponses(t *testing.T) {
	forEachTransport(t, func(t *testing.T, srv *Server) {
		cli, err := Dial(srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		const n = 16
		for k := uint64(0); k < n; k++ {
			if err := cli.Put(k, []byte{byte(k)}); err != nil {
				t.Fatal(err)
			}
		}
		cli.Close()

		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		var burst []byte
		for k := uint64(0); k < n; k++ {
			burst = append(burst, reqFrame(OpGet, k, nil)...)
		}
		if _, err := conn.Write(burst); err != nil {
			t.Fatal(err)
		}
		if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
			t.Fatal(err)
		}
		for k := uint64(0); k < n; k++ {
			st, body := readResp(t, conn)
			if st != StatusFound || len(body) != 1 || body[0] != byte(k) {
				t.Fatalf("response %d after half-close: status %d body %x", k, st, body)
			}
		}
		// Nothing else is owed: the server should now close its side.
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
			t.Fatalf("after the owed responses: %v, want EOF", err)
		}
	})
}

// TestIdleConnReleasesBuffers drives a burst through a connection and then
// lets it idle: every leased buffer — read staging, payload, write chain —
// must return to the arena, on both transports. This is the measurable
// form of the zero-cost-idle guarantee.
func TestIdleConnReleasesBuffers(t *testing.T) {
	forEachTransport(t, func(t *testing.T, srv *Server) {
		pc, err := DialPipeline(srv.Addr().String(), 16)
		if err != nil {
			t.Fatal(err)
		}
		defer pc.Close()
		val := bytes.Repeat([]byte{7}, 4096)
		var futs []*Future
		for k := uint64(0); k < 64; k++ {
			f, err := pc.Send(OpPut, k, val)
			if err != nil {
				t.Fatal(err)
			}
			futs = append(futs, f)
			if len(futs) == 16 {
				pc.Flush()
				for _, f := range futs {
					f.Wait()
					f.Release()
				}
				futs = futs[:0]
			}
		}
		pc.Flush()
		for _, f := range futs {
			f.Wait()
			f.Release()
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			if n := srv.leaser.LeasedBytes(); n == 0 {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("idle connection still holds %d leased bytes", srv.leaser.LeasedBytes())
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}
