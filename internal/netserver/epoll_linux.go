//go:build linux

// The epoll event-loop transport: a small fixed pool of event-loop
// goroutines multiplexing every connection, instead of a goroutine pair
// per connection.
//
// Shape (one of eventLoopCount() shards):
//
//	event loop goroutine:  epoll_wait → accept4 / nonblocking reads →
//	                       decode frames → submit into the store's async
//	                       facade → hand the connection to the completer
//	completer goroutine:   retire each connection's window FIFO (blocking
//	                       on store completions is fine here — it is not
//	                       the readiness thread), encode responses into
//	                       leased buffer chains, flush with writev bursts
//	                       that span connections (completer_linux.go)
//
// The division of labour is strict: the LOOP is the only thread that
// touches epoll_ctl, close(fd), the fd→conn map, and the read-side decode
// state; the COMPLETER only retires ops and builds/flushes write chains.
// Everything shared (the pending FIFO, write chain, lifecycle flags) sits
// behind the per-connection mutex, and the completer asks the loop to do
// fd work (re-arm reads after backpressure, arm EPOLLOUT, close a drained
// connection) through a note queue plus wake pipe.
//
// Idle cost: an idle connection is one fd plus one eConn struct — no
// goroutine, no stack, and no buffers: the read-staging buffer, request
// payloads, response destinations, and write chains are all leased from
// the server's arena.Leaser while work is in flight and returned the
// moment the connection drains. Buffer memory scales with in-flight
// requests, not open sockets.
//
// Accept paths: ListenAndServe gives every loop its own SO_REUSEPORT
// listener (the kernel shards the accept stream); ServeConfig adopts the
// caller's TCPListener by dup'ing its descriptor into every loop's epoll
// set with EPOLLEXCLUSIVE (one loop wakes per pending accept), so the
// whole existing test suite runs against this transport unmodified via
// MUTPS_TRANSPORT=epoll.
package netserver

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"mutps/internal/obs"
)

// epollSupported reports whether this build carries the epoll transport.
const epollSupported = true

// Constants missing from the stdlib syscall package (no new dependencies:
// x/sys is off-limits, so the two socket/epoll flags newer than the frozen
// syscall API are spelled out here).
const (
	sysSO_REUSEPORT   = 0xf
	sysEPOLLEXCLUSIVE = 1 << 28
)

// rbufBytes sizes the per-connection read-staging buffer leased while a
// connection has bytes in flight. Frames larger than this spill directly
// into the op's payload buffer, so it bounds staging, not frame size.
const rbufBytes = 32 << 10

// note bits: what a completer asks the loop to do with a connection.
const (
	noteResume uint8 = 1 << iota // window freed: re-arm EPOLLIN, re-parse
	noteWrite                    // write chain blocked on EAGAIN: arm EPOLLOUT
	noteKick                     // drained: re-check close conditions
)

// epollTransport multiplexes every connection over a fixed pool of event
// loops. It implements the transport interface.
type epollTransport struct {
	s     *Server
	loops []*eventLoop
	addr  net.Addr

	// lns holds the Go-side listeners kept alive for the loops' dup'd
	// accept descriptors (reuseport listeners, or the adopted caller
	// listener); closed with the transport.
	lns []net.Listener

	connCount atomic.Int64
	closed    atomic.Bool
	wg        sync.WaitGroup
}

// eConn is one connection's state: ~200 bytes plus its fd. The top block
// is loop-owned single-threaded decode state; everything under mu is
// shared with the completer.
type eConn struct {
	l  *eventLoop
	fd int

	// Loop-owned decode state (only the event-loop goroutine touches it
	// while the connection is registered; the close path reclaims it).
	rbuf    []byte // leased staging buffer; nil while idle
	rstart  int    // parse cursor into rbuf
	rlen    int    // valid bytes in rbuf
	cur     *netOp // claimed slot mid-payload (large frame spill)
	curN    int    // payload bytes already filled
	curLen  int    // payload length of the in-progress frame
	lastAct int64  // UnixNano of the last completed frame (idle sweep)

	exec protoExec

	mu          sync.Mutex
	pendq       []*netOp // submitted ops awaiting FIFO retirement
	pendHead    int      // retirement cursor into pendq (backing is reused)
	queued      bool     // sitting in (or headed for) the completer queue
	inflight    int      // submitted minus retired
	paused      bool     // window full: EPOLLIN disarmed
	doneReading bool     // EOF / read error / fatal frame: no more requests
	writeDead   bool     // write error: drop responses, drain only
	closed      bool     // fd closed, struct dead
	events      uint32   // currently-armed epoll event mask
	noted       uint8    // pending note bits (deduped)
	wbufs       [][]byte // leased response chain, wbufs[0][woff:] unsent
	woff        int
	wbytes      int  // unflushed chain bytes (write-side backpressure)
	wstall      bool // chain over wchainHigh: reads pause until it drains
	wresp       int  // responses appended since last writev-burst record

	inTouched bool // completer-owned: already in the current flush burst
}

// eventLoop is one epoll shard: its own epoll set, optional accept
// descriptor, wake pipe, fd→conn map, and completer.
type eventLoop struct {
	t  *epollTransport
	id int

	epfd  int
	lfd   int // accept descriptor, -1 if this loop does not accept
	wakeR int
	wakeW int

	conns map[int32]*eConn // loop-thread only

	mu    sync.Mutex
	notes []*eConn
	woken bool

	work chan *eConn // loop → completer handoff

	wakeups *obs.Counter
	gconns  *obs.Gauge
}

// newEpollTransport binds addr with one SO_REUSEPORT listener per event
// loop and starts the loop/completer pairs.
func newEpollTransport(s *Server, addr string) (transport, error) {
	t := &epollTransport{s: s}
	fail := func(err error) (transport, error) {
		t.abort()
		for _, ln := range t.lns {
			ln.Close()
		}
		return nil, err
	}
	n := s.eventLoopCount()
	for i := 0; i < n; i++ {
		ln, err := listenReusePort(addr)
		if err != nil {
			return fail(err)
		}
		t.lns = append(t.lns, ln)
		if t.addr == nil {
			t.addr = ln.Addr()
			// Later listeners bind the resolved port, not another ephemeral
			// one, when the caller asked for :0.
			addr = ln.Addr().String()
		}
		lfd, err := dupListenerFD(ln)
		if err != nil {
			return fail(err)
		}
		if err := t.addLoop(i, lfd, 0); err != nil {
			syscall.Close(lfd)
			return fail(err)
		}
	}
	t.start()
	return t, nil
}

// adoptEpollTransport serves an existing TCP listener on the epoll
// transport: its descriptor is dup'd into every loop's epoll set with
// EPOLLEXCLUSIVE so one loop wakes per pending accept. On failure the
// caller's listener is left open (ServeConfig falls back to the
// goroutine transport with it).
func adoptEpollTransport(s *Server, ln net.Listener) (transport, error) {
	tl, ok := ln.(*net.TCPListener)
	if !ok {
		return nil, fmt.Errorf("netserver: epoll transport cannot adopt %T", ln)
	}
	t := &epollTransport{s: s, addr: ln.Addr()}
	n := s.eventLoopCount()
	for i := 0; i < n; i++ {
		lfd, err := dupListenerFD(tl)
		if err != nil {
			t.abort()
			return nil, err
		}
		if err := t.addLoop(i, lfd, sysEPOLLEXCLUSIVE); err != nil {
			syscall.Close(lfd)
			t.abort()
			return nil, err
		}
	}
	t.lns = []net.Listener{ln}
	t.start()
	return t, nil
}

// abort releases the descriptors of a transport that never started (a
// constructor failed partway): no goroutines exist yet, so the fds can be
// closed inline. The lns slice is untouched — constructors only close
// listeners they themselves created.
func (t *epollTransport) abort() {
	for _, l := range t.loops {
		l.closeFDs()
	}
}

// listenReusePort binds one TCP listener with SO_REUSEPORT set before
// bind, so several listeners can share the port and the kernel shards the
// accept stream across them.
func listenReusePort(addr string) (net.Listener, error) {
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, sysSO_REUSEPORT, 1)
			})
			if err != nil {
				return err
			}
			return serr
		},
	}
	ln, err := lc.Listen(nil, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return ln, nil
}

// dupListenerFD dups a TCP listener's descriptor for raw accept4 use and
// puts it in nonblocking mode. The dup shares the listening socket (same
// open file description), so no extra reuseport member appears.
func dupListenerFD(ln net.Listener) (int, error) {
	tl, ok := ln.(*net.TCPListener)
	if !ok {
		return -1, fmt.Errorf("netserver: not a TCP listener: %T", ln)
	}
	f, err := tl.File()
	if err != nil {
		return -1, err
	}
	fd, err := syscall.Dup(int(f.Fd()))
	f.Close()
	if err != nil {
		return -1, err
	}
	syscall.CloseOnExec(fd)
	if err := syscall.SetNonblock(fd, true); err != nil {
		syscall.Close(fd)
		return -1, err
	}
	return fd, nil
}

// addLoop builds one event loop around an accept descriptor (epoll set,
// wake pipe, accept registration, instruments). exclusive carries the
// EPOLLEXCLUSIVE bit for the shared-listener accept path.
func (t *epollTransport) addLoop(id, lfd int, exclusive uint32) error {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return err
	}
	var p [2]int
	if err := syscall.Pipe2(p[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return err
	}
	l := &eventLoop{
		t: t, id: id, epfd: epfd, lfd: lfd, wakeR: p[0], wakeW: p[1],
		conns: map[int32]*eConn{},
		work:  make(chan *eConn, 1024),
	}
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: int32(l.wakeR)}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, l.wakeR, &ev); err != nil {
		l.closeFDs()
		return err
	}
	ev = syscall.EpollEvent{Events: syscall.EPOLLIN | exclusive, Fd: int32(lfd)}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, lfd, &ev); err != nil && exclusive != 0 {
		// Pre-4.5 kernel without EPOLLEXCLUSIVE: accept with the
		// thundering herd instead of failing the transport.
		ev.Events = syscall.EPOLLIN
		err = syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, lfd, &ev)
		if err != nil {
			l.closeFDs()
			return err
		}
	} else if err != nil {
		l.closeFDs()
		return err
	}
	reg := t.s.store.Metrics()
	label := fmt.Sprintf(`loop="%d"`, id)
	l.wakeups = reg.Counter("mutps_net_eventloop_wakeups_total", label,
		"epoll_wait returns per event loop.", 1)
	l.gconns = reg.Gauge("mutps_net_eventloop_conns", label,
		"Connections owned by this event loop.")
	t.loops = append(t.loops, l)
	return nil
}

// start launches every loop/completer pair.
func (t *epollTransport) start() {
	for _, l := range t.loops {
		t.wg.Add(2)
		go func(l *eventLoop) { defer t.wg.Done(); l.run() }(l)
		go func(l *eventLoop) { defer t.wg.Done(); l.completer() }(l)
	}
}

// Addr returns the listen address.
func (t *epollTransport) Addr() net.Addr { return t.addr }

func (t *epollTransport) name() string { return TransportEpoll }

// Close stops accepting, force-closes every connection (completers still
// drain in-flight store calls so no pooled call or leased buffer is
// abandoned), and waits for the loop and completer goroutines to exit.
// The wake pipes are closed last: a completer may notify a loop right up
// until it exits, and writing into a recycled descriptor number would
// corrupt an unrelated file.
func (t *epollTransport) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	for _, l := range t.loops {
		l.wake()
	}
	t.wg.Wait()
	for _, l := range t.loops {
		syscall.Close(l.wakeR)
		syscall.Close(l.wakeW)
	}
	for _, ln := range t.lns {
		ln.Close()
	}
	return nil
}

// wake forces the loop's next epoll_wait to return.
func (l *eventLoop) wake() {
	l.mu.Lock()
	if !l.woken {
		l.woken = true
		var b [1]byte
		syscall.Write(l.wakeW, b[:])
	}
	l.mu.Unlock()
}

// notify queues a note for the loop about c and wakes it. Callers hold
// c.mu; the note bits are deduped there.
func (l *eventLoop) notify(c *eConn, bits uint8) {
	if c.noted&bits == bits {
		return
	}
	enqueue := c.noted == 0
	c.noted |= bits
	if enqueue {
		l.mu.Lock()
		l.notes = append(l.notes, c)
		if !l.woken {
			l.woken = true
			var b [1]byte
			syscall.Write(l.wakeW, b[:])
		}
		l.mu.Unlock()
	}
}

// closeFDs releases the loop's own descriptors (not its connections).
func (l *eventLoop) closeFDs() {
	if l.lfd >= 0 {
		syscall.Close(l.lfd)
		l.lfd = -1
	}
	syscall.Close(l.wakeR)
	syscall.Close(l.wakeW)
	syscall.Close(l.epfd)
}

// run is the event-loop goroutine: epoll_wait, dispatch accepts, reads,
// write continuations, and completer notes, and sweep idle connections.
func (l *eventLoop) run() {
	defer close(l.work)
	events := make([]syscall.EpollEvent, 128)
	idle := l.t.s.cfg.IdleTimeout
	timeoutMs := 1000
	if idle > 0 {
		if ms := int(idle / (4 * time.Millisecond)); ms < timeoutMs {
			timeoutMs = ms
		}
		if timeoutMs < 10 {
			timeoutMs = 10
		}
	}
	var lastSweep time.Time
	for {
		n, err := syscall.EpollWait(l.epfd, events, timeoutMs)
		if err != nil && err != syscall.EINTR {
			break
		}
		if !obs.Disabled {
			l.wakeups.Inc(0)
		}
		if l.t.closed.Load() {
			break
		}
		for i := 0; i < n; i++ {
			ev := &events[i]
			switch int(ev.Fd) {
			case l.wakeR:
				l.drainWake()
			case l.lfd:
				l.acceptAll()
			default:
				c := l.conns[ev.Fd]
				if c == nil {
					continue
				}
				if ev.Events&syscall.EPOLLOUT != 0 {
					l.continueWrite(c)
				}
				if ev.Events&(syscall.EPOLLIN|syscall.EPOLLRDHUP|syscall.EPOLLHUP|syscall.EPOLLERR) != 0 {
					l.readable(c)
				}
			}
		}
		l.processNotes()
		if idle > 0 {
			if now := time.Now(); now.Sub(lastSweep) >= idle/4 {
				lastSweep = now
				l.sweepIdle(now, idle)
			}
		}
	}
	l.shutdown()
}

// drainWake empties the wake pipe and re-arms the wake flag.
func (l *eventLoop) drainWake() {
	var buf [64]byte
	for {
		n, _ := syscall.Read(l.wakeR, buf[:])
		if n < len(buf) {
			break
		}
	}
	l.mu.Lock()
	l.woken = false
	l.mu.Unlock()
}

// processNotes serves the completer's queued requests: re-arm reads after
// window backpressure, arm EPOLLOUT for blocked write chains, and
// re-check close conditions for drained connections.
func (l *eventLoop) processNotes() {
	l.mu.Lock()
	notes := l.notes
	l.notes = nil
	l.mu.Unlock()
	for _, c := range notes {
		c.mu.Lock()
		bits := c.noted
		c.noted = 0
		if c.closed {
			c.mu.Unlock()
			continue
		}
		if bits&noteWrite != 0 && len(c.wbufs) > 0 && !c.writeDead {
			l.modEventsLocked(c, c.events|syscall.EPOLLOUT)
		}
		resume := bits&noteResume != 0 && c.paused && !c.wstall &&
			c.inflight < l.t.s.window()
		if resume {
			c.paused = false
			if !c.doneReading {
				l.modEventsLocked(c, c.events|syscall.EPOLLIN|syscall.EPOLLRDHUP)
			}
		}
		kick := bits&noteKick != 0
		c.mu.Unlock()
		if resume {
			l.readable(c) // parse bytes stashed while paused, then read more
		}
		if kick {
			l.maybeClose(c)
			// The connection may simply be idle (not closing): make sure it
			// holds no staging buffer while it waits for the next burst.
			if !c.closed {
				l.stripReadBuf(c)
			}
		}
	}
}

// modEventsLocked updates the connection's armed epoll mask; c.mu held.
func (l *eventLoop) modEventsLocked(c *eConn, events uint32) {
	if events == c.events || c.closed {
		return
	}
	c.events = events
	ev := syscall.EpollEvent{Events: events, Fd: int32(c.fd)}
	syscall.EpollCtl(l.epfd, syscall.EPOLL_CTL_MOD, c.fd, &ev)
}

// acceptAll accepts until the listener drains, registering each
// connection with this loop (or rejecting it over the MaxConns cap).
func (l *eventLoop) acceptAll() {
	t := l.t
	for {
		fd, _, err := syscall.Accept4(l.lfd, syscall.SOCK_NONBLOCK|syscall.SOCK_CLOEXEC)
		if err != nil {
			return // EAGAIN, or the listener is gone
		}
		if t.s.cfg.MaxConns > 0 && int(t.connCount.Load()) >= t.s.cfg.MaxConns {
			l.rejectFD(fd)
			continue
		}
		syscall.SetsockoptInt(fd, syscall.IPPROTO_TCP, syscall.TCP_NODELAY, 1)
		c := &eConn{
			l: l, fd: fd,
			exec:    protoExec{s: t.s, connID: int(t.s.nextConn.Add(1))},
			events:  syscall.EPOLLIN | syscall.EPOLLRDHUP,
			lastAct: time.Now().UnixNano(),
		}
		ev := syscall.EpollEvent{Events: c.events, Fd: int32(fd)}
		if err := syscall.EpollCtl(l.epfd, syscall.EPOLL_CTL_ADD, fd, &ev); err != nil {
			syscall.Close(fd)
			continue
		}
		l.conns[int32(fd)] = c
		t.connCount.Add(1)
		t.s.openConns.Add(1)
		t.s.idleConns.Add(1)
		if !obs.Disabled {
			l.gconns.Add(1)
		}
	}
}

// rejectFD refuses a connection over the MaxConns cap with a proper
// protocol frame, best-effort on the nonblocking socket.
func (l *eventLoop) rejectFD(fd int) {
	l.t.s.rejected.Inc(0)
	msg := "connection limit reached"
	frame := make([]byte, 5+len(msg))
	frame[0] = StatusError
	binary.LittleEndian.PutUint32(frame[1:5], uint32(len(msg)))
	copy(frame[5:], msg)
	syscall.Write(fd, frame)
	syscall.Close(fd)
}

// sweepIdle closes connections that completed no frame within the idle
// timeout and have nothing in flight — the epoll transport's equivalent
// of the goroutine transport's per-frame read deadline.
func (l *eventLoop) sweepIdle(now time.Time, idle time.Duration) {
	cut := now.Add(-idle).UnixNano()
	var reap []*eConn
	for _, c := range l.conns {
		if c.lastAct >= cut {
			continue
		}
		c.mu.Lock()
		quiet := !c.closed && c.inflight == 0 && c.pendHead == len(c.pendq) && !c.queued && len(c.wbufs) == 0
		c.mu.Unlock()
		if quiet {
			reap = append(reap, c)
		}
	}
	for _, c := range reap {
		l.closeConn(c, true)
	}
}

// shutdown force-closes every connection and the loop's accept/epoll
// descriptors when the transport closes. Connections with in-flight store
// calls keep their pending FIFOs; the completer drains them (responses
// are dropped — the fd is gone) so every pooled call and leased buffer is
// recovered. The wake pipe stays open for the completer's last notifies;
// transport Close reclaims it after both goroutines exit.
func (l *eventLoop) shutdown() {
	for _, c := range l.conns {
		c.mu.Lock()
		c.doneReading = true
		c.writeDead = true
		l.dropChainLocked(c)
		c.mu.Unlock()
		l.closeConn(c, c.inflightIs0())
	}
	if l.lfd >= 0 {
		syscall.Close(l.lfd)
		l.lfd = -1
	}
	syscall.Close(l.epfd)
}

// inflightIs0 reports whether nothing is in flight (for the idle-gauge
// edge at close time).
func (c *eConn) inflightIs0() bool {
	c.mu.Lock()
	z := c.inflight == 0
	c.mu.Unlock()
	return z
}

// maybeClose closes c if reading has stopped and everything owed has been
// retired and flushed. Loop thread only.
func (l *eventLoop) maybeClose(c *eConn) {
	c.mu.Lock()
	ready := !c.closed && c.doneReading &&
		c.pendHead == len(c.pendq) && !c.queued && c.inflight == 0 &&
		(len(c.wbufs) == 0 || c.writeDead)
	c.mu.Unlock()
	if ready {
		l.closeConn(c, true)
	}
}

// closeConn tears one connection down: deregister, close the fd, reclaim
// every leased buffer the loop side still holds, and settle the gauges.
// Loop thread only; idempotent. wasIdle reports whether the connection
// had nothing in flight (the idle gauge counts it).
func (l *eventLoop) closeConn(c *eConn, wasIdle bool) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	l.dropChainLocked(c)
	c.mu.Unlock()
	syscall.EpollCtl(l.epfd, syscall.EPOLL_CTL_DEL, c.fd, nil)
	syscall.Close(c.fd)
	delete(l.conns, int32(c.fd))
	s := l.t.s
	if c.rbuf != nil {
		s.leaser.Put(c.rbuf)
		c.rbuf = nil
	}
	if c.cur != nil {
		c.cur.releaseBufs(s.leaser)
		opPool.Put(c.cur)
		c.cur = nil
	}
	l.t.connCount.Add(-1)
	s.openConns.Add(-1)
	if wasIdle {
		s.idleConns.Add(-1)
	}
	if !obs.Disabled {
		l.gconns.Add(-1)
	}
}

// dropChainLocked releases the write chain (write path is dead); c.mu held.
func (l *eventLoop) dropChainLocked(c *eConn) {
	for i, b := range c.wbufs {
		l.t.s.leaser.Put(b)
		c.wbufs[i] = nil
	}
	c.wbufs = c.wbufs[:0]
	c.woff = 0
	c.wbytes = 0
	c.wstall = false
}
