package netserver

import (
	"bytes"
	"encoding/binary"
	"net"
	"sync"
	"testing"

	"mutps/internal/kvcore"
)

func startServer(t *testing.T, engine kvcore.Engine) (*Server, *Client) {
	t.Helper()
	store, err := kvcore.Open(kvcore.Config{Engine: engine, Workers: 3, CRWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(store, ln)
	cli, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
		store.Close()
	})
	return srv, cli
}

func TestGetPutDeleteOverTCP(t *testing.T) {
	_, cli := startServer(t, kvcore.Hash)
	if _, found, err := cli.Get(1); err != nil || found {
		t.Fatalf("empty get: %v %v", found, err)
	}
	if err := cli.Put(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, found, err := cli.Get(1)
	if err != nil || !found || string(v) != "hello" {
		t.Fatalf("get after put: %q %v %v", v, found, err)
	}
	ok, err := cli.Delete(1)
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if ok, _ := cli.Delete(1); ok {
		t.Fatal("second delete must report missing")
	}
}

func TestEmptyAndLargeValues(t *testing.T) {
	_, cli := startServer(t, kvcore.Hash)
	if err := cli.Put(5, nil); err != nil {
		t.Fatal(err)
	}
	v, found, _ := cli.Get(5)
	if !found || len(v) != 0 {
		t.Fatal("empty value must round-trip")
	}
	big := bytes.Repeat([]byte{0xEE}, 1<<20)
	if err := cli.Put(6, big); err != nil {
		t.Fatal(err)
	}
	v, found, _ = cli.Get(6)
	if !found || !bytes.Equal(v, big) {
		t.Fatal("1 MB value must round-trip")
	}
}

func TestScanOverTCP(t *testing.T) {
	_, cli := startServer(t, kvcore.Tree)
	for i := uint64(0); i < 20; i += 2 {
		if err := cli.Put(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	kvs, err := cli.Scan(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{6, 8, 10, 12}
	if len(kvs) != 4 {
		t.Fatalf("scan returned %d entries", len(kvs))
	}
	for i, kv := range kvs {
		if kv.Key != want[i] || kv.Value[0] != byte(want[i]) {
			t.Fatalf("scan[%d] = %+v", i, kv)
		}
	}
}

func TestScanOnHashEngineReturnsError(t *testing.T) {
	_, cli := startServer(t, kvcore.Hash)
	if _, err := cli.Scan(0, 5); err == nil {
		t.Fatal("scan on hash engine must error")
	}
	// The connection must survive an error response.
	if err := cli.Put(1, []byte("x")); err != nil {
		t.Fatal("connection must remain usable after an error response")
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := startServer(t, kvcore.Hash)
	const clients, per = 4, 200
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli, err := Dial(srv.Addr().String())
			if err != nil {
				panic(err)
			}
			defer cli.Close()
			for i := 0; i < per; i++ {
				k := uint64(c*per + i)
				v := make([]byte, 8)
				binary.LittleEndian.PutUint64(v, k)
				if err := cli.Put(k, v); err != nil {
					panic(err)
				}
				got, found, err := cli.Get(k)
				if err != nil || !found || binary.LittleEndian.Uint64(got) != k {
					panic("read-your-write failed over TCP")
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestMalformedFrameRejected(t *testing.T) {
	srv, _ := startServer(t, kvcore.Hash)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Unknown op: server responds with an error status but keeps serving.
	var hdr [13]byte
	hdr[0] = 200
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	var resp [5]byte
	if _, err := readFull(conn, resp[:]); err != nil {
		t.Fatal(err)
	}
	if resp[0] != StatusError {
		t.Fatalf("status = %d, want error", resp[0])
	}
	// Oversized payload: connection is dropped after the error.
	hdr[0] = OpPut
	binary.LittleEndian.PutUint32(hdr[9:13], maxPayload+1)
	// Drain the error body first.
	n := binary.LittleEndian.Uint32(resp[1:5])
	buf := make([]byte, n)
	readFull(conn, buf)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
}

func readFull(conn net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := conn.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func TestStatsOverTCP(t *testing.T) {
	_, cli := startServer(t, kvcore.Hash)
	cli.Put(1, []byte("x"))
	cli.Get(1)
	st, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops < 2 || st.Items != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMidFrameDisconnectDoesNotWedgeServer(t *testing.T) {
	srv, cli := startServer(t, kvcore.Hash)
	// Open a raw connection, send half a header, and hang up.
	raw, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte{OpPut, 1, 2, 3})
	raw.Close()
	// A partial payload after a full header must also be survivable.
	raw2, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	var hdr [13]byte
	hdr[0] = OpPut
	binary.LittleEndian.PutUint32(hdr[9:13], 100)
	raw2.Write(hdr[:])
	raw2.Write([]byte("only ten b"))
	raw2.Close()
	// The server must still serve healthy clients.
	if err := cli.Put(7, []byte("alive")); err != nil {
		t.Fatal("server wedged by malformed client")
	}
	if v, ok, _ := cli.Get(7); !ok || string(v) != "alive" {
		t.Fatal("server state corrupted by malformed client")
	}
}
