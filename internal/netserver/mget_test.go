package netserver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"mutps/internal/kvcore"
)

func TestMGetRoundTrip(t *testing.T) {
	_, cli := startServer(t, kvcore.Hash)
	for k := uint64(0); k < 64; k += 2 {
		if err := cli.Put(k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	keys := make([]uint64, 64)
	for i := range keys {
		keys[i] = uint64(i)
	}
	vals, found, err := cli.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != len(keys) || len(found) != len(keys) {
		t.Fatalf("positional lengths: %d vals %d found, want %d", len(vals), len(found), len(keys))
	}
	for i, k := range keys {
		if k%2 == 0 {
			if !found[i] || string(vals[i]) != fmt.Sprintf("v%d", k) {
				t.Fatalf("key %d: found=%v val=%q", k, found[i], vals[i])
			}
		} else if found[i] || vals[i] != nil {
			t.Fatalf("key %d should be missing, got found=%v val=%q", k, found[i], vals[i])
		}
	}
}

func TestMGetEmptyBatch(t *testing.T) {
	_, cli := startServer(t, kvcore.Hash)
	vals, found, err := cli.MGet(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 0 || len(found) != 0 {
		t.Fatalf("empty batch: %d vals %d found", len(vals), len(found))
	}
}

func TestMGetMalformedPayloadRejected(t *testing.T) {
	_, cli := startServer(t, kvcore.Hash)
	// Count claims 4 keys but the payload carries 1: a protocol error the
	// connection survives.
	payload := make([]byte, 4+8)
	binary.LittleEndian.PutUint32(payload, 4)
	if _, _, err := cli.roundTrip(OpMGet, 0, payload); err == nil ||
		!strings.Contains(err.Error(), "mget payload") {
		t.Fatalf("want payload error, got %v", err)
	}
	// Oversized count is rejected the same way.
	keys := make([]uint64, MaxMGetKeys+1)
	over := AppendMGetRequest(nil, keys)
	if _, _, err := cli.roundTrip(OpMGet, 0, over); err == nil ||
		!strings.Contains(err.Error(), "mget count") {
		t.Fatalf("want count error, got %v", err)
	}
	// The connection stays in sync after both rejections.
	if err := cli.Put(9, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := cli.Get(9); err != nil || !ok || string(v) != "alive" {
		t.Fatalf("connection desynced after mget errors: %q %v %v", v, ok, err)
	}
}

// TestMGetPipelinedSharesWindow drives mget frames through the pipelined
// client interleaved with single ops: positional results must line up and
// FIFO ordering must hold across frame kinds.
func TestMGetPipelinedSharesWindow(t *testing.T) {
	store, err := kvcore.Open(kvcore.Config{Engine: kvcore.Hash, Workers: 3, CRWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeConfig(store, ln, Config{MaxInflight: 8})
	defer srv.Close()
	pc, err := DialPipeline(srv.Addr().String(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()

	for k := uint64(0); k < 100; k++ {
		f, err := pc.Send(OpPut, k, []byte(fmt.Sprintf("p%d", k)))
		if err != nil {
			t.Fatal(err)
		}
		pc.Flush()
		if st, _, err := f.Wait(); err != nil || st != StatusFound {
			t.Fatalf("put %d: %d %v", k, st, err)
		}
		f.Release()
	}
	var futs []*Future
	var frames [][]uint64
	for base := uint64(0); base < 100; base += 25 {
		keys := []uint64{base, base + 1, base + 200, base + 2}
		frames = append(frames, keys)
		f, err := pc.Send(OpMGet, 0, AppendMGetRequest(nil, keys))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	pc.Flush()
	for fi, f := range futs {
		st, body, err := f.Wait()
		if err != nil || st != StatusFound {
			t.Fatalf("mget frame %d: %d %v", fi, st, err)
		}
		vals, found, err := DecodeMGet(body)
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range frames[fi] {
			want := k < 100
			if found[i] != want {
				t.Fatalf("frame %d key %d: found=%v want %v", fi, k, found[i], want)
			}
			if want && string(vals[i]) != fmt.Sprintf("p%d", k) {
				t.Fatalf("frame %d key %d: val %q", fi, k, vals[i])
			}
		}
		f.Release()
	}
}

func TestPipelineCloseIdempotent(t *testing.T) {
	store, err := kvcore.Open(kvcore.Config{Engine: kvcore.Hash, Workers: 2, CRWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(store, ln)
	defer srv.Close()
	pc, err := DialPipeline(srv.Addr().String(), 4)
	if err != nil {
		t.Fatal(err)
	}
	first := pc.Close()
	for i := 0; i < 3; i++ {
		if got := pc.Close(); got != first {
			t.Fatalf("Close call %d returned %v, first returned %v", i+2, got, first)
		}
	}
	// Concurrent double-Close must also be safe and consistent.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := pc.Close(); got != first {
				t.Errorf("concurrent Close returned %v, want %v", got, first)
			}
		}()
	}
	wg.Wait()
}

func TestSendAfterCloseErrClosed(t *testing.T) {
	store, err := kvcore.Open(kvcore.Config{Engine: kvcore.Hash, Workers: 2, CRWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(store, ln)
	defer srv.Close()
	pc, err := DialPipeline(srv.Addr().String(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := pc.Close(); err != nil {
		t.Fatal(err)
	}
	// Every post-Close Send must fail with ErrClosed deterministically —
	// not with a bufio write error, and never by stranding a future.
	for i := 0; i < 100; i++ {
		f, err := pc.Send(OpGet, uint64(i), nil)
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Send %d after Close: err=%v, want ErrClosed", i, err)
		}
		if f != nil {
			t.Fatalf("Send %d after Close returned a future", i)
		}
	}
	if err := pc.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after Close: %v, want ErrClosed", err)
	}
}

// TestSendCloseRace hammers Send against Close: every Send must either
// return a future that completes, or an error — no hangs, no stranded
// futures. Run with -race in CI.
func TestSendCloseRace(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		store, err := kvcore.Open(kvcore.Config{Engine: kvcore.Hash, Workers: 2, CRWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := Serve(store, ln)
		pc, err := DialPipeline(srv.Addr().String(), 4)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					f, err := pc.Send(OpGet, uint64(i), nil)
					if err != nil {
						return
					}
					pc.Flush()
					f.Wait()
					f.Release()
				}
			}(g)
		}
		pc.Close()
		wg.Wait() // a stranded future would hang here
		srv.Close()
		store.Close()
	}
}
