// The protocol layer of the network server: frame semantics, independent
// of how bytes arrive and leave.
//
// netserver is split into two layers (DESIGN.md §14):
//
//   - the TRANSPORT layer owns sockets: connection lifecycle, readiness,
//     read buffers, and response flushing. Two implementations exist —
//     the portable goroutine-per-connection transport (transport.go +
//     pipeserve.go) and the Linux epoll event-loop transport
//     (epoll_linux.go + completer_linux.go).
//   - the PROTOCOL layer (this file) owns frames: decoding a request into
//     a window slot, submitting it through the store's async facade, and
//     retiring the completed slot into wire bytes, in strict FIFO order.
//
// Both transports drive the same protoExec, so the bytes a client
// observes are identical regardless of transport — the byte-for-byte
// equivalence the tests pin down. The protocol layer writes responses
// through the small respWriter interface; a transport decides what
// "write" and "flush" mean (bufio over a blocking socket, or a leased
// buffer chain flushed by writev bursts).
//
// Buffer discipline: every buffer a slot owns — the decoded put payload,
// the get destination (rpc Dst), the per-key mget destinations — is
// leased from the shared arena.Leaser while a request is in flight and
// returned when the connection's window drains (netOp.releaseBufs). An
// idle connection therefore holds no buffer memory at all, on either
// transport; this is what makes 100k mostly-idle connections cost ~0.
package netserver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"mutps/internal/arena"
	"mutps/internal/kvcore"
	"mutps/internal/obs"
	"mutps/internal/rpc"
)

// Pre-resolved error payloads for protocol violations, allocated once so
// rejecting a malformed frame stays allocation-free.
var (
	errMsgPayloadTooLarge = []byte("payload too large")
	errMsgScanPayload     = []byte("scan payload must be a uint32 count")
	errMsgScanCount       = []byte("scan count too large")
	errMsgMGetPayload     = []byte("mget payload must be count(4) + count*key(8)")
	errMsgMGetCount       = []byte("mget count too large")
	errMsgPutTTLPayload   = []byte("put-ttl payload must lead with ttl_nanos(8)")
)

// valLeaseBytes sizes the destination buffer leased for a get: it covers
// every arena-pooled value size (≤ arena.MaxClassBytes), so pooled values
// complete without the store growing the buffer on the heap.
const valLeaseBytes = arena.MaxClassBytes

// submitHook, when set, intercepts asynchronous submission with an
// injected error before the store sees the request. It exists so tests can
// drive the shed path (rpc.ErrBacklogged → StatusBacklogged) and the
// closed path deterministically; production code never sets it. Atomic so
// a test can install/clear it while server goroutines are live.
var submitHook atomic.Pointer[func(op byte, key uint64) error]

// netOp is one slot of a connection's in-flight window: the decoded
// request header, either the store's completion future (async ops) or a
// pre-resolved status (protocol errors, submit failures, barrier markers),
// and the slot-owned buffers the request and response flow through.
type netOp struct {
	op         byte
	status     byte // pre-resolved response status when call is nil
	barrier    bool // execute inline at retire time (Scan/Stats/Stats2)
	closeAfter bool // fatal protocol error: retire this, then drop the conn
	key        uint64
	scanCount  uint32
	call       *rpc.Call
	msg        []byte // pre-resolved response payload
	payload    []byte // leased put-payload buffer (stable until retire)
	val        []byte // get-destination buffer (rpc Dst)
	valLeased  bool   // val came from the leaser (vs adopted store growth)
	t0         time.Time

	// Batched multi-get state: one mget frame occupies one window slot but
	// fans out into len(mcalls) async store gets, which the completion
	// stage retires together as one response frame (one FIFO burst for the
	// whole batch). mvals are the per-key destination buffers, leased on
	// demand and kept across requests while the window is busy.
	mget    bool
	mgetErr error // submit failed mid-batch: whole frame fails after drain
	mcalls  []*rpc.Call
	mvals   [][]byte
	mleased []bool
}

// reset clears per-request state, keeping the slot's buffers for reuse.
func (e *netOp) reset(op byte, key uint64) {
	e.op = op
	e.key = key
	e.call = nil
	e.barrier = false
	e.closeAfter = false
	e.status = 0
	e.msg = nil
	e.mget = false
}

// releaseBufs returns every leased buffer the slot holds. Called when the
// connection's window drains (so an idle connection holds no buffer
// memory) and when a connection dies. Safe only once the slot is retired:
// the response has been encoded and no store worker can still read the
// payload or write the destination.
func (e *netOp) releaseBufs(l *arena.Leaser) {
	l.Put(e.payload)
	e.payload = nil
	if e.valLeased {
		l.Put(e.val)
	}
	e.val = nil
	e.valLeased = false
	for i := range e.mvals {
		if e.mleased[i] {
			l.Put(e.mvals[i])
		}
		e.mvals[i] = nil
		e.mleased[i] = false
	}
}

// respWriter is how the protocol layer hands a transport one encoded
// response. writeOut must tolerate a dead peer (swallow and discard);
// flushBarrier must push every buffered response toward the wire — the
// protocol calls it before blocking on a barrier op (or before waiting on
// a window head, via the transports' own completion loops) so responses
// are never held hostage by a slow operation.
type respWriter interface {
	writeOut(status byte, body []byte)
	flushBarrier()
}

// protoExec executes decoded frames against the store for one
// connection: the submit half enters a netOp into the async facade, the
// retire half resolves it into wire bytes through a respWriter. One
// protoExec per connection; connID shards the per-op instruments and body
// is the reusable scan/stats/mget response build buffer.
type protoExec struct {
	s      *Server
	connID int
	body   []byte
}

// leaseVal ensures the slot has a destination buffer for a get.
func (x *protoExec) leaseVal(e *netOp) {
	if e.val == nil {
		e.val = x.s.leaser.Get(valLeaseBytes)
		e.valLeased = true
	}
}

// submit enters one decoded request into the store's async path, or
// pre-resolves the slot for protocol errors, submit failures, and barrier
// ops. payload is the request payload (stable until the slot is retired —
// the store reads a put's value only when a worker executes it).
func (x *protoExec) submit(e *netOp, payload []byte) {
	if hook := submitHook.Load(); hook != nil {
		if err := (*hook)(e.op, e.key); err != nil {
			x.failSubmit(e, err)
			return
		}
	}
	store := x.s.store
	var err error
	switch e.op {
	case OpGet:
		x.leaseVal(e)
		e.call, err = store.GetAsync(e.key, e.val[:0])
	case OpGetTTL:
		// Same store path as a get; the remaining TTL is encoded at retire
		// time from the call's expiry stamp.
		x.leaseVal(e)
		e.call, err = store.GetAsync(e.key, e.val[:0])
	case OpPut:
		e.call, err = store.PutAsync(e.key, payload)
	case OpPutTTL:
		if len(payload) < 8 {
			e.status, e.msg = StatusError, errMsgPutTTLPayload
			return
		}
		// ttl 0 on the wire selects the server's default, matching the
		// store facade's ttl <= 0 convention. The value subslice stays
		// valid until retire — it aliases the slot-owned payload buffer.
		ttl := time.Duration(binary.LittleEndian.Uint64(payload))
		e.call, err = store.PutTTLAsync(e.key, payload[8:], ttl)
	case OpDelete:
		e.call, err = store.DeleteAsync(e.key)
	case OpScan:
		if len(payload) != 4 {
			e.status, e.msg = StatusError, errMsgScanPayload
			return
		}
		count := binary.LittleEndian.Uint32(payload)
		if count > kvcore.MaxScanCount {
			e.status, e.msg = StatusError, errMsgScanCount
			return
		}
		e.scanCount = count
		e.barrier = true
	case OpStats, OpStats2:
		e.barrier = true
	case OpMGet:
		x.submitMGet(e, payload)
	default:
		e.status, e.msg = StatusError, []byte(fmt.Sprintf("unknown op %d", e.op))
	}
	if err != nil {
		x.failSubmit(e, err)
	}
}

// submitMGet fans one mget frame out into per-key async gets. Every key
// enters the store's receive path at once (the batch shares the pipelined
// window slot, so the whole frame costs one unit of connection-level
// backpressure) and the completion stage retires them together. A submit
// failure mid-batch (backlogged, closing) fails the whole frame — gets are
// side-effect-free, so the client retries the frame safely — but the
// already-submitted prefix is still waited out at retire time so no pooled
// call or buffer is abandoned.
func (x *protoExec) submitMGet(e *netOp, payload []byte) {
	if len(payload) < 4 {
		e.status, e.msg = StatusError, errMsgMGetPayload
		return
	}
	n := int(binary.LittleEndian.Uint32(payload))
	if n > MaxMGetKeys {
		e.status, e.msg = StatusError, errMsgMGetCount
		return
	}
	if len(payload) != 4+8*n {
		e.status, e.msg = StatusError, errMsgMGetPayload
		return
	}
	e.mget = true
	e.mgetErr = nil
	e.mcalls = e.mcalls[:0]
	for len(e.mvals) < n {
		e.mvals = append(e.mvals, nil)
		e.mleased = append(e.mleased, false)
	}
	if !obs.Disabled {
		x.s.mgetKeys.Record(x.connID, uint64(n))
	}
	store := x.s.store
	for i := 0; i < n; i++ {
		key := binary.LittleEndian.Uint64(payload[4+8*i:])
		if e.mvals[i] == nil {
			e.mvals[i] = x.s.leaser.Get(valLeaseBytes)
			e.mleased[i] = true
		}
		c, err := store.GetAsync(key, e.mvals[i][:0])
		if err != nil {
			e.mgetErr = err
			return
		}
		e.mcalls = append(e.mcalls, c)
	}
}

// failSubmit pre-resolves a slot whose request never entered the store:
// overload shedding becomes the retryable StatusBacklogged (in request
// order, exactly like the synchronous path), everything else a
// StatusError carrying the message.
func (x *protoExec) failSubmit(e *netOp, err error) {
	e.call = nil
	if errors.Is(err, rpc.ErrBacklogged) {
		e.status, e.msg = StatusBacklogged, nil
		return
	}
	e.status, e.msg = StatusError, []byte(err.Error())
}

// retire resolves one window slot into its wire response: wait out the
// store call (FIFO means the head must complete before anything later may
// be written), execute barrier ops inline, or emit the pre-resolved
// status. The slot's buffers are reusable as soon as this returns — the
// response bytes have been copied into the transport's write path and the
// pooled call released.
func (x *protoExec) retire(e *netOp, w respWriter) {
	switch {
	case e.call != nil:
		c := e.call
		c.Wait()
		switch {
		case c.Err != nil:
			if errors.Is(c.Err, rpc.ErrBacklogged) {
				w.writeOut(StatusBacklogged, nil)
			} else {
				w.writeOut(StatusError, []byte(c.Err.Error()))
			}
		case e.op == OpGet:
			switch {
			case c.Found:
				w.writeOut(StatusFound, c.Value)
			case c.Expired:
				w.writeOut(StatusExpired, nil)
			default:
				w.writeOut(StatusNotFound, nil)
			}
		case e.op == OpGetTTL:
			x.retireGetTTL(c, w)
		case e.op == OpPut, e.op == OpPutTTL:
			w.writeOut(StatusFound, nil)
		default: // OpDelete
			if c.Found {
				w.writeOut(StatusFound, nil)
			} else {
				w.writeOut(StatusNotFound, nil)
			}
		}
		// Keep a destination buffer the store had to grow, so the next get
		// through this slot fits without allocating; the abandoned lease
		// goes back to the pool.
		if cap(c.Value) > cap(e.val) {
			if e.valLeased {
				x.s.leaser.Put(e.val)
			}
			e.val = c.Value
			e.valLeased = false
		}
		e.call = nil
		c.Release()
	case e.mget:
		x.retireMGet(e, w)
	case e.barrier:
		x.retireBarrier(e, w)
	default:
		w.writeOut(e.status, e.msg)
	}
	if !obs.Disabled {
		if li := latIndex(e.op); li >= 0 {
			x.s.lat[li].Record(x.connID, uint64(time.Since(e.t0)))
		}
		x.s.retired.Inc(x.connID)
		x.s.inflight.Add(-1)
	}
}

// retireGetTTL encodes one completed get-ttl call: the found response
// leads with the remaining TTL in nanoseconds (0 = no expiry) followed by
// the value. A deadline that passed between the worker's check and encode
// time retires as StatusExpired rather than shipping a dead value.
func (x *protoExec) retireGetTTL(c *rpc.Call, w respWriter) {
	if !c.Found {
		if c.Expired {
			w.writeOut(StatusExpired, nil)
		} else {
			w.writeOut(StatusNotFound, nil)
		}
		return
	}
	var rem uint64
	if c.Expiry != 0 {
		d := int64(c.Expiry) - time.Now().UnixNano()
		if d <= 0 {
			w.writeOut(StatusExpired, nil)
			return
		}
		rem = uint64(d)
	}
	body := append(x.body[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	binary.LittleEndian.PutUint64(body, rem)
	body = append(body, c.Value...)
	x.body = body
	w.writeOut(StatusFound, body)
}

// retireMGet resolves one mget frame: wait every per-key call in request
// order (by FIFO, the whole batch retires as one burst at this slot's
// position), encode the positional response into the build buffer, and
// recirculate the grown destination buffers into the slot. If any submit
// or call failed, the frame degrades to a single whole-frame status —
// backlogged when retryable — after every in-flight call has been drained.
func (x *protoExec) retireMGet(e *netOp, w respWriter) {
	body := append(x.body[:0], 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(body, uint32(len(e.mcalls)))
	failed := e.mgetErr
	var hdr [5]byte
	for i, c := range e.mcalls {
		c.Wait()
		if c.Err != nil && failed == nil {
			failed = c.Err
		}
		if failed == nil {
			hdr[0] = 0
			if c.Found {
				hdr[0] = 1
			}
			binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(c.Value)))
			body = append(body, hdr[:]...)
			body = append(body, c.Value...)
		}
		// Keep a destination buffer the store had to grow, as retire does
		// for single gets.
		if cap(c.Value) > cap(e.mvals[i]) {
			if e.mleased[i] {
				x.s.leaser.Put(e.mvals[i])
			}
			e.mvals[i] = c.Value
			e.mleased[i] = false
		}
		c.Release()
	}
	e.mcalls = e.mcalls[:0]
	e.mgetErr = nil
	x.body = body
	if failed != nil {
		if errors.Is(failed, rpc.ErrBacklogged) {
			w.writeOut(StatusBacklogged, nil)
		} else {
			w.writeOut(StatusError, []byte(failed.Error()))
		}
		return
	}
	w.writeOut(StatusFound, body)
}

// retireBarrier executes a Scan/Stats/Stats2 inline. Reaching here means
// the FIFO has retired every earlier response — the barrier semantics —
// so the op observes all prior writes on this connection; responses to
// already-buffered bursts are flushed first so a slow scan doesn't hold
// them hostage.
func (x *protoExec) retireBarrier(e *netOp, w respWriter) {
	w.flushBarrier()
	switch e.op {
	case OpStats:
		st := x.s.store.Stats()
		var body [40]byte
		binary.LittleEndian.PutUint64(body[0:], st.Ops)
		binary.LittleEndian.PutUint64(body[8:], st.CRHits)
		binary.LittleEndian.PutUint64(body[16:], st.Forwarded)
		binary.LittleEndian.PutUint64(body[24:], uint64(st.Items))
		binary.LittleEndian.PutUint64(body[32:], uint64(st.HotSize))
		w.writeOut(StatusFound, body[:])
	case OpStats2:
		x.body = x.s.appendStats2(x.body[:0])
		w.writeOut(StatusFound, x.body)
	case OpScan:
		kvs, err := x.s.store.Scan(e.key, int(e.scanCount))
		if err != nil {
			if errors.Is(err, rpc.ErrBacklogged) {
				w.writeOut(StatusBacklogged, nil)
			} else {
				w.writeOut(StatusError, []byte(err.Error()))
			}
			return
		}
		body := append(x.body[:0], 0, 0, 0, 0)
		binary.LittleEndian.PutUint32(body, uint32(len(kvs)))
		var tmp [12]byte
		for _, kv := range kvs {
			binary.LittleEndian.PutUint64(tmp[0:8], kv.Key)
			binary.LittleEndian.PutUint32(tmp[8:12], uint32(len(kv.Value)))
			body = append(body, tmp[:]...)
			body = append(body, kv.Value...)
		}
		x.body = body
		w.writeOut(StatusFound, body)
	}
}
