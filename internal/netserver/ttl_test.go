package netserver

import (
	"bytes"
	"encoding/binary"
	"mutps/internal/kvcore"
	"testing"
	"time"
)

func TestPutGetTTLOverTCP(t *testing.T) {
	_, cli := startServer(t, kvcore.Hash)
	if err := cli.PutTTL(1, []byte("soon"), 80*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := cli.Put(2, []byte("forever")); err != nil {
		t.Fatal(err)
	}
	v, ttl, found, err := cli.GetTTL(1)
	if err != nil || !found || string(v) != "soon" {
		t.Fatalf("get-ttl before expiry: %q %v %v", v, found, err)
	}
	if ttl <= 0 || ttl > 80*time.Millisecond {
		t.Fatalf("remaining ttl %v out of range", ttl)
	}
	if v, ttl, found, _ := cli.GetTTL(2); !found || ttl != 0 || string(v) != "forever" {
		t.Fatalf("ttl-free key: %q %v %v, want hit with ttl 0", v, ttl, found)
	}
	time.Sleep(100 * time.Millisecond)
	// Both the plain and the TTL-aware client read the expired key as a
	// miss; the TTL client loses no information by the degradation.
	if _, found, err := cli.Get(1); err != nil || found {
		t.Fatalf("expired key via Get: found=%v err=%v", found, err)
	}
	if _, _, found, err := cli.GetTTL(1); err != nil || found {
		t.Fatalf("expired key via GetTTL: found=%v err=%v", found, err)
	}
	if v, found, _ := cli.Get(2); !found || string(v) != "forever" {
		t.Fatal("ttl-free key must survive")
	}
}

// TestExpiredStatusOnWire reads the raw status byte to pin the wire
// contract: an expired key answers StatusExpired (not StatusNotFound), an
// absent key answers StatusNotFound, and old clients — which test
// status == StatusFound — treat both as a miss.
func TestExpiredStatusOnWire(t *testing.T) {
	_, cli := startServer(t, kvcore.Hash)
	// One key per probe: the first read of an expired key lazily unlinks
	// it, so a second read would legitimately answer plain not-found.
	for _, k := range []uint64{7, 17} {
		if err := cli.PutTTL(k, []byte("x"), 30*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	for op, key := range map[byte]uint64{OpGet: 7, OpGetTTL: 17} {
		st, _, err := cli.roundTrip(op, key, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st != StatusExpired {
			t.Fatalf("op %d on expired key: status %d, want StatusExpired", op, st)
		}
	}
	if st, _, err := cli.roundTrip(OpGet, 8, nil); err != nil || st != StatusNotFound {
		t.Fatalf("absent key: status %d err %v, want StatusNotFound", st, err)
	}
}

func TestPutTTLZeroSelectsServerDefault(t *testing.T) {
	// PutTTL with ttl <= 0 encodes a zero ttl field, which the server maps
	// to its configured default; with no default configured the key must
	// simply never expire.
	_, cli := startServer(t, kvcore.Hash)
	if err := cli.PutTTL(3, []byte("v"), 0); err != nil {
		t.Fatal(err)
	}
	if v, ttl, found, _ := cli.GetTTL(3); !found || ttl != 0 || string(v) != "v" {
		t.Fatalf("zero-ttl put: %q %v %v", v, ttl, found)
	}
}

func TestPutTTLMalformedPayload(t *testing.T) {
	_, cli := startServer(t, kvcore.Hash)
	// A put-ttl frame whose payload is shorter than the ttl field is an
	// in-protocol error; the connection must stay usable.
	st, _, err := cli.roundTrip(OpPutTTL, 1, []byte{1, 2, 3})
	if err == nil || st != StatusError {
		t.Fatalf("short put-ttl: status %d err %v, want StatusError", st, err)
	}
	if err := cli.Put(1, []byte("ok")); err != nil {
		t.Fatal("connection unusable after in-protocol error")
	}
}

// TestTTLRoundTripEncoding pins the frame layout independently of the
// client helpers: ttl_nanos(8) + value on the request, remaining
// ttl_nanos(8) + value on the found response.
func TestTTLRoundTripEncoding(t *testing.T) {
	_, cli := startServer(t, kvcore.Hash)
	payload := make([]byte, 8+3)
	binary.LittleEndian.PutUint64(payload, uint64(time.Hour))
	copy(payload[8:], "abc")
	if st, _, err := cli.roundTrip(OpPutTTL, 9, payload); err != nil || st != StatusFound {
		t.Fatalf("raw put-ttl: status %d err %v", st, err)
	}
	st, body, err := cli.roundTrip(OpGetTTL, 9, nil)
	if err != nil || st != StatusFound {
		t.Fatalf("raw get-ttl: status %d err %v", st, err)
	}
	if len(body) < 8 || !bytes.Equal(body[8:], []byte("abc")) {
		t.Fatalf("get-ttl body %q", body)
	}
	rem := binary.LittleEndian.Uint64(body)
	if rem == 0 || rem > uint64(time.Hour) {
		t.Fatalf("remaining ttl %d out of range", rem)
	}
}
