// Package netserver exposes a μTPS store over TCP with a compact binary
// protocol, making the library a network-attached KVS like the paper's
// system (the RDMA dataplane is replaced by the operating system's TCP
// stack; the thread architecture behind the listener is unchanged).
//
// Wire format (little-endian):
//
//	request:  op(1) key(8) len(4) payload[len]
//	          op: 0=get 1=put 2=delete 3=scan (payload = count uint32)
//	              4=stats (no payload; response = 5 × uint64 counters)
//	response: status(1) len(4) payload[len]
//	          status: 0=found/ok 1=not found 2=error (payload = message)
//	          scan payload: count(4) then count × { key(8) vlen(4) val }
package netserver

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"mutps/internal/kvcore"
)

// Op codes on the wire.
const (
	OpGet byte = iota
	OpPut
	OpDelete
	OpScan
	OpStats
)

// Status codes on the wire.
const (
	StatusFound byte = iota
	StatusNotFound
	StatusError
)

// maxPayload bounds request payloads (16 MB) to keep a malicious frame
// from exhausting memory.
const maxPayload = 16 << 20

// Server serves a kvcore store over TCP.
type Server struct {
	store *kvcore.Store
	ln    net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts accepting connections on ln and returns immediately.
func Serve(store *kvcore.Store, ln net.Listener) *Server {
	s := &Server{store: store, ln: ln, conns: map[net.Conn]struct{}{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting and closes every connection.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// connScratch is a connection's reusable frame storage: the request
// payload, the get-value destination, and the scan response body are all
// read into (or built in) buffers that persist across requests, so the
// steady-state serve loop does not allocate per frame. Reuse is safe
// because the store copies put payloads before returning and every
// response is flushed to the bufio writer before the next frame is read.
type connScratch struct {
	payload []byte
	val     []byte
	body    []byte
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	var hdr [13]byte
	var cs connScratch
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		op := hdr[0]
		key := binary.LittleEndian.Uint64(hdr[1:9])
		plen := binary.LittleEndian.Uint32(hdr[9:13])
		if plen > maxPayload {
			writeResp(w, StatusError, []byte("payload too large"))
			w.Flush()
			return
		}
		if uint32(cap(cs.payload)) < plen {
			cs.payload = make([]byte, plen)
		}
		payload := cs.payload[:plen]
		if _, err := io.ReadFull(r, payload); err != nil {
			return
		}
		if err := s.handle(w, op, key, payload, &cs); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) handle(w *bufio.Writer, op byte, key uint64, payload []byte, cs *connScratch) error {
	switch op {
	case OpGet:
		if v, ok := s.store.GetInto(key, cs.val[:0]); ok {
			cs.val = v // keep any grown buffer for the next get
			return writeResp(w, StatusFound, v)
		}
		return writeResp(w, StatusNotFound, nil)
	case OpPut:
		s.store.Put(key, payload)
		return writeResp(w, StatusFound, nil)
	case OpDelete:
		if s.store.Delete(key) {
			return writeResp(w, StatusFound, nil)
		}
		return writeResp(w, StatusNotFound, nil)
	case OpStats:
		st := s.store.Stats()
		var body [40]byte
		binary.LittleEndian.PutUint64(body[0:], st.Ops)
		binary.LittleEndian.PutUint64(body[8:], st.CRHits)
		binary.LittleEndian.PutUint64(body[16:], st.Forwarded)
		binary.LittleEndian.PutUint64(body[24:], uint64(st.Items))
		binary.LittleEndian.PutUint64(body[32:], uint64(st.HotSize))
		return writeResp(w, StatusFound, body[:])
	case OpScan:
		if len(payload) != 4 {
			return writeResp(w, StatusError, []byte("scan payload must be a uint32 count"))
		}
		count := binary.LittleEndian.Uint32(payload)
		if count > kvcore.MaxScanCount {
			return writeResp(w, StatusError, []byte("scan count too large"))
		}
		kvs, err := s.store.Scan(key, int(count))
		if err != nil {
			return writeResp(w, StatusError, []byte(err.Error()))
		}
		body := append(cs.body[:0], 0, 0, 0, 0)
		binary.LittleEndian.PutUint32(body, uint32(len(kvs)))
		var tmp [12]byte
		for _, kv := range kvs {
			binary.LittleEndian.PutUint64(tmp[0:8], kv.Key)
			binary.LittleEndian.PutUint32(tmp[8:12], uint32(len(kv.Value)))
			body = append(body, tmp[:]...)
			body = append(body, kv.Value...)
		}
		cs.body = body
		return writeResp(w, StatusFound, body)
	default:
		return writeResp(w, StatusError, []byte(fmt.Sprintf("unknown op %d", op)))
	}
}

func writeResp(w *bufio.Writer, status byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = status
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Client is a synchronous client for the netserver protocol; it is safe
// for concurrent use (calls serialize on the connection).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a μTPS network server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(op byte, key uint64, payload []byte) (byte, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var hdr [13]byte
	hdr[0] = op
	binary.LittleEndian.PutUint64(hdr[1:9], key)
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return 0, nil, err
	}
	if _, err := c.w.Write(payload); err != nil {
		return 0, nil, err
	}
	if err := c.w.Flush(); err != nil {
		return 0, nil, err
	}
	var rh [5]byte
	if _, err := io.ReadFull(c.r, rh[:]); err != nil {
		return 0, nil, err
	}
	plen := binary.LittleEndian.Uint32(rh[1:5])
	if plen > maxPayload {
		return 0, nil, errors.New("netserver: oversized response")
	}
	body := make([]byte, plen)
	if _, err := io.ReadFull(c.r, body); err != nil {
		return 0, nil, err
	}
	if rh[0] == StatusError {
		return rh[0], nil, fmt.Errorf("netserver: %s", body)
	}
	return rh[0], body, nil
}

// Get fetches the value for key.
func (c *Client) Get(key uint64) ([]byte, bool, error) {
	st, body, err := c.roundTrip(OpGet, key, nil)
	if err != nil {
		return nil, false, err
	}
	return body, st == StatusFound, nil
}

// Put stores val under key.
func (c *Client) Put(key uint64, val []byte) error {
	_, _, err := c.roundTrip(OpPut, key, val)
	return err
}

// Delete removes key, reporting whether it existed.
func (c *Client) Delete(key uint64) (bool, error) {
	st, _, err := c.roundTrip(OpDelete, key, nil)
	if err != nil {
		return false, err
	}
	return st == StatusFound, nil
}

// Stats fetches the server's counter snapshot.
func (c *Client) Stats() (kvcore.Stats, error) {
	_, body, err := c.roundTrip(OpStats, 0, nil)
	if err != nil {
		return kvcore.Stats{}, err
	}
	if len(body) != 40 {
		return kvcore.Stats{}, errors.New("netserver: malformed stats response")
	}
	return kvcore.Stats{
		Ops:       binary.LittleEndian.Uint64(body[0:]),
		CRHits:    binary.LittleEndian.Uint64(body[8:]),
		Forwarded: binary.LittleEndian.Uint64(body[16:]),
		Items:     int(binary.LittleEndian.Uint64(body[24:])),
		HotSize:   int(binary.LittleEndian.Uint64(body[32:])),
	}, nil
}

// Scan returns up to count entries with keys >= start.
func (c *Client) Scan(start uint64, count int) ([]kvcore.KV, error) {
	var pl [4]byte
	binary.LittleEndian.PutUint32(pl[:], uint32(count))
	_, body, err := c.roundTrip(OpScan, start, pl[:])
	if err != nil {
		return nil, err
	}
	if len(body) < 4 {
		return nil, errors.New("netserver: short scan response")
	}
	n := binary.LittleEndian.Uint32(body)
	body = body[4:]
	out := make([]kvcore.KV, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(body) < 12 {
			return nil, errors.New("netserver: truncated scan entry")
		}
		key := binary.LittleEndian.Uint64(body[0:8])
		vlen := binary.LittleEndian.Uint32(body[8:12])
		body = body[12:]
		if uint32(len(body)) < vlen {
			return nil, errors.New("netserver: truncated scan value")
		}
		val := make([]byte, vlen)
		copy(val, body[:vlen])
		body = body[vlen:]
		out = append(out, kvcore.KV{Key: key, Value: val})
	}
	return out, nil
}
