// Package netserver exposes a μTPS store over TCP with a compact binary
// protocol, making the library a network-attached KVS like the paper's
// system (the RDMA dataplane is replaced by the operating system's TCP
// stack; the thread architecture behind the listener is unchanged).
//
// Wire format (little-endian):
//
//	request:  op(1) key(8) len(4) payload[len]
//	          op: 0=get 1=put 2=delete 3=scan (payload = count uint32)
//	              4=stats (no payload; response = 5 × uint64 counters)
//	              5=stats2 (no payload; versioned named-pair response)
//	              6=mget (key unused; payload = count(4) then count ×
//	              key(8) — a batched multi-get executed server-side as one
//	              frame: every key enters the store's async path together
//	              and the responses retire as one FIFO burst)
//	              7=put-ttl (payload = ttl_nanos(8) then value; ttl 0 =
//	              server default) 8=get-ttl (found payload = remaining
//	              ttl_nanos(8) then value, 0 = no expiry)
//	response: status(1) len(4) payload[len]
//	          status: 0=found/ok 1=not found 2=error (payload = message)
//	          3=backlogged (retryable: the store shed the request under
//	          overload; old clients that predate status 3 surface it as an
//	          unknown-status transport error and reconnect)
//	          4=expired (a TTL deadline passed: the key reads as missing;
//	          distinct from 1 so TTL-aware clients can tell expiry from
//	          absence — old clients test status == 0 and treat both as a
//	          miss, the same degradation pattern as status 3)
//	          scan payload: count(4) then count × { key(8) vlen(4) val }
//	          stats2 payload: count(4) then count × { nlen(2) name
//	          float64bits(8) } — self-describing, so servers may add
//	          metrics without breaking old clients, and new clients fall
//	          back to op 4 when an old server rejects op 5
//	          mget payload: count(4) then count × { found(1) vlen(4) val },
//	          positional with the request keys; servers predating op 6
//	          reject it with a status-error reply ("unknown op 6"), and
//	          clients degrade to per-key pipelined gets — the same
//	          versioning pattern as stats2
package netserver

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mutps/internal/arena"
	"mutps/internal/kvcore"
	"mutps/internal/obs"
	"mutps/internal/rpc"
)

// Op codes on the wire.
const (
	OpGet byte = iota
	OpPut
	OpDelete
	OpScan
	OpStats
	OpStats2
	OpMGet
	// OpPutTTL carries the item's TTL as the first 8 payload bytes
	// (nanoseconds; 0 selects the server's default TTL), then the value.
	OpPutTTL
	// OpGetTTL is a get whose found-response payload leads with the
	// remaining TTL in nanoseconds (0 = no expiry), then the value.
	OpGetTTL
)

// MaxMGetKeys bounds the keys one mget frame may carry: each key claims a
// pooled rpc.Call and a destination buffer while the frame is in flight,
// so the bound keeps one frame from reserving unbounded store-side state.
// Clients split larger batches across frames.
const MaxMGetKeys = 1024

// Status codes on the wire.
const (
	StatusFound byte = iota
	StatusNotFound
	StatusError
	// StatusBacklogged is a retryable rejection: the store's receive ring
	// stayed full for the whole backpressure budget and the request was
	// shed without executing. The connection remains usable.
	StatusBacklogged
	// StatusExpired reports a key whose TTL deadline has passed: it reads
	// as missing, but TTL-aware clients can distinguish expiry from plain
	// absence. Old clients test status == StatusFound, so to them it
	// degrades to a miss.
	StatusExpired
)

// ErrBacklogged is returned by client calls when the server replies
// StatusBacklogged: the request did not execute and may be retried after
// backing off. The connection is still usable.
var ErrBacklogged = errors.New("netserver: server backlogged, retry later")

// maxPayload bounds request payloads (16 MB) to keep a malicious frame
// from exhausting memory.
const maxPayload = 16 << 20

// latShards bounds the per-connection latency histogram's shard set;
// connections hash onto shards by arrival order.
const latShards = 16

// Config tunes a Server's connection hygiene. The zero value disables
// both limits (accept everything, wait forever), matching the pre-config
// behaviour.
type Config struct {
	// IdleTimeout is the per-frame read deadline: a connection that sends
	// no complete request for this long is closed. Zero or negative
	// disables it.
	IdleTimeout time.Duration
	// MaxConns caps concurrently served connections. A connection over the
	// cap receives a StatusError reply ("connection limit reached") and is
	// closed — a graceful rejection the client can report, not a silent
	// drop. Zero or negative means unlimited.
	MaxConns int
	// MaxInflight is the per-connection pipelining window: how many decoded
	// requests may be in flight in the store at once before the connection's
	// decode stage stops reading (bounding per-connection memory at
	// MaxInflight request/response contexts; the client then backs up onto
	// TCP flow control). 1 degenerates to the old synchronous
	// one-op-at-a-time loop; zero or negative means DefaultInflight.
	MaxInflight int

	// Transport selects the connection-handling tier: TransportGoroutine
	// (one goroutine per connection; portable default) or TransportEpoll
	// (a fixed pool of event-loop goroutines over epoll readiness; Linux
	// only — elsewhere it falls back to goroutine). Empty consults the
	// MUTPS_TRANSPORT environment variable, then defaults to goroutine.
	Transport string

	// EventLoops sets the epoll transport's event-loop goroutine count
	// (each with its own epoll set and, under ListenAndServe, its own
	// SO_REUSEPORT listener). Zero or negative picks a default from
	// GOMAXPROCS. Ignored by the goroutine transport.
	EventLoops int
}

// DefaultInflight is the per-connection window used when
// Config.MaxInflight is unset. It matches the receive-ring depth a single
// pipelined client needs to keep the CR layer busy without opening
// hundreds of connections.
const DefaultInflight = 128

// Server serves a kvcore store over TCP through one of the pluggable
// transports (transport.go): it owns the protocol layer, the shared
// buffer leaser, and the instruments; the transport owns the sockets.
type Server struct {
	store  *kvcore.Store
	cfg    Config
	tr     transport
	leaser *arena.Leaser

	nextConn  atomic.Uint64
	openConns *obs.Gauge
	idleConns *obs.Gauge
	rejected  *obs.Counter
	lat       [5]*obs.Histogram // wire op 0..3 + mget latency, ns
	mgetKeys  *obs.Histogram    // keys carried per served mget frame

	// Pipelined-executor instruments: window occupancy across connections
	// (submitted minus retired), the two counters that delta derives from,
	// and the flush-coalescing histogram (responses per Flush syscall).
	inflight   *obs.Gauge
	submitted  *obs.Counter
	retired    *obs.Counter
	flushBatch *obs.Histogram

	// Event-loop transport instruments (registered lazily by the epoll
	// transport): responses carried per writev burst.
	writevBatch *obs.Histogram
}

// window returns the effective per-connection pipelining window.
func (s *Server) window() int {
	if s.cfg.MaxInflight > 0 {
		return s.cfg.MaxInflight
	}
	return DefaultInflight
}

// netOpLabels renders wire-op labels; index 4 is OpMGet (see latIndex).
var netOpLabels = [5]string{`op="get"`, `op="put"`, `op="delete"`, `op="scan"`, `op="mget"`}

// latIndex maps a wire op onto its latency-histogram slot, or -1 for ops
// that are not latency-tracked (stats frames). The TTL variants share
// their base op's slot — the service path is the same.
func latIndex(op byte) int {
	switch {
	case op < OpStats:
		return int(op)
	case op == OpMGet:
		return 4
	case op == OpPutTTL:
		return int(OpPut)
	case op == OpGetTTL:
		return int(OpGet)
	}
	return -1
}

// Serve starts accepting connections on ln with the zero Config and
// returns immediately.
func Serve(store *kvcore.Store, ln net.Listener) *Server {
	return ServeConfig(store, ln, Config{})
}

// ServeConfig starts serving the store on ln and returns immediately.
// The server registers its connection gauge and per-op latency histograms
// into the store's metric registry; registration is idempotent, so several
// servers over one store share series.
//
// When the configured transport is epoll (Config.Transport or the
// MUTPS_TRANSPORT environment variable), the listener's descriptor is
// adopted into the event loops; if adoption fails (not a *net.TCPListener,
// or a platform without epoll), the portable goroutine transport serves ln
// instead — the caller always gets a working server.
func ServeConfig(store *kvcore.Store, ln net.Listener, cfg Config) *Server {
	s := newServer(store, cfg)
	if chooseTransport(cfg) == TransportEpoll {
		if tr, err := adoptEpollTransport(s, ln); err == nil {
			s.tr = tr
			return s
		}
	}
	s.tr = newGoroutineTransport(s, ln)
	return s
}

// ListenAndServe binds addr and serves the store on the configured
// transport. Unlike ServeConfig it owns socket creation, so the epoll
// transport gets its full accept path: one SO_REUSEPORT listener per event
// loop, with the kernel sharding incoming connections across them. On
// platforms without epoll the goroutine transport serves a plain listener,
// so the same flags work everywhere.
func ListenAndServe(store *kvcore.Store, addr string, cfg Config) (*Server, error) {
	s := newServer(store, cfg)
	if chooseTransport(cfg) == TransportEpoll {
		tr, err := newEpollTransport(s, addr)
		if err == nil {
			s.tr = tr
			return s, nil
		}
		if !errors.Is(err, errEpollUnsupported) {
			return nil, err
		}
		// No epoll on this platform: fall through and serve portably.
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.tr = newGoroutineTransport(s, ln)
	return s, nil
}

// newServer builds the transport-independent server core: protocol state,
// the buffer leaser, and the instrument set shared by both transports.
func newServer(store *kvcore.Store, cfg Config) *Server {
	s := &Server{store: store, cfg: cfg, leaser: arena.NewLeaser()}
	reg := store.Metrics()
	s.openConns = reg.Gauge("mutps_net_connections", "", "Open client connections.")
	s.idleConns = reg.Gauge("mutps_net_idle_conns", "",
		"Open connections with no request in flight; they hold no leased buffers.")
	s.rejected = reg.Counter("mutps_net_conn_rejected_total", "",
		"Connections refused at the MaxConns cap.", 1)
	for op, l := range netOpLabels {
		s.lat[op] = reg.Histogram("mutps_net_op_latency_nanoseconds", l,
			"Per-request service time observed at the network server (decode to retired reply), in nanoseconds.",
			latShards)
	}
	s.mgetKeys = reg.Histogram("mutps_net_mget_keys", "",
		"Keys carried per served mget frame (server-side batching factor).", latShards)
	s.inflight = reg.Gauge("mutps_net_inflight", "",
		"Requests decoded but not yet retired, across all connections (per-connection pipelining window occupancy).")
	s.submitted = reg.Counter("mutps_net_ops_submitted_total", "",
		"Requests decoded and entered into a connection's in-flight window.", latShards)
	s.retired = reg.Counter("mutps_net_ops_retired_total", "",
		"Responses retired in FIFO order by connection completion stages.", latShards)
	s.flushBatch = reg.Histogram("mutps_net_flush_coalesce", "",
		"Responses carried by one connection flush (coalesced write syscalls per burst).", latShards)
	s.writevBatch = reg.Histogram("mutps_net_writev_batch", "",
		"Responses carried by one cross-connection writev burst (epoll transport).", latShards)
	reg.GaugeFunc("mutps_net_leased_buffer_bytes", "",
		"Request/response buffer bytes currently leased by in-flight requests; idle connections hold none.",
		func() float64 { return float64(s.leaser.LeasedBytes()) })
	return s
}

// Addr returns the listen address.
func (s *Server) Addr() net.Addr { return s.tr.Addr() }

// Close stops accepting and closes every connection.
func (s *Server) Close() error { return s.tr.Close() }

// Transport reports which transport actually serves this server —
// TransportEpoll only when it was requested and the platform delivered
// it, so startup logs show the real connection cost model.
func (s *Server) Transport() string { return s.tr.name() }

// legacyStatNames are the five counters the fixed-layout op 4 frame
// carries, re-exported under stable names in the stats2 payload so
// consumers can drop the legacy op without losing any field.
var legacyStatNames = [5]string{"ops", "cr_hits", "forwarded", "items", "hot_size"}

// appendStats2 builds the versioned stats payload: the five legacy
// counters under their stable names, then every sample the store's metric
// registry exports.
func (s *Server) appendStats2(body []byte) []byte {
	st := s.store.Stats()
	legacy := [5]float64{
		float64(st.Ops), float64(st.CRHits), float64(st.Forwarded),
		float64(st.Items), float64(st.HotSize),
	}
	samples := s.store.Metrics().Snapshot()

	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(legacy)+len(samples)))
	body = append(body, n[:]...)
	appendPair := func(name string, v float64) {
		var hdr [2]byte
		binary.LittleEndian.PutUint16(hdr[:], uint16(len(name)))
		body = append(body, hdr[:]...)
		body = append(body, name...)
		var val [8]byte
		binary.LittleEndian.PutUint64(val[:], math.Float64bits(v))
		body = append(body, val[:]...)
	}
	for i, name := range legacyStatNames {
		appendPair(name, legacy[i])
	}
	for _, smp := range samples {
		appendPair(smp.Name, smp.Value)
	}
	return body
}

// writeStoreErr maps a store error onto the wire: overload shedding
// becomes the retryable StatusBacklogged, everything else (including
// rpc.ErrClosed during shutdown) a StatusError with the message as
// payload. Error paths may allocate; the hot paths never reach here.
func writeStoreErr(w *bufio.Writer, err error) error {
	if errors.Is(err, rpc.ErrBacklogged) {
		return writeResp(w, StatusBacklogged, nil)
	}
	return writeResp(w, StatusError, []byte(err.Error()))
}

func writeResp(w *bufio.Writer, status byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = status
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Client is a synchronous client for the netserver protocol; it is safe
// for concurrent use (calls serialize on the connection).
type Client struct {
	mu        sync.Mutex
	conn      net.Conn
	r         *bufio.Reader
	w         *bufio.Writer
	opTimeout time.Duration
	broken    error // first transport failure; poisons all later calls
}

// Dial connects to a μTPS network server with no per-op deadline.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 0, 0)
}

// DialTimeout connects like Dial but bounds the connect itself by
// dialTimeout and every subsequent operation by opTimeout (zero disables
// either). A timed-out operation leaves the request/response stream out of
// sync, so it marks the connection broken: every later call fails fast and
// the caller reconnects.
func DialTimeout(addr string, dialTimeout, opTimeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn),
		opTimeout: opTimeout,
	}, nil
}

// SetOpTimeout changes the per-operation deadline (zero disables it). It
// does not affect an operation already in flight.
func (c *Client) SetOpTimeout(d time.Duration) {
	c.mu.Lock()
	c.opTimeout = d
	c.mu.Unlock()
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(op byte, key uint64, payload []byte) (byte, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken != nil {
		return 0, nil, fmt.Errorf("netserver: connection broken by earlier failure: %w", c.broken)
	}
	if c.opTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opTimeout))
	} else {
		c.conn.SetDeadline(time.Time{})
	}
	fail := func(err error) (byte, []byte, error) {
		// A transport failure mid-exchange desynchronizes the stream (a
		// late response would be matched to the wrong request), so the
		// connection is done: poison it and close, releasing any peer-side
		// state. Waiters already queued on mu fail fast on broken.
		c.broken = err
		c.conn.Close()
		return 0, nil, err
	}
	var hdr [13]byte
	hdr[0] = op
	binary.LittleEndian.PutUint64(hdr[1:9], key)
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return fail(err)
	}
	if _, err := c.w.Write(payload); err != nil {
		return fail(err)
	}
	if err := c.w.Flush(); err != nil {
		return fail(err)
	}
	var rh [5]byte
	if _, err := io.ReadFull(c.r, rh[:]); err != nil {
		return fail(err)
	}
	plen := binary.LittleEndian.Uint32(rh[1:5])
	if plen > maxPayload {
		return fail(errors.New("netserver: oversized response"))
	}
	body := make([]byte, plen)
	if _, err := io.ReadFull(c.r, body); err != nil {
		return fail(err)
	}
	switch rh[0] {
	case StatusError:
		// An in-protocol error reply: the stream is still in sync and the
		// connection stays usable.
		return rh[0], nil, fmt.Errorf("netserver: %s", body)
	case StatusBacklogged:
		return rh[0], nil, ErrBacklogged
	}
	return rh[0], body, nil
}

// Get fetches the value for key.
func (c *Client) Get(key uint64) ([]byte, bool, error) {
	st, body, err := c.roundTrip(OpGet, key, nil)
	if err != nil {
		return nil, false, err
	}
	return body, st == StatusFound, nil
}

// Put stores val under key.
func (c *Client) Put(key uint64, val []byte) error {
	_, _, err := c.roundTrip(OpPut, key, val)
	return err
}

// PutTTL stores val under key with a per-item TTL. ttl <= 0 selects the
// server's configured default (and "never" when that is unset too).
// Servers predating OpPutTTL reject the frame with a status-error reply
// ("unknown op 7") and the connection stays usable.
func (c *Client) PutTTL(key uint64, val []byte, ttl time.Duration) error {
	payload := make([]byte, 8+len(val))
	if ttl > 0 {
		binary.LittleEndian.PutUint64(payload, uint64(ttl))
	}
	copy(payload[8:], val)
	_, _, err := c.roundTrip(OpPutTTL, key, payload)
	return err
}

// GetTTL fetches the value for key together with its remaining TTL
// (0 = no expiry set). Expired keys report found=false, exactly like
// absent ones; callers that only need the value can keep using Get.
func (c *Client) GetTTL(key uint64) (val []byte, ttl time.Duration, found bool, err error) {
	st, body, err := c.roundTrip(OpGetTTL, key, nil)
	if err != nil {
		return nil, 0, false, err
	}
	if st != StatusFound {
		return nil, 0, false, nil
	}
	if len(body) < 8 {
		return nil, 0, false, fmt.Errorf("netserver: get-ttl response too short (%d bytes)", len(body))
	}
	return body[8:], time.Duration(binary.LittleEndian.Uint64(body)), true, nil
}

// Delete removes key, reporting whether it existed.
func (c *Client) Delete(key uint64) (bool, error) {
	st, _, err := c.roundTrip(OpDelete, key, nil)
	if err != nil {
		return false, err
	}
	return st == StatusFound, nil
}

// Stats fetches the server's counter snapshot.
func (c *Client) Stats() (kvcore.Stats, error) {
	_, body, err := c.roundTrip(OpStats, 0, nil)
	if err != nil {
		return kvcore.Stats{}, err
	}
	if len(body) != 40 {
		return kvcore.Stats{}, errors.New("netserver: malformed stats response")
	}
	return kvcore.Stats{
		Ops:       binary.LittleEndian.Uint64(body[0:]),
		CRHits:    binary.LittleEndian.Uint64(body[8:]),
		Forwarded: binary.LittleEndian.Uint64(body[16:]),
		Items:     int(binary.LittleEndian.Uint64(body[24:])),
		HotSize:   int(binary.LittleEndian.Uint64(body[32:])),
	}, nil
}

// StatsMap fetches the server's versioned stats payload: every metric the
// server exports, keyed by series name, including the five legacy
// counters under "ops", "cr_hits", "forwarded", "items", "hot_size".
// Against a server predating the stats2 op it falls back to the legacy
// fixed frame (the old server rejects the unknown op with a status-error
// response, leaving the connection usable), so the map then carries just
// the five legacy keys.
func (c *Client) StatsMap() (map[string]float64, error) {
	st, body, err := c.roundTrip(OpStats2, 0, nil)
	if err != nil {
		if st != StatusError {
			return nil, err // transport failure, not an old server
		}
		legacy, lerr := c.Stats()
		if lerr != nil {
			return nil, lerr
		}
		return map[string]float64{
			"ops":       float64(legacy.Ops),
			"cr_hits":   float64(legacy.CRHits),
			"forwarded": float64(legacy.Forwarded),
			"items":     float64(legacy.Items),
			"hot_size":  float64(legacy.HotSize),
		}, nil
	}
	return decodeStats2(body)
}

// decodeStats2 parses a stats2 payload into a name→value map.
func decodeStats2(body []byte) (map[string]float64, error) {
	if len(body) < 4 {
		return nil, errors.New("netserver: short stats2 response")
	}
	n := binary.LittleEndian.Uint32(body)
	body = body[4:]
	out := make(map[string]float64, n)
	for i := uint32(0); i < n; i++ {
		if len(body) < 2 {
			return nil, errors.New("netserver: truncated stats2 entry")
		}
		nlen := binary.LittleEndian.Uint16(body)
		body = body[2:]
		if len(body) < int(nlen)+8 {
			return nil, errors.New("netserver: truncated stats2 entry")
		}
		name := string(body[:nlen])
		body = body[nlen:]
		out[name] = math.Float64frombits(binary.LittleEndian.Uint64(body))
		body = body[8:]
	}
	return out, nil
}

// AppendMGetRequest appends the mget request payload for keys to dst and
// returns it: count(4) then count × key(8). Callers send it with OpMGet
// (the frame's key field is unused). len(keys) must be ≤ MaxMGetKeys.
func AppendMGetRequest(dst []byte, keys []uint64) []byte {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(keys)))
	dst = append(dst, n[:]...)
	var kb [8]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint64(kb[:], k)
		dst = append(dst, kb[:]...)
	}
	return dst
}

// DecodeMGet parses an mget response payload into positional values and
// found flags. Values are copied out of body, so they stay valid after the
// caller releases the response buffer.
func DecodeMGet(body []byte) (vals [][]byte, found []bool, err error) {
	if len(body) < 4 {
		return nil, nil, errors.New("netserver: short mget response")
	}
	n := binary.LittleEndian.Uint32(body)
	body = body[4:]
	vals = make([][]byte, n)
	found = make([]bool, n)
	for i := uint32(0); i < n; i++ {
		if len(body) < 5 {
			return nil, nil, errors.New("netserver: truncated mget entry")
		}
		f := body[0] != 0
		vlen := binary.LittleEndian.Uint32(body[1:5])
		body = body[5:]
		if uint32(len(body)) < vlen {
			return nil, nil, errors.New("netserver: truncated mget value")
		}
		if f {
			v := make([]byte, vlen)
			copy(v, body[:vlen])
			vals[i], found[i] = v, true
		}
		body = body[vlen:]
	}
	return vals, found, nil
}

// MGet fetches several keys in one wire frame. Results are positional:
// vals[i]/found[i] answer keys[i]. Against a server predating the mget op
// the call fails with the server's status-error reply; use the cluster
// client for transparent per-key degradation.
func (c *Client) MGet(keys []uint64) (vals [][]byte, found []bool, err error) {
	if len(keys) > MaxMGetKeys {
		return nil, nil, fmt.Errorf("netserver: mget batch %d exceeds MaxMGetKeys %d", len(keys), MaxMGetKeys)
	}
	payload := AppendMGetRequest(nil, keys)
	_, body, err := c.roundTrip(OpMGet, 0, payload)
	if err != nil {
		return nil, nil, err
	}
	return DecodeMGet(body)
}

// Scan returns up to count entries with keys >= start.
func (c *Client) Scan(start uint64, count int) ([]kvcore.KV, error) {
	var pl [4]byte
	binary.LittleEndian.PutUint32(pl[:], uint32(count))
	_, body, err := c.roundTrip(OpScan, start, pl[:])
	if err != nil {
		return nil, err
	}
	if len(body) < 4 {
		return nil, errors.New("netserver: short scan response")
	}
	n := binary.LittleEndian.Uint32(body)
	body = body[4:]
	out := make([]kvcore.KV, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(body) < 12 {
			return nil, errors.New("netserver: truncated scan entry")
		}
		key := binary.LittleEndian.Uint64(body[0:8])
		vlen := binary.LittleEndian.Uint32(body[8:12])
		body = body[12:]
		if uint32(len(body)) < vlen {
			return nil, errors.New("netserver: truncated scan value")
		}
		val := make([]byte, vlen)
		copy(val, body[:vlen])
		body = body[vlen:]
		out = append(out, kvcore.KV{Key: key, Value: val})
	}
	return out, nil
}
