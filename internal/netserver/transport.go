// The transport layer of the network server: who owns sockets and how
// readiness is discovered. A transport accepts connections, moves bytes,
// and drives the shared protocol executor (protocol.go); it decides what
// an idle connection costs.
//
// Two transports exist:
//
//   - goroutine (this file + pipeserve.go): one goroutine per connection
//     with blocking reads and a per-connection completion goroutine.
//     Portable everywhere Go runs, simple to reason about — but an idle
//     connection still costs two goroutines (~8 KB of stack each) plus
//     bufio buffers, so 100k mostly-idle clients cost hundreds of MB
//     before a single request arrives.
//   - epoll (epoll_linux.go): a small fixed pool of event-loop goroutines
//     doing epoll_wait → nonblocking reads, SO_REUSEPORT-sharded accepts,
//     and cross-connection writev flush coalescing. An idle connection is
//     one file descriptor plus a ~200-byte struct: no goroutine, no
//     buffers (TransportEpoll; Linux only, selected by build tag).
//
// Selection: Config.Transport, or the MUTPS_TRANSPORT environment
// variable when the config is silent — which is how the full existing
// test suite (FIFO equivalence, chaos) runs unmodified against the epoll
// transport in CI. Unknown or unsupported values fall back to goroutine,
// so binaries stay portable.
package netserver

import (
	"bufio"
	"errors"
	"net"
	"os"
	"runtime"
	"sync"
	"time"
)

// Transport names for Config.Transport / MUTPS_TRANSPORT.
const (
	TransportGoroutine = "goroutine"
	TransportEpoll     = "epoll"
)

// errEpollUnsupported reports that this platform has no epoll transport
// (epoll_stub.go); callers fall back to the goroutine transport.
var errEpollUnsupported = errors.New("netserver: epoll transport requires linux")

// maxEventLoops caps the epoll transport's goroutine pool: each loop runs
// one event goroutine plus one completer, so the transport never exceeds
// 2×maxEventLoops goroutines no matter how many connections are open.
const maxEventLoops = 32

// eventLoopCount resolves Config.EventLoops to the loop-pool size.
func (s *Server) eventLoopCount() int {
	n := s.cfg.EventLoops
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > maxEventLoops {
		n = maxEventLoops
	}
	return n
}

// transport is the socket-owning half of the server: it accepts
// connections, feeds frames through the protocol layer, and reports the
// listen address. Close stops accepting, closes every connection, and
// waits for in-flight work to drain.
type transport interface {
	Addr() net.Addr
	Close() error
	name() string
}

// chooseTransport resolves the configured transport name: the explicit
// config wins, then the MUTPS_TRANSPORT environment variable, then the
// portable default.
func chooseTransport(cfg Config) string {
	if cfg.Transport != "" {
		return cfg.Transport
	}
	if env := os.Getenv("MUTPS_TRANSPORT"); env != "" {
		return env
	}
	return TransportGoroutine
}

// goroutineTransport is the portable goroutine-per-connection transport:
// an accept loop hands each connection to a serve goroutine running the
// pipelined executor (pipeserve.go).
type goroutineTransport struct {
	s  *Server
	ln net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

func newGoroutineTransport(s *Server, ln net.Listener) *goroutineTransport {
	t := &goroutineTransport{s: s, ln: ln, conns: map[net.Conn]struct{}{}}
	t.wg.Add(1)
	go t.acceptLoop()
	return t
}

// Addr returns the listener address.
func (t *goroutineTransport) Addr() net.Addr { return t.ln.Addr() }

func (t *goroutineTransport) name() string { return TransportGoroutine }

// Close stops accepting and closes every connection.
func (t *goroutineTransport) Close() error {
	t.mu.Lock()
	t.closed = true
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	err := t.ln.Close()
	t.wg.Wait()
	return err
}

func (t *goroutineTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		if t.s.cfg.MaxConns > 0 && len(t.conns) >= t.s.cfg.MaxConns {
			t.mu.Unlock()
			t.rejectConn(conn)
			continue
		}
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.serveConn(conn)
	}
}

// rejectConn refuses a connection over the MaxConns cap with a proper
// protocol frame so the client reports "connection limit reached" instead
// of an opaque EOF. The write gets a short deadline — a rejection must
// never tie up the accept loop.
func (t *goroutineTransport) rejectConn(conn net.Conn) {
	t.s.rejected.Inc(0)
	conn.SetWriteDeadline(time.Now().Add(time.Second))
	w := bufio.NewWriter(conn)
	writeResp(w, StatusError, []byte("connection limit reached"))
	w.Flush()
	conn.Close()
}

// serveConn runs one connection's pipelined executor (pipeserve.go): a
// decode stage that reads frames and submits them asynchronously into the
// store, and a completion stage that retires responses in FIFO order with
// coalesced flushes. The connection counts as idle for the idle-conns
// gauge only between bursts — the pipeline flips it active on the first
// decoded frame (see track).
func (t *goroutineTransport) serveConn(conn net.Conn) {
	defer t.wg.Done()
	s := t.s
	connID := int(s.nextConn.Add(1))
	s.openConns.Add(1)
	s.idleConns.Add(1)
	defer func() {
		s.idleConns.Add(-1)
		s.openConns.Add(-1)
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
		conn.Close()
	}()
	newConnPipeline(s, conn, connID).run()
}
