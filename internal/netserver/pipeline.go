package netserver

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
)

// PipelineClient keeps many requests in flight on one connection: sends
// and receives run on separate goroutines and responses are matched to
// requests by order (the protocol is strictly FIFO per connection). It is
// the high-throughput counterpart of Client for load generation — the
// network analog of the paper's clients keeping the server's receive ring
// full.
type PipelineClient struct {
	conn net.Conn
	w    *bufio.Writer

	sendMu     sync.Mutex
	sendClosed bool // set under sendMu by Close: no later Send may enqueue
	pending    chan *Future
	readWG     sync.WaitGroup

	closeOnce sync.Once
	closed    chan struct{}
	closeErr  error // conn.Close result, returned by every Close call
}

// ErrClosed is returned by Send and Flush on a PipelineClient that has
// been Closed: the request was never enqueued and no future exists for it.
var ErrClosed = errors.New("netserver: pipeline client closed")

// Future completion states, mirroring rpc.Call: pending until the reader
// fills it in, parked while a waiter blocks on the park channel, done once
// the result fields are valid.
const (
	futPending uint32 = iota
	futParked
	futDone
)

// futWaitSpins is the Wait spin budget before parking.
const futWaitSpins = 128

// Future is a pending pipelined response. Futures are pooled: Send draws
// from a sync.Pool and Release returns the future — and its response-body
// buffer — for reuse, so a pipelined client in steady state allocates
// nothing per request on the client side.
//
// Protocol rules: one goroutine Waits per future; Release at most once,
// only after Wait has returned; neither the future nor the body slice
// returned by Wait may be touched after Release (copy the body first if
// it must outlive the future). Release is optional — an unreleased future
// is simply collected by the GC and its buffer is not reused.
type Future struct {
	state atomic.Uint32
	park  chan struct{} // cap 1; reused across recycles

	status byte
	body   []byte
	err    error
}

var futurePool = sync.Pool{New: func() any {
	return &Future{park: make(chan struct{}, 1)}
}}

func newFuture() *Future {
	f := futurePool.Get().(*Future)
	f.state.Store(futPending)
	f.status = 0
	f.err = nil
	f.body = f.body[:0] // keep capacity: the read loop fills it in place
	return f
}

// complete publishes the result fields and wakes a parked waiter.
func (f *Future) complete() {
	if f.state.Swap(futDone) == futParked {
		f.park <- struct{}{}
	}
}

// Wait blocks until the response arrives and returns status and payload.
// The payload is only valid until Release.
func (f *Future) Wait() (status byte, body []byte, err error) {
	for i := 0; i < futWaitSpins; i++ {
		if f.state.Load() == futDone {
			return f.status, f.body, f.err
		}
		runtime.Gosched()
	}
	if f.state.CompareAndSwap(futPending, futParked) {
		<-f.park
	}
	return f.status, f.body, f.err
}

// Release recycles the future and its body buffer; see the type comment
// for the rules.
func (f *Future) Release() { futurePool.Put(f) }

// DialPipeline opens a pipelined connection with the given maximum number
// of in-flight requests (≥1; it bounds memory, not correctness).
func DialPipeline(addr string, depth int) (*PipelineClient, error) {
	if depth < 1 {
		depth = 64
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &PipelineClient{
		conn:    conn,
		w:       bufio.NewWriter(conn),
		pending: make(chan *Future, depth),
		closed:  make(chan struct{}),
	}
	c.readWG.Add(1)
	go c.readLoop()
	return c, nil
}

func (c *PipelineClient) readLoop() {
	defer c.readWG.Done()
	r := bufio.NewReader(c.conn)
	for {
		var f *Future
		select {
		case f = <-c.pending:
		case <-c.closed:
			// Drain any stragglers so their waiters unblock. (A Send racing
			// with Close may still enqueue after this drain; Close sweeps
			// again once sendClosed guarantees no further enqueues.)
			c.failRemaining(ErrClosed)
			return
		}
		var hdr [5]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			f.err = err
			f.complete()
			c.failRemaining(err)
			return
		}
		plen := binary.LittleEndian.Uint32(hdr[1:5])
		if plen > maxPayload {
			f.err = errors.New("netserver: oversized response")
			f.complete()
			c.failRemaining(f.err)
			return
		}
		body := f.body[:0] // recycled capacity from a released future
		if uint32(cap(body)) < plen {
			body = make([]byte, plen)
		}
		body = body[:plen]
		if _, err := io.ReadFull(r, body); err != nil {
			f.err = err
			f.complete()
			c.failRemaining(err)
			return
		}
		f.status = hdr[0]
		f.body = body
		switch hdr[0] {
		case StatusError:
			f.err = fmt.Errorf("netserver: %s", body)
		case StatusBacklogged:
			f.err = ErrBacklogged // retryable; the stream stays in sync
		}
		f.complete()
	}
}

func (c *PipelineClient) failRemaining(err error) {
	for {
		select {
		case f := <-c.pending:
			f.err = err
			f.complete()
		default:
			return
		}
	}
}

// Send enqueues one request and returns its future. It blocks when the
// in-flight window is full. Writes are buffered for batching: call Flush
// before waiting on the final futures of a burst, or the last requests may
// sit in the client buffer while their futures wait forever.
func (c *PipelineClient) Send(op byte, key uint64, payload []byte) (*Future, error) {
	f := newFuture()
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.sendClosed {
		// Deterministic post-Close behaviour: nothing is enqueued or
		// written, independent of bufio's sticky-error state.
		f.Release()
		return nil, ErrClosed
	}
	select {
	case <-c.closed:
		f.Release() // never enqueued: no reader will ever touch it
		return nil, ErrClosed
	case c.pending <- f:
	default:
		// The in-flight window is full. Everything buffered must reach the
		// wire before we block, or the reader would wait for responses to
		// requests the server never saw — a self-deadlock.
		if err := c.w.Flush(); err != nil {
			f.Release()
			return nil, err
		}
		select {
		case <-c.closed:
			f.Release()
			return nil, ErrClosed
		case c.pending <- f:
		}
	}
	var hdr [13]byte
	hdr[0] = op
	binary.LittleEndian.PutUint64(hdr[1:9], key)
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return nil, c.writeFailed(err)
	}
	if _, err := c.w.Write(payload); err != nil {
		return nil, c.writeFailed(err)
	}
	// Flush opportunistically: batch consecutive sends, but never hold a
	// request hostage when the caller is about to Wait.
	if len(c.pending) <= 1 || c.w.Buffered() > 32<<10 {
		if err := c.w.Flush(); err != nil {
			return nil, c.writeFailed(err)
		}
	}
	return f, nil
}

// writeFailed handles a transport error after the future has already been
// enqueued to pending. The future cannot be dequeued (the reader owns the
// channel) and must not be stranded: closing the connection makes the read
// loop fail — it completes the enqueued future and every later one with
// the read error — and bufio's sticky error fails all subsequent Sends
// fast. The caller never receives the future, so nobody double-waits it.
func (c *PipelineClient) writeFailed(err error) error {
	c.conn.Close()
	return err
}

// Flush pushes any buffered requests to the wire. A flush error means
// enqueued requests can never reach the server, so the connection is
// closed to fail their futures (see writeFailed).
func (c *PipelineClient) Flush() error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.sendClosed {
		return ErrClosed
	}
	if err := c.w.Flush(); err != nil {
		return c.writeFailed(err)
	}
	return nil
}

// Close tears down the connection and fails outstanding futures with
// ErrClosed. It is idempotent — every call returns the first call's result
// — and strictly ordered against Send: once any Close call has returned,
// later Sends fail fast with ErrClosed and no future is ever stranded.
func (c *PipelineClient) Close() error {
	c.closeOnce.Do(func() {
		// Order matters: closing the channel first frees Sends parked on a
		// full window; closing the connection frees a Send blocked in a
		// write syscall and fails the read loop. Only then can sendMu be
		// taken without deadlock to make the closure visible to Send.
		close(c.closed)
		c.closeErr = c.conn.Close()
		c.sendMu.Lock()
		c.sendClosed = true
		c.sendMu.Unlock()
		c.readWG.Wait()
		// A Send that raced the read loop's drain may have enqueued after
		// the drain's empty-check; sendClosed is now visible, so this final
		// sweep completes any such straggler and nothing new can arrive.
		c.failRemaining(ErrClosed)
	})
	return c.closeErr
}
