package netserver

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// PipelineClient keeps many requests in flight on one connection: sends
// and receives run on separate goroutines and responses are matched to
// requests by order (the protocol is strictly FIFO per connection). It is
// the high-throughput counterpart of Client for load generation — the
// network analog of the paper's clients keeping the server's receive ring
// full.
type PipelineClient struct {
	conn net.Conn
	w    *bufio.Writer

	sendMu  sync.Mutex
	pending chan *Future
	readWG  sync.WaitGroup

	closeOnce sync.Once
	closed    chan struct{}
}

// Future is a pending pipelined response.
type Future struct {
	done   chan struct{}
	status byte
	body   []byte
	err    error
}

// Wait blocks until the response arrives and returns status and payload.
func (f *Future) Wait() (status byte, body []byte, err error) {
	<-f.done
	return f.status, f.body, f.err
}

// DialPipeline opens a pipelined connection with the given maximum number
// of in-flight requests (≥1; it bounds memory, not correctness).
func DialPipeline(addr string, depth int) (*PipelineClient, error) {
	if depth < 1 {
		depth = 64
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &PipelineClient{
		conn:    conn,
		w:       bufio.NewWriter(conn),
		pending: make(chan *Future, depth),
		closed:  make(chan struct{}),
	}
	c.readWG.Add(1)
	go c.readLoop()
	return c, nil
}

func (c *PipelineClient) readLoop() {
	defer c.readWG.Done()
	r := bufio.NewReader(c.conn)
	for {
		var f *Future
		select {
		case f = <-c.pending:
		case <-c.closed:
			// Drain any stragglers so their waiters unblock.
			for {
				select {
				case f := <-c.pending:
					f.err = errors.New("netserver: pipeline closed")
					close(f.done)
				default:
					return
				}
			}
		}
		var hdr [5]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			f.err = err
			close(f.done)
			c.failRemaining(err)
			return
		}
		plen := binary.LittleEndian.Uint32(hdr[1:5])
		if plen > maxPayload {
			f.err = errors.New("netserver: oversized response")
			close(f.done)
			c.failRemaining(f.err)
			return
		}
		body := make([]byte, plen)
		if _, err := io.ReadFull(r, body); err != nil {
			f.err = err
			close(f.done)
			c.failRemaining(err)
			return
		}
		f.status = hdr[0]
		f.body = body
		if hdr[0] == StatusError {
			f.err = fmt.Errorf("netserver: %s", body)
		}
		close(f.done)
	}
}

func (c *PipelineClient) failRemaining(err error) {
	for {
		select {
		case f := <-c.pending:
			f.err = err
			close(f.done)
		default:
			return
		}
	}
}

// Send enqueues one request and returns its future. It blocks when the
// in-flight window is full. Writes are buffered for batching: call Flush
// before waiting on the final futures of a burst, or the last requests may
// sit in the client buffer while their futures wait forever.
func (c *PipelineClient) Send(op byte, key uint64, payload []byte) (*Future, error) {
	f := &Future{done: make(chan struct{})}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	select {
	case <-c.closed:
		return nil, errors.New("netserver: pipeline closed")
	case c.pending <- f:
	default:
		// The in-flight window is full. Everything buffered must reach the
		// wire before we block, or the reader would wait for responses to
		// requests the server never saw — a self-deadlock.
		if err := c.w.Flush(); err != nil {
			return nil, err
		}
		select {
		case <-c.closed:
			return nil, errors.New("netserver: pipeline closed")
		case c.pending <- f:
		}
	}
	var hdr [13]byte
	hdr[0] = op
	binary.LittleEndian.PutUint64(hdr[1:9], key)
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return nil, err
	}
	if _, err := c.w.Write(payload); err != nil {
		return nil, err
	}
	// Flush opportunistically: batch consecutive sends, but never hold a
	// request hostage when the caller is about to Wait.
	if len(c.pending) <= 1 || c.w.Buffered() > 32<<10 {
		if err := c.w.Flush(); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Flush pushes any buffered requests to the wire.
func (c *PipelineClient) Flush() error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return c.w.Flush()
}

// Close tears down the connection and fails outstanding futures.
func (c *PipelineClient) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.closed)
		err = c.conn.Close()
		c.readWG.Wait()
	})
	return err
}
