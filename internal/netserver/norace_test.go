//go:build !race

package netserver

const raceEnabled = false
