//go:build !linux

// Non-Linux stub for the epoll transport: constructors report
// errEpollUnsupported so ServeConfig and ListenAndServe fall back to the
// portable goroutine transport, keeping -transport=epoll a soft request
// on platforms without epoll.
package netserver

import "net"

// epollSupported reports whether this build carries the epoll transport.
const epollSupported = false

func adoptEpollTransport(s *Server, ln net.Listener) (transport, error) {
	return nil, errEpollUnsupported
}

func newEpollTransport(s *Server, addr string) (transport, error) {
	return nil, errEpollUnsupported
}
