package netserver

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"
	"testing"

	"mutps/internal/kvcore"
)

// TestStatsMapAgainstNewServer checks that the versioned stats payload
// carries the legacy counters under their stable names plus the metric
// registry's samples, and that both stats ops agree on the shared fields.
func TestStatsMapAgainstNewServer(t *testing.T) {
	_, cli := startServer(t, kvcore.Hash)
	for i := uint64(0); i < 100; i++ {
		if err := cli.Put(i, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 100; i++ {
		if _, _, err := cli.Get(i); err != nil {
			t.Fatal(err)
		}
	}

	m, err := cli.StatsMap()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"ops", "cr_hits", "forwarded", "items", "hot_size"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("stats2 missing legacy key %q; got %d keys", k, len(m))
		}
	}
	if m["ops"] < 200 {
		t.Fatalf("ops = %v, want >= 200", m["ops"])
	}
	if m["items"] != 100 {
		t.Fatalf("items = %v, want 100", m["items"])
	}

	// Registry samples ride along: completed-op counters and the
	// network-layer latency series the server itself registered.
	if m[`mutps_ops_total{op="get"}`] < 100 {
		t.Fatalf(`mutps_ops_total{op="get"} = %v, want >= 100`, m[`mutps_ops_total{op="get"}`])
	}
	if m[`mutps_net_op_latency_nanoseconds_count{op="put"}`] != 100 {
		t.Fatalf("net put latency count = %v, want 100",
			m[`mutps_net_op_latency_nanoseconds_count{op="put"}`])
	}
	if m[`mutps_net_connections`] < 1 {
		t.Fatalf("connections gauge = %v, want >= 1", m[`mutps_net_connections`])
	}

	// The legacy frame must agree with the named payload.
	st, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if float64(st.Items) != m["items"] || float64(st.HotSize) != m["hot_size"] {
		t.Fatalf("op4/op5 disagree: legacy %+v vs map items=%v hot=%v",
			st, m["items"], m["hot_size"])
	}
}

// oldServer speaks the pre-stats2 protocol: it answers op 4 with the fixed
// 40-byte frame and rejects anything newer with a status-error response,
// exactly like a server built before the op existed.
func oldServer(t *testing.T, ln net.Listener) {
	t.Helper()
	conn, err := ln.Accept()
	if err != nil {
		return
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	var hdr [13]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		plen := binary.LittleEndian.Uint32(hdr[9:13])
		if _, err := io.CopyN(io.Discard, r, int64(plen)); err != nil {
			return
		}
		switch hdr[0] {
		case OpStats:
			var body [40]byte
			binary.LittleEndian.PutUint64(body[0:], 777) // ops
			binary.LittleEndian.PutUint64(body[24:], 42) // items
			writeResp(w, StatusFound, body[:])
		default:
			writeResp(w, StatusError, []byte("unknown op"))
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// TestStatsMapFallsBackToLegacyServer proves a new client survives an old
// server: the stats2 probe is rejected, the connection stays usable, and
// the map is synthesized from the legacy frame.
func TestStatsMapFallsBackToLegacyServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go oldServer(t, ln)

	cli, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	m, err := cli.StatsMap()
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if len(m) != 5 {
		t.Fatalf("legacy fallback map has %d keys, want 5", len(m))
	}
	if m["ops"] != 777 || m["items"] != 42 {
		t.Fatalf("legacy values not carried over: %v", m)
	}

	// The rejected probe must not have desynchronized the stream.
	st, err := cli.Stats()
	if err != nil {
		t.Fatalf("legacy stats after fallback: %v", err)
	}
	if st.Ops != 777 {
		t.Fatalf("ops = %d, want 777", st.Ops)
	}
}

// TestStats2Roundtrip sanity-checks the payload codec on adversarial
// inputs.
func TestStats2Decode(t *testing.T) {
	if _, err := decodeStats2(nil); err == nil {
		t.Fatal("nil payload must fail")
	}
	if _, err := decodeStats2([]byte{1, 0, 0, 0}); err == nil {
		t.Fatal("truncated entry must fail")
	}
	if _, err := decodeStats2([]byte{1, 0, 0, 0, 5, 0, 'a'}); err == nil {
		t.Fatal("short name must fail")
	}
}
