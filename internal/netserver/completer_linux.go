//go:build linux

// Completion side of the epoll transport: one completer goroutine per
// event loop retires every connection's window FIFO and flushes responses
// with writev bursts that span connections.
//
// The completer is where blocking is allowed. Retiring a window head
// means waiting on its store completion (rpc.Call.Wait) — exactly what
// the goroutine transport's per-connection writeLoop does, except one
// goroutine here serves every connection on its loop: the FIFO order each
// connection requires is per-connection, so draining connections in
// arrival order preserves it while letting one goroutine amortize across
// thousands of sockets.
//
// Flush coalescing is two-level. Within a connection, retired responses
// append to a chain of leased buffers (no syscall per response). Across
// connections, the completer keeps draining as long as more work is
// queued (up to a burst cap) and only then flushes every touched
// connection back-to-back — one writev per connection, issued while the
// kernel still has the previous socket's bytes in its send path. The
// writev-batch histogram records how many responses each such burst
// carried. A chain that hits EAGAIN parks on EPOLLOUT (the loop finishes
// it when the socket drains) so a slow reader never blocks the completer.
package netserver

import (
	"encoding/binary"
	"syscall"
	"unsafe"

	"mutps/internal/obs"
)

// burstConns caps how many connections one flush burst may gather before
// their chains are pushed to the wire: coalescing must not grow into
// unbounded latency for the first connection drained.
const burstConns = 64

// wchainMinBytes floors the leased write-chain buffer size so tiny
// responses don't fragment the chain into many iovecs.
const wchainMinBytes = 4096

// wchainHigh/wchainLow bound a connection's unflushed response chain:
// past wchainHigh the connection stops reading (its slow consumer, not
// the server, eats the backpressure — the epoll analogue of the
// goroutine transport blocking in bufio.Flush), and reads resume once a
// flush drains the chain under wchainLow. A single oversized response
// (scan, large value) may still exceed the high mark — the cap is a
// stall threshold, not a hard truncation.
const (
	wchainHigh = 128 << 10
	wchainLow  = 32 << 10
)

// iovBatch caps iovecs per writev call (IOV_MAX is 1024; 64 covers two
// full windows of small responses per syscall).
const iovBatch = 64

// completer drains connection FIFOs handed over by the event loop and
// flushes their response chains in cross-connection bursts.
func (l *eventLoop) completer() {
	var touched []*eConn
	for c := range l.work {
		l.drainConn(c, &touched)
		for len(l.work) > 0 && len(touched) < burstConns {
			c2, ok := <-l.work
			if !ok {
				break
			}
			l.drainConn(c2, &touched)
		}
		l.flushBurst(&touched)
	}
	l.flushBurst(&touched)
}

// drainConn retires c's pending FIFO until it is empty, then clears the
// queued mark (under the same lock that guards new arrivals, so a frame
// landing mid-drain either gets popped here or re-queues the connection).
func (l *eventLoop) drainConn(c *eConn, touched *[]*eConn) {
	s := l.t.s
	for {
		c.mu.Lock()
		if c.pendHead == len(c.pendq) {
			c.pendq = c.pendq[:0]
			c.pendHead = 0
			c.queued = false
			c.mu.Unlock()
			break
		}
		e := c.pendq[c.pendHead]
		c.pendq[c.pendHead] = nil
		c.pendHead++
		c.mu.Unlock()

		c.exec.retire(e, c) // blocks on the store completion; no locks held
		e.releaseBufs(s.leaser)
		opPool.Put(e)

		c.mu.Lock()
		c.inflight--
		idleEdge := c.inflight == 0 && !c.closed
		// Resume with hysteresis: waking the reader the moment one slot
		// frees would cycle pause→resume (two epoll_ctls and a wake-pipe
		// write) around every op at a saturated window. Waiting for half
		// the window amortizes that cycle over window/2 frames.
		if c.paused && c.inflight <= s.window()/2 {
			l.notify(c, noteResume)
		}
		c.mu.Unlock()
		if idleEdge && !obs.Disabled {
			s.idleConns.Add(1)
		}
	}
	if !c.inTouched {
		c.inTouched = true
		*touched = append(*touched, c)
	}
}

// flushBurst pushes every touched connection's chain to the wire and
// records the cross-connection batch size. Connections that drained
// completely get a kick note so the loop can strip idle buffers or finish
// a close.
func (l *eventLoop) flushBurst(touched *[]*eConn) {
	if len(*touched) == 0 {
		return
	}
	burst := 0
	for _, c := range *touched {
		c.inTouched = false
		burst += l.flushConn(c)
		c.mu.Lock()
		if c.pendHead == len(c.pendq) && !c.queued && c.inflight == 0 && !c.closed {
			l.notify(c, noteKick)
		}
		c.mu.Unlock()
	}
	if burst > 0 && !obs.Disabled {
		l.t.s.writevBatch.Record(l.id, uint64(burst))
	}
	*touched = (*touched)[:0]
}

// flushConn writes c's chain until it drains or the socket pushes back;
// a blocked remainder is parked on EPOLLOUT via the loop. Returns how
// many responses the chain carried into this flush.
func (l *eventLoop) flushConn(c *eConn) int {
	c.mu.Lock()
	resp := c.wresp
	c.wresp = 0
	l.flushChainLocked(c)
	if len(c.wbufs) > 0 && !c.writeDead && !c.closed {
		l.notify(c, noteWrite)
	}
	c.mu.Unlock()
	return resp
}

// continueWrite finishes a chain parked on EPOLLOUT. Loop thread only.
func (l *eventLoop) continueWrite(c *eConn) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	l.flushChainLocked(c)
	if len(c.wbufs) == 0 || c.writeDead {
		l.modEventsLocked(c, c.events&^uint32(syscall.EPOLLOUT))
	}
	c.mu.Unlock()
	l.maybeClose(c)
}

// flushChainLocked drives writev over the chain; c.mu held. Fully-written
// buffers return to the lease pool immediately. EAGAIN leaves the
// remainder chained (the caller arms EPOLLOUT); a write error marks the
// connection writeDead and drops the chain — the peer can't receive, so
// retirement continues without encoding.
func (l *eventLoop) flushChainLocked(c *eConn) {
	if c.closed || c.writeDead {
		return
	}
	// However this flush ends, lift the read stall if it drained the chain
	// under the low-water mark.
	defer func() {
		if c.wstall && c.wbytes <= wchainLow {
			c.wstall = false
			if c.paused {
				l.notify(c, noteResume)
			}
		}
	}()
	s := l.t.s
	var iovs [iovBatch]syscall.Iovec
	for len(c.wbufs) > 0 {
		n := 0
		for i := 0; i < len(c.wbufs) && n < iovBatch; i++ {
			b := c.wbufs[i]
			if i == 0 {
				b = b[c.woff:]
			}
			if len(b) == 0 {
				continue
			}
			iovs[n] = syscall.Iovec{Base: &b[0], Len: uint64(len(b))}
			n++
		}
		if n == 0 {
			l.dropChainLocked(c) // chain of empty buffers: nothing owed
			return
		}
		r, _, errno := syscall.Syscall(syscall.SYS_WRITEV,
			uintptr(c.fd), uintptr(unsafe.Pointer(&iovs[0])), uintptr(n))
		switch errno {
		case 0:
		case syscall.EINTR:
			continue
		case syscall.EAGAIN:
			return
		default:
			c.writeDead = true
			l.dropChainLocked(c)
			return
		}
		written := int(r)
		c.wbytes -= written
		for written > 0 && len(c.wbufs) > 0 {
			head := c.wbufs[0]
			rem := len(head) - c.woff
			if written < rem {
				c.woff += written
				written = 0
				break
			}
			written -= rem
			s.leaser.Put(head)
			c.wbufs[0] = nil
			c.wbufs = c.wbufs[1:]
			c.woff = 0
		}
		if len(c.wbufs) == 0 {
			c.wbufs = c.wbufs[:0]
		}
	}
}

// writeOut implements respWriter: one encoded response appended to the
// connection's leased chain. Called by the completer during retirement; a
// dead or closed connection swallows the bytes (draining continues so
// in-flight store calls are still waited out).
func (c *eConn) writeOut(status byte, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.writeDead {
		return
	}
	var hdr [5]byte
	hdr[0] = status
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(body)))
	c.appendChainLocked(hdr[:])
	c.appendChainLocked(body)
	c.wresp++
	c.wbytes += 5 + len(body)
	if c.wbytes > wchainHigh {
		c.wstall = true // parseFrames pauses reads at the next frame edge
	}
}

// flushBarrier implements respWriter's pre-barrier flush: everything
// already retired goes to the wire before a barrier op (scan, stats)
// executes, so a slow barrier never holds earlier responses hostage.
func (c *eConn) flushBarrier() {
	l := c.l
	if n := l.flushConn(c); n > 0 && !obs.Disabled {
		l.t.s.flushBatch.Record(c.exec.connID, uint64(n))
	}
}

// appendChainLocked copies p onto the chain, leasing buffers as needed;
// c.mu held. Response bytes beyond the largest lease class fall back to
// one exactly-sized heap buffer (dropped to the GC when written).
func (c *eConn) appendChainLocked(p []byte) {
	leaser := c.l.t.s.leaser
	for len(p) > 0 {
		if n := len(c.wbufs); n > 0 {
			tail := c.wbufs[n-1]
			if len(tail) < cap(tail) {
				take := cap(tail) - len(tail)
				if take > len(p) {
					take = len(p)
				}
				c.wbufs[n-1] = append(tail, p[:take]...)
				p = p[take:]
				continue
			}
		}
		want := len(p)
		if want < wchainMinBytes {
			want = wchainMinBytes
		}
		c.wbufs = append(c.wbufs, leaser.Get(want))
	}
}
