//go:build linux

// Read-side decode for the epoll transport: nonblocking reads feeding the
// same frame semantics as the goroutine transport's readLoop, restated as
// a state machine because a frame may arrive across any number of epoll
// wakeups.
//
// States, all kept on the eConn (loop-thread owned):
//
//	idle           rbuf == nil, cur == nil: the connection holds no buffer
//	staging        rbuf holds 0..n unparsed bytes (partial header, or a
//	               partial small frame); parseFrames consumes it
//	payload spill  cur != nil: a frame bigger than the staged bytes was
//	               claimed; reads land directly in cur.payload[curN:], no
//	               second copy through rbuf
//
// EAGAIN can interrupt anywhere — mid-header, mid-payload — and the state
// simply persists until the next EPOLLIN. Window backpressure (inflight ==
// window) pauses parsing with bytes still staged and disarms EPOLLIN; the
// completer's resume note re-arms it and re-enters parseFrames before the
// next read, so paused bytes are never lost. A read of 0 is the peer's
// half-close (shutdown(SHUT_WR)): reading stops but every in-flight
// response is still retired and flushed before the fd closes.
package netserver

import (
	"encoding/binary"
	"sync"
	"syscall"
	"time"

	"mutps/internal/obs"
)

// opPool recycles window-slot structs across connections. Unlike the
// goroutine transport's per-connection slot ring, the epoll transport has
// no per-connection preallocation at all — an idle connection holds zero
// slots — so slots circulate through this pool: claimed at frame arrival,
// returned (buffers stripped) right after retirement.
var opPool = sync.Pool{New: func() any { return new(netOp) }}

// readable drains the socket: spill reads fill the in-progress payload
// directly, everything else stages through rbuf and parses. Loop thread
// only.
func (l *eventLoop) readable(c *eConn) {
	c.mu.Lock()
	stop := c.closed || c.doneReading
	c.mu.Unlock()
	if stop {
		return
	}
	s := l.t.s
	// A read that returns fewer bytes than asked means the socket buffer
	// drained: stop instead of paying a guaranteed-EAGAIN confirmation
	// read. Registration is level-triggered, so anything that lands
	// between the short read and the next epoll_wait is re-reported —
	// the skip can delay nothing.
	for {
		if c.cur != nil {
			e := c.cur
			want := c.curLen - c.curN
			n, err := syscall.Read(c.fd, e.payload[c.curN:c.curLen])
			switch {
			case n > 0:
				c.curN += n
				if c.curN == c.curLen {
					c.cur = nil
					l.finishFrame(c, e, false)
				}
				if n < want {
					if c.cur == nil {
						l.stripReadBuf(c)
					}
					return
				}
				continue
			case n == 0 && err == nil:
				l.readClosed(c, false)
				return
			case err == syscall.EAGAIN:
				return
			case err == syscall.EINTR:
				continue
			default:
				l.readClosed(c, true)
				return
			}
		}
		if !l.parseFrames(c) {
			return // paused on a full window, or a fatal frame stopped reads
		}
		if c.cur != nil {
			continue // parse switched to payload spill: read there, not rbuf
		}
		if c.rbuf == nil {
			b := s.leaser.Get(rbufBytes)
			c.rbuf = b[:cap(b)]
			c.rstart, c.rlen = 0, 0
		}
		space := len(c.rbuf) - c.rlen
		n, err := syscall.Read(c.fd, c.rbuf[c.rlen:])
		switch {
		case n > 0:
			c.rlen += n
			if n == space {
				continue // staging filled: more may be queued in the kernel
			}
			if !l.parseFrames(c) {
				return
			}
			if c.cur != nil {
				continue // spill claimed mid-short-read: finish it above
			}
			l.stripReadBuf(c)
			return
		case n == 0 && err == nil:
			l.readClosed(c, false)
			return
		case err == syscall.EAGAIN:
			l.stripReadBuf(c)
			return
		case err == syscall.EINTR:
			continue
		default:
			l.readClosed(c, true)
			return
		}
	}
}

// parseFrames consumes staged bytes: complete small frames are claimed,
// copied into leased payload buffers, and submitted; a frame extending
// past the staging buffer switches the connection into payload-spill
// mode. Returns false when reading must stop (window full, fatal frame).
func (l *eventLoop) parseFrames(c *eConn) bool {
	s := l.t.s
	for c.rbuf != nil && c.rlen-c.rstart >= 13 {
		hdr := c.rbuf[c.rstart : c.rstart+13]
		plen := binary.LittleEndian.Uint32(hdr[9:13])
		if plen > maxPayload {
			// Same fatal path as the goroutine transport: a pre-resolved
			// error response retires through the FIFO, then the connection
			// closes. The oversized payload is never read.
			e := opPool.Get().(*netOp)
			e.reset(hdr[0], binary.LittleEndian.Uint64(hdr[1:9]))
			e.status, e.msg, e.closeAfter = StatusError, errMsgPayloadTooLarge, true
			c.rstart = c.rlen
			l.finishFrame(c, e, true)
			return false
		}
		c.mu.Lock()
		if c.inflight >= s.window() || c.wstall {
			// Window full, or the write chain is over its high-water mark
			// (a slow reader): stop reading, leave the bytes staged. The
			// completer re-arms EPOLLIN (noteResume) once the head retires
			// or the chain drains.
			c.paused = true
			l.modEventsLocked(c, c.events&^uint32(syscall.EPOLLIN|syscall.EPOLLRDHUP))
			c.mu.Unlock()
			return false
		}
		c.mu.Unlock()
		e := opPool.Get().(*netOp)
		e.reset(hdr[0], binary.LittleEndian.Uint64(hdr[1:9]))
		total := 13 + int(plen)
		if c.rlen-c.rstart >= total {
			if plen > 0 {
				b := s.leaser.Get(int(plen))
				e.payload = b[:plen]
				copy(e.payload, c.rbuf[c.rstart+13:c.rstart+total])
			}
			c.rstart += total
			l.finishFrame(c, e, false)
			continue
		}
		// Frame extends past the staged bytes: spill. The payload buffer is
		// leased now and filled directly by subsequent reads.
		avail := c.rlen - (c.rstart + 13)
		b := s.leaser.Get(int(plen))
		e.payload = b[:plen]
		copy(e.payload, c.rbuf[c.rstart+13:c.rlen])
		c.rstart = c.rlen
		c.cur, c.curN, c.curLen = e, avail, int(plen)
		return true
	}
	if c.rbuf != nil && c.rstart > 0 {
		// Compact the partial header (< 13 bytes) to the front so the next
		// read appends after it.
		copy(c.rbuf, c.rbuf[c.rstart:c.rlen])
		c.rlen -= c.rstart
		c.rstart = 0
	}
	return true
}

// finishFrame submits one complete frame (or enqueues a pre-resolved
// fatal one) and hands the connection to the completer.
func (l *eventLoop) finishFrame(c *eConn, e *netOp, fatal bool) {
	s := l.t.s
	if !obs.Disabled && latIndex(e.op) >= 0 {
		e.t0 = time.Now()
	}
	if !fatal {
		c.exec.submit(e, e.payload)
	}
	if s.cfg.IdleTimeout > 0 {
		// lastAct only feeds sweepIdle; without an idle timeout the clock
		// read would be pure per-frame overhead.
		c.lastAct = time.Now().UnixNano()
	}
	closeAfter := e.closeAfter
	c.mu.Lock()
	c.pendq = append(c.pendq, e)
	c.inflight++
	first := c.inflight == 1
	enq := !c.queued
	c.queued = true
	if closeAfter {
		c.doneReading = true
		l.modEventsLocked(c, c.events&^uint32(syscall.EPOLLIN|syscall.EPOLLRDHUP))
	}
	c.mu.Unlock()
	if !obs.Disabled {
		s.submitted.Inc(c.exec.connID)
		s.inflight.Add(1)
		if first {
			s.idleConns.Add(-1)
		}
	}
	if enq {
		l.work <- c
	}
}

// readClosed handles EOF (half-close: responses still owed are retired
// and flushed before the fd closes) and read errors (the write side is
// dead too — drop the chain and drain).
func (l *eventLoop) readClosed(c *eConn, fail bool) {
	s := l.t.s
	if c.cur != nil {
		// A partial frame owes no response; reclaim its slot.
		c.cur.releaseBufs(s.leaser)
		opPool.Put(c.cur)
		c.cur = nil
	}
	if c.rbuf != nil {
		s.leaser.Put(c.rbuf)
		c.rbuf = nil
	}
	c.mu.Lock()
	c.doneReading = true
	if fail {
		c.writeDead = true
		l.dropChainLocked(c)
	}
	l.modEventsLocked(c, c.events&^uint32(syscall.EPOLLIN|syscall.EPOLLRDHUP))
	c.mu.Unlock()
	l.maybeClose(c)
}

// stripReadBuf returns the staging buffer to the pool when the socket
// drained with nothing staged and nothing in flight: the idle-connection
// zero-buffer guarantee.
func (l *eventLoop) stripReadBuf(c *eConn) {
	if c.rbuf == nil || c.rlen != c.rstart || c.cur != nil {
		return
	}
	c.rstart, c.rlen = 0, 0
	c.mu.Lock()
	idle := c.inflight == 0
	c.mu.Unlock()
	if idle {
		l.t.s.leaser.Put(c.rbuf)
		c.rbuf = nil
	}
}
