//go:build race

package netserver

// raceEnabled lets the allocation gates stand down under -race: the race
// runtime makes sync.Pool drop items at random (by design, to surface
// reuse races), so the pooled op-slot path re-allocates and a fixed
// allocs-per-op budget is not meaningful there.
const raceEnabled = true
