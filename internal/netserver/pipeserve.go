// Pipelined server-side execution: the per-connection serve loop as a
// submit/complete FSM instead of run-to-completion.
//
// The old loop read one frame, blocked on the synchronous store facade,
// wrote the response, and issued one Flush syscall per reply — so a
// pipelined client at depth 128 was serialized to depth 1 server-side and
// the receive ring idled unless the benchmark opened hundreds of
// connections. This file splits the loop into the same two-stage shape the
// CR workers already use:
//
//	decode stage (readLoop):   read frame → claim a window slot → submit
//	                           asynchronously via the store's async facade
//	completion stage (writeLoop): retire window slots in strict FIFO
//	                           order → encode the response → coalesce
//	                           flushes across the burst
//
// The window is a fixed set of Config.MaxInflight netOp slots circulating
// between two channels (free → pending → free). Claiming a slot is the
// backpressure point: when the window is full — or the completion stage is
// wedged behind a slow reader — the decode stage stops reading and the
// client backs up onto TCP flow control, so per-connection server memory
// is bounded at MaxInflight request/response contexts no matter how fast
// the client writes. Each slot owns its payload and value buffers, so the
// steady-state path allocates nothing per request (the zero-alloc GetInto
// discipline, preserved asynchronously: gets submit with Dst drawn from
// the slot).
//
// Ops the store cannot execute asynchronously (Scan, Stats, Stats2) are
// barriers: they ride the window as ordinary slots but execute inline in
// the completion stage, which by FIFO order means every earlier response
// has already been retired and written — the window drains itself in front
// of them. Store-level overload surfaces per-op: a submit that fails with
// rpc.ErrBacklogged becomes an in-order StatusBacklogged reply and the
// connection keeps streaming.
package netserver

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mutps/internal/kvcore"
	"mutps/internal/obs"
	"mutps/internal/rpc"
)

// Pre-resolved error payloads for protocol violations, allocated once so
// rejecting a malformed frame stays allocation-free.
var (
	errMsgPayloadTooLarge = []byte("payload too large")
	errMsgScanPayload     = []byte("scan payload must be a uint32 count")
	errMsgScanCount       = []byte("scan count too large")
	errMsgMGetPayload     = []byte("mget payload must be count(4) + count*key(8)")
	errMsgMGetCount       = []byte("mget count too large")
	errMsgPutTTLPayload   = []byte("put-ttl payload must lead with ttl_nanos(8)")
)

// submitHook, when set, intercepts asynchronous submission with an
// injected error before the store sees the request. It exists so tests can
// drive the shed path (rpc.ErrBacklogged → StatusBacklogged) and the
// closed path deterministically; production code never sets it. Atomic so
// a test can install/clear it while server goroutines are live.
var submitHook atomic.Pointer[func(op byte, key uint64) error]

// netOp is one slot of a connection's in-flight window: the decoded
// request header, either the store's completion future (async ops) or a
// pre-resolved status (protocol errors, submit failures, barrier markers),
// and the slot-owned buffers the request and response flow through.
type netOp struct {
	op         byte
	status     byte // pre-resolved response status when call is nil
	barrier    bool // execute inline at retire time (Scan/Stats/Stats2)
	closeAfter bool // fatal protocol error: retire this, then drop the conn
	key        uint64
	scanCount  uint32
	call       *rpc.Call
	msg        []byte // pre-resolved response payload
	payload    []byte // slot-owned put-payload buffer (stable until retire)
	val        []byte // slot-owned get-destination buffer (rpc Dst)
	t0         time.Time

	// Batched multi-get state: one mget frame occupies one window slot but
	// fans out into len(mcalls) async store gets, which the completion
	// stage retires together as one response frame (one FIFO burst for the
	// whole batch). mvals are the slot-owned per-key destination buffers,
	// grown lazily and kept across requests like val.
	mget    bool
	mgetErr error // submit failed mid-batch: whole frame fails after drain
	mcalls  []*rpc.Call
	mvals   [][]byte
}

// connPipeline is the per-connection pipelined executor state shared by
// the decode and completion stages.
type connPipeline struct {
	s      *Server
	conn   net.Conn
	connID int
	r      *bufio.Reader
	w      *bufio.Writer

	free    chan *netOp // window slots available to the decode stage
	pending chan *netOp // submitted slots, in request order (the FIFO)

	// Completion-stage locals (never touched by the decode stage).
	batch int    // responses encoded since the last flush
	dead  bool   // transport write failed: stop writing, keep retiring
	body  []byte // reusable scan/stats response build buffer
}

// pipeWriterBuf sizes the response writer. Bursts larger than this
// self-flush inside bufio (one write syscall per 32 KB), so coalescing
// never trades a syscall for unbounded buffering.
const pipeWriterBuf = 32 << 10

func newConnPipeline(s *Server, conn net.Conn, connID int) *connPipeline {
	window := s.cfg.MaxInflight
	if window <= 0 {
		window = DefaultInflight
	}
	p := &connPipeline{
		s: s, conn: conn, connID: connID,
		r:       bufio.NewReader(conn),
		w:       bufio.NewWriterSize(conn, pipeWriterBuf),
		free:    make(chan *netOp, window),
		pending: make(chan *netOp, window),
	}
	slots := make([]netOp, window)
	for i := range slots {
		p.free <- &slots[i]
	}
	return p
}

// run drives both stages and returns when the connection is done: the
// decode stage exits on read error (connection closed, idle timeout,
// fatal protocol error), and the completion stage then drains every
// still-pending slot — waiting out in-flight store calls so their buffers
// and pooled rpc.Calls are never abandoned mid-use — before returning.
func (p *connPipeline) run() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.writeLoop()
	}()
	p.readLoop()
	close(p.pending)
	wg.Wait()
}

// readLoop is the decode stage: frame in, window slot claimed, request
// submitted, slot enqueued for FIFO retirement.
func (p *connPipeline) readLoop() {
	s := p.s
	var hdr [13]byte
	for {
		if s.cfg.IdleTimeout > 0 {
			p.conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		if _, err := io.ReadFull(p.r, hdr[:]); err != nil {
			return
		}
		// Claiming the slot is the backpressure point: with the window full
		// this blocks until the completion stage retires the head, which in
		// turn stops the reads that would grow per-connection memory.
		e := <-p.free
		e.op = hdr[0]
		e.key = binary.LittleEndian.Uint64(hdr[1:9])
		e.call = nil
		e.barrier = false
		e.closeAfter = false
		e.status = 0
		e.msg = nil
		e.mget = false
		plen := binary.LittleEndian.Uint32(hdr[9:13])
		if plen > maxPayload {
			e.status, e.msg, e.closeAfter = StatusError, errMsgPayloadTooLarge, true
			p.track()
			p.pending <- e
			return
		}
		if uint32(cap(e.payload)) < plen {
			e.payload = make([]byte, plen)
		}
		payload := e.payload[:plen]
		if _, err := io.ReadFull(p.r, payload); err != nil {
			// Half a frame: no response owed. The slot is simply not
			// recirculated; the whole window dies with the connection.
			return
		}
		if !obs.Disabled && latIndex(e.op) >= 0 {
			e.t0 = time.Now()
		}
		p.submit(e, payload)
		p.track()
		p.pending <- e
		if e.closeAfter {
			return
		}
	}
}

// track counts one slot entering the in-flight window.
func (p *connPipeline) track() {
	if obs.Disabled {
		return
	}
	p.s.submitted.Inc(p.connID)
	p.s.inflight.Add(1)
}

// submit enters one decoded request into the store's async path, or
// pre-resolves the slot for protocol errors, submit failures, and barrier
// ops. payload is e.payload[:plen] (stable until the slot is retired —
// the store reads a put's value only when a worker executes it).
func (p *connPipeline) submit(e *netOp, payload []byte) {
	if hook := submitHook.Load(); hook != nil {
		if err := (*hook)(e.op, e.key); err != nil {
			p.failSubmit(e, err)
			return
		}
	}
	store := p.s.store
	var err error
	switch e.op {
	case OpGet:
		e.call, err = store.GetAsync(e.key, e.val[:0])
	case OpGetTTL:
		// Same store path as a get; the remaining TTL is encoded at retire
		// time from the call's expiry stamp.
		e.call, err = store.GetAsync(e.key, e.val[:0])
	case OpPut:
		e.call, err = store.PutAsync(e.key, payload)
	case OpPutTTL:
		if len(payload) < 8 {
			e.status, e.msg = StatusError, errMsgPutTTLPayload
			return
		}
		// ttl 0 on the wire selects the server's default, matching the
		// store facade's ttl <= 0 convention. The value subslice stays
		// valid until retire — it aliases the slot-owned payload buffer.
		ttl := time.Duration(binary.LittleEndian.Uint64(payload))
		e.call, err = store.PutTTLAsync(e.key, payload[8:], ttl)
	case OpDelete:
		e.call, err = store.DeleteAsync(e.key)
	case OpScan:
		if len(payload) != 4 {
			e.status, e.msg = StatusError, errMsgScanPayload
			return
		}
		count := binary.LittleEndian.Uint32(payload)
		if count > kvcore.MaxScanCount {
			e.status, e.msg = StatusError, errMsgScanCount
			return
		}
		e.scanCount = count
		e.barrier = true
	case OpStats, OpStats2:
		e.barrier = true
	case OpMGet:
		p.submitMGet(e, payload)
	default:
		e.status, e.msg = StatusError, []byte(fmt.Sprintf("unknown op %d", e.op))
	}
	if err != nil {
		p.failSubmit(e, err)
	}
}

// submitMGet fans one mget frame out into per-key async gets. Every key
// enters the store's receive path at once (the batch shares the pipelined
// window slot, so the whole frame costs one unit of connection-level
// backpressure) and the completion stage retires them together. A submit
// failure mid-batch (backlogged, closing) fails the whole frame — gets are
// side-effect-free, so the client retries the frame safely — but the
// already-submitted prefix is still waited out at retire time so no pooled
// call or buffer is abandoned.
func (p *connPipeline) submitMGet(e *netOp, payload []byte) {
	if len(payload) < 4 {
		e.status, e.msg = StatusError, errMsgMGetPayload
		return
	}
	n := int(binary.LittleEndian.Uint32(payload))
	if n > MaxMGetKeys {
		e.status, e.msg = StatusError, errMsgMGetCount
		return
	}
	if len(payload) != 4+8*n {
		e.status, e.msg = StatusError, errMsgMGetPayload
		return
	}
	e.mget = true
	e.mgetErr = nil
	e.mcalls = e.mcalls[:0]
	for len(e.mvals) < n {
		e.mvals = append(e.mvals, nil)
	}
	if !obs.Disabled {
		p.s.mgetKeys.Record(p.connID, uint64(n))
	}
	store := p.s.store
	for i := 0; i < n; i++ {
		key := binary.LittleEndian.Uint64(payload[4+8*i:])
		c, err := store.GetAsync(key, e.mvals[i][:0])
		if err != nil {
			e.mgetErr = err
			return
		}
		e.mcalls = append(e.mcalls, c)
	}
}

// failSubmit pre-resolves a slot whose request never entered the store:
// overload shedding becomes the retryable StatusBacklogged (in request
// order, exactly like the synchronous path), everything else a
// StatusError carrying the message.
func (p *connPipeline) failSubmit(e *netOp, err error) {
	e.call = nil
	if errors.Is(err, rpc.ErrBacklogged) {
		e.status, e.msg = StatusBacklogged, nil
		return
	}
	e.status, e.msg = StatusError, []byte(err.Error())
}

// writeLoop is the completion stage: strict FIFO retirement with
// coalesced flushes — one Flush per burst of ready responses, not one per
// op. It keeps draining after a transport failure (dead) so every
// in-flight store call is waited out and every window slot recirculated.
func (p *connPipeline) writeLoop() {
	for e := range p.pending {
		if (e.call != nil && !e.call.Done()) ||
			(e.mget && len(e.mcalls) > 0 && !e.mcalls[0].Done()) {
			// The window head hasn't completed: get the already-encoded
			// burst onto the wire instead of sitting on it while we wait.
			p.flushResponses()
		}
		p.retire(e)
		p.batch++
		p.free <- e
		if len(p.pending) == 0 {
			p.flushResponses()
		}
	}
	p.flushResponses()
}

// retire resolves one window slot into its wire response: wait out the
// store call (FIFO means the head must complete before anything later may
// be written), execute barrier ops inline, or emit the pre-resolved
// status. The slot's buffers are reusable as soon as this returns — the
// response bytes have been copied into the write buffer (or written
// through) and the pooled call released.
func (p *connPipeline) retire(e *netOp) {
	switch {
	case e.call != nil:
		c := e.call
		c.Wait()
		switch {
		case c.Err != nil:
			if errors.Is(c.Err, rpc.ErrBacklogged) {
				p.writeOut(StatusBacklogged, nil)
			} else {
				p.writeOut(StatusError, []byte(c.Err.Error()))
			}
		case e.op == OpGet:
			switch {
			case c.Found:
				p.writeOut(StatusFound, c.Value)
			case c.Expired:
				p.writeOut(StatusExpired, nil)
			default:
				p.writeOut(StatusNotFound, nil)
			}
		case e.op == OpGetTTL:
			p.retireGetTTL(c)
		case e.op == OpPut, e.op == OpPutTTL:
			p.writeOut(StatusFound, nil)
		default: // OpDelete
			if c.Found {
				p.writeOut(StatusFound, nil)
			} else {
				p.writeOut(StatusNotFound, nil)
			}
		}
		// Keep a destination buffer the store had to grow, so the next get
		// through this slot fits without allocating.
		if cap(c.Value) > cap(e.val) {
			e.val = c.Value
		}
		e.call = nil
		c.Release()
	case e.mget:
		p.retireMGet(e)
	case e.barrier:
		p.retireBarrier(e)
	default:
		p.writeOut(e.status, e.msg)
	}
	if !obs.Disabled {
		if li := latIndex(e.op); li >= 0 {
			p.s.lat[li].Record(p.connID, uint64(time.Since(e.t0)))
		}
		p.s.retired.Inc(p.connID)
		p.s.inflight.Add(-1)
	}
}

// retireGetTTL encodes one completed get-ttl call: the found response
// leads with the remaining TTL in nanoseconds (0 = no expiry) followed by
// the value. A deadline that passed between the worker's check and encode
// time retires as StatusExpired rather than shipping a dead value.
func (p *connPipeline) retireGetTTL(c *rpc.Call) {
	if !c.Found {
		if c.Expired {
			p.writeOut(StatusExpired, nil)
		} else {
			p.writeOut(StatusNotFound, nil)
		}
		return
	}
	var rem uint64
	if c.Expiry != 0 {
		d := int64(c.Expiry) - time.Now().UnixNano()
		if d <= 0 {
			p.writeOut(StatusExpired, nil)
			return
		}
		rem = uint64(d)
	}
	body := append(p.body[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	binary.LittleEndian.PutUint64(body, rem)
	body = append(body, c.Value...)
	p.body = body
	p.writeOut(StatusFound, body)
}

// retireMGet resolves one mget frame: wait every per-key call in request
// order (by FIFO, the whole batch retires as one burst at this slot's
// position), encode the positional response into the completion-stage
// build buffer, and recirculate the grown destination buffers into the
// slot. If any submit or call failed, the frame degrades to a single
// whole-frame status — backlogged when retryable — after every in-flight
// call has been drained.
func (p *connPipeline) retireMGet(e *netOp) {
	body := append(p.body[:0], 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(body, uint32(len(e.mcalls)))
	failed := e.mgetErr
	var hdr [5]byte
	for i, c := range e.mcalls {
		c.Wait()
		if c.Err != nil && failed == nil {
			failed = c.Err
		}
		if failed == nil {
			hdr[0] = 0
			if c.Found {
				hdr[0] = 1
			}
			binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(c.Value)))
			body = append(body, hdr[:]...)
			body = append(body, c.Value...)
		}
		// Keep a destination buffer the store had to grow, as retire does
		// for single gets.
		if cap(c.Value) > cap(e.mvals[i]) {
			e.mvals[i] = c.Value
		}
		c.Release()
	}
	e.mcalls = e.mcalls[:0]
	e.mgetErr = nil
	p.body = body
	if failed != nil {
		if errors.Is(failed, rpc.ErrBacklogged) {
			p.writeOut(StatusBacklogged, nil)
		} else {
			p.writeOut(StatusError, []byte(failed.Error()))
		}
		return
	}
	p.writeOut(StatusFound, body)
}

// retireBarrier executes a Scan/Stats/Stats2 inline. Reaching here means
// the FIFO has retired every earlier response — the barrier semantics —
// so the op observes all prior writes on this connection; responses to
// already-buffered bursts are flushed first so a slow scan doesn't hold
// them hostage.
func (p *connPipeline) retireBarrier(e *netOp) {
	p.flushResponses()
	switch e.op {
	case OpStats:
		st := p.s.store.Stats()
		var body [40]byte
		binary.LittleEndian.PutUint64(body[0:], st.Ops)
		binary.LittleEndian.PutUint64(body[8:], st.CRHits)
		binary.LittleEndian.PutUint64(body[16:], st.Forwarded)
		binary.LittleEndian.PutUint64(body[24:], uint64(st.Items))
		binary.LittleEndian.PutUint64(body[32:], uint64(st.HotSize))
		p.writeOut(StatusFound, body[:])
	case OpStats2:
		p.body = p.s.appendStats2(p.body[:0])
		p.writeOut(StatusFound, p.body)
	case OpScan:
		kvs, err := p.s.store.Scan(e.key, int(e.scanCount))
		if err != nil {
			if errors.Is(err, rpc.ErrBacklogged) {
				p.writeOut(StatusBacklogged, nil)
			} else {
				p.writeOut(StatusError, []byte(err.Error()))
			}
			return
		}
		body := append(p.body[:0], 0, 0, 0, 0)
		binary.LittleEndian.PutUint32(body, uint32(len(kvs)))
		var tmp [12]byte
		for _, kv := range kvs {
			binary.LittleEndian.PutUint64(tmp[0:8], kv.Key)
			binary.LittleEndian.PutUint32(tmp[8:12], uint32(len(kv.Value)))
			body = append(body, tmp[:]...)
			body = append(body, kv.Value...)
		}
		p.body = body
		p.writeOut(StatusFound, body)
	}
}

// writeOut encodes one response into the write buffer unless the
// transport already failed. A write error marks the connection dead and
// closes it, which also unblocks the decode stage.
func (p *connPipeline) writeOut(status byte, body []byte) {
	if p.dead {
		return
	}
	if err := writeResp(p.w, status, body); err != nil {
		p.fail()
	}
}

// flushResponses pushes the coalesced burst to the wire and records how
// many responses the flush carried.
func (p *connPipeline) flushResponses() {
	if p.batch > 0 && !obs.Disabled {
		p.s.flushBatch.Record(p.connID, uint64(p.batch))
	}
	p.batch = 0
	if p.dead || p.w.Buffered() == 0 {
		return
	}
	if err := p.w.Flush(); err != nil {
		p.fail()
	}
}

// fail records a transport write failure. The peer can no longer receive
// responses, so writing stops; closing the connection makes the decode
// stage's next read fail, which ends the window drain cleanly.
func (p *connPipeline) fail() {
	p.dead = true
	p.conn.Close()
}
