// Pipelined server-side execution for the goroutine transport: the
// per-connection serve loop as a submit/complete FSM instead of
// run-to-completion.
//
// The old loop read one frame, blocked on the synchronous store facade,
// wrote the response, and issued one Flush syscall per reply — so a
// pipelined client at depth 128 was serialized to depth 1 server-side and
// the receive ring idled unless the benchmark opened hundreds of
// connections. This file splits the loop into the same two-stage shape the
// CR workers already use:
//
//	decode stage (readLoop):   read frame → claim a window slot → submit
//	                           asynchronously via the store's async facade
//	completion stage (writeLoop): retire window slots in strict FIFO
//	                           order → encode the response → coalesce
//	                           flushes across the burst
//
// The window is a fixed set of Config.MaxInflight netOp slots circulating
// between two channels (free → pending → free). Claiming a slot is the
// backpressure point: when the window is full — or the completion stage is
// wedged behind a slow reader — the decode stage stops reading and the
// client backs up onto TCP flow control, so per-connection server memory
// is bounded at MaxInflight request/response contexts no matter how fast
// the client writes. Frame semantics (submit, FIFO retirement, barriers,
// shed-to-StatusBacklogged) live in the shared protocol layer
// (protocol.go); this file owns only the goroutine transport's halves of
// the exchange: blocking reads on one side, bufio-coalesced writes on the
// other.
//
// Buffer lifetime: slot buffers are leased from the server's arena.Leaser
// the first time a slot needs them and KEPT while the window is busy (the
// zero-alloc steady state), but the completion stage strips every slot's
// buffers back to the pool whenever the window drains — so a connection
// that goes idle holds no payload or destination buffers at all, no
// matter how large its bursts were.
package netserver

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mutps/internal/obs"
)

// connPipeline is the per-connection pipelined executor state shared by
// the decode and completion stages.
type connPipeline struct {
	s      *Server
	conn   net.Conn
	window int
	exec   protoExec
	r      *bufio.Reader
	w      *bufio.Writer

	free    chan *netOp // window slots available to the decode stage
	pending chan *netOp // submitted slots, in request order (the FIFO)

	// opsInFlight tracks this connection's window occupancy for the
	// idle-conns gauge: the decode stage increments, the completion stage
	// decrements, and the 0↔1 edges flip the connection between idle and
	// active.
	opsInFlight atomic.Int32

	// Completion-stage locals (never touched by the decode stage).
	batch int  // responses encoded since the last flush
	dead  bool // transport write failed: stop writing, keep retiring
}

// pipeWriterBuf sizes the response writer. Bursts larger than this
// self-flush inside bufio (one write syscall per 32 KB), so coalescing
// never trades a syscall for unbounded buffering.
const pipeWriterBuf = 32 << 10

func newConnPipeline(s *Server, conn net.Conn, connID int) *connPipeline {
	window := s.window()
	p := &connPipeline{
		s: s, conn: conn, window: window,
		exec:    protoExec{s: s, connID: connID},
		r:       bufio.NewReader(conn),
		w:       bufio.NewWriterSize(conn, pipeWriterBuf),
		free:    make(chan *netOp, window),
		pending: make(chan *netOp, window),
	}
	slots := make([]netOp, window)
	for i := range slots {
		p.free <- &slots[i]
	}
	return p
}

// run drives both stages and returns when the connection is done: the
// decode stage exits on read error (connection closed, idle timeout,
// fatal protocol error), and the completion stage then drains every
// still-pending slot — waiting out in-flight store calls so their buffers
// and pooled rpc.Calls are never abandoned mid-use — before returning.
// Every leased buffer is back in the pool by the time run returns.
func (p *connPipeline) run() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.writeLoop()
	}()
	p.readLoop()
	close(p.pending)
	wg.Wait()
	p.releaseAllBufs()
}

// readLoop is the decode stage: frame in, window slot claimed, request
// submitted, slot enqueued for FIFO retirement.
func (p *connPipeline) readLoop() {
	s := p.s
	var hdr [13]byte
	for {
		if s.cfg.IdleTimeout > 0 {
			p.conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		if _, err := io.ReadFull(p.r, hdr[:]); err != nil {
			return
		}
		// Claiming the slot is the backpressure point: with the window full
		// this blocks until the completion stage retires the head, which in
		// turn stops the reads that would grow per-connection memory.
		e := <-p.free
		e.reset(hdr[0], binary.LittleEndian.Uint64(hdr[1:9]))
		plen := binary.LittleEndian.Uint32(hdr[9:13])
		if plen > maxPayload {
			e.status, e.msg, e.closeAfter = StatusError, errMsgPayloadTooLarge, true
			p.track()
			p.pending <- e
			return
		}
		if uint32(cap(e.payload)) < plen {
			s.leaser.Put(e.payload)
			e.payload = s.leaser.Get(int(plen))
		}
		payload := e.payload[:plen]
		if _, err := io.ReadFull(p.r, payload); err != nil {
			// Half a frame: no response owed. The slot was never submitted,
			// so hand it straight back for the teardown sweep to strip.
			p.free <- e
			return
		}
		if !obs.Disabled && latIndex(e.op) >= 0 {
			e.t0 = time.Now()
		}
		p.exec.submit(e, payload)
		p.track()
		p.pending <- e
		if e.closeAfter {
			return
		}
	}
}

// track counts one slot entering the in-flight window.
func (p *connPipeline) track() {
	if obs.Disabled {
		return
	}
	p.s.submitted.Inc(p.exec.connID)
	p.s.inflight.Add(1)
	if p.opsInFlight.Add(1) == 1 {
		p.s.idleConns.Add(-1)
	}
}

// writeLoop is the completion stage: strict FIFO retirement with
// coalesced flushes — one Flush per burst of ready responses, not one per
// op. It keeps draining after a transport failure (dead) so every
// in-flight store call is waited out and every window slot recirculated.
// When the window drains it strips every idle slot's leased buffers back
// to the pool: a connection between bursts costs no buffer memory.
func (p *connPipeline) writeLoop() {
	for e := range p.pending {
		if (e.call != nil && !e.call.Done()) ||
			(e.mget && len(e.mcalls) > 0 && !e.mcalls[0].Done()) {
			// The window head hasn't completed: get the already-encoded
			// burst onto the wire instead of sitting on it while we wait.
			p.flushResponses()
		}
		p.exec.retire(e, p)
		p.batch++
		p.free <- e
		if !obs.Disabled && p.opsInFlight.Add(-1) == 0 {
			p.s.idleConns.Add(1)
		}
		if len(p.pending) == 0 {
			p.flushResponses()
			p.stripIdleBuffers()
		}
	}
	p.flushResponses()
}

// stripIdleBuffers returns every idle slot's leased buffers to the pool.
// Called by the completion stage when the pending FIFO is empty: the
// window is (momentarily) drained, so all but at most one slot — the one
// the decode stage may have claimed for a frame it is still reading — sit
// in the free channel. Each is pulled, stripped, and pushed straight
// back, so the decode stage never starves: it can hold at most one slot,
// and the channel always regains each slot before the next is taken.
func (p *connPipeline) stripIdleBuffers() {
	for i := 0; i < p.window; i++ {
		select {
		case e := <-p.free:
			e.releaseBufs(p.s.leaser)
			p.free <- e
		default:
			return
		}
	}
}

// releaseAllBufs returns the whole window's buffers after both stages
// have stopped (run's epilogue): every slot is either in free or was
// claimed by the dead decode stage, and no store call is in flight.
func (p *connPipeline) releaseAllBufs() {
	for {
		select {
		case e := <-p.free:
			e.releaseBufs(p.s.leaser)
		default:
			return
		}
	}
}

// writeOut encodes one response into the write buffer unless the
// transport already failed. A write error marks the connection dead and
// closes it, which also unblocks the decode stage.
func (p *connPipeline) writeOut(status byte, body []byte) {
	if p.dead {
		return
	}
	if err := writeResp(p.w, status, body); err != nil {
		p.fail()
	}
}

// flushBarrier implements the protocol layer's pre-barrier flush.
func (p *connPipeline) flushBarrier() { p.flushResponses() }

// flushResponses pushes the coalesced burst to the wire and records how
// many responses the flush carried.
func (p *connPipeline) flushResponses() {
	if p.batch > 0 && !obs.Disabled {
		p.s.flushBatch.Record(p.exec.connID, uint64(p.batch))
	}
	p.batch = 0
	if p.dead || p.w.Buffered() == 0 {
		return
	}
	if err := p.w.Flush(); err != nil {
		p.fail()
	}
}

// fail records a transport write failure. The peer can no longer receive
// responses, so writing stops; closing the connection makes the decode
// stage's next read fail, which ends the window drain cleanly.
func (p *connPipeline) fail() {
	p.dead = true
	p.conn.Close()
}
