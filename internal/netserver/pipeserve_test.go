package netserver

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"mutps/internal/kvcore"
	"mutps/internal/rpc"
)

// startWindowServer starts a server with an explicit per-connection
// window over a fresh store.
func startWindowServer(t *testing.T, engine kvcore.Engine, window int) (*Server, *kvcore.Store) {
	t.Helper()
	store, err := kvcore.Open(kvcore.Config{Engine: engine, Workers: 4, CRWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeConfig(store, ln, Config{MaxInflight: window})
	t.Cleanup(func() {
		srv.Close()
		store.Close()
	})
	return srv, store
}

// expect is one request of a pipelined burst together with the response
// it must produce at its exact FIFO position.
type expect struct {
	op      byte
	key     uint64
	payload []byte

	status byte
	body   []byte // nil with structural=false means "must be empty"
	// structural responses (stats, stats2) are checked for shape, not bytes
	structural bool
}

// TestPipelinedFIFOOrderingMixed is the response-ordering gate for the
// pipelined executor: 1000 iterations of a shuffled mixed burst — hit
// gets, miss gets, puts, found/missing deletes, scans (a barrier op),
// stats/stats2 (barriers), and unknown-op errors — over one connection,
// asserting every response byte-for-byte at its request's position.
func TestPipelinedFIFOOrderingMixed(t *testing.T) {
	srv, store := startWindowServer(t, kvcore.Tree, 16)

	// Stable keys 0..63 are never written after preload: gets and the
	// scan-range [0,4) stay deterministic throughout.
	stable := make([][]byte, 64)
	for k := uint64(0); k < 64; k++ {
		v := make([]byte, 8)
		binary.LittleEndian.PutUint64(v, k)
		stable[k] = v
		store.Preload(k, v)
	}
	iters := 1000
	if testing.Short() {
		iters = 100
	}
	// One preloaded victim per iteration for the delete-found path.
	for i := 0; i < iters; i++ {
		store.Preload(5_000_000+uint64(i), []byte("victim"))
	}
	var scanBody []byte
	{
		var tmp [12]byte
		scanBody = append(scanBody, 4, 0, 0, 0)
		for k := uint64(0); k < 4; k++ {
			binary.LittleEndian.PutUint64(tmp[0:8], k)
			binary.LittleEndian.PutUint32(tmp[8:12], 8)
			scanBody = append(scanBody, tmp[:]...)
			scanBody = append(scanBody, stable[k]...)
		}
	}
	scanCount := []byte{4, 0, 0, 0}

	pc, err := DialPipeline(srv.Addr().String(), 16)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()

	putVal := []byte("fresh-value")
	futs := make([]*Future, 0, 16)
	for i := 0; i < iters; i++ {
		u := uint64(i)
		sk := u % 64
		burst := []expect{
			{op: OpGet, key: sk, status: StatusFound, body: stable[sk]},
			{op: OpGet, key: 7_000_000 + u, status: StatusNotFound},
			{op: OpPut, key: 1_000_000 + u, payload: putVal, status: StatusFound},
			{op: OpDelete, key: 5_000_000 + u, status: StatusFound},
			{op: OpDelete, key: 6_000_000 + u, status: StatusNotFound},
			{op: OpScan, key: 0, payload: scanCount, status: StatusFound, body: scanBody},
			{op: OpStats, key: 0, status: StatusFound, structural: true},
			{op: OpStats2, key: 0, status: StatusFound, structural: true},
			{op: 99, key: 0, status: StatusError},
			{op: OpGet, key: (sk + 1) % 64, status: StatusFound, body: stable[(sk+1)%64]},
			{op: OpPut, key: 2_000_000 + u, payload: putVal, status: StatusFound},
			{op: OpGet, key: 8_000_000 + u, status: StatusNotFound},
		}
		rng := rand.New(rand.NewSource(int64(i)))
		rng.Shuffle(len(burst), func(a, b int) { burst[a], burst[b] = burst[b], burst[a] })

		futs = futs[:0]
		for _, req := range burst {
			f, err := pc.Send(req.op, req.key, req.payload)
			if err != nil {
				t.Fatalf("iter %d: send: %v", i, err)
			}
			futs = append(futs, f)
		}
		if err := pc.Flush(); err != nil {
			t.Fatal(err)
		}
		for j, f := range futs {
			st, body, err := f.Wait()
			req := burst[j]
			if req.status == StatusError {
				if err == nil {
					t.Fatalf("iter %d pos %d (op %d): want error response", i, j, req.op)
				}
			} else if err != nil {
				t.Fatalf("iter %d pos %d (op %d key %d): %v", i, j, req.op, req.key, err)
			}
			if st != req.status {
				t.Fatalf("iter %d pos %d (op %d key %d): status %d, want %d",
					i, j, req.op, req.key, st, req.status)
			}
			switch {
			case req.structural && req.op == OpStats:
				if len(body) != 40 {
					t.Fatalf("iter %d pos %d: stats body %d bytes, want 40", i, j, len(body))
				}
			case req.structural && req.op == OpStats2:
				if _, derr := decodeStats2(body); derr != nil {
					t.Fatalf("iter %d pos %d: stats2 undecodable: %v", i, j, derr)
				}
			case req.status == StatusError:
				if len(body) == 0 {
					t.Fatalf("iter %d pos %d: error response with empty message", i, j)
				}
			default:
				if !bytes.Equal(body, req.body) {
					t.Fatalf("iter %d pos %d (op %d key %d): body %x, want %x",
						i, j, req.op, req.key, body, req.body)
				}
			}
			f.Release()
		}
	}
}

// TestPipelinedBackloggedShedFIFO drives the shed path deterministically:
// a submit hook fails selected keys with rpc.ErrBacklogged, and the
// StatusBacklogged replies must land at exactly those FIFO positions while
// surrounding requests execute normally — the wire-order invariant the
// loadgen's skip-on-backlogged accounting depends on.
func TestPipelinedBackloggedShedFIFO(t *testing.T) {
	const shedBit = uint64(1) << 60
	hook := func(op byte, key uint64) error {
		if key&shedBit != 0 {
			return rpc.ErrBacklogged
		}
		return nil
	}
	submitHook.Store(&hook)
	t.Cleanup(func() { submitHook.Store(nil) })

	srv, store := startWindowServer(t, kvcore.Hash, 8)
	val := []byte("v")
	for k := uint64(0); k < 8; k++ {
		store.Preload(k, val)
	}
	pc, err := DialPipeline(srv.Addr().String(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()

	for iter := 0; iter < 50; iter++ {
		futs := make([]*Future, 0, 24)
		shed := make([]bool, 0, 24)
		rng := rand.New(rand.NewSource(int64(iter)))
		for n := 0; n < 24; n++ {
			key := uint64(rng.Intn(8))
			doomed := rng.Intn(3) == 0
			if doomed {
				key |= shedBit
			}
			op := OpGet
			var payload []byte
			if rng.Intn(2) == 0 {
				op = OpPut
				payload = val
			}
			f, err := pc.Send(op, key, payload)
			if err != nil {
				t.Fatal(err)
			}
			futs = append(futs, f)
			shed = append(shed, doomed)
		}
		if err := pc.Flush(); err != nil {
			t.Fatal(err)
		}
		for j, f := range futs {
			st, _, err := f.Wait()
			if shed[j] {
				if st != StatusBacklogged || !errors.Is(err, ErrBacklogged) {
					t.Fatalf("iter %d pos %d: status %d err %v, want backlogged", iter, j, st, err)
				}
			} else if err != nil || st != StatusFound {
				t.Fatalf("iter %d pos %d: status %d err %v, want found", iter, j, st, err)
			}
			f.Release()
		}
	}
}

// TestPipelineSendWriteErrorFailsFuture is the stranded-future regression
// test: when a Send's transport write fails after the future is already
// enqueued to the read loop, the future must still complete (with an
// error) instead of desyncing the reader and hanging its waiter.
func TestPipelineSendWriteErrorFailsFuture(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	pc, err := DialPipeline(ln.Addr().String(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	// Slam the server side shut so client writes eventually error. A
	// payload far beyond every socket buffer forces the bufio flush-through
	// to surface the error inside Send itself, after the enqueue.
	srvConn := <-accepted
	srvConn.Close()

	big := make([]byte, 8<<20)
	var futs []*Future
	sendErred := false
	for i := 0; i < 16 && !sendErred; i++ {
		f, err := pc.Send(OpPut, uint64(i), big)
		if err != nil {
			sendErred = true
			break
		}
		futs = append(futs, f)
	}
	if !sendErred {
		t.Fatal("send against a closed peer never errored")
	}
	// Every future handed out before the failure must complete.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, f := range futs {
			if _, _, err := f.Wait(); err == nil {
				t.Error("future on a broken pipeline completed without error")
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("futures enqueued before the write error were stranded")
	}
	// Later sends fail fast via bufio's sticky error.
	if _, err := pc.Send(OpGet, 1, nil); err == nil {
		t.Fatal("send after a write failure must error")
	}
}

// TestWindowOneIsSynchronous pins the degenerate window: MaxInflight 1
// serializes the server to one op at a time (the old run-to-completion
// behaviour) yet everything still round-trips.
func TestWindowOneIsSynchronous(t *testing.T) {
	srv, _ := startWindowServer(t, kvcore.Hash, 1)
	cli, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Put(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cli.Get(1)
	if err != nil || !ok || string(v) != "one" {
		t.Fatalf("get = %q %v %v", v, ok, err)
	}
	pc, err := DialPipeline(srv.Addr().String(), 32)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	var futs []*Future
	for i := 0; i < 100; i++ {
		f, err := pc.Send(OpGet, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	pc.Flush()
	for i, f := range futs {
		st, body, err := f.Wait()
		if err != nil || st != StatusFound || string(body) != "one" {
			t.Fatalf("get %d via window-1 server: %d %q %v", i, st, body, err)
		}
		f.Release()
	}
}
