package tuner

import (
	"math"
	"math/rand"
	"testing"
)

// TestTrisectConvergesUnimodal: property test over random strictly
// unimodal curves — trisection must find the exact peak, and on wide
// ranges must spend fewer probes than a linear scan would.
func TestTrisectConvergesUnimodal(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 500; trial++ {
		lo := 1
		hi := lo + rng.Intn(96)
		peak := lo + rng.Intn(hi-lo+1)
		// Strictly unimodal: quadratic fall-off on both sides, with
		// randomly asymmetric slopes.
		ls := 1 + rng.Float64()*9
		rs := 1 + rng.Float64()*9
		f := func(x int) float64 {
			d := float64(x - peak)
			if d < 0 {
				return 1e6 - ls*d*d
			}
			return 1e6 - rs*d*d
		}
		best, probes := TrisectMax(lo, hi, f)
		if best != peak {
			t.Fatalf("trial %d: range [%d,%d] peak %d, trisect found %d (%d probes)",
				trial, lo, hi, peak, best, probes)
		}
		if span := hi - lo + 1; span > 16 && probes >= span {
			t.Fatalf("trial %d: %d probes over span %d — no savings vs linear scan", trial, probes, span)
		}
	}
}

// TestTrisectOnNoisyCurve: bounded noise on top of a well-separated
// unimodal curve must not pull the answer far from the peak — the score
// at the found point stays within the noise band of the true optimum.
// This models simkv/live measurement jitter between probe windows.
func TestTrisectOnNoisyCurve(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	const noise = 40.0 // absolute noise amplitude
	for trial := 0; trial < 200; trial++ {
		lo, hi := 1, 64
		peak := lo + rng.Intn(hi-lo+1)
		clean := func(x int) float64 {
			d := float64(x - peak)
			return 1e5 - 50*d*d // curvature ≫ noise near the peak
		}
		noisy := func(x int) float64 {
			return clean(x) + rng.Float64()*noise
		}
		best, _ := TrisectMax(lo, hi, noisy)
		if got, want := clean(best), clean(peak); want-got > noise*2 {
			t.Fatalf("trial %d: peak %d, found %d — clean score %.0f vs optimum %.0f (noise %.0f)",
				trial, peak, best, got, want, noise)
		}
	}
}

// TestOptimizeConvergesOnSeparableLandscape: the hierarchical search
// (linear probe × trisection) must land on the optimum of a landscape
// where cache size and split interact — the cache term shifts the best
// split, as it does in the real system where a bigger hot set wants
// fewer MR threads.
func TestOptimizeConvergesOnSeparableLandscape(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 50; trial++ {
		threads := 4 + rng.Intn(12)
		maxCache, step := 8000, 1000
		bestCache := step * rng.Intn(maxCache/step+1)
		sys := &ctlSystem{threads: threads, maxCache: maxCache, step: step}
		sys.score = func(c Config) float64 {
			// Best split depends on the cache size: more cache → fewer MR
			// threads wanted (the coupled landscape of the real system).
			wantMR := 1 + (threads-2)*(maxCache-c.CacheItems)/maxCache
			dc := math.Abs(float64(c.CacheItems - bestCache))
			dm := math.Abs(float64(c.MRThreads - wantMR))
			return 1e6 - dc - 1000*dm*dm
		}
		res := Optimize(sys)
		if res.Best.CacheItems != bestCache {
			t.Fatalf("trial %d: cache %d, want %d (threads=%d)", trial, res.Best.CacheItems, bestCache, threads)
		}
		wantMR := 1 + (threads-2)*(maxCache-bestCache)/maxCache
		if res.Best.MRThreads != wantMR {
			t.Fatalf("trial %d: split %d, want %d", trial, res.Best.MRThreads, wantMR)
		}
	}
}
