package tuner

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mutps/internal/obs"
)

// ctlSystem is a deterministic System: score is a pure function of the
// configuration.
type ctlSystem struct {
	cur      Config
	threads  int
	maxCache int
	step     int
	score    func(Config) float64
	measured []Config
}

func (f *ctlSystem) Bounds() (int, int, int, int) {
	return f.threads, 0, f.maxCache, f.step
}

func (f *ctlSystem) Measure(c Config) float64 {
	f.cur = c
	f.measured = append(f.measured, c)
	return f.score(c)
}

func (f *ctlSystem) Current() Config { return f.cur }
func (f *ctlSystem) Apply(c Config)  { f.cur = c }

// synthRate is a counter that advances at a programmable rate per second
// of wall time, so WindowSampler observes exactly the programmed rate no
// matter how long the scheduler stretches a window — the tests stay
// deterministic on a loaded single-core CI box.
type synthRate struct {
	mu     sync.Mutex
	base   float64
	lastT  time.Time
	perSec float64
}

func newSynthRate(perSec float64) *synthRate {
	return &synthRate{lastT: time.Now(), perSec: perSec}
}

func (s *synthRate) valueLocked(now time.Time) float64 {
	return s.base + s.perSec*now.Sub(s.lastT).Seconds()
}

func (s *synthRate) set(perSec float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	s.base = s.valueLocked(now)
	s.lastT = now
	s.perSec = perSec
}

func (s *synthRate) read() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return uint64(s.valueLocked(time.Now()))
}

// tick closes one ≥2ms window at the given synthetic controller time.
func tick(c *Controller, now *time.Time) bool {
	time.Sleep(2 * time.Millisecond)
	*now = now.Add(100 * time.Millisecond)
	return c.Tick(*now)
}

// warm establishes the rate baseline without triggering.
func warm(t *testing.T, c *Controller, now *time.Time) {
	t.Helper()
	for i := 0; i < 5; i++ {
		if tick(c, now) {
			t.Fatalf("retuned during warmup (window %d)", i)
		}
	}
}

// TestControllerRetunesOnShift: a load shift must trigger exactly one
// search, and the search must land on (and apply) the score function's
// optimum.
func TestControllerRetunesOnShift(t *testing.T) {
	optimum := Config{CacheItems: 400, MRThreads: 3}
	sys := &ctlSystem{
		cur: Config{CacheItems: 0, MRThreads: 1}, threads: 4, maxCache: 800, step: 200,
		score: func(c Config) float64 {
			d := func(a, b int) float64 {
				if a > b {
					return float64(a - b)
				}
				return float64(b - a)
			}
			return 10000 - 5*d(c.CacheItems, optimum.CacheItems) - 1000*d(c.MRThreads, optimum.MRThreads)
		},
	}
	rate := newSynthRate(1e6)
	trace := obs.NewDecisionTrace(64)
	c := NewController(sys, ControllerConfig{
		Rate:     rate.read,
		Cooldown: time.Hour,
		Trace:    trace,
	})

	now := time.Unix(1000, 0)
	warm(t, c, &now)

	// Load collapses 100x: trigger → retune.
	rate.set(1e4)
	if !tick(c, &now) {
		t.Fatal("no retune after a 100x load shift")
	}
	if sys.Current() != optimum {
		t.Fatalf("applied %+v, want optimum %+v", sys.Current(), optimum)
	}
	_, triggers, retunes, reverts := c.Counters()
	if triggers != 1 || retunes != 1 || reverts != 0 {
		t.Fatalf("counters: triggers=%d retunes=%d reverts=%d, want 1/1/0", triggers, retunes, reverts)
	}
	ds := trace.Snapshot()
	last := ds[len(ds)-1]
	if last.Event != "retune" || last.NewCache != optimum.CacheItems || last.NewSplit != optimum.MRThreads {
		t.Fatalf("last decision = %+v, want a retune to the optimum", last)
	}
}

// TestControllerCooldownBoundsRetunes: with every window triggering (a
// pathologically noisy load), at most one search may run per cooldown
// window — the anti-oscillation guarantee.
func TestControllerCooldownBoundsRetunes(t *testing.T) {
	sys := &ctlSystem{
		cur: Config{MRThreads: 1}, threads: 4, maxCache: 400, step: 200,
		score: func(c Config) float64 { return 1000 },
	}
	rate := newSynthRate(1e6)
	cooldown := 10 * time.Second
	c := NewController(sys, ControllerConfig{Rate: rate.read, Cooldown: cooldown})

	now := time.Unix(2000, 0)
	warm(t, c, &now)

	// 50 windows inside one cooldown (5s of synthetic time), alternating
	// 100x up/down so every window deviates >25% from any baseline.
	levels := []float64{1e8, 1e4}
	for i := 0; i < 50; i++ {
		rate.set(levels[i%2])
		tick(c, &now)
	}
	_, triggers, retunes, _ := c.Counters()
	if retunes > 1 {
		t.Fatalf("%d retunes inside one cooldown window, want ≤1 (triggers=%d)", retunes, triggers)
	}
	if triggers < 2 {
		t.Fatalf("test not exercising suppression: only %d triggers", triggers)
	}

	// After the cooldown elapses, a persistent shift may retune again —
	// the guard is a rate limit, not a latch. (The monitor re-warms after
	// each trigger, so give it a few windows to fire.)
	now = now.Add(cooldown)
	for i := 0; i < 10; i++ {
		rate.set(levels[i%2])
		tick(c, &now)
	}
	_, _, retunes2, _ := c.Counters()
	if retunes2 != retunes+1 {
		t.Fatalf("retunes after cooldown elapsed: %d → %d, want exactly one more", retunes, retunes2)
	}
}

// TestControllerStableWorkloadNoRetune: windows within the threshold of
// the baseline must never trigger — zero searches on a stable workload.
func TestControllerStableWorkloadNoRetune(t *testing.T) {
	sys := &ctlSystem{
		cur: Config{MRThreads: 1}, threads: 4, maxCache: 400, step: 200,
		score: func(c Config) float64 { return 1000 },
	}
	rate := newSynthRate(1000e6)
	c := NewController(sys, ControllerConfig{Rate: rate.read})

	now := time.Unix(3000, 0)
	// ±10% jitter, below the 25% threshold. High absolute rates keep the
	// counter's integer truncation far below the jitter being tested.
	jitter := []float64{1000e6, 1100e6, 950e6, 1050e6, 900e6, 1000e6, 1080e6, 930e6}
	for i := 0; i < 40; i++ {
		rate.set(jitter[i%len(jitter)])
		tick(c, &now)
	}
	_, triggers, retunes, _ := c.Counters()
	if triggers != 0 || retunes != 0 {
		t.Fatalf("stable workload produced triggers=%d retunes=%d, want 0/0", triggers, retunes)
	}
}

// TestControllerMinGainRevert: when the search's winner does not beat the
// incumbent by MinGain, the incumbent stays — and the revert is counted
// and traced.
func TestControllerMinGainRevert(t *testing.T) {
	incumbent := Config{CacheItems: 200, MRThreads: 2}
	sys := &ctlSystem{
		cur: incumbent, threads: 4, maxCache: 400, step: 200,
		// Nearly flat landscape: the search's winner beats the incumbent by
		// only 2% — real gain, but below the 5% MinGain bar, i.e. the noise
		// band a probe window can fabricate.
		score: func(c Config) float64 {
			if (c == Config{CacheItems: 400, MRThreads: 3}) {
				return 5100
			}
			return 5000
		},
	}
	rate := newSynthRate(1000)
	trace := obs.NewDecisionTrace(64)
	c := NewController(sys, ControllerConfig{Rate: rate.read, Trace: trace})

	res := c.Retune()
	if res.Best != incumbent {
		t.Fatalf("flat landscape moved config to %+v, want incumbent %+v kept", res.Best, incumbent)
	}
	if sys.Current() != incumbent {
		t.Fatalf("applied %+v, want incumbent restored", sys.Current())
	}
	_, _, _, reverts := c.Counters()
	if reverts != 1 {
		t.Fatalf("reverts = %d, want 1", reverts)
	}
	found := false
	for _, d := range trace.Snapshot() {
		if d.Event == "revert" {
			found = true
		}
	}
	if !found {
		t.Fatal("no revert decision in trace")
	}
}

// TestControllerPriorSeeding: a known prior is probed during retune, and
// the winner is written back with source "online".
func TestControllerPriorSeeding(t *testing.T) {
	optimum := Config{CacheItems: 400, MRThreads: 3}
	sys := &ctlSystem{
		cur: Config{MRThreads: 1}, threads: 4, maxCache: 800, step: 200,
		score: func(c Config) float64 {
			if c == optimum {
				return 10000
			}
			return 1000
		},
	}
	rate := newSynthRate(1000)
	priors := NewPriors()
	sig := MakeSignature(0.9, 0, 512)
	priors.Update(sig, Prior{Config: optimum, Score: 42, Source: "simkv"})
	c := NewController(sys, ControllerConfig{
		Rate:      rate.read,
		Priors:    priors,
		Signature: func() Signature { return sig },
	})

	res := c.Retune()
	if res.Best != optimum {
		t.Fatalf("retune chose %+v, want prior-seeded optimum %+v", res.Best, optimum)
	}
	probed := false
	for _, m := range sys.measured {
		if m == optimum {
			probed = true
			break
		}
	}
	if !probed {
		t.Fatal("prior config never probed")
	}
	pr, ok := priors.Lookup(sig)
	if !ok || pr.Source != "online" || pr.Config != optimum {
		t.Fatalf("prior not refined online: %+v ok=%v", pr, ok)
	}
}

// TestControllerStartStop exercises the background loop end to end.
func TestControllerStartStop(t *testing.T) {
	sys := &ctlSystem{
		cur: Config{MRThreads: 1}, threads: 2, maxCache: 0, step: 1,
		score: func(c Config) float64 { return 100 },
	}
	rate := newSynthRate(1000)
	c := NewController(sys, ControllerConfig{Rate: rate.read, Interval: 5 * time.Millisecond})
	c.Start()
	time.Sleep(50 * time.Millisecond)
	c.Stop()
	ticks, _, _, _ := c.Counters()
	if ticks == 0 {
		t.Fatal("background loop never ticked")
	}
	c.Stop() // idempotent
}

func TestPriorsRoundTrip(t *testing.T) {
	p := NewPriors()
	s1 := MakeSignature(0.9, 0, 512)
	s2 := MakeSignature(0.5, 0.05, 8)
	p.Update(s1, Prior{Config: Config{CacheItems: 4096, MRThreads: 3}, Score: 1.5e6, Source: "simkv"})
	p.Update(s2, Prior{Config: Config{CacheItems: 1024, MRThreads: 2}, Score: 9e5, Source: "online"})

	path := filepath.Join(t.TempDir(), "priors.json")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPriors(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("loaded %d priors, want 2", got.Len())
	}
	pr, ok := got.Lookup(s1)
	if !ok || pr.Config.CacheItems != 4096 || pr.Source != "simkv" {
		t.Fatalf("s1 prior = %+v ok=%v", pr, ok)
	}
}

func TestSignatureBucketsAndParse(t *testing.T) {
	cases := []struct {
		read, scan, mean float64
		want             string
	}{
		{0.9, 0, 512, "r90-v512-s0"},
		{0.95, 0, 500, "r100-v512-s0"}, // 500 rounds to the 512 class
		{0.5, 0.05, 8, "r50-v8-s10"},   // 0.05 rounds up to 10%
		{0, 0, 0, "r0-v0-s0"},
		{1, 0, 700, "r100-v512-s0"}, // log2(700)=9.45 → 512
		{1, 0, 760, "r100-v1024-s0"},
	}
	for _, c := range cases {
		sig := MakeSignature(c.read, c.scan, c.mean)
		if sig.String() != c.want {
			t.Errorf("MakeSignature(%v,%v,%v) = %s, want %s", c.read, c.scan, c.mean, sig, c.want)
		}
		back, err := ParseSignature(sig.String())
		if err != nil || back != sig {
			t.Errorf("ParseSignature(%s) = %+v, %v", sig, back, err)
		}
	}
	if _, err := ParseSignature("bogus"); err == nil {
		t.Error("ParseSignature accepted garbage")
	}
}
