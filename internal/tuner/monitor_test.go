package tuner

import "testing"

func TestMonitorStableLoadNeverTriggers(t *testing.T) {
	var m Monitor
	for i := 0; i < 100; i++ {
		rate := 100.0
		if i%2 == 0 {
			rate = 105 // small jitter
		}
		if m.Observe(rate) {
			t.Fatalf("stable load triggered at sample %d", i)
		}
	}
	if b := m.Baseline(); b < 95 || b > 110 {
		t.Fatalf("baseline drifted: %v", b)
	}
}

func TestMonitorDetectsShiftOnce(t *testing.T) {
	var m Monitor
	for i := 0; i < 10; i++ {
		m.Observe(100)
	}
	// Load doubles: must trigger exactly once, then settle at the new level.
	triggers := 0
	for i := 0; i < 20; i++ {
		if m.Observe(200) {
			triggers++
		}
	}
	if triggers != 1 {
		t.Fatalf("shift triggered %d times, want 1", triggers)
	}
	// Downward shift also triggers.
	for i := 0; i < 6; i++ {
		m.Observe(200)
	}
	fired := false
	for i := 0; i < 10; i++ {
		if m.Observe(120) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("downward shift not detected")
	}
}

func TestMonitorWarmupSuppression(t *testing.T) {
	var m Monitor
	// Wildly varying warmup samples must not trigger.
	for i, r := range []float64{10, 500, 50} {
		if m.Observe(r) {
			t.Fatalf("warmup sample %d triggered", i)
		}
	}
}

func TestMonitorCustomThresholdAndReset(t *testing.T) {
	m := Monitor{Threshold: 0.5, Warmup: 1}
	m.Observe(100)
	m.Observe(100)
	if m.Observe(130) {
		t.Fatal("30% deviation must not trigger at 50% threshold")
	}
	if !m.Observe(300) {
		t.Fatal("200% deviation must trigger")
	}
	m.Reset()
	if m.Baseline() != 0 {
		t.Fatal("reset must clear the baseline")
	}
}
