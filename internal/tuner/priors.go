package tuner

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
)

// Signature coarsely classifies a workload so configurations learned
// under one load can seed the search when a similar load returns. The
// paper's tuner re-optimizes from scratch on every shift; seeding with a
// per-signature best-known config (from the simkv sweeper offline, then
// refined online) lets the controller land near the optimum in one probe
// and spend the search budget on refinement.
//
// The buckets are deliberately coarse — nearest 10% for op mix, power of
// two for value size — because the optimum moves slowly in these
// dimensions and a fine-grained key would never re-hit.
type Signature struct {
	ReadPct    int `json:"read_pct"`    // read fraction, rounded to nearest 10%
	ValueClass int `json:"value_class"` // mean value size rounded to a power of two (bytes)
	ScanPct    int `json:"scan_pct"`    // scan fraction, rounded to nearest 10%
}

// MakeSignature buckets raw workload observations: read and scan
// fractions in [0,1], and the mean value size in bytes.
func MakeSignature(readFrac, scanFrac, meanValBytes float64) Signature {
	pct := func(f float64) int {
		p := int(math.Round(f*10)) * 10
		if p < 0 {
			p = 0
		}
		if p > 100 {
			p = 100
		}
		return p
	}
	vc := 0
	if meanValBytes >= 1 {
		vc = 1 << int(math.Round(math.Log2(meanValBytes)))
	}
	return Signature{ReadPct: pct(readFrac), ValueClass: vc, ScanPct: pct(scanFrac)}
}

// String renders the signature as the stable key used in the priors
// file, e.g. "r90-v512-s0".
func (s Signature) String() string {
	return fmt.Sprintf("r%d-v%d-s%d", s.ReadPct, s.ValueClass, s.ScanPct)
}

// ParseSignature inverts String.
func ParseSignature(key string) (Signature, error) {
	var s Signature
	if _, err := fmt.Sscanf(key, "r%d-v%d-s%d", &s.ReadPct, &s.ValueClass, &s.ScanPct); err != nil {
		return Signature{}, fmt.Errorf("tuner: bad signature key %q: %v", key, err)
	}
	return s, nil
}

// Prior is the best-known configuration for one workload signature and
// the score it achieved when measured. Scores from different sources
// (simulated Mops vs. live ops/s) are not comparable across entries;
// they are kept only as provenance.
type Prior struct {
	Config Config  `json:"config"`
	Score  float64 `json:"score"`
	Source string  `json:"source,omitempty"` // "simkv" | "online"
}

// Priors is a concurrency-safe signature→Prior map with JSON
// persistence. Update overwrites: the most recent knowledge wins, which
// is what "refined online" means — a live measurement supersedes a
// simulated seed for the same signature.
type Priors struct {
	mu sync.Mutex
	m  map[Signature]Prior
}

// NewPriors creates an empty prior table.
func NewPriors() *Priors {
	return &Priors{m: map[Signature]Prior{}}
}

// Lookup returns the prior for a signature, if known.
func (p *Priors) Lookup(sig Signature) (Prior, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pr, ok := p.m[sig]
	return pr, ok
}

// Update records (or overwrites) the prior for a signature.
func (p *Priors) Update(sig Signature, pr Prior) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.m[sig] = pr
}

// Len returns the number of signatures known.
func (p *Priors) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.m)
}

// MarshalJSON encodes the table as a {"r90-v512-s0": Prior, ...} object
// with sorted keys, so prior files diff cleanly.
func (p *Priors) MarshalJSON() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	keys := make([]string, 0, len(p.m))
	bySig := make(map[string]Prior, len(p.m))
	for sig, pr := range p.m {
		k := sig.String()
		keys = append(keys, k)
		bySig[k] = pr
	}
	sort.Strings(keys)
	out := []byte{'{'}
	for i, k := range keys {
		if i > 0 {
			out = append(out, ',')
		}
		kb, _ := json.Marshal(k)
		vb, err := json.Marshal(bySig[k])
		if err != nil {
			return nil, err
		}
		out = append(out, kb...)
		out = append(out, ':')
		out = append(out, vb...)
	}
	return append(out, '}'), nil
}

// UnmarshalJSON decodes the object form produced by MarshalJSON.
func (p *Priors) UnmarshalJSON(data []byte) error {
	raw := map[string]Prior{}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.m == nil {
		p.m = map[Signature]Prior{}
	}
	for k, pr := range raw {
		sig, err := ParseSignature(k)
		if err != nil {
			return err
		}
		p.m[sig] = pr
	}
	return nil
}

// Save writes the table to path as indented JSON.
func (p *Priors) Save(path string) error {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadPriors reads a prior table written by Save.
func LoadPriors(path string) (*Priors, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p := NewPriors()
	if err := json.Unmarshal(b, p); err != nil {
		return nil, fmt.Errorf("tuner: %s: %v", path, err)
	}
	return p, nil
}
