package tuner

import "mutps/internal/obs"

// Watcher wires the feedback monitor to live telemetry: each Tick closes
// one throughput window from the sampler, feeds it to the Monitor, and —
// when the load shift is significant — records a "trigger" decision in the
// trace so operators can see why the auto-tuner ran. The caller owns the
// Tick cadence (the paper samples every 10 ms) and reacts to a true return
// by scheduling a retune, whose outcome it reports via RecordRetune.
type Watcher struct {
	Monitor *Monitor
	Sampler *obs.WindowSampler
	Trace   *obs.DecisionTrace

	// Optional second trigger channel over mean latency. The mean is the
	// exact _sum/_count delta of a histogram feed (obs.MeanSampler), not an
	// interpolated quantile: the paper's controller consumes a mean, and
	// log₂-bucket interpolation can be off by the bucket width — enough to
	// swallow or fabricate a 25% shift. Latency catches workload changes the
	// throughput channel misses under admission-limited load (diurnal ramps,
	// value-size shifts at a fixed offered rate).
	LatMonitor *Monitor
	LatSampler *obs.MeanSampler
}

// NewWatcher builds a watcher over a monotonic completed-ops reader (e.g.
// Store.Ops). Monitor parameters keep their documented defaults.
func NewWatcher(read func() uint64, trace *obs.DecisionTrace) *Watcher {
	return &Watcher{
		Monitor: &Monitor{},
		Sampler: obs.NewWindowSampler(read),
		Trace:   trace,
	}
}

// WatchLatency attaches the latency channel: each Tick additionally
// observes the exact mean of the values the sampler's histograms recorded
// during the window and triggers on a significant shift. Empty windows
// (no requests) are skipped rather than fed as zero.
func (w *Watcher) WatchLatency(s *obs.MeanSampler) {
	w.LatSampler = s
	w.LatMonitor = &Monitor{}
}

// Tick closes the current window and returns whether either monitor
// flagged a significant load change. The window's throughput is returned
// either way so callers can log or export it. On a trigger, a Decision
// with Event "trigger" (throughput shift) or "lat-trigger" (mean-latency
// shift; Score carries the observed mean in the histogram's unit) lands
// in the trace.
func (w *Watcher) Tick() (rate float64, triggered bool) {
	rate = w.Sampler.Rate()
	triggered = w.Monitor.Observe(rate)
	if triggered && w.Trace != nil {
		w.Trace.Record(obs.Decision{
			Event:    "trigger",
			Rate:     rate,
			OldSplit: -1, NewSplit: -1,
			OldCache: -1, NewCache: -1,
		})
	}
	if w.LatSampler != nil && w.LatMonitor != nil {
		if mean, ok := w.LatSampler.Mean(); ok && w.LatMonitor.Observe(mean) {
			if !triggered && w.Trace != nil {
				w.Trace.Record(obs.Decision{
					Event:    "lat-trigger",
					Rate:     rate,
					Score:    mean,
					OldSplit: -1, NewSplit: -1,
					OldCache: -1, NewCache: -1,
				})
			}
			triggered = true
		}
	}
	return rate, triggered
}

// RecordRetune logs the outcome of a tuning run into the trace and resets
// the monitor and sampler so the next windows reflect the new
// configuration, not the transient rates observed during probing.
func (w *Watcher) RecordRetune(oldSplit, oldCache int, res Result) {
	if w.Trace != nil {
		w.Trace.Record(obs.Decision{
			Event:    "retune",
			Rate:     res.Score,
			OldSplit: oldSplit, NewSplit: res.Best.MRThreads,
			OldCache: oldCache, NewCache: res.Best.CacheItems,
			Score:  res.Score,
			Probes: res.Probes,
		})
	}
	w.Monitor.Reset()
	w.Sampler.Reset()
	if w.LatMonitor != nil {
		w.LatMonitor.Reset()
	}
	if w.LatSampler != nil {
		w.LatSampler.Reset()
	}
}
